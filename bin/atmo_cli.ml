(* atmo: command-line front end for the Atmosphere reproduction.

   Subcommands:
     verify   discharge the verification obligation suites
     fuzz     randomized refinement checking of the kernel
     ni       noninterference harness (unwinding conditions)
     boot     boot a kernel and print its abstract state
     trace    flight-record a workload; dump events, export Chrome traces
     profile  post-mortem profiler over the kv-store demo workload
     top      per-container / per-process cycle accounting tables
     metrics  metrics registry snapshot / Prometheus text exposition
     san      run the scripted workload under the atmo-san sanitizer *)

open Cmdliner
module Runner = Atmo_verif.Runner
module Catalog = Atmo_verif.Catalog
module Obligation = Atmo_verif.Obligation
module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Obs_event = Atmo_obs.Event
module Obs_flight = Atmo_obs.Flight
module Obs_metrics = Atmo_obs.Metrics
module Obs_sink = Atmo_obs.Sink
module Obs_span = Atmo_obs.Span
module Obs_profile = Atmo_obs.Profile
module Obs_export = Atmo_obs.Export
module Kv_demo = Atmo_workloads.Kv_demo

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info)

(* ------------------------------------------------------------------ *)

module Incremental = Atmo_verif.Incremental

(* Multi-domain discharge is the default: [--threads 0] (the default)
   resolves to the machine's recommended domain count, as the parallel
   benches do. *)
let resolve_threads threads =
  if threads > 0 then threads else min 8 (Domain.recommended_domain_count ())

let print_report ~threads ~verbose report =
  if verbose then Format.printf "%a@." Runner.pp report
  else
    Format.printf "%d obligations, %d threads, wall %.3f s, check %.3f s@."
      (List.length report.Runner.results)
      threads report.Runner.wall_s
      (Runner.total_check_time report)

let report_failures report =
  match Runner.failures report with
  | [] ->
    Format.printf "all obligations discharged.@.";
    0
  | fs ->
    List.iter (fun f -> Format.printf "FAILED %a@." Obligation.pp_result f) fs;
    1

let verdicts report =
  List.map
    (fun (r : Obligation.result) ->
      (r.Obligation.name, r.Obligation.ok, r.Obligation.detail))
    report.Runner.results

(* One full discharge to populate the verdict cache, one syscall on the
   live world, then an incremental re-run: only obligations whose read
   set intersects the transition's dirty set may be re-discharged, and
   the spliced report must be verdict-identical to a from-scratch run. *)
let verify_incremental ~threads ~verbose k init suite =
  let full = Incremental.run ~threads suite in
  Format.printf "full run:        ";
  print_report ~threads ~verbose:false full;
  (match Kernel.step k ~thread:init Syscall.Yield with
   | Syscall.Rerr e -> Format.printf "(transition yield -> %a)@." Atmo_util.Errno.pp e
   | _ -> ());
  Format.printf "transition:      yield; dirty = {%s}@."
    (String.concat ", " (Incremental.dirty_ids ()));
  let incr = Incremental.run ~threads suite in
  Format.printf "incremental run: ";
  print_report ~threads ~verbose incr;
  let oracle = Runner.run ~threads suite in
  let n = List.length suite in
  let frac = 100. *. float_of_int incr.Runner.rechecked /. float_of_int (max 1 n) in
  Format.printf "re-discharged %d/%d obligations (%.1f%%), reused %d cached verdicts@."
    incr.Runner.rechecked n frac incr.Runner.reused;
  let identical = verdicts incr = verdicts oracle in
  Format.printf "verdicts vs full re-check: %s@."
    (if identical then "bit-identical" else "DIVERGED");
  let ok = Runner.all_ok incr in
  if not ok then ignore (report_failures incr);
  if identical && ok && frac <= 20. then begin
    Format.printf "incremental verification sound; re-check fraction within the 20%% budget.@.";
    0
  end
  else begin
    if frac > 20. then
      Format.printf "FAILED: re-checked %.1f%% of the suite (budget 20%%)@." frac;
    1
  end

(* Plant for the stale-proof lint: drop the tracker's dirty marks while
   a transition mutates the kernel; the always-on intrinsic counters
   keep advancing, so the lint must flag the unmarked mutation (and
   exactly that rule). *)
let verify_plant_stale_proof ~threads k init suite =
  let module R = Atmo_san.Report in
  let _full = Incremental.run ~threads suite in
  R.clear ();
  Incremental.set_miss_plant true;
  Fun.protect
    ~finally:(fun () -> Incremental.set_miss_plant false)
    (fun () -> ignore (Kernel.step k ~thread:init Syscall.Yield));
  let n = Atmo_san.Proof_lint.lint k in
  let reports = R.reports () in
  let stale, other =
    List.partition (fun (r : R.t) -> r.R.rule = R.Stale_proof) reports
  in
  Format.printf "planted: a syscall mutated the kernel behind the dirty tracker@.";
  List.iter (fun r -> Format.printf "%a@." R.pp r) reports;
  if n > 0 && stale <> [] && other = [] then begin
    Format.printf "stale-proof plant detected by exactly its rule (%d report(s)).@." n;
    0
  end
  else begin
    Format.printf "stale-proof plant NOT detected correctly (%d stale, %d other).@."
      (List.length stale) (List.length other);
    1
  end

let verify scale threads verbose incremental plant =
  setup_logs ();
  let threads = resolve_threads threads in
  match plant with
  | Some p when p <> "stale-proof" ->
    Format.eprintf "verify: unknown plant %S (only stale-proof)@." p;
    124
  | Some _ | None when incremental || plant <> None ->
    (match Catalog.build_world ~scale with
     | Error msg ->
       Format.eprintf "failed to build the verification world: %s@." msg;
       1
     | Ok (k, init) ->
       Incremental.arm ();
       Fun.protect ~finally:Incremental.disarm (fun () ->
           let suite = Catalog.suite_for ~scale k in
           if plant <> None then verify_plant_stale_proof ~threads k init suite
           else verify_incremental ~threads ~verbose k init suite))
  | _ ->
    (match Catalog.full_suite ~scale with
     | Error msg ->
       Format.eprintf "failed to build the verification world: %s@." msg;
       1
     | Ok suite ->
       let report = Runner.run ~threads suite in
       print_report ~threads ~verbose report;
       report_failures report)

let fuzz seed steps =
  setup_logs ();
  match Kernel.boot Kernel.default_boot with
  | Error e ->
    Format.eprintf "boot: %a@." Atmo_util.Errno.pp e;
    1
  | Ok (k, _) ->
    (match Atmo_verif.Refine_harness.random_trace_check ~seed ~steps k with
     | Ok n ->
       Format.printf "%d random transitions, every one satisfied its spec and total_wf.@." n;
       0
     | Error o ->
       Format.printf "violation at %a -> %a@.spec: %s@.wf: %s@." Atmo_spec.Syscall.pp
         o.Atmo_verif.Refine_harness.call Atmo_spec.Syscall.pp_ret
         o.Atmo_verif.Refine_harness.ret
         (match o.Atmo_verif.Refine_harness.spec with Ok () -> "ok" | Error m -> m)
         (match o.Atmo_verif.Refine_harness.wf with Ok () -> "ok" | Error m -> m);
       1)

let ni seed steps =
  setup_logs ();
  let show = function
    | Ok _ -> true
    | Error (f : Atmo_ni.Harness.failure) ->
      Format.printf "  FAILED at step %d: %s@." f.Atmo_ni.Harness.at_step
        f.Atmo_ni.Harness.what;
      false
  in
  Format.printf "output consistency...@.";
  let oc = show (Atmo_ni.Harness.output_consistency ~seed ~steps) in
  Format.printf "step consistency (with the verified service)...@.";
  let sc = show (Atmo_ni.Harness.step_consistency ~with_service:true ~seed ~steps ()) in
  Format.printf "probe consistency...@.";
  let pc =
    show (Atmo_ni.Harness.probe_consistency ~seed ~steps:(min steps 40) ~probes:5)
  in
  if oc && sc && pc then begin
    Format.printf "all unwinding conditions hold.@.";
    0
  end
  else 1

let boot_cmd () =
  setup_logs ();
  match Kernel.boot Kernel.default_boot with
  | Error e ->
    Format.eprintf "boot: %a@." Atmo_util.Errno.pp e;
    1
  | Ok (k, init) ->
    Format.printf "booted; init thread 0x%x@.%a@." init Atmo_spec.Abstract_state.pp
      (Atmo_core.Abstraction.abstract k);
    (match Atmo_core.Invariants.total_wf k with
     | Ok () ->
       Format.printf "total_wf holds.@.";
       0
     | Error msg ->
       Format.printf "total_wf BROKEN: %s@." msg;
       1)

(* ------------------------------------------------------------------ *)
(* Shared observability plumbing: run the kv-store demo workload under
   a flight recorder, hand back the decoded stream, and restore the
   Disabled sink.  The metrics registry is left populated — top and the
   exporters read it after the run. *)

let write_text_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let run_kv_traced ~requests ~slots =
  Obs_metrics.reset ();
  Obs_span.reset ();
  let recorder = Obs_flight.create ~cpus:2 ~slots ~slot_size:Obs_event.slot_bytes in
  Obs_sink.install (Obs_sink.Flight recorder);
  Fun.protect
    ~finally:(fun () ->
      Obs_sink.install Obs_sink.Disabled;
      Obs_sink.set_clock (fun () -> 0);
      Obs_sink.set_cpu 0;
      Obs_span.reset ())
    (fun () ->
      let result = Kv_demo.run ~requests () in
      (result, Obs_sink.records (), Obs_sink.dropped ()))

(* Counters of one family, [prefix] stripped, sorted by descending
   value then name. *)
let counter_family prefix =
  let plen = String.length prefix in
  Obs_metrics.all_counters ()
  |> List.filter_map (fun (name, c) ->
         if String.length name > plen && String.sub name 0 plen = prefix then begin
           let v = Obs_metrics.Counter.value c in
           if v > 0 then Some (String.sub name plen (String.length name - plen), v)
           else None
         end
         else None)
  |> List.sort (fun (na, a) (nb, b) -> compare (b, na) (a, nb))

let total_cycles () = Obs_metrics.Counter.value (Obs_metrics.counter "cycles/total")
let sum_family prefix = List.fold_left (fun a (_, v) -> a + v) 0 (counter_family prefix)

(* ------------------------------------------------------------------ *)
(* profile: post-mortem profiler over the kv-store demo workload       *)

let profile requests folded_out =
  setup_logs ();
  let result, records, dropped = run_kv_traced ~requests ~slots:16384 in
  let p = Obs_profile.build records in
  Format.printf
    "kv workload: %d requests (%d hits), end clock %d cycles;@.\
    \ %d spans decoded (%d truncated by wraparound, %d events dropped), %d causal edges@."
    result.Kv_demo.requests result.Kv_demo.hits result.Kv_demo.end_cycles
    (Obs_profile.span_count p) (Obs_profile.truncated p) dropped
    (List.length (Obs_profile.edges p));
  (* the acceptance query: every Request root must reach an IPC
     rendezvous and both driver halves across CPUs through parent
     links and causal edges *)
  let req_code = Obs_span.code Obs_span.Request in
  let request_roots =
    List.filter
      (fun id ->
        match Obs_profile.find p id with
        | Some s -> s.Obs_profile.kind = req_code
        | None -> false)
      (Obs_profile.roots p)
  in
  let complete = ref 0 in
  List.iter
    (fun id ->
      let reach = Obs_profile.reachable p ~from:id in
      let span_of sid = Obs_profile.find p sid in
      let kinds = List.filter_map (fun sid -> Option.map (fun s -> s.Obs_profile.kind) (span_of sid)) reach in
      let cpus =
        List.sort_uniq compare
          (List.filter_map (fun sid -> Option.map (fun s -> s.Obs_profile.cpu) (span_of sid)) reach)
      in
      let has k = List.mem (Obs_span.code k) kinds in
      if
        has Obs_span.Ipc_rendezvous && has Obs_span.Drv_submit
        && has Obs_span.Drv_complete
        && List.length cpus > 1
      then incr complete)
    request_roots;
  Format.printf
    "request paths: %d/%d Request roots reach an IPC rendezvous and a driver@.\
    \ submit/completion across CPUs@."
    !complete (List.length request_roots);
  let total = total_cycles () in
  let containers = counter_family "cycles/container/" in
  let csum = List.fold_left (fun a (_, v) -> a + v) 0 containers in
  Format.printf "@.-- per-container cycles (sum %d vs cycles/total %d) --@." csum total;
  List.iter
    (fun (nm, v) ->
      Format.printf "  container %-8s %10d  %5.1f%%@." nm v
        (100. *. float_of_int v /. float_of_int (max 1 total)))
    containers;
  Format.printf "@.-- self/total cycles by span kind --@.%a" Obs_profile.pp_kind_table p;
  let folded = Obs_profile.collapsed p in
  Format.printf "@.-- collapsed stacks (folded; flamegraph.pl / speedscope input) --@.";
  List.iter (fun (path, self) -> Format.printf "%s %d@." path self) folded;
  (match folded_out with
   | None -> ()
   | Some f ->
     write_text_file f
       (String.concat "" (List.map (fun (pth, s) -> Printf.sprintf "%s %d\n" pth s) folded));
     Format.printf "wrote %s@." f);
  if !complete = List.length request_roots && request_roots <> [] && csum = total then begin
    Format.printf
      "@.profile ok: every request path reconstructs; container cycles sum to cycles/total.@.";
    0
  end
  else begin
    Format.printf "@.profile FAILED: %d/%d paths complete, container sum %d vs cycles/total %d@."
      !complete (List.length request_roots) csum total;
    1
  end

(* ------------------------------------------------------------------ *)
(* top: per-container / per-process / per-kind cycle accounting        *)

let top requests =
  setup_logs ();
  let result, _records, _dropped = run_kv_traced ~requests ~slots:8192 in
  let total = total_cycles () in
  Format.printf "kv workload: %d requests, end clock %d cycles; cycles/total %d@."
    result.Kv_demo.requests result.Kv_demo.end_cycles total;
  let table title prefix =
    match counter_family prefix with
    | [] -> ()
    | rows ->
      Format.printf "@.%-24s %12s  %6s@." title "CYCLES" "%TOTAL";
      List.iter
        (fun (nm, v) ->
          Format.printf "%-24s %12d  %5.1f%%@." nm v
            (100. *. float_of_int v /. float_of_int (max 1 total)))
        rows
  in
  table "CONTAINER" "cycles/container/";
  table "PROCESS" "cycles/process/";
  table "THREAD" "cycles/thread/";
  table "SPAN KIND" "cycles/kind/";
  let csum = sum_family "cycles/container/" in
  if csum = total then begin
    Format.printf "@.accounting closed: container cycles sum to cycles/total (%d).@." total;
    0
  end
  else begin
    Format.printf "@.accounting LEAK: container sum %d <> cycles/total %d@." csum total;
    1
  end

(* ------------------------------------------------------------------ *)
(* metrics: registry snapshot / Prometheus text exposition             *)

let metrics_main export requests out =
  setup_logs ();
  let _result, _records, _dropped = run_kv_traced ~requests ~slots:8192 in
  let text =
    match export with
    | "prom" -> Obs_export.prometheus ()
    | _ -> Obs_metrics.dump ()
  in
  (match out with
   | None -> print_string text
   | Some f ->
     write_text_file f text;
     Format.printf "wrote %s (%d bytes)@." f (String.length text));
  0

(* ------------------------------------------------------------------ *)
(* trace: flight-record a scripted IPC + mmap + driver workload        *)

(* The workload is deterministic: boot, an SMP send/recv ping-pong over
   a shared endpoint, a memory phase (multi-page mmap, MMU walks,
   superpage formation, munmap), and an NVMe submit/poll phase.  Every
   cycle figure printed comes from the simulation's cost model, so a
   run with the Disabled sink doubles as the bit-identical baseline for
   the zero-overhead guarantee. *)
let run_trace_workload k ~init ~iterations =
  let cost = Atmo_sim.Cost.default in
  let pm = k.Kernel.pm in
  (* a second thread sharing init's endpoint (the capability a parent
     would hand a child at spawn) *)
  let t2 =
    match Kernel.step k ~thread:init Syscall.New_thread with
    | Syscall.Rptr t -> t
    | r -> Fmt.failwith "trace: new_thread -> %a" Syscall.pp_ret r
  in
  let ep =
    match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
    | Syscall.Rptr e -> e
    | r -> Fmt.failwith "trace: new_endpoint -> %a" Syscall.pp_ret r
  in
  Atmo_pm.Perm_map.update pm.Atmo_pm.Proc_mgr.thrd_perms ~ptr:t2 (fun th ->
      Atmo_pm.Thread.set_slot th 0 (Some ep));
  (* phase 1: IPC ping-pong under the big lock; the receiver runs first
     so sends rendezvous with a waiting receiver (ep_send), and the
     receiver's first call of each round blocks (ep_block) *)
  let programs =
    [
      { Atmo_sim.Smp.thread = t2; think_cycles = 600;
        call_of = (fun _ -> Syscall.Recv { slot = 0 }) };
      { Atmo_sim.Smp.thread = init; think_cycles = 800;
        call_of = (fun i -> Syscall.Send { slot = 0; msg = Atmo_pm.Message.scalars_only [ i ] }) };
    ]
  in
  let stats =
    match Atmo_sim.Smp.run k ~cost ~cpus:2 ~programs ~iterations with
    | Ok s -> s
    | Error msg -> Fmt.failwith "trace: smp phase failed: %s" msg
  in
  (* phase 2: memory; a manual virtual clock continues where the SMP
     timeline stopped *)
  let vnow = ref stats.Atmo_sim.Smp.wall_cycles in
  if Obs_sink.tracing () then Obs_sink.set_clock (fun () -> !vnow);
  let tstep thread call =
    let c = Atmo_sim.Smp.syscall_cycles cost call in
    let r = Kernel.step k ~thread call in
    vnow := !vnow + c;
    if Obs_sink.tracing () then
      Obs_metrics.observe ("lat/syscall/" ^ Syscall.name call) c;
    r
  in
  let s4k = Atmo_pmem.Page_state.S4k and s2m = Atmo_pmem.Page_state.S2m in
  let rw = Atmo_hw.Pte_bits.perm_rw in
  ignore (tstep init (Syscall.Mmap { va = 0x4000_0000; count = 8; size = s4k; perm = rw }));
  (* user-level loads: real MMU walks through the new page tables *)
  for i = 0 to 7 do
    ignore (Kernel.resolve_user k ~thread:init ~vaddr:(0x4000_0000 + (i * 0x1000)))
  done;
  ignore (Kernel.resolve_user k ~thread:init ~vaddr:0x7fff_0000);  (* miss *)
  ignore (tstep init (Syscall.Munmap { va = 0x4000_0000; count = 8; size = s4k }));
  (* a 2 MiB mapping forces superpage formation out of free 4 KiB frames *)
  ignore (tstep init (Syscall.Mmap { va = 0x8000_0000; count = 1; size = s2m; perm = rw }));
  ignore (tstep init (Syscall.Munmap { va = 0x8000_0000; count = 1; size = s2m }));
  (* phase 3: one last rendezvous in the other direction (sender blocks,
     receiver harvests it) *)
  ignore (tstep init (Syscall.Send { slot = 0; msg = Atmo_pm.Message.scalars_only [ 99 ] }));
  ignore (tstep t2 (Syscall.Recv { slot = 0 }));
  (* phase 4: NVMe queue pair *)
  let dclock = Atmo_hw.Clock.create () in
  Atmo_hw.Clock.advance dclock !vnow;
  if Obs_sink.tracing () then
    Obs_sink.set_clock (fun () -> Atmo_hw.Clock.now dclock);
  let nvme = Atmo_drivers.Nvme.create ~clock:dclock ~cost ~capacity_blocks:1024 in
  Atmo_drivers.Nvme.set_device nvme 7;
  let block = Bytes.make Atmo_drivers.Nvme.block_bytes 'a' in
  for lba = 0 to 7 do
    ignore (Atmo_drivers.Nvme.submit_write nvme ~lba ~data:block)
  done;
  ignore (Atmo_drivers.Nvme.wait_all nvme);
  for lba = 0 to 3 do
    ignore (Atmo_drivers.Nvme.submit_read nvme ~lba)
  done;
  ignore (Atmo_drivers.Nvme.wait_all nvme);
  (stats, !vnow, Atmo_hw.Clock.now dclock)

let trace sink_kind workload iterations max_events slots filter sample export out =
  setup_logs ();
  if slots <= 0 || slots land (slots - 1) <> 0 then begin
    Format.eprintf "trace: --slots must be a positive power of two (got %d)@." slots;
    exit 2
  end;
  if sample < 0 || sample > 30 then begin
    Format.eprintf "trace: --sample must be in 0..30 (got %d)@." sample;
    exit 2
  end;
  (* admission config before install: the sink snapshots the filter
     mask when the recorder goes live *)
  (match filter with
   | None -> Obs_sink.set_filter Obs_event.all_tags_mask
   | Some spec ->
     let mask =
       List.fold_left
         (fun acc name ->
           let name = String.trim name in
           match Obs_event.tag_of_name name with
           | Some tag -> acc lor (1 lsl tag)
           | None ->
             Format.eprintf
               "trace: unknown event kind %S in --filter (names as printed under \
                'event kinds', e.g. syscall_enter,page_alloc)@."
               name;
             exit 2)
         0
         (String.split_on_char ',' spec)
     in
     Obs_sink.set_filter mask);
  Obs_sink.set_sample_all ~shift:sample;
  Obs_metrics.reset ();
  Obs_span.reset ();
  let recorder =
    Obs_flight.create ~cpus:2 ~slots ~slot_size:Obs_event.slot_bytes
  in
  (match sink_kind with
   | "disabled" -> Obs_sink.install Obs_sink.Disabled
   | "flight" -> Obs_sink.install (Obs_sink.Flight recorder)
   | other -> Fmt.failwith "trace: unknown sink %S (flight|disabled)" other);
  let finish code =
    Obs_sink.install Obs_sink.Disabled;
    Obs_sink.set_filter Obs_event.all_tags_mask;
    Obs_sink.set_sample_all ~shift:0;
    Obs_sink.set_clock (fun () -> 0);
    Obs_sink.set_cpu 0;
    Obs_span.reset ();
    code
  in
  let ran =
    match workload with
    | "kv" ->
      let r = Kv_demo.run ~requests:iterations () in
      Format.printf
        "kv workload: %d requests (%d hits) over two IPC rendezvous + NVMe,@.\
        \ end clock %d cycles@."
        r.Kv_demo.requests r.Kv_demo.hits r.Kv_demo.end_cycles;
      Ok ()
    | _ -> (
      match Kernel.boot Kernel.default_boot with
      | Error e -> Error e
      | Ok (k, init) ->
        let stats, mem_cycles, drv_cycles = run_trace_workload k ~init ~iterations in
        Format.printf "workload: %d syscalls under the big lock (2 CPUs), wall %d cycles,@."
          stats.Atmo_sim.Smp.syscalls_executed stats.Atmo_sim.Smp.wall_cycles;
        Format.printf "          lock wait %d cycles; memory phase to %d; driver clock %d@."
          stats.Atmo_sim.Smp.lock_wait_cycles mem_cycles drv_cycles;
        Ok ())
  in
  match ran with
  | Error e ->
    Format.eprintf "boot: %a@." Atmo_util.Errno.pp e;
    finish 1
  | Ok () ->
    let records = Obs_sink.records () in
    (match sink_kind with
     | "disabled" ->
       Format.printf
         "sink disabled: 0 events recorded; the cycle totals above are the@.\
         \ bit-identical baseline any instrumented run must reproduce.@.";
       if export <> None then
         Format.printf "(nothing to export with the disabled sink)@.";
       finish 0
     | _ ->
       Format.printf "@.-- flight recorder: %d live events (%d dropped, oldest-first) --@."
         (List.length records) (Obs_sink.dropped ());
       if filter <> None || sample > 0 then begin
         let emitted = ref 0 and sampled = ref 0 in
         for tag = 1 to Obs_event.tag_count do
           emitted := !emitted + Obs_sink.emitted_count ~tag;
           sampled := !sampled + Obs_sink.sampled_out_count ~tag
         done;
         Format.printf "-- admission: %d emitted, %d sampled out (shift %d) --@."
           !emitted !sampled sample
       end;
       let shown = ref 0 in
       List.iter
         (fun r ->
           if !shown < max_events then begin
             Format.printf "%a@." Obs_event.pp_record r;
             incr shown
           end)
         records;
       if List.length records > max_events then
         Format.printf "... (%d more; raise --events to see them)@."
           (List.length records - max_events);
       let by_kind = Hashtbl.create 16 in
       List.iter
         (fun (r : Obs_event.record) ->
           let key = Obs_event.kind r.Obs_event.ev in
           Hashtbl.replace by_kind key
             (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind key)))
         records;
       Format.printf "@.-- event kinds --@.";
       Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_kind []
       |> List.sort compare
       |> List.iter (fun (kind, n) -> Format.printf "%-16s %6d@." kind n);
       Format.printf "@.-- metrics (latencies in model cycles) --@.%a"
         Obs_metrics.pp_table ();
       (match export with
        | Some "chrome" ->
          let json = Obs_export.chrome_trace records in
          write_text_file out json;
          Format.printf "@.wrote %s (%d bytes; load in chrome://tracing or Perfetto)@." out
            (String.length json)
        | Some other -> Fmt.failwith "trace: unknown export %S (chrome)" other
        | None -> ());
       finish 0)

(* ------------------------------------------------------------------ *)
(* san: the trace workload under the full sanitizer, plus plants       *)

module San_runtime = Atmo_san.Runtime
module San_report = Atmo_san.Report
module Lockcheck = Atmo_san.Lockcheck
module Phys_mem = Atmo_hw.Phys_mem
module Mmu = Atmo_hw.Mmu
module Pte_bits = Atmo_hw.Pte_bits
module Page_table = Atmo_pt.Page_table

(* Harness code legitimately mutates kernel state outside the SMP loop
   (setup syscalls, device interrupt injection); it takes the modelled
   big lock like any CPU would. *)
let locked_step k ~thread call =
  Lockcheck.locked ~site:"san.harness" ~cpu:0 (fun () -> Kernel.step k ~thread call)

(* Physical address of the L1 entry mapping [vaddr] (the mapping must be
   a present 4 KiB one). *)
let leaf_entry_addr pt ~vaddr =
  let mem = Page_table.mem pt in
  let walk table index =
    Pte_bits.addr_of (Phys_mem.read_u64 mem ~addr:(Mmu.entry_addr ~table ~index))
  in
  let l3t = walk (Page_table.cr3 pt) (Mmu.l4_index vaddr) in
  let l2t = walk l3t (Mmu.l3_index vaddr) in
  let l1t = walk l2t (Mmu.l2_index vaddr) in
  Mmu.entry_addr ~table:l1t ~index:(Mmu.l1_index vaddr)

let pt_of_thread k ~thread =
  let proc = Option.get (Kernel.proc_of_thread k ~thread) in
  (Atmo_pm.Perm_map.borrow k.Kernel.pm.Atmo_pm.Proc_mgr.proc_perms ~ptr:proc)
    .Atmo_pm.Process.pt

(* The scripted workload of the trace subcommand — IPC ping-pong on two
   CPUs, mmap / superpage / mprotect churn, IOMMU device assignment with
   a DMA window, an NVMe phase — driven with every checker armed. *)
let run_san_workload k ~init ~iterations =
  let pm = k.Kernel.pm in
  let t2 =
    match locked_step k ~thread:init Syscall.New_thread with
    | Syscall.Rptr t -> t
    | r -> Fmt.failwith "san: new_thread -> %a" Syscall.pp_ret r
  in
  let ep =
    match locked_step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
    | Syscall.Rptr e -> e
    | r -> Fmt.failwith "san: new_endpoint -> %a" Syscall.pp_ret r
  in
  Atmo_pm.Perm_map.update pm.Atmo_pm.Proc_mgr.thrd_perms ~ptr:t2 (fun th ->
      Atmo_pm.Thread.set_slot th 0 (Some ep));
  let programs =
    [
      { Atmo_sim.Smp.thread = t2; think_cycles = 600;
        call_of = (fun _ -> Syscall.Recv { slot = 0 }) };
      { Atmo_sim.Smp.thread = init; think_cycles = 800;
        call_of = (fun i -> Syscall.Send { slot = 0; msg = Atmo_pm.Message.scalars_only [ i ] }) };
    ]
  in
  let stats =
    match Atmo_sim.Smp.run k ~cost:Atmo_sim.Cost.default ~cpus:2 ~programs ~iterations with
    | Ok s -> s
    | Error msg -> Fmt.failwith "san: smp phase failed: %s" msg
  in
  (* memory phase: small pages, user-level MMU walks, permission
     tightening, then a superpage round trip *)
  let s4k = Atmo_pmem.Page_state.S4k and s2m = Atmo_pmem.Page_state.S2m in
  let rw = Atmo_hw.Pte_bits.perm_rw and ro = Atmo_hw.Pte_bits.perm_ro in
  ignore (locked_step k ~thread:init (Syscall.Mmap { va = 0x4000_0000; count = 8; size = s4k; perm = rw }));
  for i = 0 to 7 do
    ignore (Kernel.resolve_user k ~thread:init ~vaddr:(0x4000_0000 + (i * 0x1000)))
  done;
  ignore (locked_step k ~thread:init (Syscall.Mprotect { va = 0x4000_0000; perm = ro }));
  ignore (locked_step k ~thread:init (Syscall.Munmap { va = 0x4000_0000; count = 8; size = s4k }));
  ignore (locked_step k ~thread:init (Syscall.Mmap { va = 0x8000_0000; count = 1; size = s2m; perm = rw }));
  ignore (locked_step k ~thread:init (Syscall.Munmap { va = 0x8000_0000; count = 1; size = s2m }));
  (* device phase: an IOMMU domain with a live DMA window, interrupt
     routed through the shared endpoint *)
  ignore (locked_step k ~thread:init (Syscall.Mmap { va = 0x5000_0000; count = 1; size = s4k; perm = rw }));
  (match locked_step k ~thread:init (Syscall.Assign_device { device = 7 }) with
   | Syscall.Runit -> ()
   | r -> Fmt.failwith "san: assign_device -> %a" Syscall.pp_ret r);
  ignore (locked_step k ~thread:init (Syscall.Io_map { device = 7; iova = 0x1_0000; va = 0x5000_0000 }));
  ignore (locked_step k ~thread:init (Syscall.Register_irq { device = 7; slot = 0 }));
  ignore (locked_step k ~thread:t2 (Syscall.Recv { slot = 0 }));
  ignore (locked_step k ~thread:init (Syscall.Irq_fire { device = 7 }));
  ignore (locked_step k ~thread:init (Syscall.Io_unmap { device = 7; iova = 0x1_0000 }));
  (* container lifecycle: delegate quota, then revoke it wholesale *)
  (match locked_step k ~thread:init (Syscall.New_container { quota = 64; cpus = Atmo_util.Iset.empty }) with
   | Syscall.Rptr c ->
     ignore (locked_step k ~thread:init (Syscall.Terminate_container { container = c }))
   | r -> Fmt.failwith "san: new_container -> %a" Syscall.pp_ret r);
  (* NVMe phase (driver-private buffers; exercises the cost model and
     the flight recorder, not the shadow map) *)
  let dclock = Atmo_hw.Clock.create () in
  let nvme = Atmo_drivers.Nvme.create ~clock:dclock ~cost:Atmo_sim.Cost.default ~capacity_blocks:1024 in
  Atmo_drivers.Nvme.set_device nvme 7;
  let block = Bytes.make Atmo_drivers.Nvme.block_bytes 'a' in
  for lba = 0 to 7 do
    ignore (Atmo_drivers.Nvme.submit_write nvme ~lba ~data:block)
  done;
  ignore (Atmo_drivers.Nvme.wait_all nvme);
  (stats, t2)

(* ------------------------------------------------------------------ *)
(* Hostile device sweep: all four device models under seeded fault
   injection.  Every fault the engines emit must be absorbed as a typed
   error and every ledger must balance at quiescence — Driver_lint runs
   right after inside [San_runtime.full_check]. *)

module Model = Atmo_devmodel.Model
module Hostile = Atmo_devmodel.Hostile
module Ixgbe = Atmo_drivers.Ixgbe
module Virtio_net = Atmo_drivers.Virtio_net
module Virtio_blk = Atmo_drivers.Virtio_blk
module Nvme = Atmo_drivers.Nvme

(* A standalone DMA environment: private memory, an IOMMU domain rooted
   in an identity-style page table, and a bump allocator of mapped iova
   spans.  Device traffic here cannot touch the workload kernel. *)
let mk_dev_env ~device =
  let mem = Phys_mem.create ~page_count:128 in
  let alloc = Atmo_pmem.Page_alloc.create mem ~reserved_frames:0 in
  let iommu = Atmo_hw.Iommu.create mem in
  let pt =
    match Page_table.create mem alloc with
    | Ok p -> p
    | Error _ -> Fmt.failwith "san: device env page table"
  in
  let next = ref 0x20_0000 in
  let span bytes =
    let base = !next in
    let pages = (bytes + Phys_mem.page_size - 1) / Phys_mem.page_size in
    for i = 0 to pages - 1 do
      let frame =
        match Atmo_pmem.Page_alloc.alloc_4k alloc ~purpose:Atmo_pmem.Page_alloc.User with
        | Some f -> f
        | None -> Fmt.failwith "san: device env out of frames"
      in
      match
        Page_table.map_4k pt ~vaddr:(base + (i * Phys_mem.page_size)) ~frame
          ~perm:Pte_bits.perm_rw
      with
      | Ok () -> ()
      | Error _ -> Fmt.failwith "san: device env map"
    done;
    next := base + (pages * Phys_mem.page_size);
    base
  in
  Atmo_hw.Iommu.attach iommu ~device ~root:(Page_table.cr3 pt);
  (mem, iommu, span)

let sweep_frame = Bytes.make 96 '\x5a'

let hostile_nic_sweep ~seed ~steps ~kind =
  let cost = Atmo_sim.Cost.default in
  let clock = Atmo_hw.Clock.create () in
  let slots = 8 in
  let rx drv_rx = ignore (drv_rx ~max:slots) in
  match kind with
  | `Ixgbe ->
    let mem, iommu, span = mk_dev_env ~device:11 in
    let nic = Ixgbe.create mem iommu ~device:11 ~clock ~cost in
    let buffers () = Array.init slots (fun _ -> (span 2048, 2048)) in
    (match Ixgbe.setup_rx nic ~ring_iova:(span Phys_mem.page_size) ~buffers:(buffers ()) with
     | Ok () -> ()
     | Error e -> Fmt.failwith "san: ixgbe setup: %s" (Atmo_devmodel.Fault.error_to_string e));
    (match Ixgbe.setup_tx nic ~ring_iova:(span Phys_mem.page_size) ~buffers:(buffers ()) with
     | Ok () -> ()
     | Error e -> Fmt.failwith "san: ixgbe setup: %s" (Atmo_devmodel.Fault.error_to_string e));
    Ixgbe.set_hostile nic (Some (Hostile.create ~seed ()));
    for i = 1 to steps do
      ignore (Ixgbe.wire_deliver nic sweep_frame);
      rx (Ixgbe.rx_burst nic);
      if i mod 4 = 0 then begin
        ignore (Ixgbe.tx_burst nic [ sweep_frame ]);
        ignore (Ixgbe.wire_collect nic)
      end
    done;
    Ixgbe.set_hostile nic None;
    for _ = 1 to 4 do rx (Ixgbe.rx_burst nic) done;
    Ixgbe.error_count nic
  | `Virtio ->
    let mem, iommu, span = mk_dev_env ~device:14 in
    let nic = Virtio_net.create mem iommu ~device:14 ~clock ~cost in
    let buffers () = Array.init slots (fun _ -> (span 2048, 2048)) in
    (match Virtio_net.setup_rx nic ~ring_iova:(span Phys_mem.page_size) ~buffers:(buffers ()) with
     | Ok () -> ()
     | Error e -> Fmt.failwith "san: virtio-net setup: %s" (Atmo_devmodel.Fault.error_to_string e));
    (match Virtio_net.setup_tx nic ~ring_iova:(span Phys_mem.page_size) ~buffers:(buffers ()) with
     | Ok () -> ()
     | Error e -> Fmt.failwith "san: virtio-net setup: %s" (Atmo_devmodel.Fault.error_to_string e));
    Virtio_net.set_hostile nic (Some (Hostile.create ~seed ()));
    for i = 1 to steps do
      ignore (Virtio_net.wire_deliver nic sweep_frame);
      rx (Virtio_net.rx_burst nic);
      if i mod 4 = 0 then begin
        ignore (Virtio_net.tx_burst nic [ sweep_frame ]);
        ignore (Virtio_net.wire_collect nic)
      end
    done;
    Virtio_net.set_hostile nic None;
    for _ = 1 to 4 do rx (Virtio_net.rx_burst nic) done;
    Virtio_net.error_count nic

let hostile_blk_sweep ~seed ~steps ~kind =
  let cost = Atmo_sim.Cost.default in
  let clock = Atmo_hw.Clock.create () in
  let block = Bytes.make Nvme.block_bytes 'b' in
  match kind with
  | `Nvme ->
    let dev = Nvme.create ~clock ~cost ~capacity_blocks:256 in
    Nvme.set_device dev 12;
    Nvme.set_hostile dev (Some (Hostile.create ~seed ()));
    for i = 1 to steps do
      let lba = i mod 256 in
      (match
         if i mod 3 = 0 then Result.map ignore (Nvme.submit_write dev ~lba ~data:block)
         else Result.map ignore (Nvme.submit_read dev ~lba)
       with
       | Ok () -> ()
       | Error _ -> ignore (Nvme.wait_all dev));
      if i mod 8 = 0 then ignore (Nvme.poll dev)
    done;
    ignore (Nvme.wait_all dev);
    Nvme.set_hostile dev None;
    ignore (Nvme.wait_all dev);
    Nvme.error_count dev
  | `Virtio ->
    let mem, iommu, span = mk_dev_env ~device:13 in
    let dev = Virtio_blk.create mem iommu ~device:13 ~clock ~cost ~capacity_blocks:256 in
    let depth = 16 in
    let _, _, _, ring_bytes = Atmo_drivers.Virtio_ring.layout ~qsz:(3 * depth) ~base:0 in
    let ring_iova = span ring_bytes in
    let arena_iova = span (depth * Virtio_blk.slot_bytes) in
    (match Virtio_blk.setup dev ~ring_iova ~arena_iova ~depth with
     | Ok () -> ()
     | Error e -> Fmt.failwith "san: virtio-blk setup: %s" (Atmo_devmodel.Fault.error_to_string e));
    Virtio_blk.set_hostile dev (Some (Hostile.create ~seed ()));
    for i = 1 to steps do
      let lba = i mod 256 in
      (match
         if i mod 3 = 0 then Result.map ignore (Virtio_blk.submit_write dev ~lba ~data:block)
         else Result.map ignore (Virtio_blk.submit_read dev ~lba)
       with
       | Ok () -> ()
       | Error _ -> ignore (Virtio_blk.wait_all dev));
      if i mod 8 = 0 then ignore (Virtio_blk.poll dev)
    done;
    ignore (Virtio_blk.wait_all dev);
    Virtio_blk.set_hostile dev None;
    ignore (Virtio_blk.wait_all dev);
    Virtio_blk.error_count dev

let run_hostile_sweep ~seed ~steps =
  let absorbed =
    hostile_nic_sweep ~seed ~steps ~kind:`Ixgbe
    + hostile_nic_sweep ~seed:(seed + 1) ~steps ~kind:`Virtio
    + hostile_blk_sweep ~seed:(seed + 2) ~steps ~kind:`Nvme
    + hostile_blk_sweep ~seed:(seed + 3) ~steps ~kind:`Virtio
  in
  absorbed

(* ------------------------------------------------------------------ *)
(* Driver plants: each must trip exactly its Driver_lint rule. *)

let plant_undefined_state k =
  (match Model.find ~device:7 with
   | Some m -> Model.force_undefined m ~why:"planted by atmo san"
   | None -> Fmt.failwith "san: no device model registered for device 7");
  ignore (Atmo_san.Driver_lint.lint k)

let plant_dma_escape k =
  (* an IOMMU window left mapped over the device's escape target: the
     stray write reaches memory, and the ledger records it unblocked *)
  let m = Model.register ~name:"rogue21" ~device:21 ~initial:Model.Active in
  Model.note_escape m ~blocked:false;
  ignore (Atmo_san.Driver_lint.lint k)

let plant_irq_storm k =
  (* a driver that disabled its storm auto-mask and stopped acking *)
  let m = Model.register ~name:"storm22" ~device:22 ~initial:Model.Active in
  Model.set_auto_mask m false;
  for _ = 1 to Model.storm_threshold + 8 do
    Model.raise_irq m
  done;
  ignore (Atmo_san.Driver_lint.lint k)

let plant_lost_completion k =
  let clock = Atmo_hw.Clock.create () in
  let dev = Nvme.create ~clock ~cost:Atmo_sim.Cost.default ~capacity_blocks:16 in
  Nvme.set_device dev 23;
  Nvme.set_drop_completion_plant dev true;
  (match Nvme.submit_read dev ~lba:1 with
   | Ok _ -> ()
   | Error e -> Fmt.failwith "san: plant submit: %s" (Atmo_devmodel.Fault.error_to_string e));
  ignore (Nvme.wait_all dev);
  ignore (Atmo_san.Driver_lint.lint k)

let plant_double_free k =
  match Atmo_pmem.Page_alloc.alloc_4k k.Kernel.alloc ~purpose:Atmo_pmem.Page_alloc.Kernel with
  | None -> Fmt.failwith "san: plant allocation failed"
  | Some addr ->
    Atmo_pmem.Page_alloc.free_kernel_page k.Kernel.alloc ~addr;
    (* second free: the allocator's own guard raises, but the sanitizer
       must already have classified the request *)
    (try Atmo_pmem.Page_alloc.free_kernel_page k.Kernel.alloc ~addr
     with Invalid_argument _ -> ())

let plant_unlocked k ~init =
  (* a bare Kernel.step: kernel state mutates inside a syscall with the
     big lock free *)
  ignore
    (Kernel.step k ~thread:init
       (Syscall.Mmap { va = 0x6000_0000; count = 1; size = Atmo_pmem.Page_state.S4k;
                       perm = Atmo_hw.Pte_bits.perm_rw }))

let plant_bad_pte k ~init =
  ignore
    (locked_step k ~thread:init
       (Syscall.Mmap { va = 0x7000_0000; count = 1; size = Atmo_pmem.Page_state.S4k;
                       perm = Atmo_hw.Pte_bits.perm_rw }));
  let pt = pt_of_thread k ~thread:init in
  let slot = leaf_entry_addr pt ~vaddr:0x7000_0000 in
  let mem = Page_table.mem pt in
  let e = Phys_mem.read_u64 mem ~addr:slot in
  (* set a bit the kernel never programs (bit 9, "available") *)
  Phys_mem.write_u64 mem ~addr:slot (Int64.logor e 0x200L);
  ignore (Atmo_san.Pt_lint.lint k)

let plant_stale_tlb k ~init =
  ignore
    (locked_step k ~thread:init
       (Syscall.Mmap { va = 0x7800_0000; count = 1; size = Atmo_pmem.Page_state.S4k;
                       perm = Atmo_hw.Pte_bits.perm_rw }));
  (* warm the TLB with the translation... *)
  ignore (Kernel.resolve_user k ~thread:init ~vaddr:0x7800_0000);
  let pt = pt_of_thread k ~thread:init in
  let slot = leaf_entry_addr pt ~vaddr:0x7800_0000 in
  (* ...then rip the leaf out from under it with no shootdown — the
     missing-invlpg bug class the coherence lint exists to catch *)
  Phys_mem.write_u64 (Page_table.mem pt) ~addr:slot 0L;
  ignore (Atmo_san.Tlb_lint.lint k)

let plant_fastpath_skip k ~init ~t2 =
  let pm = k.Kernel.pm in
  (* park the workload's receiver on the shared endpoint (draining any
     leftover messages first) so a sender finds a rendezvous partner *)
  let rec park n =
    if n = 0 then Fmt.failwith "san: could not park the receiver"
    else
      match locked_step k ~thread:t2 (Syscall.Recv { slot = 0 }) with
      | Syscall.Rblocked -> ()
      | Syscall.Rmsg _ -> park (n - 1)
      | r -> Fmt.failwith "san: park recv -> %a" Syscall.pp_ret r
  in
  park 8;
  (* put the sender alone on the CPU: with t2 parked, init is the only
     schedulable thread left *)
  if Atmo_pm.Proc_mgr.current pm = None then
    ignore (Atmo_pm.Proc_mgr.dequeue_next pm);
  if
    Atmo_pm.Proc_mgr.current pm <> Some init
    || not (Atmo_pm.Sched_queue.is_empty (Atmo_pm.Proc_mgr.cur_queue pm))
  then Fmt.failwith "san: fastpath guard could not be established";
  (* one rendezvous through the fastpath with the requeue skipped: the
     preempted sender ends up Runnable but queued nowhere *)
  Kernel.set_fastpath_skip_plant true;
  Fun.protect
    ~finally:(fun () -> Kernel.set_fastpath_skip_plant false)
    (fun () ->
      match
        locked_step k ~thread:init
          (Syscall.Send { slot = 0; msg = Atmo_pm.Message.scalars_only [ 0xdead ] })
      with
      | Syscall.Runit -> ()
      | r -> Fmt.failwith "san: plant send -> %a" Syscall.pp_ret r);
  ignore (Atmo_san.Sched_lint.lint k)

let plant_span_leak k ~init ~t2 =
  (* park the receiver so init's send rendezvouses, then force the
     slowpath and make it drop the rendezvous span's end: the open-span
     stack is left unbalanced at quiescence *)
  let rec park n =
    if n = 0 then Fmt.failwith "san: could not park the receiver"
    else
      match locked_step k ~thread:t2 (Syscall.Recv { slot = 0 }) with
      | Syscall.Rblocked -> ()
      | Syscall.Rmsg _ -> park (n - 1)
      | r -> Fmt.failwith "san: park recv -> %a" Syscall.pp_ret r
  in
  park 8;
  Kernel.set_fastpath false;
  Kernel.set_span_leak_plant true;
  Fun.protect
    ~finally:(fun () ->
      Kernel.set_span_leak_plant false;
      Kernel.set_fastpath true)
    (fun () ->
      match
        locked_step k ~thread:init
          (Syscall.Send { slot = 0; msg = Atmo_pm.Message.scalars_only [ 0xbeef ] })
      with
      | Syscall.Runit -> ()
      | r -> Fmt.failwith "san: plant send -> %a" Syscall.pp_ret r);
  ignore (Atmo_san.Span_lint.lint k)

(* Fine-grained-regime plants: the three cross-CPU failure classes the
   broken-up big lock introduces, each tripping exactly its rule. *)

let plant_lock_order () =
  (* acquire against the hierarchy: an endpoint shard is rank 1, a CPU
     queue rank 0, so taking the queue lock second inverts the order
     every kernel entry must follow (cpu-queue < endpoint < map-writer) *)
  let ep = Lockcheck.Endpoint_shard 3 and q = Lockcheck.Cpu_queue 0 in
  Lockcheck.acquire_class ~site:"plant.lock_order" ~cpu:0 ep;
  Lockcheck.acquire_class ~site:"plant.lock_order" ~cpu:0 q;
  Lockcheck.release_class ~cpu:0 q;
  Lockcheck.release_class ~cpu:0 ep

let plant_queue_corrupt k ~init =
  let pm = k.Kernel.pm in
  if Atmo_pm.Proc_mgr.sched_cpus pm < 2 then
    Fmt.failwith "san: queue-corrupt plant needs >= 2 run queues";
  (* a fresh Runnable thread sits on its home queue (cpu 0)... *)
  let t3 =
    match locked_step k ~thread:init Syscall.New_thread with
    | Syscall.Rptr t -> t
    | r -> Fmt.failwith "san: plant new_thread -> %a" Syscall.pp_ret r
  in
  (* ...and a buggy wakeup path enqueues it on cpu 1 as well.  Each
     deque stays individually well-formed; only the global census can
     see the double enqueue. *)
  Atmo_pm.Sched_queue.push_back (Atmo_pm.Proc_mgr.queue pm ~cpu:1) t3;
  ignore (Atmo_san.Sched_lint.lint k)

let plant_lost_steal k ~init =
  let pm = k.Kernel.pm in
  if Atmo_pm.Proc_mgr.sched_cpus pm < 2 then
    Fmt.failwith "san: lost-steal plant needs >= 2 run queues";
  if Atmo_pm.Proc_mgr.current_of pm ~cpu:1 <> None then
    Fmt.failwith "san: lost-steal plant needs cpu 1 idle";
  (* a Runnable thread homed on cpu 0, and nothing else to run *)
  let t3 =
    match locked_step k ~thread:init Syscall.New_thread with
    | Syscall.Rptr t -> t
    | r -> Fmt.failwith "san: plant new_thread -> %a" Syscall.pp_ret r
  in
  (* idle cpu 1 steals it — the ledger records (thief, victim, thread) *)
  Atmo_pm.Proc_mgr.set_cpu pm 1;
  let stole = Atmo_pm.Proc_mgr.dequeue_next pm in
  Atmo_pm.Proc_mgr.set_cpu pm 0;
  if stole <> Some t3 then Fmt.failwith "san: lost-steal plant: steal did not happen";
  if not (List.exists (fun (_, _, th) -> th = t3) (Atmo_pm.Proc_mgr.steal_ledger pm))
  then Fmt.failwith "san: lost-steal plant: steal left no ledger entry";
  (* ...then a terminate races the in-flight steal: the buggy teardown
     skips the ledger scrub, leaving the thief a dead reference *)
  Atmo_pm.Proc_mgr.set_lost_steal_plant pm true;
  Fun.protect
    ~finally:(fun () -> Atmo_pm.Proc_mgr.set_lost_steal_plant pm false)
    (fun () -> Atmo_pm.Proc_mgr.destroy_thread pm ~thread:t3);
  ignore (Atmo_san.Sched_lint.lint k)

let san plant iterations seed =
  setup_logs ();
  Obs_metrics.reset ();
  Obs_span.reset ();
  Model.reset ();
  (* trace into a flight recorder so violation reports carry the event
     trail leading up to them *)
  let recorder = Obs_flight.create ~cpus:2 ~slots:256 ~slot_size:Obs_event.slot_bytes in
  Obs_sink.install (Obs_sink.Flight recorder);
  San_runtime.arm ~poison:true ~lockcheck:true ~attribution:true ();
  let finish code =
    San_runtime.disarm ();
    Obs_sink.install Obs_sink.Disabled;
    Obs_sink.set_clock (fun () -> 0);
    Obs_sink.set_cpu 0;
    Obs_span.reset ();
    Model.reset ();
    if code <> 0 then
      Format.printf "san: failing run is replayable with --seed %d@." seed;
    code
  in
  match Kernel.boot Kernel.default_boot with
  | Error e ->
    Format.eprintf "boot: %a@." Atmo_util.Errno.pp e;
    finish 1
  | Ok (k, init) ->
    San_runtime.attach k;
    let stats, t2 = run_san_workload k ~init ~iterations in
    let absorbed = run_hostile_sweep ~seed ~steps:200 in
    let structural = San_runtime.full_check k in
    let clean_count = San_report.count () in
    Format.printf
      "san: %d syscalls under the big lock, %d accesses checked, %d hostile fault(s) \
       absorbed as typed errors (seed %d), %d structural check(s) failed@."
      stats.Atmo_sim.Smp.syscalls_executed
      (Atmo_san.Memsan.checked ())
      absorbed seed structural;
    (match plant with
     | "none" ->
       if clean_count = 0 then begin
         Format.printf "clean: no violations.@.";
         finish 0
       end
       else begin
         Format.printf "%a@." San_report.pp_summary ();
         finish 1
       end
     | _ ->
       if clean_count <> 0 then begin
         Format.printf "workload was not clean before planting:@.%a@."
           San_report.pp_summary ();
         finish 1
       end
       else begin
         let expected =
           match plant with
           | "double-free" -> plant_double_free k; San_report.Double_free
           | "unlocked" -> plant_unlocked k ~init; San_report.Unlocked_mutation
           | "bad-pte" -> plant_bad_pte k ~init; San_report.Malformed_pte
           | "stale-tlb" -> plant_stale_tlb k ~init; San_report.Tlb_stale
           | "fastpath-skip" ->
             plant_fastpath_skip k ~init ~t2; San_report.Sched_incoherent
           | "span-leak" -> plant_span_leak k ~init ~t2; San_report.Span_leak
           | "lock-order" -> plant_lock_order (); San_report.Lock_order
           | "queue-corrupt" ->
             plant_queue_corrupt k ~init; San_report.Queue_corrupt
           | "lost-steal" -> plant_lost_steal k ~init; San_report.Lost_steal
           | "undefined-state" ->
             plant_undefined_state k; San_report.Drv_undefined_state
           | "dma-escape" -> plant_dma_escape k; San_report.Drv_dma_escape
           | "irq-storm" -> plant_irq_storm k; San_report.Drv_irq_storm
           | "lost-completion" ->
             plant_lost_completion k; San_report.Drv_lost_completion
           | other -> Fmt.failwith "san: unknown plant %S" other
         in
         let hits, others =
           List.partition (fun r -> r.San_report.rule = expected) (San_report.reports ())
         in
         let driver_plant =
           match expected with
           | San_report.Drv_undefined_state | San_report.Drv_dma_escape
           | San_report.Drv_irq_storm | San_report.Drv_lost_completion -> true
           | _ -> false
         in
         match hits with
         | _ :: _ when driver_plant && others <> [] ->
           (* the driver plants are surgical: exactly their rule, nothing else *)
           Format.printf "planted %s tripped %d unrelated report(s) too:@.%a@." plant
             (List.length others) San_report.pp_summary ();
           finish 1
         | r :: _ ->
           Format.printf "planted %s detected:@.%a@." plant San_report.pp r;
           finish 0
         | [] ->
           Format.printf "planted %s NOT detected (%d other report(s)):@.%a@." plant
             (San_report.count ()) San_report.pp_summary ();
           finish 1
       end)

(* ------------------------------------------------------------------ *)

let scale_arg =
  Arg.(value & opt int 6 & info [ "scale" ] ~doc:"World size for the verification suite.")

let threads_arg =
  Arg.(
    value
    & opt int 0
    & info [ "threads"; "j" ]
        ~doc:"Discharge obligations on N domains (0 = auto, the default).")

let verbose_arg = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-obligation report.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")
let steps_arg = Arg.(value & opt int 300 & info [ "steps" ] ~doc:"Number of transitions.")

let incremental_arg =
  Arg.(
    value & flag
    & info [ "incremental" ]
        ~doc:
          "Full run, one syscall transition, then a dirty-set incremental re-run \
           checked verdict-identical against a full re-check.")

let verify_plant_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "plant" ] ~docv:"BUG"
        ~doc:"Plant $(b,stale-proof): mutate the kernel behind the dirty tracker.")

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"Discharge the verification obligation suites")
    Term.(const verify $ scale_arg $ threads_arg $ verbose_arg $ incremental_arg
          $ verify_plant_arg)

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Randomized refinement checking of the kernel")
    Term.(const fuzz $ seed_arg $ steps_arg)

let ni_cmd =
  Cmd.v
    (Cmd.info "ni" ~doc:"Noninterference harness (unwinding conditions)")
    Term.(const ni $ seed_arg $ steps_arg)

let boot_cmdliner =
  Cmd.v (Cmd.info "boot" ~doc:"Boot a kernel and print its abstract state")
    Term.(const boot_cmd $ const ())

let sink_arg =
  Arg.(
    value
    & opt (enum [ ("flight", "flight"); ("disabled", "disabled") ]) "flight"
    & info [ "sink" ] ~doc:"Event sink: $(b,flight) records; $(b,disabled) is the baseline.")

let trace_iters_arg =
  Arg.(value & opt int 50 & info [ "iterations" ] ~doc:"IPC ping-pong rounds in the SMP phase.")

let trace_events_arg =
  Arg.(value & opt int 40 & info [ "events" ] ~doc:"Maximum decoded events to print.")

let trace_slots_arg =
  Arg.(value & opt int 256 & info [ "slots" ] ~doc:"Flight-recorder slots per CPU (power of two).")

let workload_arg =
  Arg.(
    value
    & opt (enum [ ("scripted", "scripted"); ("kv", "kv") ]) "scripted"
    & info [ "workload" ]
        ~doc:
          "Workload to record: $(b,scripted) (IPC ping-pong, mmap churn, NVMe) or \
           $(b,kv) (the kv-store GET demo; $(b,--iterations) is the request count).")

let trace_export_arg =
  Arg.(
    value
    & opt (some (enum [ ("chrome", "chrome") ])) None
    & info [ "export" ]
        ~doc:"Export the recorded stream: $(b,chrome) writes Chrome trace_event JSON.")

let trace_out_arg =
  Arg.(value & opt string "trace_chrome.json" & info [ "out" ] ~doc:"Output file for --export.")

let trace_filter_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "filter" ]
        ~doc:
          "Record only these event kinds: a comma-separated list of names as printed \
           under 'event kinds' (e.g. $(b,syscall_enter,syscall_exit,page_alloc)).  \
           Masked kinds cost one load+mask at the tracepoint and touch no counters.")

let trace_sample_arg =
  Arg.(
    value & opt int 0
    & info [ "sample" ]
        ~doc:
          "Keep 1 in 2^$(docv) admitted events per kind (0 = keep all).  Rejected \
           events are counted exactly in obs/sampled_out/<kind>."
        ~docv:"SHIFT")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Flight-record a workload; dump events and latency tables, optionally export \
          a Chrome trace")
    Term.(
      const trace $ sink_arg $ workload_arg $ trace_iters_arg $ trace_events_arg
      $ trace_slots_arg $ trace_filter_arg $ trace_sample_arg $ trace_export_arg
      $ trace_out_arg)

let requests_arg =
  Arg.(
    value & opt int 16
    & info [ "requests" ] ~doc:"GET requests to drive through the kv-store demo workload.")

let folded_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "folded" ]
        ~doc:"Also write the collapsed stacks to $(docv) (flamegraph.pl input).")

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Post-mortem profiler over the kv-store demo workload: request-path \
          reconstruction, self/total cycles per span kind, collapsed stacks")
    Term.(const profile $ requests_arg $ folded_arg)

let top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Per-container / per-process / per-thread / per-kind cycle accounting for the \
          kv-store demo workload; fails if container totals do not sum to cycles/total")
    Term.(const top $ requests_arg)

let metrics_export_arg =
  Arg.(
    value
    & opt (enum [ ("dump", "dump"); ("prom", "prom") ]) "dump"
    & info [ "export" ]
        ~doc:
          "Output format: $(b,dump) (deterministic registry snapshot) or $(b,prom) \
           (Prometheus text exposition).")

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "out" ] ~doc:"Write to $(docv) instead of stdout.")

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Dump the metrics registry populated by the kv-store demo workload")
    Term.(const metrics_main $ metrics_export_arg $ requests_arg $ metrics_out_arg)

let plant_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("none", "none"); ("double-free", "double-free");
             ("unlocked", "unlocked"); ("bad-pte", "bad-pte");
             ("stale-tlb", "stale-tlb"); ("fastpath-skip", "fastpath-skip");
             ("span-leak", "span-leak"); ("lock-order", "lock-order");
             ("queue-corrupt", "queue-corrupt"); ("lost-steal", "lost-steal");
             ("undefined-state", "undefined-state");
             ("dma-escape", "dma-escape"); ("irq-storm", "irq-storm");
             ("lost-completion", "lost-completion") ])
        "none"
    & info [ "plant" ]
        ~doc:
          "Plant a bug after the clean workload and require the sanitizer to catch it: \
           $(b,double-free), $(b,unlocked) (mutation without the big lock), \
           $(b,bad-pte) (reserved bits in a leaf entry), $(b,stale-tlb) \
           (a PTE torn out without a TLB shootdown), $(b,fastpath-skip) \
           (the IPC fastpath forgets to requeue the preempted sender), \
           $(b,span-leak) (the IPC slowpath opens its rendezvous span and never \
           closes it), $(b,lock-order) (a kernel path acquires a cpu-queue lock \
           while holding an endpoint shard, inverting the hierarchy), \
           $(b,queue-corrupt) (a thread enqueued on two CPUs' run queues at once), \
           $(b,lost-steal) (a terminate races an in-flight work steal, leaving the \
           thief a dead thread reference), \
           $(b,undefined-state) (a device model pushed into the state \
           the driver theorems forbid), $(b,dma-escape) (device DMA outside its \
           IOMMU window reaches memory), $(b,irq-storm) (auto-mask disabled, vector \
           never acked) or $(b,lost-completion) (the NVMe driver silently drops a \
           completion).")

let san_iters_arg =
  Arg.(value & opt int 50 & info [ "iterations" ] ~doc:"IPC ping-pong rounds in the SMP phase.")

let san_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ]
        ~doc:
          "Seed for the hostile device sweep (deterministic: the same seed replays the \
           same injected faults; printed on any failure).")

let san_cmd =
  Cmd.v
    (Cmd.info "san"
       ~doc:
         "Run the scripted workload under atmo-san (shadow permission map, free-page \
          poisoning, lock-discipline checking, container attribution, page-table lint, \
          leak audit); exit 0 iff clean — or, with $(b,--plant), iff the planted bug is \
          detected")
    Term.(const san $ plant_arg $ san_iters_arg $ san_seed_arg)

let () =
  let info =
    Cmd.info "atmo" ~version:"1.0"
      ~doc:"Atmosphere verified-microkernel reproduction toolkit"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ verify_cmd; fuzz_cmd; ni_cmd; boot_cmdliner; trace_cmd; profile_cmd; top_cmd;
            metrics_cmd; san_cmd ]))
