# Convenience targets over dune; `make check` is the pre-commit gate.

.PHONY: all build test test-san bench bench-tlb bench-ipc bench-span bench-dev \
	bench-verif bench-smp bench-all check trace obs profile top san verify clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 suite re-run with the sanitizer armed (shadow permission map
# checking every physical access); any violation fails the run.
test-san:
	SAN=1 dune runtest --force

bench:
	dune exec bench/main.exe -- all

# Software TLB/IOTLB: walk-vs-hit cost, IPC and ixgbe with caching on
# vs off, and the hot-vs-cold bit-identity replay.
bench-tlb:
	dune exec bench/main.exe -- tlb

# IPC ping-pong with the rendezvous fastpath on vs off: latency
# distribution, permission-map operations and allocation per
# rendezvous.  Writes BENCH_ipc.json.
bench-ipc:
	dune exec bench/main.exe -- ipc

# Span layer over the kv-store demo workload: tracing overhead in host
# time, cycle-model bit-identity, merged latency quantiles.  Writes
# BENCH_span.json.
bench-span:
	dune exec bench/main.exe -- span

# Device-model backend interchange and hostile-mode resilience: fault-free
# virtio-vs-ixgbe delivery identity, kv-store bit-identity across block and
# NIC backends, seeded hostile sweeps with bounded delivery loss and a clean
# driver lint.  Writes BENCH_dev.json.
bench-dev:
	dune exec bench/main.exe -- dev

# Incremental verification: full-suite discharge, one transition, then
# the dirty-set re-check against an oracle full re-discharge.  Writes
# BENCH_verif.json (verdict identity, re-check fraction, >= 5x speedup).
bench-verif:
	dune exec bench/main.exe -- verif

# Broken-up big kernel lock: 1->8 CPU scaling curve on the kv IPC
# workload under both lock regimes, plus the big-vs-fine on/off oracle
# (bit-identical returns, scheduling decisions and abstract state).
# Writes BENCH_smp.json (oracle identity; >= 2.5x fine-grained 8-CPU
# speedup floor).
bench-smp:
	dune exec bench/main.exe -- smp

# Every benchmark that writes a BENCH_*.json artifact, then the merge:
# `bench report` folds them into BENCH_summary.json, reports deltas
# >= 5% against the previous summary, and enforces the hard floors
# (cycle identity, TLB load reduction, fastpath map-op reduction).
bench-all:
	dune exec bench/main.exe -- obs
	dune exec bench/main.exe -- san
	dune exec bench/main.exe -- tlb
	dune exec bench/main.exe -- ipc
	dune exec bench/main.exe -- span
	dune exec bench/main.exe -- dev
	dune exec bench/main.exe -- verif
	dune exec bench/main.exe -- smp
	dune exec bench/main.exe -- report

# Pre-commit gate: build, tier-1 tests (plain and with the sanitizer
# armed, so the TLB-coherence, scheduler and span-balance lints run
# over every suite), the fastpath on/off oracle, the headline IPC
# table, the sanitizer over the scripted workload + hostile device
# sweep (clean run must report zero violations; the stale-TLB,
# fastpath-skip, span-leak, lock-order, queue-corrupt, lost-steal and
# driver plants must each be caught by exactly their rule), the
# big-lock/fine-grained scheduler oracle, the incremental verifier (dirty-set re-check
# bit-identical to a full oracle within the 20% budget; the stale-proof
# plant caught by exactly its rule), the profiler's request-path
# reconstruction over the kv-store demo, the trace CLI's per-kind
# --filter and --sample admission paths, and the obs + span + device +
# verif + smp benches + regression report (bit-identity and
# performance floors, including the <= 100% traced kv overhead with
# zero drops and exact accounting, the >= 5x incremental speedup and
# the >= 2.5x fine-grained 8-CPU scaling, over the BENCH_*.json set).
check:
	dune build && dune runtest && SAN=1 dune runtest --force \
	&& dune exec test/test_fastpath.exe \
	&& dune exec bench/main.exe -- table3 \
	&& dune exec bin/atmo_cli.exe -- san \
	&& dune exec bin/atmo_cli.exe -- san --plant stale-tlb \
	&& dune exec bin/atmo_cli.exe -- san --plant fastpath-skip \
	&& dune exec bin/atmo_cli.exe -- san --plant span-leak \
	&& dune exec bin/atmo_cli.exe -- san --plant lock-order \
	&& dune exec bin/atmo_cli.exe -- san --plant queue-corrupt \
	&& dune exec bin/atmo_cli.exe -- san --plant lost-steal \
	&& dune exec bin/atmo_cli.exe -- san --plant undefined-state \
	&& dune exec bin/atmo_cli.exe -- san --plant dma-escape \
	&& dune exec bin/atmo_cli.exe -- san --plant irq-storm \
	&& dune exec bin/atmo_cli.exe -- san --plant lost-completion \
	&& dune exec bin/atmo_cli.exe -- verify --incremental \
	&& dune exec bin/atmo_cli.exe -- verify --plant stale-proof \
	&& dune exec bin/atmo_cli.exe -- profile --requests 8 \
	&& dune exec bin/atmo_cli.exe -- trace --workload kv --iterations 20 \
	     --slots 4096 --events 0 --filter syscall_enter,syscall_exit,span_begin,span_end \
	&& dune exec bin/atmo_cli.exe -- trace --workload kv --iterations 20 \
	     --slots 4096 --events 0 --sample 2 \
	&& dune exec bench/main.exe -- obs \
	&& dune exec bench/main.exe -- span \
	&& dune exec bench/main.exe -- dev \
	&& dune exec bench/main.exe -- verif \
	&& dune exec bench/main.exe -- smp \
	&& dune exec bench/main.exe -- report

trace:
	dune exec bin/atmo_cli.exe -- trace

obs:
	dune exec bench/main.exe -- obs

# Post-mortem profiler and cycle-accounting tables over the kv-store
# demo workload.
profile:
	dune exec bin/atmo_cli.exe -- profile

top:
	dune exec bin/atmo_cli.exe -- top

# Full sanitizer demonstration: clean workload (including the seeded
# hostile device sweep), then the thirteen planted bugs, each of which
# must be detected with a typed report — the four driver plants by
# exactly their Driver_lint rule.
san:
	dune exec bin/atmo_cli.exe -- san
	dune exec bin/atmo_cli.exe -- san --plant double-free
	dune exec bin/atmo_cli.exe -- san --plant unlocked
	dune exec bin/atmo_cli.exe -- san --plant bad-pte
	dune exec bin/atmo_cli.exe -- san --plant stale-tlb
	dune exec bin/atmo_cli.exe -- san --plant fastpath-skip
	dune exec bin/atmo_cli.exe -- san --plant span-leak
	dune exec bin/atmo_cli.exe -- san --plant lock-order
	dune exec bin/atmo_cli.exe -- san --plant queue-corrupt
	dune exec bin/atmo_cli.exe -- san --plant lost-steal
	dune exec bin/atmo_cli.exe -- san --plant undefined-state
	dune exec bin/atmo_cli.exe -- san --plant dma-escape
	dune exec bin/atmo_cli.exe -- san --plant irq-storm
	dune exec bin/atmo_cli.exe -- san --plant lost-completion

# Obligation discharge via the CLI: the full suite, the incremental
# dirty-set re-check after one transition (verdicts must be
# bit-identical to the full oracle, within the 20% re-check budget),
# and the stale-proof plant (dropped dirty marks must be caught by
# exactly the stale-proof lint).
verify:
	dune exec bin/atmo_cli.exe -- verify
	dune exec bin/atmo_cli.exe -- verify --incremental
	dune exec bin/atmo_cli.exe -- verify --plant stale-proof

clean:
	dune clean
