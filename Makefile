# Convenience targets over dune; `make check` is the pre-commit gate.

.PHONY: all build test test-san bench check trace obs san clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 suite re-run with the sanitizer armed (shadow permission map
# checking every physical access); any violation fails the run.
test-san:
	SAN=1 dune runtest --force

bench:
	dune exec bench/main.exe -- all

# Pre-commit gate: build, tier-1 tests, the headline IPC table, and the
# sanitizer over the scripted IPC/mmap/superpage/NVMe workload (clean run
# must report zero violations; each plant must be caught).
check:
	dune build && dune runtest && dune exec bench/main.exe -- table3 \
	&& dune exec bin/atmo_cli.exe -- san

trace:
	dune exec bin/atmo_cli.exe -- trace

obs:
	dune exec bench/main.exe -- obs

# Full sanitizer demonstration: clean workload, then the three planted
# bugs, each of which must be detected with a typed report.
san:
	dune exec bin/atmo_cli.exe -- san
	dune exec bin/atmo_cli.exe -- san --plant double-free
	dune exec bin/atmo_cli.exe -- san --plant unlocked
	dune exec bin/atmo_cli.exe -- san --plant bad-pte

clean:
	dune clean
