# Convenience targets over dune; `make check` is the pre-commit gate.

.PHONY: all build test test-san bench bench-tlb bench-ipc check trace obs san clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 suite re-run with the sanitizer armed (shadow permission map
# checking every physical access); any violation fails the run.
test-san:
	SAN=1 dune runtest --force

bench:
	dune exec bench/main.exe -- all

# Software TLB/IOTLB: walk-vs-hit cost, IPC and ixgbe with caching on
# vs off, and the hot-vs-cold bit-identity replay.
bench-tlb:
	dune exec bench/main.exe -- tlb

# IPC ping-pong with the rendezvous fastpath on vs off: latency
# distribution, permission-map operations and allocation per
# rendezvous.  Writes BENCH_ipc.json.
bench-ipc:
	dune exec bench/main.exe -- ipc

# Pre-commit gate: build, tier-1 tests (plain and with the sanitizer
# armed, so the TLB-coherence and scheduler lints run over every
# suite), the fastpath on/off oracle, the headline IPC table, and the
# sanitizer over the scripted workload (clean run must report zero
# violations; the stale-TLB and fastpath-skip plants must be caught).
check:
	dune build && dune runtest && SAN=1 dune runtest --force \
	&& dune exec test/test_fastpath.exe \
	&& dune exec bench/main.exe -- table3 \
	&& dune exec bin/atmo_cli.exe -- san \
	&& dune exec bin/atmo_cli.exe -- san --plant stale-tlb \
	&& dune exec bin/atmo_cli.exe -- san --plant fastpath-skip

trace:
	dune exec bin/atmo_cli.exe -- trace

obs:
	dune exec bench/main.exe -- obs

# Full sanitizer demonstration: clean workload, then the five planted
# bugs, each of which must be detected with a typed report.
san:
	dune exec bin/atmo_cli.exe -- san
	dune exec bin/atmo_cli.exe -- san --plant double-free
	dune exec bin/atmo_cli.exe -- san --plant unlocked
	dune exec bin/atmo_cli.exe -- san --plant bad-pte
	dune exec bin/atmo_cli.exe -- san --plant stale-tlb
	dune exec bin/atmo_cli.exe -- san --plant fastpath-skip

clean:
	dune clean
