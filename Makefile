# Convenience targets over dune; `make check` is the pre-commit gate.

.PHONY: all build test bench check trace obs clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe -- all

check:
	dune build && dune runtest && dune exec bench/main.exe -- table3

trace:
	dune exec bin/atmo_cli.exe -- trace

obs:
	dune exec bench/main.exe -- obs

clean:
	dune clean
