(* The verified shared service in action: A and B establish shared-
   memory communication with V (page grants over endpoints); V serves
   both, releases every granted resource, and never mixes the sides.

   Run with: dune exec examples/shared_service.exe *)

module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Message = Atmo_pm.Message
module Scenario = Atmo_ni.Scenario
module Service_v = Atmo_ni.Service_v
module Page_state = Atmo_pmem.Page_state
module Pte = Atmo_hw.Pte_bits

let say fmt = Format.printf (fmt ^^ "@.")

let expect_ret what = function
  | Syscall.Rerr e -> failwith (Format.asprintf "%s: %a" what Atmo_util.Errno.pp e)
  | r -> r

let client_request k ~thread ~label ~scalars ~with_page =
  (* map a buffer, grant it with the request, then wait for the reply *)
  let va = 0x4000_0000 in
  let page =
    if with_page then begin
      (match Kernel.step k ~thread
               (Syscall.Mmap { va; count = 1; size = Page_state.S4k; perm = Pte.perm_rw })
       with
       | Syscall.Rmapped _ -> ()
       | Syscall.Rerr Atmo_util.Errno.Eexist -> () (* already mapped on a previous round *)
       | r -> failwith (Format.asprintf "%s mmap: %a" label Syscall.pp_ret r));
      Some { Message.src_vaddr = va; dst_vaddr = 0x9000_0000 }
    end
    else None
  in
  let msg = { Message.scalars; page; endpoint = None } in
  (match expect_ret (label ^ " send") (Kernel.step k ~thread (Syscall.Send { slot = 0; msg })) with
   | Syscall.Rblocked -> say "  %s: request %s queued (V not polling yet)" label
                           (String.concat "," (List.map string_of_int scalars))
   | Syscall.Runit -> say "  %s: request delivered immediately" label
   | _ -> ());
  ()

let client_collect k ~thread ~label =
  match Kernel.step k ~thread (Syscall.Recv { slot = 0 }) with
  | Syscall.Rmsg m ->
    say "  %s: got reply %s" label
      (String.concat "," (List.map string_of_int m.Message.scalars))
  | Syscall.Rblocked -> say "  %s: waiting for reply..." label
  | r -> failwith (Format.asprintf "%s recv: %a" label Syscall.pp_ret r)

let () =
  let s = match Scenario.build () with Ok s -> s | Error m -> failwith m in
  let k = s.Scenario.kernel in
  let v = Service_v.create s in

  say "Round 1: A and B both send requests with shared-memory buffers.";
  client_request k ~thread:s.Scenario.a_thread ~label:"A" ~scalars:[ 10; 20 ] ~with_page:true;
  client_request k ~thread:s.Scenario.b_thread ~label:"B" ~scalars:[ 7 ] ~with_page:true;

  say "@.V's event loop runs (poll A, poll B, serve, release, reply):";
  for _turn = 1 to 6 do
    match Service_v.step v with
    | Service_v.Served (side, scalars) ->
      say "  V served %s: request %s -> reply %s"
        (match side with Service_v.A_side -> "A" | Service_v.B_side -> "B")
        (String.concat "," (List.map string_of_int scalars))
        (String.concat "," (List.map string_of_int (Service_v.reply_for scalars)))
    | Service_v.Reply_delivered side ->
      say "  V redelivered the stashed reply to %s"
        (match side with Service_v.A_side -> "A" | Service_v.B_side -> "B")
    | Service_v.Rejected side ->
      say "  V rejected a malformed request from %s"
        (match side with Service_v.A_side -> "A" | Service_v.B_side -> "B")
    | Service_v.Idle -> ()
  done;

  say "@.Clients block to collect replies; V's next turns redeliver:";
  client_collect k ~thread:s.Scenario.a_thread ~label:"A";
  client_collect k ~thread:s.Scenario.b_thread ~label:"B";
  for _turn = 1 to 4 do
    match Service_v.step v with
    | Service_v.Reply_delivered side ->
      let thread =
        match side with
        | Service_v.A_side -> s.Scenario.a_thread
        | Service_v.B_side -> s.Scenario.b_thread
      in
      (match Kernel.take_delivered k ~thread with
       | Some m ->
         say "  %s woke up with reply %s"
           (match side with Service_v.A_side -> "A" | Service_v.B_side -> "B")
           (String.concat "," (List.map string_of_int m.Message.scalars))
       | None -> ())
    | _ -> ()
  done;

  say "@.V's functional correctness after serving both sides:";
  (match Service_v.wf v with
   | Ok () ->
     say "  V retained no client memory, holds exactly its two endpoints,";
     say "  and never blocked (served %d requests total)." (Service_v.served_total v)
   | Error msg -> failwith msg);

  (match Scenario.check_isolation s with
   | Ok () -> say "  A and B remain fully isolated (memory_iso, endpoint_iso)."
   | Error msg -> failwith msg);

  (match Atmo_core.Invariants.total_wf k with
   | Ok () -> say "  total_wf holds: no leaks, closures disjoint."
   | Error msg -> failwith msg)
