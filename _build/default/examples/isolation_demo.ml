(* Isolation and noninterference demo (§4.3): two untrusted containers
   A and B, completely isolated by the kernel, each talking to the
   verified shared service V.  Random, adversarial system calls from A
   and B run under the unwinding-condition checks.

   Run with: dune exec examples/isolation_demo.exe *)

module Scenario = Atmo_ni.Scenario
module Harness = Atmo_ni.Harness
module Service_v = Atmo_ni.Service_v

let say fmt = Format.printf (fmt ^^ "@.")

let () =
  say "Building the A/B/V configuration (Figure 1)...";
  let s =
    match Scenario.build () with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  say "  container A: 0x%x (thread 0x%x)" s.Scenario.a_cntr s.Scenario.a_thread;
  say "  container B: 0x%x (thread 0x%x)" s.Scenario.b_cntr s.Scenario.b_thread;
  say "  container V: 0x%x (thread 0x%x, endpoints 0x%x/0x%x)" s.Scenario.v_cntr
    s.Scenario.v_thread s.Scenario.ep_av s.Scenario.ep_bv;
  (match Scenario.check_isolation s with
   | Ok () -> say "  memory_iso and endpoint_iso hold."
   | Error msg -> failwith msg);

  say "@.Output consistency (determinism over 200 random steps, two worlds):";
  (match Harness.output_consistency ~seed:2024 ~steps:200 with
   | Ok () -> say "  identical returns and identical post-states throughout."
   | Error f -> failwith (Printf.sprintf "step %d: %s" f.Harness.at_step f.Harness.what));

  say "@.Step consistency (300 arbitrary syscalls from A and B, V serving):";
  (match Harness.step_consistency ~with_service:true ~seed:7 ~steps:300 () with
   | Ok n ->
     say "  %d steps: the other side's observation never changed," n;
     say "  isolation invariants and V's functional correctness held throughout."
   | Error f -> failwith (Printf.sprintf "step %d: %s" f.Harness.at_step f.Harness.what));

  say "@.Probe consistency (does an A step change B's own next return?):";
  (match Harness.probe_consistency ~seed:99 ~steps:30 ~probes:5 with
   | Ok () -> say "  no: B's returns are identical with and without A's step."
   | Error f -> failwith (Printf.sprintf "step %d: %s" f.Harness.at_step f.Harness.what));

  say "@.Unwinding conditions (OC, SC; LR follows from SC here) all hold."
