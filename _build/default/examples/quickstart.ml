(* Quickstart: boot the kernel, build a small world through system
   calls, exchange a message, and check the two theorems (refinement
   and total well-formedness) on every transition.

   Run with: dune exec examples/quickstart.exe *)

open Atmo_util
module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Message = Atmo_pm.Message
module H = Atmo_verif.Refine_harness
module Page_state = Atmo_pmem.Page_state
module Pte = Atmo_hw.Pte_bits

let say fmt = Format.printf (fmt ^^ "@.")

let step k ~thread call =
  (* every transition is checked against the abstract specification and
     the kernel-wide invariant, like the paper's refinement theorem *)
  let o = H.step_checked k ~thread call in
  (match (o.H.spec, o.H.wf) with
   | Ok (), Ok () -> ()
   | Error msg, _ -> failwith ("spec violation: " ^ msg)
   | _, Error msg -> failwith ("invariant violation: " ^ msg));
  say "  %-50s -> %s"
    (Format.asprintf "%a" Syscall.pp o.H.call)
    (Format.asprintf "%a" Syscall.pp_ret o.H.ret);
  o.H.ret

let () =
  say "Booting Atmosphere (16 MiB machine, root quota 4000 frames)...";
  let k, init =
    match Kernel.boot Kernel.default_boot with
    | Ok v -> v
    | Error e -> failwith (Format.asprintf "boot: %a" Errno.pp e)
  in
  say "init thread: 0x%x" init;

  say "@.Creating a container with a 256-frame quota and a worker setup:";
  ignore (step k ~thread:init (Syscall.New_container { quota = 256; cpus = Iset.empty }));
  ignore (step k ~thread:init Syscall.New_process);
  let worker =
    match step k ~thread:init Syscall.New_thread with
    | Syscall.Rptr t -> t
    | _ -> failwith "no worker thread"
  in

  say "@.Mapping an 8-page buffer into init's address space:";
  ignore
    (step k ~thread:init
       (Syscall.Mmap { va = 0x4000_0000; count = 8; size = Page_state.S4k; perm = Pte.perm_rw }));

  say "@.Rendezvous IPC with a page grant (worker waits, init sends):";
  ignore (step k ~thread:init (Syscall.New_endpoint { slot = 0 }));
  (* hand the descriptor to the worker over the endpoint-grant mechanism:
     the worker first blocks receiving on a descriptor init passes it at
     spawn time (trusted setup, as the boot environment would) *)
  (match
     Atmo_pm.Thread.slot
       (Atmo_pm.Perm_map.borrow k.Kernel.pm.Atmo_pm.Proc_mgr.thrd_perms ~ptr:init)
       0
   with
   | Some ep ->
     Atmo_pm.Perm_map.update k.Kernel.pm.Atmo_pm.Proc_mgr.thrd_perms ~ptr:worker
       (fun th -> Atmo_pm.Thread.set_slot th 0 (Some ep));
     Atmo_pm.Perm_map.update k.Kernel.pm.Atmo_pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
         { e with Atmo_pm.Endpoint.refcount = e.Atmo_pm.Endpoint.refcount + 1 })
   | None -> failwith "no endpoint");
  ignore (step k ~thread:worker (Syscall.Recv { slot = 0 }));
  ignore
    (step k ~thread:init
       (Syscall.Send
          {
            slot = 0;
            msg =
              {
                Message.scalars = [ 42; 43 ];
                page = Some { Message.src_vaddr = 0x4000_0000; dst_vaddr = 0x7000_0000 };
                endpoint = None;
              };
          }));
  (match Kernel.take_delivered k ~thread:worker with
   | Some m -> say "worker received scalars: %s"
                 (String.concat ", " (List.map string_of_int m.Message.scalars))
   | None -> failwith "no delivery");
  (match
     ( Kernel.resolve_user k ~thread:init ~vaddr:0x4000_0000,
       Kernel.resolve_user k ~thread:worker ~vaddr:0x7000_0000 )
   with
   | Some a, Some b when a.Atmo_hw.Mmu.frame = b.Atmo_hw.Mmu.frame ->
     say "page shared: both map physical frame 0x%x" a.Atmo_hw.Mmu.frame
   | _ -> failwith "page grant failed");

  say "@.Tearing the buffer down again:";
  ignore
    (step k ~thread:init
       (Syscall.Munmap { va = 0x4000_0000; count = 8; size = Page_state.S4k }));

  say "@.Final state:";
  Format.printf "%a@." Atmo_spec.Abstract_state.pp (Atmo_core.Abstraction.abstract k);
  say "@.All transitions satisfied their specification. Done."
