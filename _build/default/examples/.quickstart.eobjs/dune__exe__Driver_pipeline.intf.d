examples/driver_pipeline.mli:
