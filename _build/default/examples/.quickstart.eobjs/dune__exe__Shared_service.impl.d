examples/shared_service.ml: Atmo_core Atmo_hw Atmo_ni Atmo_pm Atmo_pmem Atmo_spec Atmo_util Format List String
