examples/driver_pipeline.ml: Array Atmo_core Atmo_drivers Atmo_hw Atmo_net Atmo_pm Atmo_pmem Atmo_sim Atmo_spec Atmo_util Bytes Errno Format Int64 List Printf
