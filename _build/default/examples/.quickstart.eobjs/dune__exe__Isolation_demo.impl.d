examples/isolation_demo.ml: Atmo_ni Format Printf
