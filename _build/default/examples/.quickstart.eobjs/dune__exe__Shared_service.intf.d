examples/shared_service.mli:
