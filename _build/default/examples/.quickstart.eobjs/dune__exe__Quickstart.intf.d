examples/quickstart.mli:
