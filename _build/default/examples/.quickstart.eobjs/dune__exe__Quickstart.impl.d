examples/quickstart.ml: Atmo_core Atmo_hw Atmo_pm Atmo_pmem Atmo_spec Atmo_util Atmo_verif Errno Format Iset List String
