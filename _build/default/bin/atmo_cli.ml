(* atmo: command-line front end for the Atmosphere reproduction.

   Subcommands:
     verify   discharge the verification obligation suites
     fuzz     randomized refinement checking of the kernel
     ni       noninterference harness (unwinding conditions)
     boot     boot a kernel and print its abstract state *)

open Cmdliner
module Runner = Atmo_verif.Runner
module Catalog = Atmo_verif.Catalog
module Obligation = Atmo_verif.Obligation
module Kernel = Atmo_core.Kernel

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info)

(* ------------------------------------------------------------------ *)

let verify scale threads verbose =
  setup_logs ();
  match Catalog.full_suite ~scale with
  | Error msg ->
    Format.eprintf "failed to build the verification world: %s@." msg;
    1
  | Ok suite ->
    let report = Runner.run ~threads suite in
    if verbose then Format.printf "%a@." Runner.pp report
    else
      Format.printf "%d obligations, %d threads, wall %.3f s, check %.3f s@."
        (List.length report.Runner.results)
        threads report.Runner.wall_s
        (Runner.total_check_time report);
    (match Runner.failures report with
     | [] ->
       Format.printf "all obligations discharged.@.";
       0
     | fs ->
       List.iter (fun f -> Format.printf "FAILED %a@." Obligation.pp_result f) fs;
       1)

let fuzz seed steps =
  setup_logs ();
  match Kernel.boot Kernel.default_boot with
  | Error e ->
    Format.eprintf "boot: %a@." Atmo_util.Errno.pp e;
    1
  | Ok (k, _) ->
    (match Atmo_verif.Refine_harness.random_trace_check ~seed ~steps k with
     | Ok n ->
       Format.printf "%d random transitions, every one satisfied its spec and total_wf.@." n;
       0
     | Error o ->
       Format.printf "violation at %a -> %a@.spec: %s@.wf: %s@." Atmo_spec.Syscall.pp
         o.Atmo_verif.Refine_harness.call Atmo_spec.Syscall.pp_ret
         o.Atmo_verif.Refine_harness.ret
         (match o.Atmo_verif.Refine_harness.spec with Ok () -> "ok" | Error m -> m)
         (match o.Atmo_verif.Refine_harness.wf with Ok () -> "ok" | Error m -> m);
       1)

let ni seed steps =
  setup_logs ();
  let show = function
    | Ok _ -> true
    | Error (f : Atmo_ni.Harness.failure) ->
      Format.printf "  FAILED at step %d: %s@." f.Atmo_ni.Harness.at_step
        f.Atmo_ni.Harness.what;
      false
  in
  Format.printf "output consistency...@.";
  let oc = show (Atmo_ni.Harness.output_consistency ~seed ~steps) in
  Format.printf "step consistency (with the verified service)...@.";
  let sc = show (Atmo_ni.Harness.step_consistency ~with_service:true ~seed ~steps ()) in
  Format.printf "probe consistency...@.";
  let pc =
    show (Atmo_ni.Harness.probe_consistency ~seed ~steps:(min steps 40) ~probes:5)
  in
  if oc && sc && pc then begin
    Format.printf "all unwinding conditions hold.@.";
    0
  end
  else 1

let boot_cmd () =
  setup_logs ();
  match Kernel.boot Kernel.default_boot with
  | Error e ->
    Format.eprintf "boot: %a@." Atmo_util.Errno.pp e;
    1
  | Ok (k, init) ->
    Format.printf "booted; init thread 0x%x@.%a@." init Atmo_spec.Abstract_state.pp
      (Atmo_core.Abstraction.abstract k);
    (match Atmo_core.Invariants.total_wf k with
     | Ok () ->
       Format.printf "total_wf holds.@.";
       0
     | Error msg ->
       Format.printf "total_wf BROKEN: %s@." msg;
       1)

(* ------------------------------------------------------------------ *)

let scale_arg =
  Arg.(value & opt int 6 & info [ "scale" ] ~doc:"World size for the verification suite.")

let threads_arg =
  Arg.(value & opt int 1 & info [ "threads"; "j" ] ~doc:"Discharge obligations on N domains.")

let verbose_arg = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-obligation report.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")
let steps_arg = Arg.(value & opt int 300 & info [ "steps" ] ~doc:"Number of transitions.")

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"Discharge the verification obligation suites")
    Term.(const verify $ scale_arg $ threads_arg $ verbose_arg)

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Randomized refinement checking of the kernel")
    Term.(const fuzz $ seed_arg $ steps_arg)

let ni_cmd =
  Cmd.v
    (Cmd.info "ni" ~doc:"Noninterference harness (unwinding conditions)")
    Term.(const ni $ seed_arg $ steps_arg)

let boot_cmdliner =
  Cmd.v (Cmd.info "boot" ~doc:"Boot a kernel and print its abstract state")
    Term.(const boot_cmd $ const ())

let () =
  let info =
    Cmd.info "atmo" ~version:"1.0"
      ~doc:"Atmosphere verified-microkernel reproduction toolkit"
  in
  exit (Cmd.eval' (Cmd.group info [ verify_cmd; fuzz_cmd; ni_cmd; boot_cmdliner ]))
