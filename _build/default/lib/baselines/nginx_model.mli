(** nginx comparator for the httpd benchmark (§6.6): event-driven
    server over kernel sockets — the request work plus the
    socket/epoll overhead per request. *)

val requests_per_second : Atmo_sim.Cost.t -> request_work:int -> float
