(** Linux comparator paths (§6.5–§6.6).

    Per-item cycle costs of the Linux configurations the paper measures
    against: the socket syscall path for packet workloads, and the
    libaio/fio block path for NVMe workloads (synchronous at batch 1,
    pipelined at larger batches). *)

val packet_cycles : Atmo_sim.Cost.t -> app_cycles:int -> float
(** Per-packet busy cycles of a socket-based application. *)

val packet_pps : Atmo_sim.Cost.t -> app_cycles:int -> float

val nvme_read_iops : Atmo_sim.Cost.t -> batch:int -> float
(** fio + libaio sequential reads: synchronous latency-bound at batch 1,
    block-layer CPU-bound as the batch grows. *)

val nvme_write_iops : Atmo_sim.Cost.t -> batch:int -> float
