(** seL4 comparator for the IPC microbenchmarks (Table 3).

    A cost model of seL4's synchronous IPC fast path and page-mapping
    system call, with the cycle figures the paper measured on c220g5.
    The model composes the same path structure as Atmosphere's
    (syscall entry, transfer, switch, exit) so the table's two rows are
    produced by the same machinery with different constants. *)

val call_reply_cycles : Atmo_sim.Cost.t -> int
(** Synchronous call + reply between two threads: 1026 cycles. *)

val map_page_cycles : Atmo_sim.Cost.t -> int
(** Mapping one 4 KiB page into a VSpace: 2650 cycles. *)

val call_reply_seconds : Atmo_sim.Cost.t -> float
