module Cost = Atmo_sim.Cost

let call_reply_cycles (c : Cost.t) = c.Cost.sel4_call_reply
let map_page_cycles (c : Cost.t) = c.Cost.sel4_map_page

let call_reply_seconds (c : Cost.t) =
  Cost.seconds_of_cycles c (call_reply_cycles c)
