module Cost = Atmo_sim.Cost

let packet_cycles (c : Cost.t) ~app_cycles =
  float_of_int (app_cycles + c.Cost.linux_stack_per_packet)

let packet_pps (c : Cost.t) ~app_cycles =
  c.Cost.frequency_hz /. packet_cycles c ~app_cycles

(* batch = in-flight IOs: throughput is the lesser of the pipelining
   limit (batch / device latency) and the block-layer CPU limit, capped
   by the device *)
let nvme_iops (c : Cost.t) ~batch ~cpu_per_io ~cap =
  let pipeline = float_of_int (max 1 batch) /. c.Cost.nvme_read_latency_s in
  let cpu = c.Cost.frequency_hz /. float_of_int cpu_per_io in
  Float.min cap (Float.min pipeline cpu)

let nvme_read_iops (c : Cost.t) ~batch =
  nvme_iops c ~batch ~cpu_per_io:c.Cost.linux_block_per_io ~cap:c.Cost.nvme_read_cap_iops

let nvme_write_iops (c : Cost.t) ~batch =
  nvme_iops c ~batch ~cpu_per_io:c.Cost.linux_block_write_per_io
    ~cap:c.Cost.nvme_write_cap_iops
