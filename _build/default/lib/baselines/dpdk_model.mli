(** DPDK / SPDK comparators: polling user-space frameworks with direct
    device access (PCIe passthrough), no kernel crossings on the data
    path. *)

val packet_pps : Atmo_sim.Cost.t -> app_cycles:int -> float
(** Per-core packet rate, capped at line rate. *)

val nvme_read_iops : Atmo_sim.Cost.t -> batch:int -> float
(** SPDK sequential reads: deep polling pipeline, device-capped. *)

val nvme_write_iops : Atmo_sim.Cost.t -> batch:int -> float
