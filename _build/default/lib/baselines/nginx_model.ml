module Cost = Atmo_sim.Cost

let requests_per_second (c : Cost.t) ~request_work =
  c.Cost.frequency_hz /. float_of_int (request_work + c.Cost.nginx_per_request_overhead)
