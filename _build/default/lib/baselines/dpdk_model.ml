module Cost = Atmo_sim.Cost

let packet_pps (c : Cost.t) ~app_cycles =
  let cpp = float_of_int (app_cycles + c.Cost.driver_per_packet) in
  Float.min c.Cost.nic_line_rate_pps (c.Cost.frequency_hz /. cpp)

(* polling keeps the device pipeline full regardless of batch size; the
   per-IO CPU cost is tiny, so the device cap dominates *)
let nvme_iops (c : Cost.t) ~batch ~cap =
  ignore batch;
  let cpu = c.Cost.frequency_hz /. float_of_int c.Cost.spdk_per_io in
  Float.min cap cpu

let nvme_read_iops c ~batch = nvme_iops c ~batch ~cap:c.Cost.nvme_read_cap_iops
let nvme_write_iops c ~batch = nvme_iops c ~batch ~cap:c.Cost.nvme_write_cap_iops
