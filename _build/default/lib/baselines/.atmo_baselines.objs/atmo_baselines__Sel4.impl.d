lib/baselines/sel4.ml: Atmo_sim
