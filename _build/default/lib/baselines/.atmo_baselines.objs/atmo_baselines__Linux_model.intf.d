lib/baselines/linux_model.mli: Atmo_sim
