lib/baselines/nginx_model.mli: Atmo_sim
