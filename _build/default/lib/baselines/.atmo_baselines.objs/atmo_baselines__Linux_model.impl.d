lib/baselines/linux_model.ml: Atmo_sim Float
