lib/baselines/sel4.mli: Atmo_sim
