lib/baselines/dpdk_model.ml: Atmo_sim Float
