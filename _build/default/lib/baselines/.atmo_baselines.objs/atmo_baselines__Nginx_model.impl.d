lib/baselines/nginx_model.ml: Atmo_sim
