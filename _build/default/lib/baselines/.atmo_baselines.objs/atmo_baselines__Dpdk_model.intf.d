lib/baselines/dpdk_model.mli: Atmo_sim
