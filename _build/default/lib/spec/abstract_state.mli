(** The abstract kernel state Ψ.

    Pure-data model of the whole kernel: every object kind as a map from
    pointer to abstract record, plus the explicit memory-allocator state
    (§4.2) as four page sets.  System-call specifications
    ({!Syscall_spec}) are relations between two values of {!t}; the
    concrete kernel is refined into this state by [Atmo_core.Abstraction].

    Equality is structural and total, so specs can state frame conditions
    ("every other object is unchanged") by direct comparison. *)

type athread = {
  at_owner_proc : int;
  at_state : Atmo_pm.Thread.sched_state;
  at_slots : (int * int) list;  (** occupied descriptor slots, ascending index *)
  at_msg : Atmo_pm.Message.t option;
}

type aproc = {
  ap_owner_container : int;
  ap_parent : int option;
  ap_children : int list;
  ap_threads : int list;
  ap_space : Atmo_pt.Page_table.entry Atmo_util.Imap.t;  (** vaddr -> mapping *)
  ap_pt_pages : Atmo_util.Iset.t;  (** page closure of the page table *)
}

type acontainer = {
  ac_parent : int option;
  ac_children : int list;
  ac_procs : int list;
  ac_quota : int;
  ac_used : int;
  ac_delegated : int;
  ac_cpus : Atmo_util.Iset.t;
  ac_depth : int;
  ac_path : int list;
  ac_subtree : Atmo_util.Iset.t;
}

type aendpoint = {
  ae_owner_container : int;
  ae_send_queue : int list;
  ae_recv_queue : int list;
  ae_refcount : int;
}

type adevice = {
  ad_owner_proc : int;
  ad_io_space : Atmo_pt.Page_table.entry Atmo_util.Imap.t;
      (** iova -> mapping, the device's DMA window *)
  ad_pt_pages : Atmo_util.Iset.t;  (** closure of the IOMMU page table *)
  ad_irq_endpoint : int option;  (** where the device's interrupt is routed *)
  ad_irq_pending : int;  (** interrupts raised with no receiver waiting *)
}

type t = {
  containers : acontainer Atmo_util.Imap.t;
  procs : aproc Atmo_util.Imap.t;
  threads : athread Atmo_util.Imap.t;
  endpoints : aendpoint Atmo_util.Imap.t;
  root : int;
  run_queue : int list;
  current : int option;
  free_4k : Atmo_util.Iset.t;
  free_2m : Atmo_util.Iset.t;
  free_1g : Atmo_util.Iset.t;
  allocated : Atmo_util.Iset.t;
  mapped : Atmo_util.Iset.t;
  merged : Atmo_util.Iset.t;
  devices : adevice Atmo_util.Imap.t;  (** IOMMU device table *)
}

val equal_athread : athread -> athread -> bool
val equal_aproc : aproc -> aproc -> bool
val equal_acontainer : acontainer -> acontainer -> bool
val equal_aendpoint : aendpoint -> aendpoint -> bool
val equal_adevice : adevice -> adevice -> bool
val equal : t -> t -> bool

(** {2 Accessors (the paper's Ψ.get_* spec functions)} *)

val thread_dom : t -> Atmo_util.Iset.t
val proc_dom : t -> Atmo_util.Iset.t
val container_dom : t -> Atmo_util.Iset.t
val endpoint_dom : t -> Atmo_util.Iset.t

val get_thread : t -> int -> athread
val get_proc : t -> int -> aproc
val get_container : t -> int -> acontainer
val get_endpoint : t -> int -> aendpoint

val get_address_space : t -> proc:int -> Atmo_pt.Page_table.entry Atmo_util.Imap.t
(** Abstract address space of a process (empty for dead pointers). *)

val proc_of_thread : t -> thread:int -> int option
val container_of_thread : t -> thread:int -> int option

val page_is_free : t -> int -> bool
(** The paper's [page_is_free]: the frame is in one of the free sets. *)

val free_pages : t -> Atmo_util.Iset.t

(** {2 Frame-condition helpers} *)

val threads_unchanged_except : t -> t -> Atmo_util.Iset.t -> bool
(** Thread maps agree outside the touched set (same domain, equal
    values). *)

val procs_unchanged_except : t -> t -> Atmo_util.Iset.t -> bool
val containers_unchanged_except : t -> t -> Atmo_util.Iset.t -> bool
val endpoints_unchanged_except : t -> t -> Atmo_util.Iset.t -> bool

val space_unchanged_except : t -> t -> proc:int -> Atmo_util.Iset.t -> bool
(** The address space of [proc] agrees outside the touched virtual
    addresses (the paper's "virtual addresses outside va_range are not
    changed"). *)

val memory_unchanged : t -> t -> bool
(** All four allocator sets are equal. *)

val devices_unchanged_except : t -> t -> Atmo_util.Iset.t -> bool

val observation_containers : t -> root:int -> acontainer Atmo_util.Imap.t
(** Containers of the subtree rooted at [root] (inclusive) — building
    block of the noninterference observation function. *)

val pp : Format.formatter -> t -> unit
(** Terse multi-line summary (object counts, allocator totals). *)
