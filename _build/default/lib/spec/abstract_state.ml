open Atmo_util
module Page_table = Atmo_pt.Page_table
module Thread = Atmo_pm.Thread
module Message = Atmo_pm.Message

type athread = {
  at_owner_proc : int;
  at_state : Thread.sched_state;
  at_slots : (int * int) list;
  at_msg : Message.t option;
}

type aproc = {
  ap_owner_container : int;
  ap_parent : int option;
  ap_children : int list;
  ap_threads : int list;
  ap_space : Page_table.entry Imap.t;
  ap_pt_pages : Iset.t;
}

type acontainer = {
  ac_parent : int option;
  ac_children : int list;
  ac_procs : int list;
  ac_quota : int;
  ac_used : int;
  ac_delegated : int;
  ac_cpus : Iset.t;
  ac_depth : int;
  ac_path : int list;
  ac_subtree : Iset.t;
}

type aendpoint = {
  ae_owner_container : int;
  ae_send_queue : int list;
  ae_recv_queue : int list;
  ae_refcount : int;
}

type adevice = {
  ad_owner_proc : int;
  ad_io_space : Page_table.entry Imap.t;
  ad_pt_pages : Iset.t;
  ad_irq_endpoint : int option;
  ad_irq_pending : int;
}

type t = {
  containers : acontainer Imap.t;
  procs : aproc Imap.t;
  threads : athread Imap.t;
  endpoints : aendpoint Imap.t;
  root : int;
  run_queue : int list;
  current : int option;
  free_4k : Iset.t;
  free_2m : Iset.t;
  free_1g : Iset.t;
  allocated : Iset.t;
  mapped : Iset.t;
  merged : Iset.t;
  devices : adevice Imap.t;
}

let equal_msg (a : Message.t option) b =
  match (a, b) with
  | None, None -> true
  | Some m, Some m' ->
    m.Message.scalars = m'.Message.scalars
    && m.Message.page = m'.Message.page
    && m.Message.endpoint = m'.Message.endpoint
  | None, Some _ | Some _, None -> false

let equal_athread a b =
  a.at_owner_proc = b.at_owner_proc
  && Thread.equal_sched_state a.at_state b.at_state
  && a.at_slots = b.at_slots
  && equal_msg a.at_msg b.at_msg

let equal_aproc a b =
  a.ap_owner_container = b.ap_owner_container
  && a.ap_parent = b.ap_parent
  && a.ap_children = b.ap_children
  && a.ap_threads = b.ap_threads
  && Imap.equal Page_table.equal_entry a.ap_space b.ap_space
  && Iset.equal a.ap_pt_pages b.ap_pt_pages

let equal_acontainer a b =
  a.ac_parent = b.ac_parent
  && a.ac_children = b.ac_children
  && a.ac_procs = b.ac_procs
  && a.ac_quota = b.ac_quota
  && a.ac_used = b.ac_used
  && a.ac_delegated = b.ac_delegated
  && Iset.equal a.ac_cpus b.ac_cpus
  && a.ac_depth = b.ac_depth
  && a.ac_path = b.ac_path
  && Iset.equal a.ac_subtree b.ac_subtree

let equal_aendpoint a b =
  a.ae_owner_container = b.ae_owner_container
  && a.ae_send_queue = b.ae_send_queue
  && a.ae_recv_queue = b.ae_recv_queue
  && a.ae_refcount = b.ae_refcount

let equal_adevice a b =
  a.ad_owner_proc = b.ad_owner_proc
  && Imap.equal Page_table.equal_entry a.ad_io_space b.ad_io_space
  && Iset.equal a.ad_pt_pages b.ad_pt_pages
  && a.ad_irq_endpoint = b.ad_irq_endpoint
  && a.ad_irq_pending = b.ad_irq_pending

let equal a b =
  Imap.equal equal_acontainer a.containers b.containers
  && Imap.equal equal_aproc a.procs b.procs
  && Imap.equal equal_athread a.threads b.threads
  && Imap.equal equal_aendpoint a.endpoints b.endpoints
  && a.root = b.root
  && a.run_queue = b.run_queue
  && a.current = b.current
  && Iset.equal a.free_4k b.free_4k
  && Iset.equal a.free_2m b.free_2m
  && Iset.equal a.free_1g b.free_1g
  && Iset.equal a.allocated b.allocated
  && Iset.equal a.mapped b.mapped
  && Iset.equal a.merged b.merged
  && Imap.equal equal_adevice a.devices b.devices

let thread_dom t = Imap.dom t.threads
let proc_dom t = Imap.dom t.procs
let container_dom t = Imap.dom t.containers
let endpoint_dom t = Imap.dom t.endpoints

let get_thread t p = Imap.find p t.threads
let get_proc t p = Imap.find p t.procs
let get_container t p = Imap.find p t.containers
let get_endpoint t p = Imap.find p t.endpoints

let get_address_space t ~proc =
  match Imap.find_opt proc t.procs with
  | None -> Imap.empty
  | Some p -> p.ap_space

let proc_of_thread t ~thread =
  Option.map (fun th -> th.at_owner_proc) (Imap.find_opt thread t.threads)

let container_of_thread t ~thread =
  match proc_of_thread t ~thread with
  | None -> None
  | Some p ->
    Option.map (fun pr -> pr.ap_owner_container) (Imap.find_opt p t.procs)

let free_pages t = Iset.union_list [ t.free_4k; t.free_2m; t.free_1g ]
let page_is_free t page = Iset.mem page (free_pages t)

let unchanged_except eq m m' touched = Imap.same_on_complement ~eq m m' touched

let threads_unchanged_except a b s = unchanged_except equal_athread a.threads b.threads s
let procs_unchanged_except a b s = unchanged_except equal_aproc a.procs b.procs s

let containers_unchanged_except a b s =
  unchanged_except equal_acontainer a.containers b.containers s

let endpoints_unchanged_except a b s =
  unchanged_except equal_aendpoint a.endpoints b.endpoints s

let space_unchanged_except a b ~proc touched =
  match (Imap.find_opt proc a.procs, Imap.find_opt proc b.procs) with
  | Some pa, Some pb ->
    Imap.same_on_complement ~eq:Page_table.equal_entry pa.ap_space pb.ap_space touched
  | None, None -> true
  | Some _, None | None, Some _ -> false

let memory_unchanged a b =
  Iset.equal a.free_4k b.free_4k
  && Iset.equal a.free_2m b.free_2m
  && Iset.equal a.free_1g b.free_1g
  && Iset.equal a.allocated b.allocated
  && Iset.equal a.mapped b.mapped
  && Iset.equal a.merged b.merged

let devices_unchanged_except a b s =
  unchanged_except equal_adevice a.devices b.devices s

let observation_containers t ~root =
  match Imap.find_opt root t.containers with
  | None -> Imap.empty
  | Some c ->
    Iset.fold
      (fun p acc ->
        match Imap.find_opt p t.containers with
        | Some cc -> Imap.add p cc acc
        | None -> acc)
      (Iset.add root c.ac_subtree) Imap.empty

let pp ppf t =
  Format.fprintf ppf
    "@[<v>Ψ{containers=%d; procs=%d; threads=%d; endpoints=%d;@ free4k=%d free2m=%d free1g=%d allocated=%d mapped=%d merged=%d;@ runq=%d; current=%s}@]"
    (Imap.cardinal t.containers) (Imap.cardinal t.procs) (Imap.cardinal t.threads)
    (Imap.cardinal t.endpoints) (Iset.cardinal t.free_4k) (Iset.cardinal t.free_2m)
    (Iset.cardinal t.free_1g) (Iset.cardinal t.allocated) (Iset.cardinal t.mapped)
    (Iset.cardinal t.merged) (List.length t.run_queue)
    (match t.current with None -> "-" | Some c -> Printf.sprintf "0x%x" c)
