lib/spec/abstract_state.ml: Atmo_pm Atmo_pt Atmo_util Format Imap Iset List Option Printf
