lib/spec/abstract_state.mli: Atmo_pm Atmo_pt Atmo_util Format
