lib/spec/syscall.ml: Atmo_hw Atmo_pm Atmo_pmem Atmo_util Format List
