lib/spec/syscall_spec.mli: Abstract_state Syscall
