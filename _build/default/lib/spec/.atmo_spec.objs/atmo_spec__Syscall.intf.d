lib/spec/syscall.mli: Atmo_hw Atmo_pm Atmo_pmem Atmo_util Format
