lib/spec/syscall_spec.ml: Abstract_state Atmo_hw Atmo_pm Atmo_pmem Atmo_pt Atmo_util Hashtbl Imap Iset List Option Printf Syscall
