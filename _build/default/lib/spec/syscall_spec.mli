(** Top-level system-call specifications.

    Executable counterpart of the paper's 2.9 K lines of abstract
    interface specification: for every system call, a relation between
    the abstract pre-state Ψ, post-state Ψ', the invoking thread, the
    arguments and the return value.  Each relation is a conjunction of
    named clauses (effect on the touched objects, frame conditions for
    everything else, allocator-set evolution), so a refinement failure
    reports the exact violated clause, like a Verus error location.

    Two properties hold uniformly across all calls and are checked
    first:

    - {b error atomicity}: a call returning [Rerr _] leaves Ψ unchanged;
    - {b frame conservation}: the allocator's page sets always account
      for exactly the same managed frames (nothing appears or
      disappears). *)

val check :
  pre:Abstract_state.t ->
  post:Abstract_state.t ->
  thread:int ->
  Syscall.t ->
  Syscall.ret ->
  (unit, string) result
(** First violated clause (prefixed with the syscall name), or [Ok]. *)

val clauses :
  pre:Abstract_state.t ->
  post:Abstract_state.t ->
  thread:int ->
  Syscall.t ->
  Syscall.ret ->
  (string * bool) list
(** All clauses with their verdicts, for reporting and for the
    per-obligation timing of the verification harness. *)

val free_frame_total : Abstract_state.t -> int
(** Number of 4 KiB frames on the free lists (superpage blocks counted
    by their frame span) — invariant under merge/split, so specs can
    state exact free-memory deltas. *)
