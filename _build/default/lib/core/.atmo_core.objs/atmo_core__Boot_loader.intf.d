lib/core/boot_loader.mli: Atmo_hw Atmo_util Kernel
