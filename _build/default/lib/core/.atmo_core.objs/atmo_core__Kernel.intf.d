lib/core/kernel.mli: Atmo_hw Atmo_pm Atmo_pmem Atmo_pt Atmo_spec Atmo_util
