lib/core/invariants.mli: Kernel
