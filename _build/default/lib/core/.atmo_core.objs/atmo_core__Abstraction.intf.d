lib/core/abstraction.mli: Atmo_spec Kernel
