lib/core/abstraction.ml: Atmo_pm Atmo_pmem Atmo_pt Atmo_spec Atmo_util Imap Kernel
