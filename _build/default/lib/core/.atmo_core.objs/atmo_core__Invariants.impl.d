lib/core/invariants.ml: Atmo_hw Atmo_pm Atmo_pmem Atmo_pt Atmo_util Format Hashtbl Imap Iset Kernel List Option
