lib/core/boot_loader.ml: Atmo_hw Atmo_util Errno Format Iset Kernel
