(** The trusted boot stage (§5 item 9).

    The paper's minimal boot loader enumerates physical memory, sets up
    the kernel's runtime environment and hands the verified kernel its
    initial configuration.  This module performs the same computation
    over an {!Atmo_hw.E820.map}: pick the largest usable region, reserve
    frames for the kernel image and boot stacks, and derive the root
    container quota, then boot the kernel with it.

    Like the paper's boot loader, this stage is trusted, not verified:
    its output is checked ([total_wf] holds immediately after boot), its
    internals are not. *)

type plan = {
  managed_region : Atmo_hw.E820.region;
  params : Kernel.boot_params;
}

val plan :
  Atmo_hw.E820.map ->
  kernel_image_frames:int ->
  cpus:Atmo_util.Iset.t ->
  (plan, string) result
(** Validate the firmware map and compute boot parameters: the machine
    is the largest usable region; the kernel image plus one boot stack
    per CPU are reserved at its bottom; everything else becomes the root
    quota. *)

val boot :
  Atmo_hw.E820.map ->
  kernel_image_frames:int ->
  cpus:Atmo_util.Iset.t ->
  (Kernel.t * int, string) result
(** Plan and boot. *)
