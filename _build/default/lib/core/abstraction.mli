(** The abstraction function α: concrete kernel → abstract state Ψ.

    The refinement theorem relates every concrete transition to the
    abstract specification through this function; it reads the flat
    permission maps, the ghost address-space maps of every page table,
    and the allocator's spec views, producing a pure
    {!Atmo_spec.Abstract_state.t} snapshot. *)

val abstract : Kernel.t -> Atmo_spec.Abstract_state.t
