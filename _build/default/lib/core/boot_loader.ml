open Atmo_util
module E820 = Atmo_hw.E820

type plan = {
  managed_region : E820.region;
  params : Kernel.boot_params;
}

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let plan map ~kernel_image_frames ~cpus =
  match E820.validate map with
  | Error msg -> errf "bad firmware map: %s" msg
  | Ok () ->
    (match E820.largest_usable map with
     | None -> Error "no usable memory"
     | Some region ->
       let frames = E820.frames_of region in
       (* one 4 KiB boot stack per CPU, plus the image *)
       let reserved = kernel_image_frames + max 1 (Iset.cardinal cpus) in
       if frames <= reserved + 8 then
         errf "usable region too small: %d frames for %d reserved" frames reserved
       else begin
         (* the root container gets everything the kernel can allocate,
            minus slack for the allocator's own bootstrapping *)
         let root_quota = frames - reserved - 4 in
         Ok
           {
             managed_region = region;
             params =
               {
                 Kernel.frames;
                 reserved_frames = reserved;
                 root_quota;
                 cpus;
               };
           }
       end)

let boot map ~kernel_image_frames ~cpus =
  match plan map ~kernel_image_frames ~cpus with
  | Error _ as e -> e
  | Ok p ->
    (match Kernel.boot p.params with
     | Ok (k, init) -> Ok (k, init)
     | Error e -> errf "kernel boot failed: %a" Errno.pp e)
