include Set.Make (Int)

let of_range ~lo ~hi =
  let rec go acc i = if i >= hi then acc else go (add i acc) (i + 1) in
  go empty lo

let pp ppf s =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Format.pp_print_int)
    (elements s)

let disjoint3 a b c = disjoint a b && disjoint a c && disjoint b c

let union_list l = List.fold_left union empty l

let pairwise_disjoint l =
  (* Linear-time check: the union of pairwise-disjoint sets has cardinal
     equal to the sum of cardinals. *)
  let total = List.fold_left (fun acc s -> acc + cardinal s) 0 l in
  cardinal (union_list l) = total
