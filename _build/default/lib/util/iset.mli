(** Sets of ints (frame numbers, pointers, object ids).

    The paper's ghost state is phrased as [Set<T>] and [Map<K,V>]; this and
    {!Imap} are their executable counterparts.  Thin wrapper over
    [Stdlib.Set.Make (Int)] with a few spec-level helpers. *)

include Set.S with type elt = int

val of_range : lo:int -> hi:int -> t
(** Frames [lo], [lo+1], ..., [hi-1]. *)

val pp : Format.formatter -> t -> unit

val disjoint3 : t -> t -> t -> bool
(** Pairwise disjointness of three sets. *)

val union_list : t list -> t

val pairwise_disjoint : t list -> bool
(** Pairwise disjointness of a family; the core of the paper's
    [page_closure] safety argument. *)
