lib/util/errno.ml: Format
