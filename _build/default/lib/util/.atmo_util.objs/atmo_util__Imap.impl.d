lib/util/imap.ml: Int Iset List Map
