lib/util/imap.mli: Iset Map
