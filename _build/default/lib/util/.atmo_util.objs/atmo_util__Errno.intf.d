lib/util/errno.mli: Format
