type t =
  | Enomem
  | Equota
  | Einval
  | Esrch
  | Eperm
  | Efull
  | Eexist
  | Ewouldblock
  | Ebusy

let to_string = function
  | Enomem -> "ENOMEM"
  | Equota -> "EQUOTA"
  | Einval -> "EINVAL"
  | Esrch -> "ESRCH"
  | Eperm -> "EPERM"
  | Efull -> "EFULL"
  | Eexist -> "EEXIST"
  | Ewouldblock -> "EWOULDBLOCK"
  | Ebusy -> "EBUSY"

let pp ppf e = Format.pp_print_string ppf (to_string e)
let equal (a : t) b = a = b
