include Map.Make (Int)

let dom m = fold (fun k _ acc -> Iset.add k acc) m Iset.empty

let keys m = List.map fst (bindings m)

let agree_on ~eq m m' s =
  Iset.for_all
    (fun k ->
      match (find_opt k m, find_opt k m') with
      | Some a, Some b -> eq a b
      | _ -> false)
    s

let same_on_complement ~eq m m' s =
  let outside m = Iset.diff (dom m) s in
  Iset.equal (outside m) (outside m')
  && Iset.for_all
       (fun k ->
         match (find_opt k m, find_opt k m') with
         | Some a, Some b -> eq a b
         | _ -> false)
       (outside m)
