(** Maps keyed by ints; executable counterpart of Verus [Map<K,V>]. *)

include Map.S with type key = int

val dom : 'a t -> Iset.t
(** Domain as a set — mirrors the ubiquitous [.dom()] of the paper's
    specifications. *)

val keys : 'a t -> int list

val agree_on : eq:('a -> 'a -> bool) -> 'a t -> 'a t -> Iset.t -> bool
(** [agree_on ~eq m m' s]: both maps are defined and [eq]-equal on every
    key in [s].  Used by frame conditions ("other objects unchanged"). *)

val same_on_complement :
  eq:('a -> 'a -> bool) -> 'a t -> 'a t -> Iset.t -> bool
(** Both maps have the same domain outside [s] and [eq]-agree there; the
    standard "nothing outside the touched set changed" clause. *)
