(** Kernel error numbers shared by the concrete kernel and the abstract
    specification: system calls return [('a, Errno.t) result]. *)

type t =
  | Enomem  (** out of physical memory *)
  | Equota  (** container memory quota exhausted *)
  | Einval  (** malformed argument (alignment, range, slot index) *)
  | Esrch  (** no such object (dangling pointer argument) *)
  | Eperm  (** caller lacks the right (wrong container/process) *)
  | Efull  (** a fixed-capacity kernel list is full *)
  | Eexist  (** target already occupied (mapping, slot) *)
  | Ewouldblock  (** non-blocking operation would block *)
  | Ebusy  (** object still referenced and cannot be destroyed *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val to_string : t -> string
