lib/net/kv_store.mli:
