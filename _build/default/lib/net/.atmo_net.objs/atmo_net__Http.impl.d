lib/net/http.ml: Buffer List Printf String
