lib/net/maglev.mli:
