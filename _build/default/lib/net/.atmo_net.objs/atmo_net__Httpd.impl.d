lib/net/httpd.ml: Hashtbl Http List Queue
