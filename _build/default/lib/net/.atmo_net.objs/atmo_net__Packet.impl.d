lib/net/packet.ml: Bytes Char Fnv Int32
