lib/net/packet.mli:
