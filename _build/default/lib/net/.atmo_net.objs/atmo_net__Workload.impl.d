lib/net/workload.ml: Bytes Float List Printf Random String
