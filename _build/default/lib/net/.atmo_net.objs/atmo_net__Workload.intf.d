lib/net/workload.mli:
