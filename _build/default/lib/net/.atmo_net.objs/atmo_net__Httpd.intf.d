lib/net/httpd.mli:
