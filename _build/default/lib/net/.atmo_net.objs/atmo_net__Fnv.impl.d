lib/net/fnv.ml: Bytes Char Int64
