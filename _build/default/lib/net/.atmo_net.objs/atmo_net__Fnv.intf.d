lib/net/fnv.mli:
