lib/net/kv_store.ml: Array Bytes Char Fnv
