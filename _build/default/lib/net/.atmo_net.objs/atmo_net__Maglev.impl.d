lib/net/maglev.ml: Array Fnv Option Packet
