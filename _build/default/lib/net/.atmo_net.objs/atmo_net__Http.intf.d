lib/net/http.mli:
