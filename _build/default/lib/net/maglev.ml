type t = {
  table : int array;  (* slot -> backend index *)
  names : string array;
}

(* offset/skip permutation per the Maglev paper: two independent hashes
   of the backend name *)
let permutation_params name ~m =
  let h1 = Fnv.hash_string name in
  let h2 = Fnv.hash_string (name ^ "#skip") in
  let offset = Fnv.to_bucket h1 ~buckets:m in
  let skip = 1 + Fnv.to_bucket h2 ~buckets:(m - 1) in
  (offset, skip)

let create ~backends ~table_size =
  if backends = [] then invalid_arg "Maglev.create: no backends";
  if table_size <= 0 then invalid_arg "Maglev.create: table_size <= 0";
  let names = Array.of_list backends in
  let n = Array.length names in
  let m = table_size in
  let table = Array.make m (-1) in
  let params = Array.map (fun name -> permutation_params name ~m) names in
  let next = Array.make n 0 in
  let filled = ref 0 in
  (* round-robin: each backend claims its next unclaimed preferred slot *)
  let rec fill () =
    if !filled < m then begin
      for i = 0 to n - 1 do
        if !filled < m then begin
          let offset, skip = params.(i) in
          let rec claim () =
            let j = next.(i) in
            next.(i) <- j + 1;
            let slot = (offset + (j * skip)) mod m in
            if table.(slot) = -1 then begin
              table.(slot) <- i;
              incr filled
            end
            else claim ()
          in
          claim ()
        end
      done;
      fill ()
    end
  in
  fill ();
  { table; names }

let table_size t = Array.length t.table
let backends t = Array.to_list t.names

let lookup t h =
  let m = Array.length t.table in
  t.names.(t.table.(Fnv.to_bucket h ~buckets:m))

let lookup_packet t frame =
  Option.map (lookup t) (Packet.five_tuple_hash frame)

let slot_counts t =
  let counts = Array.make (Array.length t.names) 0 in
  Array.iter (fun i -> counts.(i) <- counts.(i) + 1) t.table;
  Array.to_list (Array.mapi (fun i c -> (t.names.(i), c)) counts)

let disruption a b =
  let m = Array.length a.table in
  if m <> Array.length b.table then invalid_arg "Maglev.disruption: sizes differ";
  let moved = ref 0 in
  for i = 0 to m - 1 do
    if a.names.(a.table.(i)) <> b.names.(b.table.(i)) then incr moved
  done;
  float_of_int !moved /. float_of_int m
