(** Fixed-capacity key-value store — §6.6's memcached-style kv-store.

    Open-addressing hash table with linear probing and FNV-1a hashing,
    exactly as the paper describes.  The table is sized at creation (the
    evaluation uses 1 M and 8 M entries) and never resizes; inserts into
    a full table fail, and deletions use tombstones so probe chains stay
    intact. *)

type t

val create : entries:int -> t
(** Raises [Invalid_argument] when [entries <= 0]. *)

val capacity : t -> int
val length : t -> int

val set : t -> key:bytes -> value:bytes -> bool
(** Insert or overwrite; [false] when the table is full. *)

val get : t -> key:bytes -> bytes option
val delete : t -> key:bytes -> bool

val probe_stats : t -> int * float
(** (max, mean) probe length over current entries — the locality knob
    behind the 1 M vs 8 M table results of Figure 7. *)

(** {2 Wire protocol}

    A tiny memcached-flavoured binary framing used by the benchmark and
    the driver pipeline example: requests and replies travel as UDP
    payloads. *)

type request =
  | Get of bytes
  | Set of bytes * bytes
  | Delete of bytes

type reply =
  | Value of bytes
  | Stored
  | Deleted
  | Not_found
  | Error

val encode_request : request -> bytes
val decode_request : bytes -> request option
val encode_reply : reply -> bytes
val decode_reply : bytes -> reply option

val serve : t -> bytes -> bytes
(** Decode a request payload, apply it, encode the reply ([Error] on
    undecodable input). *)
