type meth = GET | HEAD | POST | Other of string

type request = {
  meth : meth;
  path : string;
  version : string;
  headers : (string * string) list;
}

let meth_of_string = function
  | "GET" -> GET
  | "HEAD" -> HEAD
  | "POST" -> POST
  | s -> Other s

let split_lines s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         let n = String.length line in
         if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)

let parse_header line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "malformed header %S" line)
  | Some i ->
    let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
    let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    Ok (name, value)

let parse_request raw =
  match split_lines raw with
  | [] | [ "" ] -> Error "empty request"
  | request_line :: rest ->
    (match String.split_on_char ' ' request_line with
     | [ m; path; version ] when String.length path > 0 && path.[0] = '/' ->
       let version_ok = version = "HTTP/1.0" || version = "HTTP/1.1" in
       if not version_ok then Error (Printf.sprintf "unsupported version %S" version)
       else
         let rec headers acc = function
           | [] | "" :: _ -> Ok (List.rev acc)
           | line :: rest ->
             (match parse_header line with
              | Ok h -> headers (h :: acc) rest
              | Error _ as e -> e)
         in
         (match headers [] rest with
          | Ok hs -> Ok { meth = meth_of_string m; path; version; headers = hs }
          | Error e -> Error e)
     | _ -> Error (Printf.sprintf "malformed request line %S" request_line))

let header r name = List.assoc_opt (String.lowercase_ascii name) r.headers

let keep_alive r =
  match (r.version, header r "connection") with
  | "HTTP/1.1", Some c -> String.lowercase_ascii c <> "close"
  | "HTTP/1.1", None -> true
  | _, Some c -> String.lowercase_ascii c = "keep-alive"
  | _, None -> false

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let response ~status ?(headers = []) ~body () =
  let buf = Buffer.create (128 + String.length body) in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  Buffer.add_string buf (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v)) headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  Buffer.contents buf
