(** Minimal Ethernet / IPv4 / UDP packets over bytes.

    The driver and application benchmarks move real packet buffers:
    64-byte UDP frames built and parsed with this module, so the Maglev
    and kv-store data paths operate on the same representation a NIC
    ring would carry. *)

type flow = {
  src_ip : int32;
  dst_ip : int32;
  src_port : int;
  dst_port : int;
}

val header_bytes : int
(** Ethernet (14) + IPv4 (20) + UDP (8) = 42. *)

val min_frame : int
(** 64 bytes, the size the paper's packet benchmarks use. *)

val build : flow -> payload:bytes -> bytes
(** A frame of at least {!min_frame} bytes. *)

val parse_flow : bytes -> flow option
(** [None] if the frame is too short or not UDP-over-IPv4. *)

val payload : bytes -> bytes option
(** UDP payload as declared by the UDP length field. *)

val five_tuple_hash : bytes -> int64 option
(** FNV-1a of the 5-tuple region — Maglev's steering key. *)

val flow_of_ints : src:int -> dst:int -> sport:int -> dport:int -> flow
(** Convenience for generators (low 32/16 bits are used). *)
