(** Key-value workload generation (YCSB-style).

    The paper's kv-store benchmark drives the table with GET-heavy
    traffic; real key-value traffic is skewed, so the generator samples
    keys from a zipfian distribution (the YCSB method) with a uniform
    option for comparison. *)

type distribution =
  | Uniform
  | Zipfian of float  (** theta, typically 0.99 *)

type op =
  | Get of int  (** key index *)
  | Set of int

type t

val create : seed:int -> keys:int -> distribution -> t
(** Raises [Invalid_argument] for [keys <= 0] or theta outside (0, 1). *)

val next_key : t -> int
val next_op : t -> read_ratio:float -> op

val ops : t -> read_ratio:float -> count:int -> op list

val key_bytes : int -> size:int -> bytes
(** Deterministic key encoding of the given size (padded/truncated). *)

val hottest_fraction : t -> sample:int -> top:int -> float
(** Fraction of [sample] draws that land in the [top] most popular keys
    — the skew measurement tests assert on. *)
