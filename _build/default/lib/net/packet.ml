type flow = {
  src_ip : int32;
  dst_ip : int32;
  src_port : int;
  dst_port : int;
}

let eth_bytes = 14
let ip_bytes = 20
let udp_bytes = 8
let header_bytes = eth_bytes + ip_bytes + udp_bytes
let min_frame = 64

let proto_udp = 17

let build flow ~payload =
  let payload_len = Bytes.length payload in
  let total = max min_frame (header_bytes + payload_len) in
  let b = Bytes.make total '\000' in
  (* ethernet: synthetic MACs, ethertype IPv4 *)
  Bytes.set_uint16_be b 12 0x0800;
  (* ipv4 header *)
  Bytes.set b eth_bytes (Char.chr 0x45);
  Bytes.set_uint16_be b (eth_bytes + 2) (ip_bytes + udp_bytes + payload_len);
  Bytes.set b (eth_bytes + 8) (Char.chr 64);
  Bytes.set b (eth_bytes + 9) (Char.chr proto_udp);
  Bytes.set_int32_be b (eth_bytes + 12) flow.src_ip;
  Bytes.set_int32_be b (eth_bytes + 16) flow.dst_ip;
  (* udp header *)
  let u = eth_bytes + ip_bytes in
  Bytes.set_uint16_be b u (flow.src_port land 0xffff);
  Bytes.set_uint16_be b (u + 2) (flow.dst_port land 0xffff);
  Bytes.set_uint16_be b (u + 4) (udp_bytes + payload_len);
  Bytes.blit payload 0 b header_bytes payload_len;
  b

let is_udp_ipv4 b =
  Bytes.length b >= header_bytes
  && Bytes.get_uint16_be b 12 = 0x0800
  && Char.code (Bytes.get b eth_bytes) lsr 4 = 4
  && Char.code (Bytes.get b (eth_bytes + 9)) = proto_udp

let parse_flow b =
  if not (is_udp_ipv4 b) then None
  else
    let u = eth_bytes + ip_bytes in
    Some
      {
        src_ip = Bytes.get_int32_be b (eth_bytes + 12);
        dst_ip = Bytes.get_int32_be b (eth_bytes + 16);
        src_port = Bytes.get_uint16_be b u;
        dst_port = Bytes.get_uint16_be b (u + 2);
      }

let payload b =
  if not (is_udp_ipv4 b) then None
  else
    let u = eth_bytes + ip_bytes in
    let udp_len = Bytes.get_uint16_be b (u + 4) in
    let payload_len = udp_len - udp_bytes in
    if payload_len < 0 || header_bytes + payload_len > Bytes.length b then None
    else Some (Bytes.sub b header_bytes payload_len)

let five_tuple_hash b =
  if not (is_udp_ipv4 b) then None
    (* src ip .. dst ip (8 bytes at eth+12) + ports (4 bytes at udp) + proto *)
  else
    let tuple = Bytes.create 13 in
    Bytes.blit b (eth_bytes + 12) tuple 0 8;
    Bytes.blit b (eth_bytes + ip_bytes) tuple 8 4;
    Bytes.set tuple 12 (Bytes.get b (eth_bytes + 9));
    Some (Fnv.hash64 tuple)

let flow_of_ints ~src ~dst ~sport ~dport =
  {
    src_ip = Int32.of_int (src land 0xffffffff);
    dst_ip = Int32.of_int (dst land 0xffffffff);
    src_port = sport land 0xffff;
    dst_port = dport land 0xffff;
  }
