(** Maglev consistent hashing (Eisenbud et al., NSDI 2016) — the load
    balancer of §6.6.

    Builds the permutation-based lookup table: each backend fills table
    slots in the order of its own permutation (derived from two hashes
    of its name), round-robin across backends, until the table is full.
    Lookup steers a packet by hashing its 5-tuple into the table.

    Properties exercised by the tests: every slot is assigned, load is
    balanced within a few percent, and removing one backend relocates
    only a small fraction of slots (minimal disruption). *)

type t

val create : backends:string list -> table_size:int -> t
(** [table_size] should be a prime well above the backend count (the
    paper's Maglev uses 65537 for small setups).  Raises
    [Invalid_argument] on an empty backend list or non-positive size. *)

val table_size : t -> int
val backends : t -> string list

val lookup : t -> int64 -> string
(** Backend for a flow hash. *)

val lookup_packet : t -> bytes -> string option
(** Steer a raw frame by its 5-tuple; [None] for non-UDP frames. *)

val slot_counts : t -> (string * int) list
(** Table slots per backend, for balance checks. *)

val disruption : t -> t -> float
(** Fraction of table slots that map to different backends in the two
    tables (same size required). *)
