type slot =
  | Empty
  | Tombstone
  | Used of bytes * bytes  (* key, value *)

type t = {
  slots : slot array;
  mutable length : int;
}

let create ~entries =
  if entries <= 0 then invalid_arg "Kv_store.create: entries <= 0";
  { slots = Array.make entries Empty; length = 0 }

let capacity t = Array.length t.slots
let length t = t.length

let start_index t key = Fnv.to_bucket (Fnv.hash64 key) ~buckets:(capacity t)

(* Linear probing.  [find_for_read] skips tombstones; [find_for_write]
   remembers the first tombstone so deleted slots are reused. *)
let find_for_read t key =
  let n = capacity t in
  let rec go i steps =
    if steps >= n then None
    else
      match t.slots.(i) with
      | Empty -> None
      | Tombstone -> go ((i + 1) mod n) (steps + 1)
      | Used (k, _) -> if Bytes.equal k key then Some i else go ((i + 1) mod n) (steps + 1)
  in
  go (start_index t key) 0

let find_for_write t key =
  let n = capacity t in
  let rec go i steps first_tomb =
    if steps >= n then (match first_tomb with Some j -> `Insert_at j | None -> `Full)
    else
      match t.slots.(i) with
      | Empty ->
        (match first_tomb with Some j -> `Insert_at j | None -> `Insert_at i)
      | Tombstone ->
        let first_tomb = match first_tomb with None -> Some i | s -> s in
        go ((i + 1) mod n) (steps + 1) first_tomb
      | Used (k, _) ->
        if Bytes.equal k key then `Update_at i else go ((i + 1) mod n) (steps + 1) first_tomb
  in
  go (start_index t key) 0 None

let set t ~key ~value =
  match find_for_write t key with
  | `Update_at i ->
    t.slots.(i) <- Used (Bytes.copy key, Bytes.copy value);
    true
  | `Insert_at i ->
    t.slots.(i) <- Used (Bytes.copy key, Bytes.copy value);
    t.length <- t.length + 1;
    true
  | `Full -> false

let get t ~key =
  match find_for_read t key with
  | Some i -> (match t.slots.(i) with Used (_, v) -> Some v | Empty | Tombstone -> None)
  | None -> None

let delete t ~key =
  match find_for_read t key with
  | Some i ->
    t.slots.(i) <- Tombstone;
    t.length <- t.length - 1;
    true
  | None -> false

let probe_stats t =
  let n = capacity t in
  let max_p = ref 0 and total = ref 0 and entries = ref 0 in
  Array.iteri
    (fun i slot ->
      match slot with
      | Used (k, _) ->
        let home = start_index t k in
        let dist = (i - home + n) mod n in
        if dist > !max_p then max_p := dist;
        total := !total + dist;
        incr entries
      | Empty | Tombstone -> ())
    t.slots;
  (!max_p, if !entries = 0 then 0. else float_of_int !total /. float_of_int !entries)

(* ------------------------------------------------------------------ *)
(* Wire protocol: [op:u8][klen:u16][vlen:u16][key][value]              *)

type request =
  | Get of bytes
  | Set of bytes * bytes
  | Delete of bytes

type reply =
  | Value of bytes
  | Stored
  | Deleted
  | Not_found
  | Error

let frame op key value =
  let klen = Bytes.length key and vlen = Bytes.length value in
  let b = Bytes.make (5 + klen + vlen) '\000' in
  Bytes.set b 0 (Char.chr op);
  Bytes.set_uint16_be b 1 klen;
  Bytes.set_uint16_be b 3 vlen;
  Bytes.blit key 0 b 5 klen;
  Bytes.blit value 0 b (5 + klen) vlen;
  b

let unframe b =
  if Bytes.length b < 5 then None
  else
    let op = Char.code (Bytes.get b 0) in
    let klen = Bytes.get_uint16_be b 1 in
    let vlen = Bytes.get_uint16_be b 3 in
    if Bytes.length b < 5 + klen + vlen then None
    else Some (op, Bytes.sub b 5 klen, Bytes.sub b (5 + klen) vlen)

let encode_request = function
  | Get k -> frame 1 k Bytes.empty
  | Set (k, v) -> frame 2 k v
  | Delete k -> frame 3 k Bytes.empty

let decode_request b =
  match unframe b with
  | Some (1, k, _) -> Some (Get k)
  | Some (2, k, v) -> Some (Set (k, v))
  | Some (3, k, _) -> Some (Delete k)
  | Some _ | None -> None

let encode_reply = function
  | Value v -> frame 10 Bytes.empty v
  | Stored -> frame 11 Bytes.empty Bytes.empty
  | Deleted -> frame 12 Bytes.empty Bytes.empty
  | Not_found -> frame 13 Bytes.empty Bytes.empty
  | Error -> frame 14 Bytes.empty Bytes.empty

let decode_reply b =
  match unframe b with
  | Some (10, _, v) -> Some (Value v)
  | Some (11, _, _) -> Some Stored
  | Some (12, _, _) -> Some Deleted
  | Some (13, _, _) -> Some Not_found
  | Some (14, _, _) -> Some Error
  | Some _ | None -> None

let serve t payload =
  let reply =
    match decode_request payload with
    | Some (Get key) ->
      (match get t ~key with Some v -> Value v | None -> Not_found)
    | Some (Set (key, value)) -> if set t ~key ~value then Stored else Error
    | Some (Delete key) -> if delete t ~key then Deleted else Not_found
    | None -> Error
  in
  encode_reply reply
