let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let hash64_sub b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Fnv.hash64_sub: range";
  let h = ref offset_basis in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get b i)));
    h := Int64.mul !h prime
  done;
  !h

let hash64 b = hash64_sub b ~pos:0 ~len:(Bytes.length b)
let hash_string s = hash64 (Bytes.unsafe_of_string s)

let to_bucket h ~buckets =
  if buckets <= 0 then invalid_arg "Fnv.to_bucket: buckets <= 0";
  Int64.to_int (Int64.unsigned_rem h (Int64.of_int buckets))
