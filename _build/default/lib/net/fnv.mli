(** FNV-1a hashing — the hash function the paper's kv-store uses. *)

val hash64 : bytes -> int64
(** 64-bit FNV-1a of the whole buffer. *)

val hash64_sub : bytes -> pos:int -> len:int -> int64

val hash_string : string -> int64

val to_bucket : int64 -> buckets:int -> int
(** Non-negative bucket index for a table of [buckets] slots. *)
