(** Minimal HTTP/1.x request parsing and response building for the
    httpd benchmark (§6.6). *)

type meth = GET | HEAD | POST | Other of string

type request = {
  meth : meth;
  path : string;
  version : string;  (** "HTTP/1.0" or "HTTP/1.1" *)
  headers : (string * string) list;  (** names lower-cased *)
}

val parse_request : string -> (request, string) result
(** Parse a full request head (terminated by a blank line); bodies are
    not consumed. *)

val header : request -> string -> string option

val keep_alive : request -> bool
(** HTTP/1.1 defaults to persistent connections; 1.0 requires an
    explicit [Connection: keep-alive]. *)

val response :
  status:int -> ?headers:(string * string) list -> body:string -> unit -> string
(** Serialize a response with Content-Length. *)

val status_text : int -> string
