type distribution =
  | Uniform
  | Zipfian of float

type op =
  | Get of int
  | Set of int

type t = {
  rng : Random.State.t;
  keys : int;
  dist : distribution;
  (* zipfian precomputation (Gray et al., as used by YCSB) *)
  zetan : float;
  theta : float;
  alpha : float;
  eta : float;
}

let zeta n theta =
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !acc

let create ~seed ~keys dist =
  if keys <= 0 then invalid_arg "Workload.create: keys <= 0";
  let rng = Random.State.make [| seed |] in
  match dist with
  | Uniform ->
    { rng; keys; dist; zetan = 0.; theta = 0.; alpha = 0.; eta = 0. }
  | Zipfian theta ->
    if theta <= 0. || theta >= 1. then invalid_arg "Workload.create: theta out of (0,1)";
    let zetan = zeta keys theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1. /. (1. -. theta) in
    let eta =
      (1. -. Float.pow (2. /. float_of_int keys) (1. -. theta))
      /. (1. -. (zeta2 /. zetan))
    in
    { rng; keys; dist; zetan; theta; alpha; eta }

let next_key t =
  match t.dist with
  | Uniform -> Random.State.int t.rng t.keys
  | Zipfian _ ->
    let u = Random.State.float t.rng 1. in
    let uz = u *. t.zetan in
    if uz < 1. then 0
    else if uz < 1. +. Float.pow 0.5 t.theta then 1
    else
      let k =
        int_of_float
          (float_of_int t.keys *. Float.pow ((t.eta *. u) -. t.eta +. 1.) t.alpha)
      in
      min (t.keys - 1) (max 0 k)

let next_op t ~read_ratio =
  let key = next_key t in
  if Random.State.float t.rng 1. < read_ratio then Get key else Set key

let ops t ~read_ratio ~count = List.init count (fun _ -> next_op t ~read_ratio)

let key_bytes k ~size =
  let s = Printf.sprintf "k%0*d" (max 1 (size - 1)) k in
  let b = Bytes.make size '0' in
  Bytes.blit_string s 0 b 0 (min size (String.length s));
  b

let hottest_fraction t ~sample ~top =
  let hits = ref 0 in
  for _ = 1 to sample do
    if next_key t < top then incr hits
  done;
  float_of_int !hits /. float_of_int sample
