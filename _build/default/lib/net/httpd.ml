type t = {
  routes : (string, string) Hashtbl.t;
  mutable served : int;
}

let create ~routes =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (path, body) -> Hashtbl.replace tbl path body) routes;
  { routes = tbl; served = 0 }

let handle t raw =
  t.served <- t.served + 1;
  match Http.parse_request raw with
  | Error _ -> (Http.response ~status:400 ~body:"bad request" (), false)
  | Ok req ->
    let keep = Http.keep_alive req in
    (match req.Http.meth with
     | Http.GET | Http.HEAD ->
       (match Hashtbl.find_opt t.routes req.Http.path with
        | Some body ->
          let body = if req.Http.meth = Http.HEAD then "" else body in
          (Http.response ~status:200
             ~headers:[ ("Content-Type", "text/html") ]
             ~body (),
           keep)
        | None -> (Http.response ~status:404 ~body:"not found" (), keep))
     | Http.POST | Http.Other _ ->
       (Http.response ~status:405 ~body:"method not allowed" (), keep))

let requests_served t = t.served

type conn = {
  server : t;
  pending : string Queue.t;
  mutable replies : string list;  (* newest first *)
}

let open_conn server = { server; pending = Queue.create (); replies = [] }
let submit c raw = Queue.add raw c.pending

let poll_round server conns =
  List.fold_left
    (fun served c ->
      assert (c.server == server);
      match Queue.take_opt c.pending with
      | None -> served
      | Some raw ->
        let resp, _keep = handle server raw in
        c.replies <- resp :: c.replies;
        served + 1)
    0 conns

let responses c = List.rev c.replies
