(** Tiny static web server — §6.6's httpd.

    Serves a static route table, polling connections round-robin as the
    paper describes.  Connections are modelled as in-memory byte
    streams (the transport under it is the ixgbe model or a test
    harness). *)

type t

val create : routes:(string * string) list -> t
(** [(path, body)] pairs; unknown paths get 404. *)

val handle : t -> string -> string * bool
(** Process one request head; returns (response bytes, keep-alive). *)

val requests_served : t -> int

(** {2 Round-robin connection polling} *)

type conn

val open_conn : t -> conn
val submit : conn -> string -> unit
(** Queue a raw request on the connection. *)

val poll_round : t -> conn list -> int
(** One polling sweep over open connections: serve at most one pending
    request per connection; returns requests served in the sweep. *)

val responses : conn -> string list
(** Responses produced so far, oldest first. *)
