(** Intrusive doubly-linked list over small-int ids.

    The paper's allocator keeps free pages of each size on doubly-linked
    lists and stores, in each page's metadata, a pointer to its list node
    so that merging superpages can unlink a page in O(1).  Here the "node
    pointer" is the page's own index into the [prev]/[next] arrays — the
    same mechanism, with the same O(1) unlink, minus the raw pointers.

    An id may be a member of at most one position in the list at a time.
    All operations raise [Invalid_argument] on misuse (removing a
    non-member, pushing a member, out-of-range ids). *)

type t

val create : capacity:int -> name:string -> t
(** Ids range over [0, capacity). *)

val name : t -> string
val capacity : t -> int
val length : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val push_front : t -> int -> unit
val push_back : t -> int -> unit
val pop_front : t -> int option
val pop_back : t -> int option

val remove : t -> int -> unit
(** O(1) unlink of a member id — the constant-time removal the paper's
    page-metadata node pointers exist for. *)

val peek_front : t -> int option
val iter : t -> (int -> unit) -> unit
val to_list : t -> int list
(** Front-to-back order. *)

val wf : t -> (unit, string) result
(** Structural well-formedness: forward and backward traversals agree,
    lengths match, membership flags are consistent, no cycles.  This is
    the executable form of the allocator's free-list invariant. *)
