(** Per-frame metadata, Linux-page-array style.

    The paper tracks every physical page in one of four states — free,
    mapped, merged or allocated — in a flat page array.  [Merged] frames
    record the head frame of the superpage block they belong to; head
    frames carry the block size. *)

type size = S4k | S2m | S1g

val frames_per : size -> int
(** Number of 4 KiB frames covered by a block of the given size. *)

val bytes_per : size -> int
val pp_size : Format.formatter -> size -> unit
val equal_size : size -> size -> bool

type state =
  | Free  (** on the free list of its size class (head frame) *)
  | Allocated  (** holds a kernel object or a page-table node (head) *)
  | Mapped of int  (** user-mapped with positive reference count (head) *)
  | Merged of int  (** body frame of a superpage; argument is the head frame index *)

val pp_state : Format.formatter -> state -> unit
val equal_state : state -> state -> bool

type meta = {
  mutable state : state;
  mutable size : size;  (** meaningful on head frames only *)
}
