(* -1 is the nil link; the [member] array is the source of truth for
   membership so that id 0 with nil links is unambiguous. *)
type t = {
  name : string;
  prev : int array;
  next : int array;
  member : bool array;
  mutable first : int;
  mutable last : int;
  mutable length : int;
}

let nil = -1

let create ~capacity ~name =
  if capacity <= 0 then invalid_arg "Dll.create: capacity <= 0";
  {
    name;
    prev = Array.make capacity nil;
    next = Array.make capacity nil;
    member = Array.make capacity false;
    first = nil;
    last = nil;
    length = 0;
  }

let name t = t.name
let capacity t = Array.length t.prev
let length t = t.length
let is_empty t = t.length = 0

let check_id t id op =
  if id < 0 || id >= capacity t then
    invalid_arg (Printf.sprintf "Dll.%s(%s): id %d out of range" op t.name id)

let mem t id =
  check_id t id "mem";
  t.member.(id)

let push_front t id =
  check_id t id "push_front";
  if t.member.(id) then
    invalid_arg (Printf.sprintf "Dll.push_front(%s): %d already a member" t.name id);
  t.member.(id) <- true;
  t.prev.(id) <- nil;
  t.next.(id) <- t.first;
  if t.first <> nil then t.prev.(t.first) <- id else t.last <- id;
  t.first <- id;
  t.length <- t.length + 1

let push_back t id =
  check_id t id "push_back";
  if t.member.(id) then
    invalid_arg (Printf.sprintf "Dll.push_back(%s): %d already a member" t.name id);
  t.member.(id) <- true;
  t.next.(id) <- nil;
  t.prev.(id) <- t.last;
  if t.last <> nil then t.next.(t.last) <- id else t.first <- id;
  t.last <- id;
  t.length <- t.length + 1

let remove t id =
  check_id t id "remove";
  if not t.member.(id) then
    invalid_arg (Printf.sprintf "Dll.remove(%s): %d not a member" t.name id);
  let p = t.prev.(id) and n = t.next.(id) in
  if p <> nil then t.next.(p) <- n else t.first <- n;
  if n <> nil then t.prev.(n) <- p else t.last <- p;
  t.member.(id) <- false;
  t.prev.(id) <- nil;
  t.next.(id) <- nil;
  t.length <- t.length - 1

let pop_front t =
  if t.first = nil then None
  else begin
    let id = t.first in
    remove t id;
    Some id
  end

let pop_back t =
  if t.last = nil then None
  else begin
    let id = t.last in
    remove t id;
    Some id
  end

let peek_front t = if t.first = nil then None else Some t.first

let iter t f =
  let rec go id = if id <> nil then begin f id; go t.next.(id) end in
  go t.first

let to_list t =
  let acc = ref [] in
  iter t (fun id -> acc := id :: !acc);
  List.rev !acc

let wf t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let cap = capacity t in
  (* Forward traversal, bounded by capacity to detect cycles. *)
  let rec forward id seen count =
    if id = nil then Ok (List.rev seen, count)
    else if count > cap then err "%s: forward traversal exceeds capacity (cycle)" t.name
    else if not t.member.(id) then err "%s: %d linked but not a member" t.name id
    else forward t.next.(id) (id :: seen) (count + 1)
  in
  match forward t.first [] 0 with
  | Error _ as e -> e
  | Ok (fwd, n) ->
    if n <> t.length then err "%s: length %d but traversal found %d" t.name t.length n
    else
      let rec backward id seen count =
        if id = nil then Ok (List.rev seen)
        else if count > cap then err "%s: backward traversal exceeds capacity" t.name
        else backward t.prev.(id) (id :: seen) (count + 1)
      in
      (match backward t.last [] 0 with
       | Error _ as e -> e
       | Ok bwd ->
         if List.rev bwd <> fwd then err "%s: forward/backward traversals disagree" t.name
         else begin
           (* Membership flags must match exactly the traversed ids. *)
           let members = ref 0 in
           Array.iter (fun b -> if b then incr members) t.member;
           if !members <> t.length then
             err "%s: %d member flags but length %d" t.name !members t.length
           else
             (* Adjacent link consistency. *)
             let rec adj = function
               | a :: (b :: _ as rest) ->
                 if t.next.(a) <> b then err "%s: next(%d) <> %d" t.name a b
                 else if t.prev.(b) <> a then err "%s: prev(%d) <> %d" t.name b a
                 else adj rest
               | _ -> Ok ()
             in
             adj fwd
         end)
