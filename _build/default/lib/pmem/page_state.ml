type size = S4k | S2m | S1g

let frames_per = function S4k -> 1 | S2m -> 512 | S1g -> 512 * 512
let bytes_per s = frames_per s * 4096

let pp_size ppf = function
  | S4k -> Format.pp_print_string ppf "4K"
  | S2m -> Format.pp_print_string ppf "2M"
  | S1g -> Format.pp_print_string ppf "1G"

let equal_size (a : size) b = a = b

type state =
  | Free
  | Allocated
  | Mapped of int
  | Merged of int

let pp_state ppf = function
  | Free -> Format.pp_print_string ppf "free"
  | Allocated -> Format.pp_print_string ppf "allocated"
  | Mapped n -> Format.fprintf ppf "mapped(rc=%d)" n
  | Merged h -> Format.fprintf ppf "merged(head=%d)" h

let equal_state (a : state) b = a = b

type meta = {
  mutable state : state;
  mutable size : size;
}
