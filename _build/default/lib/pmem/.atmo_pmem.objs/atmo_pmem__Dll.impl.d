lib/pmem/dll.ml: Array Format List Printf
