lib/pmem/dll.mli:
