lib/pmem/page_alloc.ml: Array Atmo_hw Atmo_util Dll Format Iset List Page_state Printf
