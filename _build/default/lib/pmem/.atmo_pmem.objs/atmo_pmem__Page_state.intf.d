lib/pmem/page_state.mli: Format
