lib/pmem/page_state.ml: Format
