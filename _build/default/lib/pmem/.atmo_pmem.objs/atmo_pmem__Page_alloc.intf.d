lib/pmem/page_alloc.mli: Atmo_hw Atmo_util Page_state
