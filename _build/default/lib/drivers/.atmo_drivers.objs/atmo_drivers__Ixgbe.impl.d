lib/drivers/ixgbe.ml: Array Atmo_hw Atmo_sim Bytes Int64 List
