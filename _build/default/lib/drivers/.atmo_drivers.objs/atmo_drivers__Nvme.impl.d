lib/drivers/nvme.ml: Atmo_hw Atmo_sim Bytes Hashtbl List
