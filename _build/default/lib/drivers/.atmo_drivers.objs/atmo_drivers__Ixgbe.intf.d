lib/drivers/ixgbe.mli: Atmo_hw Atmo_sim
