lib/drivers/nvme.mli: Atmo_hw Atmo_sim
