open Atmo_util

(* the tree-relevant projection of a container *)
type node = {
  n_parent : int option;
  n_children : int list;
  n_quota : int;
  n_delegated : int;
  n_depth : int;
  n_path : int list;
  n_subtree : Iset.t;
}

type snapshot = {
  nodes : node Imap.t;
  root : int;
}

let node_of (c : Container.t) =
  {
    n_parent = c.Container.parent;
    n_children = Static_list.to_list c.Container.children;
    n_quota = c.Container.quota;
    n_delegated = c.Container.delegated;
    n_depth = c.Container.depth;
    n_path = c.Container.path;
    n_subtree = c.Container.subtree;
  }

let snapshot (pm : Proc_mgr.t) =
  {
    nodes =
      Perm_map.fold (fun ptr c acc -> Imap.add ptr (node_of c) acc) pm.Proc_mgr.cntr_perms
        Imap.empty;
    root = pm.Proc_mgr.root_container;
  }

let err fmt = Format.kasprintf (fun s -> Error s) fmt
let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let equal_node a b =
  a.n_parent = b.n_parent && a.n_children = b.n_children && a.n_quota = b.n_quota
  && a.n_delegated = b.n_delegated && a.n_depth = b.n_depth && a.n_path = b.n_path
  && Iset.equal a.n_subtree b.n_subtree

(* everything outside [touched] identical, with a per-node adjustment
   applied to the expected pre-state view *)
let frame_condition ~pre ~post ~touched ~adjust =
  Imap.fold
    (fun ptr n acc ->
      let* () = acc in
      if Iset.mem ptr touched then Ok ()
      else
        match Imap.find_opt ptr post.nodes with
        | None -> err "ensures: container 0x%x vanished" ptr
        | Some n' ->
          if equal_node n' (adjust ptr n) then Ok ()
          else err "ensures: container 0x%x changed outside the spec" ptr)
    pre.nodes (Ok ())

let new_container_ensures ~pre ~post ~parent ~child ~quota =
  match Imap.find_opt parent pre.nodes with
  | None -> err "ensures: parent 0x%x not in pre" parent
  | Some p0 ->
    let* () =
      if Imap.mem child pre.nodes then err "ensures: child 0x%x already existed" child
      else Ok ()
    in
    (* the child appears with exactly the expected fields *)
    let* () =
      match Imap.find_opt child post.nodes with
      | None -> err "ensures: child 0x%x missing in post" child
      | Some c ->
        if
          c.n_parent = Some parent && c.n_children = [] && c.n_quota = quota
          && c.n_delegated = 0
          && c.n_depth = p0.n_depth + 1
          && c.n_path = p0.n_path @ [ parent ]
          && Iset.is_empty c.n_subtree
        then Ok ()
        else err "ensures: child fields wrong"
    in
    (* the parent gains the child *)
    let* () =
      match Imap.find_opt parent post.nodes with
      | None -> err "ensures: parent missing in post"
      | Some p1 ->
        if
          equal_node p1
            {
              p0 with
              n_children = p0.n_children @ [ child ];
              n_delegated = p0.n_delegated + quota;
              n_subtree = Iset.add child p0.n_subtree;
            }
        then Ok ()
        else err "ensures: parent update wrong"
    in
    (* every ancestor's subtree gains exactly the child (Listing 3,
       lines 14-19); everything else is unchanged *)
    let ancestors = Iset.of_list p0.n_path in
    frame_condition ~pre ~post
      ~touched:(Iset.add child (Iset.add parent Iset.empty))
      ~adjust:(fun ptr n ->
        if Iset.mem ptr ancestors then { n with n_subtree = Iset.add child n.n_subtree }
        else n)

let terminate_ensures ~pre ~post ~victim =
  match Imap.find_opt victim pre.nodes with
  | None -> err "ensures: victim 0x%x not in pre" victim
  | Some v0 ->
    let victims = Iset.add victim v0.n_subtree in
    (* all victims gone *)
    let* () =
      Iset.fold
        (fun d acc ->
          let* () = acc in
          if Imap.mem d post.nodes then err "ensures: victim 0x%x survived" d else Ok ())
        victims (Ok ())
    in
    (match v0.n_parent with
     | None -> err "ensures: terminating the root"
     | Some parent ->
       (match Imap.find_opt parent pre.nodes with
        | None -> err "ensures: parent missing in pre"
        | Some p0 ->
          let* () =
            match Imap.find_opt parent post.nodes with
            | None -> err "ensures: parent missing in post"
            | Some p1 ->
              if
                equal_node p1
                  {
                    p0 with
                    n_children = List.filter (fun x -> x <> victim) p0.n_children;
                    n_delegated = p0.n_delegated - v0.n_quota;
                    n_subtree = Iset.diff p0.n_subtree victims;
                  }
              then Ok ()
              else err "ensures: parent update wrong"
          in
          let ancestors = Iset.of_list v0.n_path in
          frame_condition ~pre ~post ~touched:(Iset.add parent victims)
            ~adjust:(fun ptr n ->
              if Iset.mem ptr ancestors then
                { n with n_subtree = Iset.diff n.n_subtree victims }
              else n)))

(* the closed structural invariant over a snapshot *)
let tree_wf s =
  Imap.fold
    (fun ptr n acc ->
      let* () = acc in
      let* () =
        match n.n_parent with
        | None ->
          if ptr <> s.root then err "wf: 0x%x parentless but not root" ptr
          else if n.n_path <> [] then err "wf: root has a path"
          else Ok ()
        | Some parent ->
          (match Imap.find_opt parent s.nodes with
           | None -> err "wf: dead parent of 0x%x" ptr
           | Some p ->
             if not (List.mem ptr p.n_children) then
               err "wf: parent does not list 0x%x" ptr
             else if n.n_path <> p.n_path @ [ parent ] then
               err "wf: path of 0x%x is not parent's path + parent" ptr
             else Ok ())
      in
      let* () =
        if n.n_depth = List.length n.n_path then Ok ()
        else err "wf: depth of 0x%x inconsistent" ptr
      in
      (* bidirectional subtree *)
      let* () =
        Iset.fold
          (fun d acc ->
            let* () = acc in
            match Imap.find_opt d s.nodes with
            | None -> err "wf: subtree of 0x%x holds dead 0x%x" ptr d
            | Some dn ->
              if List.mem ptr dn.n_path then Ok ()
              else err "wf: 0x%x in subtree of 0x%x without ancestry" d ptr)
          n.n_subtree (Ok ())
      in
      List.fold_left
        (fun acc anc ->
          let* () = acc in
          match Imap.find_opt anc s.nodes with
          | None -> err "wf: dead ancestor of 0x%x" ptr
          | Some a ->
            if Iset.mem ptr a.n_subtree then Ok ()
            else err "wf: ancestor 0x%x misses 0x%x in subtree" anc ptr)
        (Ok ()) n.n_path)
    s.nodes (Ok ())

let check_preservation ~pre ~post ~ensures =
  match (tree_wf pre, ensures) with
  | Error _, _ -> Ok () (* vacuous: the lemma assumes wf-before *)
  | _, Error _ -> Ok () (* vacuous: the lemma assumes the transition spec *)
  | Ok (), Ok () ->
    (match tree_wf post with
     | Ok () -> Ok ()
     | Error msg ->
       err "preservation violated: ensures held of a wf pre-state, yet post is not wf (%s)"
         msg)
