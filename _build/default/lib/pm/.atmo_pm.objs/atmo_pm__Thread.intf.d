lib/pm/thread.mli: Format Message
