lib/pm/perm_map.ml: Atmo_util Format Imap
