lib/pm/proc_mgr.ml: Atmo_hw Atmo_pmem Atmo_pt Atmo_util Container Endpoint Errno Hashtbl Imap Iset Kconfig List Option Perm_map Process Static_list Thread
