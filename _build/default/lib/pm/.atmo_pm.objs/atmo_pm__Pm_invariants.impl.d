lib/pm/pm_invariants.ml: Atmo_pt Atmo_util Container Endpoint Format Hashtbl Iset List Option Perm_map Proc_mgr Process Static_list Thread
