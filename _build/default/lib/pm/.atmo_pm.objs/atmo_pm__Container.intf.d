lib/pm/container.mli: Atmo_util Format Static_list
