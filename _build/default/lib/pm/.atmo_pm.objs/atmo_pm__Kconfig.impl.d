lib/pm/kconfig.ml:
