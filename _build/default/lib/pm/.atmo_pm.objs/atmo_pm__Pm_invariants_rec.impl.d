lib/pm/pm_invariants_rec.ml: Atmo_util Container Format Iset List Perm_map Printf Proc_mgr Static_list
