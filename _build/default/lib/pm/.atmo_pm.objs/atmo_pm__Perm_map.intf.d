lib/pm/perm_map.mli: Atmo_util
