lib/pm/process.ml: Atmo_pt Format Kconfig Static_list
