lib/pm/proc_mgr.mli: Atmo_hw Atmo_pmem Atmo_util Container Endpoint Hashtbl Perm_map Process Thread
