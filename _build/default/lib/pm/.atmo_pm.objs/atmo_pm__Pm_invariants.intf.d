lib/pm/pm_invariants.mli: Proc_mgr
