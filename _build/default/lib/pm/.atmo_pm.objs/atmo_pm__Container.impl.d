lib/pm/container.ml: Atmo_util Format Iset Kconfig List Printf Static_list
