lib/pm/message.mli: Format
