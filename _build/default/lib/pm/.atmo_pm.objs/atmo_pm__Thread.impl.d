lib/pm/thread.ml: Array Format Kconfig List Message
