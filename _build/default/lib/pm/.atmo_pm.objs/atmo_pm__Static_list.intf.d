lib/pm/static_list.mli:
