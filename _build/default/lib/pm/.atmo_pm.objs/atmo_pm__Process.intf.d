lib/pm/process.mli: Atmo_pt Format Static_list
