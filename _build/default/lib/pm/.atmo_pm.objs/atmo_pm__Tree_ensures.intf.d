lib/pm/tree_ensures.mli: Proc_mgr
