lib/pm/endpoint.ml: Format Kconfig Static_list
