lib/pm/pm_invariants_rec.mli: Proc_mgr
