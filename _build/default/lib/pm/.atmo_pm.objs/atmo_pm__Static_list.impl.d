lib/pm/static_list.ml: List
