lib/pm/message.ml: Format Kconfig List
