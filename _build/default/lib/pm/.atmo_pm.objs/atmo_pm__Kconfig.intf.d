lib/pm/kconfig.mli:
