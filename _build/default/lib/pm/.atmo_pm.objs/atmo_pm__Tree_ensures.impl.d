lib/pm/tree_ensures.ml: Atmo_util Container Format Imap Iset List Perm_map Proc_mgr Static_list
