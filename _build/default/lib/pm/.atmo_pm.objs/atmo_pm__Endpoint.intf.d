lib/pm/endpoint.mli: Format Static_list
