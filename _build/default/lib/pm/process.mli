(** Process objects.

    Processes live inside a container and form a per-container process
    tree (parent/children), own threads, and own an address space
    backed by a {!Atmo_pt.Page_table}.  As in the paper, the page table
    handle is part of the process object while permissions to all
    process objects are held flat in the process manager. *)

type t = {
  owner_container : int;
  parent : int option;  (** parent process in the same container *)
  children : int Static_list.t;
  threads : int Static_list.t;
  pt : Atmo_pt.Page_table.t;
  iommu_device : int option;  (** device id whose IOMMU domain is this process's page table *)
}

val make : owner_container:int -> parent:int option -> pt:Atmo_pt.Page_table.t -> t
val wf : t -> bool
val pp : Format.formatter -> t -> unit
