type t = {
  owner_container : int;
  parent : int option;
  children : int Static_list.t;
  threads : int Static_list.t;
  pt : Atmo_pt.Page_table.t;
  iommu_device : int option;
}

let make ~owner_container ~parent ~pt =
  {
    owner_container;
    parent;
    children = Static_list.create ~capacity:Kconfig.max_procs_per_container;
    threads = Static_list.create ~capacity:Kconfig.max_threads_per_proc;
    pt;
    iommu_device = None;
  }

let wf t = Static_list.wf t.children && Static_list.wf t.threads

let pp ppf t =
  Format.fprintf ppf
    "@[<h>process{container=0x%x; children=%d; threads=%d; cr3=0x%x}@]"
    t.owner_container
    (Static_list.length t.children)
    (Static_list.length t.threads)
    (Atmo_pt.Page_table.cr3 t.pt)
