(** The paper's modular proof structure for the container tree
    (§4.1, Listing 3).

    The paper separates, per operation, an {e open} transition
    specification ([new_container_ensures]: how each container's state
    changes, no structural content) from the {e closed} structural
    invariant ([container_tree_wf]), connected by a preservation lemma
    ([new_container_preserve_tree_wf]: ensures + wf-before ⟹ wf-after).
    That split is what keeps the SMT search space small: call sites
    reason only about [ensures].

    This module reproduces the same decomposition executably over
    snapshots of the container map:

    - {!snapshot} captures the abstract container state;
    - the [*_ensures] predicates state exactly the field changes of each
      tree operation (frame conditions included), with no reference to
      the structural invariant;
    - {!tree_wf} is the closed structural invariant;
    - {!check_preservation} is the executable form of the lemma,
      checked over generated transitions by the test suite: whenever a
      transition satisfies [ensures] and its pre-state satisfies
      [tree_wf], its post-state must too. *)

type snapshot
(** Pure copy of the container tree's abstract state. *)

val snapshot : Proc_mgr.t -> snapshot

val new_container_ensures :
  pre:snapshot -> post:snapshot -> parent:int -> child:int -> quota:int -> (unit, string) result
(** The open spec of [new_container]: the child appears with the
    expected fields, the parent gains it in children/delegated/subtree,
    every ancestor's subtree gains exactly the child, and all other
    containers are unchanged. *)

val terminate_ensures :
  pre:snapshot -> post:snapshot -> victim:int -> (unit, string) result
(** The open spec of [terminate_container] restricted to the tree:
    the victim's closed subtree disappears, the parent loses the child
    and the delegation, ancestors' subtrees shrink by exactly the
    victims, and all other containers are unchanged. *)

val tree_wf : snapshot -> (unit, string) result
(** The closed structural invariant: parent/child inverse, path-prefix
    property, bidirectional subtree, depth consistency. *)

val check_preservation :
  pre:snapshot ->
  post:snapshot ->
  ensures:(unit, string) result ->
  (unit, string) result
(** The preservation lemma, executably: if [tree_wf pre] and [ensures]
    hold, then [tree_wf post] must hold; a violation pinpoints whether
    [ensures] was too weak or the operation broke the structure. *)
