(** Endpoint objects — rendezvous IPC ports.

    An endpoint holds a queue of blocked senders or blocked receivers
    (never both non-empty: a rendezvous drains the opposite side first)
    and a reference count equal to the number of thread descriptor slots
    that name it.  The endpoint page is freed when the count drops to
    zero — one of the manual-lifetime patterns the paper supports
    without Rust's ownership. *)

type t = {
  owner_container : int;  (** container charged for the endpoint page *)
  send_queue : int Static_list.t;  (** threads blocked sending *)
  recv_queue : int Static_list.t;  (** threads blocked receiving *)
  refcount : int;
}

val make : owner_container:int -> t
(** Fresh endpoint with reference count 1 (the creating slot). *)

val wf : t -> bool
val pp : Format.formatter -> t -> unit
