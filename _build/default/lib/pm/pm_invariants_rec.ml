open Atmo_util

let err fmt = Format.kasprintf (fun s -> Error s) fmt
let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

exception Broken of string

(* Recompute the root path of [ptr] by chasing parent pointers; the
   recursion depth is bounded by the number of containers. *)
let derive_path (pm : Proc_mgr.t) ptr =
  let bound = Perm_map.cardinal pm.Proc_mgr.cntr_perms in
  let rec up p fuel =
    if fuel < 0 then raise (Broken (Printf.sprintf "parent chain from 0x%x too long" ptr));
    match Perm_map.borrow_opt pm.Proc_mgr.cntr_perms ~ptr:p with
    | None -> raise (Broken (Printf.sprintf "dead container 0x%x on parent chain" p))
    | Some c ->
      (match c.Container.parent with
       | None -> []
       | Some parent -> up parent (fuel - 1) @ [ parent ])
  in
  up ptr bound

(* Recompute the descendant set by recursive descent.  Deliberately
   hierarchical: each node's subtree is re-derived from scratch for
   every ancestor that contains it, reproducing the repeated-unrolling
   cost of a recursive specification. *)
let rec derive_subtree (pm : Proc_mgr.t) ptr fuel =
  if fuel < 0 then raise (Broken (Printf.sprintf "descent from 0x%x too deep" ptr));
  match Perm_map.borrow_opt pm.Proc_mgr.cntr_perms ~ptr with
  | None -> raise (Broken (Printf.sprintf "dead container 0x%x in child list" ptr))
  | Some c ->
    List.fold_left
      (fun acc child ->
        Iset.add child (Iset.union acc (derive_subtree pm child (fuel - 1))))
      Iset.empty
      (Static_list.to_list c.Container.children)

let guarded f = try f () with Broken msg -> Error msg

let path_wf (pm : Proc_mgr.t) =
  guarded (fun () ->
      Perm_map.fold
        (fun ptr (c : Container.t) acc ->
          let* () = acc in
          let derived = derive_path pm ptr in
          if derived = c.Container.path then Ok ()
          else err "recursive path of 0x%x disagrees with ghost path" ptr)
        pm.Proc_mgr.cntr_perms (Ok ()))

let subtree_wf (pm : Proc_mgr.t) =
  guarded (fun () ->
      let bound = Perm_map.cardinal pm.Proc_mgr.cntr_perms in
      Perm_map.fold
        (fun ptr (c : Container.t) acc ->
          let* () = acc in
          let derived = derive_subtree pm ptr bound in
          if Iset.equal derived c.Container.subtree then Ok ()
          else err "recursive subtree of 0x%x disagrees with ghost subtree" ptr)
        pm.Proc_mgr.cntr_perms (Ok ()))

let acyclic (pm : Proc_mgr.t) =
  guarded (fun () ->
      Perm_map.fold
        (fun ptr (_ : Container.t) acc ->
          let* () = acc in
          ignore (derive_path pm ptr);
          Ok ())
        pm.Proc_mgr.cntr_perms (Ok ()))

let obligations =
  [
    ("pm_rec/path_wf", path_wf);
    ("pm_rec/subtree_wf", subtree_wf);
    ("pm_rec/acyclic", acyclic);
  ]

let all pm =
  List.fold_left
    (fun acc (_, check) ->
      let* () = acc in
      check pm)
    (Ok ()) obligations
