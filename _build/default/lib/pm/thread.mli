(** Thread objects.

    A thread belongs to a process, carries the scheduling state, a
    fixed-size endpoint descriptor table (the paper's
    [get_thrd_edpt_descriptors]), and an in-kernel message buffer used
    while blocked on IPC or to hold a freshly delivered message. *)

type sched_state =
  | Runnable
  | Running  (** currently on a CPU *)
  | Blocked_send of int  (** waiting to send on the endpoint object *)
  | Blocked_recv of int  (** waiting to receive on the endpoint object *)

val pp_sched_state : Format.formatter -> sched_state -> unit
val equal_sched_state : sched_state -> sched_state -> bool

type t = {
  owner_proc : int;
  state : sched_state;
  endpoints : int option array;  (** descriptor table; length {!Kconfig.max_endpoint_slots} *)
  msg_buf : Message.t option;
  (** outgoing message while [Blocked_send]; delivered message after a
      completed receive, until the thread consumes it *)
}

val make : owner_proc:int -> t
(** A fresh runnable thread with an empty descriptor table. *)

val slot : t -> int -> int option
(** Endpoint pointer in a descriptor slot; [None] also for out-of-range
    indices (arbitrary user-supplied values are legal inputs). *)

val set_slot : t -> int -> int option -> t
(** Functional update of a descriptor slot; raises [Invalid_argument] on
    out-of-range indices (kernel code validates first). *)

val slots : t -> (int * int) list
(** Occupied [(index, endpoint)] pairs. *)

val wf : t -> bool
val pp : Format.formatter -> t -> unit
