(** IPC message payloads.

    A sender can pass scalar data, a reference to a memory page (by
    virtual address in its own address space, remapped into the
    receiver's), and a reference to one of its endpoints (by descriptor
    slot, installed into a receiver slot). *)

type page_grant = {
  src_vaddr : int;  (** virtual base of the page in the sender's space *)
  dst_vaddr : int;  (** where the receiver asked it to appear *)
}

type endpoint_grant = {
  src_slot : int;  (** sender descriptor slot holding the endpoint *)
  dst_slot : int;  (** receiver slot to install it into *)
}

type t = {
  scalars : int list;  (** at most {!Kconfig.max_ipc_scalars} words *)
  page : page_grant option;
  endpoint : endpoint_grant option;
}

val scalars_only : int list -> t
val empty : t
val wf : t -> bool
val pp : Format.formatter -> t -> unit
