(** Recursive (hierarchical-ownership) restatement of the container-tree
    invariants — the ablation baseline for {!Pm_invariants}.

    Instead of reading the ghost [path]/[subtree] fields, these checks
    re-derive ancestry by structural recursion over parent pointers and
    child lists, the way a hierarchical proof unrolls its recursive
    specifications (§4.1's [child_resolve_path_wf]).  They validate the
    same properties; the cost difference against the flat checks is
    measured by the Table 2 / §6.2 ablation bench. *)

val path_wf : Proc_mgr.t -> (unit, string) result
(** Recompute every container's root path by following parent pointers
    and compare it with the ghost [path]. *)

val subtree_wf : Proc_mgr.t -> (unit, string) result
(** Recompute every container's descendant set by recursive descent over
    child lists (re-deriving each child's subtree at every level) and
    compare with the ghost [subtree]. *)

val acyclic : Proc_mgr.t -> (unit, string) result
(** The parent relation reaches the root from every node within a bounded
    number of steps (no cycles), derived recursively. *)

val all : Proc_mgr.t -> (unit, string) result
val obligations : (string * (Proc_mgr.t -> (unit, string) result)) list
