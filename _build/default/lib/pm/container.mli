(** Container objects.

    A container is a group of processes with a guaranteed memory quota
    and CPU reservation.  Containers form a tree; each node stores its
    parent pointer, its direct children, and two ghost fields mirrored
    from the paper: [path] (pointers from the root to this node,
    exclusive) and [subtree] (every reachable descendant).  The ghost
    fields are what make the flat, non-recursive tree invariants of
    {!Pm_invariants} expressible. *)

type t = {
  parent : int option;  (** [None] only for the root *)
  children : int Static_list.t;
  procs : int Static_list.t;  (** processes directly owned by this container *)
  quota : int;  (** frames this container may consume, incl. delegations *)
  used : int;  (** frames currently charged to this container *)
  delegated : int;  (** quota currently handed to live child containers *)
  cpus : Atmo_util.Iset.t;  (** CPU reservation *)
  depth : int;
  path : int list;  (** ghost: root ... parent *)
  subtree : Atmo_util.Iset.t;  (** ghost: all strict descendants *)
}

val make : parent:int option -> quota:int -> cpus:Atmo_util.Iset.t -> depth:int -> path:int list -> t

val available : t -> int
(** Frames the container can still allocate or delegate:
    [quota - used - delegated]. *)

val wf : t -> bool
(** Node-local well-formedness: embedded lists within capacity,
    non-negative accounting, [available >= 0], depth equals path
    length. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
