open Atmo_util

type t = {
  parent : int option;
  children : int Static_list.t;
  procs : int Static_list.t;
  quota : int;
  used : int;
  delegated : int;
  cpus : Iset.t;
  depth : int;
  path : int list;
  subtree : Iset.t;
}

let make ~parent ~quota ~cpus ~depth ~path =
  {
    parent;
    children = Static_list.create ~capacity:Kconfig.max_children;
    procs = Static_list.create ~capacity:Kconfig.max_procs_per_container;
    quota;
    used = 0;
    delegated = 0;
    cpus;
    depth;
    path;
    subtree = Iset.empty;
  }

let available t = t.quota - t.used - t.delegated

let wf t =
  Static_list.wf t.children
  && Static_list.wf t.procs
  && t.quota >= 0
  && t.used >= 0
  && t.delegated >= 0
  && available t >= 0
  && t.depth = List.length t.path
  && (match t.parent with
      | None -> t.path = []
      | Some p -> t.path <> [] && List.nth t.path (t.depth - 1) = p)

let equal a b =
  a.parent = b.parent
  && Static_list.to_list a.children = Static_list.to_list b.children
  && Static_list.to_list a.procs = Static_list.to_list b.procs
  && a.quota = b.quota
  && a.used = b.used
  && a.delegated = b.delegated
  && Iset.equal a.cpus b.cpus
  && a.depth = b.depth
  && a.path = b.path
  && Iset.equal a.subtree b.subtree

let pp ppf t =
  Format.fprintf ppf
    "@[<h>container{parent=%s; children=%d; procs=%d; quota=%d; used=%d; delegated=%d; depth=%d}@]"
    (match t.parent with None -> "root" | Some p -> Printf.sprintf "0x%x" p)
    (Static_list.length t.children)
    (Static_list.length t.procs)
    t.quota t.used t.delegated t.depth
