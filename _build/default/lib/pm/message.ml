type page_grant = {
  src_vaddr : int;
  dst_vaddr : int;
}

type endpoint_grant = {
  src_slot : int;
  dst_slot : int;
}

type t = {
  scalars : int list;
  page : page_grant option;
  endpoint : endpoint_grant option;
}

let scalars_only scalars = { scalars; page = None; endpoint = None }
let empty = scalars_only []

let wf t =
  List.length t.scalars <= Kconfig.max_ipc_scalars
  && (match t.endpoint with
      | None -> true
      | Some g ->
        g.src_slot >= 0
        && g.src_slot < Kconfig.max_endpoint_slots
        && g.dst_slot >= 0
        && g.dst_slot < Kconfig.max_endpoint_slots)

let pp ppf t =
  Format.fprintf ppf "@[<h>msg{%d scalars%s%s}@]" (List.length t.scalars)
    (match t.page with Some _ -> "; +page" | None -> "")
    (match t.endpoint with Some _ -> "; +endpoint" | None -> "")
