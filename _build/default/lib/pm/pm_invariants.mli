(** Flat, non-recursive invariants of the process manager.

    Each function is one named proof obligation from the paper's
    well-formedness hierarchy, written in the flat style of §4.1: all
    quantification ranges over the global permission maps; parent/child
    and ancestry facts come from the ghost [path]/[subtree] fields, so no
    check recurses over the tree.

    {!Pm_invariants_rec} restates the tree obligations recursively (the
    formulation flat storage exists to avoid) for the ablation
    benchmarks. *)

val containers_wf : Proc_mgr.t -> (unit, string) result
(** Node-local well-formedness of every container (the paper's
    [threads_wf]-style global map quantification). *)

val path_wf : Proc_mgr.t -> (unit, string) result
(** The paper's [resolve_path_wf]: for any container [c] and any depth
    [d] along its path, [c]'s path prefix of length [d] equals the path
    of the ancestor at depth [d]. *)

val parent_child_wf : Proc_mgr.t -> (unit, string) result
(** Parent pointers, child lists and the root are mutually consistent;
    the last path element is the parent. *)

val subtree_wf : Proc_mgr.t -> (unit, string) result
(** Bidirectional: [c'] is in [subtree c] iff [c] is on [path c'] —
    the invariant the isolation proof (§4.3) quantifies over. *)

val process_tree_wf : Proc_mgr.t -> (unit, string) result
(** Processes sit in existing containers that list them; the
    per-container process tree has consistent parent/children; threads
    are listed by their owning process; dangling pointers are absent. *)

val scheduler_wf : Proc_mgr.t -> (unit, string) result
(** A thread is in the run queue exactly when runnable (exactly once),
    is [current] exactly when running, and sits on an endpoint queue
    exactly when blocked on that endpoint. *)

val endpoints_wf : Proc_mgr.t -> (unit, string) result
(** Every descriptor slot points at a live endpoint; each endpoint's
    reference count equals the number of slots naming it; queues only
    contain appropriately blocked threads. *)

val quota_wf : Proc_mgr.t -> (unit, string) result
(** Accounting ground truth: each container's [used] equals its real
    page consumption, [delegated] equals the sum of live children's
    quotas, and availability is non-negative. *)

val all : Proc_mgr.t -> (unit, string) result
val obligations : (string * (Proc_mgr.t -> (unit, string) result)) list
