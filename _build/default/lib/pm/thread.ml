type sched_state =
  | Runnable
  | Running
  | Blocked_send of int
  | Blocked_recv of int

let pp_sched_state ppf = function
  | Runnable -> Format.pp_print_string ppf "runnable"
  | Running -> Format.pp_print_string ppf "running"
  | Blocked_send e -> Format.fprintf ppf "blocked-send(0x%x)" e
  | Blocked_recv e -> Format.fprintf ppf "blocked-recv(0x%x)" e

let equal_sched_state (a : sched_state) b = a = b

type t = {
  owner_proc : int;
  state : sched_state;
  endpoints : int option array;
  msg_buf : Message.t option;
}

let make ~owner_proc =
  {
    owner_proc;
    state = Runnable;
    endpoints = Array.make Kconfig.max_endpoint_slots None;
    msg_buf = None;
  }

let slot t i =
  if i < 0 || i >= Array.length t.endpoints then None else t.endpoints.(i)

let set_slot t i v =
  if i < 0 || i >= Array.length t.endpoints then
    invalid_arg "Thread.set_slot: slot out of range";
  let endpoints = Array.copy t.endpoints in
  endpoints.(i) <- v;
  { t with endpoints }

let slots t =
  let acc = ref [] in
  Array.iteri
    (fun i -> function Some e -> acc := (i, e) :: !acc | None -> ())
    t.endpoints;
  List.rev !acc

let wf t =
  Array.length t.endpoints = Kconfig.max_endpoint_slots
  && (match (t.state, t.msg_buf) with
      | Blocked_send _, None -> false (* a blocked sender must hold its message *)
      | _ -> true)
  && (match t.msg_buf with None -> true | Some m -> Message.wf m)

let pp ppf t =
  Format.fprintf ppf "@[<h>thread{proc=0x%x; %a; %d slots}@]" t.owner_proc
    pp_sched_state t.state
    (List.length (slots t))
