lib/pt/page_table.mli: Atmo_hw Atmo_pmem Atmo_util Format
