lib/pt/pt_refine.ml: Atmo_hw Atmo_pmem Atmo_util Format Hashtbl Imap Iset List Option Page_table
