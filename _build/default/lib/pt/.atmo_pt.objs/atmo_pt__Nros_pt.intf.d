lib/pt/nros_pt.mli: Page_table
