lib/pt/nros_pt.ml: Atmo_hw Atmo_pmem Atmo_util Format Imap Iset List Page_table
