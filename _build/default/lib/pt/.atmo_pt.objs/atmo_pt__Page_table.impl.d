lib/pt/page_table.ml: Atmo_hw Atmo_pmem Atmo_util Format Hashtbl Imap Iset List
