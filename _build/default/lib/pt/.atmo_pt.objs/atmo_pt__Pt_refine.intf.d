lib/pt/pt_refine.mli: Page_table
