(** Flat refinement and invariant checks for {!Page_table}.

    Executable counterpart of the paper's page-table proof (§6.2): each
    function is one named obligation.  All checks are written in the
    paper's flat style — they quantify over the global ghost maps and the
    flat table-page registry, never by structural recursion from the
    root.  {!Nros_pt} provides the recursive (NrOS-style) formulation of
    the same obligations for the ablation. *)

val refinement : Page_table.t -> (unit, string) result
(** The ghost maps and the MMU agree: every ghost entry resolves through
    the concrete tables to the same frame and permission, and every
    MMU-visible mapping appears in the ghost maps (both inclusions, as in
    the paper's two [forall] statements). *)

val mmu_probe : Page_table.t -> vaddrs:int list -> (unit, string) result
(** Point-wise refinement at chosen probe addresses: [Mmu.resolve]
    agrees with the abstract address space, including on unmapped
    addresses (resolve must fault). *)

val structure : Page_table.t -> (unit, string) result
(** Structural invariants over the flat registry: the root is a level-4
    table; every present non-huge entry points to a registered table of
    the next level down; every non-root table is referenced by exactly
    one parent slot (no aliasing, hence no cycles); huge bits appear only
    at L3/L2; leaf frames are aligned to their mapping size. *)

val ghost_wf : Page_table.t -> (unit, string) result
(** Well-formedness of the abstract state alone: canonical, size-aligned
    virtual bases in each ghost map, and the virtual ranges of all
    mappings (across the three sizes) are pairwise disjoint. *)

val closure_disjoint : Page_table.t -> (unit, string) result
(** The table pages (page_closure) are disjoint from the mapped frames —
    a mapping must never expose the page table's own memory. *)

val all : Page_table.t -> (unit, string) result
(** Conjunction of every obligation above, first failure wins. *)

val obligations : (string * (Page_table.t -> (unit, string) result)) list
(** Named obligations, for the verification-time harness. *)
