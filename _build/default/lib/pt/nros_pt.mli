(** Recursive (NrOS-style) page-table checker — the §6.2 ablation baseline.

    Checks the same obligations as {!Pt_refine} but in the classical
    hierarchical-ownership formulation: invariants and the abstract
    interpretation are defined by structural recursion from the root,
    and each node re-derives its children's interpretations (no global
    registry, no sharing across levels).  This mirrors how NrOS's
    verified page table unrolls recursive specifications level by level,
    and is what the flat design is measured against. *)

val interp : Page_table.t -> (int * Page_table.entry) list
(** Abstract interpretation of the concrete tables computed by recursive
    descent from cr3: [(virtual base, entry)] pairs. *)

val refinement : Page_table.t -> (unit, string) result
(** Recursive refinement: the recursively-derived interpretation equals
    the ghost maps.  Parent nodes recompute child interpretations when
    validating containment, reproducing the repeated-unrolling cost of
    the hierarchical proof. *)

val structure : Page_table.t -> (unit, string) result
(** Recursive structural invariant: node-local well-formedness plus
    recursive well-formedness of each child subtree, with the subtree
    frame sets recomputed at every level to check disjointness of
    siblings (no cycles / no sharing, derived hierarchically). *)

val all : Page_table.t -> (unit, string) result

val obligations : (string * (Page_table.t -> (unit, string) result)) list
