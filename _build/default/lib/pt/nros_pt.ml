open Atmo_util
module Phys_mem = Atmo_hw.Phys_mem
module Mmu = Atmo_hw.Mmu
module Pte = Atmo_hw.Pte_bits
module Page_state = Atmo_pmem.Page_state

let err fmt = Format.kasprintf (fun s -> Error s) fmt
let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let size_at_level = function
  | 3 -> Some Page_state.S1g
  | 2 -> Some Page_state.S2m
  | _ -> None

(* Recursive interpretation of the subtree rooted at [table] (a table
   page of [level]) covering the virtual range starting at [vbase].
   This is the hierarchical definition: a node's interpretation is the
   union of its children's, derived afresh on every call. *)
let rec interp_node mem ~table ~level ~vbase =
  let shift = 12 + (9 * (level - 1)) in
  let rec slots i acc =
    if i > 511 then acc
    else
      let e = Phys_mem.read_u64 mem ~addr:(Mmu.entry_addr ~table ~index:i) in
      let vslot =
        if level = 4 && i land 0x100 <> 0 then
          vbase lor (i lsl shift) lor (-1 lsl 48)
        else vbase lor (i lsl shift)
      in
      let acc =
        if not (Pte.is_present e) then acc
        else if level = 1 then
          (vslot, Page_table.{ frame = Pte.addr_of e; size = Page_state.S4k; perm = Pte.perm_of e })
          :: acc
        else if Pte.is_huge e then
          match size_at_level level with
          | Some size ->
            (vslot, Page_table.{ frame = Pte.addr_of e; size; perm = Pte.perm_of e }) :: acc
          | None -> acc (* malformed huge bit; caught by [structure] *)
        else
          interp_node mem ~table:(Pte.addr_of e) ~level:(level - 1) ~vbase:vslot @ acc
      in
      slots (i + 1) acc
  in
  slots 0 []

let interp pt =
  interp_node (Page_table.mem pt) ~table:(Page_table.cr3 pt) ~level:4 ~vbase:0

(* Frames used by the subtree itself (its table pages), recomputed
   recursively — the hierarchical analogue of page_closure. *)
let rec closure_node mem ~table ~level =
  let rec slots i acc =
    if i > 511 then acc
    else
      let e = Phys_mem.read_u64 mem ~addr:(Mmu.entry_addr ~table ~index:i) in
      let acc =
        if Pte.is_present e && (not (Pte.is_huge e)) && level > 1 then
          Iset.union acc (closure_node mem ~table:(Pte.addr_of e) ~level:(level - 1))
        else acc
      in
      slots (i + 1) acc
  in
  slots 0 (Iset.singleton table)

(* Hierarchical refinement, as the recursive-ownership proof structures
   it: every node's interpretation must equal the union of its
   children's interpretations, each child's interpretation must fall
   inside the child's slot range, and children are verified recursively.
   Since the interpretation is defined by recursion, establishing this
   at a node re-derives each child's interpretation (once for the range
   check, once inside the node's own derivation) — the repeated
   unrolling cost the flat design avoids. *)
let rec verify_node mem ~table ~level ~vbase =
  let shift = 12 + (9 * (level - 1)) in
  let* () =
    let rec slots i acc =
      let* () = acc in
      if i > 511 then Ok ()
      else
        let e = Phys_mem.read_u64 mem ~addr:(Mmu.entry_addr ~table ~index:i) in
        let next =
          if (not (Pte.is_present e)) || Pte.is_huge e || level = 1 then Ok ()
          else begin
            let lo =
              if level = 4 && i land 0x100 <> 0 then
                vbase lor (i lsl shift) lor (-1 lsl 48)
              else vbase lor (i lsl shift)
            in
            let child = Pte.addr_of e in
            let* () = verify_node mem ~table:child ~level:(level - 1) ~vbase:lo in
            (* re-derive the child's interpretation for the range check *)
            let hi = lo + (1 lsl shift) in
            List.fold_left
              (fun acc (va, _) ->
                let* () = acc in
                if (va >= lo && va < hi) || level = 4 then Ok ()
                else err "nros: child of L%d[%d] interprets 0x%x outside its range" level i va)
              (Ok ())
              (interp_node mem ~table:child ~level:(level - 1) ~vbase:lo)
          end
        in
        slots (i + 1) next
    in
    slots 0 (Ok ())
  in
  (* the node's own interpretation must be internally duplicate-free
     (derived afresh: the third derivation of each subtree) *)
  let own = interp_node mem ~table ~level ~vbase in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) own in
  let rec no_dup = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then err "nros: node 0x%x interprets 0x%x twice" table a else no_dup rest
    | _ -> Ok ()
  in
  no_dup sorted

let refinement pt =
  let mem = Page_table.mem pt in
  let* () = verify_node mem ~table:(Page_table.cr3 pt) ~level:4 ~vbase:0 in
  let derived =
    List.fold_left (fun m (va, e) -> Imap.add va e m) Imap.empty (interp pt)
  in
  let abstract = Page_table.address_space pt in
  if Imap.equal Page_table.equal_entry derived abstract then Ok ()
  else
    let ddom = Imap.dom derived and adom = Imap.dom abstract in
    (match Iset.choose_opt (Iset.diff adom ddom) with
     | Some va -> err "nros refinement: abstract maps 0x%x, derivation faults" va
     | None ->
       (match Iset.choose_opt (Iset.diff ddom adom) with
        | Some va -> err "nros refinement: derivation maps 0x%x, abstract faults" va
        | None ->
          let bad =
            Imap.fold
              (fun va e acc ->
                match acc with
                | Some _ -> acc
                | None ->
                  (match Imap.find_opt va abstract with
                   | Some a when not (Page_table.equal_entry a e) -> Some va
                   | _ -> None))
              derived None
          in
          (match bad with
           | Some va -> err "nros refinement: values differ at 0x%x" va
           | None -> Ok ())))

(* Recursive structural well-formedness: a node is wf iff its entries are
   locally sound, its children are recursively wf, and the children's
   closures (recomputed here) are pairwise disjoint and exclude this
   node. *)
let rec node_wf mem ~table ~level =
  let rec slots i acc closures =
    if i > 511 then
      let* () = acc in
      if Iset.pairwise_disjoint closures then Ok ()
      else err "nros structure: sibling subtrees of 0x%x share table pages" table
    else
      let e = Phys_mem.read_u64 mem ~addr:(Mmu.entry_addr ~table ~index:i) in
      if not (Pte.is_present e) then slots (i + 1) acc closures
      else if Pte.is_huge e then
        let next =
          let* () = acc in
          match size_at_level level with
          | Some size ->
            if Pte.addr_of e mod Page_state.bytes_per size <> 0 then
              err "nros structure: misaligned huge leaf at L%d[%d]" level i
            else Ok ()
          | None -> err "nros structure: huge bit at level %d" level
        in
        slots (i + 1) next closures
      else if level = 1 then slots (i + 1) acc closures
      else begin
        let child = Pte.addr_of e in
        let next =
          let* () = acc in
          let* () = node_wf mem ~table:child ~level:(level - 1) in
          let sub = closure_node mem ~table:child ~level:(level - 1) in
          if Iset.mem table sub then
            err "nros structure: cycle through table 0x%x" table
          else Ok ()
        in
        slots (i + 1) next (closure_node mem ~table:child ~level:(level - 1) :: closures)
      end
  in
  slots 0 (Ok ()) []

let structure pt =
  node_wf (Page_table.mem pt) ~table:(Page_table.cr3 pt) ~level:4

let obligations =
  [ ("nros_pt/refinement", refinement); ("nros_pt/structure", structure) ]

let all pt =
  List.fold_left
    (fun acc (_, check) ->
      let* () = acc in
      check pt)
    (Ok ()) obligations
