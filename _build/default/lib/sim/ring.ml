module Phys_mem = Atmo_hw.Phys_mem
module Clock = Atmo_hw.Clock

(* layout: [head:u64][tail:u64][slot 0][slot 1]... ; head/tail are free-
   running counters, masked by (slots-1) for the slot index. *)
type t = {
  mem : Phys_mem.t;
  base : int;
  slots : int;
  slot_size : int;
  clock : Clock.t;
  cost : Cost.t;
}

let header_bytes = 16

let bytes_needed ~slots ~slot_size = header_bytes + (slots * slot_size)

let slots t = t.slots
let slot_size t = t.slot_size

let create mem ~base ~slots ~slot_size ~clock ~cost =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Ring.create: slots must be a positive power of two";
  if slot_size <= 0 then invalid_arg "Ring.create: slot_size <= 0";
  if base land 7 <> 0 then invalid_arg "Ring.create: base must be 8-byte aligned";
  { mem; base; slots; slot_size; clock; cost }

let head t = Int64.to_int (Phys_mem.read_u64 t.mem ~addr:t.base)
let tail t = Int64.to_int (Phys_mem.read_u64 t.mem ~addr:(t.base + 8))
let set_head t v = Phys_mem.write_u64 t.mem ~addr:t.base (Int64.of_int v)
let set_tail t v = Phys_mem.write_u64 t.mem ~addr:(t.base + 8) (Int64.of_int v)

let length t = head t - tail t
let is_empty t = length t = 0
let is_full t = length t >= t.slots

let slot_addr t idx = t.base + header_bytes + (idx land (t.slots - 1)) * t.slot_size

let push t payload =
  Clock.advance t.clock t.cost.Cost.ring_op;
  if is_full t then false
  else begin
    let h = head t in
    let record = Bytes.make t.slot_size '\000' in
    Bytes.blit payload 0 record 0 (min (Bytes.length payload) t.slot_size);
    Phys_mem.blit_to t.mem ~addr:(slot_addr t h) record;
    set_head t (h + 1);
    true
  end

let pop t =
  Clock.advance t.clock t.cost.Cost.ring_op;
  if is_empty t then None
  else begin
    let tl = tail t in
    let record = Phys_mem.blit_from t.mem ~addr:(slot_addr t tl) ~len:t.slot_size in
    set_tail t (tl + 1);
    Some record
  end
