type config =
  | Atmo_driver
  | Atmo_c2
  | Atmo_c1 of int
  | Linux
  | Dpdk_like

let name = function
  | Atmo_driver -> "atmo-driver"
  | Atmo_c2 -> "atmo-c2"
  | Atmo_c1 b -> Printf.sprintf "atmo-c1-b%d" b
  | Linux -> "linux"
  | Dpdk_like -> "dpdk"

let cycles_per_item ~(cost : Cost.t) ~app_cycles ~driver_cycles config =
  let app = float_of_int app_cycles in
  let drv = float_of_int driver_cycles in
  let ring = float_of_int cost.Cost.ring_op in
  match config with
  | Atmo_driver | Dpdk_like ->
    (* same address space: no rings, no kernel crossings on the data path *)
    app +. drv
  | Atmo_c2 ->
    (* two cores in a pipeline: each item costs one ring op per stage;
       the slower stage sets the rate *)
    Float.max (app +. ring) (drv +. ring)
  | Atmo_c1 batch ->
    (* one core runs both stages; each batch additionally pays one IPC
       call/reply to enter the driver *)
    let b = float_of_int (max 1 batch) in
    app +. drv +. (2. *. ring)
    +. (float_of_int (Cost.atmo_call_reply cost) /. b)
  | Linux ->
    (* one kernel crossing and the generic in-kernel stack per item *)
    app +. float_of_int cost.Cost.linux_stack_per_packet

let throughput ~cost ~app_cycles ~driver_cycles ?device_cap config =
  let cpp = cycles_per_item ~cost ~app_cycles ~driver_cycles config in
  let raw = cost.Cost.frequency_hz /. cpp in
  match device_cap with None -> raw | Some cap -> Float.min raw cap
