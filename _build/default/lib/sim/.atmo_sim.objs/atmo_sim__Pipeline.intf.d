lib/sim/pipeline.mli: Cost
