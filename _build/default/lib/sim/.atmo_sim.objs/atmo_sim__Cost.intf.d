lib/sim/cost.mli:
