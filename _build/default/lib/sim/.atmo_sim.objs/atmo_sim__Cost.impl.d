lib/sim/cost.ml:
