lib/sim/pipeline.ml: Cost Float Printf
