lib/sim/smp.mli: Atmo_core Atmo_spec Cost
