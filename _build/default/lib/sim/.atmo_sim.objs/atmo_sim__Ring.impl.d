lib/sim/ring.ml: Atmo_hw Bytes Cost Int64
