lib/sim/ring.mli: Atmo_hw Cost
