lib/sim/smp.ml: Array Atmo_core Atmo_pm Atmo_spec Atmo_util Cost Hashtbl Iset List Option Printf
