(** Single-producer / single-consumer shared-memory ring buffer.

    The asynchronous communication substrate of §3 and §6.5: processes
    that share memory pages (established over endpoint page grants)
    exchange work through rings.  The ring lives in simulated physical
    memory — head/tail indices and fixed-size slots are real bytes in a
    shared frame — so both sides see exactly what the MMU maps, and a
    cycle clock is charged {!Cost.t.ring_op} per operation. *)

type t

val slots : t -> int
val slot_size : t -> int

val create :
  Atmo_hw.Phys_mem.t ->
  base:int ->
  slots:int ->
  slot_size:int ->
  clock:Atmo_hw.Clock.t ->
  cost:Cost.t ->
  t
(** Lay the ring out at physical address [base] ([slots] must be a power
    of two; header + payload must fit the backing region the caller
    mapped). *)

val push : t -> bytes -> bool
(** Enqueue one record (truncated/padded to [slot_size]); [false] when
    full. *)

val pop : t -> bytes option
val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val bytes_needed : slots:int -> slot_size:int -> int
(** Size of the backing region for {!create}. *)
