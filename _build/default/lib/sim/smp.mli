(** Multiprocessor execution under the big lock.

    Atmosphere runs on multi-CPU machines but executes all kernel
    entries under one global lock with interrupts disabled (§3).  This
    module models exactly that: threads run user code ("think") in
    parallel on their CPUs, but every system call serializes through
    the big kernel lock, FIFO.  Container CPU reservations are honored:
    a thread may only be placed on a CPU its owning container reserved.

    The model drives the real kernel — each simulated kernel entry
    issues the thread's next system call through [Kernel.step] — so the
    timeline is annotated over genuine kernel transitions, and the
    scaling ablation (throughput vs CPU count, saturating at the lock)
    reflects the paper's stated design trade-off. *)

type program = {
  thread : int;
  think_cycles : int;  (** user-mode work between kernel entries *)
  call_of : int -> Atmo_spec.Syscall.t;  (** the i-th system call *)
}

type stats = {
  cpus : int;
  syscalls_executed : int;
  wall_cycles : int;  (** completion time of the last thread *)
  lock_wait_cycles : int;  (** total cycles spent queued on the big lock *)
  busy_cycles : int array;  (** per-CPU think + kernel time *)
  placement : (int * int) list;  (** (thread, cpu) assignments *)
}

val syscall_cycles : Cost.t -> Atmo_spec.Syscall.t -> int
(** Kernel-path cost of one call under the cycle model (IPC at the
    call/reply figure, mapping at the map-page figure, a generic
    trap cost otherwise). *)

val run :
  Atmo_core.Kernel.t ->
  cost:Cost.t ->
  cpus:int ->
  programs:program list ->
  iterations:int ->
  (stats, string) result
(** Place each program's thread on an allowed CPU (error if a thread's
    container reserved none of the available CPUs), then simulate
    [iterations] think+syscall rounds per thread.  System calls really
    execute against the kernel. *)

val throughput : stats -> float
(** Syscalls per second at the model frequency. *)
