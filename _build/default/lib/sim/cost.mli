(** Calibrated cycle-cost model.

    All performance experiments in this reproduction run on a
    cycle-accounting model instead of the paper's CloudLab testbed (see
    DESIGN.md §1).  The constants below are calibrated once, against the
    numbers the paper reports in Table 3 and §6.4–§6.6, and then used
    unchanged by every benchmark; the benchmarks recompute the paper's
    tables and figures from the same mechanisms (per-packet system
    calls, shared-memory rings, IPC batching, device rate caps) rather
    than from per-figure fudge factors. *)

type t = {
  frequency_hz : float;  (** 2.2 GHz, the c220g5 clock *)
  (* kernel paths *)
  syscall_entry_exit : int;  (** trap + sysret trampoline pair *)
  ipc_oneway : int;  (** send or recv through an endpoint incl. switch *)
  ipc_call_reply_extra : int;  (** rendezvous bookkeeping beyond 2 one-ways *)
  map_page : int;  (** Atmosphere mmap of one 4 KiB page (Table 3) *)
  (* user-level data path *)
  ring_op : int;  (** one shared-memory ring push or pop *)
  driver_per_packet : int;  (** ixgbe descriptor handling per packet *)
  nic_line_rate_pps : float;  (** 10 GbE at 64 B: 14.2 Mpps *)
  (* comparator systems (baselines, from the paper's measurements) *)
  sel4_call_reply : int;  (** 1026 cycles *)
  sel4_map_page : int;  (** 2650 cycles *)
  linux_stack_per_packet : int;  (** socket syscall + kernel network stack *)
  linux_block_per_io : int;  (** block layer + fio overhead per IO *)
  linux_block_write_per_io : int;
  spdk_per_io : int;
  nvme_read_latency_s : float;  (** synchronous qd-1 read latency *)
  nvme_read_cap_iops : float;
  nvme_write_cap_iops : float;
  nvme_atmo_write_penalty : float;  (** §6.5.2: 10% on writes *)
  nginx_per_request_overhead : int;  (** sockets + epoll around the work *)
  atmo_httpd_overhead : int;  (** driver + ring path per request *)
}

val default : t
(** The calibration used by every bench. *)

val atmo_call_reply : t -> int
(** Table 3 first row: [2 * ipc_oneway + ipc_call_reply_extra]. *)

val seconds_of_cycles : t -> int -> float
val per_second : t -> cycles_per_item:float -> float
(** Items per second on one core spending [cycles_per_item] each. *)
