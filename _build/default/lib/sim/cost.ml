type t = {
  frequency_hz : float;
  syscall_entry_exit : int;
  ipc_oneway : int;
  ipc_call_reply_extra : int;
  map_page : int;
  ring_op : int;
  driver_per_packet : int;
  nic_line_rate_pps : float;
  sel4_call_reply : int;
  sel4_map_page : int;
  linux_stack_per_packet : int;
  linux_block_per_io : int;
  linux_block_write_per_io : int;
  spdk_per_io : int;
  nvme_read_latency_s : float;
  nvme_read_cap_iops : float;
  nvme_write_cap_iops : float;
  nvme_atmo_write_penalty : float;
  nginx_per_request_overhead : int;
  atmo_httpd_overhead : int;
}

let default =
  {
    frequency_hz = 2.2e9;
    syscall_entry_exit = 298;
    ipc_oneway = 380;
    ipc_call_reply_extra = 298;
    map_page = 1984;
    ring_op = 12;
    driver_per_packet = 76;
    nic_line_rate_pps = 14.2e6;
    sel4_call_reply = 1026;
    sel4_map_page = 2650;
    linux_stack_per_packet = 2400;
    linux_block_per_io = 15600;
    linux_block_write_per_io = 8600;
    spdk_per_io = 1200;
    nvme_read_latency_s = 77e-6;
    nvme_read_cap_iops = 270e3;
    nvme_write_cap_iops = 256e3;
    nvme_atmo_write_penalty = 0.10;
    nginx_per_request_overhead = 11000;
    atmo_httpd_overhead = 2100;
  }

let atmo_call_reply t = (2 * t.ipc_oneway) + t.ipc_call_reply_extra
let seconds_of_cycles t c = float_of_int c /. t.frequency_hz
let per_second t ~cycles_per_item = t.frequency_hz /. cycles_per_item
