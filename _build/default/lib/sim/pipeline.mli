(** Throughput model for the evaluation's deployment configurations.

    §6.5 runs every driver and application in the same family of
    configurations; this module composes per-item cycle costs for each
    of them from the {!Cost} constants:

    - [Atmo_driver]: application statically linked with the driver
      (like DPDK/SPDK inside the process);
    - [Atmo_c2]: application and driver on two cores, connected by a
      shared-memory ring — throughput is set by the slower stage;
    - [Atmo_c1 batch]: application and driver share one core; the app
      fills the ring with [batch] requests, then invokes the driver
      through an endpoint (one IPC call/reply per batch);
    - [Linux]: per-item kernel socket/syscall path;
    - [Dpdk_like]: polling user-space comparator (DPDK/SPDK). *)

type config =
  | Atmo_driver
  | Atmo_c2
  | Atmo_c1 of int  (** batch size per IPC invocation *)
  | Linux
  | Dpdk_like

val name : config -> string
(** The paper's labels: atmo-driver, atmo-c2, atmo-c1-b<n>, linux,
    dpdk. *)

val cycles_per_item :
  cost:Cost.t -> app_cycles:int -> driver_cycles:int -> config -> float
(** Busy cycles on the bottleneck core for one item. *)

val throughput :
  cost:Cost.t ->
  app_cycles:int ->
  driver_cycles:int ->
  ?device_cap:float ->
  config ->
  float
(** Items per second, capped by the device when a cap is given. *)
