(** The isolation invariants of §4.3.

    Executable forms of the paper's [memory_iso] and [endpoint_iso]
    predicates, plus the flat constructions of the process and thread
    sets of a container subtree (the paper's [T_A_wf]-style bidirectional
    definitions, evaluated directly over the ghost subtree). *)

val procs_of_subtree : Atmo_spec.Abstract_state.t -> container:int -> Atmo_util.Iset.t
(** P_A: processes of every container in the subtree (inclusive). *)

val threads_of_subtree : Atmo_spec.Abstract_state.t -> container:int -> Atmo_util.Iset.t
(** T_A: threads of every process in P_A. *)

val memory_iso :
  Atmo_spec.Abstract_state.t -> Atmo_util.Iset.t -> Atmo_util.Iset.t -> (unit, string) result
(** [memory_iso Ψ P_A P_B]: no physical frame appears in an address
    space of P_A and an address space of P_B. *)

val endpoint_iso :
  Atmo_spec.Abstract_state.t -> Atmo_util.Iset.t -> Atmo_util.Iset.t -> (unit, string) result
(** [endpoint_iso Ψ T_A T_B]: no endpoint is named by a descriptor of a
    T_A thread and a descriptor of a T_B thread. *)

val iso :
  Atmo_spec.Abstract_state.t -> a:int -> b:int -> (unit, string) result
(** Both invariants between the subtrees of containers [a] and [b]. *)
