(** The verified shared service V (§4.3).

    V is one container with one process running one thread, implemented
    as an event-driven state machine: each turn, V polls its two
    endpoints with non-blocking receives, processes at most one request,
    replies with a non-blocking send, and releases any page it received
    — V never blocks and never retains or forwards client resources.

    V's functional correctness is itself specified and checked
    ({!wf}): after every completed transaction V's address space equals
    its baseline (all received memory released), its descriptor table
    holds exactly its two service endpoints, its replies carry no page
    or endpoint grants, and no request from one side is ever answered
    with data derived from the other side's state.  These are the
    properties the paper relies on for A/B isolation through V. *)

type side = A_side | B_side

type event =
  | Served of side * int list
      (** request scalars handled; the reply was delivered, or stashed
          for redelivery if the client is not yet waiting *)
  | Reply_delivered of side  (** a stashed reply reached its client *)
  | Rejected of side  (** malformed request drained without transfer *)
  | Idle  (** nothing to deliver, nothing pending on either side *)

type t

val create : Scenario.t -> t

val step : t -> event
(** One turn of V's event loop, driven entirely by system calls from
    V's thread. *)

val served_total : t -> int
val reply_for : int list -> int list
(** The service function: V answers request scalars [x1; x2; ...] with
    [x1+1; x2+1; ...] — a stand-in computation whose output depends only
    on the request, which is what the cross-client noninterference
    argument needs. *)

val wf : t -> (unit, string) result
(** V's functional-correctness invariant (see above). *)
