(** The three-container configuration of §4.3.

    Two untrusted, mutually isolated containers A and B and a verified
    shared-service container V, all children of the root.  A's and B's
    threads each hold one endpoint to V (slot 0); V's single thread owns
    both endpoints (slot 0 toward A, slot 1 toward B).  There is no
    channel between A and B.

    Containers, processes and threads are created through system calls
    from the init thread plus the trusted boot wiring (installing the
    initial endpoint descriptors into A and B — the paper's initial
    resource configuration, performed before the measured trace
    begins). *)

type t = {
  kernel : Atmo_core.Kernel.t;
  init_thread : int;
  a_cntr : int;
  b_cntr : int;
  v_cntr : int;
  a_thread : int;
  b_thread : int;
  v_thread : int;
  ep_av : int;  (** endpoint between A and V *)
  ep_bv : int;  (** endpoint between B and V *)
}

val build :
  ?boot:Atmo_core.Kernel.boot_params ->
  ?quota_a:int ->
  ?quota_b:int ->
  ?quota_v:int ->
  unit ->
  (t, string) result
(** Boot a kernel and construct the configuration.  The result satisfies
    [total_wf] and both isolation invariants. *)

val abstract : t -> Atmo_spec.Abstract_state.t

val check_isolation : t -> (unit, string) result
(** [memory_iso] and [endpoint_iso] between A's and B's subtrees. *)
