open Atmo_util
module A = Atmo_spec.Abstract_state

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let subtree (a : A.t) ~container =
  match Imap.find_opt container a.A.containers with
  | Some c -> Iset.add container c.A.ac_subtree
  | None -> Iset.empty

let procs_of_subtree (a : A.t) ~container =
  let cs = subtree a ~container in
  Imap.fold
    (fun p (pr : A.aproc) acc ->
      if Iset.mem pr.A.ap_owner_container cs then Iset.add p acc else acc)
    a.A.procs Iset.empty

let threads_of_subtree (a : A.t) ~container =
  let ps = procs_of_subtree a ~container in
  Imap.fold
    (fun th (t : A.athread) acc ->
      if Iset.mem t.A.at_owner_proc ps then Iset.add th acc else acc)
    a.A.threads Iset.empty

(* frames (all 4 KiB constituents) mapped by any process in the set *)
let frames_of (a : A.t) procs =
  Iset.fold
    (fun p acc ->
      match Imap.find_opt p a.A.procs with
      | None -> acc
      | Some pr ->
        Imap.fold
          (fun _va (e : Atmo_pt.Page_table.entry) acc ->
            let n = Atmo_pmem.Page_state.frames_per e.Atmo_pt.Page_table.size in
            let rec go i acc =
              if i >= n then acc
              else go (i + 1) (Iset.add (e.Atmo_pt.Page_table.frame + (i * 4096)) acc)
            in
            go 0 acc)
          pr.A.ap_space acc)
    procs Iset.empty

let memory_iso (a : A.t) p_a p_b =
  let fa = frames_of a p_a and fb = frames_of a p_b in
  if Iset.disjoint fa fb then Ok ()
  else
    match Iset.choose_opt (Iset.inter fa fb) with
    | Some f -> err "memory_iso: frame 0x%x mapped on both sides" f
    | None -> Ok ()

let endpoints_of (a : A.t) threads =
  Iset.fold
    (fun th acc ->
      match Imap.find_opt th a.A.threads with
      | None -> acc
      | Some t -> List.fold_left (fun acc (_, ep) -> Iset.add ep acc) acc t.A.at_slots)
    threads Iset.empty

let endpoint_iso (a : A.t) t_a t_b =
  let ea = endpoints_of a t_a and eb = endpoints_of a t_b in
  if Iset.disjoint ea eb then Ok ()
  else
    match Iset.choose_opt (Iset.inter ea eb) with
    | Some e -> err "endpoint_iso: endpoint 0x%x shared across the boundary" e
    | None -> Ok ()

let iso (st : A.t) ~a ~b =
  let p_a = procs_of_subtree st ~container:a and p_b = procs_of_subtree st ~container:b in
  match memory_iso st p_a p_b with
  | Error _ as e -> e
  | Ok () ->
    endpoint_iso st (threads_of_subtree st ~container:a) (threads_of_subtree st ~container:b)
