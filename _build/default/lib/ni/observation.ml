open Atmo_util
module A = Atmo_spec.Abstract_state
module Syscall = Atmo_spec.Syscall
module Thread = Atmo_pm.Thread
module Message = Atmo_pm.Message
module Page_state = Atmo_pmem.Page_state

(* The canonical observation is a rendered string: a deterministic
   traversal that replaces kernel pointers with P<n> and physical frames
   with F<n> in first-encounter order.  String equality then realises
   "equal up to injective renaming". *)
type t = string

type renamer = {
  ptrs : (int, int) Hashtbl.t;
  frames : (int, int) Hashtbl.t;
}

let fresh_renamer () = { ptrs = Hashtbl.create 32; frames = Hashtbl.create 32 }

let rename tbl x =
  match Hashtbl.find_opt tbl x with
  | Some id -> id
  | None ->
    let id = Hashtbl.length tbl in
    Hashtbl.replace tbl x id;
    id

let ptr rn buf p = Buffer.add_string buf (Printf.sprintf "P%d" (rename rn.ptrs p))
let frame rn buf f = Buffer.add_string buf (Printf.sprintf "F%d" (rename rn.frames f))

let addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

(* running vs runnable is deliberately not distinguished (see .mli) *)
let emit_state rn buf = function
  | Thread.Runnable | Thread.Running -> Buffer.add_string buf "ready"
  | Thread.Blocked_send e ->
    Buffer.add_string buf "blocked-send:";
    ptr rn buf e
  | Thread.Blocked_recv e ->
    Buffer.add_string buf "blocked-recv:";
    ptr rn buf e

let emit_msg _rn buf (m : Message.t) =
  addf buf "msg[%s]"
    (String.concat "," (List.map string_of_int m.Message.scalars));
  (match m.Message.page with
   | Some g -> addf buf "+page(0x%x->0x%x)" g.Message.src_vaddr g.Message.dst_vaddr
   | None -> ());
  match m.Message.endpoint with
  | Some g -> addf buf "+edpt(%d->%d)" g.Message.src_slot g.Message.dst_slot
  | None -> ()

let emit_thread (a : A.t) rn buf ~subtree_threads th =
  match Imap.find_opt th a.A.threads with
  | None -> Buffer.add_string buf "dead-thread;"
  | Some t ->
    Buffer.add_string buf "thread ";
    ptr rn buf th;
    Buffer.add_string buf " ";
    emit_state rn buf t.A.at_state;
    List.iter
      (fun (i, ep) ->
        addf buf " slot%d=" i;
        ptr rn buf ep)
      t.A.at_slots;
    (match t.A.at_msg with
     | Some m ->
       Buffer.add_string buf " ";
       emit_msg rn buf m
     | None -> ());
    ignore subtree_threads;
    Buffer.add_string buf ";"

let emit_proc (a : A.t) rn buf ~subtree_threads p =
  match Imap.find_opt p a.A.procs with
  | None -> Buffer.add_string buf "dead-proc;"
  | Some pr ->
    Buffer.add_string buf "proc ";
    ptr rn buf p;
    (match pr.A.ap_parent with
     | Some par ->
       Buffer.add_string buf " parent=";
       ptr rn buf par
     | None -> Buffer.add_string buf " parent=-");
    Buffer.add_string buf " space{";
    Imap.iter
      (fun va (e : Atmo_pt.Page_table.entry) ->
        addf buf "0x%x->" va;
        frame rn buf e.Atmo_pt.Page_table.frame;
        addf buf "/%s:%s"
          (Format.asprintf "%a" Page_state.pp_size e.Atmo_pt.Page_table.size)
          (Format.asprintf "%a" Atmo_hw.Pte_bits.pp_perm e.Atmo_pt.Page_table.perm);
        Buffer.add_string buf " ")
      pr.A.ap_space;
    Buffer.add_string buf "} ";
    List.iter (emit_thread a rn buf ~subtree_threads) pr.A.ap_threads;
    Buffer.add_string buf ";"

let rec emit_container (a : A.t) rn buf ~subtree_threads c =
  match Imap.find_opt c a.A.containers with
  | None -> Buffer.add_string buf "dead-container;"
  | Some cc ->
    Buffer.add_string buf "container ";
    ptr rn buf c;
    addf buf " quota=%d used=%d delegated=%d cpus=%s | "
      cc.A.ac_quota cc.A.ac_used cc.A.ac_delegated
      (String.concat "," (List.map string_of_int (Iset.elements cc.A.ac_cpus)));
    List.iter (emit_proc a rn buf ~subtree_threads) cc.A.ac_procs;
    List.iter (emit_container a rn buf ~subtree_threads) cc.A.ac_children;
    Buffer.add_string buf ";"

(* endpoints owned by the subtree, with queues restricted to the
   subtree's threads *)
let emit_endpoints (a : A.t) rn buf ~subtree ~subtree_threads =
  let owned =
    Imap.fold
      (fun ep (e : A.aendpoint) acc ->
        if Iset.mem e.A.ae_owner_container subtree then (ep, e) :: acc else acc)
      a.A.endpoints []
    |> List.sort (fun (p, _) (q, _) ->
           (* order by first-encounter id if known, else by a stable key:
              unknown endpoints are ordered after known ones by owner
              traversal; fall back to raw compare for determinism between
              isomorphic states (raw ptr never leaks into the string) *)
           match (Hashtbl.find_opt rn.ptrs p, Hashtbl.find_opt rn.ptrs q) with
           | Some i, Some j -> compare i j
           | Some _, None -> -1
           | None, Some _ -> 1
           | None, None -> compare p q)
  in
  List.iter
    (fun (ep, (e : A.aendpoint)) ->
      Buffer.add_string buf "endpoint ";
      ptr rn buf ep;
      Buffer.add_string buf " senders[";
      List.iter
        (fun th -> if Iset.mem th subtree_threads then ptr rn buf th)
        e.A.ae_send_queue;
      Buffer.add_string buf "] receivers[";
      List.iter
        (fun th -> if Iset.mem th subtree_threads then ptr rn buf th)
        e.A.ae_recv_queue;
      Buffer.add_string buf "];")
    owned

(* devices owned by processes of the subtree: the DMA window, the
   interrupt route and the pending count are all state the container can
   observe through its own driver *)
let emit_devices (a : A.t) rn buf ~subtree_procs =
  Imap.iter
    (fun device (d : A.adevice) ->
      if Iset.mem d.A.ad_owner_proc subtree_procs then begin
        addf buf "device %d owner=" device;
        ptr rn buf d.A.ad_owner_proc;
        Buffer.add_string buf " window{";
        Imap.iter
          (fun iova (e : Atmo_pt.Page_table.entry) ->
            addf buf "0x%x->" iova;
            frame rn buf e.Atmo_pt.Page_table.frame;
            Buffer.add_string buf " ")
          d.A.ad_io_space;
        Buffer.add_string buf "} irq=";
        (match d.A.ad_irq_endpoint with
         | Some ep -> ptr rn buf ep
         | None -> Buffer.add_string buf "-");
        addf buf " pending=%d;" d.A.ad_irq_pending
      end)
    a.A.devices

let subtree_proc_set (a : A.t) ~subtree =
  Imap.fold
    (fun p (pr : A.aproc) acc ->
      if Iset.mem pr.A.ap_owner_container subtree then Iset.add p acc else acc)
    a.A.procs Iset.empty

let subtree_thread_set (a : A.t) ~subtree =
  Imap.fold
    (fun th (t : A.athread) acc ->
      match Imap.find_opt t.A.at_owner_proc a.A.procs with
      | Some p when Iset.mem p.A.ap_owner_container subtree -> Iset.add th acc
      | _ -> acc)
    a.A.threads Iset.empty

let observe_inner (a : A.t) ~container ~(ret : Syscall.ret option) =
  let rn = fresh_renamer () in
  let buf = Buffer.create 512 in
  let subtree =
    match Imap.find_opt container a.A.containers with
    | Some c -> Iset.add container c.A.ac_subtree
    | None -> Iset.singleton container
  in
  let subtree_threads = subtree_thread_set a ~subtree in
  emit_container a rn buf ~subtree_threads container;
  emit_endpoints a rn buf ~subtree ~subtree_threads;
  emit_devices a rn buf ~subtree_procs:(subtree_proc_set a ~subtree);
  (match ret with
   | None -> ()
   | Some r ->
     Buffer.add_string buf "ret:";
     (match r with
      | Syscall.Rptr p ->
        Buffer.add_string buf "ptr ";
        ptr rn buf p
      | Syscall.Runit -> Buffer.add_string buf "unit"
      | Syscall.Rblocked -> Buffer.add_string buf "blocked"
      | Syscall.Rmsg m -> emit_msg rn buf m
      | Syscall.Rmapped frames ->
        Buffer.add_string buf "mapped ";
        List.iter
          (fun f ->
            frame rn buf f;
            Buffer.add_string buf " ")
          frames
      | Syscall.Rerr e -> Buffer.add_string buf (Errno.to_string e)));
  Buffer.contents buf

let observe a ~container = observe_inner a ~container ~ret:None
let observe_with_ret a ~container ~ret = observe_inner a ~container ~ret:(Some ret)
let equal (a : t) b = String.equal a b
let pp ppf (t : t) = Format.pp_print_string ppf t
