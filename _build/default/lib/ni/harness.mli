(** Noninterference harness: the unwinding conditions of §4.3, checked
    over randomized traces of arbitrary system calls from the untrusted
    containers.

    - {b Output consistency} (OC): the kernel is deterministic — two
      identical states given the same call produce the same return and
      the same post-state.  Checked by replaying the same trace in two
      independently booted worlds.
    - {b Step consistency} (SC): an arbitrary system call by A leaves
      B's observation unchanged (and vice versa), and does not change
      the return value B gets for its own next call.
    - {b Local respect} follows from SC in this configuration (only A
      and B are isolated), as the paper argues.

    Alongside the unwinding conditions the harness maintains the
    isolation invariants ([memory_iso], [endpoint_iso]) after every
    step, and V's functional correctness when V participates. *)

type failure = {
  at_step : int;
  what : string;
}

val output_consistency : seed:int -> steps:int -> (unit, failure) result
(** Replay the same random trace in two worlds; all returns and
    abstract post-states must coincide. *)

val step_consistency :
  ?with_service:bool -> seed:int -> steps:int -> unit -> (int, failure) result
(** Drive the A/B/V scenario with random syscalls alternating between
    A's and B's threads; after each step, check that the other side's
    observation is unchanged, that the isolation invariants still hold,
    that the kernel stays well-formed, and (when [with_service]) run V
    turns and check V's functional correctness.  Returns the number of
    steps executed. *)

val probe_consistency : seed:int -> steps:int -> probes:int -> (unit, failure) result
(** The return-value half of SC: fork the world before an A step and
    compare the canonical observation-with-return that B gets for its
    own next call in both branches (implemented by deterministic
    replay). *)
