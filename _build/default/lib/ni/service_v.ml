open Atmo_util
module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Message = Atmo_pm.Message
module Thread = Atmo_pm.Thread
module Perm_map = Atmo_pm.Perm_map
module Proc_mgr = Atmo_pm.Proc_mgr
module Process = Atmo_pm.Process
module Page_table = Atmo_pt.Page_table

type side = A_side | B_side

type event =
  | Served of side * int list
  | Reply_delivered of side
  | Rejected of side
  | Idle

type t = {
  scenario : Scenario.t;
  baseline_space : Page_table.entry Imap.t;
  mutable served : int;
  mutable last_error : string option;
  mutable pending_a : Message.t list;  (* replies awaiting a blocked client *)
  mutable pending_b : Message.t list;
}

let v_space t =
  let k = t.scenario.Scenario.kernel in
  let th =
    Perm_map.borrow k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:t.scenario.Scenario.v_thread
  in
  let p = Perm_map.borrow k.Kernel.pm.Proc_mgr.proc_perms ~ptr:th.Thread.owner_proc in
  Page_table.address_space p.Process.pt

let create scenario =
  let t =
    {
      scenario;
      baseline_space = Imap.empty;
      served = 0;
      last_error = None;
      pending_a = [];
      pending_b = [];
    }
  in
  { t with baseline_space = v_space t }

let reply_for scalars = List.map succ scalars

let slot_of = function A_side -> 0 | B_side -> 1

(* Handle one request received on [side]: release any granted page
   immediately after "using" it, then answer with a non-blocking send so
   a crashed or absent client can never block V. *)
let handle t side (msg : Message.t) =
  let k = t.scenario.Scenario.kernel in
  let v = t.scenario.Scenario.v_thread in
  (* release any endpoint descriptor the client pushed on us: V retains
     only its two service endpoints *)
  (match msg.Message.endpoint with
   | Some g when g.Message.dst_slot > 1 ->
     (match Kernel.step k ~thread:v (Syscall.Close_endpoint { slot = g.Message.dst_slot }) with
      | Syscall.Runit -> ()
      | r ->
        t.last_error <-
          Some (Format.asprintf "V failed to release granted endpoint: %a" Syscall.pp_ret r))
   | Some _ | None -> ());
  (match msg.Message.page with
   | Some g ->
     (* the shared buffer: V reads it (simulated) and must release it *)
     (match
        Kernel.step k ~thread:v
          (Syscall.Munmap { va = g.Message.dst_vaddr; count = 1; size = Atmo_pmem.Page_state.S4k })
      with
      | Syscall.Runit -> ()
      | r ->
        t.last_error <-
          Some (Format.asprintf "V failed to release granted page: %a" Syscall.pp_ret r))
   | None -> ());
  let reply = Message.scalars_only (reply_for msg.Message.scalars) in
  t.served <- t.served + 1;
  (match Kernel.step k ~thread:v (Syscall.Send_nb { slot = slot_of side; msg = reply }) with
   | Syscall.Runit -> ()
   | Syscall.Rerr Errno.Ewouldblock ->
     (* the client is not blocked in recv yet: stash for redelivery (a
        non-blocking send on an unchanged state has no side effects, so
        retrying later is always safe) *)
     (match side with
      | A_side -> t.pending_a <- t.pending_a @ [ reply ]
      | B_side -> t.pending_b <- t.pending_b @ [ reply ])
   | r -> t.last_error <- Some (Format.asprintf "V reply failed: %a" Syscall.pp_ret r));
  Served (side, msg.Message.scalars)

(* try to deliver the oldest stashed reply for [side] *)
let try_flush t side =
  let k = t.scenario.Scenario.kernel in
  let v = t.scenario.Scenario.v_thread in
  let queue = match side with A_side -> t.pending_a | B_side -> t.pending_b in
  match queue with
  | [] -> false
  | reply :: rest ->
    (match Kernel.step k ~thread:v (Syscall.Send_nb { slot = slot_of side; msg = reply }) with
     | Syscall.Runit ->
       (match side with A_side -> t.pending_a <- rest | B_side -> t.pending_b <- rest);
       true
     | Syscall.Rerr Errno.Ewouldblock -> false
     | r ->
       t.last_error <- Some (Format.asprintf "V redeliver failed: %a" Syscall.pp_ret r);
       false)

(* Poll one side.  A request whose grants cannot be applied (occupied
   destination slot, exhausted quota, bogus arguments) is drained with
   recv_reject: an arbitrary client must not be able to wedge V. *)
type poll_result = Got of Message.t | Dropped | Nothing

let poll t side =
  let k = t.scenario.Scenario.kernel in
  let v = t.scenario.Scenario.v_thread in
  match Kernel.step k ~thread:v (Syscall.Recv_nb { slot = slot_of side }) with
  | Syscall.Rmsg msg -> Got msg
  | Syscall.Rerr Errno.Ewouldblock -> Nothing
  | Syscall.Rerr (Errno.Einval | Errno.Eexist | Errno.Equota | Errno.Enomem | Errno.Efull) ->
    (match Kernel.step k ~thread:v (Syscall.Recv_reject { slot = slot_of side }) with
     | Syscall.Runit -> Dropped
     | r ->
       t.last_error <- Some (Format.asprintf "V reject failed: %a" Syscall.pp_ret r);
       Nothing)
  | r ->
    t.last_error <- Some (Format.asprintf "V poll failed: %a" Syscall.pp_ret r);
    Nothing

(* One turn, one action: redeliver a stashed reply if a client is now
   waiting, otherwise serve one new request. *)
let step t =
  if try_flush t A_side then Reply_delivered A_side
  else if try_flush t B_side then Reply_delivered B_side
  else
    match poll t A_side with
    | Got msg -> handle t A_side msg
    | Dropped -> Rejected A_side
    | Nothing ->
      (match poll t B_side with
       | Got msg -> handle t B_side msg
       | Dropped -> Rejected B_side
       | Nothing -> Idle)

let served_total t = t.served

let wf t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  match t.last_error with
  | Some msg -> err "V hit an internal error: %s" msg
  | None ->
    let k = t.scenario.Scenario.kernel in
    let v = t.scenario.Scenario.v_thread in
    let th = Perm_map.borrow k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:v in
    (* 1. no retained client memory *)
    let space = v_space t in
    if not (Imap.equal Page_table.equal_entry space t.baseline_space) then
      err "V retains client memory (space differs from baseline)"
    else if
      (* 2. descriptor table holds exactly the two service endpoints *)
      not
        (Thread.slots th
         = [ (0, t.scenario.Scenario.ep_av); (1, t.scenario.Scenario.ep_bv) ])
    then err "V descriptor table changed"
    else if
      (* 3. V never blocks *)
      match th.Thread.state with
      | Thread.Blocked_send _ | Thread.Blocked_recv _ -> true
      | Thread.Runnable | Thread.Running -> false
    then err "V is blocked"
    else Ok ()
