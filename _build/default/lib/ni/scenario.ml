open Atmo_util
module Kernel = Atmo_core.Kernel
module Abstraction = Atmo_core.Abstraction
module Syscall = Atmo_spec.Syscall
module Proc_mgr = Atmo_pm.Proc_mgr
module Perm_map = Atmo_pm.Perm_map
module Thread = Atmo_pm.Thread
module Endpoint = Atmo_pm.Endpoint

type t = {
  kernel : Kernel.t;
  init_thread : int;
  a_cntr : int;
  b_cntr : int;
  v_cntr : int;
  a_thread : int;
  b_thread : int;
  v_thread : int;
  ep_av : int;
  ep_bv : int;
}

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e
let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let of_errno what = function
  | Ok v -> Ok v
  | Error e -> errf "%s: %a" what Errno.pp e

let ptr_of what = function
  | Syscall.Rptr p -> Ok p
  | r -> errf "%s: %a" what Syscall.pp_ret r

(* Trusted boot wiring: copy an endpoint descriptor into a thread's
   slot, bumping the reference count — the initial capability
   configuration that exists before the measured trace. *)
let install_descriptor k ~thread ~slot ~endpoint =
  Perm_map.update k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:thread (fun th ->
      Thread.set_slot th slot (Some endpoint));
  Perm_map.update k.Kernel.pm.Proc_mgr.edpt_perms ~ptr:endpoint (fun e ->
      { e with Endpoint.refcount = e.Endpoint.refcount + 1 })

let build ?(boot = Kernel.default_boot) ?(quota_a = 256) ?(quota_b = 256) ?(quota_v = 128)
    () =
  let* k, init = of_errno "boot" (Kernel.boot boot) in
  let new_cntr quota cpus =
    ptr_of "new_container" (Kernel.step k ~thread:init (Syscall.New_container { quota; cpus }))
  in
  let* a_cntr = new_cntr quota_a (Iset.singleton 0) in
  let* b_cntr = new_cntr quota_b (Iset.singleton 1) in
  let* v_cntr = new_cntr quota_v (Iset.singleton 2) in
  let populate cntr =
    let* p = of_errno "new_process" (Proc_mgr.new_process k.Kernel.pm ~container:cntr ~parent:None) in
    let* th = of_errno "new_thread" (Proc_mgr.new_thread k.Kernel.pm ~proc:p) in
    Ok th
  in
  let* a_thread = populate a_cntr in
  let* b_thread = populate b_cntr in
  let* v_thread = populate v_cntr in
  (* V creates its two service endpoints through ordinary syscalls *)
  let* ep_av =
    ptr_of "ep_av" (Kernel.step k ~thread:v_thread (Syscall.New_endpoint { slot = 0 }))
  in
  let* ep_bv =
    ptr_of "ep_bv" (Kernel.step k ~thread:v_thread (Syscall.New_endpoint { slot = 1 }))
  in
  install_descriptor k ~thread:a_thread ~slot:0 ~endpoint:ep_av;
  install_descriptor k ~thread:b_thread ~slot:0 ~endpoint:ep_bv;
  let t =
    {
      kernel = k;
      init_thread = init;
      a_cntr;
      b_cntr;
      v_cntr;
      a_thread;
      b_thread;
      v_thread;
      ep_av;
      ep_bv;
    }
  in
  (match Atmo_core.Invariants.total_wf k with
   | Ok () -> Ok t
   | Error msg -> errf "scenario not wf: %s" msg)

let abstract t = Abstraction.abstract t.kernel

let check_isolation t =
  Isolation.iso (abstract t) ~a:t.a_cntr ~b:t.b_cntr
