lib/ni/scenario.ml: Atmo_core Atmo_pm Atmo_spec Atmo_util Errno Format Iset Isolation
