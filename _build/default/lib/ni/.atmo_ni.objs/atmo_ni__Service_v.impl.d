lib/ni/service_v.ml: Atmo_core Atmo_pm Atmo_pmem Atmo_pt Atmo_spec Atmo_util Errno Format Imap List Scenario
