lib/ni/isolation.mli: Atmo_spec Atmo_util
