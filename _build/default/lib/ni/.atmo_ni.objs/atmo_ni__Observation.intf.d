lib/ni/observation.mli: Atmo_spec Format
