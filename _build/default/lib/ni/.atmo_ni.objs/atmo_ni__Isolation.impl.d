lib/ni/isolation.ml: Atmo_pmem Atmo_pt Atmo_spec Atmo_util Format Imap Iset List
