lib/ni/scenario.mli: Atmo_core Atmo_spec
