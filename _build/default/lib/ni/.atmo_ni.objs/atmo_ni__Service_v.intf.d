lib/ni/service_v.mli: Scenario
