lib/ni/harness.ml: Atmo_core Atmo_pmem Atmo_spec Atmo_util Atmo_verif Format Iset Isolation List Observation Random Scenario Service_v
