lib/ni/harness.mli:
