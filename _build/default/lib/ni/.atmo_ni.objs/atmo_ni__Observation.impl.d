lib/ni/observation.ml: Atmo_hw Atmo_pm Atmo_pmem Atmo_pt Atmo_spec Atmo_util Buffer Errno Format Hashtbl Imap Iset List Printf String
