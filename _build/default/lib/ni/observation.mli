(** Observable state of a container subtree.

    The step-consistency unwinding condition compares what one container
    can observe before and after another container's system call.  A
    container observes: its subtree's containers (quotas, accounting,
    tree shape), processes (address spaces), threads (blocking state,
    descriptor tables, delivered messages) and the endpoints its subtree
    owns (queues restricted to the subtree's own threads — a foreign
    thread waiting on a shared endpoint belongs to the *allowed*
    communication path through the verified service and is not part of
    the isolation boundary).

    Two deliberate abstractions, both documented in DESIGN.md:

    - Kernel pointers and physical frame numbers are opaque handles to
      user code, so observations are compared {e up to an injective
      renaming}: the observation is canonicalized by a deterministic
      traversal that assigns small ids in first-encounter order.
    - Running vs runnable is not distinguished: with the paper's
      per-container CPU reservations a container cannot observe another
      container's CPU occupancy; this model's single global run queue
      would otherwise leak exactly that artifact (CPU-level timing
      channels are out of scope in the paper, §4.3). *)

type t

val observe : Atmo_spec.Abstract_state.t -> container:int -> t
(** Canonical observation of the subtree rooted at [container]. *)

val observe_with_ret :
  Atmo_spec.Abstract_state.t ->
  container:int ->
  ret:Atmo_spec.Syscall.ret ->
  t
(** Observation extended with a system-call return value the subtree
    just received; pointers and frames inside the return are renamed
    with the same table, so returns are compared consistently. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
