open Atmo_util
module Kernel = Atmo_core.Kernel
module Invariants = Atmo_core.Invariants
module Abstraction = Atmo_core.Abstraction
module A = Atmo_spec.Abstract_state
module Syscall = Atmo_spec.Syscall
module RH = Atmo_verif.Refine_harness
module Page_state = Atmo_pmem.Page_state

type failure = {
  at_step : int;
  what : string;
}

let fail at_step fmt = Format.kasprintf (fun what -> Error { at_step; what }) fmt

(* ------------------------------------------------------------------ *)
(* NI-specific call generation                                         *)

(* Two deliberate restrictions against channels the paper also rules
   out-of-scope or prevents by construction:
   - superpage requests are downgraded to 4 KiB: with per-frame quotas a
     4 KiB allocation never fails for quota-respecting containers, while
     2 MiB contiguity depends on global fragmentation (the paper gives
     containers physically guaranteed reservations);
   - device ids are partitioned per container (device namespaces are a
     boot-time resource assignment, like the initial endpoints). *)
let ni_random_call rng k ~thread ~device_base =
  match RH.random_call rng k ~thread with
  | Syscall.Mmap m -> Syscall.Mmap { m with size = Page_state.S4k }
  | Syscall.Munmap m -> Syscall.Munmap { m with size = Page_state.S4k }
  | Syscall.Assign_device { device } ->
    Syscall.Assign_device { device = device_base + (device mod 4) }
  | Syscall.Io_map m -> Syscall.Io_map { m with device = device_base + (m.device mod 4) }
  | Syscall.Io_unmap m ->
    Syscall.Io_unmap { m with device = device_base + (m.device mod 4) }
  | Syscall.Register_irq m ->
    Syscall.Register_irq { m with device = device_base + (m.device mod 4) }
  | Syscall.Irq_fire { device } ->
    Syscall.Irq_fire { device = device_base + (device mod 4) }
  | call -> call

let pick_thread rng (ab : A.t) ~container =
  let threads = Isolation.threads_of_subtree ab ~container in
  match Iset.elements threads with
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rng (List.length l)))

(* ------------------------------------------------------------------ *)
(* Output consistency                                                  *)

let output_consistency ~seed ~steps =
  let boot () =
    match Scenario.build () with
    | Ok s -> Ok s
    | Error msg -> Error { at_step = 0; what = "scenario: " ^ msg }
  in
  match (boot (), boot ()) with
  | Error e, _ | _, Error e -> Error e
  | Ok w1, Ok w2 ->
    let rng = Random.State.make [| seed |] in
    let rec go i =
      if i >= steps then Ok ()
      else
        let ab1 = Scenario.abstract w1 in
        let container = if Random.State.bool rng then w1.Scenario.a_cntr else w1.Scenario.b_cntr in
        match pick_thread rng ab1 ~container with
        | None -> Ok ()
        | Some thread ->
          let device_base = if container = w1.Scenario.a_cntr then 0 else 4 in
          let call = ni_random_call rng w1.Scenario.kernel ~thread ~device_base in
          let r1 = Kernel.step w1.Scenario.kernel ~thread call in
          let r2 = Kernel.step w2.Scenario.kernel ~thread call in
          if not (Syscall.equal_ret r1 r2) then
            fail i "OC: same call %a returned %a vs %a" Syscall.pp call Syscall.pp_ret r1
              Syscall.pp_ret r2
          else if not (A.equal (Scenario.abstract w1) (Scenario.abstract w2)) then
            fail i "OC: post-states diverged after %a" Syscall.pp call
          else go (i + 1)
    in
    go 0

(* ------------------------------------------------------------------ *)
(* Step consistency                                                    *)

let step_consistency ?(with_service = true) ~seed ~steps () =
  match Scenario.build () with
  | Error msg -> Error { at_step = 0; what = "scenario: " ^ msg }
  | Ok w ->
    let v = if with_service then Some (Service_v.create w) else None in
    let rng = Random.State.make [| seed |] in
    let k = w.Scenario.kernel in
    let check_invariants i =
      match Invariants.total_wf k with
      | Error msg -> fail i "total_wf: %s" msg
      | Ok () ->
        (match Scenario.check_isolation w with
         | Error msg -> fail i "isolation: %s" msg
         | Ok () ->
           (match v with
            | Some sv ->
              (match Service_v.wf sv with
               | Error msg -> fail i "V correctness: %s" msg
               | Ok () -> Ok ())
            | None -> Ok ()))
    in
    let rec go i =
      if i >= steps then Ok i
      else
        let ab = Scenario.abstract w in
        let choice = Random.State.int rng (if with_service then 5 else 4) in
        let result =
          if choice = 4 then begin
            (* one turn of the verified service *)
            match v with
            | Some sv ->
              let obs_a = Observation.observe ab ~container:w.Scenario.a_cntr in
              let obs_b = Observation.observe ab ~container:w.Scenario.b_cntr in
              let event = Service_v.step sv in
              let ab' = Scenario.abstract w in
              let check_a () =
                if
                  Observation.equal obs_a
                    (Observation.observe ab' ~container:w.Scenario.a_cntr)
                then Ok ()
                else fail i "SC: V turn changed A's observation unexpectedly"
              and check_b () =
                if
                  Observation.equal obs_b
                    (Observation.observe ab' ~container:w.Scenario.b_cntr)
                then Ok ()
                else fail i "SC: V turn changed B's observation unexpectedly"
              in
              (* serving one side may legitimately change that side *)
              (match event with
               | Service_v.Served (Service_v.A_side, _)
               | Service_v.Rejected Service_v.A_side
               | Service_v.Reply_delivered Service_v.A_side ->
                 check_b ()
               | Service_v.Served (Service_v.B_side, _)
               | Service_v.Rejected Service_v.B_side
               | Service_v.Reply_delivered Service_v.B_side ->
                 check_a ()
               | Service_v.Idle ->
                 (match check_a () with Ok () -> check_b () | e -> e))
            | None -> Ok ()
          end
          else begin
            let from_a = choice mod 2 = 0 in
            let actor, observer =
              if from_a then (w.Scenario.a_cntr, w.Scenario.b_cntr)
              else (w.Scenario.b_cntr, w.Scenario.a_cntr)
            in
            match pick_thread rng ab ~container:actor with
            | None -> Ok ()
            | Some thread ->
              let device_base = if from_a then 0 else 4 in
              let call = ni_random_call rng k ~thread ~device_base in
              let obs_before = Observation.observe ab ~container:observer in
              let _ret = Kernel.step k ~thread call in
              let obs_after =
                Observation.observe (Scenario.abstract w) ~container:observer
              in
              if Observation.equal obs_before obs_after then Ok ()
              else
                fail i "SC: %a from %s changed the other side's observation" Syscall.pp
                  call
                  (if from_a then "A" else "B")
          end
        in
        (match result with
         | Error _ as e -> e
         | Ok () ->
           (match check_invariants i with
            | Error _ as e -> e
            | Ok () -> go (i + 1)))
    in
    go 0

(* ------------------------------------------------------------------ *)
(* Probe consistency (return-value half of SC) via replay              *)

type trace_step = Astep of int * Syscall.t | Bstep of int * Syscall.t

let replay trace =
  match Scenario.build () with
  | Error msg -> Error msg
  | Ok w ->
    List.iter
      (fun step ->
        let thread, call =
          match step with Astep (t, c) -> (t, c) | Bstep (t, c) -> (t, c)
        in
        ignore (Kernel.step w.Scenario.kernel ~thread call))
      trace;
    Ok w

let probe_consistency ~seed ~steps ~probes =
  let rng = Random.State.make [| seed |] in
  (* Build the driving world used to generate calls deterministically. *)
  match Scenario.build () with
  | Error msg -> Error { at_step = 0; what = "scenario: " ^ msg }
  | Ok w ->
    let trace = ref [] in
    let probe_at =
      (* probe after evenly spread prefixes *)
      List.init probes (fun i -> (i + 1) * steps / (probes + 1))
    in
    let rec go i =
      if i >= steps then Ok ()
      else
        let ab = Scenario.abstract w in
        let from_a = Random.State.bool rng in
        let actor = if from_a then w.Scenario.a_cntr else w.Scenario.b_cntr in
        match pick_thread rng ab ~container:actor with
        | None -> Ok ()
        | Some thread ->
          let device_base = if from_a then 0 else 4 in
          let call = ni_random_call rng w.Scenario.kernel ~thread ~device_base in
          (* the probe: before committing an A step, fork and compare
             what B would get for its own next call *)
          let probe_result =
            if from_a && List.mem i probe_at then begin
              match pick_thread rng ab ~container:w.Scenario.b_cntr with
              | None -> Ok ()
              | Some b_thread ->
                let b_call =
                  ni_random_call rng w.Scenario.kernel ~thread:b_thread ~device_base:4
                in
                (match (replay (List.rev !trace), replay (List.rev !trace)) with
                 | Ok w1, Ok w2 ->
                   (* w2 additionally takes A's step *)
                   ignore (Kernel.step w2.Scenario.kernel ~thread call);
                   let r1 = Kernel.step w1.Scenario.kernel ~thread:b_thread b_call in
                   let r2 = Kernel.step w2.Scenario.kernel ~thread:b_thread b_call in
                   let o1 =
                     Observation.observe_with_ret (Scenario.abstract w1)
                       ~container:w1.Scenario.b_cntr ~ret:r1
                   in
                   let o2 =
                     Observation.observe_with_ret (Scenario.abstract w2)
                       ~container:w2.Scenario.b_cntr ~ret:r2
                   in
                   if Observation.equal o1 o2 then Ok ()
                   else
                     fail i "probe: A's %a changed B's view of its own %a" Syscall.pp
                       call Syscall.pp b_call
                 | Error msg, _ | _, Error msg -> fail i "replay: %s" msg)
            end
            else Ok ()
          in
          (match probe_result with
           | Error _ as e -> e
           | Ok () ->
             ignore (Kernel.step w.Scenario.kernel ~thread call);
             trace :=
               (if from_a then Astep (thread, call) else Bstep (thread, call)) :: !trace;
             go (i + 1))
    in
    go 0
