(** Virtual cycle clock.

    All performance experiments in this reproduction run on a
    cycle-accounting model rather than silicon (see DESIGN.md §1).  A
    clock accumulates cycles charged by the simulation; the nominal
    frequency matches the paper's c220g5 testbed (2.20 GHz Xeon). *)

type t

val frequency_hz : float
(** Nominal core frequency used to convert cycles to seconds: 2.2e9. *)

val create : unit -> t
val now : t -> int
(** Cycles elapsed since creation. *)

val advance : t -> int -> unit
(** Charge a number of cycles; raises [Invalid_argument] on a negative
    charge. *)

val seconds : t -> float
(** Elapsed virtual time in seconds. *)

val reset : t -> unit
