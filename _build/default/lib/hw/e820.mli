(** Firmware memory map (e820-style).

    The paper's trusted boot loader "enumerates available physical
    memory" before handing control to the verified kernel.  This module
    is that enumeration: a list of typed physical regions as firmware
    would report them, with the validation and the usable-frame
    arithmetic the boot stage needs. *)

type kind =
  | Usable
  | Reserved  (** firmware / SMM / ME regions *)
  | Acpi
  | Mmio  (** device apertures *)

type region = {
  base : int;  (** byte address *)
  len : int;  (** bytes *)
  kind : kind;
}

type map = region list

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> map -> unit

val validate : map -> (unit, string) result
(** Regions non-empty, non-negative, sorted by base, pairwise
    non-overlapping. *)

val usable_bytes : map -> int

val largest_usable : map -> region option
(** The region the boot stage will manage (whole 4 KiB frames only). *)

val frames_of : region -> int
(** Complete 4 KiB frames fully inside the region. *)

val first_frame_of : region -> int
(** Frame number of the first complete frame. *)

val typical_pc : total_mib:int -> map
(** A realistic small-PC layout: low 640 KiB usable, VGA/MMIO hole,
    1 MiB.. main memory, ACPI tables and a firmware reservation at the
    top. *)
