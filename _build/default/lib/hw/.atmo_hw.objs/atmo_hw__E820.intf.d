lib/hw/e820.mli: Format
