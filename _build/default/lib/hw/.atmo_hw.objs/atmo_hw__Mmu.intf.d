lib/hw/mmu.mli: Phys_mem Pte_bits
