lib/hw/pte_bits.mli: Format
