lib/hw/pte_bits.ml: Format Int64
