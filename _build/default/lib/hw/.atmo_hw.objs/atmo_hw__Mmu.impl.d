lib/hw/mmu.ml: Phys_mem Pte_bits
