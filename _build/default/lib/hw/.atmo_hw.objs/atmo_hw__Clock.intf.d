lib/hw/clock.mli:
