lib/hw/e820.ml: Format List Phys_mem
