lib/hw/clock.ml:
