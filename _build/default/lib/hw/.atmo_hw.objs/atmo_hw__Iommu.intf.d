lib/hw/iommu.mli: Mmu Phys_mem
