lib/hw/iommu.ml: Bytes Hashtbl Mmu Phys_mem Pte_bits
