type kind =
  | Usable
  | Reserved
  | Acpi
  | Mmio

type region = {
  base : int;
  len : int;
  kind : kind;
}

type map = region list

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
     | Usable -> "usable"
     | Reserved -> "reserved"
     | Acpi -> "ACPI"
     | Mmio -> "MMIO")

let pp ppf m =
  List.iter
    (fun r ->
      Format.fprintf ppf "[0x%09x - 0x%09x] %a@." r.base (r.base + r.len - 1) pp_kind
        r.kind)
    m

let validate m =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec go = function
    | [] -> Ok ()
    | r :: rest ->
      if r.len <= 0 then err "region at 0x%x has non-positive length" r.base
      else if r.base < 0 then err "region with negative base"
      else
        (match rest with
         | next :: _ when next.base < r.base + r.len ->
           err "regions at 0x%x and 0x%x overlap or are unsorted" r.base next.base
         | _ -> go rest)
  in
  go m

let usable_bytes m =
  List.fold_left (fun acc r -> if r.kind = Usable then acc + r.len else acc) 0 m

let largest_usable m =
  List.fold_left
    (fun best r ->
      if r.kind <> Usable then best
      else
        match best with
        | Some b when b.len >= r.len -> best
        | _ -> Some r)
    None m

let frames_of r =
  let first = (r.base + Phys_mem.page_size - 1) / Phys_mem.page_size in
  let last = (r.base + r.len) / Phys_mem.page_size in
  max 0 (last - first)

let first_frame_of r = (r.base + Phys_mem.page_size - 1) / Phys_mem.page_size

let mib = 1024 * 1024

let typical_pc ~total_mib =
  if total_mib < 16 then invalid_arg "E820.typical_pc: too small";
  let top = total_mib * mib in
  [
    { base = 0; len = 640 * 1024; kind = Usable };
    { base = 640 * 1024; len = 384 * 1024; kind = Mmio };
    { base = mib; len = top - mib - (2 * mib); kind = Usable };
    { base = top - (2 * mib); len = mib; kind = Acpi };
    { base = top - mib; len = mib; kind = Reserved };
  ]
