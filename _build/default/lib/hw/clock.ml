type t = { mutable cycles : int }

let frequency_hz = 2.2e9

let create () = { cycles = 0 }
let now t = t.cycles

let advance t n =
  if n < 0 then invalid_arg "Clock.advance: negative charge";
  t.cycles <- t.cycles + n

let seconds t = float_of_int t.cycles /. frequency_hz
let reset t = t.cycles <- 0
