(** Simulated IOMMU.

    Atmosphere programs an IOMMU so that untrusted devices can only DMA
    into frames their owning process mapped for them.  We model the
    context-table indirection: each device (bus/dev/fn collapsed to one
    id) is attached to a translation domain whose root is a 4-level page
    table walked exactly like the CPU MMU. *)

type t

val create : Phys_mem.t -> t

val attach : t -> device:int -> root:int -> unit
(** Attach [device] to the translation domain rooted at [root] (the
    physical address of an L4 table page). *)

val detach : t -> device:int -> unit

val domain_of : t -> device:int -> int option
(** Translation root currently attached to [device], if any. *)

val devices : t -> int list
(** Attached device ids, unordered. *)

val translate : t -> device:int -> iova:int -> Mmu.translation option
(** Resolve an I/O virtual address for [device]; [None] models a DMA
    fault (unattached device or unmapped iova). *)

val dma_write : t -> device:int -> iova:int -> bytes -> bool
(** Device-initiated write through the IOMMU; fails (returning [false])
    on fault or read-only mapping, without partial writes across
    unmapped boundaries within one 4 KiB frame. *)

val dma_read : t -> device:int -> iova:int -> len:int -> bytes option

val faults : t -> int
(** Count of rejected DMA operations since creation. *)
