(** x86-64 page-table entry bit layout.

    Entries are stored in simulated physical memory as little-endian u64
    values with the standard long-mode layout: P (bit 0), R/W (bit 1), U/S
    (bit 2), PS (bit 7, valid at PDPT/PD levels), NX (bit 63), and the
    frame address in bits 12..51. *)

type perm = {
  write : bool;
  user : bool;
  execute : bool;  (** true iff the NX bit is clear *)
}

val perm_rw : perm
(** write, user, no-execute: the common data mapping. *)

val perm_ro : perm
val perm_rx : perm
val perm_rwx : perm

val pp_perm : Format.formatter -> perm -> unit
val equal_perm : perm -> perm -> bool

val addr_mask : int64

val make : addr:int -> perm:perm -> huge:bool -> int64
(** Encode a present entry.  [addr] must be 4 KiB aligned (2 MiB/1 GiB
    alignment for huge entries is the caller's obligation, checked by the
    page-table invariants). *)

val make_table : addr:int -> int64
(** Encode a present non-leaf entry pointing at the next-level table.
    Table entries are maximally permissive; restriction happens at the
    leaf, matching how Atmosphere programs intermediate levels. *)

val not_present : int64

val is_present : int64 -> bool
val is_huge : int64 -> bool
val addr_of : int64 -> int
val perm_of : int64 -> perm
