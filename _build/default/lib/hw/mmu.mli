(** Simulated x86-64 MMU: a 4-level page-table walk interpreter.

    The refinement theorem of the paper's page-table subsystem states that
    the abstract virtual-to-physical map equals "what the MMU sees".  This
    module is the "MMU sees" side: it walks real page tables stored in
    {!Phys_mem} frames, independently of the kernel code that built them,
    so comparing it against the abstract map is a genuine end-to-end
    check. *)

type translation = {
  paddr : int;  (** resolved physical byte address *)
  frame : int;  (** base address of the backing frame *)
  size : int;  (** mapping granularity in bytes: 4 KiB, 2 MiB or 1 GiB *)
  perm : Pte_bits.perm;
}

val canonical : int -> bool
(** True iff the address is canonical for 48-bit virtual addressing. *)

val l4_index : int -> int
val l3_index : int -> int
val l2_index : int -> int
val l1_index : int -> int
(** Index of a virtual address at each paging level (0..511). *)

val va_of_indices : l4:int -> l3:int -> l2:int -> l1:int -> int
(** Reassemble a canonical virtual address from its four indices; inverse
    of the four index functions for 4 KiB-aligned addresses. *)

val entry_addr : table:int -> index:int -> int
(** Physical address of entry [index] in the table page at [table]. *)

val resolve : Phys_mem.t -> cr3:int -> vaddr:int -> translation option
(** Walk the page table rooted at [cr3] for [vaddr].  [None] models a page
    fault (non-present entry at any level or non-canonical address). *)

val read_u64 : Phys_mem.t -> cr3:int -> vaddr:int -> int64 option
(** Virtual load through the walk; [None] on fault. *)

val write_u64 : Phys_mem.t -> cr3:int -> vaddr:int -> int64 -> bool
(** Virtual store through the walk; [false] on fault or read-only
    mapping. *)

val walk_steps : unit -> int
(** Total page-table-walk memory references performed since start; used by
    the cycle model and tests. *)
