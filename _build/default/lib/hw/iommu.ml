type t = {
  mem : Phys_mem.t;
  contexts : (int, int) Hashtbl.t;  (* device id -> translation root *)
  mutable faults : int;
}

let create mem = { mem; contexts = Hashtbl.create 16; faults = 0 }

let attach t ~device ~root =
  if not (Phys_mem.is_page_aligned root) then
    invalid_arg "Iommu.attach: root not page-aligned";
  Hashtbl.replace t.contexts device root

let detach t ~device = Hashtbl.remove t.contexts device
let domain_of t ~device = Hashtbl.find_opt t.contexts device
let devices t = Hashtbl.fold (fun d _ acc -> d :: acc) t.contexts []
let faults t = t.faults

let translate t ~device ~iova =
  match Hashtbl.find_opt t.contexts device with
  | None ->
    t.faults <- t.faults + 1;
    None
  | Some root ->
    (match Mmu.resolve t.mem ~cr3:root ~vaddr:iova with
     | None ->
       t.faults <- t.faults + 1;
       None
     | Some tr -> Some tr)

(* DMA bursts may cross frame boundaries; every touched frame must be
   mapped with suitable permissions or the whole burst is rejected. *)
let span_ok t ~device ~iova ~len ~need_write =
  let rec go off =
    if off >= len then true
    else
      match translate t ~device ~iova:(iova + off) with
      | None -> false
      | Some tr ->
        if need_write && not tr.Mmu.perm.Pte_bits.write then begin
          t.faults <- t.faults + 1;
          false
        end
        else
          let in_frame = (iova + off) land (Phys_mem.page_size - 1) in
          go (off + (Phys_mem.page_size - in_frame))
  in
  go 0

let dma_write t ~device ~iova data =
  let len = Bytes.length data in
  if not (span_ok t ~device ~iova ~len ~need_write:true) then false
  else begin
    let rec go off =
      if off < len then begin
        match translate t ~device ~iova:(iova + off) with
        | None -> assert false (* span_ok checked every frame *)
        | Some tr ->
          let in_frame = (iova + off) land (Phys_mem.page_size - 1) in
          let chunk = min (len - off) (Phys_mem.page_size - in_frame) in
          Phys_mem.blit_to t.mem ~addr:tr.Mmu.paddr (Bytes.sub data off chunk);
          go (off + chunk)
      end
    in
    go 0;
    true
  end

let dma_read t ~device ~iova ~len =
  if not (span_ok t ~device ~iova ~len ~need_write:false) then None
  else begin
    let dst = Bytes.make len '\000' in
    let rec go off =
      if off < len then begin
        match translate t ~device ~iova:(iova + off) with
        | None -> assert false
        | Some tr ->
          let in_frame = (iova + off) land (Phys_mem.page_size - 1) in
          let chunk = min (len - off) (Phys_mem.page_size - in_frame) in
          Bytes.blit (Phys_mem.blit_from t.mem ~addr:tr.Mmu.paddr ~len:chunk) 0 dst off chunk;
          go (off + chunk)
      end
    in
    go 0;
    Some dst
  end
