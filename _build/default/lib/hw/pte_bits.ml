type perm = {
  write : bool;
  user : bool;
  execute : bool;
}

let perm_rw = { write = true; user = true; execute = false }
let perm_ro = { write = false; user = true; execute = false }
let perm_rx = { write = false; user = true; execute = true }
let perm_rwx = { write = true; user = true; execute = true }

let pp_perm ppf p =
  Format.fprintf ppf "%c%c%c"
    (if p.write then 'w' else '-')
    (if p.user then 'u' else '-')
    (if p.execute then 'x' else '-')

let equal_perm a b =
  a.write = b.write && a.user = b.user && a.execute = b.execute

let bit_present = 0x1L
let bit_write = 0x2L
let bit_user = 0x4L
let bit_huge = 0x80L
let bit_nx = Int64.shift_left 1L 63
let addr_mask = 0x000f_ffff_ffff_f000L

let ( &: ) = Int64.logand
let ( |: ) = Int64.logor

let make ~addr ~perm ~huge =
  if addr land 0xfff <> 0 then invalid_arg "Pte_bits.make: unaligned address";
  let e = ref (Int64.of_int addr &: addr_mask |: bit_present) in
  if perm.write then e := !e |: bit_write;
  if perm.user then e := !e |: bit_user;
  if not perm.execute then e := !e |: bit_nx;
  if huge then e := !e |: bit_huge;
  !e

let make_table ~addr =
  if addr land 0xfff <> 0 then invalid_arg "Pte_bits.make_table: unaligned address";
  Int64.of_int addr &: addr_mask |: bit_present |: bit_write |: bit_user

let not_present = 0L

let is_present e = e &: bit_present <> 0L
let is_huge e = e &: bit_huge <> 0L
let addr_of e = Int64.to_int (e &: addr_mask)

let perm_of e =
  {
    write = e &: bit_write <> 0L;
    user = e &: bit_user <> 0L;
    execute = e &: bit_nx = 0L;
  }
