(** Transition-level refinement checking.

    Drives the concrete kernel through a trace of system calls and, for
    every transition, discharges the two theorems of §4: refinement
    (the abstracted pre/post states satisfy the call's specification in
    {!Atmo_spec.Syscall_spec}) and well-formedness
    ({!Atmo_core.Invariants.total_wf}).  Random traces use
    state-dependent argument generation mixed with adversarial garbage,
    matching the paper's "arbitrary system call with arbitrary
    arguments" quantification. *)

type step_outcome = {
  thread : int;
  call : Atmo_spec.Syscall.t;
  ret : Atmo_spec.Syscall.ret;
  spec : (unit, string) result;
  wf : (unit, string) result;
}

val step_checked :
  Atmo_core.Kernel.t -> thread:int -> Atmo_spec.Syscall.t -> step_outcome
(** Run one call, checking spec and well-formedness around it. *)

val run_trace :
  Atmo_core.Kernel.t ->
  (int * Atmo_spec.Syscall.t) list ->
  (step_outcome list, step_outcome) result
(** Execute a trace, stopping at the first failed check. *)

val random_call :
  Random.State.t -> Atmo_core.Kernel.t -> thread:int -> Atmo_spec.Syscall.t
(** A plausible-but-unchecked call: most arguments reference live
    objects, some are adversarial garbage. *)

val random_thread : Random.State.t -> Atmo_core.Kernel.t -> int option
(** A uniformly random live thread. *)

val random_ptr : Random.State.t -> Atmo_core.Kernel.t -> int
(** A pointer argument: usually some live object, sometimes garbage. *)

val random_trace_check :
  seed:int -> steps:int -> Atmo_core.Kernel.t -> (int, step_outcome) result
(** Fuzz the kernel for [steps] random calls from random threads,
    checking every transition; returns the number of executed steps or
    the first failure. *)
