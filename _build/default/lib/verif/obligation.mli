(** Proof obligations.

    One obligation corresponds to one verification condition of the
    paper's proof: an invariant that must hold of a state, or a spec
    relation that must hold of a transition.  Where Verus discharges
    these statically through Z3, this reproduction discharges them by
    executable checking over concrete and generated states; the
    obligation carries everything the runner needs to time and report
    the discharge. *)

type result = {
  name : string;
  ok : bool;
  detail : string option;  (** first violated clause, if any *)
  elapsed_s : float;
}

type t = {
  name : string;
  group : string;  (** subsystem, e.g. "pt", "pm", "kernel" *)
  run : unit -> (unit, string) Stdlib.result;
}

val make : name:string -> group:string -> (unit -> (unit, string) Stdlib.result) -> t

val discharge : t -> result
(** Run and time one obligation. *)

val pp_result : Format.formatter -> result -> unit
