(** Development-effort data: Table 1 and Figure 3.

    Table 1 compares proof effort across verification projects using the
    ratios the paper reports for each system.  This reproduction also
    measures its own analogue — the ratio of specification/checking code
    to executable code in this repository — by counting source lines
    live at bench time.

    Figure 3 (the commit history of the three development versions) is
    reconstructed from the paper's §6.3 narrative: v1 (2 months, one
    person), a clean-slate v2 (8 months, two people), and v3 (4 months,
    ~50% reuse), ending at 6 K executable + 20.1 K proof lines. *)

type row = {
  system : string;
  language : string;
  spec_language : string;
  ratio : float;  (** proof-to-code *)
}

val table1 : row list
(** The published comparators (seL4, CertiKOS, SeKVM, Ironclad, NrOS,
    VeriSMo, Atmosphere). *)

type repo_stats = {
  spec_lines : int;  (** specification / invariant / checking code *)
  exec_lines : int;  (** executable substrate, kernel and application code *)
  test_lines : int;
  ratio : float;
}

val measure_repo : root:string -> repo_stats option
(** Count this repository's own lines under [root]/lib and [root]/test;
    [None] when the sources are not reachable (e.g. installed binary). *)

type month_point = {
  month : int;  (** months since project start *)
  version : int;  (** 1, 2 or 3 *)
  exec_loc : int;
  proof_loc : int;
}

val fig3_series : month_point list
(** Monthly line counts reconstructing the shape of the paper's commit
    history: growth within versions, drops at the clean-slate rewrite
    boundaries, 50% reuse entering v3, converging to 6.0 K exec and
    20.1 K proof lines at month 14. *)
