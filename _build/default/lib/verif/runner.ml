type report = {
  results : Obligation.result list;
  wall_s : float;
  threads : int;
}

let run_sequential obls = List.map Obligation.discharge obls

(* Static round-robin partition over domains: obligations are
   independent, so any split is sound; round-robin balances the heavy
   kernel-wide checks across domains. *)
let run_parallel ~threads obls =
  let buckets = Array.make threads [] in
  List.iteri (fun i o -> buckets.(i mod threads) <- o :: buckets.(i mod threads)) obls;
  let domains =
    Array.map (fun bucket -> Domain.spawn (fun () -> run_sequential (List.rev bucket))) buckets
  in
  Array.to_list domains |> List.concat_map Domain.join

let run ?(threads = 1) obls =
  let t0 = Unix.gettimeofday () in
  let results = if threads <= 1 then run_sequential obls else run_parallel ~threads obls in
  { results; wall_s = Unix.gettimeofday () -. t0; threads }

let all_ok r = List.for_all (fun (x : Obligation.result) -> x.Obligation.ok) r.results
let failures r = List.filter (fun (x : Obligation.result) -> not x.Obligation.ok) r.results

let total_check_time r =
  List.fold_left (fun acc (x : Obligation.result) -> acc +. x.Obligation.elapsed_s) 0. r.results

let by_group obls =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (o : Obligation.t) ->
      if not (Hashtbl.mem tbl o.Obligation.group) then order := o.Obligation.group :: !order;
      Hashtbl.replace tbl o.Obligation.group
        (o :: Option.value ~default:[] (Hashtbl.find_opt tbl o.Obligation.group)))
    obls;
  List.rev_map (fun g -> (g, List.rev (Hashtbl.find tbl g))) !order

let pp ppf r =
  Format.fprintf ppf "@[<v>%d obligations on %d thread(s), wall %.3f s, check %.3f s@,"
    (List.length r.results) r.threads r.wall_s (total_check_time r);
  List.iter (fun x -> Format.fprintf ppf "%a@," Obligation.pp_result x) r.results;
  Format.fprintf ppf "@]"
