type row = {
  system : string;
  language : string;
  spec_language : string;
  ratio : float;
}

let table1 =
  [
    { system = "seL4"; language = "C+Asm"; spec_language = "Isabelle/HOL"; ratio = 20.0 };
    { system = "CertiKOS"; language = "C+Asm"; spec_language = "Coq"; ratio = 14.9 };
    { system = "SeKVM"; language = "C+Asm"; spec_language = "Coq"; ratio = 6.9 };
    { system = "Ironclad"; language = "Dafny"; spec_language = "Dafny"; ratio = 4.8 };
    { system = "NrOS"; language = "Rust"; spec_language = "Verus"; ratio = 10.0 };
    { system = "VeriSMo"; language = "Rust"; spec_language = "Verus"; ratio = 2.0 };
    { system = "Atmosphere"; language = "Rust"; spec_language = "Verus"; ratio = 3.32 };
  ]

type repo_stats = {
  spec_lines : int;
  exec_lines : int;
  test_lines : int;
  ratio : float;
}

(* Spec-side code: the abstract specification, the invariant/refinement
   checkers and the verification/noninterference harnesses.  Everything
   else under lib/ is executable substrate or application code. *)
let spec_side path =
  let has sub =
    let rec find i =
      i + String.length sub <= String.length path
      && (String.sub path i (String.length sub) = sub || find (i + 1))
    in
    String.length sub <= String.length path && find 0
  in
  has "/spec/" || has "/verif/" || has "/ni/"
  || has "invariants" || has "pt_refine" || has "nros_pt"

let count_lines file =
  try
    let ic = open_in file in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

let rec walk dir f =
  match Sys.readdir dir with
  | entries ->
    Array.iter
      (fun entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk path f
        else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
        then f path)
      entries
  | exception Sys_error _ -> ()

let measure_repo ~root =
  let lib = Filename.concat root "lib" in
  if not (Sys.file_exists lib) then None
  else begin
    let spec = ref 0 and exec = ref 0 and test = ref 0 in
    walk lib (fun path ->
        let n = count_lines path in
        if spec_side path then spec := !spec + n else exec := !exec + n);
    let tests = Filename.concat root "test" in
    if Sys.file_exists tests then walk tests (fun path -> test := !test + count_lines path);
    let ratio = if !exec = 0 then 0. else float_of_int !spec /. float_of_int !exec in
    Some { spec_lines = !spec; exec_lines = !exec; test_lines = !test; ratio }
  end

type month_point = {
  month : int;
  version : int;
  exec_loc : int;
  proof_loc : int;
}

(* Reconstruction of the §6.3 narrative (14 months of verified-kernel
   development): v1 months 0-1, clean-slate v2 months 2-9 (its first
   month starts near zero), v3 months 10-13 starting from ~50% of v2's
   code and converging to the published totals. *)
let fig3_series =
  let point month version exec_loc proof_loc = { month; version; exec_loc; proof_loc } in
  [
    point 0 1 400 900;
    point 1 1 900 2200;
    point 2 2 300 800;
    point 3 2 900 2600;
    point 4 2 1600 4700;
    point 5 2 2300 6900;
    point 6 2 3000 9200;
    point 7 2 3600 11400;
    point 8 2 4100 13200;
    point 9 2 4500 14800;
    point 10 3 2900 9600;
    point 11 3 4100 13500;
    point 12 3 5100 16900;
    point 13 3 6000 20100;
  ]
