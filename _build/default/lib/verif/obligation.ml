type result = {
  name : string;
  ok : bool;
  detail : string option;
  elapsed_s : float;
}

type t = {
  name : string;
  group : string;
  run : unit -> (unit, string) Stdlib.result;
}

let make ~name ~group run = { name; group; run }

let discharge t =
  let t0 = Unix.gettimeofday () in
  let outcome = try t.run () with exn -> Error (Printexc.to_string exn) in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  match outcome with
  | Ok () -> { name = t.name; ok = true; detail = None; elapsed_s }
  | Error d -> { name = t.name; ok = false; detail = Some d; elapsed_s }

let pp_result ppf (r : result) =
  Format.fprintf ppf "%-40s %s %8.3f ms%s" r.name
    (if r.ok then "ok  " else "FAIL")
    (r.elapsed_s *. 1000.)
    (match r.detail with None -> "" | Some d -> "  (" ^ d ^ ")")
