(** Obligation discharge runner — the reproduction's "verifier".

    Discharges a set of obligations sequentially or across several OCaml
    domains (Verus parallelises verification across threads; Table 2 and
    Figure 2 report 1-thread vs 8-thread times).  Results carry
    per-obligation timing so the harness can reproduce the paper's
    per-function verification-time distribution. *)

type report = {
  results : Obligation.result list;
  wall_s : float;
  threads : int;
}

val run : ?threads:int -> Obligation.t list -> report
(** [threads] defaults to 1.  With [threads > 1] obligations are
    distributed over that many domains. *)

val all_ok : report -> bool
val failures : report -> Obligation.result list
val total_check_time : report -> float
(** Sum of per-obligation times (CPU-style total, vs [wall_s]). *)

val by_group : Obligation.t list -> (string * Obligation.t list) list
(** Stable grouping by the obligation's [group] field. *)

val pp : Format.formatter -> report -> unit
