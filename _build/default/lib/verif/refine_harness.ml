open Atmo_util
module Kernel = Atmo_core.Kernel
module Invariants = Atmo_core.Invariants
module Abstraction = Atmo_core.Abstraction
module Syscall = Atmo_spec.Syscall
module Syscall_spec = Atmo_spec.Syscall_spec
module Page_state = Atmo_pmem.Page_state
module Pte = Atmo_hw.Pte_bits
module Message = Atmo_pm.Message
module Perm_map = Atmo_pm.Perm_map
module Proc_mgr = Atmo_pm.Proc_mgr
module Kconfig = Atmo_pm.Kconfig

type step_outcome = {
  thread : int;
  call : Syscall.t;
  ret : Syscall.ret;
  spec : (unit, string) result;
  wf : (unit, string) result;
}

let step_checked k ~thread call =
  let pre = Abstraction.abstract k in
  let ret = Kernel.step k ~thread call in
  let post = Abstraction.abstract k in
  {
    thread;
    call;
    ret;
    spec = Syscall_spec.check ~pre ~post ~thread call ret;
    wf = Invariants.total_wf k;
  }

let run_trace k trace =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (thread, call) :: rest ->
      let o = step_checked k ~thread call in
      if o.spec = Ok () && o.wf = Ok () then go (o :: acc) rest else Error o
  in
  go [] trace

(* ------------------------------------------------------------------ *)
(* Random generation                                                   *)

let pick rng = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rng (List.length l)))

let random_thread rng k =
  pick rng (Iset.elements (Perm_map.dom k.Kernel.pm.Proc_mgr.thrd_perms))

(* A virtual base address: usually well-formed within a small arena so
   calls collide interestingly, occasionally garbage. *)
let random_va rng =
  match Random.State.int rng 10 with
  | 0 -> Random.State.int rng 1_000_000_000 (* arbitrary, likely misaligned *)
  | 1 -> (1 lsl 49) + 4096 (* non-canonical *)
  | _ -> 0x4000_0000 + (Random.State.int rng 64 * 4096)

let random_size rng =
  match Random.State.int rng 8 with
  | 0 -> Page_state.S2m
  | _ -> Page_state.S4k

let random_perm rng =
  match Random.State.int rng 3 with
  | 0 -> Pte.perm_rw
  | 1 -> Pte.perm_ro
  | _ -> Pte.perm_rx

let random_slot rng =
  match Random.State.int rng 6 with
  | 0 -> Random.State.int rng 64 - 8 (* possibly out of range *)
  | _ -> Random.State.int rng Kconfig.max_endpoint_slots

let random_ptr rng k =
  (* usually a live object of some kind, sometimes garbage *)
  let pm = k.Kernel.pm in
  let pools =
    [
      Iset.elements (Perm_map.dom pm.Proc_mgr.cntr_perms);
      Iset.elements (Perm_map.dom pm.Proc_mgr.proc_perms);
      Iset.elements (Perm_map.dom pm.Proc_mgr.thrd_perms);
    ]
  in
  match Random.State.int rng 5 with
  | 0 -> Random.State.int rng 0xfff000
  | n ->
    (match pick rng (List.nth pools (n mod 3)) with
     | Some p -> p
     | None -> 0xdead000)

let random_msg rng k ~thread =
  let scalars = List.init (Random.State.int rng 4) (fun _ -> Random.State.int rng 1000) in
  let page =
    if Random.State.int rng 3 = 0 then
      let src_vaddr =
        (* prefer an actually-mapped page of the caller *)
        match Perm_map.borrow_opt k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:thread with
        | Some th ->
          let p =
            Perm_map.borrow k.Kernel.pm.Proc_mgr.proc_perms
              ~ptr:th.Atmo_pm.Thread.owner_proc
          in
          let space = Atmo_pt.Page_table.address_space p.Atmo_pm.Process.pt in
          (match pick rng (List.map fst (Imap.bindings space)) with
           | Some va -> va
           | None -> random_va rng)
        | None -> random_va rng
      in
      Some { Message.src_vaddr; dst_vaddr = 0x6000_0000 + (Random.State.int rng 32 * 4096) }
    else None
  in
  let endpoint =
    if Random.State.int rng 4 = 0 then
      Some { Message.src_slot = random_slot rng; dst_slot = random_slot rng }
    else None
  in
  { Message.scalars; page; endpoint }

let random_call rng k ~thread =
  match Random.State.int rng 16 with
  | 0 | 1 ->
    Syscall.Mmap
      {
        va = random_va rng;
        count = 1 + Random.State.int rng 4;
        size = random_size rng;
        perm = random_perm rng;
      }
  | 2 ->
    Syscall.Munmap
      { va = random_va rng; count = 1 + Random.State.int rng 4; size = random_size rng }
  | 3 -> Syscall.Mprotect { va = random_va rng; perm = random_perm rng }
  | 4 ->
    Syscall.New_container { quota = Random.State.int rng 30; cpus = Iset.empty }
  | 5 -> Syscall.New_process
  | 6 -> Syscall.New_thread
  | 7 -> Syscall.New_endpoint { slot = random_slot rng }
  | 8 -> Syscall.Close_endpoint { slot = random_slot rng }
  | 9 | 10 -> Syscall.Send { slot = random_slot rng; msg = random_msg rng k ~thread }
  | 11 | 12 -> Syscall.Recv { slot = random_slot rng }
  | 13 ->
    (match Random.State.int rng 4 with
     | 0 -> Syscall.Yield
     | 1 -> Syscall.Send_nb { slot = random_slot rng; msg = random_msg rng k ~thread }
     | 2 -> Syscall.Recv_reject { slot = random_slot rng }
     | _ -> Syscall.Recv_nb { slot = random_slot rng })
  | 14 ->
    if Random.State.int rng 2 = 0 then
      Syscall.Terminate_container { container = random_ptr rng k }
    else Syscall.Terminate_process { proc = random_ptr rng k }
  | _ ->
    (match Random.State.int rng 5 with
     | 0 -> Syscall.Assign_device { device = Random.State.int rng 8 }
     | 1 ->
       Syscall.Io_map
         {
           device = Random.State.int rng 8;
           iova = 0x9000_0000 + (Random.State.int rng 32 * 4096);
           va = random_va rng;
         }
     | 2 ->
       Syscall.Io_unmap
         {
           device = Random.State.int rng 8;
           iova = 0x9000_0000 + (Random.State.int rng 32 * 4096);
         }
     | 3 -> Syscall.Register_irq { device = Random.State.int rng 8; slot = random_slot rng }
     | _ -> Syscall.Irq_fire { device = Random.State.int rng 8 })

let random_trace_check ~seed ~steps k =
  let rng = Random.State.make [| seed |] in
  let rec go i =
    if i >= steps then Ok i
    else
      match random_thread rng k with
      | None -> Ok i (* everything died; nothing left to call *)
      | Some thread ->
        let call = random_call rng k ~thread in
        let o = step_checked k ~thread call in
        if o.spec = Ok () && o.wf = Ok () then go (i + 1) else Error o
  in
  go 0
