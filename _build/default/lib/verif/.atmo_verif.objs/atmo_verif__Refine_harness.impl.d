lib/verif/refine_harness.ml: Atmo_core Atmo_hw Atmo_pm Atmo_pmem Atmo_pt Atmo_spec Atmo_util Imap Iset List Random
