lib/verif/refine_harness.mli: Atmo_core Atmo_spec Random
