lib/verif/obligation.ml: Format Printexc Stdlib Unix
