lib/verif/catalog.mli: Atmo_core Atmo_pt Obligation
