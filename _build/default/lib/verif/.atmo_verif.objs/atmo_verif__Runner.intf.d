lib/verif/runner.mli: Format Obligation
