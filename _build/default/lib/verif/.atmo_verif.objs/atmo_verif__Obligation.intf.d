lib/verif/obligation.mli: Format Stdlib
