lib/verif/catalog.ml: Atmo_core Atmo_hw Atmo_pm Atmo_pmem Atmo_pt Atmo_spec Atmo_util Errno Format Iset List Obligation Random Refine_harness
