lib/verif/runner.ml: Array Domain Format Hashtbl List Obligation Option Unix
