lib/verif/effort.ml: Array Filename String Sys
