lib/verif/effort.mli:
