(* Noninterference (§4.3): isolation invariants, unwinding conditions,
   and the verified service V. *)

module Syscall = Atmo_spec.Syscall
module Kernel = Atmo_core.Kernel
module Message = Atmo_pm.Message
module Scenario = Atmo_ni.Scenario
module Isolation = Atmo_ni.Isolation
module Observation = Atmo_ni.Observation
module Service_v = Atmo_ni.Service_v
module Harness = Atmo_ni.Harness
module Page_state = Atmo_pmem.Page_state
module Pte = Atmo_hw.Pte_bits

let checkb = Alcotest.(check bool)

let build () =
  match Scenario.build () with
  | Ok s -> s
  | Error msg -> Alcotest.failf "scenario: %s" msg

let expect_ok what = function
  | Ok _ -> ()
  | Error (f : Harness.failure) ->
    Alcotest.failf "%s failed at step %d: %s" what f.Harness.at_step f.Harness.what

let test_scenario_isolated () =
  let s = build () in
  (match Scenario.check_isolation s with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "isolation: %s" msg);
  (* A and B hold different endpoints, both naming V *)
  checkb "distinct service endpoints" true (s.Scenario.ep_av <> s.Scenario.ep_bv)

let test_isolation_detects_shared_endpoint () =
  let s = build () in
  (* wire A's endpoint into B — the invariant must fire *)
  Atmo_pm.Perm_map.update s.Scenario.kernel.Kernel.pm.Atmo_pm.Proc_mgr.thrd_perms
    ~ptr:s.Scenario.b_thread (fun th ->
      Atmo_pm.Thread.set_slot th 5 (Some s.Scenario.ep_av));
  Atmo_pm.Perm_map.update s.Scenario.kernel.Kernel.pm.Atmo_pm.Proc_mgr.edpt_perms
    ~ptr:s.Scenario.ep_av (fun e ->
      { e with Atmo_pm.Endpoint.refcount = e.Atmo_pm.Endpoint.refcount + 1 });
  checkb "endpoint_iso fires" true (Scenario.check_isolation s <> Ok ())

let test_isolation_detects_shared_frame () =
  let s = build () in
  let k = s.Scenario.kernel in
  (* A maps a page, then the same frame is force-mapped into B *)
  (match Kernel.step k ~thread:s.Scenario.a_thread
           (Syscall.Mmap { va = 0x4000_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw })
   with
   | Syscall.Rmapped [ frame ] ->
     let bp =
       Atmo_pm.Perm_map.borrow k.Kernel.pm.Atmo_pm.Proc_mgr.thrd_perms
         ~ptr:s.Scenario.b_thread
     in
     let bproc =
       Atmo_pm.Perm_map.borrow k.Kernel.pm.Atmo_pm.Proc_mgr.proc_perms
         ~ptr:bp.Atmo_pm.Thread.owner_proc
     in
     (match
        Atmo_pt.Page_table.map_4k bproc.Atmo_pm.Process.pt ~vaddr:0x4000_0000 ~frame
          ~perm:Pte.perm_rw
      with
      | Ok () -> checkb "memory_iso fires" true (Scenario.check_isolation s <> Ok ())
      | Error e -> Alcotest.failf "force map: %a" Atmo_pt.Page_table.pp_error e)
   | r -> Alcotest.failf "mmap: %a" Syscall.pp_ret r)

let test_observation_renaming () =
  (* two separately booted scenarios have identical canonical
     observations even though raw pointers differ *)
  let s1 = build () and s2 = build () in
  let o1 = Observation.observe (Scenario.abstract s1) ~container:s1.Scenario.a_cntr in
  let o2 = Observation.observe (Scenario.abstract s2) ~container:s2.Scenario.a_cntr in
  checkb "canonical observations equal" true (Observation.equal o1 o2)

let test_observation_sees_own_actions () =
  let s = build () in
  let before = Observation.observe (Scenario.abstract s) ~container:s.Scenario.a_cntr in
  ignore
    (Kernel.step s.Scenario.kernel ~thread:s.Scenario.a_thread
       (Syscall.Mmap { va = 0x4000_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw }));
  let after = Observation.observe (Scenario.abstract s) ~container:s.Scenario.a_cntr in
  checkb "own mmap visible" false (Observation.equal before after)

let test_service_round_trip () =
  let s = build () in
  let v = Service_v.create s in
  let k = s.Scenario.kernel in
  (* A sends a request then blocks receiving the reply *)
  (match Kernel.step k ~thread:s.Scenario.a_thread
           (Syscall.Send { slot = 0; msg = Message.scalars_only [ 10; 20 ] })
   with
   | Syscall.Rblocked -> ()
   | r -> Alcotest.failf "A send: %a" Syscall.pp_ret r);
  (* V serves the request; A is not yet waiting, so the reply drops *)
  (match Service_v.step v with
   | Service_v.Served (Service_v.A_side, [ 10; 20 ]) -> ()
   | _ -> Alcotest.fail "V should have served A");
  (match Service_v.wf v with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "V wf: %s" msg);
  (* now A receives, V replies while A waits *)
  (match Kernel.step k ~thread:s.Scenario.a_thread (Syscall.Recv { slot = 0 }) with
   | Syscall.Rblocked -> ()
   | Syscall.Rmsg _ -> ()
   | r -> Alcotest.failf "A recv: %a" Syscall.pp_ret r);
  ignore
    (Kernel.step k ~thread:s.Scenario.a_thread
       (Syscall.Send_nb { slot = 0; msg = Message.scalars_only [ 1 ] }))

let test_service_releases_granted_pages () =
  let s = build () in
  let v = Service_v.create s in
  let k = s.Scenario.kernel in
  (* A maps a buffer and grants it to V with the request *)
  (match Kernel.step k ~thread:s.Scenario.a_thread
           (Syscall.Mmap { va = 0x4000_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw })
   with
   | Syscall.Rmapped _ -> ()
   | r -> Alcotest.failf "A mmap: %a" Syscall.pp_ret r);
  let msg =
    {
      Message.scalars = [ 5 ];
      page = Some { Message.src_vaddr = 0x4000_0000; dst_vaddr = 0x9000_0000 };
      endpoint = None;
    }
  in
  (match Kernel.step k ~thread:s.Scenario.a_thread (Syscall.Send { slot = 0; msg }) with
   | Syscall.Rblocked -> ()
   | r -> Alcotest.failf "A send: %a" Syscall.pp_ret r);
  (match Service_v.step v with
   | Service_v.Served (Service_v.A_side, [ 5 ]) -> ()
   | _ -> Alcotest.fail "V should have served A");
  (* V must have released the page: its space equals baseline *)
  (match Service_v.wf v with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "V wf after page grant: %s" msg);
  (* and the frame is still mapped by A only *)
  (match Kernel.resolve_user k ~thread:s.Scenario.a_thread ~vaddr:0x4000_0000 with
   | Some _ -> ()
   | None -> Alcotest.fail "A lost its page")

let test_service_reply_correctness () =
  checkb "reply function" true (Service_v.reply_for [ 1; 2; 3 ] = [ 2; 3; 4 ])

let test_output_consistency () =
  expect_ok "OC" (Harness.output_consistency ~seed:7 ~steps:120)

let test_step_consistency () =
  (match Harness.step_consistency ~with_service:true ~seed:11 ~steps:150 () with
   | Ok n -> checkb "ran steps" true (n > 0)
   | Error f -> Alcotest.failf "SC failed at %d: %s" f.Harness.at_step f.Harness.what)

let test_step_consistency_no_service () =
  (match Harness.step_consistency ~with_service:false ~seed:13 ~steps:150 () with
   | Ok _ -> ()
   | Error f -> Alcotest.failf "SC failed at %d: %s" f.Harness.at_step f.Harness.what)

let test_probe_consistency () =
  expect_ok "probe" (Harness.probe_consistency ~seed:17 ~steps:40 ~probes:6)

let () =
  Alcotest.run "ni"
    [
      ( "isolation",
        [
          Alcotest.test_case "scenario isolated" `Quick test_scenario_isolated;
          Alcotest.test_case "detects shared endpoint" `Quick
            test_isolation_detects_shared_endpoint;
          Alcotest.test_case "detects shared frame" `Quick
            test_isolation_detects_shared_frame;
        ] );
      ( "observation",
        [
          Alcotest.test_case "renaming-invariant" `Quick test_observation_renaming;
          Alcotest.test_case "sees own actions" `Quick test_observation_sees_own_actions;
        ] );
      ( "service_v",
        [
          Alcotest.test_case "round trip" `Quick test_service_round_trip;
          Alcotest.test_case "releases granted pages" `Quick
            test_service_releases_granted_pages;
          Alcotest.test_case "reply function" `Quick test_service_reply_correctness;
        ] );
      ( "unwinding",
        [
          Alcotest.test_case "output consistency" `Quick test_output_consistency;
          Alcotest.test_case "step consistency" `Quick test_step_consistency;
          Alcotest.test_case "step consistency (no V)" `Quick
            test_step_consistency_no_service;
          Alcotest.test_case "probe consistency" `Quick test_probe_consistency;
        ] );
    ]
