(* The §4.1 / Listing 3 proof structure, executably: open transition
   "ensures" specs, the closed structural invariant (tree_wf), and the
   preservation lemma checked over real and randomized tree
   operations. *)

open Atmo_util
module Proc_mgr = Atmo_pm.Proc_mgr
module Tree_ensures = Atmo_pm.Tree_ensures
module Perm_map = Atmo_pm.Perm_map
module Container = Atmo_pm.Container
module Phys_mem = Atmo_hw.Phys_mem
module Page_alloc = Atmo_pmem.Page_alloc

let checkb = Alcotest.(check bool)

let expect what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Errno.pp e

let expect_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

let expect_fail what = function
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: expected a violation" what

let mk_pm () =
  let mem = Phys_mem.create ~page_count:2048 in
  let alloc = Page_alloc.create mem ~reserved_frames:0 in
  expect "create"
    (Proc_mgr.create mem alloc ~root_quota:1500 ~cpus:(Iset.of_range ~lo:0 ~hi:4))

(* ------------------------------------------------------------------ *)

let test_new_container_satisfies_ensures () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let pre = Tree_ensures.snapshot pm in
  let child = expect "child" (Proc_mgr.new_container pm ~parent:root ~quota:64 ~cpus:Iset.empty) in
  let post = Tree_ensures.snapshot pm in
  expect_ok "ensures holds of the real transition"
    (Tree_ensures.new_container_ensures ~pre ~post ~parent:root ~child ~quota:64);
  expect_ok "wf before" (Tree_ensures.tree_wf pre);
  expect_ok "wf after" (Tree_ensures.tree_wf post)

let test_nested_creation_ensures () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let a = expect "a" (Proc_mgr.new_container pm ~parent:root ~quota:256 ~cpus:Iset.empty) in
  let b = expect "b" (Proc_mgr.new_container pm ~parent:a ~quota:64 ~cpus:Iset.empty) in
  let pre = Tree_ensures.snapshot pm in
  let c = expect "c" (Proc_mgr.new_container pm ~parent:b ~quota:16 ~cpus:Iset.empty) in
  let post = Tree_ensures.snapshot pm in
  (* the ancestors' subtree growth (root and a and b) is exactly {c} *)
  expect_ok "deep ensures"
    (Tree_ensures.new_container_ensures ~pre ~post ~parent:b ~child:c ~quota:16)

let test_terminate_satisfies_ensures () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let a = expect "a" (Proc_mgr.new_container pm ~parent:root ~quota:256 ~cpus:Iset.empty) in
  ignore (expect "aa" (Proc_mgr.new_container pm ~parent:a ~quota:32 ~cpus:Iset.empty));
  ignore (expect "ab" (Proc_mgr.new_container pm ~parent:a ~quota:32 ~cpus:Iset.empty));
  let pre = Tree_ensures.snapshot pm in
  expect "terminate" (Proc_mgr.terminate_container pm ~container:a);
  let post = Tree_ensures.snapshot pm in
  expect_ok "terminate ensures" (Tree_ensures.terminate_ensures ~pre ~post ~victim:a);
  expect_ok "wf after" (Tree_ensures.tree_wf post)

let test_ensures_rejects_wrong_transition () =
  (* claim the wrong parent / quota: the open spec must refuse *)
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let a = expect "a" (Proc_mgr.new_container pm ~parent:root ~quota:256 ~cpus:Iset.empty) in
  let pre = Tree_ensures.snapshot pm in
  let b = expect "b" (Proc_mgr.new_container pm ~parent:a ~quota:16 ~cpus:Iset.empty) in
  let post = Tree_ensures.snapshot pm in
  expect_fail "wrong parent"
    (Tree_ensures.new_container_ensures ~pre ~post ~parent:root ~child:b ~quota:16);
  expect_fail "wrong quota"
    (Tree_ensures.new_container_ensures ~pre ~post ~parent:a ~child:b ~quota:99);
  (* and a hidden extra effect also violates the frame condition *)
  let pre2 = Tree_ensures.snapshot pm in
  let c = expect "c" (Proc_mgr.new_container pm ~parent:a ~quota:16 ~cpus:Iset.empty) in
  Perm_map.update pm.Proc_mgr.cntr_perms ~ptr:root (fun cc ->
      { cc with Container.quota = cc.Container.quota + 1 });
  let post2 = Tree_ensures.snapshot pm in
  expect_fail "hidden effect"
    (Tree_ensures.new_container_ensures ~pre:pre2 ~post:post2 ~parent:a ~child:c ~quota:16)

let test_wf_rejects_corruption () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let a = expect "a" (Proc_mgr.new_container pm ~parent:root ~quota:64 ~cpus:Iset.empty) in
  Perm_map.update pm.Proc_mgr.cntr_perms ~ptr:a (fun c ->
      { c with Container.path = [] });
  expect_fail "broken path" (Tree_ensures.tree_wf (Tree_ensures.snapshot pm))

(* the preservation lemma over randomized create/terminate traffic *)
let prop_preservation =
  QCheck.Test.make ~name:"ensures + wf-before implies wf-after (preservation)" ~count:40
    QCheck.(list (pair bool (int_bound 7)))
    (fun ops ->
      let pm = mk_pm () in
      let root = pm.Proc_mgr.root_container in
      let live = ref [ root ] in
      List.for_all
        (fun (create, pick) ->
          let parent = List.nth !live (pick mod List.length !live) in
          if create then begin
            let pre = Tree_ensures.snapshot pm in
            match Proc_mgr.new_container pm ~parent ~quota:8 ~cpus:Iset.empty with
            | Error _ -> true
            | Ok child ->
              live := child :: !live;
              let post = Tree_ensures.snapshot pm in
              let ensures =
                Tree_ensures.new_container_ensures ~pre ~post ~parent ~child ~quota:8
              in
              ensures = Ok ()
              && Tree_ensures.check_preservation ~pre ~post ~ensures = Ok ()
          end
          else if parent = root then true
          else begin
            let pre = Tree_ensures.snapshot pm in
            match Proc_mgr.terminate_container pm ~container:parent with
            | Error _ -> true
            | Ok () ->
              let post = Tree_ensures.snapshot pm in
              live :=
                List.filter
                  (fun c -> Perm_map.mem pm.Proc_mgr.cntr_perms ~ptr:c)
                  !live;
              let ensures = Tree_ensures.terminate_ensures ~pre ~post ~victim:parent in
              ensures = Ok ()
              && Tree_ensures.check_preservation ~pre ~post ~ensures = Ok ()
          end)
        ops)

let test_preservation_vacuous_cases () =
  let pm = mk_pm () in
  let s = Tree_ensures.snapshot pm in
  (* a failed ensures makes the lemma vacuous, not violated *)
  checkb "vacuous on failed ensures" true
    (Tree_ensures.check_preservation ~pre:s ~post:s ~ensures:(Error "no") = Ok ())

let () =
  Alcotest.run "tree_spec"
    [
      ( "ensures",
        [
          Alcotest.test_case "new_container" `Quick test_new_container_satisfies_ensures;
          Alcotest.test_case "nested creation" `Quick test_nested_creation_ensures;
          Alcotest.test_case "terminate" `Quick test_terminate_satisfies_ensures;
          Alcotest.test_case "rejects wrong transitions" `Quick
            test_ensures_rejects_wrong_transition;
        ] );
      ( "wf",
        [
          Alcotest.test_case "rejects corruption" `Quick test_wf_rejects_corruption;
          Alcotest.test_case "vacuous preservation" `Quick test_preservation_vacuous_cases;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_preservation ]);
    ]
