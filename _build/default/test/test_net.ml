(* Network and application substrate: packets, FNV, Maglev, kv-store,
   HTTP, httpd. *)

open Atmo_net

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fnv                                                                 *)

let test_fnv_vectors () =
  (* canonical FNV-1a 64 test vectors *)
  Alcotest.(check int64) "empty" 0xcbf29ce484222325L (Fnv.hash_string "");
  Alcotest.(check int64) "'a'" 0xaf63dc4c8601ec8cL (Fnv.hash_string "a");
  Alcotest.(check int64) "'foobar'" 0x85944171f73967e8L (Fnv.hash_string "foobar")

let test_fnv_bucket_range () =
  for i = 0 to 99 do
    let b = Fnv.to_bucket (Fnv.hash_string (string_of_int i)) ~buckets:7 in
    checkb "bucket in range" true (b >= 0 && b < 7)
  done

let test_fnv_sub () =
  let b = Bytes.of_string "xxfoobaryy" in
  Alcotest.(check int64) "sub equals direct" (Fnv.hash_string "foobar")
    (Fnv.hash64_sub b ~pos:2 ~len:6)

(* ------------------------------------------------------------------ *)
(* Packet                                                              *)

let flow = Packet.flow_of_ints ~src:0x0a000001 ~dst:0x0a000002 ~sport:1234 ~dport:80

let test_packet_round_trip () =
  let payload = Bytes.of_string "hello atmosphere" in
  let frame = Packet.build flow ~payload in
  checkb "min frame" true (Bytes.length frame >= Packet.min_frame);
  (match Packet.parse_flow frame with
   | Some f ->
     checki "sport" 1234 f.Packet.src_port;
     checki "dport" 80 f.Packet.dst_port
   | None -> Alcotest.fail "parse failed");
  (match Packet.payload frame with
   | Some p -> checks "payload" "hello atmosphere" (Bytes.to_string p)
   | None -> Alcotest.fail "payload failed")

let test_packet_rejects_garbage () =
  checkb "short frame" true (Packet.parse_flow (Bytes.make 10 'x') = None);
  checkb "non-ip" true (Packet.parse_flow (Bytes.make 64 '\255') = None);
  checkb "hash of garbage" true (Packet.five_tuple_hash (Bytes.make 64 '\000') = None)

let test_five_tuple_stable () =
  let f1 = Packet.build flow ~payload:(Bytes.of_string "a") in
  let f2 = Packet.build flow ~payload:(Bytes.of_string "completely different") in
  checkb "same flow same hash" true (Packet.five_tuple_hash f1 = Packet.five_tuple_hash f2);
  let other = Packet.flow_of_ints ~src:0x0a000001 ~dst:0x0a000002 ~sport:1235 ~dport:80 in
  let f3 = Packet.build other ~payload:(Bytes.of_string "a") in
  checkb "different flow different hash" true
    (Packet.five_tuple_hash f1 <> Packet.five_tuple_hash f3)

(* ------------------------------------------------------------------ *)
(* Maglev                                                              *)

let backends = List.init 8 (fun i -> Printf.sprintf "b%d" i)

let test_maglev_full_table () =
  let m = Maglev.create ~backends ~table_size:65537 in
  let counts = Maglev.slot_counts m in
  checki "all backends present" 8 (List.length counts);
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  checki "every slot assigned" 65537 total

let test_maglev_balance () =
  let m = Maglev.create ~backends ~table_size:65537 in
  let counts = List.map snd (Maglev.slot_counts m) in
  let mn = List.fold_left min max_int counts and mx = List.fold_left max 0 counts in
  (* Maglev's guarantee: within a few percent of even *)
  checkb "balanced within 2%" true
    (float_of_int (mx - mn) /. (65537. /. 8.) < 0.02)

let test_maglev_minimal_disruption () =
  let m1 = Maglev.create ~backends ~table_size:65537 in
  let m2 =
    Maglev.create ~backends:(List.filter (fun b -> b <> "b3") backends) ~table_size:65537
  in
  let d = Maglev.disruption m1 m2 in
  (* removing 1 of 8 backends must move its own 1/8 plus a small extra *)
  checkb "disruption > 1/8" true (d >= 1. /. 8. -. 0.01);
  checkb "disruption < 1/4" true (d < 0.25)

let test_maglev_lookup_deterministic () =
  let m = Maglev.create ~backends ~table_size:65537 in
  let h = Fnv.hash_string "some flow" in
  checks "same result" (Maglev.lookup m h) (Maglev.lookup m h)

let test_maglev_bad_args () =
  Alcotest.check_raises "no backends" (Invalid_argument "Maglev.create: no backends")
    (fun () -> ignore (Maglev.create ~backends:[] ~table_size:7))

(* ------------------------------------------------------------------ *)
(* Kv_store                                                            *)

let test_kv_basic () =
  let t = Kv_store.create ~entries:101 in
  checkb "set" true (Kv_store.set t ~key:(Bytes.of_string "k1") ~value:(Bytes.of_string "v1"));
  (match Kv_store.get t ~key:(Bytes.of_string "k1") with
   | Some v -> checks "get" "v1" (Bytes.to_string v)
   | None -> Alcotest.fail "missing");
  checkb "overwrite" true
    (Kv_store.set t ~key:(Bytes.of_string "k1") ~value:(Bytes.of_string "v2"));
  checki "length stable on overwrite" 1 (Kv_store.length t);
  checkb "delete" true (Kv_store.delete t ~key:(Bytes.of_string "k1"));
  checkb "gone" true (Kv_store.get t ~key:(Bytes.of_string "k1") = None);
  checkb "delete absent" false (Kv_store.delete t ~key:(Bytes.of_string "nope"))

let test_kv_full_table () =
  let t = Kv_store.create ~entries:4 in
  for i = 0 to 3 do
    checkb "fits" true
      (Kv_store.set t ~key:(Bytes.of_string (string_of_int i)) ~value:Bytes.empty)
  done;
  checkb "full" false (Kv_store.set t ~key:(Bytes.of_string "overflow") ~value:Bytes.empty);
  (* deleting frees a slot for reuse (tombstone) *)
  checkb "del" true (Kv_store.delete t ~key:(Bytes.of_string "2"));
  checkb "reuse tombstone" true
    (Kv_store.set t ~key:(Bytes.of_string "new") ~value:Bytes.empty)

let test_kv_probe_chains_survive_delete () =
  (* force collisions in a tiny table, delete a middle element, and make
     sure later chain members remain reachable *)
  let t = Kv_store.create ~entries:8 in
  let keys = List.init 6 (fun i -> Bytes.of_string (Printf.sprintf "key%d" i)) in
  List.iter (fun k -> ignore (Kv_store.set t ~key:k ~value:k)) keys;
  ignore (Kv_store.delete t ~key:(List.nth keys 2));
  List.iteri
    (fun i k ->
      if i <> 2 then checkb "still reachable" true (Kv_store.get t ~key:k <> None))
    keys

let test_kv_wire_protocol () =
  let t = Kv_store.create ~entries:101 in
  let reply r = Kv_store.decode_reply r in
  checkb "set over wire" true
    (reply (Kv_store.serve t (Kv_store.encode_request
                                (Kv_store.Set (Bytes.of_string "k", Bytes.of_string "v"))))
     = Some Kv_store.Stored);
  (match reply (Kv_store.serve t (Kv_store.encode_request (Kv_store.Get (Bytes.of_string "k")))) with
   | Some (Kv_store.Value v) -> checks "wire get" "v" (Bytes.to_string v)
   | _ -> Alcotest.fail "wire get failed");
  checkb "get missing" true
    (reply (Kv_store.serve t (Kv_store.encode_request (Kv_store.Get (Bytes.of_string "zz"))))
     = Some Kv_store.Not_found);
  checkb "garbage request" true
    (reply (Kv_store.serve t (Bytes.of_string "xx")) = Some Kv_store.Error)

(* ------------------------------------------------------------------ *)
(* Http / Httpd                                                        *)

let test_http_parse () =
  match Http.parse_request "GET /index.html HTTP/1.1\r\nHost: atmo\r\nX-Y: z\r\n\r\n" with
  | Ok r ->
    checkb "method" true (r.Http.meth = Http.GET);
    checks "path" "/index.html" r.Http.path;
    checks "host" "atmo" (Option.get (Http.header r "Host"));
    checkb "keep alive (1.1 default)" true (Http.keep_alive r)
  | Error e -> Alcotest.failf "parse: %s" e

let test_http_parse_errors () =
  checkb "empty" true (Result.is_error (Http.parse_request ""));
  checkb "bad request line" true (Result.is_error (Http.parse_request "GARBAGE\r\n\r\n"));
  checkb "bad version" true (Result.is_error (Http.parse_request "GET / HTTP/0.9\r\n\r\n"));
  checkb "path must be absolute" true
    (Result.is_error (Http.parse_request "GET index HTTP/1.1\r\n\r\n"))

let test_http_keep_alive_10 () =
  (match Http.parse_request "GET / HTTP/1.0\r\n\r\n" with
   | Ok r -> checkb "1.0 default close" false (Http.keep_alive r)
   | Error e -> Alcotest.failf "parse: %s" e);
  match Http.parse_request "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n" with
  | Ok r -> checkb "1.0 explicit keep-alive" true (Http.keep_alive r)
  | Error e -> Alcotest.failf "parse: %s" e

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_http_response () =
  let r = Http.response ~status:200 ~body:"hi" () in
  checkb "status line" true
    (String.length r > 15 && String.sub r 0 15 = "HTTP/1.1 200 OK");
  checkb "content length" true (contains r "Content-Length: 2");
  checkb "body at end" true (contains r "\r\n\r\nhi")

let test_httpd_routes () =
  let s = Httpd.create ~routes:[ ("/", "home"); ("/a", "page a") ] in
  let resp, keep = Httpd.handle s "GET / HTTP/1.1\r\nHost: x\r\n\r\n" in
  checkb "200" true (String.length resp > 12 && String.sub resp 9 3 = "200");
  checkb "keep alive" true keep;
  let resp404, _ = Httpd.handle s "GET /missing HTTP/1.1\r\n\r\n" in
  checkb "404" true (String.sub resp404 9 3 = "404");
  let resp405, _ = Httpd.handle s "POST / HTTP/1.1\r\n\r\n" in
  checkb "405" true (String.sub resp405 9 3 = "405");
  let resp400, _ = Httpd.handle s "garbage" in
  checkb "400" true (String.sub resp400 9 3 = "400")

let test_httpd_round_robin () =
  let s = Httpd.create ~routes:[ ("/", "x") ] in
  let conns = List.init 5 (fun _ -> Httpd.open_conn s) in
  List.iter
    (fun c ->
      Httpd.submit c "GET / HTTP/1.1\r\n\r\n";
      Httpd.submit c "GET / HTTP/1.1\r\n\r\n")
    conns;
  checki "first sweep serves one per conn" 5 (Httpd.poll_round s conns);
  checki "second sweep drains the rest" 5 (Httpd.poll_round s conns);
  checki "nothing left" 0 (Httpd.poll_round s conns);
  checki "each conn has both responses" 2 (List.length (Httpd.responses (List.hd conns)))

(* ------------------------------------------------------------------ *)
(* Workload generation                                                 *)

let test_workload_uniform_covers () =
  let w = Workload.create ~seed:1 ~keys:10 Workload.Uniform in
  let seen = Array.make 10 false in
  for _ = 1 to 2000 do
    seen.(Workload.next_key w) <- true
  done;
  checkb "all keys drawn" true (Array.for_all Fun.id seen)

let test_workload_zipf_skewed () =
  let w = Workload.create ~seed:1 ~keys:10_000 (Workload.Zipfian 0.99) in
  (* with theta 0.99, the hottest 1% of keys should absorb well over a
     third of the draws; uniform would give 1% *)
  let hot = Workload.hottest_fraction w ~sample:20_000 ~top:100 in
  checkb "zipf skew" true (hot > 0.3);
  let u = Workload.create ~seed:1 ~keys:10_000 Workload.Uniform in
  let uhot = Workload.hottest_fraction u ~sample:20_000 ~top:100 in
  checkb "uniform not skewed" true (uhot < 0.05)

let test_workload_read_ratio () =
  let w = Workload.create ~seed:7 ~keys:100 Workload.Uniform in
  let ops = Workload.ops w ~read_ratio:0.9 ~count:5000 in
  let reads = List.length (List.filter (function Workload.Get _ -> true | _ -> false) ops) in
  let ratio = float_of_int reads /. 5000. in
  checkb "~90% reads" true (ratio > 0.85 && ratio < 0.95)

let test_workload_drives_store () =
  (* a zipfian GET-heavy mix against the real table behaves like a
     cache: popular keys hit once written *)
  let store = Kv_store.create ~entries:2053 in
  let w = Workload.create ~seed:3 ~keys:1000 (Workload.Zipfian 0.9) in
  let hits = ref 0 and misses = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Workload.Set k ->
        ignore (Kv_store.set store ~key:(Workload.key_bytes k ~size:16) ~value:(Bytes.make 16 'v'))
      | Workload.Get k ->
        (match Kv_store.get store ~key:(Workload.key_bytes k ~size:16) with
         | Some _ -> incr hits
         | None -> incr misses))
    (Workload.ops w ~read_ratio:0.5 ~count:10_000);
  checkb "plenty of hits" true (!hits > 2000);
  checkb "ran" true (!hits + !misses > 4000)

let test_workload_key_bytes () =
  checki "size respected" 16 (Bytes.length (Workload.key_bytes 42 ~size:16));
  checkb "distinct keys" true
    (not (Bytes.equal (Workload.key_bytes 1 ~size:8) (Workload.key_bytes 2 ~size:8)))

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)

let prop_kv_model =
  QCheck.Test.make ~name:"kv-store agrees with an association-list model" ~count:100
    QCheck.(list (pair (int_bound 2) (int_bound 20)))
    (fun ops ->
      let t = Kv_store.create ~entries:64 in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (op, kn) ->
          let key = Bytes.of_string (Printf.sprintf "k%d" kn) in
          match op with
          | 0 ->
            let v = Bytes.of_string (Printf.sprintf "v%d" kn) in
            if Kv_store.set t ~key ~value:v then begin
              Hashtbl.replace model kn v;
              true
            end
            else true (* full table: model untouched *)
          | 1 ->
            let got = Kv_store.get t ~key in
            got = Hashtbl.find_opt model kn
          | _ ->
            let deleted = Kv_store.delete t ~key in
            let existed = Hashtbl.mem model kn in
            Hashtbl.remove model kn;
            deleted = existed)
        ops)

let prop_packet_round_trip =
  QCheck.Test.make ~name:"packet build/parse round-trips" ~count:100
    QCheck.(quad small_nat small_nat (int_bound 0xffff) (string_of_size (Gen.int_bound 40)))
    (fun (src, dst, port, payload) ->
      let flow = Packet.flow_of_ints ~src ~dst ~sport:port ~dport:(port lxor 1) in
      let frame = Packet.build flow ~payload:(Bytes.of_string payload) in
      match (Packet.parse_flow frame, Packet.payload frame) with
      | Some f, Some p ->
        f.Packet.src_port = port land 0xffff && Bytes.to_string p = payload
      | _ -> false)

let prop_maglev_total =
  QCheck.Test.make ~name:"maglev lookup always lands on a live backend" ~count:100
    QCheck.(pair (int_range 1 16) int64)
    (fun (n, h) ->
      let backends = List.init n (fun i -> Printf.sprintf "s%d" i) in
      let m = Maglev.create ~backends ~table_size:251 in
      List.mem (Maglev.lookup m h) backends)

let () =
  Alcotest.run "net"
    [
      ( "fnv",
        [
          Alcotest.test_case "vectors" `Quick test_fnv_vectors;
          Alcotest.test_case "bucket range" `Quick test_fnv_bucket_range;
          Alcotest.test_case "sub hashing" `Quick test_fnv_sub;
        ] );
      ( "packet",
        [
          Alcotest.test_case "round trip" `Quick test_packet_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_packet_rejects_garbage;
          Alcotest.test_case "five tuple stable" `Quick test_five_tuple_stable;
        ] );
      ( "maglev",
        [
          Alcotest.test_case "full table" `Quick test_maglev_full_table;
          Alcotest.test_case "balance" `Quick test_maglev_balance;
          Alcotest.test_case "minimal disruption" `Quick test_maglev_minimal_disruption;
          Alcotest.test_case "deterministic" `Quick test_maglev_lookup_deterministic;
          Alcotest.test_case "bad args" `Quick test_maglev_bad_args;
        ] );
      ( "kv_store",
        [
          Alcotest.test_case "basic ops" `Quick test_kv_basic;
          Alcotest.test_case "full table" `Quick test_kv_full_table;
          Alcotest.test_case "probe chains" `Quick test_kv_probe_chains_survive_delete;
          Alcotest.test_case "wire protocol" `Quick test_kv_wire_protocol;
        ] );
      ( "http",
        [
          Alcotest.test_case "parse" `Quick test_http_parse;
          Alcotest.test_case "parse errors" `Quick test_http_parse_errors;
          Alcotest.test_case "keep alive 1.0" `Quick test_http_keep_alive_10;
          Alcotest.test_case "response" `Quick test_http_response;
          Alcotest.test_case "routes" `Quick test_httpd_routes;
          Alcotest.test_case "round robin" `Quick test_httpd_round_robin;
        ] );
      ( "workload",
        [
          Alcotest.test_case "uniform covers" `Quick test_workload_uniform_covers;
          Alcotest.test_case "zipf skewed" `Quick test_workload_zipf_skewed;
          Alcotest.test_case "read ratio" `Quick test_workload_read_ratio;
          Alcotest.test_case "drives store" `Quick test_workload_drives_store;
          Alcotest.test_case "key bytes" `Quick test_workload_key_bytes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_kv_model; prop_packet_round_trip; prop_maglev_total ] );
    ]
