test/test_pmem.ml: Alcotest Atmo_hw Atmo_pmem Atmo_util Dll Fun Iset List Option Page_alloc Page_state QCheck QCheck_alcotest
