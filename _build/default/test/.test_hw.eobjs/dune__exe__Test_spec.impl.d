test/test_spec.ml: Alcotest Atmo_core Atmo_hw Atmo_pm Atmo_pmem Atmo_spec Atmo_util Atmo_verif Errno Iset List
