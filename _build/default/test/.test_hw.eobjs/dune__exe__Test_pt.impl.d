test/test_pt.ml: Alcotest Atmo_hw Atmo_pmem Atmo_pt Atmo_util Imap Iset List Nros_pt Page_table Pt_refine QCheck QCheck_alcotest
