test/test_net.ml: Alcotest Array Atmo_net Bytes Fnv Fun Gen Hashtbl Http Httpd Kv_store List Maglev Option Packet Printf QCheck QCheck_alcotest Result String Workload
