test/test_verif.ml: Alcotest Atmo_core Atmo_pm Atmo_pt Atmo_verif List Option Sys
