test/test_ni.ml: Alcotest Atmo_core Atmo_hw Atmo_ni Atmo_pm Atmo_pmem Atmo_pt Atmo_spec
