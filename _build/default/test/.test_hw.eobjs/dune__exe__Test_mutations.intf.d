test/test_mutations.mli:
