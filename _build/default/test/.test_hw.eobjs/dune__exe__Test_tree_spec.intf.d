test/test_tree_spec.mli:
