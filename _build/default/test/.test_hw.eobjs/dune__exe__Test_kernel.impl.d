test/test_kernel.ml: Alcotest Atmo_core Atmo_hw Atmo_pm Atmo_pmem Atmo_spec Atmo_util Errno Imap Iset List Result
