test/test_pm.mli:
