test/test_hw.ml: Alcotest Atmo_hw Bytes Char Clock E820 Iommu List Mmu Phys_mem Pte_bits QCheck QCheck_alcotest Result
