test/test_ni.mli:
