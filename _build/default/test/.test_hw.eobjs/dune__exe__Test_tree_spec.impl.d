test/test_tree_spec.ml: Alcotest Atmo_hw Atmo_pm Atmo_pmem Atmo_util Errno Iset List QCheck QCheck_alcotest
