test/test_sim.ml: Alcotest Atmo_baselines Atmo_core Atmo_hw Atmo_pm Atmo_sim Atmo_spec Atmo_util Bytes Char List QCheck QCheck_alcotest Queue
