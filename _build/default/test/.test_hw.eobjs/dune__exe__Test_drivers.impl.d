test/test_drivers.ml: Alcotest Array Atmo_drivers Atmo_hw Atmo_net Atmo_pmem Atmo_pt Atmo_sim Bytes List Option Result
