(* Device-model subsystem tests: the seeded hostile-mode engine, the
   per-device state machines, and the paper's driver-survival claim in
   executable form — under fault injection no driver raises, every
   misbehaviour is absorbed as a typed error, and Driver_lint finds
   nothing to flag once the rings are drained.  Also the backend
   interchange oracle: virtio and ixgbe/nvme backends are bit-identical
   on the fault-free path. *)

module Fault = Atmo_devmodel.Fault
module Hostile = Atmo_devmodel.Hostile
module Model = Atmo_devmodel.Model
module Ixgbe = Atmo_drivers.Ixgbe
module Nvme = Atmo_drivers.Nvme
module Virtio_net = Atmo_drivers.Virtio_net
module Virtio_blk = Atmo_drivers.Virtio_blk
module Virtio_ring = Atmo_drivers.Virtio_ring
module Phys_mem = Atmo_hw.Phys_mem
module Iommu = Atmo_hw.Iommu
module Clock = Atmo_hw.Clock
module Pte = Atmo_hw.Pte_bits
module Page_alloc = Atmo_pmem.Page_alloc
module Page_table = Atmo_pt.Page_table
module Kernel = Atmo_core.Kernel
module Event = Atmo_obs.Event
module Sink = Atmo_obs.Sink
module Flight = Atmo_obs.Flight
module San_report = Atmo_san.Report
module Driver_lint = Atmo_san.Driver_lint
module Kv_demo = Atmo_workloads.Kv_demo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let boot () =
  match Kernel.boot Kernel.default_boot with
  | Ok (k, _init) -> k
  | Error e -> Alcotest.failf "boot: %a" Atmo_util.Errno.pp e

(* Run [f] with a clean model registry and report table on both sides,
   so no test leaks device models into another. *)
let with_clean_models f =
  Model.reset ();
  San_report.clear ();
  Fun.protect
    ~finally:(fun () ->
      Model.reset ();
      San_report.clear ())
    f

(* ------------------------------------------------------------------ *)
(* Fault taxonomy: codes, names, and obs events agree. *)

let test_fault_codes () =
  List.iter
    (fun k ->
      let code = Fault.code k in
      checkb "of_code round trip" true (Fault.of_code code = Some k);
      checkb "of_name round trip" true (Fault.of_name (Fault.name k) = Some k);
      Alcotest.(check string)
        "obs fault_name matches taxonomy" (Fault.name k)
        (Event.fault_name code))
    Fault.all;
  checkb "unknown code rejected" true (Fault.of_code 0 = None);
  checkb "unknown name rejected" true (Fault.of_name "no-such-fault" = None)

(* ------------------------------------------------------------------ *)
(* Hostile engine: same seed, same faults — and the budget binds. *)

let drive_engine t n =
  let log = ref [] in
  for i = 1 to n do
    let site = Printf.sprintf "site%d" (i mod 7) in
    (match Hostile.pick t ~site Fault.all with
    | Some k -> log := (site, k) :: !log
    | None -> ());
    ignore (Hostile.rand t 16)
  done;
  List.rev !log

let test_hostile_determinism () =
  let a = Hostile.create ~budget:32 ~seed:2026 () in
  let b = Hostile.create ~budget:32 ~seed:2026 () in
  let la = drive_engine a 500 and lb = drive_engine b 500 in
  checkb "same seed, same injections" true (la = lb);
  checkb "pick log matches injected log" true (la = Hostile.injected a);
  checkb "budget binds" true (Hostile.injected_count a <= 32);
  checki "budget accounting" 32
    (Hostile.budget_left a + Hostile.injected_count a);
  let c = Hostile.create ~budget:32 ~seed:2027 () in
  let lc = drive_engine c 500 in
  checkb "different seed, different run" true (la <> lc)

(* ------------------------------------------------------------------ *)
(* IRQ storms: auto-mask keeps pending bounded; without it the lint
   files drv-irq-storm. *)

let test_irq_storm_auto_mask () =
  with_clean_models (fun () ->
      let k = boot () in
      let masked = Model.register ~name:"stormA" ~device:31 ~initial:Model.Active in
      for _ = 1 to Model.storm_threshold + 8 do
        Model.raise_irq masked
      done;
      checkb "auto-mask bounds pending" true
        (Model.pending_irqs masked <= Model.storm_threshold);
      checki "masked vector is lint-clean" 0 (Driver_lint.lint k);
      Model.ack_irqs masked;
      let unmasked = Model.register ~name:"stormB" ~device:32 ~initial:Model.Active in
      Model.set_auto_mask unmasked false;
      for _ = 1 to Model.storm_threshold + 8 do
        Model.raise_irq unmasked
      done;
      checkb "unmasked vector storms" true
        (Model.pending_irqs unmasked > Model.storm_threshold);
      checkb "lint fires" true (Driver_lint.lint k > 0);
      match
        List.find_opt
          (fun r -> r.San_report.rule = San_report.Drv_irq_storm)
          (San_report.reports ())
      with
      | None -> Alcotest.fail "drv-irq-storm not filed"
      | Some _ -> ())

(* ------------------------------------------------------------------ *)
(* DMA environment shared by the device sweeps: private memory, an
   IOMMU domain, and a bump allocator of mapped iova spans. *)

let mk_dev_env ~device =
  let mem = Phys_mem.create ~page_count:128 in
  let alloc = Page_alloc.create mem ~reserved_frames:0 in
  let iommu = Iommu.create mem in
  let pt =
    match Page_table.create mem alloc with
    | Ok p -> p
    | Error _ -> Alcotest.fail "dev env page table"
  in
  let next = ref 0x20_0000 in
  let span bytes =
    let base = !next in
    let pages = (bytes + Phys_mem.page_size - 1) / Phys_mem.page_size in
    for i = 0 to pages - 1 do
      let frame =
        match Page_alloc.alloc_4k alloc ~purpose:Page_alloc.User with
        | Some f -> f
        | None -> Alcotest.fail "dev env out of frames"
      in
      match
        Page_table.map_4k pt
          ~vaddr:(base + (i * Phys_mem.page_size))
          ~frame ~perm:Pte.perm_rw
      with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "dev env map"
    done;
    next := base + (pages * Phys_mem.page_size);
    base
  in
  Iommu.attach iommu ~device ~root:(Page_table.cr3 pt);
  (mem, iommu, span)

let sweep_frame = Bytes.make 96 '\x5a'

(* One hostile run per NIC backend: deliver/rx with periodic tx, then
   drain with the engine detached.  Any escaped exception fails the
   test; the return is the typed-error count the driver absorbed. *)
let hostile_nic_sweep ~seed ~steps ~kind =
  let cost = Atmo_sim.Cost.default in
  let clock = Clock.create () in
  let slots = 8 in
  let rx drv_rx = ignore (drv_rx ~max:slots) in
  match kind with
  | `Ixgbe ->
    let mem, iommu, span = mk_dev_env ~device:11 in
    let nic = Ixgbe.create mem iommu ~device:11 ~clock ~cost in
    let buffers () = Array.init slots (fun _ -> (span 2048, 2048)) in
    (match Ixgbe.setup_rx nic ~ring_iova:(span Phys_mem.page_size) ~buffers:(buffers ()) with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Fault.error_to_string e));
    (match Ixgbe.setup_tx nic ~ring_iova:(span Phys_mem.page_size) ~buffers:(buffers ()) with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Fault.error_to_string e));
    Ixgbe.set_hostile nic (Some (Hostile.create ~seed ()));
    for i = 1 to steps do
      ignore (Ixgbe.wire_deliver nic sweep_frame);
      rx (Ixgbe.rx_burst nic);
      if i mod 4 = 0 then begin
        ignore (Ixgbe.tx_burst nic [ sweep_frame ]);
        ignore (Ixgbe.wire_collect nic)
      end
    done;
    Ixgbe.set_hostile nic None;
    for _ = 1 to 4 do
      rx (Ixgbe.rx_burst nic)
    done;
    Ixgbe.error_count nic
  | `Virtio ->
    let mem, iommu, span = mk_dev_env ~device:14 in
    let nic = Virtio_net.create mem iommu ~device:14 ~clock ~cost in
    let buffers () = Array.init slots (fun _ -> (span 2048, 2048)) in
    (match Virtio_net.setup_rx nic ~ring_iova:(span Phys_mem.page_size) ~buffers:(buffers ()) with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Fault.error_to_string e));
    (match Virtio_net.setup_tx nic ~ring_iova:(span Phys_mem.page_size) ~buffers:(buffers ()) with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Fault.error_to_string e));
    Virtio_net.set_hostile nic (Some (Hostile.create ~seed ()));
    for i = 1 to steps do
      ignore (Virtio_net.wire_deliver nic sweep_frame);
      rx (Virtio_net.rx_burst nic);
      if i mod 4 = 0 then begin
        ignore (Virtio_net.tx_burst nic [ sweep_frame ]);
        ignore (Virtio_net.wire_collect nic)
      end
    done;
    Virtio_net.set_hostile nic None;
    for _ = 1 to 4 do
      rx (Virtio_net.rx_burst nic)
    done;
    Virtio_net.error_count nic

let hostile_blk_sweep ~seed ~steps ~kind =
  let cost = Atmo_sim.Cost.default in
  let clock = Clock.create () in
  let block = Bytes.make Nvme.block_bytes 'b' in
  match kind with
  | `Nvme ->
    let dev = Nvme.create ~clock ~cost ~capacity_blocks:256 in
    Nvme.set_device dev 12;
    Nvme.set_hostile dev (Some (Hostile.create ~seed ()));
    for i = 1 to steps do
      let lba = i mod 256 in
      (match
         if i mod 3 = 0 then Result.map ignore (Nvme.submit_write dev ~lba ~data:block)
         else Result.map ignore (Nvme.submit_read dev ~lba)
       with
      | Ok () -> ()
      | Error _ -> ignore (Nvme.wait_all dev));
      if i mod 8 = 0 then ignore (Nvme.poll dev)
    done;
    ignore (Nvme.wait_all dev);
    Nvme.set_hostile dev None;
    ignore (Nvme.wait_all dev);
    Nvme.error_count dev
  | `Virtio ->
    let mem, iommu, span = mk_dev_env ~device:13 in
    let dev = Virtio_blk.create mem iommu ~device:13 ~clock ~cost ~capacity_blocks:256 in
    let depth = 16 in
    let _, _, _, ring_bytes = Virtio_ring.layout ~qsz:(3 * depth) ~base:0 in
    let ring_iova = span ring_bytes in
    let arena_iova = span (depth * Virtio_blk.slot_bytes) in
    (match Virtio_blk.setup dev ~ring_iova ~arena_iova ~depth with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Fault.error_to_string e));
    Virtio_blk.set_hostile dev (Some (Hostile.create ~seed ()));
    for i = 1 to steps do
      let lba = i mod 256 in
      (match
         if i mod 3 = 0 then Result.map ignore (Virtio_blk.submit_write dev ~lba ~data:block)
         else Result.map ignore (Virtio_blk.submit_read dev ~lba)
       with
      | Ok () -> ()
      | Error _ -> ignore (Virtio_blk.wait_all dev));
      if i mod 8 = 0 then ignore (Virtio_blk.poll dev)
    done;
    ignore (Virtio_blk.wait_all dev);
    Virtio_blk.set_hostile dev None;
    ignore (Virtio_blk.wait_all dev);
    Virtio_blk.error_count dev

(* The headline property: a full seeded fault sweep over all four
   devices never raises, and after the drain Driver_lint has nothing to
   say — no undefined state, no escaped DMA, no storm, no lost
   completion. *)
let test_hostile_sweep_survives () =
  let k = boot () in
  List.iter
    (fun seed ->
      with_clean_models (fun () ->
          let absorbed =
            hostile_nic_sweep ~seed ~steps:200 ~kind:`Ixgbe
            + hostile_nic_sweep ~seed:(seed + 1) ~steps:200 ~kind:`Virtio
            + hostile_blk_sweep ~seed:(seed + 2) ~steps:200 ~kind:`Nvme
            + hostile_blk_sweep ~seed:(seed + 3) ~steps:200 ~kind:`Virtio
          in
          checkb "some faults were absorbed as typed errors" true (absorbed > 0);
          checki "lint clean after drain" 0 (Driver_lint.lint k);
          checkb "no device left non-quiescent" true
            (List.for_all
               (fun m ->
                 m.Model.state <> Model.Undefined
                 && m.Model.delivered = m.Model.harvested)
               (Model.all ()))))
    [ 7; 101; 2026 ]

(* Hostile faults surface as Dev_fault flight-recorder events. *)
let test_hostile_faults_traced () =
  with_clean_models (fun () ->
      let recorder = Flight.create ~cpus:1 ~slots:256 ~slot_size:Event.slot_bytes in
      Sink.install (Sink.Flight recorder);
      Fun.protect
        ~finally:(fun () -> Sink.install Sink.Disabled)
        (fun () ->
          let absorbed = hostile_blk_sweep ~seed:5 ~steps:64 ~kind:`Nvme in
          let faults =
            List.filter
              (fun r ->
                match r.Event.ev with
                | Event.Dev_fault { device = 12; _ } -> true
                | _ -> false)
              (Sink.records ())
          in
          checkb "absorbed faults traced" true (absorbed > 0);
          checkb "Dev_fault events recorded" true (List.length faults > 0)))

(* ------------------------------------------------------------------ *)
(* Backend interchange: fault-free, virtio-net delivers exactly what
   ixgbe delivers, on the same virtual-clock timeline. *)

let nic_pump ~kind ~frames =
  let cost = Atmo_sim.Cost.default in
  let clock = Clock.create () in
  let slots = 8 in
  let device = match kind with `Ixgbe -> 11 | `Virtio -> 14 in
  let mem, iommu, span = mk_dev_env ~device in
  let buffers () = Array.init slots (fun _ -> (span 2048, 2048)) in
  let deliver, rx =
    match kind with
    | `Ixgbe ->
      let nic = Ixgbe.create mem iommu ~device ~clock ~cost in
      (match Ixgbe.setup_rx nic ~ring_iova:(span Phys_mem.page_size) ~buffers:(buffers ()) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Fault.error_to_string e));
      ((fun f -> Ixgbe.wire_deliver nic f), fun () -> Ixgbe.rx_burst nic ~max:slots)
    | `Virtio ->
      let nic = Virtio_net.create mem iommu ~device ~clock ~cost in
      (match Virtio_net.setup_rx nic ~ring_iova:(span Phys_mem.page_size) ~buffers:(buffers ()) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Fault.error_to_string e));
      ((fun f -> Virtio_net.wire_deliver nic f), fun () -> Virtio_net.rx_burst nic ~max:slots)
  in
  let got = ref [] in
  for i = 1 to frames do
    let frame = Bytes.make 64 (Char.chr (i mod 256)) in
    checkb "fault-free delivery accepted" true (deliver frame);
    if i mod 4 = 0 then got := List.rev_append (rx ()) !got
  done;
  let rec drain () =
    match rx () with
    | [] -> ()
    | fs ->
      got := List.rev_append fs !got;
      drain ()
  in
  drain ();
  (List.rev !got, Clock.now clock)

let test_nic_delivery_identity () =
  with_clean_models (fun () ->
      let ixg, ixg_cycles = nic_pump ~kind:`Ixgbe ~frames:64 in
      let vio, vio_cycles = nic_pump ~kind:`Virtio ~frames:64 in
      checki "ixgbe delivers every frame" 64 (List.length ixg);
      checkb "payloads bit-identical" true (ixg = vio);
      checki "cycle timelines identical" ixg_cycles vio_cycles)

(* The kv/Maglev workload is backend-agnostic: swapping nvme→virtio-blk
   or ixgbe→virtio-net moves neither a cycle nor a reply byte. *)
let test_kv_backend_identity () =
  with_clean_models (fun () ->
      let base = Kv_demo.run ~requests:8 () in
      let vblk = Kv_demo.run ~requests:8 ~blk:`Virtio () in
      let nixg = Kv_demo.run ~requests:8 ~nic:`Ixgbe () in
      let nvio = Kv_demo.run ~requests:8 ~nic:`Virtio () in
      checki "virtio-blk: same end cycles" base.Kv_demo.end_cycles vblk.Kv_demo.end_cycles;
      checkb "virtio-blk: same latencies" true
        (base.Kv_demo.latencies = vblk.Kv_demo.latencies);
      checkb "virtio-blk: same replies" true (base.Kv_demo.replies = vblk.Kv_demo.replies);
      checki "nic backends: same end cycles" nixg.Kv_demo.end_cycles nvio.Kv_demo.end_cycles;
      checkb "nic backends: same latencies" true
        (nixg.Kv_demo.latencies = nvio.Kv_demo.latencies);
      checkb "nic backends: same replies" true
        (nixg.Kv_demo.replies = nvio.Kv_demo.replies);
      checkb "wire path does not change reply bytes" true
        (base.Kv_demo.replies = nixg.Kv_demo.replies))

(* ------------------------------------------------------------------ *)
(* Virtio-blk basics: data round trip and the Queue_full typed error. *)

let test_virtio_blk_roundtrip () =
  with_clean_models (fun () ->
      let cost = Atmo_sim.Cost.default in
      let clock = Clock.create () in
      let mem, iommu, span = mk_dev_env ~device:13 in
      let dev = Virtio_blk.create mem iommu ~device:13 ~clock ~cost ~capacity_blocks:32 in
      let depth = 4 in
      let _, _, _, ring_bytes = Virtio_ring.layout ~qsz:(3 * depth) ~base:0 in
      (match
         Virtio_blk.setup dev
           ~ring_iova:(span ring_bytes)
           ~arena_iova:(span (depth * Virtio_blk.slot_bytes))
           ~depth
       with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Fault.error_to_string e));
      let block = Bytes.init Virtio_blk.block_bytes (fun i -> Char.chr (i mod 251)) in
      (match Virtio_blk.submit_write dev ~lba:3 ~data:block with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Fault.error_to_string e));
      ignore (Virtio_blk.wait_all dev);
      (match Virtio_blk.submit_read dev ~lba:3 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Fault.error_to_string e));
      (match Virtio_blk.wait_all dev with
      | [ c ] ->
        checkb "read ok" true c.Virtio_blk.ok;
        checkb "read returns written block" true (c.Virtio_blk.data = Some block)
      | cs -> Alcotest.failf "expected one completion, got %d" (List.length cs));
      (* fill the queue: depth submissions fit, one more is Queue_full *)
      for lba = 0 to depth - 1 do
        match Virtio_blk.submit_read dev ~lba with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Fault.error_to_string e)
      done;
      (match Virtio_blk.submit_read dev ~lba:9 with
      | Error Fault.Queue_full -> ()
      | Ok _ -> Alcotest.fail "over-depth submit accepted"
      | Error e -> Alcotest.failf "wrong error: %s" (Fault.error_to_string e));
      ignore (Virtio_blk.wait_all dev);
      (* lba bounds are typed errors, not exceptions *)
      match Virtio_blk.submit_read dev ~lba:99 with
      | Error (Fault.Lba_out_of_range _) -> ()
      | Ok _ -> Alcotest.fail "out-of-range lba accepted"
      | Error e -> Alcotest.failf "wrong error: %s" (Fault.error_to_string e))

let () =
  Alcotest.run "devmodel"
    [
      ( "fault",
        [
          Alcotest.test_case "codes and names" `Quick test_fault_codes;
          Alcotest.test_case "hostile determinism" `Quick test_hostile_determinism;
        ] );
      ("model", [ Alcotest.test_case "irq storm auto-mask" `Quick test_irq_storm_auto_mask ]);
      ( "hostile",
        [
          Alcotest.test_case "sweep survives" `Quick test_hostile_sweep_survives;
          Alcotest.test_case "faults traced" `Quick test_hostile_faults_traced;
        ] );
      ( "identity",
        [
          Alcotest.test_case "nic delivery" `Quick test_nic_delivery_identity;
          Alcotest.test_case "kv backends" `Quick test_kv_backend_identity;
        ] );
      ( "virtio-blk",
        [ Alcotest.test_case "roundtrip and typed errors" `Quick test_virtio_blk_roundtrip ] );
    ]
