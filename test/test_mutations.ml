(* Mutation testing of the verification hierarchy: for each invariant,
   inject a corruption that a correct checker must catch — and check
   that the *intended* obligation is the one that fires.  This is the
   executable analogue of making sure the proof obligations are not
   vacuous. *)

open Atmo_util
module Phys_mem = Atmo_hw.Phys_mem
module Mmu = Atmo_hw.Mmu
module Pte = Atmo_hw.Pte_bits
module Page_state = Atmo_pmem.Page_state
module Page_alloc = Atmo_pmem.Page_alloc
module Page_table = Atmo_pt.Page_table
module Pt_refine = Atmo_pt.Pt_refine
module Nros_pt = Atmo_pt.Nros_pt
module Perm_map = Atmo_pm.Perm_map
module Proc_mgr = Atmo_pm.Proc_mgr
module Container = Atmo_pm.Container
module Process = Atmo_pm.Process
module Thread = Atmo_pm.Thread
module Endpoint = Atmo_pm.Endpoint
module Pm_invariants = Atmo_pm.Pm_invariants
module Kernel = Atmo_core.Kernel
module Invariants = Atmo_core.Invariants
module Syscall = Atmo_spec.Syscall
module Catalog = Atmo_verif.Catalog

let checkb = Alcotest.(check bool)

let expect_fires what = function
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: corruption not detected" what

let expect_clean what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: unexpectedly dirty before mutation: %s" what msg

let world () =
  match Catalog.build_world ~scale:3 with
  | Ok (k, init) -> (k, init)
  | Error msg -> Alcotest.failf "world: %s" msg

let some_thread k =
  Iset.max_elt (Perm_map.dom k.Kernel.pm.Proc_mgr.thrd_perms)

let some_container k =
  Iset.max_elt (Perm_map.dom k.Kernel.pm.Proc_mgr.cntr_perms)

(* ------------------------------------------------------------------ *)
(* Page-table mutations: both the flat and the recursive checker must
   catch each one.                                                     *)

let pt_with_corruption corrupt =
  let pt = Catalog.build_pt ~mappings:64 in
  expect_clean "pt flat" (Pt_refine.all pt);
  expect_clean "pt recursive" (Nros_pt.all pt);
  corrupt pt;
  pt

let leaf_slot pt va =
  let mem = Page_table.mem pt in
  let read table index = Phys_mem.read_u64 mem ~addr:(Mmu.entry_addr ~table ~index) in
  let e4 = read (Page_table.cr3 pt) (Mmu.l4_index va) in
  let e3 = read (Pte.addr_of e4) (Mmu.l3_index va) in
  let e2 = read (Pte.addr_of e3) (Mmu.l2_index va) in
  Mmu.entry_addr ~table:(Pte.addr_of e2) ~index:(Mmu.l1_index va)

let test_pt_mutation_cleared_leaf () =
  let pt =
    pt_with_corruption (fun pt ->
        Phys_mem.write_u64 (Page_table.mem pt) ~addr:(leaf_slot pt 0x4000_0000)
          Pte.not_present)
  in
  expect_fires "flat refinement" (Pt_refine.refinement pt);
  expect_fires "recursive refinement" (Nros_pt.refinement pt)

let test_pt_mutation_redirected_leaf () =
  let pt =
    pt_with_corruption (fun pt ->
        Phys_mem.write_u64 (Page_table.mem pt) ~addr:(leaf_slot pt 0x4000_0000)
          (Pte.make ~addr:0x123000 ~perm:Pte.perm_rw ~huge:false))
  in
  expect_fires "flat refinement" (Pt_refine.refinement pt);
  expect_fires "recursive refinement" (Nros_pt.refinement pt)

let test_pt_mutation_perm_flip () =
  let pt =
    pt_with_corruption (fun pt ->
        let mem = Page_table.mem pt in
        let slot = leaf_slot pt 0x4000_0000 in
        let e = Phys_mem.read_u64 mem ~addr:slot in
        Phys_mem.write_u64 mem ~addr:slot
          (Pte.make ~addr:(Pte.addr_of e) ~perm:Pte.perm_ro ~huge:false))
  in
  expect_fires "flat refinement" (Pt_refine.refinement pt);
  expect_fires "recursive refinement" (Nros_pt.refinement pt)

let test_pt_mutation_table_cycle () =
  (* point an L2 slot back at the L3 table: the flat structure check
     sees a wrong-level reference; the hardware view also changes *)
  let pt =
    pt_with_corruption (fun pt ->
        let mem = Page_table.mem pt in
        let va = 0x4000_0000 in
        let read table index = Phys_mem.read_u64 mem ~addr:(Mmu.entry_addr ~table ~index) in
        let e4 = read (Page_table.cr3 pt) (Mmu.l4_index va) in
        let l3 = Pte.addr_of e4 in
        let e3 = read l3 (Mmu.l3_index va) in
        let l2 = Pte.addr_of e3 in
        Phys_mem.write_u64 mem
          ~addr:(Mmu.entry_addr ~table:l2 ~index:(Mmu.l2_index va))
          (Pte.make_table ~addr:l3))
  in
  expect_fires "flat structure" (Pt_refine.structure pt)

let test_pt_mutation_ghost_drift () =
  (* the ghost map claims a mapping the hardware does not have *)
  let pt = Catalog.build_pt ~mappings:16 in
  (* unmap through the API, then re-add only to the ghost side by
     mapping and clearing the concrete slot *)
  (match Page_table.unmap pt ~vaddr:0x4000_0000 with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "unmap");
  expect_clean "after unmap" (Pt_refine.all pt);
  (match Page_table.map_4k pt ~vaddr:0x4000_0000 ~frame:0x7000 ~perm:Pte.perm_rw with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "remap");
  Phys_mem.write_u64 (Page_table.mem pt) ~addr:(leaf_slot pt 0x4000_0000) Pte.not_present;
  expect_fires "flat refinement" (Pt_refine.refinement pt)

(* ------------------------------------------------------------------ *)
(* Allocator mutations                                                 *)

let test_alloc_mutation_double_state () =
  let mem = Phys_mem.create ~page_count:1024 in
  let a = Page_alloc.create mem ~reserved_frames:0 in
  let addr = Option.get (Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel) in
  expect_clean "alloc" (Page_alloc.wf a);
  (* free it and also keep using it: push the same frame twice by
     freeing twice is guarded, so corrupt through a merge instead —
     mark an allocated frame as if merged into a bogus head *)
  ignore addr;
  checkb "double free guarded" true
    (try
       Page_alloc.free_kernel_page a ~addr;
       Page_alloc.free_kernel_page a ~addr;
       false
     with Invalid_argument _ -> true)

let test_alloc_wf_catches_list_state_mismatch () =
  let mem = Phys_mem.create ~page_count:512 in
  let a = Page_alloc.create mem ~reserved_frames:0 in
  (* allocate, then put the page back on the free list via the public
     API while leaving a stale copy mapped: simulate by allocating a
     user page and freeing it while still "mapped" is prevented, so we
     check the wf over a legal state instead, then a corrupted one via
     inc_ref/dec_ref imbalance being impossible *)
  let p = Option.get (Page_alloc.alloc_4k a ~purpose:Page_alloc.User) in
  checkb "dec to freed" true (Page_alloc.dec_ref a ~addr:p = `Freed);
  checkb "second dec guarded" true
    (try
       ignore (Page_alloc.dec_ref a ~addr:p);
       false
     with Invalid_argument _ -> true);
  expect_clean "still wf" (Page_alloc.wf a)

(* ------------------------------------------------------------------ *)
(* Process-manager mutations: each targeted invariant fires            *)

let mutate_and_expect name mutate check =
  let k, _ = world () in
  expect_clean name (Pm_invariants.all k.Kernel.pm);
  mutate k;
  expect_fires name (check k.Kernel.pm)

let test_pm_mutation_path () =
  mutate_and_expect "path"
    (fun k ->
      Perm_map.update k.Kernel.pm.Proc_mgr.cntr_perms ~ptr:(some_container k)
        (fun c -> { c with Container.path = [ 0xdead000 ] }))
    Pm_invariants.path_wf

let test_pm_mutation_subtree () =
  mutate_and_expect "subtree"
    (fun k ->
      Perm_map.update k.Kernel.pm.Proc_mgr.cntr_perms
        ~ptr:k.Kernel.pm.Proc_mgr.root_container (fun c ->
          { c with Container.subtree = Iset.remove (some_container k) c.Container.subtree }))
    Pm_invariants.subtree_wf

let test_pm_mutation_orphan_child () =
  mutate_and_expect "parent/child"
    (fun k ->
      Perm_map.update k.Kernel.pm.Proc_mgr.cntr_perms
        ~ptr:k.Kernel.pm.Proc_mgr.root_container (fun c ->
          match Atmo_pm.Static_list.remove c.Container.children ~eq:( = ) (some_container k) with
          | Ok children -> { c with Container.children }
          | Error `Absent -> c))
    Pm_invariants.parent_child_wf

let test_pm_mutation_thread_owner () =
  mutate_and_expect "process tree"
    (fun k ->
      Perm_map.update k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:(some_thread k) (fun th ->
          { th with Thread.owner_proc = 0xbad000 }))
    Pm_invariants.process_tree_wf

let test_pm_mutation_runqueue () =
  mutate_and_expect "scheduler"
    (fun k -> Atmo_pm.Sched_queue.push_front (Proc_mgr.queue k.Kernel.pm ~cpu:0) 0xbad000)
    Pm_invariants.scheduler_wf

let test_pm_mutation_refcount () =
  mutate_and_expect "endpoints"
    (fun k ->
      Perm_map.iter
        (fun ep _ ->
          Perm_map.update k.Kernel.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
              { e with Endpoint.refcount = e.Endpoint.refcount + 1 }))
        k.Kernel.pm.Proc_mgr.edpt_perms)
    Pm_invariants.endpoints_wf

let test_pm_mutation_quota () =
  mutate_and_expect "quota"
    (fun k ->
      Perm_map.update k.Kernel.pm.Proc_mgr.cntr_perms ~ptr:(some_container k)
        (fun c -> { c with Container.used = c.Container.used + 3 }))
    Pm_invariants.quota_wf

(* ------------------------------------------------------------------ *)
(* Kernel-wide mutations: safety / leak freedom                        *)

let test_kernel_mutation_leak () =
  let k, _ = world () in
  expect_clean "kernel" (Invariants.total_wf k);
  (* allocate a page that no object owns: a leak *)
  ignore (Page_alloc.alloc_4k k.Kernel.alloc ~purpose:Page_alloc.Kernel);
  expect_fires "leak freedom" (Invariants.leak_freedom k)

let test_kernel_mutation_type_confusion () =
  let k, _ = world () in
  (* register the same page as both a "thread" and an "endpoint":
     pairwise disjointness of closures must fire *)
  let th = some_thread k in
  Perm_map.alloc k.Kernel.pm.Proc_mgr.edpt_perms ~ptr:th
    (Endpoint.make ~owner_container:(some_container k));
  expect_fires "closures disjoint" (Invariants.closures_disjoint k)

let test_kernel_mutation_mapped_drift () =
  let k, init = world () in
  (* map a page then corrupt the refcount by an extra inc *)
  (match Kernel.step k ~thread:init
           (Syscall.Mmap { va = 0x7770_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw })
   with
   | Syscall.Rmapped [ frame ] ->
     Page_alloc.inc_ref k.Kernel.alloc ~addr:frame;
     expect_fires "mapped consistency" (Invariants.mapped_consistent k)
   | r -> Alcotest.failf "mmap: %a" Syscall.pp_ret r)

let test_kernel_mutation_device () =
  let k, init = world () in
  (match Kernel.step k ~thread:init (Syscall.Assign_device { device = 3 }) with
   | Syscall.Runit -> ()
   | r -> Alcotest.failf "assign: %a" Syscall.pp_ret r);
  Atmo_hw.Iommu.detach k.Kernel.iommu ~device:3;
  expect_fires "devices wf" (Invariants.devices_wf k)

(* ------------------------------------------------------------------ *)
(* Sanitizer mutations: atmo-san must catch each planted bug with a
   typed report naming the rule and the faulting page.                 *)

module San_runtime = Atmo_san.Runtime
module San_report = Atmo_san.Report
module Lockcheck = Atmo_san.Lockcheck

let with_san ?(lockcheck = false) f =
  San_runtime.arm ~poison:true ~lockcheck ();
  Fun.protect ~finally:(fun () -> San_runtime.disarm ()) f

let san_find rule =
  List.find_opt (fun r -> r.San_report.rule = rule) (San_report.reports ())

let test_san_double_free () =
  with_san (fun () ->
      let mem = Phys_mem.create ~page_count:256 in
      let a = Page_alloc.create mem ~reserved_frames:0 in
      let addr = Option.get (Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel) in
      Page_alloc.free_kernel_page a ~addr;
      checkb "clean before plant" true (San_report.count () = 0);
      (* the allocator's own guard also fires; the sanitizer must have
         classified the request before that *)
      (try Page_alloc.free_kernel_page a ~addr with Invalid_argument _ -> ());
      match san_find San_report.Double_free with
      | None -> Alcotest.fail "double free not detected"
      | Some r -> Alcotest.(check int) "faulting page" addr r.San_report.page)

let test_san_use_after_free () =
  with_san (fun () ->
      let mem = Phys_mem.create ~page_count:256 in
      let a = Page_alloc.create mem ~reserved_frames:0 in
      let addr = Option.get (Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel) in
      Phys_mem.write_u64 mem ~addr 0xdeadL;  (* live: fine *)
      checkb "live store clean" true (San_report.count () = 0);
      Page_alloc.free_kernel_page a ~addr;
      ignore (Phys_mem.read_u64 mem ~addr);  (* dangling load *)
      match san_find San_report.Use_after_free with
      | None -> Alcotest.fail "use-after-free not detected"
      | Some r -> Alcotest.(check int) "faulting page" addr r.San_report.page)

let test_san_unlocked_mutation () =
  let k, init = world () in
  with_san ~lockcheck:true (fun () ->
      San_runtime.attach k;
      (* a bare Kernel.step: kernel state mutates inside a syscall while
         the big lock is free *)
      ignore
        (Kernel.step k ~thread:init
           (Syscall.Mmap { va = 0x6660_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw }));
      checkb "unlocked mutation detected" true
        (san_find San_report.Unlocked_mutation <> None);
      (* the same call under the lock is clean *)
      San_report.clear ();
      Lockcheck.locked ~site:"test.big_lock" ~cpu:0 (fun () ->
          ignore
            (Kernel.step k ~thread:init
               (Syscall.Munmap { va = 0x6660_0000; count = 1; size = Page_state.S4k })));
      checkb "locked step clean" true (San_report.count () = 0))

let test_san_malformed_pte () =
  let k, init = world () in
  with_san (fun () ->
      San_runtime.attach k;
      (match Kernel.step k ~thread:init
               (Syscall.Mmap { va = 0x7770_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw })
       with
       | Syscall.Rmapped _ -> ()
       | r -> Alcotest.failf "mmap: %a" Syscall.pp_ret r);
      Alcotest.(check int) "clean lint before plant" 0 (San_runtime.full_check k);
      let proc = Option.get (Kernel.proc_of_thread k ~thread:init) in
      let pt = (Perm_map.borrow k.Kernel.pm.Proc_mgr.proc_perms ~ptr:proc).Process.pt in
      let slot = leaf_slot pt 0x7770_0000 in
      let mem = Page_table.mem pt in
      let e = Phys_mem.read_u64 mem ~addr:slot in
      (* set a bit the kernel never programs (bit 9, "available") *)
      Phys_mem.write_u64 mem ~addr:slot (Int64.logor e 0x200L);
      ignore (Atmo_san.Pt_lint.lint k);
      match san_find San_report.Malformed_pte with
      | None -> Alcotest.fail "malformed PTE not detected"
      | Some r -> Alcotest.(check int) "faulting page" (Pte.addr_of e) r.San_report.page)

let test_san_stale_tlb () =
  let k, init = world () in
  with_san (fun () ->
      San_runtime.attach k;
      (match Kernel.step k ~thread:init
               (Syscall.Mmap { va = 0x7780_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw })
       with
       | Syscall.Rmapped _ -> ()
       | r -> Alcotest.failf "mmap: %a" Syscall.pp_ret r);
      (* warm the TLB, then check a well-behaved kernel is coherent *)
      checkb "translation resolves" true
        (Kernel.resolve_user k ~thread:init ~vaddr:0x7780_0000 <> None);
      Alcotest.(check int) "clean lint before plant" 0 (San_runtime.full_check k);
      (* missing-shootdown bug: clear the leaf PTE behind the TLB's back *)
      let proc = Option.get (Kernel.proc_of_thread k ~thread:init) in
      let pt = (Perm_map.borrow k.Kernel.pm.Proc_mgr.proc_perms ~ptr:proc).Process.pt in
      let slot = leaf_slot pt 0x7780_0000 in
      Phys_mem.write_u64 (Page_table.mem pt) ~addr:slot Pte.not_present;
      checkb "lint fires" true (Atmo_san.Tlb_lint.lint k > 0);
      match san_find San_report.Tlb_stale with
      | None -> Alcotest.fail "stale TLB entry not detected"
      | Some _ -> ())

let test_san_fastpath_skip () =
  (* boot a plain two-thread kernel and park the second thread in Recv:
     current sender, parked receiver, empty run queue — the exact
     fastpath precondition.  Then plant the fastpath bug that forgets to
     requeue the preempted sender: both the structural invariant and the
     scheduler lint must catch the stranded Runnable thread. *)
  let k, init =
    match Kernel.boot Kernel.default_boot with
    | Ok v -> v
    | Error e -> Alcotest.failf "boot: %a" Atmo_util.Errno.pp e
  in
  let t2 =
    match Kernel.step k ~thread:init Syscall.New_thread with
    | Syscall.Rptr t -> t
    | r -> Alcotest.failf "new_thread: %a" Syscall.pp_ret r
  in
  (match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
   | Syscall.Rptr _ -> ()
   | r -> Alcotest.failf "new_endpoint: %a" Syscall.pp_ret r);
  let ep =
    Option.get (Thread.slot (Perm_map.borrow k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:init) 0)
  in
  Perm_map.update k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:t2 (fun th ->
      Thread.set_slot th 0 (Some ep));
  Perm_map.update k.Kernel.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
      { e with Endpoint.refcount = e.Endpoint.refcount + 1 });
  (match Kernel.step k ~thread:t2 (Syscall.Recv { slot = 0 }) with
   | Syscall.Rblocked -> ()
   | r -> Alcotest.failf "recv should block: %a" Syscall.pp_ret r);
  with_san (fun () ->
      San_runtime.attach k;
      checkb "clean lint before plant" true (Atmo_san.Sched_lint.lint k = 0);
      Kernel.set_fastpath_skip_plant true;
      Fun.protect
        ~finally:(fun () -> Kernel.set_fastpath_skip_plant false)
        (fun () ->
          match
            Kernel.step k ~thread:init
              (Syscall.Send { slot = 0; msg = Atmo_pm.Message.scalars_only [ 1 ] })
          with
          | Syscall.Runit -> ()
          | r -> Alcotest.failf "send: %a" Syscall.pp_ret r);
      expect_fires "scheduler_wf" (Pm_invariants.all k.Kernel.pm);
      checkb "lint fires" true (Atmo_san.Sched_lint.lint k > 0);
      match san_find San_report.Sched_incoherent with
      | None -> Alcotest.fail "fastpath skip not detected"
      | Some _ -> ())

let test_san_span_leak () =
  (* same parked-receiver setup as the fastpath test, but under a live
     flight recorder: force the rendezvous onto the slowpath and make it
     drop the span's end — the span-balance lint must flag the span
     still open at quiescence. *)
  let k, init =
    match Kernel.boot Kernel.default_boot with
    | Ok v -> v
    | Error e -> Alcotest.failf "boot: %a" Atmo_util.Errno.pp e
  in
  let t2 =
    match Kernel.step k ~thread:init Syscall.New_thread with
    | Syscall.Rptr t -> t
    | r -> Alcotest.failf "new_thread: %a" Syscall.pp_ret r
  in
  (match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
   | Syscall.Rptr _ -> ()
   | r -> Alcotest.failf "new_endpoint: %a" Syscall.pp_ret r);
  let ep =
    Option.get (Thread.slot (Perm_map.borrow k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:init) 0)
  in
  Perm_map.update k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:t2 (fun th ->
      Thread.set_slot th 0 (Some ep));
  Perm_map.update k.Kernel.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
      { e with Endpoint.refcount = e.Endpoint.refcount + 1 });
  (match Kernel.step k ~thread:t2 (Syscall.Recv { slot = 0 }) with
   | Syscall.Rblocked -> ()
   | r -> Alcotest.failf "recv should block: %a" Syscall.pp_ret r);
  let module Obs_sink = Atmo_obs.Sink in
  let recorder =
    Atmo_obs.Flight.create ~cpus:1 ~slots:64 ~slot_size:Atmo_obs.Event.slot_bytes
  in
  Atmo_obs.Span.reset ();
  Obs_sink.install (Obs_sink.Flight recorder);
  Fun.protect
    ~finally:(fun () ->
      Obs_sink.install Obs_sink.Disabled;
      Atmo_obs.Span.reset ())
    (fun () ->
      with_san (fun () ->
          San_runtime.attach k;
          checkb "clean lint before plant" true (Atmo_san.Span_lint.lint k = 0);
          Kernel.set_fastpath false;
          Kernel.set_span_leak_plant true;
          Fun.protect
            ~finally:(fun () ->
              Kernel.set_span_leak_plant false;
              Kernel.set_fastpath true)
            (fun () ->
              match
                Kernel.step k ~thread:init
                  (Syscall.Send { slot = 0; msg = Atmo_pm.Message.scalars_only [ 1 ] })
              with
              | Syscall.Runit -> ()
              | r -> Alcotest.failf "send: %a" Syscall.pp_ret r);
          checkb "lint fires" true (Atmo_san.Span_lint.lint k > 0);
          match san_find San_report.Span_leak with
          | None -> Alcotest.fail "span leak not detected"
          | Some _ -> ()))

let test_san_stale_proof () =
  (* a mutation the dirty tracker never observes: the layer's intrinsic
     counter advances past the tracker's, and the stale-proof lint must
     file exactly that divergence *)
  let module Incremental = Atmo_verif.Incremental in
  let k, init = world () in
  Incremental.arm ();
  Fun.protect
    ~finally:(fun () ->
      Incremental.disarm ();
      San_report.clear ())
    (fun () ->
      San_report.clear ();
      checkb "clean before plant" true (Atmo_san.Proof_lint.lint k = 0);
      (* observed mutations stay clean: the tracker sees what the layer counts *)
      ignore (Kernel.step k ~thread:init Syscall.Yield);
      checkb "observed mutation is not stale" true (Atmo_san.Proof_lint.lint k = 0);
      (* plant: drop the dirty marks while the intrinsic counters advance
         (an identity update still counts as a mutation of the map) *)
      Incremental.set_miss_plant true;
      Fun.protect
        ~finally:(fun () -> Incremental.set_miss_plant false)
        (fun () ->
          Perm_map.update k.Atmo_core.Kernel.pm.Proc_mgr.thrd_perms ~ptr:init
            (fun t -> t));
      checkb "lint fires" true (Atmo_san.Proof_lint.lint k > 0);
      match san_find San_report.Stale_proof with
      | None -> Alcotest.fail "stale proof not detected"
      | Some r ->
        checkb "filed at proof_lint" true (r.San_report.site = "proof_lint"))

let test_san_lost_completion () =
  (* a driver that silently drops a completion the device posted: the
     ledger ends with delivered > harvested, and Driver_lint must file
     drv-lost-completion at quiescence *)
  let module Model = Atmo_devmodel.Model in
  let module Nvme = Atmo_drivers.Nvme in
  let k, _init = world () in
  Model.reset ();
  Fun.protect ~finally:(fun () -> Model.reset ())
    (fun () ->
      with_san (fun () ->
          San_runtime.attach k;
          let clock = Atmo_hw.Clock.create () in
          let dev = Nvme.create ~clock ~cost:Atmo_sim.Cost.default ~capacity_blocks:16 in
          Nvme.set_device dev 9;
          (* a drained well-behaved driver is clean *)
          (match Nvme.submit_read dev ~lba:1 with
           | Ok _ -> ()
           | Error e -> Alcotest.fail (Atmo_devmodel.Fault.error_to_string e));
          ignore (Nvme.wait_all dev);
          checkb "clean lint before plant" true (Atmo_san.Driver_lint.lint k = 0);
          (* plant the bug, lose exactly one completion *)
          Nvme.set_drop_completion_plant dev true;
          (match Nvme.submit_read dev ~lba:2 with
           | Ok _ -> ()
           | Error e -> Alcotest.fail (Atmo_devmodel.Fault.error_to_string e));
          ignore (Nvme.wait_all dev);
          checkb "lint fires" true (Atmo_san.Driver_lint.lint k > 0);
          match san_find San_report.Drv_lost_completion with
          | None -> Alcotest.fail "lost completion not detected"
          | Some r ->
            checkb "report names the device model" true
              (r.San_report.site = "driver_lint.nvme0")))

(* ------------------------------------------------------------------ *)
(* Spec mutations: a wrong return value must violate the spec          *)

let test_spec_catches_wrong_ret () =
  let k, init = world () in
  let pre = Atmo_core.Abstraction.abstract k in
  let ret =
    Kernel.step k ~thread:init
      (Syscall.Mmap { va = 0x7770_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw })
  in
  let post = Atmo_core.Abstraction.abstract k in
  (* the true transition passes *)
  (match Atmo_spec.Syscall_spec.check ~pre ~post ~thread:init
           (Syscall.Mmap { va = 0x7770_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw })
           ret
   with
   | Ok () -> ()
   | Error m -> Alcotest.failf "true transition rejected: %s" m);
  (* lying about the mapped frame fails the spec *)
  expect_fires "wrong frames"
    (Atmo_spec.Syscall_spec.check ~pre ~post ~thread:init
       (Syscall.Mmap { va = 0x7770_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw })
       (Syscall.Rmapped [ 0x123000 ]));
  (* claiming an error after a successful (state-changing) call fails
     the error-atomicity clause *)
  expect_fires "phantom error"
    (Atmo_spec.Syscall_spec.check ~pre ~post ~thread:init
       (Syscall.Mmap { va = 0x7770_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw })
       (Syscall.Rerr Errno.Enomem))

let test_spec_catches_hidden_effect () =
  let k, init = world () in
  let pre = Atmo_core.Abstraction.abstract k in
  let ret = Kernel.step k ~thread:init Syscall.Yield in
  (* secretly also bump a quota: the yield spec's frame condition fires *)
  Perm_map.update k.Kernel.pm.Proc_mgr.cntr_perms ~ptr:(some_container k) (fun c ->
      { c with Container.used = c.Container.used + 1 });
  let post = Atmo_core.Abstraction.abstract k in
  expect_fires "hidden effect"
    (Atmo_spec.Syscall_spec.check ~pre ~post ~thread:init Syscall.Yield ret)

let () =
  Alcotest.run "mutations"
    [
      ( "page_table",
        [
          Alcotest.test_case "cleared leaf" `Quick test_pt_mutation_cleared_leaf;
          Alcotest.test_case "redirected leaf" `Quick test_pt_mutation_redirected_leaf;
          Alcotest.test_case "perm flip" `Quick test_pt_mutation_perm_flip;
          Alcotest.test_case "table cycle" `Quick test_pt_mutation_table_cycle;
          Alcotest.test_case "ghost drift" `Quick test_pt_mutation_ghost_drift;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "double free guarded" `Quick test_alloc_mutation_double_state;
          Alcotest.test_case "refcount guarded" `Quick
            test_alloc_wf_catches_list_state_mismatch;
        ] );
      ( "process_manager",
        [
          Alcotest.test_case "path" `Quick test_pm_mutation_path;
          Alcotest.test_case "subtree" `Quick test_pm_mutation_subtree;
          Alcotest.test_case "orphan child" `Quick test_pm_mutation_orphan_child;
          Alcotest.test_case "thread owner" `Quick test_pm_mutation_thread_owner;
          Alcotest.test_case "run queue" `Quick test_pm_mutation_runqueue;
          Alcotest.test_case "refcount" `Quick test_pm_mutation_refcount;
          Alcotest.test_case "quota" `Quick test_pm_mutation_quota;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "leak" `Quick test_kernel_mutation_leak;
          Alcotest.test_case "type confusion" `Quick test_kernel_mutation_type_confusion;
          Alcotest.test_case "mapped drift" `Quick test_kernel_mutation_mapped_drift;
          Alcotest.test_case "device" `Quick test_kernel_mutation_device;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "double free" `Quick test_san_double_free;
          Alcotest.test_case "use after free" `Quick test_san_use_after_free;
          Alcotest.test_case "unlocked mutation" `Quick test_san_unlocked_mutation;
          Alcotest.test_case "malformed pte" `Quick test_san_malformed_pte;
          Alcotest.test_case "stale tlb" `Quick test_san_stale_tlb;
          Alcotest.test_case "fastpath skip" `Quick test_san_fastpath_skip;
          Alcotest.test_case "span leak" `Quick test_san_span_leak;
        Alcotest.test_case "lost completion" `Quick test_san_lost_completion;
        Alcotest.test_case "stale proof" `Quick test_san_stale_proof;
        ] );
      ( "spec",
        [
          Alcotest.test_case "wrong return" `Quick test_spec_catches_wrong_ret;
          Alcotest.test_case "hidden effect" `Quick test_spec_catches_hidden_effect;
        ] );
    ]
