(* Kernel integration: boot, all system calls, total_wf after every
   transition, atomic failure, leak freedom at teardown. *)

open Atmo_util
module Syscall = Atmo_spec.Syscall
module Kernel = Atmo_core.Kernel
module Invariants = Atmo_core.Invariants
module Abstraction = Atmo_core.Abstraction
module A = Atmo_spec.Abstract_state
module Message = Atmo_pm.Message
module Thread = Atmo_pm.Thread
module Page_state = Atmo_pmem.Page_state
module Pte = Atmo_hw.Pte_bits
module Perm_map = Atmo_pm.Perm_map
module Proc_mgr = Atmo_pm.Proc_mgr

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let expect_wf k =
  match Invariants.total_wf k with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "total_wf broken: %s" msg

let boot () =
  match Kernel.boot Kernel.default_boot with
  | Ok (k, init) -> (k, init)
  | Error e -> Alcotest.failf "boot failed: %a" Errno.pp e

let step = Kernel.step

let ptr what = function
  | Syscall.Rptr p -> p
  | r -> Alcotest.failf "%s: expected pointer, got %a" what Syscall.pp_ret r

let ok what = function
  | Syscall.Runit -> ()
  | r -> Alcotest.failf "%s: expected unit, got %a" what Syscall.pp_ret r

let expect_err what e = function
  | Syscall.Rerr got when Errno.equal got e -> ()
  | r -> Alcotest.failf "%s: expected %a, got %a" what Errno.pp e Syscall.pp_ret r

let va0 = 0x4000_0000

let mmap ?(count = 1) ?(size = Page_state.S4k) ?(va = va0) k th =
  step k ~thread:th (Syscall.Mmap { va; count; size; perm = Pte.perm_rw })

(* ------------------------------------------------------------------ *)

let test_boot_loader () =
  (* boot from a firmware memory map, as the trusted boot stage does *)
  let map = Atmo_hw.E820.typical_pc ~total_mib:64 in
  match Atmo_core.Boot_loader.boot map ~kernel_image_frames:64 ~cpus:(Iset.of_range ~lo:0 ~hi:4) with
  | Ok (k, init) ->
    checkb "init alive" true (Kernel.thread_alive k ~thread:init);
    expect_wf k;
    (* the derived quota is honored end to end: a huge mmap is refused
       by quota, not by a crash *)
    (match step k ~thread:init
             (Syscall.Mmap { va = va0; count = 512; size = Page_state.S2m; perm = Pte.perm_rw })
     with
     | Syscall.Rerr (Errno.Equota | Errno.Enomem) -> ()
     | r -> Alcotest.failf "expected quota refusal, got %a" Syscall.pp_ret r)
  | Error msg -> Alcotest.failf "boot loader: %s" msg

let test_boot_loader_rejects_tiny_map () =
  let tiny = [ { Atmo_hw.E820.base = 0; len = 64 * 4096; kind = Atmo_hw.E820.Usable } ] in
  checkb "too small" true
    (Result.is_error
       (Atmo_core.Boot_loader.plan tiny ~kernel_image_frames:60
          ~cpus:(Iset.singleton 0)))

let test_boot_wf () =
  let k, init = boot () in
  checkb "init thread alive" true (Kernel.thread_alive k ~thread:init);
  checkb "init is current" true (Proc_mgr.current k.Kernel.pm = Some init);
  expect_wf k

let test_mmap_munmap () =
  let k, init = boot () in
  (match mmap ~count:4 k init with
   | Syscall.Rmapped frames ->
     checki "four frames" 4 (List.length frames);
     checkb "resolves" true (Kernel.resolve_user k ~thread:init ~vaddr:(va0 + 5) <> None)
   | r -> Alcotest.failf "mmap: %a" Syscall.pp_ret r);
  expect_wf k;
  ok "munmap"
    (step k ~thread:init (Syscall.Munmap { va = va0; count = 4; size = Page_state.S4k }));
  checkb "faults after" true (Kernel.resolve_user k ~thread:init ~vaddr:va0 = None);
  expect_wf k

let test_mmap_2m () =
  let k, init = boot () in
  (match mmap ~size:Page_state.S2m ~va:0x4000_0000 k init with
   | Syscall.Rmapped [ frame ] ->
     checkb "2m aligned frame" true (frame mod (512 * 4096) = 0)
   | r -> Alcotest.failf "mmap 2m: %a" Syscall.pp_ret r);
  expect_wf k

let test_mmap_rejects_bad_args () =
  let k, init = boot () in
  expect_err "unaligned" Errno.Einval
    (step k ~thread:init
       (Syscall.Mmap { va = va0 + 1; count = 1; size = Page_state.S4k; perm = Pte.perm_rw }));
  expect_err "zero count" Errno.Einval
    (step k ~thread:init
       (Syscall.Mmap { va = va0; count = 0; size = Page_state.S4k; perm = Pte.perm_rw }));
  expect_err "non-canonical" Errno.Einval
    (step k ~thread:init
       (Syscall.Mmap { va = 1 lsl 50; count = 1; size = Page_state.S4k; perm = Pte.perm_rw }));
  ignore (mmap k init);
  expect_err "overlap" Errno.Eexist (mmap k init);
  expect_err "dead thread" Errno.Esrch (mmap k 0xdead000);
  expect_wf k

let test_mmap_failure_is_atomic () =
  (* exhaust quota so a multi-page mmap fails after partial progress
     would have happened; the abstract state must be untouched *)
  let k, init = boot () in
  let before = Abstraction.abstract k in
  expect_err "too big for quota" Errno.Equota
    (step k ~thread:init
       (Syscall.Mmap { va = va0; count = 512; size = Page_state.S2m; perm = Pte.perm_rw }));
  checkb "state unchanged" true (A.equal before (Abstraction.abstract k));
  expect_wf k

let test_mprotect () =
  let k, init = boot () in
  ignore (mmap k init);
  ok "mprotect" (step k ~thread:init (Syscall.Mprotect { va = va0; perm = Pte.perm_ro }));
  (match Kernel.resolve_user k ~thread:init ~vaddr:va0 with
   | Some tr -> checkb "now ro" false tr.Atmo_hw.Mmu.perm.Pte.write
   | None -> Alcotest.fail "fault");
  expect_err "unmapped" Errno.Einval
    (step k ~thread:init (Syscall.Mprotect { va = va0 + 4096; perm = Pte.perm_ro }));
  expect_wf k

let test_lifecycle_syscalls () =
  let k, init = boot () in
  let c = ptr "container" (step k ~thread:init (Syscall.New_container { quota = 100; cpus = Iset.empty })) in
  ignore c;
  let p = ptr "process" (step k ~thread:init Syscall.New_process) in
  ignore p;
  let t2 = ptr "thread" (step k ~thread:init Syscall.New_thread) in
  checkb "t2 queued" true (List.mem t2 (Proc_mgr.run_queue_list k.Kernel.pm));
  let ep = ptr "endpoint" (step k ~thread:init (Syscall.New_endpoint { slot = 0 })) in
  ignore ep;
  expect_wf k;
  ok "close endpoint" (step k ~thread:init (Syscall.Close_endpoint { slot = 0 }));
  expect_wf k

let test_ipc_rendezvous () =
  let k, init = boot () in
  let t2 = ptr "thread" (step k ~thread:init Syscall.New_thread) in
  ignore (ptr "endpoint" (step k ~thread:init (Syscall.New_endpoint { slot = 0 })));
  (* share the endpoint descriptor with t2 directly (as a spawner would
     arrange); grants over IPC are tested separately *)
  (match step k ~thread:init (Syscall.Send { slot = 0; msg = Message.scalars_only [ 1; 2; 3 ] }) with
   | Syscall.Rblocked -> ()
   | r -> Alcotest.failf "send should block (no receiver): %a" Syscall.pp_ret r);
  expect_wf k;
  (* t2 has no descriptor yet: give it one by kernel-internal setup *)
  Perm_map.update k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:t2 (fun th ->
      Thread.set_slot th 1
        (Thread.slot (Perm_map.borrow k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:init) 0));
  (match Thread.slot (Perm_map.borrow k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:init) 0 with
   | Some ep ->
     Perm_map.update k.Kernel.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
         { e with Atmo_pm.Endpoint.refcount = e.Atmo_pm.Endpoint.refcount + 1 })
   | None -> Alcotest.fail "no endpoint");
  expect_wf k;
  (match step k ~thread:t2 (Syscall.Recv { slot = 1 }) with
   | Syscall.Rmsg m -> Alcotest.(check (list int)) "payload" [ 1; 2; 3 ] m.Message.scalars
   | r -> Alcotest.failf "recv: %a" Syscall.pp_ret r);
  (* sender woke up and took the CPU (direct switch), the receiver was
     preempted to the run queue *)
  (match Perm_map.borrow k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:init with
   | th -> checkb "sender running" true (th.Thread.state = Thread.Running));
  checkb "sender current" true (Proc_mgr.current k.Kernel.pm = Some init);
  checkb "receiver requeued" true
    (Proc_mgr.run_queue_list k.Kernel.pm = [ t2 ]);
  expect_wf k

let test_ipc_page_grant () =
  let k, init = boot () in
  ignore (mmap k init);
  (* spawn a second process with its own thread, wire up an endpoint *)
  let p2 = ptr "p2" (step k ~thread:init Syscall.New_process) in
  ignore p2;
  let t2 =
    match Proc_mgr.new_thread k.Kernel.pm ~proc:p2 with
    | Ok t -> t
    | Error e -> Alcotest.failf "t2: %a" Errno.pp e
  in
  let ep = ptr "ep" (step k ~thread:init (Syscall.New_endpoint { slot = 0 })) in
  Perm_map.update k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:t2 (fun th ->
      Thread.set_slot th 0 (Some ep));
  Perm_map.update k.Kernel.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
      { e with Atmo_pm.Endpoint.refcount = e.Atmo_pm.Endpoint.refcount + 1 });
  expect_wf k;
  (* receiver blocks first, then sender grants its page *)
  (match step k ~thread:t2 (Syscall.Recv { slot = 0 }) with
   | Syscall.Rblocked -> ()
   | r -> Alcotest.failf "recv should block: %a" Syscall.pp_ret r);
  let dst = 0x5000_0000 in
  let msg =
    {
      Message.scalars = [ 42 ];
      page = Some { Message.src_vaddr = va0; dst_vaddr = dst };
      endpoint = None;
    }
  in
  ok "send with grant" (step k ~thread:init (Syscall.Send { slot = 0; msg }));
  expect_wf k;
  (* both map the same frame now *)
  (match (Kernel.resolve_user k ~thread:init ~vaddr:va0,
          Kernel.resolve_user k ~thread:t2 ~vaddr:dst) with
   | Some a, Some b -> checki "same frame" a.Atmo_hw.Mmu.frame b.Atmo_hw.Mmu.frame
   | _ -> Alcotest.fail "grant did not map");
  (* woken receiver carries the message *)
  (match Kernel.take_delivered k ~thread:t2 with
   | Some m -> Alcotest.(check (list int)) "scalars" [ 42 ] m.Message.scalars
   | None -> Alcotest.fail "no delivered message")

let test_ipc_endpoint_grant () =
  let k, init = boot () in
  let p2 = ptr "p2" (step k ~thread:init Syscall.New_process) in
  let t2 =
    match Proc_mgr.new_thread k.Kernel.pm ~proc:p2 with
    | Ok t -> t
    | Error e -> Alcotest.failf "t2: %a" Errno.pp e
  in
  let ep = ptr "ep" (step k ~thread:init (Syscall.New_endpoint { slot = 0 })) in
  let ep2 = ptr "ep2" (step k ~thread:init (Syscall.New_endpoint { slot = 1 })) in
  Perm_map.update k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:t2 (fun th ->
      Thread.set_slot th 0 (Some ep));
  Perm_map.update k.Kernel.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
      { e with Atmo_pm.Endpoint.refcount = e.Atmo_pm.Endpoint.refcount + 1 });
  (match step k ~thread:t2 (Syscall.Recv { slot = 0 }) with
   | Syscall.Rblocked -> ()
   | r -> Alcotest.failf "recv should block: %a" Syscall.pp_ret r);
  let msg =
    {
      Message.scalars = [];
      page = None;
      endpoint = Some { Message.src_slot = 1; dst_slot = 5 };
    }
  in
  ok "send endpoint grant" (step k ~thread:init (Syscall.Send { slot = 0; msg }));
  (match Thread.slot (Perm_map.borrow k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:t2) 5 with
   | Some got -> checki "endpoint installed" ep2 got
   | None -> Alcotest.fail "no endpoint in slot 5");
  expect_wf k

let test_yield_round_robin () =
  let k, init = boot () in
  let t2 = ptr "t2" (step k ~thread:init Syscall.New_thread) in
  ok "yield" (step k ~thread:init Syscall.Yield);
  checkb "t2 scheduled" true (Proc_mgr.current k.Kernel.pm = Some t2);
  ok "yield back" (step k ~thread:t2 Syscall.Yield);
  checkb "init scheduled" true (Proc_mgr.current k.Kernel.pm = Some init);
  expect_wf k

let test_terminate_container_revokes () =
  let k, init = boot () in
  let c = ptr "c" (step k ~thread:init (Syscall.New_container { quota = 100; cpus = Iset.empty })) in
  (* populate the container from the kernel side *)
  let p =
    match Proc_mgr.new_process k.Kernel.pm ~container:c ~parent:None with
    | Ok p -> p
    | Error e -> Alcotest.failf "p: %a" Errno.pp e
  in
  ignore (Proc_mgr.new_thread k.Kernel.pm ~proc:p);
  expect_wf k;
  ok "terminate" (step k ~thread:init (Syscall.Terminate_container { container = c }));
  checkb "container gone" false (Perm_map.mem k.Kernel.pm.Proc_mgr.cntr_perms ~ptr:c);
  expect_wf k;
  (* capability: a foreign container cannot be terminated *)
  let c2 = ptr "c2" (step k ~thread:init (Syscall.New_container { quota = 50; cpus = Iset.empty })) in
  let p2 =
    match Proc_mgr.new_process k.Kernel.pm ~container:c2 ~parent:None with
    | Ok p -> p
    | Error e -> Alcotest.failf "p2: %a" Errno.pp e
  in
  let t2 =
    match Proc_mgr.new_thread k.Kernel.pm ~proc:p2 with
    | Ok t -> t
    | Error e -> Alcotest.failf "t2: %a" Errno.pp e
  in
  expect_err "child cannot kill sibling/self-container" Errno.Eperm
    (step k ~thread:t2 (Syscall.Terminate_container { container = c2 }))

let test_terminate_process_capability () =
  let k, init = boot () in
  let p2 = ptr "p2" (step k ~thread:init Syscall.New_process) in
  ok "parent kills child" (step k ~thread:init (Syscall.Terminate_process { proc = p2 }));
  expect_wf k;
  let p3 = ptr "p3" (step k ~thread:init Syscall.New_process) in
  let t3 =
    match Proc_mgr.new_thread k.Kernel.pm ~proc:p3 with
    | Ok t -> t
    | Error e -> Alcotest.failf "t3: %a" Errno.pp e
  in
  (* child cannot kill its parent *)
  (match Kernel.proc_of_thread k ~thread:init with
   | Some init_proc ->
     expect_err "child cannot kill parent" Errno.Eperm
       (step k ~thread:t3 (Syscall.Terminate_process { proc = init_proc }))
   | None -> Alcotest.fail "init proc");
  expect_wf k

let test_assign_device () =
  let k, init = boot () in
  ok "assign" (step k ~thread:init (Syscall.Assign_device { device = 3 }));
  expect_err "already assigned" Errno.Eexist
    (step k ~thread:init (Syscall.Assign_device { device = 3 }));
  expect_wf k;
  (* the device starts with an empty DMA window: nothing translates *)
  ignore (mmap k init);
  checkb "empty window faults" true
    (Atmo_hw.Iommu.translate k.Kernel.iommu ~device:3 ~iova:0x9000_0000 = None);
  (* exposing the frame behind va0 opens exactly that window *)
  ok "io_map" (step k ~thread:init (Syscall.Io_map { device = 3; iova = 0x9000_0000; va = va0 }));
  expect_wf k;
  (match
     ( Atmo_hw.Iommu.translate k.Kernel.iommu ~device:3 ~iova:0x9000_0000,
       Kernel.resolve_user k ~thread:init ~vaddr:va0 )
   with
   | Some io, Some cpu -> checki "window shares the frame" cpu.Atmo_hw.Mmu.frame io.Atmo_hw.Mmu.frame
   | _ -> Alcotest.fail "io window did not open");
  expect_err "double io_map" Errno.Eexist
    (step k ~thread:init (Syscall.Io_map { device = 3; iova = 0x9000_0000; va = va0 }));
  expect_err "unmapped source" Errno.Einval
    (step k ~thread:init (Syscall.Io_map { device = 3; iova = 0x9001_0000; va = 0x7777_0000 }));
  (* the frame survives munmap while the device still references it *)
  ok "munmap source"
    (step k ~thread:init (Syscall.Munmap { va = va0; count = 1; size = Page_state.S4k }));
  expect_wf k;
  checkb "device still translates" true
    (Atmo_hw.Iommu.translate k.Kernel.iommu ~device:3 ~iova:0x9000_0000 <> None);
  ok "io_unmap" (step k ~thread:init (Syscall.Io_unmap { device = 3; iova = 0x9000_0000 }));
  expect_wf k;
  (* the device and its IOMMU table die with the owning process *)
  let p2 = ptr "p2" (step k ~thread:init Syscall.New_process) in
  let t2 =
    match Proc_mgr.new_thread k.Kernel.pm ~proc:p2 with
    | Ok t -> t
    | Error e -> Alcotest.failf "t2: %a" Errno.pp e
  in
  ok "assign to p2" (step k ~thread:t2 (Syscall.Assign_device { device = 9 }));
  (match step k ~thread:t2 (Syscall.Mmap { va = va0; count = 1; size = Page_state.S4k; perm = Pte.perm_rw }) with
   | Syscall.Rmapped _ -> ()
   | r -> Alcotest.failf "t2 mmap: %a" Syscall.pp_ret r);
  ok "t2 io_map" (step k ~thread:t2 (Syscall.Io_map { device = 9; iova = 0x9000_0000; va = va0 }));
  (* only the owner may program the device *)
  expect_err "foreign io_map" Errno.Eperm
    (step k ~thread:init (Syscall.Io_map { device = 9; iova = 0x9002_0000; va = va0 }));
  expect_wf k;
  ok "kill p2" (step k ~thread:init (Syscall.Terminate_process { proc = p2 }));
  checkb "device 9 detached" true
    (Atmo_hw.Iommu.domain_of k.Kernel.iommu ~device:9 = None);
  expect_wf k

let test_interrupt_dispatch () =
  let k, init = boot () in
  ok "assign" (step k ~thread:init (Syscall.Assign_device { device = 2 }));
  ignore (ptr "ep" (step k ~thread:init (Syscall.New_endpoint { slot = 0 })));
  (* only the owner may register, and only once *)
  ok "register" (step k ~thread:init (Syscall.Register_irq { device = 2; slot = 0 }));
  expect_err "double register" Errno.Eexist
    (step k ~thread:init (Syscall.Register_irq { device = 2; slot = 0 }));
  expect_err "bogus device" Errno.Esrch
    (step k ~thread:init (Syscall.Register_irq { device = 9; slot = 0 }));
  expect_wf k;
  (* an interrupt with no receiver pends; the next receive picks it up *)
  ok "fire pends" (step k ~thread:init (Syscall.Irq_fire { device = 2 }));
  ok "fire pends again" (step k ~thread:init (Syscall.Irq_fire { device = 2 }));
  expect_wf k;
  (match step k ~thread:init (Syscall.Recv { slot = 0 }) with
   | Syscall.Rmsg m -> Alcotest.(check (list int)) "irq payload" [ 2 ] m.Message.scalars
   | r -> Alcotest.failf "recv pending irq: %a" Syscall.pp_ret r);
  (match step k ~thread:init (Syscall.Recv_nb { slot = 0 }) with
   | Syscall.Rmsg m -> Alcotest.(check (list int)) "second pending" [ 2 ] m.Message.scalars
   | r -> Alcotest.failf "recv_nb pending irq: %a" Syscall.pp_ret r);
  expect_wf k;
  (* drained: now the receiver blocks, and a fresh interrupt wakes it *)
  (match step k ~thread:init (Syscall.Recv { slot = 0 }) with
   | Syscall.Rblocked -> ()
   | r -> Alcotest.failf "should block: %a" Syscall.pp_ret r);
  ok "fire wakes" (step k ~thread:init (Syscall.Irq_fire { device = 2 }));
  expect_wf k;
  (match Kernel.take_delivered k ~thread:init with
   | Some m -> Alcotest.(check (list int)) "woken with irq" [ 2 ] m.Message.scalars
   | None -> Alcotest.fail "no delivery");
  (* spurious interrupts are dropped silently *)
  ok "spurious" (step k ~thread:init (Syscall.Irq_fire { device = 7 }));
  expect_wf k

let test_interrupt_route_dies_with_endpoint () =
  let k, init = boot () in
  ok "assign" (step k ~thread:init (Syscall.Assign_device { device = 1 }));
  ignore (ptr "ep" (step k ~thread:init (Syscall.New_endpoint { slot = 3 })));
  ok "register" (step k ~thread:init (Syscall.Register_irq { device = 1; slot = 3 }));
  ok "fire" (step k ~thread:init (Syscall.Irq_fire { device = 1 }));
  ok "close" (step k ~thread:init (Syscall.Close_endpoint { slot = 3 }));
  expect_wf k;
  (* the route (and its pending count) died with the endpoint *)
  (match Imap.find_opt 1 k.Kernel.devices with
   | Some d ->
     checkb "unrouted" true (d.Kernel.irq_endpoint = None);
     checki "pending cleared" 0 d.Kernel.irq_pending
   | None -> Alcotest.fail "device gone");
  (* rebinding works after the route is cleared *)
  ignore (ptr "ep2" (step k ~thread:init (Syscall.New_endpoint { slot = 3 })));
  ok "re-register" (step k ~thread:init (Syscall.Register_irq { device = 1; slot = 3 }));
  expect_wf k

let test_blocked_thread_cannot_syscall () =
  let k, init = boot () in
  ignore (ptr "ep" (step k ~thread:init (Syscall.New_endpoint { slot = 0 })));
  (match step k ~thread:init (Syscall.Recv { slot = 0 }) with
   | Syscall.Rblocked -> ()
   | r -> Alcotest.failf "recv should block: %a" Syscall.pp_ret r);
  expect_err "blocked thread trapped" Errno.Eperm (step k ~thread:init Syscall.Yield);
  expect_wf k

let test_mmap_1g_superpage () =
  (* a machine big enough for a 1 GiB superpage: 1.1 GiB of (sparse)
     physical memory *)
  let boot_params =
    {
      Kernel.frames = 540_000;
      reserved_frames = 16;
      root_quota = 530_000;
      cpus = Iset.of_range ~lo:0 ~hi:4;
    }
  in
  let k, init =
    match Kernel.boot boot_params with
    | Ok v -> v
    | Error e -> Alcotest.failf "boot: %a" Errno.pp e
  in
  (match
     step k ~thread:init
       (Syscall.Mmap
          { va = 1 lsl 39; count = 1; size = Page_state.S1g; perm = Pte.perm_rw })
   with
   | Syscall.Rmapped [ frame ] ->
     checkb "1G aligned" true (frame mod (512 * 512 * 4096) = 0);
     (* resolves anywhere inside the gigabyte *)
     (match Kernel.resolve_user k ~thread:init ~vaddr:((1 lsl 39) + 0x1234_5678) with
      | Some tr ->
        checki "1G translation size" (512 * 512 * 4096) tr.Atmo_hw.Mmu.size;
        checki "offset preserved" (frame + 0x1234_5678) tr.Atmo_hw.Mmu.paddr
      | None -> Alcotest.fail "1G mapping does not resolve")
   | r -> Alcotest.failf "mmap 1G: %a" Syscall.pp_ret r);
  expect_wf k;
  ok "munmap 1G"
    (step k ~thread:init (Syscall.Munmap { va = 1 lsl 39; count = 1; size = Page_state.S1g }));
  expect_wf k

let test_leak_freedom_full_teardown () =
  (* build a small world, tear all of it down, and check the allocator
     returns to the boot configuration *)
  let k, init = boot () in
  let free0 = Atmo_pmem.Page_alloc.free_count_4k k.Kernel.alloc in
  let c = ptr "c" (step k ~thread:init (Syscall.New_container { quota = 200; cpus = Iset.empty })) in
  let p =
    match Proc_mgr.new_process k.Kernel.pm ~container:c ~parent:None with
    | Ok p -> p
    | Error e -> Alcotest.failf "p: %a" Errno.pp e
  in
  let t =
    match Proc_mgr.new_thread k.Kernel.pm ~proc:p with
    | Ok t -> t
    | Error e -> Alcotest.failf "t: %a" Errno.pp e
  in
  (match step k ~thread:t (Syscall.Mmap { va = va0; count = 8; size = Page_state.S4k; perm = Pte.perm_rw }) with
   | Syscall.Rmapped _ -> ()
   | r -> Alcotest.failf "mmap in c: %a" Syscall.pp_ret r);
  ignore (ptr "ep" (step k ~thread:t (Syscall.New_endpoint { slot = 0 })));
  expect_wf k;
  ok "terminate" (step k ~thread:init (Syscall.Terminate_container { container = c }));
  expect_wf k;
  checki "all frames recovered" free0 (Atmo_pmem.Page_alloc.free_count_4k k.Kernel.alloc)

let () =
  Atmo_san.Runtime.arm_of_env ();
  Alcotest.run ~and_exit:false "kernel"
    [
      ( "boot",
        [
          Alcotest.test_case "boot wf" `Quick test_boot_wf;
          Alcotest.test_case "boot loader from e820" `Quick test_boot_loader;
          Alcotest.test_case "boot loader rejects tiny map" `Quick
            test_boot_loader_rejects_tiny_map;
        ] );
      ( "memory",
        [
          Alcotest.test_case "mmap/munmap" `Quick test_mmap_munmap;
          Alcotest.test_case "mmap 2m" `Quick test_mmap_2m;
          Alcotest.test_case "mmap 1g superpage" `Quick test_mmap_1g_superpage;
          Alcotest.test_case "bad args rejected" `Quick test_mmap_rejects_bad_args;
          Alcotest.test_case "failure atomic" `Quick test_mmap_failure_is_atomic;
          Alcotest.test_case "mprotect" `Quick test_mprotect;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "create syscalls" `Quick test_lifecycle_syscalls;
          Alcotest.test_case "terminate container" `Quick test_terminate_container_revokes;
          Alcotest.test_case "terminate process capability" `Quick
            test_terminate_process_capability;
          Alcotest.test_case "leak freedom at teardown" `Quick
            test_leak_freedom_full_teardown;
        ] );
      ( "ipc",
        [
          Alcotest.test_case "rendezvous" `Quick test_ipc_rendezvous;
          Alcotest.test_case "page grant" `Quick test_ipc_page_grant;
          Alcotest.test_case "endpoint grant" `Quick test_ipc_endpoint_grant;
          Alcotest.test_case "blocked cannot syscall" `Quick
            test_blocked_thread_cannot_syscall;
        ] );
      ( "scheduling",
        [ Alcotest.test_case "yield round robin" `Quick test_yield_round_robin ] );
      ( "devices",
        [
          Alcotest.test_case "assign device" `Quick test_assign_device;
          Alcotest.test_case "interrupt dispatch" `Quick test_interrupt_dispatch;
          Alcotest.test_case "route dies with endpoint" `Quick
            test_interrupt_route_dies_with_endpoint;
        ] );
    ];
  Atmo_san.Runtime.exit_check ()
