(* Verification machinery: obligations, the runner (sequential and
   multi-domain), the catalog, and effort accounting. *)

module Obligation = Atmo_verif.Obligation
module Runner = Atmo_verif.Runner
module Catalog = Atmo_verif.Catalog
module Effort = Atmo_verif.Effort
module Pt_refine = Atmo_pt.Pt_refine
module Nros_pt = Atmo_pt.Nros_pt

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ok_obl name = Obligation.make ~name ~group:"t" (fun () -> Ok ())
let fail_obl name = Obligation.make ~name ~group:"t" (fun () -> Error "broken")
let raise_obl name = Obligation.make ~name ~group:"t" (fun () -> failwith "boom")

let test_discharge () =
  let r = Obligation.discharge (ok_obl "a") in
  checkb "ok" true r.Obligation.ok;
  let r = Obligation.discharge (fail_obl "b") in
  checkb "fail" false r.Obligation.ok;
  checkb "detail" true (r.Obligation.detail = Some "broken");
  let r = Obligation.discharge (raise_obl "c") in
  checkb "exception contained" false r.Obligation.ok

let test_runner_sequential () =
  let report = Runner.run [ ok_obl "a"; fail_obl "b"; ok_obl "c" ] in
  checki "three results" 3 (List.length report.Runner.results);
  checkb "not all ok" false (Runner.all_ok report);
  checki "one failure" 1 (List.length (Runner.failures report))

let test_runner_parallel_matches () =
  let obls = List.init 12 (fun i -> if i mod 5 = 0 then fail_obl (string_of_int i) else ok_obl (string_of_int i)) in
  let seq = Runner.run ~threads:1 obls in
  let par = Runner.run ~threads:3 obls in
  checki "same count" (List.length seq.Runner.results) (List.length par.Runner.results);
  let names r =
    List.sort compare
      (List.map (fun (x : Obligation.result) -> (x.Obligation.name, x.Obligation.ok)) r.Runner.results)
  in
  checkb "same verdicts" true (names seq = names par)

let test_by_group () =
  let obls =
    [ Obligation.make ~name:"a" ~group:"g1" (fun () -> Ok ());
      Obligation.make ~name:"b" ~group:"g2" (fun () -> Ok ());
      Obligation.make ~name:"c" ~group:"g1" (fun () -> Ok ()) ]
  in
  match Runner.by_group obls with
  | [ ("g1", g1); ("g2", g2) ] ->
    checki "g1 size" 2 (List.length g1);
    checki "g2 size" 1 (List.length g2)
  | other -> Alcotest.failf "unexpected grouping (%d groups)" (List.length other)

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)

let test_catalog_pt_suites_pass () =
  let pt = Catalog.build_pt ~mappings:600 in
  let flat = Runner.run (Catalog.pt_obligations_flat pt) in
  let rec_ = Runner.run (Catalog.pt_obligations_recursive pt) in
  checkb "flat ok" true (Runner.all_ok flat);
  checkb "recursive ok" true (Runner.all_ok rec_)

let test_catalog_world_wf () =
  match Catalog.build_world ~scale:3 with
  | Error msg -> Alcotest.failf "world: %s" msg
  | Ok (k, _) ->
    let report = Runner.run (Catalog.kernel_obligations k) in
    checkb "kernel obligations discharge" true (Runner.all_ok report);
    checkb "plenty of obligations" true (List.length report.Runner.results >= 15)

let test_catalog_full_suite () =
  match Catalog.full_suite ~scale:2 with
  | Error msg -> Alcotest.failf "suite: %s" msg
  | Ok suite ->
    checkb "page-table, kernel and spec obligations present" true
      (List.exists (fun (o : Obligation.t) -> o.Obligation.group = "pt-flat") suite
       && List.exists (fun (o : Obligation.t) -> o.Obligation.group = "kernel") suite
       && List.exists (fun (o : Obligation.t) -> o.Obligation.group = "spec") suite)

let test_catalog_detects_corruption () =
  (* corrupting the populated world must flip at least one obligation *)
  match Catalog.build_world ~scale:2 with
  | Error msg -> Alcotest.failf "world: %s" msg
  | Ok (k, _) ->
    Atmo_pm.Perm_map.update k.Atmo_core.Kernel.pm.Atmo_pm.Proc_mgr.cntr_perms
      ~ptr:k.Atmo_core.Kernel.pm.Atmo_pm.Proc_mgr.root_container (fun c ->
        { c with Atmo_pm.Container.used = c.Atmo_pm.Container.used + 1 });
    let report = Runner.run (Catalog.kernel_obligations k) in
    checkb "corruption detected" false (Runner.all_ok report)

let test_catalog_spec_obligations_discharge () =
  (* a representative sample of the per-syscall transition-spec
     obligations (the full set runs in the bench harness) *)
  let wanted = [ "spec/mmap"; "spec/send"; "spec/terminate_container"; "spec/io_map" ] in
  let obls =
    List.filter
      (fun (o : Obligation.t) -> List.mem o.Obligation.name wanted)
      (Catalog.syscall_obligations ~scale:2)
  in
  checki "all four found" 4 (List.length obls);
  let report = Runner.run obls in
  List.iter
    (fun (r : Obligation.result) ->
      if not r.Obligation.ok then
        Alcotest.failf "%s failed: %s" r.Obligation.name
          (Option.value ~default:"?" r.Obligation.detail))
    report.Runner.results

(* ------------------------------------------------------------------ *)
(* Obligation-name uniqueness and the incremental runner               *)

let test_unique_names_guard () =
  (* two obligations sharing a name would make the verdict cache
     ambiguous: the runner must refuse the suite outright *)
  let dup = [ ok_obl "a"; ok_obl "b"; ok_obl "a" ] in
  (match Runner.run dup with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "duplicate obligation name accepted");
  checkb "unique suite accepted" true
    (Runner.all_ok (Runner.run [ ok_obl "a"; ok_obl "b" ]))

let test_incremental_matches_full () =
  (* seeded random syscall traces: after every burst the incremental
     verdicts must be bit-identical to an oracle full re-check, and a
     single-syscall mutation must re-discharge a strict subset *)
  let module Incremental = Atmo_verif.Incremental in
  let module Harness = Atmo_verif.Refine_harness in
  let module Kernel = Atmo_core.Kernel in
  let module Syscall = Atmo_spec.Syscall in
  match Catalog.build_world ~scale:2 with
  | Error msg -> Alcotest.failf "world: %s" msg
  | Ok (k, init) ->
    let suite = Catalog.suite_for ~scale:2 k in
    let n = List.length suite in
    let verdicts (r : Runner.report) =
      List.map
        (fun (x : Obligation.result) ->
          (x.Obligation.name, x.Obligation.ok, x.Obligation.detail))
        r.Runner.results
    in
    Incremental.arm ();
    Fun.protect ~finally:Incremental.disarm (fun () ->
        let full = Incremental.run ~threads:1 suite in
        checki "first run discharges everything" n full.Runner.rechecked;
        let rng = Random.State.make [| 0xA7705 |] in
        for _burst = 1 to 3 do
          (* a seeded burst of plausible-but-arbitrary system calls *)
          for _step = 1 to 5 do
            match Harness.random_thread rng k with
            | None -> ()
            | Some thread ->
              ignore (Kernel.step k ~thread (Harness.random_call rng k ~thread))
          done;
          let inc = Incremental.run ~threads:1 suite in
          let oracle = Runner.run ~threads:1 suite in
          checkb "incremental verdicts bit-identical to full oracle" true
            (verdicts inc = verdicts oracle);
          (* the oracle ran outside [suspend]: its scratch worlds fired
             the hooks, so ack that noise before the next burst *)
          ignore (Incremental.run ~threads:1 suite)
        done;
        (* single-syscall mutation: a yield touches only the thread
           permission map, so the re-check set is a strict subset *)
        ignore (Kernel.step k ~thread:init Syscall.Yield);
        let inc = Incremental.run ~threads:1 suite in
        checkb "strict subset re-checked" true
          (inc.Runner.rechecked > 0 && inc.Runner.rechecked < n);
        checkb "within the 20%% re-check budget" true
          (5 * inc.Runner.rechecked <= n);
        checkb "reused the rest from cache" true
          (inc.Runner.rechecked + inc.Runner.reused = n))

let test_refine_annotations_cover_targets () =
  (* every annotated container type contributes at least one
     obligation, and every annotation names a machine-readable read set *)
  let module Refine = Atmo_verif.Refine in
  let module Incremental = Atmo_verif.Incremental in
  let anns = Refine.annotations () in
  checkb "plenty of annotations" true (List.length anns >= 15);
  List.iter
    (fun (a : Refine.annotation) ->
      checkb (a.Refine.name ^ " has reads") true (a.Refine.reads <> []))
    anns;
  let targets = List.sort_uniq compare (List.map (fun a -> a.Refine.target) anns) in
  List.iter
    (fun t -> checkb (t ^ " annotated") true (List.mem t targets))
    [ Incremental.pm_id "cntr_perms"; Incremental.alloc_id; Incremental.pt_id ]

(* ------------------------------------------------------------------ *)
(* Flat vs recursive agreement                                         *)

let test_flat_recursive_agree () =
  let pt = Catalog.build_pt ~mappings:800 in
  checkb "flat passes" true (Pt_refine.all pt = Ok ());
  checkb "recursive passes" true (Nros_pt.all pt = Ok ());
  checkb "interps equal" true
    (List.sort compare (Nros_pt.interp pt)
     = List.sort compare (Atmo_pt.Page_table.walk_concrete pt))

(* ------------------------------------------------------------------ *)
(* Effort                                                              *)

let test_table1_data () =
  checki "seven systems" 7 (List.length Effort.table1);
  let atmo = List.find (fun r -> r.Effort.system = "Atmosphere") Effort.table1 in
  checkb "atmo ratio" true (abs_float (atmo.Effort.ratio -. 3.32) < 0.01);
  let sel4 = List.find (fun r -> r.Effort.system = "seL4") Effort.table1 in
  checkb "ordering preserved" true (sel4.Effort.ratio > atmo.Effort.ratio)

let test_fig3_series_shape () =
  let s = Effort.fig3_series in
  checki "14 months" 14 (List.length s);
  let final = List.nth s 13 in
  checki "final exec LoC" 6000 final.Effort.exec_loc;
  checki "final proof LoC" 20100 final.Effort.proof_loc;
  (* clean-slate rewrites drop the line count *)
  let at n = List.nth s n in
  checkb "v2 rewrite drops" true ((at 2).Effort.exec_loc < (at 1).Effort.exec_loc);
  checkb "v3 rewrite drops" true ((at 10).Effort.exec_loc < (at 9).Effort.exec_loc);
  checkb "v3 keeps ~50%" true
    (float_of_int (at 10).Effort.exec_loc /. float_of_int (at 9).Effort.exec_loc > 0.4)

let test_measure_repo () =
  (* dune runs tests from the build dir; point at the source root *)
  let root =
    if Sys.file_exists "lib" then "."
    else if Sys.file_exists "../../../lib" then "../../.."
    else "."
  in
  match Effort.measure_repo ~root with
  | Some s ->
    checkb "found spec lines" true (s.Effort.spec_lines > 1000);
    checkb "found exec lines" true (s.Effort.exec_lines > 1000);
    checkb "ratio positive" true (s.Effort.ratio > 0.)
  | None -> () (* sources not reachable in this environment: acceptable *)

let () =
  Alcotest.run "verif"
    [
      ( "runner",
        [
          Alcotest.test_case "discharge" `Quick test_discharge;
          Alcotest.test_case "sequential" `Quick test_runner_sequential;
          Alcotest.test_case "parallel matches" `Quick test_runner_parallel_matches;
          Alcotest.test_case "by group" `Quick test_by_group;
          Alcotest.test_case "unique names guard" `Quick test_unique_names_guard;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "matches full oracle" `Quick test_incremental_matches_full;
          Alcotest.test_case "annotations cover targets" `Quick
            test_refine_annotations_cover_targets;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "pt suites pass" `Quick test_catalog_pt_suites_pass;
          Alcotest.test_case "world wf" `Quick test_catalog_world_wf;
          Alcotest.test_case "full suite groups" `Quick test_catalog_full_suite;
          Alcotest.test_case "detects corruption" `Quick test_catalog_detects_corruption;
          Alcotest.test_case "spec obligations discharge" `Quick
            test_catalog_spec_obligations_discharge;
          Alcotest.test_case "flat/recursive agree" `Quick test_flat_recursive_agree;
        ] );
      ( "effort",
        [
          Alcotest.test_case "table1 data" `Quick test_table1_data;
          Alcotest.test_case "fig3 shape" `Quick test_fig3_series_shape;
          Alcotest.test_case "measure repo" `Quick test_measure_repo;
        ] );
    ]
