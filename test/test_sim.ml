(* Cycle model and shared-memory rings: calibration identities and the
   throughput shapes of the evaluation configurations. *)

module Cost = Atmo_sim.Cost
module Pipeline = Atmo_sim.Pipeline
module Ring = Atmo_sim.Ring
module Clock = Atmo_hw.Clock
module Phys_mem = Atmo_hw.Phys_mem

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let cost = Cost.default

(* ------------------------------------------------------------------ *)
(* Cost calibration                                                    *)

let test_table3_calibration () =
  checki "atmo call/reply = 1058" 1058 (Cost.atmo_call_reply cost);
  checki "atmo map page = 1984" 1984 cost.Cost.map_page;
  checki "sel4 call/reply = 1026" 1026 cost.Cost.sel4_call_reply;
  checki "sel4 map page = 2650" 2650 cost.Cost.sel4_map_page

let test_seconds_conversion () =
  checkb "2.2e9 cycles = 1s" true
    (abs_float (Cost.seconds_of_cycles cost 2_200_000_000 -. 1.0) < 1e-9);
  checkb "per_second inverse" true
    (abs_float (Cost.per_second cost ~cycles_per_item:2.2e9 -. 1.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Pipeline shapes                                                     *)

let mpps config ~app =
  Pipeline.throughput ~cost ~app_cycles:app ~driver_cycles:cost.Cost.driver_per_packet
    ~device_cap:cost.Cost.nic_line_rate_pps config
  /. 1e6

let test_fig4_shape () =
  let linux = Atmo_baselines.Linux_model.packet_pps cost ~app_cycles:56 /. 1e6 in
  let b1 = mpps (Pipeline.Atmo_c1 1) ~app:56 in
  let b32 = mpps (Pipeline.Atmo_c1 32) ~app:56 in
  let direct = mpps Pipeline.Atmo_driver ~app:56 in
  let c2 = mpps Pipeline.Atmo_c2 ~app:56 in
  (* who wins, in the paper's order *)
  checkb "linux < c1-b1" true (linux < b1);
  checkb "c1-b1 < c1-b32" true (b1 < b32);
  checkb "c1-b32 < line rate" true (b32 < 14.2);
  checkb "direct at line rate" true (abs_float (direct -. 14.2) < 0.01);
  checkb "c2 at line rate" true (abs_float (c2 -. 14.2) < 0.01);
  (* rough magnitudes from the paper *)
  checkb "linux ~0.9" true (linux > 0.7 && linux < 1.1);
  checkb "b1 in 1.5..3" true (b1 > 1.5 && b1 < 3.0);
  checkb "b32 in 9..13" true (b32 > 9.0 && b32 < 13.0)

let test_batching_amortizes_ipc () =
  (* doubling the batch strictly reduces the per-item cost, approaching
     the no-IPC cost *)
  let cpp b =
    Pipeline.cycles_per_item ~cost ~app_cycles:56
      ~driver_cycles:cost.Cost.driver_per_packet (Pipeline.Atmo_c1 b)
  in
  checkb "monotone" true (cpp 1 > cpp 2 && cpp 2 > cpp 8 && cpp 8 > cpp 64);
  let floor =
    Pipeline.cycles_per_item ~cost ~app_cycles:56
      ~driver_cycles:cost.Cost.driver_per_packet Pipeline.Atmo_driver
  in
  checkb "approaches direct + ring" true (cpp 1024 -. floor < 40.)

let test_fig5_shape () =
  let lr b = Atmo_baselines.Linux_model.nvme_read_iops cost ~batch:b in
  let sr = Atmo_baselines.Dpdk_model.nvme_read_iops cost ~batch:1 in
  checkb "linux read b1 ~13K" true (abs_float (lr 1 -. 13_000.) /. 13_000. < 0.05);
  checkb "linux read b32 cpu bound ~141K" true
    (abs_float (lr 32 -. 141_000.) /. 141_000. < 0.05);
  checkb "spdk at device cap" true (abs_float (sr -. cost.Cost.nvme_read_cap_iops) < 1.);
  let lw32 = Atmo_baselines.Linux_model.nvme_write_iops cost ~batch:32 in
  checkb "linux write b32 within 3% of 256K" true
    (lw32 > 0.97 *. cost.Cost.nvme_write_cap_iops)

let test_fig6_shape () =
  let linux = Atmo_baselines.Linux_model.packet_pps cost ~app_cycles:150 /. 1e6 in
  let dpdk = Atmo_baselines.Dpdk_model.packet_pps cost ~app_cycles:150 /. 1e6 in
  let c2 = mpps Pipeline.Atmo_c2 ~app:150 in
  let b1 = mpps (Pipeline.Atmo_c1 1) ~app:150 in
  let b32 = mpps (Pipeline.Atmo_c1 32) ~app:150 in
  (* the paper's headline: atmo-c2 beats even DPDK (pipelining), DPDK
     beats c1-b32, and everything beats linux *)
  checkb "c2 > dpdk" true (c2 > dpdk);
  checkb "dpdk > b32" true (dpdk > b32);
  checkb "b32 > b1" true (b32 > b1);
  checkb "b1 > linux" true (b1 > linux)

let test_fig6_httpd_shape () =
  let nginx = Atmo_baselines.Nginx_model.requests_per_second cost ~request_work:20000 in
  let atmo =
    cost.Cost.frequency_hz /. float_of_int (20000 + cost.Cost.atmo_httpd_overhead)
  in
  checkb "httpd beats nginx" true (atmo > nginx);
  checkb "ratio ~1.4" true (atmo /. nginx > 1.25 && atmo /. nginx < 1.6)

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)

let mk_ring ?(slots = 8) () =
  let mem = Phys_mem.create ~page_count:4 in
  let clock = Clock.create () in
  (Ring.create mem ~base:0 ~slots ~slot_size:64 ~clock ~cost, clock)

let test_ring_fifo () =
  let r, _ = mk_ring () in
  checkb "push a" true (Ring.push r (Bytes.of_string "a"));
  checkb "push b" true (Ring.push r (Bytes.of_string "b"));
  (match (Ring.pop r, Ring.pop r, Ring.pop r) with
   | Some a, Some b, None ->
     checkb "fifo order" true (Bytes.get a 0 = 'a' && Bytes.get b 0 = 'b')
   | _ -> Alcotest.fail "pop sequence")

let test_ring_full () =
  let r, _ = mk_ring ~slots:4 () in
  for i = 0 to 3 do
    checkb "push fits" true (Ring.push r (Bytes.make 1 (Char.chr (65 + i))))
  done;
  checkb "full rejects" false (Ring.push r (Bytes.of_string "x"));
  checkb "is_full" true (Ring.is_full r);
  ignore (Ring.pop r);
  checkb "push after pop" true (Ring.push r (Bytes.of_string "y"))

let test_ring_wraps () =
  let r, _ = mk_ring ~slots:4 () in
  for lap = 0 to 19 do
    checkb "push" true (Ring.push r (Bytes.make 1 (Char.chr (65 + (lap mod 26)))));
    match Ring.pop r with
    | Some b -> checkb "lap data" true (Bytes.get b 0 = Char.chr (65 + (lap mod 26)))
    | None -> Alcotest.fail "pop"
  done;
  checki "empty at end" 0 (Ring.length r)

let test_ring_charges_cycles () =
  let r, clock = mk_ring () in
  let before = Clock.now clock in
  ignore (Ring.push r (Bytes.of_string "a"));
  ignore (Ring.pop r);
  checki "two ring ops" (2 * cost.Cost.ring_op) (Clock.now clock - before)

let test_ring_lives_in_shared_memory () =
  (* a second ring handle over the same physical page sees the data:
     that is what "shared memory" means here *)
  let mem = Phys_mem.create ~page_count:4 in
  let c1 = Clock.create () and c2 = Clock.create () in
  let producer = Ring.create mem ~base:0 ~slots:8 ~slot_size:64 ~clock:c1 ~cost in
  let consumer = Ring.create mem ~base:0 ~slots:8 ~slot_size:64 ~clock:c2 ~cost in
  checkb "producer pushes" true (Ring.push producer (Bytes.of_string "cross"));
  (match Ring.pop consumer with
   | Some b -> checkb "consumer sees it" true (Bytes.sub_string b 0 5 = "cross")
   | None -> Alcotest.fail "nothing in shared ring")

let prop_ring_model =
  QCheck.Test.make ~name:"ring matches a queue model" ~count:100
    QCheck.(list (option (int_bound 255)))
    (fun ops ->
      let r, _ = mk_ring ~slots:8 () in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some byte ->
            let pushed = Ring.push r (Bytes.make 1 (Char.chr byte)) in
            if Queue.length model < 8 then begin
              Queue.add byte model;
              pushed
            end
            else not pushed
          | None ->
            (match (Ring.pop r, Queue.take_opt model) with
             | Some b, Some expect -> Char.code (Bytes.get b 0) = expect
             | None, None -> true
             | _ -> false))
        ops)

(* ------------------------------------------------------------------ *)
(* SMP under the big lock                                              *)

module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Smp = Atmo_sim.Smp

let smp_world n_threads =
  let k, init =
    match Kernel.boot Kernel.default_boot with
    | Ok v -> v
    | Error e -> Alcotest.failf "boot: %a" Atmo_util.Errno.pp e
  in
  let threads =
    init
    :: List.init (n_threads - 1) (fun _ ->
           match Kernel.step k ~thread:init Atmo_spec.Syscall.New_thread with
           | Syscall.Rptr t -> t
           | r -> Alcotest.failf "thread: %a" Syscall.pp_ret r)
  in
  (k, threads)

let yield_prog thread =
  { Smp.thread; think_cycles = 100; call_of = (fun _ -> Syscall.Yield) }

let test_smp_executes_real_syscalls () =
  let k, threads = smp_world 2 in
  let programs = List.map yield_prog threads in
  match Smp.run k ~cost ~cpus:2 ~programs ~iterations:10 with
  | Ok s ->
    checki "all calls executed" 20 s.Smp.syscalls_executed;
    checkb "wall time positive" true (s.Smp.wall_cycles > 0);
    (match Atmo_core.Invariants.total_wf k with
     | Ok () -> ()
     | Error m -> Alcotest.failf "kernel unwell after smp run: %s" m)
  | Error m -> Alcotest.fail m

let test_smp_placement_least_loaded () =
  let k, threads = smp_world 4 in
  let programs = List.map yield_prog threads in
  match Smp.run k ~cost ~cpus:2 ~programs ~iterations:1 with
  | Ok s ->
    let on cpu = List.length (List.filter (fun (_, c) -> c = cpu) s.Smp.placement) in
    checki "balanced placement" 2 (on 0);
    checki "balanced placement'" 2 (on 1)
  | Error m -> Alcotest.fail m

let test_smp_respects_reservations () =
  (* a container reserved to CPU 1: its thread must land there, and a
     machine without CPU 1 must refuse it *)
  let k, init = match Kernel.boot Kernel.default_boot with
    | Ok v -> v
    | Error e -> Alcotest.failf "boot: %a" Atmo_util.Errno.pp e
  in
  let cntr =
    match Kernel.step k ~thread:init
            (Syscall.New_container { quota = 32; cpus = Atmo_util.Iset.singleton 1 })
    with
    | Syscall.Rptr c -> c
    | r -> Alcotest.failf "container: %a" Syscall.pp_ret r
  in
  let proc =
    match Atmo_pm.Proc_mgr.new_process k.Kernel.pm ~container:cntr ~parent:None with
    | Ok p -> p
    | Error e -> Alcotest.failf "proc: %a" Atmo_util.Errno.pp e
  in
  let th =
    match Atmo_pm.Proc_mgr.new_thread k.Kernel.pm ~proc with
    | Ok t -> t
    | Error e -> Alcotest.failf "thread: %a" Atmo_util.Errno.pp e
  in
  (match Smp.run k ~cost ~cpus:4 ~programs:[ yield_prog th ] ~iterations:1 with
   | Ok s -> checkb "pinned to cpu 1" true (List.assoc th s.Smp.placement = 1)
   | Error m -> Alcotest.fail m);
  match Smp.run k ~cost ~cpus:1 ~programs:[ yield_prog th ] ~iterations:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reservation violated: cpu 1 does not exist"

let test_smp_big_lock_saturates () =
  (* kernel-heavy workload: adding CPUs cannot scale past the big lock *)
  let run cpus =
    let k, threads = smp_world cpus in
    let programs = List.map yield_prog threads in
    match Smp.run k ~cost ~cpus ~programs ~iterations:50 with
    | Ok s -> Smp.throughput s
    | Error m -> Alcotest.fail m
  in
  let t1 = run 1 and t4 = run 4 in
  checkb "4 CPUs do not give 4x under the big lock" true (t4 < 2.5 *. t1);
  (* think-heavy workload: user time runs in parallel, so scaling is
     close to linear *)
  let run_thinky cpus =
    let k, threads = smp_world cpus in
    let programs =
      List.map
        (fun th -> { Smp.thread = th; think_cycles = 50_000; call_of = (fun _ -> Syscall.Yield) })
        threads
    in
    match Smp.run k ~cost ~cpus ~programs ~iterations:20 with
    | Ok s -> Smp.throughput s
    | Error m -> Alcotest.fail m
  in
  let u1 = run_thinky 1 and u4 = run_thinky 4 in
  checkb "think-heavy scales" true (u4 > 3.0 *. u1)

let test_smp_lock_wait_accounted () =
  let k, threads = smp_world 4 in
  let programs = List.map yield_prog threads in
  match Smp.run k ~cost ~cpus:4 ~programs ~iterations:20 with
  | Ok s -> checkb "contention visible" true (s.Smp.lock_wait_cycles > 0)
  | Error m -> Alcotest.fail m

let () =
  Atmo_san.Runtime.arm_of_env ();
  Alcotest.run ~and_exit:false "sim"
    [
      ( "cost",
        [
          Alcotest.test_case "table3 calibration" `Quick test_table3_calibration;
          Alcotest.test_case "seconds conversion" `Quick test_seconds_conversion;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "fig4 shape" `Quick test_fig4_shape;
          Alcotest.test_case "batching amortizes IPC" `Quick test_batching_amortizes_ipc;
          Alcotest.test_case "fig5 shape" `Quick test_fig5_shape;
          Alcotest.test_case "fig6 maglev shape" `Quick test_fig6_shape;
          Alcotest.test_case "fig6 httpd shape" `Quick test_fig6_httpd_shape;
        ] );
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "full" `Quick test_ring_full;
          Alcotest.test_case "wraps" `Quick test_ring_wraps;
          Alcotest.test_case "charges cycles" `Quick test_ring_charges_cycles;
          Alcotest.test_case "shared memory" `Quick test_ring_lives_in_shared_memory;
        ] );
      ( "smp",
        [
          Alcotest.test_case "executes real syscalls" `Quick test_smp_executes_real_syscalls;
          Alcotest.test_case "least-loaded placement" `Quick test_smp_placement_least_loaded;
          Alcotest.test_case "honors reservations" `Quick test_smp_respects_reservations;
          Alcotest.test_case "big lock saturates" `Quick test_smp_big_lock_saturates;
          Alcotest.test_case "lock wait accounted" `Quick test_smp_lock_wait_accounted;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_ring_model ]);
    ];
  Atmo_san.Runtime.exit_check ()
