(* Device models: ixgbe descriptor rings with IOMMU-mediated DMA, and
   the NVMe queue-pair model. *)

module Phys_mem = Atmo_hw.Phys_mem
module Iommu = Atmo_hw.Iommu
module Clock = Atmo_hw.Clock
module Pte = Atmo_hw.Pte_bits
module Page_alloc = Atmo_pmem.Page_alloc
module Page_table = Atmo_pt.Page_table
module Cost = Atmo_sim.Cost
module Ixgbe = Atmo_drivers.Ixgbe
module Nvme = Atmo_drivers.Nvme
module Packet = Atmo_net.Packet

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let cost = Cost.default

(* A driver environment: memory, identity-mapped page table attached to
   the IOMMU as device 0, a descriptor ring page and N buffer pages. *)
let mk_env ?(bufs = 8) () =
  let mem = Phys_mem.create ~page_count:256 in
  let alloc = Page_alloc.create mem ~reserved_frames:0 in
  let iommu = Iommu.create mem in
  let clock = Clock.create () in
  let pt = Result.get_ok (Page_table.create mem alloc) in
  let page () =
    let a = Option.get (Page_alloc.alloc_4k alloc ~purpose:Page_alloc.User) in
    (match Page_table.map_4k pt ~vaddr:a ~frame:a ~perm:Pte.perm_rw with
     | Ok () -> ()
     | Error _ -> Alcotest.fail "map");
    a
  in
  let ring = page () in
  let buffers = Array.init bufs (fun _ -> (page (), 2048)) in
  Iommu.attach iommu ~device:0 ~root:(Page_table.cr3 pt);
  let nic = Ixgbe.create mem iommu ~device:0 ~clock ~cost in
  (mem, iommu, clock, nic, ring, buffers)

let frame_of_text text =
  Packet.build
    (Packet.flow_of_ints ~src:1 ~dst:2 ~sport:1111 ~dport:2222)
    ~payload:(Bytes.of_string text)

(* ------------------------------------------------------------------ *)
(* Ixgbe                                                               *)

let test_rx_path () =
  let _, _, _, nic, ring, buffers = mk_env () in
  (match Ixgbe.setup_rx nic ~ring_iova:ring ~buffers with
   | Ok () -> ()
   | Error m -> Alcotest.fail (Atmo_devmodel.Fault.error_to_string m));
  checkb "frame accepted" true (Ixgbe.wire_deliver nic (frame_of_text "one"));
  checkb "second frame" true (Ixgbe.wire_deliver nic (frame_of_text "two"));
  (match Ixgbe.rx_burst nic ~max:8 with
   | [ f1; f2 ] ->
     checkb "payload 1" true
       (Packet.payload f1 = Some (Bytes.of_string "one"));
     checkb "payload 2" true (Packet.payload f2 = Some (Bytes.of_string "two"))
   | l -> Alcotest.failf "expected 2 frames, got %d" (List.length l))

let test_rx_ring_wraps () =
  let _, _, _, nic, ring, buffers = mk_env ~bufs:4 () in
  (match Ixgbe.setup_rx nic ~ring_iova:ring ~buffers with
   | Ok () -> ()
   | Error m -> Alcotest.fail (Atmo_devmodel.Fault.error_to_string m));
  (* run 3 full laps around the 4-slot ring *)
  for lap = 0 to 11 do
    checkb "deliver" true (Ixgbe.wire_deliver nic (frame_of_text (string_of_int lap)));
    checki "harvest one" 1 (List.length (Ixgbe.rx_burst nic ~max:4))
  done;
  let rx, _ = Ixgbe.stats nic in
  checki "12 frames" 12 rx;
  checki "no drops" 0 (Ixgbe.rx_drops nic)

let test_rx_overflow_drops () =
  let _, _, _, nic, ring, buffers = mk_env ~bufs:2 () in
  (match Ixgbe.setup_rx nic ~ring_iova:ring ~buffers with
   | Ok () -> ()
   | Error m -> Alcotest.fail (Atmo_devmodel.Fault.error_to_string m));
  checkb "1 ok" true (Ixgbe.wire_deliver nic (frame_of_text "a"));
  checkb "2 ok" true (Ixgbe.wire_deliver nic (frame_of_text "b"));
  checkb "3 dropped (no free descriptor)" false (Ixgbe.wire_deliver nic (frame_of_text "c"));
  checki "drop counted" 1 (Ixgbe.rx_drops nic)

let test_rx_requires_iommu_mapping () =
  (* a ring page the device is NOT allowed to touch: setup must fail *)
  let mem = Phys_mem.create ~page_count:64 in
  let alloc = Page_alloc.create mem ~reserved_frames:0 in
  let iommu = Iommu.create mem in
  let clock = Clock.create () in
  let pt = Result.get_ok (Page_table.create mem alloc) in
  Iommu.attach iommu ~device:0 ~root:(Page_table.cr3 pt);
  let nic = Ixgbe.create mem iommu ~device:0 ~clock ~cost in
  let unmapped = Option.get (Page_alloc.alloc_4k alloc ~purpose:Page_alloc.User) in
  (match Ixgbe.setup_rx nic ~ring_iova:unmapped ~buffers:[| (unmapped, 2048) |] with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "setup through unmapped IOMMU region must fail");
  checkb "faults recorded" true (Iommu.faults iommu > 0)

let test_rx_unmapped_buffer_drops () =
  (* ring mapped, but one buffer missing from the IOMMU domain: frames
     landing there are dropped, not silently written *)
  let mem = Phys_mem.create ~page_count:64 in
  let alloc = Page_alloc.create mem ~reserved_frames:0 in
  let iommu = Iommu.create mem in
  let clock = Clock.create () in
  let pt = Result.get_ok (Page_table.create mem alloc) in
  let page map =
    let a = Option.get (Page_alloc.alloc_4k alloc ~purpose:Page_alloc.User) in
    if map then
      (match Page_table.map_4k pt ~vaddr:a ~frame:a ~perm:Pte.perm_rw with
       | Ok () -> ()
       | Error _ -> Alcotest.fail "map");
    a
  in
  let ring = page true in
  let good = page true in
  let evil = page false in
  Iommu.attach iommu ~device:0 ~root:(Page_table.cr3 pt);
  let nic = Ixgbe.create mem iommu ~device:0 ~clock ~cost in
  (match Ixgbe.setup_rx nic ~ring_iova:ring ~buffers:[| (good, 2048); (evil, 2048) |] with
   | Ok () -> ()
   | Error m -> Alcotest.fail (Atmo_devmodel.Fault.error_to_string m));
  checkb "first frame lands in good buffer" true (Ixgbe.wire_deliver nic (frame_of_text "a"));
  checkb "second frame dropped by IOMMU" false (Ixgbe.wire_deliver nic (frame_of_text "b"));
  (* and nothing was written to the unmapped frame *)
  checkb "unmapped frame untouched" true
    (Bytes.equal (Phys_mem.blit_from mem ~addr:evil ~len:64) (Bytes.make 64 '\000'))

let test_tx_path () =
  let _, _, _, nic, ring, buffers = mk_env () in
  (match Ixgbe.setup_tx nic ~ring_iova:ring ~buffers with
   | Ok () -> ()
   | Error m -> Alcotest.fail (Atmo_devmodel.Fault.error_to_string m));
  checki "accepted" 2 (Ixgbe.tx_burst nic [ frame_of_text "x"; frame_of_text "y" ]);
  (match Ixgbe.wire_collect nic with
   | [ a; b ] ->
     checkb "order preserved" true
       (Packet.payload a = Some (Bytes.of_string "x")
        && Packet.payload b = Some (Bytes.of_string "y"))
   | l -> Alcotest.failf "expected 2 on the wire, got %d" (List.length l));
  checkb "wire drained" true (Ixgbe.wire_collect nic = [])

let test_driver_cycles_charged () =
  let _, _, clock, nic, ring, buffers = mk_env () in
  (match Ixgbe.setup_rx nic ~ring_iova:ring ~buffers with
   | Ok () -> ()
   | Error m -> Alcotest.fail (Atmo_devmodel.Fault.error_to_string m));
  ignore (Ixgbe.wire_deliver nic (frame_of_text "a"));
  let before = Clock.now clock in
  ignore (Ixgbe.rx_burst nic ~max:1);
  checki "per-packet driver cost" cost.Cost.driver_per_packet (Clock.now clock - before)

(* ------------------------------------------------------------------ *)
(* Nvme                                                                *)

let test_nvme_write_read () =
  let clock = Clock.create () in
  let dev = Nvme.create ~clock ~cost ~capacity_blocks:64 in
  let data = Bytes.make Nvme.block_bytes 'z' in
  (match Nvme.submit_write dev ~lba:5 ~data with
   | Ok _ -> ()
   | Error m -> Alcotest.fail (Atmo_devmodel.Fault.error_to_string m));
  ignore (Nvme.wait_all dev);
  (match Nvme.submit_read dev ~lba:5 with
   | Ok _ -> ()
   | Error m -> Alcotest.fail (Atmo_devmodel.Fault.error_to_string m));
  (match Nvme.wait_all dev with
   | [ c ] ->
     checkb "read ok" true c.Nvme.ok;
     checkb "data round-trips" true (c.Nvme.data = Some data)
   | l -> Alcotest.failf "expected 1 completion, got %d" (List.length l))

let test_nvme_unwritten_reads_zero () =
  let clock = Clock.create () in
  let dev = Nvme.create ~clock ~cost ~capacity_blocks:8 in
  ignore (Nvme.submit_read dev ~lba:3);
  match Nvme.wait_all dev with
  | [ c ] -> checkb "zero block" true (c.Nvme.data = Some (Bytes.make Nvme.block_bytes '\000'))
  | _ -> Alcotest.fail "completion"

let test_nvme_bad_args () =
  let clock = Clock.create () in
  let dev = Nvme.create ~clock ~cost ~capacity_blocks:8 in
  checkb "lba range" true (Result.is_error (Nvme.submit_read dev ~lba:99));
  checkb "negative lba" true (Result.is_error (Nvme.submit_read dev ~lba:(-1)));
  checkb "short write" true
    (Result.is_error (Nvme.submit_write dev ~lba:0 ~data:(Bytes.make 100 'x')))

let test_nvme_latency_and_cap () =
  (* completions appear only after the device latency, and a burst is
     spaced by the rate cap *)
  let clock = Clock.create () in
  let dev = Nvme.create ~clock ~cost ~capacity_blocks:1024 in
  for lba = 0 to 99 do
    ignore (Nvme.submit_read dev ~lba)
  done;
  checki "nothing before latency" 0 (List.length (Nvme.poll dev));
  ignore (Nvme.wait_all dev);
  (* the 100 reads must take at least 100/cap seconds of device time *)
  let min_seconds = 100. /. cost.Cost.nvme_read_cap_iops in
  checkb "rate cap respected" true (Clock.seconds clock >= min_seconds)

let test_nvme_completion_order () =
  let clock = Clock.create () in
  let dev = Nvme.create ~clock ~cost ~capacity_blocks:64 in
  let tags = List.init 5 (fun lba -> Result.get_ok (Nvme.submit_read dev ~lba)) in
  let completions = Nvme.wait_all dev in
  Alcotest.(check (list int)) "FIFO completion for same-kind ops" tags
    (List.map (fun c -> c.Nvme.tag) completions)

let () =
  Alcotest.run "drivers"
    [
      ( "ixgbe",
        [
          Alcotest.test_case "rx path" `Quick test_rx_path;
          Alcotest.test_case "ring wraps" `Quick test_rx_ring_wraps;
          Alcotest.test_case "overflow drops" `Quick test_rx_overflow_drops;
          Alcotest.test_case "iommu required" `Quick test_rx_requires_iommu_mapping;
          Alcotest.test_case "unmapped buffer drops" `Quick test_rx_unmapped_buffer_drops;
          Alcotest.test_case "tx path" `Quick test_tx_path;
          Alcotest.test_case "cycles charged" `Quick test_driver_cycles_charged;
        ] );
      ( "nvme",
        [
          Alcotest.test_case "write/read" `Quick test_nvme_write_read;
          Alcotest.test_case "unwritten zero" `Quick test_nvme_unwritten_reads_zero;
          Alcotest.test_case "bad args" `Quick test_nvme_bad_args;
          Alcotest.test_case "latency and cap" `Quick test_nvme_latency_and_cap;
          Alcotest.test_case "completion order" `Quick test_nvme_completion_order;
        ] );
    ]
