(* Refinement: every kernel transition satisfies its top-level
   specification, checked over scripted and randomized traces. *)

open Atmo_util
module Syscall = Atmo_spec.Syscall
module Kernel = Atmo_core.Kernel
module H = Atmo_verif.Refine_harness
module Page_state = Atmo_pmem.Page_state
module Pte = Atmo_hw.Pte_bits
module Message = Atmo_pm.Message

let boot () =
  match Kernel.boot Kernel.default_boot with
  | Ok (k, init) -> (k, init)
  | Error e -> Alcotest.failf "boot failed: %a" Errno.pp e

let fail_outcome (o : H.step_outcome) =
  Alcotest.failf "step %a from 0x%x returned %a; spec: %s; wf: %s" Syscall.pp o.H.call
    o.H.thread Syscall.pp_ret o.H.ret
    (match o.H.spec with Ok () -> "ok" | Error m -> m)
    (match o.H.wf with Ok () -> "ok" | Error m -> m)

let run_ok k trace =
  match H.run_trace k trace with
  | Ok _ -> ()
  | Error o -> fail_outcome o

let va0 = 0x4000_0000

let test_scripted_memory_trace () =
  let k, init = boot () in
  run_ok k
    [
      (init, Syscall.Mmap { va = va0; count = 4; size = Page_state.S4k; perm = Pte.perm_rw });
      (init, Syscall.Mprotect { va = va0; perm = Pte.perm_ro });
      (init, Syscall.Munmap { va = va0 + 4096; count = 2; size = Page_state.S4k });
      (init, Syscall.Mmap { va = 0x8000_0000; count = 1; size = Page_state.S2m; perm = Pte.perm_rw });
      (init, Syscall.Munmap { va = 0x8000_0000; count = 1; size = Page_state.S2m });
      (init, Syscall.Munmap { va = va0; count = 1; size = Page_state.S4k });
      (* failures must be atomic and satisfy the spec's error clause *)
      (init, Syscall.Mmap { va = va0; count = 0; size = Page_state.S4k; perm = Pte.perm_rw });
      (init, Syscall.Munmap { va = va0; count = 3; size = Page_state.S4k });
    ]

let test_scripted_lifecycle_trace () =
  let k, init = boot () in
  run_ok k
    [
      (init, Syscall.New_container { quota = 64; cpus = Iset.empty });
      (init, Syscall.New_process);
      (init, Syscall.New_thread);
      (init, Syscall.New_endpoint { slot = 0 });
      (init, Syscall.Close_endpoint { slot = 0 });
      (init, Syscall.New_endpoint { slot = 2 });
      (init, Syscall.Yield);
    ]

let test_scripted_ipc_trace () =
  let k, init = boot () in
  (* init creates an endpoint and a second thread; hand the descriptor
     over with an explicit endpoint grant through a rendezvous *)
  run_ok k
    [
      (init, Syscall.New_endpoint { slot = 0 });
      (init, Syscall.New_thread);
    ];
  let t2 = List.hd (Atmo_pm.Proc_mgr.run_queue_list k.Kernel.pm) in
  (* t2 has no endpoint yet, so its recv must fail cleanly *)
  run_ok k [ (t2, Syscall.Recv { slot = 0 }) ];
  (* init blocks sending; t2 cannot receive without a descriptor *)
  run_ok k
    [
      (init, Syscall.Send { slot = 0; msg = Message.scalars_only [ 7 ] });
    ];
  (* now the sender sits in the queue; woken when a receiver arrives *)
  match H.step_checked k ~thread:t2 (Syscall.Yield) with
  | o when o.H.spec = Ok () && o.H.wf = Ok () -> ()
  | o -> fail_outcome o

let test_scripted_termination_trace () =
  let k, init = boot () in
  run_ok k [ (init, Syscall.New_container { quota = 128; cpus = Iset.empty }) ];
  (* populate the child container *)
  let child =
    Iset.max_elt (Atmo_pm.Perm_map.dom k.Kernel.pm.Atmo_pm.Proc_mgr.cntr_perms)
  in
  (match Atmo_pm.Proc_mgr.new_process k.Kernel.pm ~container:child ~parent:None with
   | Ok p -> ignore (Atmo_pm.Proc_mgr.new_thread k.Kernel.pm ~proc:p)
   | Error e -> Alcotest.failf "setup: %a" Errno.pp e);
  run_ok k
    [
      (init, Syscall.Terminate_container { container = child });
      (* repeat: now ESRCH, checked as atomic error *)
      (init, Syscall.Terminate_container { container = child });
    ]

let test_scripted_device_trace () =
  let k, init = boot () in
  run_ok k
    [
      (init, Syscall.Assign_device { device = 1 });
      (init, Syscall.Assign_device { device = 1 });
      (init, Syscall.New_process);
    ];
  let p2 =
    (* the newest process *)
    Iset.max_elt (Atmo_pm.Perm_map.dom k.Kernel.pm.Atmo_pm.Proc_mgr.proc_perms)
  in
  run_ok k [ (init, Syscall.Terminate_process { proc = p2 }) ]

let test_scripted_io_trace () =
  let k, init = boot () in
  run_ok k
    [
      (init, Syscall.Mmap { va = va0; count = 2; size = Page_state.S4k; perm = Pte.perm_rw });
      (init, Syscall.Assign_device { device = 1 });
      (* double assignment and foreign devices: atomic errors *)
      (init, Syscall.Assign_device { device = 1 });
      (init, Syscall.Io_map { device = 1; iova = 0x9000_0000; va = va0 });
      (init, Syscall.Io_map { device = 1; iova = 0x9000_1000; va = va0 + 4096 });
      (* same window twice / unmapped source / bogus device *)
      (init, Syscall.Io_map { device = 1; iova = 0x9000_0000; va = va0 });
      (init, Syscall.Io_map { device = 1; iova = 0x9000_2000; va = 0x6666_0000 });
      (init, Syscall.Io_map { device = 7; iova = 0x9000_3000; va = va0 });
      (* the frame outlives the process mapping while the device holds it *)
      (init, Syscall.Munmap { va = va0; count = 1; size = Page_state.S4k });
      (init, Syscall.Io_unmap { device = 1; iova = 0x9000_0000 });
      (init, Syscall.Io_unmap { device = 1; iova = 0x9000_0000 });
      (init, Syscall.Io_unmap { device = 1; iova = 0x9000_1000 });
    ]

let test_random_fuzz seed () =
  let k, _ = boot () in
  match H.random_trace_check ~seed ~steps:300 k with
  | Ok n -> Alcotest.(check bool) "ran steps" true (n > 0)
  | Error o -> fail_outcome o

let test_page_grant_spec () =
  let k, init = boot () in
  run_ok k
    [
      (init, Syscall.Mmap { va = va0; count = 1; size = Page_state.S4k; perm = Pte.perm_rw });
      (init, Syscall.New_endpoint { slot = 0 });
      (init, Syscall.New_process);
    ];
  let p2 = Iset.max_elt (Atmo_pm.Perm_map.dom k.Kernel.pm.Atmo_pm.Proc_mgr.proc_perms) in
  let t2 =
    match Atmo_pm.Proc_mgr.new_thread k.Kernel.pm ~proc:p2 with
    | Ok t -> t
    | Error e -> Alcotest.failf "t2: %a" Errno.pp e
  in
  (* wire the endpoint into t2 (spawner setup, not a syscall) *)
  (match
     Atmo_pm.Thread.slot
       (Atmo_pm.Perm_map.borrow k.Kernel.pm.Atmo_pm.Proc_mgr.thrd_perms ~ptr:init)
       0
   with
   | Some ep ->
     Atmo_pm.Perm_map.update k.Kernel.pm.Atmo_pm.Proc_mgr.thrd_perms ~ptr:t2 (fun th ->
         Atmo_pm.Thread.set_slot th 0 (Some ep));
     Atmo_pm.Perm_map.update k.Kernel.pm.Atmo_pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
         { e with Atmo_pm.Endpoint.refcount = e.Atmo_pm.Endpoint.refcount + 1 })
   | None -> Alcotest.fail "no endpoint");
  run_ok k
    [
      (t2, Syscall.Recv { slot = 0 });
      ( init,
        Syscall.Send
          {
            slot = 0;
            msg =
              {
                Message.scalars = [ 9 ];
                page = Some { Message.src_vaddr = va0; dst_vaddr = 0x7000_0000 };
                endpoint = None;
              };
          } );
      (* recv again through the woken thread: sender side now empty *)
      (t2, Syscall.Recv { slot = 0 });
    ]

let () =
  Alcotest.run "spec"
    [
      ( "scripted",
        [
          Alcotest.test_case "memory trace" `Quick test_scripted_memory_trace;
          Alcotest.test_case "lifecycle trace" `Quick test_scripted_lifecycle_trace;
          Alcotest.test_case "ipc trace" `Quick test_scripted_ipc_trace;
          Alcotest.test_case "termination trace" `Quick test_scripted_termination_trace;
          Alcotest.test_case "device trace" `Quick test_scripted_device_trace;
          Alcotest.test_case "io trace" `Quick test_scripted_io_trace;
          Alcotest.test_case "page grant" `Quick test_page_grant_spec;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "random trace seed 1" `Quick (test_random_fuzz 1);
          Alcotest.test_case "random trace seed 2" `Quick (test_random_fuzz 2);
          Alcotest.test_case "random trace seed 42" `Quick (test_random_fuzz 42);
          Alcotest.test_case "random trace seed 1234" `Quick (test_random_fuzz 1234);
        ] );
    ]
