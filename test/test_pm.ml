(* Process manager: flat permission maps, container/process trees with
   ghost path/subtree, quota accounting, termination. *)

open Atmo_util
open Atmo_pm
module Phys_mem = Atmo_hw.Phys_mem
module Page_alloc = Atmo_pmem.Page_alloc

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let expect what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Errno.pp e

let expect_err what e = function
  | Ok _ -> Alcotest.failf "%s: expected %a" what Errno.pp e
  | Error got ->
    if not (Errno.equal got e) then
      Alcotest.failf "%s: expected %a got %a" what Errno.pp e Errno.pp got

let expect_wf pm =
  match Pm_invariants.all pm with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant broken: %s" msg

let expect_wf_rec pm =
  match Pm_invariants_rec.all pm with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "recursive invariant broken: %s" msg

let mk_pm ?(frames = 2048) ?(quota = 1500) () =
  let mem = Phys_mem.create ~page_count:frames in
  let alloc = Page_alloc.create mem ~reserved_frames:0 in
  let pm = expect "create" (Proc_mgr.create mem alloc ~root_quota:quota ~cpus:(Iset.of_range ~lo:0 ~hi:4)) in
  pm

(* ------------------------------------------------------------------ *)
(* Static_list and Perm_map                                            *)

let test_static_list () =
  let l = Static_list.create ~capacity:2 in
  let l = Result.get_ok (Static_list.push l 1) in
  let l = Result.get_ok (Static_list.push l 2) in
  checkb "full" true (Static_list.is_full l);
  checkb "push full fails" true (Static_list.push l 3 = Error `Full);
  let l = Result.get_ok (Static_list.remove l ~eq:( = ) 1) in
  Alcotest.(check (list int)) "remaining" [ 2 ] (Static_list.to_list l);
  checkb "remove absent fails" true (Static_list.remove l ~eq:( = ) 9 = Error `Absent)

let test_perm_map_linearity () =
  let m = Perm_map.create ~name:"t" in
  Perm_map.alloc m ~ptr:0x1000 "a";
  Alcotest.(check string) "borrow" "a" (Perm_map.borrow m ~ptr:0x1000);
  (try
     Perm_map.alloc m ~ptr:0x1000 "b";
     Alcotest.fail "double alloc not caught"
   with Perm_map.Permission_violation _ -> ());
  Alcotest.(check string) "consume" "a" (Perm_map.consume m ~ptr:0x1000);
  (try
     ignore (Perm_map.borrow m ~ptr:0x1000);
     Alcotest.fail "dangling borrow not caught"
   with Perm_map.Permission_violation _ -> ());
  (try
     ignore (Perm_map.consume m ~ptr:0x1000);
     Alcotest.fail "double free not caught"
   with Perm_map.Permission_violation _ -> ())

let test_perm_map_iteration_round_trip () =
  let m = Perm_map.create ~name:"t" in
  let pairs = [ (0x3000, "c"); (0x1000, "a"); (0x2000, "b") ] in
  List.iter (fun (ptr, v) -> Perm_map.alloc m ~ptr v) pairs;
  let sorted = List.sort compare pairs in
  (* bindings is the sorted ghost view of the map *)
  Alcotest.(check (list (pair int string))) "bindings" sorted (Perm_map.bindings m);
  (* fold over the bindings rebuilds an identical map *)
  let copy = Perm_map.create ~name:"copy" in
  Perm_map.fold (fun ptr v () -> Perm_map.alloc copy ~ptr v) m ();
  Alcotest.(check (list (pair int string))) "round trip" (Perm_map.bindings m)
    (Perm_map.bindings copy);
  checki "cardinal" (List.length pairs) (Perm_map.cardinal copy);
  (* iter visits exactly the bindings, in key order *)
  let seen = ref [] in
  Perm_map.iter (fun ptr v -> seen := (ptr, v) :: !seen) m;
  Alcotest.(check (list (pair int string))) "iter" sorted (List.rev !seen);
  checkb "dom matches" true
    (Iset.equal (Perm_map.dom m) (Iset.of_list (List.map fst sorted)))

(* ------------------------------------------------------------------ *)
(* Containers                                                          *)

let test_boot_root () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let c = Perm_map.borrow pm.Proc_mgr.cntr_perms ~ptr:root in
  checkb "root has no parent" true (c.Container.parent = None);
  checki "root charged its own page" 1 c.Container.used;
  expect_wf pm;
  expect_wf_rec pm

let test_new_container_tree () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let a = expect "A" (Proc_mgr.new_container pm ~parent:root ~quota:100 ~cpus:Iset.empty) in
  let b = expect "B" (Proc_mgr.new_container pm ~parent:root ~quota:100 ~cpus:Iset.empty) in
  let aa = expect "AA" (Proc_mgr.new_container pm ~parent:a ~quota:40 ~cpus:Iset.empty) in
  let rc = Perm_map.borrow pm.Proc_mgr.cntr_perms ~ptr:root in
  checki "root delegated" 200 rc.Container.delegated;
  checkb "root subtree has all" true
    (Iset.equal rc.Container.subtree (Iset.of_list [ a; b; aa ]));
  let ac = Perm_map.borrow pm.Proc_mgr.cntr_perms ~ptr:a in
  checkb "A subtree has AA" true (Iset.equal ac.Container.subtree (Iset.singleton aa));
  let aac = Perm_map.borrow pm.Proc_mgr.cntr_perms ~ptr:aa in
  Alcotest.(check (list int)) "AA path" [ root; a ] aac.Container.path;
  checki "AA depth" 2 aac.Container.depth;
  expect_wf pm;
  expect_wf_rec pm

let test_container_quota_limits () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let a = expect "A" (Proc_mgr.new_container pm ~parent:root ~quota:5 ~cpus:Iset.empty) in
  (* A holds 5, used 1 for its page: delegating 5 to a child must fail *)
  expect_err "overdelegate" Errno.Equota
    (Proc_mgr.new_container pm ~parent:a ~quota:5 ~cpus:Iset.empty);
  (* delegating 4 fits (1 used + 4 delegated = 5) *)
  ignore (expect "child" (Proc_mgr.new_container pm ~parent:a ~quota:4 ~cpus:Iset.empty));
  expect_err "zero quota invalid" Errno.Einval
    (Proc_mgr.new_container pm ~parent:root ~quota:0 ~cpus:Iset.empty);
  expect_err "dead parent" Errno.Esrch
    (Proc_mgr.new_container pm ~parent:0xdead000 ~quota:1 ~cpus:Iset.empty);
  expect_wf pm

let test_cpu_reservation_subset () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let a =
    expect "A" (Proc_mgr.new_container pm ~parent:root ~quota:50 ~cpus:(Iset.of_list [ 0; 1 ]))
  in
  expect_err "cpus not subset" Errno.Eperm
    (Proc_mgr.new_container pm ~parent:a ~quota:5 ~cpus:(Iset.of_list [ 2 ]));
  ignore
    (expect "subset ok" (Proc_mgr.new_container pm ~parent:a ~quota:5 ~cpus:(Iset.of_list [ 1 ])));
  expect_wf pm

(* ------------------------------------------------------------------ *)
(* Processes and threads                                               *)

let test_process_and_thread () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let p = expect "proc" (Proc_mgr.new_process pm ~container:root ~parent:None) in
  let th = expect "thread" (Proc_mgr.new_thread pm ~proc:p) in
  let c = Perm_map.borrow pm.Proc_mgr.cntr_perms ~ptr:root in
  (* 1 (container) + 1 (proc) + 1 (pt root) + 1 (thread) *)
  checki "used" 4 c.Container.used;
  checkb "thread runnable" true (Proc_mgr.run_queue_list pm = [ th ]);
  expect_wf pm

let test_process_tree () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let p1 = expect "p1" (Proc_mgr.new_process pm ~container:root ~parent:None) in
  let p2 = expect "p2" (Proc_mgr.new_process pm ~container:root ~parent:(Some p1)) in
  let p3 = expect "p3" (Proc_mgr.new_process pm ~container:root ~parent:(Some p2)) in
  ignore p3;
  let pr1 = Perm_map.borrow pm.Proc_mgr.proc_perms ~ptr:p1 in
  Alcotest.(check (list int)) "p1 children" [ p2 ] (Static_list.to_list pr1.Process.children);
  expect_wf pm

let test_terminate_process_subtree () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let p1 = expect "p1" (Proc_mgr.new_process pm ~container:root ~parent:None) in
  let p2 = expect "p2" (Proc_mgr.new_process pm ~container:root ~parent:(Some p1)) in
  let p3 = expect "p3" (Proc_mgr.new_process pm ~container:root ~parent:(Some p2)) in
  ignore (expect "t2" (Proc_mgr.new_thread pm ~proc:p2));
  ignore (expect "t3" (Proc_mgr.new_thread pm ~proc:p3));
  let used_before_p2 =
    (Perm_map.borrow pm.Proc_mgr.cntr_perms ~ptr:root).Container.used
  in
  ignore used_before_p2;
  expect "terminate p2" (Proc_mgr.terminate_process pm ~proc:p2);
  checkb "p2 gone" false (Perm_map.mem pm.Proc_mgr.proc_perms ~ptr:p2);
  checkb "p3 gone too" false (Perm_map.mem pm.Proc_mgr.proc_perms ~ptr:p3);
  checkb "p1 lives" true (Perm_map.mem pm.Proc_mgr.proc_perms ~ptr:p1);
  let c = Perm_map.borrow pm.Proc_mgr.cntr_perms ~ptr:root in
  (* only container + p1 + its pt remain *)
  checki "accounting restored" 3 c.Container.used;
  expect_wf pm

(* ------------------------------------------------------------------ *)
(* Endpoints                                                           *)

let test_endpoint_lifecycle () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let p = expect "proc" (Proc_mgr.new_process pm ~container:root ~parent:None) in
  let th = expect "thread" (Proc_mgr.new_thread pm ~proc:p) in
  let ep = expect "endpoint" (Proc_mgr.new_endpoint pm ~thread:th ~slot:0) in
  let e = Perm_map.borrow pm.Proc_mgr.edpt_perms ~ptr:ep in
  checki "rc 1" 1 e.Endpoint.refcount;
  expect_err "slot occupied" Errno.Eexist (Proc_mgr.new_endpoint pm ~thread:th ~slot:0);
  expect_err "slot out of range" Errno.Einval
    (Proc_mgr.new_endpoint pm ~thread:th ~slot:99);
  expect_wf pm;
  expect "close" (Proc_mgr.close_endpoint_slot pm ~thread:th ~slot:0);
  checkb "endpoint freed" false (Perm_map.mem pm.Proc_mgr.edpt_perms ~ptr:ep);
  expect_wf pm

(* ------------------------------------------------------------------ *)
(* Container termination / revocation                                  *)

let test_terminate_container_harvest () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let a = expect "A" (Proc_mgr.new_container pm ~parent:root ~quota:200 ~cpus:Iset.empty) in
  let aa = expect "AA" (Proc_mgr.new_container pm ~parent:a ~quota:50 ~cpus:Iset.empty) in
  let p = expect "proc" (Proc_mgr.new_process pm ~container:aa ~parent:None) in
  ignore (expect "thread" (Proc_mgr.new_thread pm ~proc:p));
  let root_used_before =
    (Perm_map.borrow pm.Proc_mgr.cntr_perms ~ptr:root).Container.used
  in
  let free_before = Page_alloc.free_count_4k pm.Proc_mgr.alloc in
  ignore free_before;
  expect "terminate A" (Proc_mgr.terminate_container pm ~container:a);
  checkb "A gone" false (Perm_map.mem pm.Proc_mgr.cntr_perms ~ptr:a);
  checkb "AA gone" false (Perm_map.mem pm.Proc_mgr.cntr_perms ~ptr:aa);
  checkb "proc gone" false (Perm_map.mem pm.Proc_mgr.proc_perms ~ptr:p);
  let rc = Perm_map.borrow pm.Proc_mgr.cntr_perms ~ptr:root in
  checki "delegation returned" 0 rc.Container.delegated;
  checki "root used unchanged" root_used_before rc.Container.used;
  checkb "subtree empty" true (Iset.is_empty rc.Container.subtree);
  expect_wf pm;
  expect_wf_rec pm

let test_terminate_root_refused () =
  let pm = mk_pm () in
  expect_err "root immortal" Errno.Eperm
    (Proc_mgr.terminate_container pm ~container:pm.Proc_mgr.root_container)

let test_surviving_endpoint_harvested () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  (* thread in root container receives an endpoint created by a child
     container's thread; killing the child must keep the endpoint alive,
     re-owned by the parent *)
  let rp = expect "rp" (Proc_mgr.new_process pm ~container:root ~parent:None) in
  let rth = expect "rth" (Proc_mgr.new_thread pm ~proc:rp) in
  let a = expect "A" (Proc_mgr.new_container pm ~parent:root ~quota:100 ~cpus:Iset.empty) in
  let ap = expect "ap" (Proc_mgr.new_process pm ~container:a ~parent:None) in
  let ath = expect "ath" (Proc_mgr.new_thread pm ~proc:ap) in
  let ep = expect "ep" (Proc_mgr.new_endpoint pm ~thread:ath ~slot:0) in
  (* share it with the root thread (as IPC endpoint-grant would) *)
  Perm_map.update pm.Proc_mgr.thrd_perms ~ptr:rth (fun th ->
      Thread.set_slot th 3 (Some ep));
  Perm_map.update pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
      { e with Endpoint.refcount = e.Endpoint.refcount + 1 });
  expect_wf pm;
  expect "terminate A" (Proc_mgr.terminate_container pm ~container:a);
  checkb "endpoint survives" true (Perm_map.mem pm.Proc_mgr.edpt_perms ~ptr:ep);
  let e = Perm_map.borrow pm.Proc_mgr.edpt_perms ~ptr:ep in
  checkb "re-owned by parent" true (e.Endpoint.owner_container = root);
  checki "rc dropped to 1" 1 e.Endpoint.refcount;
  expect_wf pm

(* ------------------------------------------------------------------ *)
(* Invariant checkers detect corruption                                *)

let test_invariants_catch_bad_path () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let a = expect "A" (Proc_mgr.new_container pm ~parent:root ~quota:50 ~cpus:Iset.empty) in
  Perm_map.update pm.Proc_mgr.cntr_perms ~ptr:a (fun c ->
      { c with Container.path = [ a ] });
  checkb "flat path check fires" true (Pm_invariants.path_wf pm <> Ok ());
  checkb "recursive path check fires" true (Pm_invariants_rec.path_wf pm <> Ok ())

let test_invariants_catch_bad_subtree () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  let a = expect "A" (Proc_mgr.new_container pm ~parent:root ~quota:50 ~cpus:Iset.empty) in
  ignore a;
  Perm_map.update pm.Proc_mgr.cntr_perms ~ptr:root (fun c ->
      { c with Container.subtree = Iset.empty });
  checkb "flat subtree check fires" true (Pm_invariants.subtree_wf pm <> Ok ());
  checkb "recursive subtree check fires" true (Pm_invariants_rec.subtree_wf pm <> Ok ())

let test_invariants_catch_quota_drift () =
  let pm = mk_pm () in
  let root = pm.Proc_mgr.root_container in
  Perm_map.update pm.Proc_mgr.cntr_perms ~ptr:root (fun c ->
      { c with Container.used = c.Container.used + 7 });
  checkb "quota check fires" true (Pm_invariants.quota_wf pm <> Ok ())

(* ------------------------------------------------------------------ *)
(* Property: random lifecycle traffic keeps all invariants             *)

let prop_random_lifecycle =
  QCheck.Test.make ~name:"invariants hold under random lifecycle traffic" ~count:30
    QCheck.(list (int_bound 5))
    (fun ops ->
      let pm = mk_pm () in
      let root = pm.Proc_mgr.root_container in
      let containers = ref [ root ] in
      let procs = ref [] in
      let pick l n = List.nth l (n mod List.length l) in
      List.iteri
        (fun i op ->
          match op with
          | 0 ->
            (match
               Proc_mgr.new_container pm ~parent:(pick !containers i) ~quota:10
                 ~cpus:Iset.empty
             with
             | Ok c -> containers := c :: !containers
             | Error _ -> ())
          | 1 | 2 ->
            (match
               Proc_mgr.new_process pm ~container:(pick !containers i) ~parent:None
             with
             | Ok p -> procs := p :: !procs
             | Error _ -> ())
          | 3 ->
            (match !procs with
             | p :: _ -> ignore (Proc_mgr.new_thread pm ~proc:p)
             | [] -> ())
          | 4 ->
            (match !procs with
             | p :: rest when Perm_map.mem pm.Proc_mgr.proc_perms ~ptr:p ->
               ignore (Proc_mgr.terminate_process pm ~proc:p);
               procs := rest
             | _ -> ())
          | _ ->
            (match !containers with
             | c :: rest when c <> root ->
               (match Proc_mgr.terminate_container pm ~container:c with
                | Ok () ->
                  containers := rest;
                  (* drop procs that died with the container *)
                  procs :=
                    List.filter
                      (fun p -> Perm_map.mem pm.Proc_mgr.proc_perms ~ptr:p)
                      !procs
                | Error _ -> ())
             | _ -> ()))
        ops;
      Pm_invariants.all pm = Ok () && Pm_invariants_rec.all pm = Ok ())

let () =
  Atmo_san.Runtime.arm_of_env ();
  Alcotest.run ~and_exit:false "pm"
    [
      ( "primitives",
        [
          Alcotest.test_case "static list" `Quick test_static_list;
          Alcotest.test_case "perm map linearity" `Quick test_perm_map_linearity;
          Alcotest.test_case "perm map iteration round trip" `Quick
            test_perm_map_iteration_round_trip;
        ] );
      ( "containers",
        [
          Alcotest.test_case "boot root" `Quick test_boot_root;
          Alcotest.test_case "tree + ghost state" `Quick test_new_container_tree;
          Alcotest.test_case "quota limits" `Quick test_container_quota_limits;
          Alcotest.test_case "cpu reservations" `Quick test_cpu_reservation_subset;
        ] );
      ( "processes",
        [
          Alcotest.test_case "process + thread" `Quick test_process_and_thread;
          Alcotest.test_case "process tree" `Quick test_process_tree;
          Alcotest.test_case "terminate subtree" `Quick test_terminate_process_subtree;
        ] );
      ( "endpoints",
        [ Alcotest.test_case "lifecycle" `Quick test_endpoint_lifecycle ] );
      ( "revocation",
        [
          Alcotest.test_case "terminate + harvest" `Quick test_terminate_container_harvest;
          Alcotest.test_case "root immortal" `Quick test_terminate_root_refused;
          Alcotest.test_case "surviving endpoint harvested" `Quick
            test_surviving_endpoint_harvested;
        ] );
      ( "checkers",
        [
          Alcotest.test_case "catch bad path" `Quick test_invariants_catch_bad_path;
          Alcotest.test_case "catch bad subtree" `Quick test_invariants_catch_bad_subtree;
          Alcotest.test_case "catch quota drift" `Quick test_invariants_catch_quota_drift;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_random_lifecycle ] );
    ];
  Atmo_san.Runtime.exit_check ()
