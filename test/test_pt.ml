(* Page tables: mapping operations, refinement vs the MMU, flat and
   recursive checkers, step consistency (§4.2). *)

open Atmo_util
open Atmo_pt
module Phys_mem = Atmo_hw.Phys_mem
module Mmu = Atmo_hw.Mmu
module Pte = Atmo_hw.Pte_bits
module Page_state = Atmo_pmem.Page_state
module Page_alloc = Atmo_pmem.Page_alloc

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let expect what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Page_table.pp_error e

let expect_wf what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

let mk_pt ?(frames = 4096) () =
  let mem = Phys_mem.create ~page_count:frames in
  let alloc = Page_alloc.create mem ~reserved_frames:0 in
  let pt = expect "create" (Page_table.create mem alloc) in
  (mem, alloc, pt)

let user_frame alloc =
  match Page_alloc.alloc_4k alloc ~purpose:Page_alloc.User with
  | Some f -> f
  | None -> Alcotest.fail "no user frame"

let va0 = 0x4000_0000

let test_map_resolve_4k () =
  let _, alloc, pt = mk_pt () in
  let frame = user_frame alloc in
  expect "map" (Page_table.map_4k pt ~vaddr:va0 ~frame ~perm:Pte.perm_rw);
  (match Page_table.resolve pt ~vaddr:(va0 + 5) with
   | Some tr ->
     checki "paddr" (frame + 5) tr.Mmu.paddr;
     checki "size" Phys_mem.page_size tr.Mmu.size
   | None -> Alcotest.fail "fault");
  expect_wf "all obligations" (Pt_refine.all pt)

let test_map_unmap_roundtrip () =
  let _, alloc, pt = mk_pt () in
  let frame = user_frame alloc in
  expect "map" (Page_table.map_4k pt ~vaddr:va0 ~frame ~perm:Pte.perm_rw);
  let e = expect "unmap" (Page_table.unmap pt ~vaddr:va0) in
  checki "frame returned" frame e.Page_table.frame;
  checkb "faults after unmap" true (Page_table.resolve pt ~vaddr:va0 = None);
  checkb "ghost empty" true (Imap.is_empty (Page_table.address_space pt));
  expect_wf "all obligations" (Pt_refine.all pt)

let test_double_map_rejected () =
  let _, alloc, pt = mk_pt () in
  let frame = user_frame alloc in
  expect "map" (Page_table.map_4k pt ~vaddr:va0 ~frame ~perm:Pte.perm_rw);
  checkb "second map rejected" true
    (Page_table.map_4k pt ~vaddr:va0 ~frame ~perm:Pte.perm_rw = Error Page_table.Already_mapped)

let test_misaligned_rejected () =
  let _, alloc, pt = mk_pt () in
  let frame = user_frame alloc in
  checkb "va misaligned" true
    (Page_table.map_4k pt ~vaddr:(va0 + 1) ~frame ~perm:Pte.perm_rw = Error Page_table.Misaligned);
  checkb "2m misaligned" true
    (Page_table.map_2m pt ~vaddr:(va0 + 4096) ~frame:0 ~perm:Pte.perm_rw
     = Error Page_table.Misaligned);
  checkb "non-canonical" true
    (Page_table.map_4k pt ~vaddr:(1 lsl 50) ~frame ~perm:Pte.perm_rw
     = Error Page_table.Non_canonical)

let test_size_conflicts () =
  let _, alloc, pt = mk_pt () in
  let frame = user_frame alloc in
  (* a 4K mapping under a 2M-aligned va blocks a 2M mapping there *)
  expect "map 4k" (Page_table.map_4k pt ~vaddr:va0 ~frame ~perm:Pte.perm_rw);
  (match Page_alloc.alloc_2m alloc ~purpose:Page_alloc.User with
   | None -> Alcotest.fail "no 2m block"
   | Some big ->
     checkb "2m over 4k conflicts" true
       (Page_table.map_2m pt ~vaddr:va0 ~frame:big ~perm:Pte.perm_rw
        = Error Page_table.Conflict);
     (* and a 4K map under an existing 2M leaf conflicts the other way *)
     let va2 = va0 + Phys_mem.page_size_2m in
     expect "map 2m" (Page_table.map_2m pt ~vaddr:va2 ~frame:big ~perm:Pte.perm_rw);
     let f2 = user_frame alloc in
     checkb "4k under 2m conflicts" true
       (Page_table.map_4k pt ~vaddr:va2 ~frame:f2 ~perm:Pte.perm_rw
        = Error Page_table.Conflict));
  expect_wf "all obligations" (Pt_refine.all pt)

let test_huge_mappings_resolve () =
  let _, alloc, pt = mk_pt ~frames:8192 () in
  (match Page_alloc.alloc_2m alloc ~purpose:Page_alloc.User with
   | None -> Alcotest.fail "no 2m"
   | Some big ->
     expect "map 2m" (Page_table.map_2m pt ~vaddr:va0 ~frame:big ~perm:Pte.perm_ro);
     (match Page_table.resolve pt ~vaddr:(va0 + 0x12345) with
      | Some tr ->
        checki "2m size" Phys_mem.page_size_2m tr.Mmu.size;
        checki "offset" (big + 0x12345) tr.Mmu.paddr;
        checkb "ro" false tr.Mmu.perm.Pte.write
      | None -> Alcotest.fail "2m fault"));
  expect_wf "all obligations" (Pt_refine.all pt)

let test_update_perm () =
  let _, alloc, pt = mk_pt () in
  let frame = user_frame alloc in
  expect "map" (Page_table.map_4k pt ~vaddr:va0 ~frame ~perm:Pte.perm_rw);
  expect "mprotect" (Page_table.update_perm pt ~vaddr:va0 ~perm:Pte.perm_ro);
  (match Page_table.resolve pt ~vaddr:va0 with
   | Some tr -> checkb "now ro" false tr.Mmu.perm.Pte.write
   | None -> Alcotest.fail "fault");
  expect_wf "all obligations" (Pt_refine.all pt)

let test_destroy_returns_tables () =
  let _, alloc, pt = mk_pt () in
  let before = Page_alloc.allocated_pages alloc in
  let frame = user_frame alloc in
  expect "map" (Page_table.map_4k pt ~vaddr:va0 ~frame ~perm:Pte.perm_rw);
  let still_mapped = Page_table.destroy pt in
  checkb "mapped frame reported" true (Iset.mem frame still_mapped);
  (* all table pages returned: allocated set back to pre-creation minus
     nothing (root existed before `before` was taken, so subtract) *)
  let after = Page_alloc.allocated_pages alloc in
  checkb "tables freed" true (Iset.cardinal after < Iset.cardinal before)

let test_missing_tables_exact () =
  let _, alloc, pt = mk_pt () in
  (* fresh table: a 4K map needs L3+L2+L1 = 3 new tables *)
  checki "3 tables for first 4k" 3
    (Page_table.missing_tables pt ~vaddrs:[ (va0, Page_state.S4k) ]);
  (* two adjacent pages share all three *)
  checki "adjacent shares tables" 3
    (Page_table.missing_tables pt
       ~vaddrs:[ (va0, Page_state.S4k); (va0 + 4096, Page_state.S4k) ]);
  let frame = user_frame alloc in
  expect "map" (Page_table.map_4k pt ~vaddr:va0 ~frame ~perm:Pte.perm_rw);
  checki "nothing missing afterwards" 0
    (Page_table.missing_tables pt ~vaddrs:[ (va0 + 4096, Page_state.S4k) ]);
  (* a 2M map in a fresh L4 slot needs L3+L2 *)
  checki "2m needs two" 2
    (Page_table.missing_tables pt ~vaddrs:[ (1 lsl 39, Page_state.S2m) ])

let test_prune_empty_tables () =
  let _, alloc, pt = mk_pt () in
  let frame = user_frame alloc in
  expect "map" (Page_table.map_4k pt ~vaddr:va0 ~frame ~perm:Pte.perm_rw);
  ignore (expect "unmap" (Page_table.unmap pt ~vaddr:va0));
  let closure_before = Iset.cardinal (Page_table.page_closure pt) in
  let freed = Page_table.prune_empty_tables pt ~keep:Iset.empty in
  checki "three empties pruned" 3 freed;
  checki "closure shrank" (closure_before - 3) (Iset.cardinal (Page_table.page_closure pt));
  expect_wf "all obligations" (Pt_refine.all pt)

let test_step_hook_consistency () =
  (* §4.2: every concrete table write is a separate step; non-leaf
     writes never change the MMU-visible mapping, a leaf write changes
     exactly one entry. *)
  let _, alloc, pt = mk_pt () in
  let snapshot () =
    List.sort compare (Page_table.walk_concrete pt)
  in
  let prev = ref (snapshot ()) in
  let violations = ref 0 in
  Page_table.set_step_hook pt
    (Some
       (fun ~leaf ->
         let now = snapshot () in
         let changed = List.length now - List.length !prev in
         if leaf then begin
           if abs changed <> 1 then incr violations
         end
         else if now <> !prev then incr violations;
         prev := now));
  let frame = user_frame alloc in
  expect "map" (Page_table.map_4k pt ~vaddr:va0 ~frame ~perm:Pte.perm_rw);
  ignore (expect "unmap" (Page_table.unmap pt ~vaddr:va0));
  Page_table.set_step_hook pt None;
  checki "no intermediate-state violations" 0 !violations

let test_mmu_probe_agrees () =
  let _, alloc, pt = mk_pt () in
  let frame = user_frame alloc in
  expect "map" (Page_table.map_4k pt ~vaddr:va0 ~frame ~perm:Pte.perm_rw);
  expect_wf "probe"
    (Pt_refine.mmu_probe pt
       ~vaddrs:[ va0; va0 + 100; va0 + 4096; 0; 0x7fff_ffff_f000 ])

let test_nros_agrees_with_flat () =
  let _, alloc, pt = mk_pt ~frames:8192 () in
  for i = 0 to 19 do
    let frame = user_frame alloc in
    expect "map"
      (Page_table.map_4k pt ~vaddr:(va0 + (i * 4096)) ~frame ~perm:Pte.perm_rw)
  done;
  (match Page_alloc.alloc_2m alloc ~purpose:Page_alloc.User with
   | Some big ->
     expect "map 2m"
       (Page_table.map_2m pt ~vaddr:(va0 + (4 * Phys_mem.page_size_2m)) ~frame:big
          ~perm:Pte.perm_rw)
   | None -> Alcotest.fail "no 2m");
  expect_wf "flat" (Pt_refine.all pt);
  expect_wf "recursive" (Nros_pt.all pt);
  (* the recursive interpretation equals the flat hardware walk *)
  checkb "interps agree" true
    (List.sort compare (Nros_pt.interp pt)
     = List.sort compare (Page_table.walk_concrete pt))

let test_checkers_catch_corruption () =
  let mem, alloc, pt = mk_pt () in
  let frame = user_frame alloc in
  expect "map" (Page_table.map_4k pt ~vaddr:va0 ~frame ~perm:Pte.perm_rw);
  (* corrupt the leaf behind the ghost map's back *)
  (match Page_table.resolve pt ~vaddr:va0 with
   | Some _ ->
     let l1e =
       (* find the leaf's physical slot by walking manually *)
       let cr3 = Page_table.cr3 pt in
       let e4 = Phys_mem.read_u64 mem ~addr:(Mmu.entry_addr ~table:cr3 ~index:(Mmu.l4_index va0)) in
       let e3 = Phys_mem.read_u64 mem ~addr:(Mmu.entry_addr ~table:(Pte.addr_of e4) ~index:(Mmu.l3_index va0)) in
       let e2 = Phys_mem.read_u64 mem ~addr:(Mmu.entry_addr ~table:(Pte.addr_of e3) ~index:(Mmu.l2_index va0)) in
       Mmu.entry_addr ~table:(Pte.addr_of e2) ~index:(Mmu.l1_index va0)
     in
     Phys_mem.write_u64 mem ~addr:l1e Pte.not_present;
     checkb "flat refinement detects" true (Pt_refine.refinement pt <> Ok ());
     checkb "recursive refinement detects" true (Nros_pt.refinement pt <> Ok ())
   | None -> Alcotest.fail "fault")

let prop_random_map_unmap_refines =
  QCheck.Test.make ~name:"refinement holds under random map/unmap sequences" ~count:40
    QCheck.(list (pair bool (int_bound 63)))
    (fun ops ->
      let _, alloc, pt = mk_pt () in
      List.iter
        (fun (do_map, slot) ->
          let vaddr = va0 + (slot * 4096) in
          if do_map then begin
            match Page_alloc.alloc_4k alloc ~purpose:Page_alloc.User with
            | Some frame ->
              (match Page_table.map_4k pt ~vaddr ~frame ~perm:Pte.perm_rw with
               | Ok () -> ()
               | Error _ -> ignore (Page_alloc.dec_ref alloc ~addr:frame))
            | None -> ()
          end
          else
            match Page_table.unmap pt ~vaddr with
            | Ok e -> ignore (Page_alloc.dec_ref alloc ~addr:e.Page_table.frame)
            | Error _ -> ())
        ops;
      Pt_refine.all pt = Ok () && Nros_pt.all pt = Ok ())

let prop_mixed_sizes_refine =
  (* random interleavings of 4K and 2M map/unmap keep both checkers
     green, including the size-conflict rejections along the way *)
  QCheck.Test.make ~name:"refinement holds under mixed 4K/2M traffic" ~count:25
    QCheck.(list (triple bool bool (int_bound 15)))
    (fun ops ->
      let _, alloc, pt = mk_pt ~frames:16384 () in
      List.iter
        (fun (do_map, big, slot) ->
          let vaddr =
            if big then va0 + (slot * Phys_mem.page_size_2m)
            else va0 + (slot * 4096)
          in
          if do_map then begin
            let frame =
              if big then Page_alloc.alloc_2m alloc ~purpose:Page_alloc.User
              else Page_alloc.alloc_4k alloc ~purpose:Page_alloc.User
            in
            match frame with
            | None -> ()
            | Some frame ->
              let r =
                if big then Page_table.map_2m pt ~vaddr ~frame ~perm:Pte.perm_rw
                else Page_table.map_4k pt ~vaddr ~frame ~perm:Pte.perm_rw
              in
              (match r with
               | Ok () -> ()
               | Error _ -> ignore (Page_alloc.dec_ref alloc ~addr:frame))
          end
          else
            match Page_table.unmap pt ~vaddr with
            | Ok e -> ignore (Page_alloc.dec_ref alloc ~addr:e.Page_table.frame)
            | Error _ -> ())
        ops;
      Pt_refine.all pt = Ok () && Nros_pt.all pt = Ok ()
      && Page_alloc.wf alloc = Ok ())

let () =
  Atmo_san.Runtime.arm_of_env ();
  Alcotest.run ~and_exit:false "pt"
    [
      ( "mapping",
        [
          Alcotest.test_case "map/resolve 4k" `Quick test_map_resolve_4k;
          Alcotest.test_case "map/unmap round trip" `Quick test_map_unmap_roundtrip;
          Alcotest.test_case "double map rejected" `Quick test_double_map_rejected;
          Alcotest.test_case "misaligned rejected" `Quick test_misaligned_rejected;
          Alcotest.test_case "size conflicts" `Quick test_size_conflicts;
          Alcotest.test_case "huge mappings" `Quick test_huge_mappings_resolve;
          Alcotest.test_case "update perm" `Quick test_update_perm;
          Alcotest.test_case "destroy" `Quick test_destroy_returns_tables;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "missing_tables exact" `Quick test_missing_tables_exact;
          Alcotest.test_case "prune empty tables" `Quick test_prune_empty_tables;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "step consistency" `Quick test_step_hook_consistency;
          Alcotest.test_case "mmu probe" `Quick test_mmu_probe_agrees;
          Alcotest.test_case "nros agrees with flat" `Quick test_nros_agrees_with_flat;
          Alcotest.test_case "checkers catch corruption" `Quick test_checkers_catch_corruption;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_map_unmap_refines; prop_mixed_sizes_refine ] );
    ];
  Atmo_san.Runtime.exit_check ()
