(* Span layer: request-path reconstruction over the kv-store demo
   workload, per-container cycle accounting, histogram merging,
   deterministic metric dumps, exporters, and ring-wraparound behaviour
   of the span decoder. *)

module Event = Atmo_obs.Event
module Flight = Atmo_obs.Flight
module Metrics = Atmo_obs.Metrics
module Sink = Atmo_obs.Sink
module Span = Atmo_obs.Span
module Profile = Atmo_obs.Profile
module Export = Atmo_obs.Export
module Kv_demo = Atmo_workloads.Kv_demo

(* Run [f] with a fresh flight recorder installed; always restore the
   Disabled sink, the constant clock, and the span state. *)
let with_flight ?(slots = 4096) f =
  Metrics.reset ();
  Span.reset ();
  let recorder = Flight.create ~cpus:2 ~slots ~slot_size:Event.slot_bytes in
  Sink.install (Sink.Flight recorder);
  Fun.protect
    ~finally:(fun () ->
      Sink.install Sink.Disabled;
      Sink.set_clock (fun () -> 0);
      Sink.set_cpu 0;
      Span.reset ())
    (fun () -> f recorder)

(* ------------------------------------------------------------------ *)
(* zero overhead: the kv workload's cycle model is sink-independent    *)

let test_kv_disabled_identity () =
  Sink.install Sink.Disabled;
  Span.reset ();
  let base = Kv_demo.run ~requests:6 () in
  let traced, events =
    with_flight (fun _ ->
        let r = Kv_demo.run ~requests:6 () in
        (r, Sink.records ()))
  in
  Alcotest.(check int) "end cycles identical" base.Kv_demo.end_cycles
    traced.Kv_demo.end_cycles;
  Alcotest.(check (list int)) "per-request latencies identical" base.Kv_demo.latencies
    traced.Kv_demo.latencies;
  Alcotest.(check int) "every GET hit" base.Kv_demo.requests base.Kv_demo.hits;
  Alcotest.(check bool) "identical abstract kernel state" true
    (base.Kv_demo.abstract = traced.Kv_demo.abstract);
  let has tag = List.exists (fun (r : Event.record) -> tag r.Event.ev) events in
  Alcotest.(check bool) "traced run recorded span begins" true
    (has (function Event.Span_begin _ -> true | _ -> false));
  Alcotest.(check bool) "traced run recorded span ends" true
    (has (function Event.Span_end _ -> true | _ -> false));
  Alcotest.(check bool) "traced run recorded causal edges" true
    (has (function Event.Causal _ -> true | _ -> false))

(* ------------------------------------------------------------------ *)
(* the acceptance scenario: one GET reconstructs end to end            *)

let test_kv_request_path_reconstructs () =
  let events =
    with_flight (fun _ ->
        ignore (Kv_demo.run ~requests:4 ());
        Sink.records ())
  in
  let p = Profile.build events in
  Alcotest.(check int) "ring held the whole run" 0 (Profile.truncated p);
  let requests =
    List.filter (fun s -> s.Profile.kind = Span.code Span.Request) (Profile.spans p)
  in
  Alcotest.(check int) "one request root per GET" 4 (List.length requests);
  let handler_code = Span.code (Span.register_app "kv_handler") in
  List.iter
    (fun (req : Profile.span) ->
      Alcotest.(check bool) "request span closed" true req.Profile.ended;
      Alcotest.(check bool) "request has positive duration" true
        (Profile.duration req > 0);
      let reach = Profile.reachable p ~from:req.Profile.id in
      let kind_of id =
        match Profile.find p id with Some s -> s.Profile.kind | None -> -1
      in
      let kinds = List.map kind_of reach in
      let mem k = List.mem (Span.code k) kinds in
      (* the path crosses the IPC rendezvous into the server... *)
      Alcotest.(check bool) "reaches an IPC rendezvous" true (mem Span.Ipc_rendezvous);
      Alcotest.(check bool) "reaches the kv handler" true (List.mem handler_code kinds);
      (* ...and the driver round trip inside the handler *)
      Alcotest.(check bool) "reaches the driver submit" true (mem Span.Drv_submit);
      Alcotest.(check bool) "reaches the driver completion" true (mem Span.Drv_complete);
      (* spans on both CPUs participate *)
      let cpus =
        List.sort_uniq compare (List.filter_map (fun id ->
            Option.map (fun s -> s.Profile.cpu) (Profile.find p id)) reach)
      in
      Alcotest.(check (list int)) "path crosses both CPUs" [ 0; 1 ] cpus;
      (* the connecting edges are the advertised causal kinds *)
      let ekinds = List.map (fun e -> e.Profile.ekind) (Profile.edges_within p reach) in
      Alcotest.(check bool) "ipc edge present" true (List.mem 1 ekinds);
      Alcotest.(check bool) "drv edge present" true (List.mem 3 ekinds);
      Alcotest.(check bool) "wakeup edge present" true (List.mem 4 ekinds))
    requests;
  (* the collapsed stacks and kind table agree on the span population *)
  let folded = Profile.collapsed p in
  Alcotest.(check bool) "collapsed stacks non-empty" true (folded <> []);
  Alcotest.(check bool) "a request-rooted stack exists" true
    (List.exists (fun (path, _) -> String.length path >= 7 && String.sub path 0 7 = "request")
       folded);
  let table = Profile.kind_table p in
  let total_self = List.fold_left (fun a (k : Profile.kind_stat) -> a + k.Profile.self) 0 table in
  let folded_self = List.fold_left (fun a (_, s) -> a + s) 0 folded in
  Alcotest.(check int) "kind table self == folded self" total_self folded_self

(* ------------------------------------------------------------------ *)
(* accounting: per-container cycles partition the whole-run total      *)

let test_container_cycles_sum_to_total () =
  let result = with_flight (fun _ -> Kv_demo.run ~requests:5 ()) in
  let total = Metrics.Counter.value (Metrics.counter "cycles/total") in
  Alcotest.(check bool) "whole-run total is positive" true (total > 0);
  let sum_family prefix =
    List.fold_left
      (fun acc (name, c) ->
        if String.starts_with ~prefix name then acc + Metrics.Counter.value c else acc)
      0 (Metrics.all_counters ())
  in
  Alcotest.(check int) "container self-cycles partition the total" total
    (sum_family "cycles/container/");
  Alcotest.(check int) "process self-cycles partition the total" total
    (sum_family "cycles/process/");
  let per c = Metrics.Counter.value (Metrics.counter ("cycles/container/" ^ string_of_int c)) in
  Alcotest.(check bool) "client container charged" true
    (per result.Kv_demo.client_container > 0);
  Alcotest.(check bool) "server container charged" true
    (per result.Kv_demo.server_container > 0)

(* ------------------------------------------------------------------ *)
(* histogram merging (bench-report shard aggregation)                  *)

let test_histogram_merge () =
  let a = Metrics.Histogram.make "merge/a" in
  let b = Metrics.Histogram.make "merge/b" in
  List.iter (Metrics.Histogram.observe a) [ 1; 2; 3; 1000 ];
  List.iter (Metrics.Histogram.observe b) [ 5; 7 ];
  Metrics.Histogram.merge ~into:a b;
  Alcotest.(check int) "count adds" 6 (Metrics.Histogram.count a);
  Alcotest.(check int) "sum adds" 1018 (Metrics.Histogram.sum a);
  Alcotest.(check int) "min keeps" 1 (Metrics.Histogram.min_value a);
  Alcotest.(check int) "max keeps" 1000 (Metrics.Histogram.max_value a);
  (* bucket-exact: merging shards equals observing everything in one *)
  let c = Metrics.Histogram.make "merge/c" in
  List.iter (Metrics.Histogram.observe c) [ 1; 2; 3; 1000; 5; 7 ];
  Alcotest.(check (array int)) "buckets equal the unsharded histogram"
    (Metrics.Histogram.buckets c) (Metrics.Histogram.buckets a);
  Alcotest.(check int) "p99 equal" (Metrics.Histogram.p99 c) (Metrics.Histogram.p99 a);
  (* merging an empty source or a histogram into itself changes nothing *)
  let e = Metrics.Histogram.make "merge/e" in
  Metrics.Histogram.merge ~into:a e;
  Metrics.Histogram.merge ~into:a a;
  Alcotest.(check int) "self/empty merges are no-ops" 6 (Metrics.Histogram.count a);
  Alcotest.(check int) "source unchanged" 2 (Metrics.Histogram.count b)

(* ------------------------------------------------------------------ *)
(* deterministic registry dumps                                        *)

let test_metrics_dump_deterministic () =
  Metrics.reset ();
  ignore (Metrics.counter "zz/ctr");
  Metrics.bump ~by:5 "aa/ctr";
  Metrics.observe "aa/hist" 7;
  ignore (Metrics.histogram "zz/hist");
  let d1 = Metrics.dump () in
  let d2 = Metrics.dump () in
  Alcotest.(check string) "dump is stable" d1 d2;
  let index sub =
    let rec go i =
      if i + String.length sub > String.length d1 then Alcotest.failf "missing %S" sub
      else if String.sub d1 i (String.length sub) = sub then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "counters sorted by name" true
    (index "counter aa/ctr" < index "counter zz/ctr");
  Alcotest.(check bool) "counters precede histograms" true
    (index "counter zz/ctr" < index "histogram aa/hist");
  Alcotest.(check bool) "zero-valued metrics included" true
    (index "counter zz/ctr 0" >= 0)

(* ------------------------------------------------------------------ *)
(* exporters                                                           *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let count_occurrences s sub =
  let n = String.length sub in
  let rec go i acc =
    if i + n > String.length s then acc
    else if String.sub s i n = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_chrome_export () =
  let events =
    with_flight (fun _ ->
        ignore (Kv_demo.run ~requests:2 ());
        Sink.records ())
  in
  let json = String.trim (Export.chrome_trace events) in
  Alcotest.(check bool) "is a JSON array" true
    (String.length json > 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  Alcotest.(check int) "begin/end slices balance"
    (count_occurrences json "\"ph\":\"B\"")
    (count_occurrences json "\"ph\":\"E\"");
  Alcotest.(check int) "flow starts pair with flow finishes"
    (count_occurrences json "\"ph\":\"s\"")
    (count_occurrences json "\"ph\":\"f\"");
  Alcotest.(check bool) "has flow events" true (contains json "\"ph\":\"s\"");
  Alcotest.(check bool) "names the request span" true (contains json "\"request\"")

let test_prometheus_export () =
  let prom =
    with_flight (fun _ ->
        ignore (Kv_demo.run ~requests:2 ());
        Export.prometheus ())
  in
  Alcotest.(check bool) "counter family exported" true
    (contains prom "# TYPE atmo_cycles_total counter");
  Alcotest.(check bool) "histogram family exported" true
    (contains prom "# TYPE atmo_lat_nvme_io histogram");
  Alcotest.(check bool) "cumulative buckets present" true
    (contains prom "atmo_lat_nvme_io_bucket{le=\"+Inf\"}");
  Alcotest.(check bool) "sum and count present" true
    (contains prom "atmo_lat_nvme_io_count")

(* ------------------------------------------------------------------ *)
(* ring wraparound through the span decoder                            *)

let test_span_wraparound_decode () =
  with_flight ~slots:8 (fun recorder ->
      Sink.set_cpu 0;
      (* 20 one-shot spans = 40 events through an 8-slot ring *)
      for i = 1 to 20 do
        let s = Span.begin_ ~ts:i Span.User in
        Span.end_ ~ts:i s
      done;
      let rs = Sink.records () in
      Alcotest.(check int) "exactly capacity events survive" 8 (List.length rs);
      Alcotest.(check int) "drop counter saw the rest" 32 (Flight.total_dropped recorder);
      let ts = List.map (fun (r : Event.record) -> r.Event.ts) rs in
      Alcotest.(check (list int)) "newest events, oldest first"
        [ 17; 17; 18; 18; 19; 19; 20; 20 ] ts;
      (* every surviving slot decodes to a span event — no torn slots *)
      Alcotest.(check bool) "all survivors are span events" true
        (List.for_all
           (fun (r : Event.record) ->
             match r.Event.ev with
             | Event.Span_begin _ | Event.Span_end _ -> true
             | _ -> false)
           rs);
      let p = Profile.build rs in
      Alcotest.(check int) "aligned wrap: no truncated spans" 0 (Profile.truncated p);
      Alcotest.(check int) "four whole spans rebuilt" 4 (Profile.span_count p));
  (* torn wrap: an enclosing span's begin is overwritten by its own
     children before the end arrives; the profiler counts the orphan
     end as truncated instead of crashing or inventing a span *)
  with_flight ~slots:8 (fun _ ->
      Sink.set_cpu 0;
      let outer = Span.begin_ ~ts:0 Span.Request in
      for i = 1 to 10 do
        let s = Span.begin_ ~ts:i Span.User in
        Span.end_ ~ts:i s
      done;
      Span.end_ ~ts:11 outer;
      let rs = Sink.records () in
      Alcotest.(check int) "capacity events survive" 8 (List.length rs);
      let p = Profile.build rs in
      (* two orphans: the outer end, plus the child end the 8-event
         window cut in half *)
      Alcotest.(check int) "orphan ends counted as truncated" 2 (Profile.truncated p))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "span"
    [
      ( "kv-demo",
        [
          Alcotest.test_case "disabled sink is bit-identical" `Quick
            test_kv_disabled_identity;
          Alcotest.test_case "request path reconstructs" `Quick
            test_kv_request_path_reconstructs;
          Alcotest.test_case "container cycles sum to total" `Quick
            test_container_cycles_sum_to_total;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "dump deterministic" `Quick test_metrics_dump_deterministic;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace" `Quick test_chrome_export;
          Alcotest.test_case "prometheus text" `Quick test_prometheus_export;
        ] );
      ( "flight",
        [
          Alcotest.test_case "wraparound decode" `Quick test_span_wraparound_decode;
        ] );
    ]
