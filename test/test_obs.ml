(* Observability subsystem: flight-recorder ring invariants, event
   encode/decode round-trips, histogram quantiles, and the zero-overhead
   contract of the Disabled sink. *)

module Event = Atmo_obs.Event
module Flight = Atmo_obs.Flight
module Metrics = Atmo_obs.Metrics
module Sink = Atmo_obs.Sink
module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Errno = Atmo_util.Errno

let payload i = Event.encode ~ts:i ~cpu:0 (Event.Page_alloc { addr = i; order = 0 })

let ts_of b =
  match Event.decode b with
  | Some r -> r.Event.ts
  | None -> Alcotest.fail "undecodable slot"

(* ------------------------------------------------------------------ *)
(* flight recorder rings                                               *)

let test_ring_fill () =
  let f = Flight.create ~cpus:1 ~slots:8 ~slot_size:Event.slot_bytes in
  Alcotest.(check int) "empty" 0 (Flight.length f ~cpu:0);
  for i = 0 to 4 do
    Flight.push f ~cpu:0 (payload i)
  done;
  Alcotest.(check int) "length" 5 (Flight.length f ~cpu:0);
  Alcotest.(check int) "no drops" 0 (Flight.dropped f ~cpu:0);
  Alcotest.(check (list int)) "oldest first" [ 0; 1; 2; 3; 4 ]
    (List.map ts_of (Flight.to_list f ~cpu:0))

let test_ring_wraparound () =
  let f = Flight.create ~cpus:1 ~slots:8 ~slot_size:Event.slot_bytes in
  for i = 0 to 19 do
    Flight.push f ~cpu:0 (payload i)
  done;
  Alcotest.(check int) "capped at slots" 8 (Flight.length f ~cpu:0);
  Alcotest.(check int) "drop counter" 12 (Flight.dropped f ~cpu:0);
  Alcotest.(check int) "head counts all pushes" 20 (Flight.head f ~cpu:0);
  (* oldest 12 were overwritten: the survivors are exactly 12..19 *)
  Alcotest.(check (list int)) "last slots survive, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map ts_of (Flight.to_list f ~cpu:0))

let test_ring_per_cpu_isolation () =
  let f = Flight.create ~cpus:2 ~slots:4 ~slot_size:Event.slot_bytes in
  for i = 0 to 9 do
    Flight.push f ~cpu:1 (payload i)
  done;
  Alcotest.(check int) "cpu0 untouched" 0 (Flight.length f ~cpu:0);
  Alcotest.(check int) "cpu1 full" 4 (Flight.length f ~cpu:1);
  Alcotest.(check int) "cpu1 drops" 6 (Flight.dropped f ~cpu:1);
  Alcotest.(check int) "total drops" 6 (Flight.total_dropped f);
  Flight.clear f;
  Alcotest.(check int) "clear resets length" 0 (Flight.length f ~cpu:1);
  Alcotest.(check int) "clear resets ring drop word" 0 (Flight.dropped f ~cpu:1);
  (* the lossless tally is not part of the ring state: drop accounting
     must survive a clear or benchmarks under-report *)
  Alcotest.(check int) "lifetime drops survive clear" 6 (Flight.total_dropped f);
  for i = 0 to 4 do
    Flight.push f ~cpu:1 (payload i)
  done;
  Alcotest.(check int) "post-clear drops accumulate" 7 (Flight.total_dropped f);
  Alcotest.(check int) "per-cpu lifetime view" 7 (Flight.lifetime_dropped f ~cpu:1)

let test_ring_rejects_bad_geometry () =
  Alcotest.check_raises "slots must be a power of two"
    (Invalid_argument "Flight.create: slots must be a positive power of two")
    (fun () -> ignore (Flight.create ~cpus:1 ~slots:6 ~slot_size:Event.slot_bytes))

(* ------------------------------------------------------------------ *)
(* event encode/decode                                                 *)

let sample_events =
  [
    Event.Syscall_enter { thread = 0x14000; sysno = 8 };
    Event.Syscall_exit { thread = 0x14000; sysno = 8; errno = None };
    Event.Syscall_exit { thread = 1; sysno = 0; errno = Some Errno.Enomem };
    Event.Page_alloc { addr = 0x15000; order = 0 };
    Event.Page_free { addr = 0x200000; order = 1 };
    Event.Superpage_merge { head = 0x200000; order = 1 };
    Event.Ep_create { container = 0x10000 };
    Event.Ep_send { ep = 0x15000; sender = 0x13000; receiver = 0x14000 };
    Event.Ep_recv { ep = 0x15000; receiver = 0x14000; sender = 0x13000 };
    Event.Ep_block { ep = 0x15000; thread = 0x14000; dir = Event.Dir_recv };
    Event.Ep_block { ep = 0x15000; thread = 0x13000; dir = Event.Dir_send };
    Event.Mmu_walk { vaddr = 0x4000_0000; ok = true };
    Event.Mmu_walk { vaddr = 0x7fff_0000; ok = false };
    Event.Pte_touch { table = 0x3000; index = 511 };
    Event.Drv_doorbell { device = 7; queue = 0 };
    Event.Drv_completion { device = 7; count = 32 };
    Event.Lock_acquire { cpu = 3; wait_cycles = 458 };
    Event.Tlb_hit { vaddr = 0x4000_1000 };
    Event.Tlb_miss { vaddr = 0x4000_2000 };
    Event.Tlb_flush { asid = 0x3000; entries = 17 };
    Event.Ep_fastpath { ep = 0x15000; sender = 0x13000; receiver = 0x14000 };
    Event.Span_begin { span = 42; parent = 7; kind = 2; owner = 0x10000 };
    Event.Span_end { span = 42; kind = 2; owner = 0x10000 };
    Event.Causal { edge = 1; src = 42; dst = 43 };
    Event.Dev_fault { device = 11; fault = 1 };
    Event.Dev_fault { device = 13; fault = 7 };
    Event.Dev_recover { device = 11; fault = 4 };
    Event.Span_pair { span = 44; parent = 42; kind = 3; owner = 0x10000 };
  ]

let test_samples_cover_every_tag () =
  let tags = List.sort_uniq compare (List.map Event.tag_of sample_events) in
  Alcotest.(check (list int)) "one sample per tag code"
    (List.init Event.tag_count (fun i -> i + 1))
    tags

let test_roundtrip_samples () =
  List.iter
    (fun ev ->
      let b = Event.encode ~ts:12345 ~cpu:1 ev in
      Alcotest.(check int) "slot size" Event.slot_bytes (Bytes.length b);
      match Event.decode b with
      | None -> Alcotest.failf "decode failed for %s" (Fmt.to_to_string Event.pp ev)
      | Some r ->
        Alcotest.(check bool) "event survives" true (Event.equal ev r.Event.ev);
        Alcotest.(check int) "ts survives" 12345 r.Event.ts;
        Alcotest.(check int) "cpu survives" 1 r.Event.cpu)
    sample_events

let test_empty_slot_decodes_to_none () =
  Alcotest.(check bool) "zeroed slot is empty" true
    (Event.decode (Bytes.make Event.slot_bytes '\000') = None)

let gen_event =
  let open QCheck.Gen in
  let id = int_bound 0xfffff in
  let sysno = int_bound (Event.syscall_count - 1) in
  let errno =
    oneofl
      [ None; Some Errno.Enomem; Some Errno.Einval; Some Errno.Eperm; Some Errno.Ebusy ]
  in
  oneof
    [
      map2 (fun thread sysno -> Event.Syscall_enter { thread; sysno }) id sysno;
      map3
        (fun thread sysno errno -> Event.Syscall_exit { thread; sysno; errno })
        id sysno errno;
      map2 (fun addr order -> Event.Page_alloc { addr; order }) id (int_bound 2);
      map2 (fun addr order -> Event.Page_free { addr; order }) id (int_bound 2);
      map2 (fun head order -> Event.Superpage_merge { head; order }) id (int_bound 2);
      map (fun container -> Event.Ep_create { container }) id;
      map3 (fun ep sender receiver -> Event.Ep_send { ep; sender; receiver }) id id id;
      map3 (fun ep receiver sender -> Event.Ep_recv { ep; receiver; sender }) id id id;
      map3
        (fun ep thread d ->
          Event.Ep_block { ep; thread; dir = (if d then Event.Dir_send else Event.Dir_recv) })
        id id bool;
      map2 (fun vaddr ok -> Event.Mmu_walk { vaddr; ok }) id bool;
      map2 (fun table index -> Event.Pte_touch { table; index }) id (int_bound 511);
      map2 (fun device queue -> Event.Drv_doorbell { device; queue }) (int_bound 255)
        (int_bound 255);
      map2 (fun device count -> Event.Drv_completion { device; count }) (int_bound 255) id;
      map2 (fun cpu wait_cycles -> Event.Lock_acquire { cpu; wait_cycles }) (int_bound 255)
        id;
    ]

let arb_event = QCheck.make ~print:(Fmt.to_to_string Event.pp) gen_event

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trips any event" ~count:500
    QCheck.(triple arb_event (int_bound 0x3fff_ffff) (int_bound 7))
    (fun (ev, ts, cpu) ->
      match Event.decode (Event.encode ~ts ~cpu ev) with
      | None -> false
      | Some r -> Event.equal ev r.Event.ev && r.Event.ts = ts && r.Event.cpu = cpu)

let test_syscall_names_match_spec () =
  let calls =
    [
      Syscall.Mmap
        { va = 0; count = 1; size = Atmo_pmem.Page_state.S4k; perm = Atmo_hw.Pte_bits.perm_rw };
      Syscall.Munmap { va = 0; count = 1; size = Atmo_pmem.Page_state.S4k };
      Syscall.Mprotect { va = 0; perm = Atmo_hw.Pte_bits.perm_rw };
      Syscall.New_container { quota = 1; cpus = Atmo_util.Iset.empty };
      Syscall.New_process;
      Syscall.New_thread;
      Syscall.New_endpoint { slot = 0 };
      Syscall.Close_endpoint { slot = 0 };
      Syscall.Send { slot = 0; msg = Atmo_pm.Message.scalars_only [] };
      Syscall.Recv { slot = 0 };
      Syscall.Send_nb { slot = 0; msg = Atmo_pm.Message.scalars_only [] };
      Syscall.Recv_nb { slot = 0 };
      Syscall.Recv_reject { slot = 0 };
      Syscall.Yield;
      Syscall.Terminate_container { container = 0 };
      Syscall.Terminate_process { proc = 0 };
      Syscall.Assign_device { device = 0 };
      Syscall.Io_map { device = 0; iova = 0; va = 0 };
      Syscall.Io_unmap { device = 0; iova = 0 };
      Syscall.Register_irq { device = 0; slot = 0 };
      Syscall.Irq_fire { device = 0 };
    ]
  in
  Alcotest.(check int) "one sample per syscall" Event.syscall_count (List.length calls);
  List.iter
    (fun c ->
      Alcotest.(check string)
        (Printf.sprintf "number %d" (Syscall.number c))
        (Syscall.name c)
        (Event.syscall_name (Syscall.number c)))
    calls

(* ------------------------------------------------------------------ *)
(* histograms                                                          *)

let test_histogram_basics () =
  let h = Metrics.Histogram.make "t" in
  Alcotest.(check int) "empty quantile" 0 (Metrics.Histogram.p99 h);
  List.iter (Metrics.Histogram.observe h) [ 1; 2; 3; 100; 1000 ];
  Alcotest.(check int) "count" 5 (Metrics.Histogram.count h);
  Alcotest.(check int) "sum" 1106 (Metrics.Histogram.sum h);
  Alcotest.(check int) "min" 1 (Metrics.Histogram.min_value h);
  Alcotest.(check int) "max" 1000 (Metrics.Histogram.max_value h);
  (* quantiles land on bucket upper edges, clamped to observed extremes *)
  Alcotest.(check int) "p50 in third bucket" 3 (Metrics.Histogram.p50 h);
  Alcotest.(check int) "p99 clamps to max" 1000 (Metrics.Histogram.p99 h)

let test_counter_monotonic () =
  let c = Metrics.Counter.make "t" in
  Metrics.Counter.incr c;
  Metrics.Counter.incr ~by:5 c;
  Metrics.Counter.incr ~by:(-3) c;
  Alcotest.(check int) "negative increments ignored" 6 (Metrics.Counter.value c)

let prop_quantiles_monotone =
  QCheck.Test.make ~name:"histogram quantiles are monotone and bounded" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 1_000_000))
    (fun samples ->
      let h = Metrics.Histogram.make "q" in
      List.iter (Metrics.Histogram.observe h) samples;
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let vs = List.map (Metrics.Histogram.quantile h) qs in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      let lo = List.fold_left min max_int samples in
      let hi = List.fold_left max 0 samples in
      monotone vs && List.for_all (fun v -> v >= lo && v <= hi) vs)

(* ------------------------------------------------------------------ *)
(* sink: Disabled must be free, Flight must be cycle-model-neutral     *)

(* the kernel-heavy SMP ping-pong from the trace CLI, shrunk *)
let run_workload () =
  match Kernel.boot Kernel.default_boot with
  | Error e -> Alcotest.failf "boot: %s" (Fmt.to_to_string Errno.pp e)
  | Ok (k, init) ->
    let t2 =
      match Kernel.step k ~thread:init Syscall.New_thread with
      | Syscall.Rptr t -> t
      | _ -> Alcotest.fail "new_thread"
    in
    (match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
     | Syscall.Rptr ep ->
       Atmo_pm.Perm_map.update k.Kernel.pm.Atmo_pm.Proc_mgr.thrd_perms ~ptr:t2 (fun th ->
           Atmo_pm.Thread.set_slot th 0 (Some ep))
     | _ -> Alcotest.fail "new_endpoint");
    let programs =
      [
        { Atmo_sim.Smp.thread = t2; think_cycles = 600;
          call_of = (fun _ -> Syscall.Recv { slot = 0 }) };
        { Atmo_sim.Smp.thread = init; think_cycles = 800;
          call_of =
            (fun i -> Syscall.Send { slot = 0; msg = Atmo_pm.Message.scalars_only [ i ] }) };
      ]
    in
    (match Atmo_sim.Smp.run k ~cost:Atmo_sim.Cost.default ~cpus:2 ~programs ~iterations:50 with
     | Ok s -> (s, Atmo_core.Abstraction.abstract k)
     | Error msg -> Alcotest.failf "smp: %s" msg)

let test_disabled_sink_is_bit_identical () =
  Sink.install Sink.Disabled;
  let base_stats, base_abs = run_workload () in
  let recorder = Flight.create ~cpus:2 ~slots:256 ~slot_size:Event.slot_bytes in
  Sink.install (Sink.Flight recorder);
  let traced_stats, traced_abs = run_workload () in
  Sink.install Sink.Disabled;
  (* the simulated-cycle accounting must not move at all under tracing *)
  Alcotest.(check int) "wall cycles" base_stats.Atmo_sim.Smp.wall_cycles
    traced_stats.Atmo_sim.Smp.wall_cycles;
  Alcotest.(check int) "lock wait cycles" base_stats.Atmo_sim.Smp.lock_wait_cycles
    traced_stats.Atmo_sim.Smp.lock_wait_cycles;
  Alcotest.(check (array int)) "per-cpu busy cycles" base_stats.Atmo_sim.Smp.busy_cycles
    traced_stats.Atmo_sim.Smp.busy_cycles;
  Alcotest.(check int) "syscalls executed" base_stats.Atmo_sim.Smp.syscalls_executed
    traced_stats.Atmo_sim.Smp.syscalls_executed;
  Alcotest.(check bool) "identical abstract kernel state" true
    (base_abs = traced_abs);
  (* and the traced run actually recorded the hot paths *)
  Alcotest.(check bool) "flight run captured events" true
    (Flight.length recorder ~cpu:0 + Flight.length recorder ~cpu:1 > 0)

let test_disabled_sink_records_nothing () =
  Sink.install Sink.Disabled;
  Sink.emit (Event.Ep_create { container = 1 });
  Alcotest.(check (list reject)) "no records when disabled" [] (Sink.records ());
  Alcotest.(check int) "no drops when disabled" 0 (Sink.dropped ())

(* ------------------------------------------------------------------ *)
(* zero-allocation writers vs the Event.encode oracle                  *)

(* Dispatch a boxed event to the matching per-tag fast writer. *)
let emit_fast ?ts ?cpu ev =
  match ev with
  | Event.Syscall_enter { thread; sysno } ->
    Sink.emit_syscall_enter ?ts ?cpu ~thread ~sysno ()
  | Event.Syscall_exit { thread; sysno; errno } ->
    Sink.emit_syscall_exit ?ts ?cpu ~thread ~sysno ~errno ()
  | Event.Page_alloc { addr; order } -> Sink.emit_page_alloc ?ts ?cpu ~addr ~order ()
  | Event.Page_free { addr; order } -> Sink.emit_page_free ?ts ?cpu ~addr ~order ()
  | Event.Superpage_merge { head; order } ->
    Sink.emit_superpage_merge ?ts ?cpu ~head ~order ()
  | Event.Ep_create { container } -> Sink.emit_ep_create ?ts ?cpu ~container ()
  | Event.Ep_send { ep; sender; receiver } ->
    Sink.emit_ep_send ?ts ?cpu ~ep ~sender ~receiver ()
  | Event.Ep_recv { ep; receiver; sender } ->
    Sink.emit_ep_recv ?ts ?cpu ~ep ~receiver ~sender ()
  | Event.Ep_block { ep; thread; dir } -> Sink.emit_ep_block ?ts ?cpu ~ep ~thread ~dir ()
  | Event.Mmu_walk { vaddr; ok } -> Sink.emit_mmu_walk ?ts ?cpu ~vaddr ~ok ()
  | Event.Pte_touch { table; index } -> Sink.emit_pte_touch ?ts ?cpu ~table ~index ()
  | Event.Drv_doorbell { device; queue } ->
    Sink.emit_drv_doorbell ?ts ?cpu ~device ~queue ()
  | Event.Drv_completion { device; count } ->
    Sink.emit_drv_completion ?ts ?cpu ~device ~count ()
  | Event.Lock_acquire { cpu = cpu_id; wait_cycles } ->
    Sink.emit_lock_acquire ?ts ?cpu ~cpu_id ~wait_cycles ()
  | Event.Tlb_hit { vaddr } -> Sink.emit_tlb_hit ?ts ?cpu ~vaddr ()
  | Event.Tlb_miss { vaddr } -> Sink.emit_tlb_miss ?ts ?cpu ~vaddr ()
  | Event.Tlb_flush { asid; entries } -> Sink.emit_tlb_flush ?ts ?cpu ~asid ~entries ()
  | Event.Ep_fastpath { ep; sender; receiver } ->
    Sink.emit_ep_fastpath ?ts ?cpu ~ep ~sender ~receiver ()
  | Event.Span_begin { span; parent; kind; owner } ->
    Sink.emit_span_begin ?ts ?cpu ~span ~parent ~kind ~owner ()
  | Event.Span_end { span; kind; owner } ->
    Sink.emit_span_end ?ts ?cpu ~span ~kind ~owner ()
  | Event.Causal { edge; src; dst } -> Sink.emit_causal ?ts ?cpu ~edge ~src ~dst ()
  | Event.Dev_fault { device; fault } -> Sink.emit_dev_fault ?ts ?cpu ~device ~fault ()
  | Event.Dev_recover { device; fault } ->
    Sink.emit_dev_recover ?ts ?cpu ~device ~fault ()
  | Event.Span_pair { span; parent; kind; owner } ->
    Sink.emit_span_pair ?ts ?cpu ~span ~parent ~kind ~owner ()

let arena_slot f idx =
  Bytes.sub (Flight.arena f) (Flight.slot_offset f ~cpu:0 idx) Event.slot_bytes

(* Every tag: the in-arena writer must lay down the exact bytes the
   boxed [emit] (via [Event.encode]) produces. *)
let test_writers_bit_identical_to_oracle () =
  List.iter
    (fun ev ->
      let f = Flight.create ~cpus:1 ~slots:4 ~slot_size:Event.slot_bytes in
      Sink.install (Sink.Flight f);
      Sink.emit ~ts:987654 ~cpu:0 ev;
      emit_fast ~ts:987654 ~cpu:0 ev;
      Sink.install Sink.Disabled;
      Alcotest.(check int) "both paths recorded" 2 (Flight.length f ~cpu:0);
      Alcotest.(check string)
        (Printf.sprintf "arena bytes identical for %s" (Event.kind ev))
        (Bytes.to_string (arena_slot f 0))
        (Bytes.to_string (arena_slot f 1)))
    sample_events

let prop_fast_writer_matches_encode =
  QCheck.Test.make ~name:"fast writers byte-identical to Event.encode" ~count:300
    QCheck.(pair arb_event (int_bound 0x3fff_ffff))
    (fun (ev, ts) ->
      let f = Flight.create ~cpus:1 ~slots:4 ~slot_size:Event.slot_bytes in
      Sink.install (Sink.Flight f);
      emit_fast ~ts ~cpu:0 ev;
      Sink.install Sink.Disabled;
      Bytes.equal (arena_slot f 0) (Event.encode ~ts ~cpu:0 ev))

(* ------------------------------------------------------------------ *)
(* per-tag filtering and sampling                                      *)

let test_filter_mask_gates_kinds () =
  let f = Flight.create ~cpus:1 ~slots:64 ~slot_size:Event.slot_bytes in
  Sink.set_filter (1 lsl Event.tag_page_alloc);
  Sink.install (Sink.Flight f);
  Alcotest.(check bool) "enabled tag live" true (Sink.tracing_tag Event.tag_page_alloc);
  Alcotest.(check bool) "masked tag off" false (Sink.tracing_tag Event.tag_tlb_hit);
  Sink.emit_page_alloc ~ts:1 ~addr:0x1000 ~order:0 ();
  Sink.emit_tlb_hit ~ts:2 ~vaddr:0x2000 ();
  Sink.emit ~ts:3 (Event.Tlb_miss { vaddr = 0x3000 });
  let rs = Sink.records () in
  let emitted_on = Sink.emitted_count ~tag:Event.tag_page_alloc in
  let emitted_off = Sink.emitted_count ~tag:Event.tag_tlb_hit in
  Sink.install Sink.Disabled;
  Sink.set_filter Event.all_tags_mask;
  Alcotest.(check int) "only the enabled kind recorded" 1 (List.length rs);
  Alcotest.(check int) "enabled kind tallied" 1 emitted_on;
  (* a masked-off kind is one load+mask: no counter may move *)
  Alcotest.(check int) "masked kind tallies nothing" 0 emitted_off;
  Alcotest.(check bool) "mask restored" true (Sink.get_filter () = Event.all_tags_mask)

let sampling_session () =
  let f = Flight.create ~cpus:1 ~slots:64 ~slot_size:Event.slot_bytes in
  Sink.set_sample ~tag:Event.tag_page_alloc ~shift:2;
  (* install starts a fresh session: tallies and sampling phase reset *)
  Sink.install (Sink.Flight f);
  for i = 0 to 15 do
    Sink.emit_page_alloc ~ts:i ~addr:(0x1000 + i) ~order:0 ()
  done;
  let ts = List.map (fun r -> r.Event.ts) (Sink.records ()) in
  let emitted = Sink.emitted_count ~tag:Event.tag_page_alloc in
  let sampled = Sink.sampled_out_count ~tag:Event.tag_page_alloc in
  Sink.install Sink.Disabled;
  (ts, emitted, sampled)

let test_sampling_deterministic_and_lossless () =
  let a = sampling_session () in
  let b = sampling_session () in
  Sink.set_sample_all ~shift:0;
  let ts, emitted, sampled = a in
  Alcotest.(check (list int)) "keeps 1 in 4, phase 0" [ 0; 4; 8; 12 ] ts;
  Alcotest.(check int) "admitted tally exact" 4 emitted;
  Alcotest.(check int) "rejected tally exact" 12 sampled;
  Alcotest.(check bool) "seeded sessions identical" true (a = b);
  Alcotest.check_raises "bad shift rejected"
    (Invalid_argument "Sink.set_sample: bad shift") (fun () ->
      Sink.set_sample ~tag:Event.tag_page_alloc ~shift:31)

let test_bad_cpu_counted_not_silent () =
  Metrics.reset ();
  let f = Flight.create ~cpus:1 ~slots:8 ~slot_size:Event.slot_bytes in
  Sink.install (Sink.Flight f);
  Sink.emit_page_alloc ~ts:1 ~cpu:5 ~addr:0x1000 ~order:0 ();
  Sink.emit ~ts:2 ~cpu:9 (Event.Ep_create { container = 1 });
  let rs = Sink.records () in
  let bad = Sink.bad_cpu_count () in
  Sink.publish_counters ();
  Sink.install Sink.Disabled;
  (* misfiled events still land (on ring 0) and the misfiling is loud *)
  Alcotest.(check int) "events filed on ring 0" 2 (List.length rs);
  List.iter (fun r -> Alcotest.(check int) "cpu rewritten to 0" 0 r.Event.cpu) rs;
  Alcotest.(check int) "bad-cpu tally" 2 bad;
  Alcotest.(check int) "obs/bad_cpu metric" 2
    (Metrics.Counter.value (Metrics.counter "obs/bad_cpu"))

let test_span_pair_expands_balanced () =
  let f = Flight.create ~cpus:1 ~slots:8 ~slot_size:Event.slot_bytes in
  Sink.install (Sink.Flight f);
  Atmo_obs.Span.reset ();
  let id = Atmo_obs.Span.pair ~ts:5 Atmo_obs.Span.Ctx_switch in
  let rs = Sink.records () in
  Sink.install Sink.Disabled;
  Atmo_obs.Span.reset ();
  Alcotest.(check bool) "pair admitted" true (id > 0);
  Alcotest.(check int) "one ring slot" 1 (Flight.length f ~cpu:0);
  match rs with
  | [
      { Event.ev = Event.Span_begin { span = b; _ }; ts = 5; _ };
      { Event.ev = Event.Span_end { span = e; _ }; ts = 5; _ };
    ] ->
    Alcotest.(check int) "begin carries the span id" id b;
    Alcotest.(check int) "end matches begin" id e
  | _ -> Alcotest.fail "expected exactly [begin; end] at ts 5"

(* ------------------------------------------------------------------ *)
(* the zero-drop contract on the kv workload                           *)

let test_kv_workload_zero_drops () =
  let module Kv = Atmo_workloads.Kv_demo in
  let f = Flight.create ~cpus:2 ~slots:16384 ~slot_size:Event.slot_bytes in
  Sink.install (Sink.Flight f);
  Atmo_obs.Span.reset ();
  ignore (Kv.run ~requests:40 ());
  let records = Sink.records () in
  let dropped = Sink.dropped () in
  let emitted = ref 0 in
  for tag = 1 to Event.tag_count do
    emitted := !emitted + Sink.emitted_count ~tag
  done;
  let pairs = Sink.emitted_count ~tag:Event.tag_span_pair in
  Sink.install Sink.Disabled;
  Sink.set_clock (fun () -> 0);
  Sink.set_cpu 0;
  Atmo_obs.Span.reset ();
  Alcotest.(check bool) "workload emitted events" true (!emitted > 0);
  Alcotest.(check int) "zero drops on a sized ring" 0 dropped;
  (* lossless accounting: every admitted event is a live record (span
     pairs decode into two) *)
  Alcotest.(check int) "records = emitted + pairs" (!emitted + pairs)
    (List.length records)

let test_sink_records_merged_sorted () =
  let f = Flight.create ~cpus:2 ~slots:8 ~slot_size:Event.slot_bytes in
  Sink.install (Sink.Flight f);
  let t = ref 0 in
  Sink.set_clock (fun () -> !t);
  t := 30;
  Sink.emit ~cpu:1 (Event.Page_alloc { addr = 1; order = 0 });
  t := 10;
  Sink.emit ~cpu:0 (Event.Page_alloc { addr = 2; order = 0 });
  t := 20;
  Sink.emit ~cpu:1 (Event.Page_alloc { addr = 3; order = 0 });
  let rs = Sink.records () in
  Sink.install Sink.Disabled;
  Sink.set_clock (fun () -> 0);
  Alcotest.(check (list int)) "merged across rings, sorted by ts" [ 10; 20; 30 ]
    (List.map (fun r -> r.Event.ts) rs)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "flight",
        [
          Alcotest.test_case "fill below capacity" `Quick test_ring_fill;
          Alcotest.test_case "wraparound overwrites oldest" `Quick test_ring_wraparound;
          Alcotest.test_case "per-cpu isolation + clear" `Quick test_ring_per_cpu_isolation;
          Alcotest.test_case "bad geometry rejected" `Quick test_ring_rejects_bad_geometry;
        ] );
      ( "event",
        [
          Alcotest.test_case "round-trip samples" `Quick test_roundtrip_samples;
          Alcotest.test_case "samples cover every tag" `Quick
            test_samples_cover_every_tag;
          Alcotest.test_case "empty slot" `Quick test_empty_slot_decodes_to_none;
          Alcotest.test_case "syscall names match the spec" `Quick
            test_syscall_names_match_spec;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
          Alcotest.test_case "counter monotonic" `Quick test_counter_monotonic;
        ] );
      ( "sink",
        [
          Alcotest.test_case "disabled sink is bit-identical" `Quick
            test_disabled_sink_is_bit_identical;
          Alcotest.test_case "disabled sink records nothing" `Quick
            test_disabled_sink_records_nothing;
          Alcotest.test_case "records merged and sorted" `Quick
            test_sink_records_merged_sorted;
        ] );
      ( "admission",
        [
          Alcotest.test_case "writers bit-identical to encode oracle" `Quick
            test_writers_bit_identical_to_oracle;
          Alcotest.test_case "filter mask gates kinds" `Quick
            test_filter_mask_gates_kinds;
          Alcotest.test_case "sampling deterministic and lossless" `Quick
            test_sampling_deterministic_and_lossless;
          Alcotest.test_case "bad cpu counted, not silent" `Quick
            test_bad_cpu_counted_not_silent;
          Alcotest.test_case "span pair expands balanced" `Quick
            test_span_pair_expands_balanced;
          Alcotest.test_case "kv workload records with zero drops" `Quick
            test_kv_workload_zero_drops;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_encode_decode_roundtrip;
            prop_fast_writer_matches_encode;
            prop_quantiles_monotone;
          ] );
    ]
