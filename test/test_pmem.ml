(* Page allocator substrate: intrusive DLLs, page states, superpage
   merge/split, allocator invariant. *)

open Atmo_util
open Atmo_pmem
module Phys_mem = Atmo_hw.Phys_mem

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let expect_wf what wf =
  match wf with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s not wf: %s" what msg

(* ------------------------------------------------------------------ *)
(* Dll                                                                 *)

let test_dll_push_pop () =
  let l = Dll.create ~capacity:8 ~name:"t" in
  Dll.push_back l 1;
  Dll.push_back l 2;
  Dll.push_front l 0;
  Alcotest.(check (list int)) "order" [ 0; 1; 2 ] (Dll.to_list l);
  checkb "mem" true (Dll.mem l 1);
  Alcotest.(check (option int)) "pop front" (Some 0) (Dll.pop_front l);
  Alcotest.(check (option int)) "pop back" (Some 2) (Dll.pop_back l);
  checki "length" 1 (Dll.length l);
  expect_wf "dll" (Dll.wf l)

let test_dll_o1_remove_middle () =
  let l = Dll.create ~capacity:8 ~name:"t" in
  List.iter (Dll.push_back l) [ 0; 1; 2; 3; 4 ];
  Dll.remove l 2;
  Alcotest.(check (list int)) "middle removed" [ 0; 1; 3; 4 ] (Dll.to_list l);
  Dll.remove l 0;
  Dll.remove l 4;
  Alcotest.(check (list int)) "ends removed" [ 1; 3 ] (Dll.to_list l);
  expect_wf "dll" (Dll.wf l)

let test_dll_misuse_raises () =
  let l = Dll.create ~capacity:4 ~name:"t" in
  Dll.push_back l 1;
  Alcotest.check_raises "double push" (Invalid_argument "Dll.push_back(t): 1 already a member")
    (fun () -> Dll.push_back l 1);
  Alcotest.check_raises "remove non-member" (Invalid_argument "Dll.remove(t): 2 not a member")
    (fun () -> Dll.remove l 2);
  Alcotest.check_raises "out of range" (Invalid_argument "Dll.push_back(t): id 9 out of range")
    (fun () -> Dll.push_back l 9)

let test_dll_empty () =
  let l = Dll.create ~capacity:4 ~name:"t" in
  checkb "empty" true (Dll.is_empty l);
  Alcotest.(check (option int)) "pop empty" None (Dll.pop_front l);
  expect_wf "dll" (Dll.wf l)

let prop_dll_random_ops =
  (* random pushes/removes keep the structure well-formed and matching a
     model list *)
  QCheck.Test.make ~name:"dll random ops match model" ~count:100
    QCheck.(list (pair (int_bound 2) (int_bound 31)))
    (fun ops ->
      let l = Dll.create ~capacity:32 ~name:"m" in
      let model = ref [] in
      List.iter
        (fun (op, id) ->
          match op with
          | 0 ->
            if not (Dll.mem l id) then begin
              Dll.push_back l id;
              model := !model @ [ id ]
            end
          | 1 ->
            if not (Dll.mem l id) then begin
              Dll.push_front l id;
              model := id :: !model
            end
          | _ ->
            if Dll.mem l id then begin
              Dll.remove l id;
              model := List.filter (fun x -> x <> id) !model
            end)
        ops;
      Dll.wf l = Ok () && Dll.to_list l = !model)

(* ------------------------------------------------------------------ *)
(* Page_alloc                                                          *)

(* a machine with 3 MiB of managed memory: big enough for one 2M merge *)
let mk_alloc ?(frames = 1024) ?(reserved = 0) () =
  let mem = Phys_mem.create ~page_count:frames in
  (mem, Page_alloc.create mem ~reserved_frames:reserved)

let test_alloc_free_4k () =
  let _, a = mk_alloc () in
  let before = Page_alloc.free_count_4k a in
  (match Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel with
   | None -> Alcotest.fail "alloc failed"
   | Some addr ->
     checkb "allocated state" true (Page_alloc.state_of a ~addr = Some Page_state.Allocated);
     checki "free shrank" (before - 1) (Page_alloc.free_count_4k a);
     Page_alloc.free_kernel_page a ~addr;
     checki "free restored" before (Page_alloc.free_count_4k a));
  expect_wf "alloc" (Page_alloc.wf a)

let test_alloc_zeroes () =
  let mem, a = mk_alloc () in
  (match Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel with
   | None -> Alcotest.fail "alloc failed"
   | Some addr ->
     Phys_mem.write_u64 mem ~addr 42L;
     Page_alloc.free_kernel_page a ~addr;
     (* Every later allocation of the same frame must be zeroed. *)
     let rec drain () =
       match Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel with
       | Some got when got = addr ->
         Alcotest.(check int64) "reallocated page zeroed" 0L (Phys_mem.read_u64 mem ~addr)
       | Some _ -> drain ()
       | None -> Alcotest.fail "frame never came back"
     in
     drain ())

let test_alloc_oom () =
  let _, a = mk_alloc ~frames:4 () in
  let rec drain n =
    match Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel with
    | Some _ -> drain (n + 1)
    | None -> n
  in
  checki "exactly 4 frames" 4 (drain 0);
  checkb "then OOM" true (Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel = None);
  expect_wf "alloc" (Page_alloc.wf a)

let test_mapped_refcount () =
  let _, a = mk_alloc () in
  match Page_alloc.alloc_4k a ~purpose:Page_alloc.User with
  | None -> Alcotest.fail "alloc failed"
  | Some addr ->
    Alcotest.(check (option int)) "rc 1" (Some 1) (Page_alloc.ref_count a ~addr);
    Page_alloc.inc_ref a ~addr;
    Alcotest.(check (option int)) "rc 2" (Some 2) (Page_alloc.ref_count a ~addr);
    checkb "dec keeps live" true (Page_alloc.dec_ref a ~addr = `Live);
    checkb "last dec frees" true (Page_alloc.dec_ref a ~addr = `Freed);
    checkb "now free" true (Page_alloc.is_free a ~addr);
    expect_wf "alloc" (Page_alloc.wf a)

let test_merge_2m () =
  let _, a = mk_alloc ~frames:1024 () in
  checki "no 2m blocks yet" 0 (Page_alloc.free_count_2m a);
  checkb "merge succeeds" true (Page_alloc.try_merge_2m a);
  checki "one 2m block" 1 (Page_alloc.free_count_2m a);
  checki "4k list shrank by 512" (1024 - 512) (Page_alloc.free_count_4k a);
  checki "511 merged bodies" 511 (Iset.cardinal (Page_alloc.merged_pages a));
  expect_wf "alloc" (Page_alloc.wf a)

let test_alloc_2m_on_demand () =
  let _, a = mk_alloc ~frames:1024 () in
  match Page_alloc.alloc_2m a ~purpose:Page_alloc.User with
  | None -> Alcotest.fail "2m alloc failed"
  | Some addr ->
    checkb "aligned" true (addr mod Phys_mem.page_size_2m = 0);
    checkb "mapped" true (Page_alloc.state_of a ~addr = Some (Page_state.Mapped 1));
    Alcotest.(check (option Alcotest.bool)) "size is 2m" (Some true)
      (Option.map (Page_state.equal_size Page_state.S2m) (Page_alloc.size_of a ~addr));
    checki "closure covers 512 frames" 512 (Iset.cardinal (Page_alloc.frames_of_block a ~addr));
    expect_wf "alloc" (Page_alloc.wf a)

let test_split_2m_for_4k () =
  let _, a = mk_alloc ~frames:1024 () in
  (* merge everything into 2m blocks, then a 4k alloc must split one *)
  while Page_alloc.try_merge_2m a do () done;
  checki "all merged" 0 (Page_alloc.free_count_4k a);
  (match Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel with
   | None -> Alcotest.fail "4k alloc after merge failed"
   | Some _ -> ());
  checki "split released 511 free 4k" 511 (Page_alloc.free_count_4k a);
  expect_wf "alloc" (Page_alloc.wf a)

let test_merge_respects_alignment_holes () =
  let _, a = mk_alloc ~frames:1024 () in
  (* Punch a hole in the first aligned group: merging must still find the
     second group if the machine had one; with 1024 frames and frame 0
     allocated, no full aligned group remains after the second group also
     gets a hole. *)
  let first = Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel in
  checkb "hole allocated" true (first <> None);
  (* frames 512..1023 form a complete aligned group *)
  checkb "merge finds second group" true (Page_alloc.try_merge_2m a);
  checkb "no further group" false (Page_alloc.try_merge_2m a);
  expect_wf "alloc" (Page_alloc.wf a)

let test_merge_split_1g () =
  (* 2 GiB sparse machine: enough for one aligned 1 GiB region *)
  let _, a = mk_alloc ~frames:(512 * 1024) () in
  (match Page_alloc.alloc_1g a ~purpose:Page_alloc.User with
   | None -> Alcotest.fail "1g alloc failed"
   | Some addr ->
     checkb "1g aligned" true (addr mod Phys_mem.page_size_1g = 0);
     Alcotest.(check (option Alcotest.bool)) "size is 1g" (Some true)
       (Option.map (Page_state.equal_size Page_state.S1g) (Page_alloc.size_of a ~addr));
     expect_wf "after 1g alloc" (Page_alloc.wf a);
     checkb "freed" true (Page_alloc.dec_ref a ~addr = `Freed);
     expect_wf "after 1g free" (Page_alloc.wf a));
  (* drain the 4k side so a later 4k allocation must split the free 1G
     block down through 2M — the path that re-points body frames *)
  let rec drain_4k () =
    if Page_alloc.free_count_4k a > 0 then begin
      ignore (Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel);
      drain_4k ()
    end
  in
  drain_4k ();
  (match Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel with
   | Some _ -> ()
   | None -> Alcotest.fail "split from 1g failed");
  expect_wf "after split" (Page_alloc.wf a)

let test_reserved_frames_unmanaged () =
  let _, a = mk_alloc ~frames:64 ~reserved:8 () in
  checki "managed" 56 (Page_alloc.managed_frames a);
  checkb "reserved unmanaged" true (Page_alloc.state_of a ~addr:0 = None);
  (* allocations never return reserved frames *)
  let rec drain () =
    match Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel with
    | Some addr ->
      checkb "above reservation" true (addr >= 8 * Phys_mem.page_size);
      drain ()
    | None -> ()
  in
  drain ()

let test_spec_views_partition () =
  let _, a = mk_alloc ~frames:1024 () in
  ignore (Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel);
  ignore (Page_alloc.alloc_4k a ~purpose:Page_alloc.User);
  ignore (Page_alloc.alloc_2m a ~purpose:Page_alloc.User);
  let sets =
    [
      Page_alloc.free_pages_4k a;
      Page_alloc.free_pages_2m a;
      Page_alloc.free_pages_1g a;
      Page_alloc.allocated_pages a;
      Page_alloc.mapped_pages a;
      Page_alloc.merged_pages a;
    ]
  in
  checkb "six sets partition the managed frames" true (Iset.pairwise_disjoint sets);
  checki "cover all frames" 1024 (Iset.cardinal (Iset.union_list sets));
  expect_wf "alloc" (Page_alloc.wf a)

let prop_alloc_random_traffic =
  QCheck.Test.make ~name:"allocator wf under random alloc/free traffic" ~count:60
    QCheck.(list (int_bound 9))
    (fun ops ->
      let _, a = mk_alloc ~frames:2048 () in
      let kernel_pages = ref [] in
      let user_pages = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 | 1 | 2 ->
            (match Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel with
             | Some p -> kernel_pages := p :: !kernel_pages
             | None -> ())
          | 3 | 4 ->
            (match Page_alloc.alloc_4k a ~purpose:Page_alloc.User with
             | Some p -> user_pages := p :: !user_pages
             | None -> ())
          | 5 ->
            (match Page_alloc.alloc_2m a ~purpose:Page_alloc.User with
             | Some p -> user_pages := p :: !user_pages
             | None -> ())
          | 6 | 7 ->
            (match !kernel_pages with
             | p :: rest ->
               Page_alloc.free_kernel_page a ~addr:p;
               kernel_pages := rest
             | [] -> ())
          | 8 ->
            (match !user_pages with
             | p :: rest ->
               ignore (Page_alloc.dec_ref a ~addr:p);
               user_pages := rest
             | [] -> ())
          | _ ->
            (match !user_pages with
             | p :: _ ->
               Page_alloc.inc_ref a ~addr:p;
               ignore (Page_alloc.dec_ref a ~addr:p)
             | [] -> ()))
        ops;
      Page_alloc.wf a = Ok ())

let prop_leak_free_roundtrip =
  QCheck.Test.make ~name:"alloc/free returns allocator to initial abstract state"
    ~count:60
    QCheck.(int_bound 30)
    (fun n ->
      let _, a = mk_alloc ~frames:256 () in
      let free0 = Page_alloc.free_pages_4k a in
      let pages =
        List.filter_map
          (fun _ -> Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel)
          (List.init n Fun.id)
      in
      List.iter (fun addr -> Page_alloc.free_kernel_page a ~addr) pages;
      Iset.equal free0 (Page_alloc.free_pages_4k a))

let () =
  Atmo_san.Runtime.arm_of_env ();
  Alcotest.run ~and_exit:false "pmem"
    [
      ( "dll",
        [
          Alcotest.test_case "push/pop" `Quick test_dll_push_pop;
          Alcotest.test_case "O(1) middle removal" `Quick test_dll_o1_remove_middle;
          Alcotest.test_case "misuse raises" `Quick test_dll_misuse_raises;
          Alcotest.test_case "empty" `Quick test_dll_empty;
        ] );
      ( "page_alloc",
        [
          Alcotest.test_case "alloc/free 4k" `Quick test_alloc_free_4k;
          Alcotest.test_case "allocations zeroed" `Quick test_alloc_zeroes;
          Alcotest.test_case "oom" `Quick test_alloc_oom;
          Alcotest.test_case "mapped refcount" `Quick test_mapped_refcount;
          Alcotest.test_case "merge to 2m" `Quick test_merge_2m;
          Alcotest.test_case "alloc 2m merges on demand" `Quick test_alloc_2m_on_demand;
          Alcotest.test_case "split 2m for 4k" `Quick test_split_2m_for_4k;
          Alcotest.test_case "merge skips holed groups" `Quick test_merge_respects_alignment_holes;
          Alcotest.test_case "merge/split 1g" `Quick test_merge_split_1g;
          Alcotest.test_case "reserved frames unmanaged" `Quick test_reserved_frames_unmanaged;
          Alcotest.test_case "spec views partition" `Quick test_spec_views_partition;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_dll_random_ops; prop_alloc_random_traffic; prop_leak_free_roundtrip ] );
    ];
  Atmo_san.Runtime.exit_check ()
