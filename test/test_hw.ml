(* Hardware substrate: physical memory, PTE encoding, MMU walk, IOMMU. *)

open Atmo_hw

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Phys_mem                                                            *)

let test_mem_rw () =
  let m = Phys_mem.create ~page_count:16 in
  Phys_mem.write_u64 m ~addr:0 0x1122334455667788L;
  check Alcotest.int64 "u64 round-trip" 0x1122334455667788L (Phys_mem.read_u64 m ~addr:0);
  Phys_mem.write_u8 m ~addr:4096 0xab;
  check Alcotest.int "u8 round-trip" 0xab (Phys_mem.read_u8 m ~addr:4096)

let test_mem_untouched_zero () =
  let m = Phys_mem.create ~page_count:16 in
  check Alcotest.int64 "untouched reads zero" 0L (Phys_mem.read_u64 m ~addr:8192);
  check Alcotest.int "no frames materialised by reads" 0 (Phys_mem.touched_frames m)

let test_mem_zero_page () =
  let m = Phys_mem.create ~page_count:16 in
  Phys_mem.write_u64 m ~addr:4096 42L;
  Phys_mem.zero_page m ~addr:4096;
  check Alcotest.int64 "zeroed" 0L (Phys_mem.read_u64 m ~addr:4096);
  check Alcotest.int "zeroing drops the frame" 0 (Phys_mem.touched_frames m);
  Alcotest.check_raises "unaligned zero_page rejected"
    (Invalid_argument "Phys_mem.zero_page: unaligned")
    (fun () -> Phys_mem.zero_page m ~addr:4100);
  Alcotest.check_raises "partial last page rejected"
    (Invalid_argument "Phys_mem.zero_page: address 0x10000 out of bounds")
    (fun () -> Phys_mem.zero_page m ~addr:(16 * 4096))

let test_mem_bounds () =
  let m = Phys_mem.create ~page_count:2 in
  Alcotest.check_raises "oob write" (Invalid_argument "Phys_mem.write_u64: address 0x2000 out of bounds")
    (fun () -> Phys_mem.write_u64 m ~addr:8192 0L);
  Alcotest.check_raises "unaligned" (Invalid_argument "Phys_mem.read_u64: unaligned")
    (fun () -> ignore (Phys_mem.read_u64 m ~addr:4))

let test_mem_blit_cross_frame () =
  let m = Phys_mem.create ~page_count:4 in
  let data = Bytes.init 100 (fun i -> Char.chr (i land 0xff)) in
  Phys_mem.blit_to m ~addr:4060 data;
  let back = Phys_mem.blit_from m ~addr:4060 ~len:100 in
  checkb "blit across frame boundary round-trips" true (Bytes.equal data back)

let test_mem_geometry () =
  checkb "page_base" true (Phys_mem.page_base 4097 = 4096);
  checkb "page_index" true (Phys_mem.page_index 8192 = 2);
  checkb "addr_of_index" true (Phys_mem.addr_of_index 3 = 12288);
  checkb "aligned" true (Phys_mem.is_page_aligned 8192);
  checkb "unaligned" false (Phys_mem.is_page_aligned 8193)

(* ------------------------------------------------------------------ *)
(* Pte_bits                                                            *)

let test_pte_round_trip () =
  let e = Pte_bits.make ~addr:0x3000 ~perm:Pte_bits.perm_rw ~huge:false in
  checkb "present" true (Pte_bits.is_present e);
  checkb "not huge" false (Pte_bits.is_huge e);
  check Alcotest.int "addr" 0x3000 (Pte_bits.addr_of e);
  checkb "perm" true (Pte_bits.equal_perm Pte_bits.perm_rw (Pte_bits.perm_of e))

let test_pte_huge_nx () =
  let e = Pte_bits.make ~addr:0x200000 ~perm:Pte_bits.perm_rx ~huge:true in
  checkb "huge" true (Pte_bits.is_huge e);
  let p = Pte_bits.perm_of e in
  checkb "exec" true p.Pte_bits.execute;
  checkb "ro" false p.Pte_bits.write

let test_pte_not_present () =
  checkb "zero entry not present" false (Pte_bits.is_present Pte_bits.not_present)

let test_pte_unaligned_rejected () =
  Alcotest.check_raises "unaligned addr"
    (Invalid_argument "Pte_bits.make: unaligned address") (fun () ->
      ignore (Pte_bits.make ~addr:0x3001 ~perm:Pte_bits.perm_rw ~huge:false))

(* ------------------------------------------------------------------ *)
(* Mmu                                                                 *)

(* Hand-build a small page table: L4 at 0x1000, L3 at 0x2000, L2 at
   0x3000, L1 at 0x4000, mapping va 0x200000000 -> frame 0x5000. *)
let build_manual_pt m =
  let va = 0x2_0000_0000 in
  let l4 = 0x1000 and l3 = 0x2000 and l2 = 0x3000 and l1 = 0x4000 in
  Phys_mem.write_u64 m
    ~addr:(Mmu.entry_addr ~table:l4 ~index:(Mmu.l4_index va))
    (Pte_bits.make_table ~addr:l3);
  Phys_mem.write_u64 m
    ~addr:(Mmu.entry_addr ~table:l3 ~index:(Mmu.l3_index va))
    (Pte_bits.make_table ~addr:l2);
  Phys_mem.write_u64 m
    ~addr:(Mmu.entry_addr ~table:l2 ~index:(Mmu.l2_index va))
    (Pte_bits.make_table ~addr:l1);
  Phys_mem.write_u64 m
    ~addr:(Mmu.entry_addr ~table:l1 ~index:(Mmu.l1_index va))
    (Pte_bits.make ~addr:0x5000 ~perm:Pte_bits.perm_rw ~huge:false);
  (l4, va)

let test_mmu_walk_4k () =
  let m = Phys_mem.create ~page_count:16 in
  let cr3, va = build_manual_pt m in
  match Mmu.resolve m ~cr3 ~vaddr:(va + 0x123) with
  | None -> Alcotest.fail "expected translation"
  | Some tr ->
    check Alcotest.int "paddr" (0x5000 + 0x123) tr.Mmu.paddr;
    check Alcotest.int "frame" 0x5000 tr.Mmu.frame;
    check Alcotest.int "size" Phys_mem.page_size tr.Mmu.size

let test_mmu_fault_unmapped () =
  let m = Phys_mem.create ~page_count:16 in
  let cr3, va = build_manual_pt m in
  checkb "fault one page later" true (Mmu.resolve m ~cr3 ~vaddr:(va + 4096) = None);
  checkb "fault other l4 slot" true (Mmu.resolve m ~cr3 ~vaddr:0x40_0000_0000 = None)

let test_mmu_huge_2m () =
  let m = Phys_mem.create ~page_count:16 in
  let va = 0x4000_0000 in
  let l4 = 0x1000 and l3 = 0x2000 and l2 = 0x3000 in
  Phys_mem.write_u64 m
    ~addr:(Mmu.entry_addr ~table:l4 ~index:(Mmu.l4_index va))
    (Pte_bits.make_table ~addr:l3);
  Phys_mem.write_u64 m
    ~addr:(Mmu.entry_addr ~table:l3 ~index:(Mmu.l3_index va))
    (Pte_bits.make_table ~addr:l2);
  Phys_mem.write_u64 m
    ~addr:(Mmu.entry_addr ~table:l2 ~index:(Mmu.l2_index va))
    (Pte_bits.make ~addr:0x0 ~perm:Pte_bits.perm_rw ~huge:true);
  (match Mmu.resolve m ~cr3:l4 ~vaddr:(va + 0x1234) with
   | Some tr ->
     check Alcotest.int "2M size" Phys_mem.page_size_2m tr.Mmu.size;
     check Alcotest.int "paddr offset" 0x1234 tr.Mmu.paddr
   | None -> Alcotest.fail "expected 2M translation")

let test_mmu_non_canonical () =
  let m = Phys_mem.create ~page_count:16 in
  checkb "non-canonical faults" true (Mmu.resolve m ~cr3:0x1000 ~vaddr:(1 lsl 50) = None)

let test_mmu_indices_roundtrip () =
  let va = Mmu.va_of_indices ~l4:5 ~l3:17 ~l2:301 ~l1:511 in
  check Alcotest.int "l4" 5 (Mmu.l4_index va);
  check Alcotest.int "l3" 17 (Mmu.l3_index va);
  check Alcotest.int "l2" 301 (Mmu.l2_index va);
  check Alcotest.int "l1" 511 (Mmu.l1_index va);
  (* high half sign-extends *)
  let hva = Mmu.va_of_indices ~l4:0x180 ~l3:0 ~l2:0 ~l1:0 in
  checkb "high-half canonical" true (Mmu.canonical hva);
  check Alcotest.int "high-half l4" 0x180 (Mmu.l4_index hva)

let test_mmu_write_respects_ro () =
  let m = Phys_mem.create ~page_count:16 in
  let va = 0x2_0000_0000 in
  let l4 = 0x1000 and l3 = 0x2000 and l2 = 0x3000 and l1 = 0x4000 in
  Phys_mem.write_u64 m
    ~addr:(Mmu.entry_addr ~table:l4 ~index:(Mmu.l4_index va))
    (Pte_bits.make_table ~addr:l3);
  Phys_mem.write_u64 m
    ~addr:(Mmu.entry_addr ~table:l3 ~index:(Mmu.l3_index va))
    (Pte_bits.make_table ~addr:l2);
  Phys_mem.write_u64 m
    ~addr:(Mmu.entry_addr ~table:l2 ~index:(Mmu.l2_index va))
    (Pte_bits.make_table ~addr:l1);
  Phys_mem.write_u64 m
    ~addr:(Mmu.entry_addr ~table:l1 ~index:(Mmu.l1_index va))
    (Pte_bits.make ~addr:0x5000 ~perm:Pte_bits.perm_ro ~huge:false);
  checkb "ro store refused" false (Mmu.write_u64 m ~cr3:l4 ~vaddr:va 1L);
  checkb "load works" true (Mmu.read_u64 m ~cr3:l4 ~vaddr:va <> None)

(* ------------------------------------------------------------------ *)
(* Iommu                                                               *)

let test_iommu_translate_and_dma () =
  let m = Phys_mem.create ~page_count:16 in
  let cr3, va = build_manual_pt m in
  let io = Iommu.create m in
  Iommu.attach io ~device:7 ~root:cr3;
  checkb "translates through domain" true (Iommu.translate io ~device:7 ~iova:va <> None);
  checkb "dma write ok" true (Iommu.dma_write io ~device:7 ~iova:va (Bytes.make 16 'x'));
  (match Iommu.dma_read io ~device:7 ~iova:va ~len:16 with
   | Some b -> checkb "dma read back" true (Bytes.equal b (Bytes.make 16 'x'))
   | None -> Alcotest.fail "dma read failed")

let test_iommu_unattached_faults () =
  let m = Phys_mem.create ~page_count:16 in
  let io = Iommu.create m in
  checkb "unattached device faults" true (Iommu.translate io ~device:1 ~iova:0 = None);
  check Alcotest.int "fault counted" 1 (Iommu.faults io)

let test_iommu_unmapped_dma_rejected () =
  let m = Phys_mem.create ~page_count:16 in
  let cr3, va = build_manual_pt m in
  let io = Iommu.create m in
  Iommu.attach io ~device:7 ~root:cr3;
  (* burst crossing into an unmapped page is rejected whole *)
  checkb "partial burst rejected" false
    (Iommu.dma_write io ~device:7 ~iova:(va + 4090) (Bytes.make 16 'x'));
  (* the mapped prefix must be untouched *)
  (match Iommu.dma_read io ~device:7 ~iova:(va + 4090) ~len:6 with
   | Some b -> checkb "no partial write" true (Bytes.equal b (Bytes.make 6 '\000'))
   | None -> Alcotest.fail "prefix should read")

let test_iommu_typed_dma_errors () =
  (* out-of-window DMA must fault with a typed error, bump the
     iommu/blocked counter, and leave physical memory untouched *)
  let m = Phys_mem.create ~page_count:16 in
  let cr3, va = build_manual_pt m in
  let io = Iommu.create m in
  Iommu.attach io ~device:7 ~root:cr3;
  let snapshot () = Phys_mem.blit_from m ~addr:0 ~len:(16 * Phys_mem.page_size) in
  let before_mem = snapshot () in
  let blocked0 = Iommu.blocked () in
  (* unmapped iova inside the domain *)
  (match Iommu.dma_write_checked io ~device:7 ~iova:0x7f00_0000 (Bytes.make 64 'x') with
   | Ok () -> Alcotest.fail "write through unmapped iova must fail"
   | Error e ->
     checkb "reason unmapped" true (e.Iommu.e_reason = `Unmapped);
     check Alcotest.int "iova reported" 0x7f00_0000 e.Iommu.e_iova;
     checkb "write flagged" true e.Iommu.e_write);
  (* device with no domain at all *)
  (match Iommu.dma_read_checked io ~device:9 ~iova:va ~len:8 with
   | Ok _ -> Alcotest.fail "read without a domain must fail"
   | Error e -> checkb "reason no-domain" true (e.Iommu.e_reason = `No_domain));
  (* burst leaking past the window edge is rejected whole *)
  (match Iommu.dma_write_checked io ~device:7 ~iova:(va + 4090) (Bytes.make 16 'y') with
   | Ok () -> Alcotest.fail "partial burst must be rejected whole"
   | Error e -> checkb "reason unmapped" true (e.Iommu.e_reason = `Unmapped));
  check Alcotest.int "blocked counter bumped per rejected burst" (blocked0 + 3)
    (Iommu.blocked ());
  checkb "physical memory untouched by rejected DMA" true
    (Bytes.equal before_mem (snapshot ()))

let test_iommu_detach () =
  let m = Phys_mem.create ~page_count:16 in
  let cr3, va = build_manual_pt m in
  let io = Iommu.create m in
  Iommu.attach io ~device:7 ~root:cr3;
  Iommu.detach io ~device:7;
  checkb "detached device faults" true (Iommu.translate io ~device:7 ~iova:va = None)

(* ------------------------------------------------------------------ *)
(* E820                                                                *)

let test_e820_typical_valid () =
  let m = E820.typical_pc ~total_mib:64 in
  (match E820.validate m with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "typical map invalid: %s" msg);
  check Alcotest.int "usable bytes" ((640 * 1024) + (61 * 1024 * 1024))
    (E820.usable_bytes m)

let test_e820_largest_usable () =
  let m = E820.typical_pc ~total_mib:64 in
  match E820.largest_usable m with
  | Some r ->
    check Alcotest.int "main memory starts at 1MiB" (1024 * 1024) r.E820.base;
    check Alcotest.int "frames" (61 * 256) (E820.frames_of r);
    check Alcotest.int "first frame" 256 (E820.first_frame_of r)
  | None -> Alcotest.fail "no usable region"

let test_e820_rejects_overlap () =
  let bad =
    [
      { E820.base = 0; len = 8192; kind = E820.Usable };
      { E820.base = 4096; len = 8192; kind = E820.Reserved };
    ]
  in
  checkb "overlap rejected" true (Result.is_error (E820.validate bad));
  let unsorted =
    [
      { E820.base = 8192; len = 4096; kind = E820.Usable };
      { E820.base = 0; len = 4096; kind = E820.Usable };
    ]
  in
  checkb "unsorted rejected" true (Result.is_error (E820.validate unsorted));
  checkb "empty region rejected" true
    (Result.is_error (E820.validate [ { E820.base = 0; len = 0; kind = E820.Usable } ]))

let test_e820_partial_frames () =
  (* a usable region not frame-aligned only yields its interior frames *)
  let r = { E820.base = 1000; len = 12000; kind = E820.Usable } in
  (* frames fully inside [1000, 13000): frames 1 and 2 ([4096,12288)) *)
  check Alcotest.int "interior frames" 2 (E820.frames_of r);
  check Alcotest.int "first frame" 1 (E820.first_frame_of r)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

let test_clock () =
  let c = Clock.create () in
  Clock.advance c 2200;
  check Alcotest.int "cycles" 2200 (Clock.now c);
  checkb "seconds" true (abs_float (Clock.seconds c -. 1e-6) < 1e-12);
  Clock.reset c;
  check Alcotest.int "reset" 0 (Clock.now c);
  Alcotest.check_raises "negative charge" (Invalid_argument "Clock.advance: negative charge")
    (fun () -> Clock.advance c (-1))

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)

let prop_mem_rw =
  QCheck.Test.make ~name:"phys_mem u64 write/read round-trips" ~count:200
    QCheck.(pair (int_bound 2047) int64)
    (fun (slot, v) ->
      let m = Phys_mem.create ~page_count:4 in
      let addr = slot * 8 in
      Phys_mem.write_u64 m ~addr v;
      Phys_mem.read_u64 m ~addr = v)

let prop_pte_round_trip =
  QCheck.Test.make ~name:"pte encode/decode round-trips" ~count:200
    QCheck.(quad (int_bound 0xfffff) bool bool bool)
    (fun (frame_idx, w, u, x) ->
      let addr = frame_idx * 4096 in
      let perm = { Pte_bits.write = w; user = u; execute = x } in
      let e = Pte_bits.make ~addr ~perm ~huge:false in
      Pte_bits.addr_of e = addr && Pte_bits.equal_perm (Pte_bits.perm_of e) perm)

let prop_va_indices =
  QCheck.Test.make ~name:"va_of_indices inverts index extraction" ~count:200
    QCheck.(quad (int_bound 511) (int_bound 511) (int_bound 511) (int_bound 511))
    (fun (l4, l3, l2, l1) ->
      let va = Mmu.va_of_indices ~l4 ~l3 ~l2 ~l1 in
      Mmu.canonical va
      && Mmu.l4_index va = l4 && Mmu.l3_index va = l3
      && Mmu.l2_index va = l2 && Mmu.l1_index va = l1)

let () =
  Alcotest.run "hw"
    [
      ( "phys_mem",
        [
          Alcotest.test_case "read/write" `Quick test_mem_rw;
          Alcotest.test_case "untouched reads zero" `Quick test_mem_untouched_zero;
          Alcotest.test_case "zero_page" `Quick test_mem_zero_page;
          Alcotest.test_case "bounds and alignment" `Quick test_mem_bounds;
          Alcotest.test_case "blit across frames" `Quick test_mem_blit_cross_frame;
          Alcotest.test_case "geometry helpers" `Quick test_mem_geometry;
        ] );
      ( "pte",
        [
          Alcotest.test_case "round trip" `Quick test_pte_round_trip;
          Alcotest.test_case "huge + nx" `Quick test_pte_huge_nx;
          Alcotest.test_case "not present" `Quick test_pte_not_present;
          Alcotest.test_case "unaligned rejected" `Quick test_pte_unaligned_rejected;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "4k walk" `Quick test_mmu_walk_4k;
          Alcotest.test_case "faults" `Quick test_mmu_fault_unmapped;
          Alcotest.test_case "2M huge page" `Quick test_mmu_huge_2m;
          Alcotest.test_case "non-canonical" `Quick test_mmu_non_canonical;
          Alcotest.test_case "index round trip" `Quick test_mmu_indices_roundtrip;
          Alcotest.test_case "read-only enforced" `Quick test_mmu_write_respects_ro;
        ] );
      ( "iommu",
        [
          Alcotest.test_case "translate and dma" `Quick test_iommu_translate_and_dma;
          Alcotest.test_case "unattached faults" `Quick test_iommu_unattached_faults;
          Alcotest.test_case "unmapped dma rejected" `Quick test_iommu_unmapped_dma_rejected;
          Alcotest.test_case "typed dma errors" `Quick test_iommu_typed_dma_errors;
          Alcotest.test_case "detach" `Quick test_iommu_detach;
        ] );
      ( "e820",
        [
          Alcotest.test_case "typical map valid" `Quick test_e820_typical_valid;
          Alcotest.test_case "largest usable" `Quick test_e820_largest_usable;
          Alcotest.test_case "rejects overlap" `Quick test_e820_rejects_overlap;
          Alcotest.test_case "partial frames" `Quick test_e820_partial_frames;
        ] );
      ("clock", [ Alcotest.test_case "advance/seconds" `Quick test_clock ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mem_rw; prop_pte_round_trip; prop_va_indices ] );
    ]
