(* atmo-san unit tests: shadow permission map semantics, free-page
   poisoning, lock-discipline protocol, page-table lint and leak audit
   on live kernels, and the zero-overhead disabled path. *)

module Phys_mem = Atmo_hw.Phys_mem
module Pte = Atmo_hw.Pte_bits
module Page_state = Atmo_pmem.Page_state
module Page_alloc = Atmo_pmem.Page_alloc
module Perm_map = Atmo_pm.Perm_map
module Proc_mgr = Atmo_pm.Proc_mgr
module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Report = Atmo_san.Report
module Memsan = Atmo_san.Memsan
module Lockcheck = Atmo_san.Lockcheck
module Runtime = Atmo_san.Runtime

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let with_san ?(poison = true) ?(lockcheck = false) f =
  Runtime.arm ~poison ~lockcheck ();
  Fun.protect ~finally:(fun () -> Runtime.disarm ()) f

let caught rule = List.exists (fun r -> r.Report.rule = rule) (Report.reports ())

let boot () =
  match Kernel.boot Kernel.default_boot with
  | Ok (k, init) -> (k, init)
  | Error e -> Alcotest.failf "boot: %a" Atmo_util.Errno.pp e

(* ------------------------------------------------------------------ *)
(* shadow map                                                          *)

let test_out_of_reservation () =
  with_san (fun () ->
      let mem = Phys_mem.create ~page_count:64 in
      let _a = Page_alloc.create mem ~reserved_frames:8 in
      (* reserved frames are outside the allocator: accesses pass *)
      Phys_mem.write_u64 mem ~addr:0x1000 1L;
      checki "reserved clean" 0 (Report.count ());
      (* a managed frame the allocator never handed out *)
      ignore (Phys_mem.read_u64 mem ~addr:(9 * 4096));
      checkb "out of reservation" true (caught Report.Out_of_reservation))

let test_untracked_memory_ignored () =
  with_san (fun () ->
      (* a memory with no allocator (driver scratch, PT test rigs) is
         not judged *)
      let mem = Phys_mem.create ~page_count:16 in
      Phys_mem.write_u64 mem ~addr:0x2000 5L;
      ignore (Phys_mem.read_u64 mem ~addr:0x3000);
      checki "no reports" 0 (Report.count ()))

let test_dec_ref_double_free () =
  with_san (fun () ->
      let mem = Phys_mem.create ~page_count:64 in
      let a = Page_alloc.create mem ~reserved_frames:0 in
      let p = Option.get (Page_alloc.alloc_4k a ~purpose:Page_alloc.User) in
      Page_alloc.inc_ref a ~addr:p;
      checkb "to live" true (Page_alloc.dec_ref a ~addr:p = `Live);
      checkb "to freed" true (Page_alloc.dec_ref a ~addr:p = `Freed);
      checki "refcounting clean" 0 (Report.count ());
      (try ignore (Page_alloc.dec_ref a ~addr:p) with Invalid_argument _ -> ());
      checkb "double free via dec_ref" true (caught Report.Double_free))

let test_poison_trample () =
  with_san ~poison:true (fun () ->
      let mem = Phys_mem.create ~page_count:4 in
      let a = Page_alloc.create mem ~reserved_frames:0 in
      let ps =
        List.init 4 (fun _ -> Option.get (Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel))
      in
      let victim = List.nth ps 1 in
      Page_alloc.free_kernel_page a ~addr:victim;
      (* a stale-pointer store the hooks never see (suspended) damages
         the poison; the next claim of the frame must notice *)
      Memsan.suspend (fun () -> Phys_mem.write_u64 mem ~addr:victim 0x41L);
      checki "silent so far" 0 (Report.count ());
      let back = Option.get (Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel) in
      checki "only free frame reclaimed" victim back;
      checkb "poison trample" true (caught Report.Poison_trample))

let test_superpage_shadow () =
  with_san (fun () ->
      (* a 2 MiB claim covers 512 frames: body frames are live too, and
         release frees the whole block *)
      let mem = Phys_mem.create ~page_count:1024 in
      let a = Page_alloc.create mem ~reserved_frames:0 in
      let p = Option.get (Page_alloc.alloc_2m a ~purpose:Page_alloc.Kernel) in
      Phys_mem.write_u64 mem ~addr:(p + (17 * 4096)) 1L;  (* body frame, live *)
      checki "body store clean" 0 (Report.count ());
      Page_alloc.free_kernel_page a ~addr:p;
      ignore (Phys_mem.read_u64 mem ~addr:(p + (17 * 4096)));
      checkb "body frame UAF" true (caught Report.Use_after_free))

(* ------------------------------------------------------------------ *)
(* neutrality of the armed (no-poison) path                            *)

let test_no_poison_keeps_memory_sparse () =
  let run armed =
    if armed then Runtime.arm ~poison:false ();
    Fun.protect ~finally:(fun () -> if armed then Runtime.disarm ())
      (fun () ->
        let mem = Phys_mem.create ~page_count:128 in
        let a = Page_alloc.create mem ~reserved_frames:4 in
        let p = Option.get (Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel) in
        Phys_mem.write_u64 mem ~addr:p 7L;
        Page_alloc.free_kernel_page a ~addr:p;
        let q = Option.get (Page_alloc.alloc_4k a ~purpose:Page_alloc.User) in
        ignore (Page_alloc.dec_ref a ~addr:q);
        Phys_mem.touched_frames mem)
  in
  let off = run false in
  let on = run true in
  checki "touched frames identical with san on (no poison)" off on;
  checki "armed run was clean" 0 (Report.count ())

let test_disarm_restores_zero_cost () =
  Runtime.arm ();
  Runtime.disarm ();
  checkb "no access hook" false (Phys_mem.observing ());
  let mem = Phys_mem.create ~page_count:8 in
  let a = Page_alloc.create mem ~reserved_frames:0 in
  let p = Option.get (Page_alloc.alloc_4k a ~purpose:Page_alloc.Kernel) in
  Page_alloc.free_kernel_page a ~addr:p;
  ignore (Phys_mem.read_u64 mem ~addr:p);  (* UAF, but nobody watches *)
  checki "no reports when disarmed" 0 (Report.count ())

(* ------------------------------------------------------------------ *)
(* lock discipline                                                     *)

let test_lock_protocol () =
  with_san ~lockcheck:true (fun () ->
      Lockcheck.release ~cpu:0;
      checkb "release without hold" true (caught Report.Lock_misuse);
      Report.clear ();
      Lockcheck.acquire ~site:"a" ~cpu:0;
      Lockcheck.acquire ~site:"b" ~cpu:1;
      checkb "double acquire" true (caught Report.Lock_misuse);
      Lockcheck.release ~cpu:1;
      checkb "provenance recorded" true
        (List.mem_assoc "a" (Lockcheck.acquisitions ())
        && List.mem_assoc "b" (Lockcheck.acquisitions ())))

let test_smp_runs_clean_under_lockcheck () =
  with_san ~poison:false ~lockcheck:true (fun () ->
      let k, init = boot () in
      Runtime.attach k;
      let t2 =
        match
          Lockcheck.locked ~site:"test.setup" ~cpu:0 (fun () ->
              Kernel.step k ~thread:init Syscall.New_thread)
        with
        | Syscall.Rptr t -> t
        | r -> Alcotest.failf "new_thread: %a" Syscall.pp_ret r
      in
      let ep =
        match
          Lockcheck.locked ~site:"test.setup" ~cpu:0 (fun () ->
              Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }))
        with
        | Syscall.Rptr e -> e
        | r -> Alcotest.failf "new_endpoint: %a" Syscall.pp_ret r
      in
      Perm_map.update k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:t2 (fun th ->
          Atmo_pm.Thread.set_slot th 0 (Some ep));
      let programs =
        [
          { Atmo_sim.Smp.thread = t2; think_cycles = 100;
            call_of = (fun _ -> Syscall.Recv { slot = 0 }) };
          { Atmo_sim.Smp.thread = init; think_cycles = 100;
            call_of = (fun i -> Syscall.Send { slot = 0; msg = Atmo_pm.Message.scalars_only [ i ] }) };
        ]
      in
      (match Atmo_sim.Smp.run k ~cost:Atmo_sim.Cost.default ~cpus:2 ~programs ~iterations:20 with
       | Ok _ -> ()
       | Error msg -> Alcotest.failf "smp: %s" msg);
      checki "simulator takes the big lock" 0 (Report.count ());
      checkb "smp acquisition site recorded" true
        (List.mem_assoc "smp.big_lock" (Lockcheck.acquisitions ())))

(* ------------------------------------------------------------------ *)
(* whole-state checks on live kernels                                  *)

let test_booted_kernel_checks_clean () =
  with_san ~poison:false (fun () ->
      let k, init = boot () in
      Runtime.attach k;
      ignore
        (Kernel.step k ~thread:init
           (Syscall.Mmap { va = 0x4000_0000; count = 4; size = Page_state.S4k; perm = Pte.perm_rw }));
      ignore
        (Kernel.step k ~thread:init
           (Syscall.Mmap { va = 0x8000_0000; count = 1; size = Page_state.S2m; perm = Pte.perm_rw }));
      checki "lint + audit clean" 0 (Runtime.full_check k);
      checki "no access violations" 0 (Report.count ());
      checkb "accesses were actually checked" true (Memsan.checked () > 0))

let test_audit_catches_orphan_page () =
  with_san ~poison:false (fun () ->
      let k, _ = boot () in
      Runtime.attach k;
      checki "clean before" 0 (Atmo_san.Audit.leaks k);
      ignore (Page_alloc.alloc_4k k.Kernel.alloc ~purpose:Page_alloc.Kernel);
      checkb "orphan detected" true (Atmo_san.Audit.leaks k > 0 && caught Report.Leak))

let test_audit_after_teardown () =
  with_san ~poison:false (fun () ->
      let k, init = boot () in
      Runtime.attach k;
      (match Kernel.step k ~thread:init
               (Syscall.New_container { quota = 32; cpus = Atmo_util.Iset.empty })
       with
       | Syscall.Rptr c ->
         (match Kernel.step k ~thread:init (Syscall.Terminate_container { container = c }) with
          | Syscall.Runit -> ()
          | r -> Alcotest.failf "terminate: %a" Syscall.pp_ret r)
       | r -> Alcotest.failf "new_container: %a" Syscall.pp_ret r);
      checki "no leaks after container teardown" 0 (Runtime.full_check k))

let test_pt_alias_detected () =
  with_san ~poison:false (fun () ->
      let k, init = boot () in
      Runtime.attach k;
      (match Kernel.step k ~thread:init
               (Syscall.Mmap { va = 0x4000_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw })
       with
       | Syscall.Rmapped [ frame ] ->
         checki "clean before" 0 (Atmo_san.Pt_lint.lint k);
         (* map the same frame at a second VA behind the allocator's
            back: one reference, two mappings *)
         let proc = Option.get (Kernel.proc_of_thread k ~thread:init) in
         let pt =
           (Perm_map.borrow k.Kernel.pm.Proc_mgr.proc_perms ~ptr:proc).Atmo_pm.Process.pt
         in
         (match Atmo_pt.Page_table.map_4k pt ~vaddr:0x9990_0000 ~frame ~perm:Pte.perm_rw with
          | Ok () -> ()
          | Error e -> Alcotest.failf "map_4k: %a" Atmo_pt.Page_table.pp_error e);
         checkb "alias detected" true
           (Atmo_san.Pt_lint.lint k > 0 && caught Report.Pt_alias)
       | r -> Alcotest.failf "mmap: %a" Syscall.pp_ret r))

let () =
  Runtime.arm_of_env ();
  Alcotest.run ~and_exit:false "san"
    [
      ( "shadow",
        [
          Alcotest.test_case "out of reservation" `Quick test_out_of_reservation;
          Alcotest.test_case "untracked memory ignored" `Quick test_untracked_memory_ignored;
          Alcotest.test_case "dec_ref double free" `Quick test_dec_ref_double_free;
          Alcotest.test_case "poison trample" `Quick test_poison_trample;
          Alcotest.test_case "superpage shadow" `Quick test_superpage_shadow;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "memory stays sparse" `Quick test_no_poison_keeps_memory_sparse;
          Alcotest.test_case "disarm restores zero cost" `Quick test_disarm_restores_zero_cost;
        ] );
      ( "lockcheck",
        [
          Alcotest.test_case "protocol" `Quick test_lock_protocol;
          Alcotest.test_case "smp clean" `Quick test_smp_runs_clean_under_lockcheck;
        ] );
      ( "whole-state",
        [
          Alcotest.test_case "booted kernel clean" `Quick test_booted_kernel_checks_clean;
          Alcotest.test_case "audit orphan" `Quick test_audit_catches_orphan_page;
          Alcotest.test_case "audit teardown" `Quick test_audit_after_teardown;
          Alcotest.test_case "pt alias" `Quick test_pt_alias_detected;
        ] );
    ];
  Runtime.exit_check ()
