(* The broken-up big lock: per-CPU run queues, work stealing, sharded
   endpoint locks — the concurrency edges of the fine-grained regime
   and the big-lock/fine-grained oracle. *)

module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Message = Atmo_pm.Message
module Proc_mgr = Atmo_pm.Proc_mgr
module Sched_queue = Atmo_pm.Sched_queue
module Thread = Atmo_pm.Thread
module Perm_map = Atmo_pm.Perm_map
module Smp = Atmo_sim.Smp
module Report = Atmo_san.Report
module Lockcheck = Atmo_san.Lockcheck

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let cost = Atmo_sim.Cost.default

let boot () =
  match Kernel.boot Kernel.default_boot with
  | Ok (k, init) -> (k, init)
  | Error e -> Alcotest.failf "boot: %a" Atmo_util.Errno.pp e

let new_thread k init =
  match Kernel.step k ~thread:init Syscall.New_thread with
  | Syscall.Rptr t -> t
  | r -> Alcotest.failf "new_thread -> %a" Syscall.pp_ret r

(* ------------------------------------------------------------------ *)
(* Sched_queue / Proc_mgr concurrency edges                            *)

let test_steal_from_empty () =
  let k, _init = boot () in
  let pm = k.Kernel.pm in
  Proc_mgr.set_sched_cpus pm 2;
  (* park the boot thread so nothing is schedulable anywhere *)
  (match Proc_mgr.current pm with
   | Some _ -> Proc_mgr.preempt_current pm
   | None -> ());
  Proc_mgr.remove_from_run_queue pm
    ~thread:(Option.value ~default:0 (Proc_mgr.current pm));
  let drain () = while Proc_mgr.dequeue_next pm <> None do () done in
  drain ();
  Proc_mgr.set_cpu pm 1;
  checkb "nothing to steal: dequeue yields None" true (Proc_mgr.dequeue_next pm = None);
  checkb "cpu 1 stays idle" true (Proc_mgr.current_of pm ~cpu:1 = None);
  Proc_mgr.set_cpu pm 0

let test_self_steal_guard () =
  let k, init = boot () in
  let pm = k.Kernel.pm in
  (* single queue: an idle dequeue must not "steal" from itself *)
  (match Proc_mgr.current pm with
   | Some _ -> ()
   | None -> ignore (Proc_mgr.dequeue_next pm));
  let t2 = new_thread k init in
  checkb "t2 queued on its home" true (Proc_mgr.queued_anywhere pm ~thread:t2);
  let steals_before = List.length (Proc_mgr.steal_ledger pm) in
  (match Proc_mgr.dequeue_next pm with
   | Some _ -> ()
   | None -> Alcotest.fail "own queue had work");
  checki "taking from the own queue is not a steal" steals_before
    (List.length (Proc_mgr.steal_ledger pm))

let test_steal_migrates_home () =
  let k, init = boot () in
  let pm = k.Kernel.pm in
  Proc_mgr.set_sched_cpus pm 2;
  let t2 = new_thread k init in
  checki "t2 homed on cpu 0" 0 (Proc_mgr.home_of pm ~thread:t2);
  checkb "t2 waits on queue 0" true (Sched_queue.mem (Proc_mgr.queue pm ~cpu:0) t2);
  (* cpu 1 runs dry and steals from the back of cpu 0's queue *)
  Proc_mgr.set_cpu pm 1;
  checkb "cpu 1 steals t2" true (Proc_mgr.dequeue_next pm = Some t2);
  Proc_mgr.set_cpu pm 0;
  checkb "stolen thread is current on the thief" true
    (Proc_mgr.current_of pm ~cpu:1 = Some t2);
  checki "home followed the thief" 1 (Proc_mgr.home_of pm ~thread:t2);
  checkb "the ledger logged (thief, victim, thread)" true
    (List.exists (fun (th, v, t) -> th = 1 && v = 0 && t = t2) (Proc_mgr.steal_ledger pm))

let test_terminate_racing_steal () =
  let k, init = boot () in
  let pm = k.Kernel.pm in
  Proc_mgr.set_sched_cpus pm 2;
  let t2 = new_thread k init in
  Proc_mgr.set_cpu pm 1;
  checkb "stolen" true (Proc_mgr.dequeue_next pm = Some t2);
  Proc_mgr.set_cpu pm 0;
  (* correct teardown scrubs the ledger: no stale reference, lint clean *)
  Proc_mgr.destroy_thread pm ~thread:t2;
  checkb "ledger scrubbed on destroy" true
    (not (List.exists (fun (_, _, t) -> t = t2) (Proc_mgr.steal_ledger pm)));
  checkb "thief slot cleared" true (Proc_mgr.current_of pm ~cpu:1 = None);
  Report.clear ();
  checki "sched lint clean after the race" 0 (Atmo_san.Sched_lint.lint k)

let test_lost_steal_detected () =
  let k, init = boot () in
  let pm = k.Kernel.pm in
  Proc_mgr.set_sched_cpus pm 2;
  let t2 = new_thread k init in
  Proc_mgr.set_cpu pm 1;
  checkb "stolen" true (Proc_mgr.dequeue_next pm = Some t2);
  Proc_mgr.set_cpu pm 0;
  (* buggy teardown: the ledger entry outlives the thread *)
  Proc_mgr.set_lost_steal_plant pm true;
  Fun.protect
    ~finally:(fun () -> Proc_mgr.set_lost_steal_plant pm false)
    (fun () -> Proc_mgr.destroy_thread pm ~thread:t2);
  Report.clear ();
  checkb "lint fires" true (Atmo_san.Sched_lint.lint k > 0);
  checkb "as Lost_steal" true
    (List.exists (fun r -> r.Report.rule = Report.Lost_steal) (Report.reports ()));
  Report.clear ()

let test_double_enqueue_detected () =
  let k, init = boot () in
  let pm = k.Kernel.pm in
  Proc_mgr.set_sched_cpus pm 2;
  let t2 = new_thread k init in
  checkb "t2 on queue 0" true (Sched_queue.mem (Proc_mgr.queue pm ~cpu:0) t2);
  Report.clear ();
  checki "clean before the plant" 0 (Atmo_san.Sched_lint.lint k);
  (* each deque stays individually well-formed — only the global
     census sees the thread owning two queue slots *)
  Sched_queue.push_back (Proc_mgr.queue pm ~cpu:1) t2;
  checkb "queue 0 still wf" true (Sched_queue.wf (Proc_mgr.queue pm ~cpu:0) = Ok ());
  checkb "queue 1 still wf" true (Sched_queue.wf (Proc_mgr.queue pm ~cpu:1) = Ok ());
  checkb "census fires" true (Atmo_san.Sched_lint.lint k > 0);
  checkb "as Queue_corrupt" true
    (List.exists (fun r -> r.Report.rule = Report.Queue_corrupt) (Report.reports ()));
  Report.clear ()

let test_topology_resize_requeues () =
  let k, init = boot () in
  let pm = k.Kernel.pm in
  Proc_mgr.set_sched_cpus pm 4;
  let ts = List.init 6 (fun _ -> new_thread k init) in
  List.iteri
    (fun i t ->
      Proc_mgr.set_home pm ~thread:t ~cpu:(i mod 4))
    ts;
  Proc_mgr.set_sched_cpus pm 4;
  (* shrinking must strand nobody: every thread still reachable *)
  Proc_mgr.set_sched_cpus pm 1;
  List.iter
    (fun t -> checkb "requeued after shrink" true (Proc_mgr.queued_anywhere pm ~thread:t))
    ts;
  Report.clear ();
  checki "lint clean after resize" 0 (Atmo_san.Sched_lint.lint k)

(* ------------------------------------------------------------------ *)
(* Lock hierarchy                                                      *)

let test_lock_hierarchy () =
  Report.clear ();
  Lockcheck.arm ();
  Fun.protect ~finally:Lockcheck.disarm (fun () ->
      (* in-order footprint: cpu-queue < endpoint < map-writer *)
      Lockcheck.with_classes ~site:"test.ok" ~cpu:0
        [ Lockcheck.Cpu_queue 0; Lockcheck.Endpoint_shard 2; Lockcheck.Map_writer ]
        (fun () -> ());
      checki "ordered acquisition is clean" 0 (Report.count ());
      (* inversion: queue after shard *)
      Lockcheck.with_classes ~site:"test.bad" ~cpu:0
        [ Lockcheck.Endpoint_shard 2; Lockcheck.Cpu_queue 0 ]
        (fun () -> ());
      checkb "inversion recorded" true
        (List.exists (fun r -> r.Report.rule = Report.Lock_order) (Report.reports ()));
      Report.clear ();
      (* equal rank never nests either: shard-to-shard deadlocks *)
      Lockcheck.with_classes ~site:"test.eq" ~cpu:0
        [ Lockcheck.Endpoint_shard 1; Lockcheck.Endpoint_shard 2 ]
        (fun () -> ());
      checkb "equal-rank nesting recorded" true
        (List.exists (fun r -> r.Report.rule = Report.Lock_order) (Report.reports ()));
      Report.clear ())

(* ------------------------------------------------------------------ *)
(* The on/off oracle: regimes differ in cycles only                    *)

let ipc_world () =
  let k, init = boot () in
  let pm = k.Kernel.pm in
  let receiver = new_thread k init in
  let sender = new_thread k init in
  let ep =
    match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
    | Syscall.Rptr e -> e
    | r -> Alcotest.failf "new_endpoint -> %a" Syscall.pp_ret r
  in
  List.iter
    (fun t ->
      Perm_map.update pm.Proc_mgr.thrd_perms ~ptr:t (fun th ->
          Thread.set_slot th 0 (Some ep)))
    [ receiver; sender ];
  ( k,
    [
      { Smp.thread = receiver; think_cycles = 400;
        call_of = (fun _ -> Syscall.Recv { slot = 0 }) };
      { Smp.thread = sender; think_cycles = 400;
        call_of = (fun i -> Syscall.Send { slot = 0; msg = Message.scalars_only [ i ] }) };
    ] )

let oracle_run regime =
  let k, programs = ipc_world () in
  let digest = Buffer.create 256 in
  let observe ~cpu ~iter ~thread ret =
    Buffer.add_string digest
      (Format.asprintf "%d/%d/%x:%a;" cpu iter thread Syscall.pp_ret ret);
    List.iter
      (fun c ->
        Buffer.add_string digest
          (match c with Some t -> Printf.sprintf "%x," t | None -> "-,"))
      (Proc_mgr.currents_list k.Kernel.pm)
  in
  match Smp.run ~regime ~steal_seed:7 ~observe k ~cost ~cpus:2 ~programs ~iterations:25 with
  | Error msg -> Alcotest.failf "smp run: %s" msg
  | Ok stats -> (stats, Buffer.contents digest, Atmo_core.Abstraction.abstract k)

let test_oracle_identity () =
  let sb, db, ab = oracle_run Smp.Big_lock in
  let sf, df, af = oracle_run Smp.Fine_grained in
  checkb "returns and scheduling decisions bit-identical" true (db = df);
  checkb "abstract states equal" true (Atmo_spec.Abstract_state.equal ab af);
  checkb "placements equal" true (sb.Smp.placement = sf.Smp.placement);
  checki "same syscall count" sb.Smp.syscalls_executed sf.Smp.syscalls_executed;
  (* the regimes must actually differ where they are allowed to:
     the fine-grained kv pair waits less than the serialized big lock *)
  checkb "fine-grained waits no more than the big lock" true
    (sf.Smp.lock_wait_cycles <= sb.Smp.lock_wait_cycles)

let test_per_cpu_wait_split () =
  let s, _, _ = oracle_run Smp.Fine_grained in
  checki "split covers every cpu" s.Smp.cpus (Array.length s.Smp.lock_wait_by_cpu);
  checki "split sums to the total" s.Smp.lock_wait_cycles
    (Array.fold_left ( + ) 0 s.Smp.lock_wait_by_cpu)

let test_metrics_dump_deterministic () =
  (* the per-CPU counter family is pre-created in CPU order at run
     start: two runs dump the same names in the same order *)
  let dump () =
    Atmo_obs.Metrics.reset ();
    let _ = oracle_run Smp.Fine_grained in
    List.filter
      (fun l ->
        String.length l >= 12 && String.sub l 0 12 = "counter smp/")
      (String.split_on_char '\n' (Atmo_obs.Metrics.dump ()))
  in
  let a = dump () and b = dump () in
  checkb "same smp/ counter lines, same order" true (a = b);
  let has prefix =
    List.exists
      (fun l -> String.length l >= String.length prefix
                && String.sub l 0 (String.length prefix) = prefix)
      a
  in
  checkb "per-cpu family present" true
    (has "counter smp/lock_wait/0 " && has "counter smp/lock_wait/1 ")

let () =
  Alcotest.run "smp"
    [
      ( "queues",
        [
          Alcotest.test_case "steal from empty" `Quick test_steal_from_empty;
          Alcotest.test_case "self-steal guard" `Quick test_self_steal_guard;
          Alcotest.test_case "steal migrates home" `Quick test_steal_migrates_home;
          Alcotest.test_case "terminate racing steal" `Quick test_terminate_racing_steal;
          Alcotest.test_case "lost steal detected" `Quick test_lost_steal_detected;
          Alcotest.test_case "double enqueue detected" `Quick test_double_enqueue_detected;
          Alcotest.test_case "topology resize requeues" `Quick test_topology_resize_requeues;
        ] );
      ( "locks",
        [ Alcotest.test_case "hierarchy enforced" `Quick test_lock_hierarchy ] );
      ( "oracle",
        [
          Alcotest.test_case "big vs fine identity" `Quick test_oracle_identity;
          Alcotest.test_case "per-cpu wait split" `Quick test_per_cpu_wait_split;
          Alcotest.test_case "metrics dump deterministic" `Quick
            test_metrics_dump_deterministic;
        ] );
    ]
