(* IPC fastpath oracle: the fastpath must be observationally invisible.

   A seeded random ping-pong script is applied to two freshly booted
   kernels, one with the fastpath enabled and one with it disabled;
   after every step the return values, abstract states and the concrete
   run-queue order must agree exactly.  Also structural tests for the
   intrusive O(1) run-queue deque that the fastpath manipulates by
   hand. *)

open Atmo_util
module Syscall = Atmo_spec.Syscall
module Kernel = Atmo_core.Kernel
module Invariants = Atmo_core.Invariants
module Abstraction = Atmo_core.Abstraction
module A = Atmo_spec.Abstract_state
module Message = Atmo_pm.Message
module Thread = Atmo_pm.Thread
module Endpoint = Atmo_pm.Endpoint
module Perm_map = Atmo_pm.Perm_map
module Proc_mgr = Atmo_pm.Proc_mgr
module Sched_queue = Atmo_pm.Sched_queue
module Phys_mem = Atmo_hw.Phys_mem
module Metrics = Atmo_obs.Metrics

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let expect_wf what k =
  match Invariants.total_wf k with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: total_wf broken: %s" what msg

let boot () =
  match Kernel.boot Kernel.default_boot with
  | Ok (k, init) -> (k, init)
  | Error e -> Alcotest.failf "boot failed: %a" Errno.pp e

(* A kernel with three threads all holding the same endpoint in slot 0,
   as a spawner would arrange.  Both oracle kernels run this exact
   setup, so their initial states are identical. *)
let world () =
  let k, init = boot () in
  let spawn () =
    match Kernel.step k ~thread:init Syscall.New_thread with
    | Syscall.Rptr t -> t
    | r -> Alcotest.failf "new_thread: %a" Syscall.pp_ret r
  in
  let t2 = spawn () in
  let t3 = spawn () in
  (match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
   | Syscall.Rptr _ -> ()
   | r -> Alcotest.failf "new_endpoint: %a" Syscall.pp_ret r);
  let ep =
    match Thread.slot (Perm_map.borrow k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:init) 0 with
    | Some ep -> ep
    | None -> Alcotest.fail "endpoint slot empty"
  in
  List.iter
    (fun t ->
      Perm_map.update k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:t (fun th ->
          Thread.set_slot th 0 (Some ep));
      Perm_map.update k.Kernel.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
          { e with Endpoint.refcount = e.Endpoint.refcount + 1 }))
    [ t2; t3 ];
  (k, [| init; t2; t3 |])

(* ------------------------------------------------------------------ *)
(* The randomized oracle                                               *)

let gen_call rng =
  match Random.State.int rng 8 with
  | 0 | 1 -> Syscall.Send { slot = 0; msg = Message.scalars_only [ Random.State.int rng 1000 ] }
  | 2 | 3 -> Syscall.Recv { slot = 0 }
  | 4 -> Syscall.Send_nb { slot = 0; msg = Message.scalars_only [ Random.State.int rng 1000 ] }
  | 5 -> Syscall.Recv_nb { slot = 0 }
  | 6 -> Syscall.Recv_reject { slot = 0 }
  | _ -> Syscall.Yield

let gen_script rng ~len =
  List.init len (fun _ -> (Random.State.int rng 3, gen_call rng))

let run_script ~script ~fastpath (k, actors) =
  List.map
    (fun (who, call) ->
      Kernel.set_fastpath fastpath;
      let ret = Kernel.step k ~thread:actors.(who) call in
      (ret, Abstraction.abstract k, Proc_mgr.run_queue_list k.Kernel.pm))
    script

let test_oracle () =
  let rng = Random.State.make [| 0x417 |] in
  let fast_before = Metrics.Counter.value (Metrics.counter "ipc/fastpath") in
  Fun.protect
    ~finally:(fun () -> Kernel.set_fastpath true)
    (fun () ->
      for round = 1 to 25 do
        let script = gen_script rng ~len:40 in
        let ka = world () and kb = world () in
        let ta = run_script ~script ~fastpath:true ka in
        let tb = run_script ~script ~fastpath:false kb in
        List.iteri
          (fun i ((ra, sa, qa), (rb, sb, qb)) ->
            if ra <> rb then
              Alcotest.failf "round %d step %d: ret diverged: %a vs %a" round i
                Syscall.pp_ret ra Syscall.pp_ret rb;
            if not (A.equal sa sb) then
              Alcotest.failf "round %d step %d: abstract state diverged" round i;
            if qa <> qb then
              Alcotest.failf "round %d step %d: run queue diverged" round i)
          (List.combine ta tb);
        expect_wf "fastpath kernel" (fst ka);
        expect_wf "slowpath kernel" (fst kb)
      done);
  checkb "fastpath exercised" true
    (Metrics.Counter.value (Metrics.counter "ipc/fastpath") > fast_before)

let test_fastpath_counter () =
  Kernel.set_fastpath true;
  let k, actors = world () in
  let fast = Metrics.counter "ipc/fastpath" in
  let before = Metrics.Counter.value fast in
  (* park both spare threads as receivers: the run queue drains to
     empty and the current thread sends, so every fastpath guard holds *)
  List.iter
    (fun who ->
      match Kernel.step k ~thread:actors.(who) (Syscall.Recv { slot = 0 }) with
      | Syscall.Rblocked -> ()
      | r -> Alcotest.failf "recv should block: %a" Syscall.pp_ret r)
    [ 1; 2 ];
  (match
     Kernel.step k ~thread:actors.(0)
       (Syscall.Send { slot = 0; msg = Message.scalars_only [ 7 ] })
   with
   | Syscall.Runit -> ()
   | r -> Alcotest.failf "send: %a" Syscall.pp_ret r);
  checki "fastpath taken" (before + 1) (Metrics.Counter.value fast);
  (* direct switch: the parked receiver now owns the CPU *)
  checkb "receiver current" true (Proc_mgr.current k.Kernel.pm = Some actors.(1));
  checkb "sender requeued" true
    (Proc_mgr.run_queue_list k.Kernel.pm = [ actors.(0) ]);
  expect_wf "after fastpath" k

let test_grant_takes_slowpath () =
  Kernel.set_fastpath true;
  let k, actors = world () in
  let slow = Metrics.counter "ipc/slowpath" in
  let before = Metrics.Counter.value slow in
  (match Kernel.step k ~thread:actors.(0)
           (Syscall.Mmap
              { va = 0x4000_0000; count = 1; size = Atmo_pmem.Page_state.S4k;
                perm = Atmo_hw.Pte_bits.perm_rw })
   with
   | Syscall.Rmapped _ -> ()
   | r -> Alcotest.failf "mmap: %a" Syscall.pp_ret r);
  (* empty run queue and parked receiver: only the page grant stands
     between this send and the fastpath *)
  List.iter
    (fun who ->
      match Kernel.step k ~thread:actors.(who) (Syscall.Recv { slot = 0 }) with
      | Syscall.Rblocked -> ()
      | r -> Alcotest.failf "recv should block: %a" Syscall.pp_ret r)
    [ 1; 2 ];
  let msg =
    { Message.scalars = [ 1 ];
      page = Some { Message.src_vaddr = 0x4000_0000; dst_vaddr = 0x5000_0000 };
      endpoint = None }
  in
  (match Kernel.step k ~thread:actors.(0) (Syscall.Send { slot = 0; msg }) with
   | Syscall.Runit -> ()
   | r -> Alcotest.failf "send: %a" Syscall.pp_ret r);
  checki "grant declined the fastpath" (before + 1) (Metrics.Counter.value slow);
  expect_wf "after grant" k

(* ------------------------------------------------------------------ *)
(* Run-queue deque structure                                           *)

let page n = n * Phys_mem.page_size

let test_queue_fifo () =
  let mem = Phys_mem.create ~page_count:16 in
  let q = Sched_queue.create mem in
  checkb "fresh empty" true (Sched_queue.is_empty q);
  Sched_queue.push_back q (page 3);
  Sched_queue.push_back q (page 7);
  Sched_queue.push_back q (page 5);
  checki "length" 3 (Sched_queue.length q);
  checkb "mem" true (Sched_queue.mem q (page 7));
  checkb "not mem" false (Sched_queue.mem q (page 4));
  Alcotest.(check (list int)) "fifo order" [ page 3; page 7; page 5 ]
    (Sched_queue.to_list q);
  checkb "peek" true (Sched_queue.peek_front q = Some (page 3));
  checkb "pop" true (Sched_queue.pop_front q = Some (page 3));
  Sched_queue.push_front q (page 9);
  Alcotest.(check (list int)) "push_front" [ page 9; page 7; page 5 ]
    (Sched_queue.to_list q);
  (match Sched_queue.wf q with
   | Ok () -> ()
   | Error m -> Alcotest.failf "wf: %s" m)

let test_queue_remove () =
  let mem = Phys_mem.create ~page_count:16 in
  let q = Sched_queue.create mem in
  List.iter (fun n -> Sched_queue.push_back q (page n)) [ 1; 2; 3; 4 ];
  Sched_queue.remove q (page 3);
  Alcotest.(check (list int)) "middle removed" [ page 1; page 2; page 4 ]
    (Sched_queue.to_list q);
  Sched_queue.remove q (page 1);
  Alcotest.(check (list int)) "head removed" [ page 2; page 4 ]
    (Sched_queue.to_list q);
  Sched_queue.remove_if_queued q (page 9);
  Sched_queue.remove_if_queued q (page 4);
  Alcotest.(check (list int)) "tail removed" [ page 2 ] (Sched_queue.to_list q);
  (match Sched_queue.wf q with
   | Ok () -> ()
   | Error m -> Alcotest.failf "wf: %s" m)

let test_queue_misuse () =
  let mem = Phys_mem.create ~page_count:16 in
  let q = Sched_queue.create mem in
  Sched_queue.push_back q (page 2);
  checkb "double enqueue rejected" true
    (try Sched_queue.push_back q (page 2); false with Invalid_argument _ -> true);
  checkb "unaligned rejected" true
    (try Sched_queue.push_back q (page 3 + 1); false
     with Invalid_argument _ -> true);
  checkb "absent remove rejected" true
    (try Sched_queue.remove q (page 5); false with Invalid_argument _ -> true)

let () =
  Alcotest.run "fastpath"
    [
      ( "oracle",
        [
          Alcotest.test_case "fastpath on/off bit-identical" `Quick test_oracle;
          Alcotest.test_case "fastpath counter and direct switch" `Quick
            test_fastpath_counter;
          Alcotest.test_case "page grant declines fastpath" `Quick
            test_grant_takes_slowpath;
        ] );
      ( "run_queue",
        [
          Alcotest.test_case "fifo order" `Quick test_queue_fifo;
          Alcotest.test_case "removal" `Quick test_queue_remove;
          Alcotest.test_case "misuse rejected" `Quick test_queue_misuse;
        ] );
    ]
