(* Software TLB: bit-identity of warm resolves against the cold-walk
   oracle under randomized map/unmap/protect sequences, shootdown
   precision, ASID isolation across address-space switches, and the
   IOTLB invalidation protocol. *)

module Phys_mem = Atmo_hw.Phys_mem
module Mmu = Atmo_hw.Mmu
module Tlb = Atmo_hw.Tlb
module Iommu = Atmo_hw.Iommu
module Pte = Atmo_hw.Pte_bits
module Page_state = Atmo_pmem.Page_state
module Page_alloc = Atmo_pmem.Page_alloc
module Page_table = Atmo_pt.Page_table

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let expect what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Page_table.pp_error e

let mk_pt ?(frames = 4096) () =
  let mem = Phys_mem.create ~page_count:frames in
  let alloc = Page_alloc.create mem ~reserved_frames:0 in
  let pt = expect "create" (Page_table.create mem alloc) in
  (mem, alloc, pt)

let user_frame alloc =
  match Page_alloc.alloc_4k alloc ~purpose:Page_alloc.User with
  | Some f -> f
  | None -> Alcotest.fail "no user frame"

let eq_translation a b =
  match (a, b) with
  | None, None -> true
  | Some (x : Mmu.translation), Some (y : Mmu.translation) ->
    x.Mmu.paddr = y.Mmu.paddr && x.Mmu.frame = y.Mmu.frame
    && x.Mmu.size = y.Mmu.size
    && Pte.equal_perm x.Mmu.perm y.Mmu.perm
  | _ -> false

(* Every probe answers three ways — warm hot resolve, a second hot
   resolve (now guaranteed warm if the first filled the TLB), and the
   cold oracle — and all three must agree bit for bit. *)
let probe_identical what pt ~vaddr =
  let hot1 = Page_table.resolve pt ~vaddr in
  let hot2 = Page_table.resolve pt ~vaddr in
  let cold = Page_table.resolve_cold pt ~vaddr in
  if not (eq_translation hot1 cold && eq_translation hot2 cold) then
    Alcotest.failf "%s: hot resolve of 0x%x diverges from the cold walk" what vaddr

let test_oracle_randomized () =
  let _, alloc, pt = mk_pt () in
  let rng = Random.State.make [| 0xA51D |] in
  let pages = 48 in
  let base = 0x4000_0000 in
  let va i = base + (i * Phys_mem.page_size) in
  let frames = Array.init pages (fun _ -> user_frame alloc) in
  let mapped = Array.make pages false in
  for _step = 1 to 600 do
    let i = Random.State.int rng pages in
    (match Random.State.int rng 4 with
     | 0 ->
       if not mapped.(i) then begin
         expect "map"
           (Page_table.map_4k pt ~vaddr:(va i) ~frame:frames.(i) ~perm:Pte.perm_rw);
         mapped.(i) <- true
       end
     | 1 ->
       if mapped.(i) then begin
         ignore (expect "unmap" (Page_table.unmap pt ~vaddr:(va i)));
         mapped.(i) <- false
       end
     | 2 ->
       if mapped.(i) then
         expect "protect"
           (Page_table.update_perm pt ~vaddr:(va i)
              ~perm:(if Random.State.bool rng then Pte.perm_ro else Pte.perm_rw))
     | _ -> ());
    (* probe the mutated page plus a couple of random others *)
    probe_identical "mutated" pt ~vaddr:(va i + Random.State.int rng Phys_mem.page_size);
    probe_identical "other" pt ~vaddr:(va (Random.State.int rng pages));
    probe_identical "unmapped-region" pt ~vaddr:0x7000_0000
  done;
  (* final sweep: every page agrees, mapped or not *)
  for i = 0 to pages - 1 do
    checkb "mapped state agrees" mapped.(i) (Page_table.resolve pt ~vaddr:(va i) <> None);
    probe_identical "sweep" pt ~vaddr:(va i)
  done

let test_hit_and_shootdown () =
  let _, alloc, pt = mk_pt () in
  let frame = user_frame alloc in
  let vaddr = 0x4000_0000 in
  expect "map" (Page_table.map_4k pt ~vaddr ~frame ~perm:Pte.perm_rw);
  let s0 = Tlb.cpu_stats () in
  checkb "first resolve ok" true (Page_table.resolve pt ~vaddr <> None);
  let s1 = Tlb.cpu_stats () in
  checki "first resolve misses" (s0.Tlb.misses + 1) s1.Tlb.misses;
  checkb "second resolve ok" true (Page_table.resolve pt ~vaddr <> None);
  let s2 = Tlb.cpu_stats () in
  checki "second resolve hits" (s1.Tlb.hits + 1) s2.Tlb.hits;
  (* shootdown: the cached entry must not survive the unmap *)
  ignore (expect "unmap" (Page_table.unmap pt ~vaddr));
  checkb "faults hot after unmap" true (Page_table.resolve pt ~vaddr = None);
  checkb "faults cold after unmap" true (Page_table.resolve_cold pt ~vaddr = None)

let test_protect_shootdown () =
  let _, alloc, pt = mk_pt () in
  let frame = user_frame alloc in
  let vaddr = 0x4000_0000 in
  expect "map" (Page_table.map_4k pt ~vaddr ~frame ~perm:Pte.perm_rw);
  checkb "warm writable" true
    (match Page_table.resolve pt ~vaddr with
     | Some tr -> tr.Mmu.perm.Pte.write
     | None -> false);
  expect "protect" (Page_table.update_perm pt ~vaddr ~perm:Pte.perm_ro);
  checkb "read-only immediately" true
    (match Page_table.resolve pt ~vaddr with
     | Some tr -> not tr.Mmu.perm.Pte.write
     | None -> false)

let test_superpage () =
  let _, alloc, pt = mk_pt () in
  let frame =
    match Page_alloc.alloc_2m alloc ~purpose:Page_alloc.User with
    | Some f -> f
    | None -> Alcotest.fail "no 2M block"
  in
  let vaddr = 0x8000_0000 in
  expect "map 2m" (Page_table.map_2m pt ~vaddr ~frame ~perm:Pte.perm_rw);
  (* interior offsets of the superpage resolve through one cached entry
     per probed 4 KiB page, all rebuilt from the superpage base *)
  List.iter
    (fun off ->
      probe_identical "2m interior" pt ~vaddr:(vaddr + off);
      match Page_table.resolve pt ~vaddr:(vaddr + off) with
      | Some tr ->
        checki "paddr from superpage base" (frame + off) tr.Mmu.paddr;
        checki "size is 2 MiB" Phys_mem.page_size_2m tr.Mmu.size
      | None -> Alcotest.fail "2m interior faults")
    [ 0; 5; 0x3000; 0x1f_f000 ];
  ignore (expect "unmap 2m" (Page_table.unmap pt ~vaddr));
  List.iter
    (fun off -> checkb "2m gone" true (Page_table.resolve pt ~vaddr:(vaddr + off) = None))
    [ 0; 0x3000; 0x1f_f000 ]

let test_asid_isolation () =
  (* Two address spaces over the same memory map the same virtual page
     to different frames.  Warm both; each must keep seeing its own
     frame — cached translations are ASID-tagged, so the "switch" (just
     resolving through the other root) needs no flush, which is the
     executable form of the isolation argument. *)
  let mem = Phys_mem.create ~page_count:4096 in
  let alloc = Page_alloc.create mem ~reserved_frames:0 in
  let pt_a = expect "create a" (Page_table.create mem alloc) in
  let pt_b = expect "create b" (Page_table.create mem alloc) in
  let vaddr = 0x4000_0000 in
  let frame_a = user_frame alloc and frame_b = user_frame alloc in
  expect "map a" (Page_table.map_4k pt_a ~vaddr ~frame:frame_a ~perm:Pte.perm_rw);
  expect "map b" (Page_table.map_4k pt_b ~vaddr ~frame:frame_b ~perm:Pte.perm_ro);
  for _round = 1 to 3 do
    (match Page_table.resolve pt_a ~vaddr with
     | Some tr ->
       checki "A sees its frame" frame_a tr.Mmu.frame;
       checkb "A's perm" true tr.Mmu.perm.Pte.write
     | None -> Alcotest.fail "A faults");
    match Page_table.resolve pt_b ~vaddr with
    | Some tr ->
      checki "B sees its frame" frame_b tr.Mmu.frame;
      checkb "B's perm" true (not tr.Mmu.perm.Pte.write)
    | None -> Alcotest.fail "B faults"
  done;
  (* container A goes away: its cached translations die with its ASID
     and B is untouched *)
  let cr3_a = Page_table.cr3 pt_a in
  ignore (Page_table.destroy pt_a);
  checkb "A's TLB retired" true (Tlb.space_opt mem ~cr3:cr3_a = None);
  (match Page_table.resolve pt_b ~vaddr with
   | Some tr -> checki "B survives A's teardown" frame_b tr.Mmu.frame
   | None -> Alcotest.fail "B faults after A's teardown")

let test_iotlb_protocol () =
  let mem = Phys_mem.create ~page_count:4096 in
  let alloc = Page_alloc.create mem ~reserved_frames:0 in
  let pt = expect "create" (Page_table.create mem alloc) in
  let iommu = Iommu.create mem in
  let device = 3 in
  let iova = 0x1_0000 in
  let frame = user_frame alloc in
  expect "map" (Page_table.map_4k pt ~vaddr:iova ~frame ~perm:Pte.perm_rw);
  Iommu.attach iommu ~device ~root:(Page_table.cr3 pt);
  (match Iommu.translate iommu ~device ~iova with
   | Some tr -> checki "iotlb fill" frame tr.Mmu.frame
   | None -> Alcotest.fail "translate faults");
  (* CPU-side shootdown does NOT reach the IOTLB: after the unmap the
     device still sees the stale translation until the kernel issues the
     explicit IOTLB invalidation — the window Tlb_lint flags. *)
  ignore (expect "unmap" (Page_table.unmap pt ~vaddr:iova));
  checkb "stale window" true (Iommu.translate iommu ~device ~iova <> None);
  Iommu.iotlb_invlpg iommu ~device ~iova;
  checkb "fault after invlpg" true (Iommu.translate iommu ~device ~iova = None);
  (* remap and detach: detach must flush *)
  expect "remap" (Page_table.map_4k pt ~vaddr:iova ~frame ~perm:Pte.perm_rw);
  checkb "warm again" true (Iommu.translate iommu ~device ~iova <> None);
  Iommu.detach iommu ~device;
  checkb "fault after detach" true (Iommu.translate iommu ~device ~iova = None)

let test_disable_restores_cold () =
  let _, alloc, pt = mk_pt () in
  let frame = user_frame alloc in
  let vaddr = 0x4000_0000 in
  expect "map" (Page_table.map_4k pt ~vaddr ~frame ~perm:Pte.perm_rw);
  checkb "warm" true (Page_table.resolve pt ~vaddr <> None);
  Tlb.set_enabled false;
  Fun.protect ~finally:(fun () -> Tlb.set_enabled true) (fun () ->
      checkb "cold resolve works" true (Page_table.resolve pt ~vaddr <> None);
      probe_identical "disabled" pt ~vaddr;
      (* with the TLB off, nothing is cached across the toggle *)
      checkb "registry empty" true (Tlb.space_opt (Page_table.mem pt) ~cr3:(Page_table.cr3 pt) = None))

let () =
  Atmo_san.Runtime.arm_of_env ();
  Alcotest.run "tlb"
    [
      ( "oracle",
        [
          Alcotest.test_case "randomized bit-identity" `Quick test_oracle_randomized;
          Alcotest.test_case "hit and shootdown" `Quick test_hit_and_shootdown;
          Alcotest.test_case "protect shootdown" `Quick test_protect_shootdown;
          Alcotest.test_case "superpage" `Quick test_superpage;
        ] );
      ( "isolation",
        [ Alcotest.test_case "asid tagging" `Quick test_asid_isolation ] );
      ( "iommu",
        [ Alcotest.test_case "iotlb protocol" `Quick test_iotlb_protocol ] );
      ( "toggle",
        [ Alcotest.test_case "disable restores cold" `Quick test_disable_restores_cold ] );
    ];
  Atmo_san.Runtime.exit_check ()
