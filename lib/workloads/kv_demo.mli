(** The kv-store demo workload — §6.6's GET path as a span-tree
    acceptance scenario.

    Boots a kernel, creates a server container (CPU 1) holding three
    Maglev-steered kv-store shards backed by an NVMe queue pair, and
    drives GET requests from init (CPU 0) over a pair of IPC endpoints.
    Each request crosses two IPC rendezvous and one driver
    submit/completion, so with a {!Atmo_obs.Sink.Flight} sink installed
    the flight-recorder stream reconstructs the full request path:
    [Request → send —ipc→ recv —wakeup→ kv_handler → drv_submit —drv→
    drv_complete → send —ipc→ recv → Request end].

    The virtual clock advances identically whether the sink is
    [Disabled] or [Flight]; [end_cycles] and [latencies] are the
    bit-identity oracle for the zero-overhead guarantee. *)

type result = {
  requests : int;
  hits : int;  (** GETs that found their key (should equal [requests]) *)
  end_cycles : int;  (** virtual clock at workload end *)
  latencies : int list;  (** per-request round-trip cycles, oldest first *)
  replies : bytes list;
      (** encoded reply the client received per request, oldest first —
          the bit-identity oracle across device backends *)
  server_container : int;
  client_container : int;
  abstract : Atmo_spec.Abstract_state.t;
}

val run :
  ?requests:int ->
  ?entries:int ->
  ?blk:[ `Nvme | `Virtio ] ->
  ?nic:[ `Ixgbe | `Virtio ] ->
  unit ->
  result
(** Run the workload on a freshly booted kernel.  [requests] defaults
    to 16; [entries] (per-shard capacity) to 256.  [blk] selects the
    block backend behind the shards ([`Nvme], the default, or [`Virtio]
    for virtio-blk over a split virtqueue); both share one service-time
    model, so [end_cycles], [latencies] and [replies] are bit-identical
    across them.  [nic], when given, additionally routes every request
    and reply payload through a NIC datapath (ixgbe descriptor rings or
    virtio-net virtqueues) in a standalone IOMMU domain; the two NICs
    charge identical driver cycles, so they too are interchangeable
    without moving a cycle.  Installs nothing: the caller owns sink
    setup/teardown ({!Atmo_obs.Sink.install}, {!Atmo_obs.Span.reset},
    {!Atmo_obs.Metrics.reset}). *)
