(* End-to-end kv-store demo workload: the span-tree acceptance scenario.

   One kernel, two containers.  The client (init, CPU 0) issues GET
   requests over an IPC request endpoint; a server thread in its own
   container (CPU 1) steers each key through a Maglev table to one of
   three kv-store shards, reads the value's backing block from an NVMe
   queue pair, and replies over a second endpoint.  Every request
   therefore crosses two IPC rendezvous and one driver
   submit/completion pair, so the profiler can reconstruct the whole
   path from the flight-recorder stream:

     Request [cpu0]
     ├── send syscall ──ipc──▶ recv syscall [cpu1] ──wakeup──▶ kv_handler [cpu1]
     │                                                         ├── drv_submit ──drv──▶ drv_complete
     │                                                         └── send syscall ──ipc──▶
     └── recv syscall ◀──────────────────────────────────────────┘
     (Request ends; latency = reply time − request time)

   The whole workload runs on one virtual clock (the NVMe device
   clock), advanced identically whether the sink is Disabled or Flight:
   every [Clock.advance] is unconditional, so the cycle figures are the
   bit-identical zero-overhead baseline when tracing is off. *)

module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Proc_mgr = Atmo_pm.Proc_mgr
module Perm_map = Atmo_pm.Perm_map
module Thread = Atmo_pm.Thread
module Message = Atmo_pm.Message
module Sink = Atmo_obs.Sink
module Span = Atmo_obs.Span
module Clock = Atmo_hw.Clock
module Nvme = Atmo_drivers.Nvme
module Ixgbe = Atmo_drivers.Ixgbe
module Virtio_net = Atmo_drivers.Virtio_net
module Virtio_blk = Atmo_drivers.Virtio_blk
module Virtio_ring = Atmo_drivers.Virtio_ring
module Fault = Atmo_devmodel.Fault
module Phys_mem = Atmo_hw.Phys_mem
module Iommu = Atmo_hw.Iommu
module Pte = Atmo_hw.Pte_bits
module Page_alloc = Atmo_pmem.Page_alloc
module Page_table = Atmo_pt.Page_table
module Packet = Atmo_net.Packet
module Kv_store = Atmo_net.Kv_store
module Maglev = Atmo_net.Maglev

type result = {
  requests : int;
  hits : int;
  end_cycles : int;  (** virtual clock at workload end *)
  latencies : int list;  (** per-request round-trip cycles, oldest first *)
  replies : bytes list;  (** encoded reply per request, oldest first *)
  server_container : int;
  client_container : int;
  abstract : Atmo_spec.Abstract_state.t;
}

(* Cycles charged to the server's application logic per request (decode,
   Maglev steering, hash probe).  Charged unconditionally so the
   timeline is sink-independent. *)
let handler_cycles = 400

let kv_handler_kind = lazy (Span.register_app "kv_handler")

(* ------------------------------------------------------------------ *)
(* IPC scalar packing: requests and replies travel as the kv-store's
   wire encoding, packed 7 bytes per scalar word (length first) to stay
   inside the 63-bit int and the 8-word message cap. *)

let bytes_per_word = 7
let max_payload = bytes_per_word * (Atmo_pm.Kconfig.max_ipc_scalars - 1)

let pack_bytes b =
  let n = Bytes.length b in
  if n > max_payload then
    Fmt.invalid_arg "kv_demo: %d-byte payload exceeds the %d-byte IPC cap" n max_payload;
  let words = (n + bytes_per_word - 1) / bytes_per_word in
  let word w =
    let acc = ref 0 in
    for j = bytes_per_word - 1 downto 0 do
      let i = (w * bytes_per_word) + j in
      acc := (!acc lsl 8) lor (if i < n then Char.code (Bytes.get b i) else 0)
    done;
    !acc
  in
  n :: List.init words word

let unpack_bytes = function
  | [] -> Bytes.empty
  | n :: words ->
    let b = Bytes.create n in
    List.iteri
      (fun w word ->
        for j = 0 to bytes_per_word - 1 do
          let i = (w * bytes_per_word) + j in
          if i < n then Bytes.set b i (Char.chr ((word lsr (8 * j)) land 0xff))
        done)
      words;
    b

(* FNV-1a over the key, for Maglev flow steering. *)
let flow_hash key =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    key;
  !h

(* ------------------------------------------------------------------ *)

let keys = 32
let key_of i = Bytes.of_string (Printf.sprintf "k%05d" (i mod keys))
let lba_of i = 1 + (i mod keys)

(* ------------------------------------------------------------------ *)
(* Interchangeable device backends.  Each backend that DMAs lives in its
   own standalone device environment (memory, identity page table,
   IOMMU domain) so the workload kernel's memory accounting is
   untouched; both backends of a kind charge the virtual clock
   identically, so swapping one for the other must not move a single
   cycle. *)

type blk = Blk_nvme of Nvme.t | Blk_virtio of Virtio_blk.t
type nic = Nic_ixgbe of Ixgbe.t | Nic_virtio of Virtio_net.t

(* A private DMA arena: fresh memory, an identity-style page table
   attached to the IOMMU as [device], and a bump allocator of mapped
   iova ranges. *)
let mk_dma_env ~page_count ~device =
  let mem = Phys_mem.create ~page_count in
  let alloc = Page_alloc.create mem ~reserved_frames:0 in
  let iommu = Iommu.create mem in
  let pt =
    match Page_table.create mem alloc with
    | Ok pt -> pt
    | Error e -> Fmt.failwith "kv_demo: device page table: %a" Page_table.pp_error e
  in
  let map_page iova =
    let frame =
      match Page_alloc.alloc_4k alloc ~purpose:Page_alloc.User with
      | Some f -> f
      | None -> Fmt.failwith "kv_demo: device arena out of frames"
    in
    match Page_table.map_4k pt ~vaddr:iova ~frame ~perm:Pte.perm_rw with
    | Ok () -> ()
    | Error _ -> Fmt.failwith "kv_demo: device arena map failed at 0x%x" iova
  in
  let next_iova = ref 0x20_0000 in
  let span bytes =
    let base = !next_iova in
    let pages = (bytes + Phys_mem.page_size - 1) / Phys_mem.page_size in
    for i = 0 to pages - 1 do
      map_page (base + (i * Phys_mem.page_size))
    done;
    next_iova := base + (pages * Phys_mem.page_size);
    base
  in
  Iommu.attach iommu ~device ~root:(Page_table.cr3 pt);
  (mem, iommu, span)

let blk_queue_depth = 32

let mk_blk backend ~clock ~cost =
  match backend with
  | `Nvme ->
    let nvme = Nvme.create ~clock ~cost ~capacity_blocks:1024 in
    Nvme.set_device nvme 7;
    Blk_nvme nvme
  | `Virtio ->
    let mem, iommu, span = mk_dma_env ~page_count:64 ~device:7 in
    let blk = Virtio_blk.create mem iommu ~device:7 ~clock ~cost ~capacity_blocks:1024 in
    let _, _, _, ring_bytes =
      Virtio_ring.layout ~qsz:(3 * blk_queue_depth) ~base:0
    in
    let ring_iova = span ring_bytes in
    let arena_iova = span (blk_queue_depth * Virtio_blk.slot_bytes) in
    (match Virtio_blk.setup blk ~ring_iova ~arena_iova ~depth:blk_queue_depth with
     | Ok () -> ()
     | Error e -> Fmt.failwith "kv_demo: virtio-blk setup: %s" (Fault.error_to_string e));
    Blk_virtio blk

let blk_write b ~lba ~data =
  match b with
  | Blk_nvme d -> Result.map ignore (Nvme.submit_write d ~lba ~data)
  | Blk_virtio d -> Result.map ignore (Virtio_blk.submit_write d ~lba ~data)

let blk_read b ~lba =
  match b with
  | Blk_nvme d -> Result.map ignore (Nvme.submit_read d ~lba)
  | Blk_virtio d -> Result.map ignore (Virtio_blk.submit_read d ~lba)

let blk_wait b =
  match b with
  | Blk_nvme d -> ignore (Nvme.wait_all d)
  | Blk_virtio d -> ignore (Virtio_blk.wait_all d)

(* The optional NIC loop: when a NIC backend is selected, every request
   and reply payload additionally travels as an Ethernet frame through
   the device — driver tx, the wire, device rx DMA — and the bytes the
   far side decodes are the ones harvested from the RX ring. *)
let nic_slots = 8
let nic_buf_bytes = 2048

let mk_nic backend ~clock ~cost =
  let mem_pages = 64 in
  let mk_rings span =
    let ring () = span Phys_mem.page_size in
    let bufs () = Array.init nic_slots (fun _ -> (span nic_buf_bytes, nic_buf_bytes)) in
    let rx_ring = ring () in
    let rx_bufs = bufs () in
    let tx_ring = ring () in
    let tx_bufs = bufs () in
    (rx_ring, rx_bufs, tx_ring, tx_bufs)
  in
  let fail what = function
    | Ok () -> ()
    | Error e -> Fmt.failwith "kv_demo: %s: %s" what (Fault.error_to_string e)
  in
  match backend with
  | `Ixgbe ->
    let mem, iommu, span = mk_dma_env ~page_count:mem_pages ~device:3 in
    let nic = Ixgbe.create mem iommu ~device:3 ~clock ~cost in
    let rx_ring, rx_bufs, tx_ring, tx_bufs = mk_rings span in
    fail "ixgbe setup_rx" (Ixgbe.setup_rx nic ~ring_iova:rx_ring ~buffers:rx_bufs);
    fail "ixgbe setup_tx" (Ixgbe.setup_tx nic ~ring_iova:tx_ring ~buffers:tx_bufs);
    Nic_ixgbe nic
  | `Virtio ->
    let mem, iommu, span = mk_dma_env ~page_count:mem_pages ~device:3 in
    let nic = Virtio_net.create mem iommu ~device:3 ~clock ~cost in
    let rx_ring, rx_bufs, tx_ring, tx_bufs = mk_rings span in
    fail "virtio-net setup_rx" (Virtio_net.setup_rx nic ~ring_iova:rx_ring ~buffers:rx_bufs);
    fail "virtio-net setup_tx" (Virtio_net.setup_tx nic ~ring_iova:tx_ring ~buffers:tx_bufs);
    Nic_virtio nic

let nic_flow = lazy (Packet.flow_of_ints ~src:0x0a00_0001 ~dst:0x0a00_0002 ~sport:7777 ~dport:11211)

(* Send [payload] through the NIC datapath and harvest it on the far
   side: driver tx -> wire -> loopback rx DMA -> driver rx.  Returns the
   payload as decoded from the received frame. *)
let nic_transfer nic payload =
  let frame = Packet.build (Lazy.force nic_flow) ~payload in
  let sent, collected, harvested =
    match nic with
    | Nic_ixgbe n ->
      let sent = Ixgbe.tx_burst n [ frame ] in
      let wire = Ixgbe.wire_collect n in
      List.iter (fun f -> ignore (Ixgbe.wire_deliver n f)) wire;
      (sent, wire, Ixgbe.rx_burst n ~max:nic_slots)
    | Nic_virtio n ->
      let sent = Virtio_net.tx_burst n [ frame ] in
      let wire = Virtio_net.wire_collect n in
      List.iter (fun f -> ignore (Virtio_net.wire_deliver n f)) wire;
      (sent, wire, Virtio_net.rx_burst n ~max:nic_slots)
  in
  match (sent, collected, harvested) with
  | 1, [ _ ], [ rxf ] ->
    (match Packet.payload rxf with
     | Some p -> p
     | None -> Fmt.failwith "kv_demo: nic frame lost its payload")
  | _ ->
    Fmt.failwith "kv_demo: nic transfer sent=%d wire=%d rx=%d" sent
      (List.length collected) (List.length harvested)

let run ?(requests = 16) ?(entries = 256) ?(blk = `Nvme) ?nic () =
  let cost = Atmo_sim.Cost.default in
  let k, init =
    match Kernel.boot Kernel.default_boot with
    | Ok v -> v
    | Error e -> Fmt.failwith "kv_demo: boot: %a" Atmo_util.Errno.pp e
  in
  let pm = k.Kernel.pm in
  let dclock = Clock.create () in
  let tracing = Sink.tracing () in
  if tracing then Sink.set_clock (fun () -> Clock.now dclock);
  let owner thread =
    (Kernel.container_of_thread k ~thread, Kernel.proc_of_thread k ~thread)
  in
  (* One syscall on a given CPU: wrapped in a syscall span (the timeline
     owner stamps explicit begin/end times), clock charged per the SMP
     cost model whether or not tracing is on. *)
  let tstep ~cpu thread call =
    let c = Atmo_sim.Smp.syscall_cycles cost call in
    if tracing then begin
      Sink.set_cpu cpu;
      let t0 = Clock.now dclock in
      let container, proc = owner thread in
      let sid =
        Span.begin_ ~ts:t0 ?container ?proc ~thread (Span.Syscall (Syscall.number call))
      in
      let r = Kernel.step k ~thread call in
      Clock.advance dclock c;
      Span.end_ ~ts:(Clock.now dclock) sid;
      (r, sid)
    end
    else begin
      let r = Kernel.step k ~thread call in
      Clock.advance dclock c;
      (r, 0)
    end
  in
  let ptr what = function
    | (Syscall.Rptr p, _) -> p
    | (r, _) -> Fmt.failwith "kv_demo: %s -> %a" what Syscall.pp_ret r
  in
  (* server container, process, thread *)
  let srv_container =
    ptr "new_container"
      (tstep ~cpu:0 init
         (Syscall.New_container { quota = 64; cpus = Atmo_util.Iset.empty }))
  in
  let srv_proc =
    match Proc_mgr.new_process pm ~container:srv_container ~parent:None with
    | Ok p -> p
    | Error e -> Fmt.failwith "kv_demo: new_process: %a" Atmo_util.Errno.pp e
  in
  let srv =
    match Proc_mgr.new_thread pm ~proc:srv_proc with
    | Ok t -> t
    | Error e -> Fmt.failwith "kv_demo: new_thread: %a" Atmo_util.Errno.pp e
  in
  (* request endpoint in slot 0, reply endpoint in slot 1, shared with
     the server (the capabilities a parent hands a child at spawn) *)
  let ep_req = ptr "new_endpoint" (tstep ~cpu:0 init (Syscall.New_endpoint { slot = 0 })) in
  let ep_rep = ptr "new_endpoint" (tstep ~cpu:0 init (Syscall.New_endpoint { slot = 1 })) in
  Perm_map.update pm.Proc_mgr.thrd_perms ~ptr:srv (fun th ->
      Thread.set_slot th 0 (Some ep_req));
  Perm_map.update pm.Proc_mgr.thrd_perms ~ptr:srv (fun th ->
      Thread.set_slot th 1 (Some ep_rep));
  (* application state: three kv shards behind a Maglev table, values
     naming the NVMe block that backs them *)
  let backends = [ "kv0"; "kv1"; "kv2" ] in
  let maglev = Maglev.create ~backends ~table_size:31 in
  let stores = List.map (fun b -> (b, Kv_store.create ~entries)) backends in
  let shard_of key = List.assoc (Maglev.lookup maglev (flow_hash key)) stores in
  let blkdev = mk_blk blk ~clock:dclock ~cost in
  let nicdev = Option.map (fun b -> mk_nic b ~clock:dclock ~cost) nic in
  let block = Bytes.make Nvme.block_bytes 'v' in
  for i = 0 to keys - 1 do
    let key = key_of i in
    let value = Bytes.of_string (string_of_int (lba_of i)) in
    if not (Kv_store.set (shard_of key) ~key ~value) then
      Fmt.failwith "kv_demo: preload overflowed a %d-entry shard" entries;
    (match blk_write blkdev ~lba:(lba_of i) ~data:block with
     | Ok () -> ()
     | Error e -> Fmt.failwith "kv_demo: preload write: %s" (Fault.error_to_string e))
  done;
  blk_wait blkdev;
  (* the request loop *)
  let hits = ref 0 in
  let latencies = ref [] in
  let replies = ref [] in
  for i = 0 to requests - 1 do
    let key = key_of i in
    let payload = Kv_store.encode_request (Kv_store.Get key) in
    (* client opens the request root span and sends the GET; the send
       parks until the server harvests it *)
    let t_start = Clock.now dclock in
    (* with a NIC backend, the request bytes also cross the device
       datapath; the server decodes what came off the RX ring *)
    let wire_request = Option.map (fun n -> nic_transfer n payload) nicdev in
    let req_sid =
      if tracing then begin
        Sink.set_cpu 0;
        let container, proc = owner init in
        Span.begin_ ~ts:t_start ?container ?proc ~thread:init Span.Request
      end
      else 0
    in
    (match
       tstep ~cpu:0 init
         (Syscall.Send { slot = 0; msg = Message.scalars_only (pack_bytes payload) })
     with
     | (Syscall.Rblocked, _) -> ()
     | (r, _) -> Fmt.failwith "kv_demo: client send -> %a" Syscall.pp_ret r);
    (* server harvests the request: the rendezvous wakes the client and
       emits the send→recv IPC edge *)
    let request_bytes, recv_sid =
      match tstep ~cpu:1 srv (Syscall.Recv { slot = 0 }) with
      | (Syscall.Rmsg m, sid) ->
        let ipc_bytes = unpack_bytes m.Message.scalars in
        (Option.value wire_request ~default:ipc_bytes, sid)
      | (r, _) -> Fmt.failwith "kv_demo: server recv -> %a" Syscall.pp_ret r
    in
    (* application handler span, causally downstream of the recv *)
    let h_sid =
      if tracing then begin
        Sink.set_cpu 1;
        let sid =
          Span.begin_ ~ts:(Clock.now dclock) ~container:srv_container ~proc:srv_proc
            ~thread:srv (Lazy.force kv_handler_kind)
        in
        Span.edge Span.Wakeup ~src:recv_sid ~dst:sid;
        sid
      end
      else 0
    in
    let reply =
      match Kv_store.decode_request request_bytes with
      | Some (Kv_store.Get key) ->
        (match Kv_store.get (shard_of key) ~key with
         | Some value ->
           incr hits;
           (* fetch the backing block: driver submit/complete spans and
              the submit→completion causal edge come from the driver *)
           let lba = int_of_string (Bytes.to_string value) in
           (match blk_read blkdev ~lba with
            | Ok () -> blk_wait blkdev
            | Error e -> Fmt.failwith "kv_demo: block read: %s" (Fault.error_to_string e));
           Kv_store.Value value
         | None -> Kv_store.Not_found)
      | _ -> Kv_store.Error
    in
    Clock.advance dclock handler_cycles;
    let reply_bytes = Kv_store.encode_reply reply in
    (* the reply crosses the NIC datapath too when one is attached *)
    let wire_reply = Option.map (fun n -> nic_transfer n reply_bytes) nicdev in
    (* reply leaves inside the handler span, then the handler closes *)
    (match
       tstep ~cpu:1 srv
         (Syscall.Send { slot = 1; msg = Message.scalars_only (pack_bytes reply_bytes) })
     with
     | (Syscall.Rblocked, _) -> ()
     | (r, _) -> Fmt.failwith "kv_demo: server send -> %a" Syscall.pp_ret r);
    if tracing then Span.end_ ~ts:(Clock.now dclock) h_sid;
    (* client harvests the reply (second rendezvous, second IPC edge)
       and the request span closes *)
    (match tstep ~cpu:0 init (Syscall.Recv { slot = 1 }) with
     | (Syscall.Rmsg m, _) ->
       let received = Option.value wire_reply ~default:(unpack_bytes m.Message.scalars) in
       replies := received :: !replies;
       (match Kv_store.decode_reply received with
        | Some (Kv_store.Value _) | Some Kv_store.Not_found -> ()
        | _ -> Fmt.failwith "kv_demo: bad reply for request %d" i)
     | (r, _) -> Fmt.failwith "kv_demo: client recv -> %a" Syscall.pp_ret r);
    if tracing then begin
      Sink.set_cpu 0;
      Span.end_ ~ts:(Clock.now dclock) req_sid
    end;
    latencies := (Clock.now dclock - t_start) :: !latencies
  done;
  let client_container =
    Option.value ~default:(-1) (Kernel.container_of_thread k ~thread:init)
  in
  {
    requests;
    hits = !hits;
    end_cycles = Clock.now dclock;
    latencies = List.rev !latencies;
    replies = List.rev !replies;
    server_container = srv_container;
    client_container;
    abstract = Atmo_core.Abstraction.abstract k;
  }
