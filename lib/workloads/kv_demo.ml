(* End-to-end kv-store demo workload: the span-tree acceptance scenario.

   One kernel, two containers.  The client (init, CPU 0) issues GET
   requests over an IPC request endpoint; a server thread in its own
   container (CPU 1) steers each key through a Maglev table to one of
   three kv-store shards, reads the value's backing block from an NVMe
   queue pair, and replies over a second endpoint.  Every request
   therefore crosses two IPC rendezvous and one driver
   submit/completion pair, so the profiler can reconstruct the whole
   path from the flight-recorder stream:

     Request [cpu0]
     ├── send syscall ──ipc──▶ recv syscall [cpu1] ──wakeup──▶ kv_handler [cpu1]
     │                                                         ├── drv_submit ──drv──▶ drv_complete
     │                                                         └── send syscall ──ipc──▶
     └── recv syscall ◀──────────────────────────────────────────┘
     (Request ends; latency = reply time − request time)

   The whole workload runs on one virtual clock (the NVMe device
   clock), advanced identically whether the sink is Disabled or Flight:
   every [Clock.advance] is unconditional, so the cycle figures are the
   bit-identical zero-overhead baseline when tracing is off. *)

module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Proc_mgr = Atmo_pm.Proc_mgr
module Perm_map = Atmo_pm.Perm_map
module Thread = Atmo_pm.Thread
module Message = Atmo_pm.Message
module Sink = Atmo_obs.Sink
module Span = Atmo_obs.Span
module Clock = Atmo_hw.Clock
module Nvme = Atmo_drivers.Nvme
module Kv_store = Atmo_net.Kv_store
module Maglev = Atmo_net.Maglev

type result = {
  requests : int;
  hits : int;
  end_cycles : int;  (** virtual clock at workload end *)
  latencies : int list;  (** per-request round-trip cycles, oldest first *)
  server_container : int;
  client_container : int;
  abstract : Atmo_spec.Abstract_state.t;
}

(* Cycles charged to the server's application logic per request (decode,
   Maglev steering, hash probe).  Charged unconditionally so the
   timeline is sink-independent. *)
let handler_cycles = 400

let kv_handler_kind = lazy (Span.register_app "kv_handler")

(* ------------------------------------------------------------------ *)
(* IPC scalar packing: requests and replies travel as the kv-store's
   wire encoding, packed 7 bytes per scalar word (length first) to stay
   inside the 63-bit int and the 8-word message cap. *)

let bytes_per_word = 7
let max_payload = bytes_per_word * (Atmo_pm.Kconfig.max_ipc_scalars - 1)

let pack_bytes b =
  let n = Bytes.length b in
  if n > max_payload then
    Fmt.invalid_arg "kv_demo: %d-byte payload exceeds the %d-byte IPC cap" n max_payload;
  let words = (n + bytes_per_word - 1) / bytes_per_word in
  let word w =
    let acc = ref 0 in
    for j = bytes_per_word - 1 downto 0 do
      let i = (w * bytes_per_word) + j in
      acc := (!acc lsl 8) lor (if i < n then Char.code (Bytes.get b i) else 0)
    done;
    !acc
  in
  n :: List.init words word

let unpack_bytes = function
  | [] -> Bytes.empty
  | n :: words ->
    let b = Bytes.create n in
    List.iteri
      (fun w word ->
        for j = 0 to bytes_per_word - 1 do
          let i = (w * bytes_per_word) + j in
          if i < n then Bytes.set b i (Char.chr ((word lsr (8 * j)) land 0xff))
        done)
      words;
    b

(* FNV-1a over the key, for Maglev flow steering. *)
let flow_hash key =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    key;
  !h

(* ------------------------------------------------------------------ *)

let keys = 32
let key_of i = Bytes.of_string (Printf.sprintf "k%05d" (i mod keys))
let lba_of i = 1 + (i mod keys)

let run ?(requests = 16) ?(entries = 256) () =
  let cost = Atmo_sim.Cost.default in
  let k, init =
    match Kernel.boot Kernel.default_boot with
    | Ok v -> v
    | Error e -> Fmt.failwith "kv_demo: boot: %a" Atmo_util.Errno.pp e
  in
  let pm = k.Kernel.pm in
  let dclock = Clock.create () in
  let tracing = Sink.tracing () in
  if tracing then Sink.set_clock (fun () -> Clock.now dclock);
  let owner thread =
    (Kernel.container_of_thread k ~thread, Kernel.proc_of_thread k ~thread)
  in
  (* One syscall on a given CPU: wrapped in a syscall span (the timeline
     owner stamps explicit begin/end times), clock charged per the SMP
     cost model whether or not tracing is on. *)
  let tstep ~cpu thread call =
    let c = Atmo_sim.Smp.syscall_cycles cost call in
    if tracing then begin
      Sink.set_cpu cpu;
      let t0 = Clock.now dclock in
      let container, proc = owner thread in
      let sid =
        Span.begin_ ~ts:t0 ?container ?proc ~thread (Span.Syscall (Syscall.number call))
      in
      let r = Kernel.step k ~thread call in
      Clock.advance dclock c;
      Span.end_ ~ts:(Clock.now dclock) sid;
      (r, sid)
    end
    else begin
      let r = Kernel.step k ~thread call in
      Clock.advance dclock c;
      (r, 0)
    end
  in
  let ptr what = function
    | (Syscall.Rptr p, _) -> p
    | (r, _) -> Fmt.failwith "kv_demo: %s -> %a" what Syscall.pp_ret r
  in
  (* server container, process, thread *)
  let srv_container =
    ptr "new_container"
      (tstep ~cpu:0 init
         (Syscall.New_container { quota = 64; cpus = Atmo_util.Iset.empty }))
  in
  let srv_proc =
    match Proc_mgr.new_process pm ~container:srv_container ~parent:None with
    | Ok p -> p
    | Error e -> Fmt.failwith "kv_demo: new_process: %a" Atmo_util.Errno.pp e
  in
  let srv =
    match Proc_mgr.new_thread pm ~proc:srv_proc with
    | Ok t -> t
    | Error e -> Fmt.failwith "kv_demo: new_thread: %a" Atmo_util.Errno.pp e
  in
  (* request endpoint in slot 0, reply endpoint in slot 1, shared with
     the server (the capabilities a parent hands a child at spawn) *)
  let ep_req = ptr "new_endpoint" (tstep ~cpu:0 init (Syscall.New_endpoint { slot = 0 })) in
  let ep_rep = ptr "new_endpoint" (tstep ~cpu:0 init (Syscall.New_endpoint { slot = 1 })) in
  Perm_map.update pm.Proc_mgr.thrd_perms ~ptr:srv (fun th ->
      Thread.set_slot th 0 (Some ep_req));
  Perm_map.update pm.Proc_mgr.thrd_perms ~ptr:srv (fun th ->
      Thread.set_slot th 1 (Some ep_rep));
  (* application state: three kv shards behind a Maglev table, values
     naming the NVMe block that backs them *)
  let backends = [ "kv0"; "kv1"; "kv2" ] in
  let maglev = Maglev.create ~backends ~table_size:31 in
  let stores = List.map (fun b -> (b, Kv_store.create ~entries)) backends in
  let shard_of key = List.assoc (Maglev.lookup maglev (flow_hash key)) stores in
  let nvme = Nvme.create ~clock:dclock ~cost ~capacity_blocks:1024 in
  Nvme.set_device nvme 7;
  let block = Bytes.make Nvme.block_bytes 'v' in
  for i = 0 to keys - 1 do
    let key = key_of i in
    let value = Bytes.of_string (string_of_int (lba_of i)) in
    if not (Kv_store.set (shard_of key) ~key ~value) then
      Fmt.failwith "kv_demo: preload overflowed a %d-entry shard" entries;
    (match Nvme.submit_write nvme ~lba:(lba_of i) ~data:block with
     | Ok _ -> ()
     | Error e -> Fmt.failwith "kv_demo: preload write: %s" e)
  done;
  ignore (Nvme.wait_all nvme);
  (* the request loop *)
  let hits = ref 0 in
  let latencies = ref [] in
  for i = 0 to requests - 1 do
    let key = key_of i in
    let payload = Kv_store.encode_request (Kv_store.Get key) in
    (* client opens the request root span and sends the GET; the send
       parks until the server harvests it *)
    let t_start = Clock.now dclock in
    let req_sid =
      if tracing then begin
        Sink.set_cpu 0;
        let container, proc = owner init in
        Span.begin_ ~ts:t_start ?container ?proc ~thread:init Span.Request
      end
      else 0
    in
    (match
       tstep ~cpu:0 init
         (Syscall.Send { slot = 0; msg = Message.scalars_only (pack_bytes payload) })
     with
     | (Syscall.Rblocked, _) -> ()
     | (r, _) -> Fmt.failwith "kv_demo: client send -> %a" Syscall.pp_ret r);
    (* server harvests the request: the rendezvous wakes the client and
       emits the send→recv IPC edge *)
    let request_bytes, recv_sid =
      match tstep ~cpu:1 srv (Syscall.Recv { slot = 0 }) with
      | (Syscall.Rmsg m, sid) -> (unpack_bytes m.Message.scalars, sid)
      | (r, _) -> Fmt.failwith "kv_demo: server recv -> %a" Syscall.pp_ret r
    in
    (* application handler span, causally downstream of the recv *)
    let h_sid =
      if tracing then begin
        Sink.set_cpu 1;
        let sid =
          Span.begin_ ~ts:(Clock.now dclock) ~container:srv_container ~proc:srv_proc
            ~thread:srv (Lazy.force kv_handler_kind)
        in
        Span.edge Span.Wakeup ~src:recv_sid ~dst:sid;
        sid
      end
      else 0
    in
    let reply =
      match Kv_store.decode_request request_bytes with
      | Some (Kv_store.Get key) ->
        (match Kv_store.get (shard_of key) ~key with
         | Some value ->
           incr hits;
           (* fetch the backing block: driver submit/complete spans and
              the submit→completion causal edge come from the driver *)
           let lba = int_of_string (Bytes.to_string value) in
           (match Nvme.submit_read nvme ~lba with
            | Ok _tag -> ignore (Nvme.wait_all nvme)
            | Error e -> Fmt.failwith "kv_demo: nvme read: %s" e);
           Kv_store.Value value
         | None -> Kv_store.Not_found)
      | _ -> Kv_store.Error
    in
    Clock.advance dclock handler_cycles;
    (* reply leaves inside the handler span, then the handler closes *)
    (match
       tstep ~cpu:1 srv
         (Syscall.Send
            { slot = 1;
              msg = Message.scalars_only (pack_bytes (Kv_store.encode_reply reply)) })
     with
     | (Syscall.Rblocked, _) -> ()
     | (r, _) -> Fmt.failwith "kv_demo: server send -> %a" Syscall.pp_ret r);
    if tracing then Span.end_ ~ts:(Clock.now dclock) h_sid;
    (* client harvests the reply (second rendezvous, second IPC edge)
       and the request span closes *)
    (match tstep ~cpu:0 init (Syscall.Recv { slot = 1 }) with
     | (Syscall.Rmsg m, _) ->
       (match Kv_store.decode_reply (unpack_bytes m.Message.scalars) with
        | Some (Kv_store.Value _) | Some Kv_store.Not_found -> ()
        | _ -> Fmt.failwith "kv_demo: bad reply for request %d" i)
     | (r, _) -> Fmt.failwith "kv_demo: client recv -> %a" Syscall.pp_ret r);
    if tracing then begin
      Sink.set_cpu 0;
      Span.end_ ~ts:(Clock.now dclock) req_sid
    end;
    latencies := (Clock.now dclock - t_start) :: !latencies
  done;
  let client_container =
    Option.value ~default:(-1) (Kernel.container_of_thread k ~thread:init)
  in
  {
    requests;
    hits = !hits;
    end_cycles = Clock.now dclock;
    latencies = List.rev !latencies;
    server_container = srv_container;
    client_container;
    abstract = Atmo_core.Abstraction.abstract k;
  }
