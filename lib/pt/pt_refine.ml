open Atmo_util
module Phys_mem = Atmo_hw.Phys_mem
module Mmu = Atmo_hw.Mmu
module Pte = Atmo_hw.Pte_bits
module Page_state = Atmo_pmem.Page_state

let err fmt = Format.kasprintf (fun s -> Error s) fmt
let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let entry_of_translation (tr : Mmu.translation) : Page_table.entry =
  let size =
    if tr.size = Phys_mem.page_size then Page_state.S4k
    else if tr.size = Phys_mem.page_size_2m then Page_state.S2m
    else Page_state.S1g
  in
  { frame = tr.frame; size; perm = tr.perm }

let refinement pt =
  let abstract = Page_table.address_space pt in
  let concrete = Page_table.walk_concrete pt in
  (* Direction 1: every concrete leaf is in the abstract map with an
     equal value. *)
  let* () =
    List.fold_left
      (fun acc (va, e) ->
        let* () = acc in
        match Imap.find_opt va abstract with
        | None -> err "refinement: MMU maps 0x%x but abstract map does not" va
        | Some a ->
          if Page_table.equal_entry a e then Ok ()
          else
            err "refinement: 0x%x maps to %a (MMU) vs %a (abstract)" va
              Page_table.pp_entry e Page_table.pp_entry a)
      (Ok ()) concrete
  in
  (* Direction 2: equal domains, so nothing abstract is missing from the
     hardware view. *)
  let cdom = List.fold_left (fun s (va, _) -> Iset.add va s) Iset.empty concrete in
  let adom = Imap.dom abstract in
  if Iset.equal cdom adom then Ok ()
  else
    let missing = Iset.diff adom cdom in
    (match Iset.choose_opt missing with
     | Some va -> err "refinement: abstract maps 0x%x but MMU faults" va
     | None ->
       (match Iset.choose_opt (Iset.diff cdom adom) with
        | Some va -> err "refinement: MMU maps 0x%x not in abstract map" va
        | None -> Ok ()))

let mmu_probe pt ~vaddrs =
  let abstract = Page_table.address_space pt in
  let lookup va =
    (* Find the mapping (of any size) whose range covers [va]. *)
    let covers base (e : Page_table.entry) =
      va >= base && va < base + Page_state.bytes_per e.size
    in
    Imap.fold
      (fun base e acc -> if covers base e then Some (base, e) else acc)
      abstract None
  in
  List.fold_left
    (fun acc va ->
      let* () = acc in
      (* Probe cold: the checker must see the real tables, not a cached
         translation that a planted bug failed to shoot down. *)
      match (Page_table.resolve_cold pt ~vaddr:va, lookup va) with
      | None, None -> Ok ()
      | Some _, None -> err "probe: MMU resolves 0x%x but abstract map faults" va
      | None, Some _ -> err "probe: abstract map covers 0x%x but MMU faults" va
      | Some tr, Some (base, e) ->
        let got = entry_of_translation tr in
        if Page_table.equal_entry got e && tr.Mmu.paddr = e.frame + (va - base) then
          Ok ()
        else
          err "probe: 0x%x resolves to %a vs abstract %a" va Page_table.pp_entry got
            Page_table.pp_entry e)
    (Ok ()) vaddrs

let structure pt =
  let mem = Page_table.mem pt in
  let registry = Page_table.tables pt in
  let level_of ~addr = Page_table.table_level pt ~addr in
  let* () =
    match level_of ~addr:(Page_table.cr3 pt) with
    | Some 4 -> Ok ()
    | Some l -> err "structure: root registered at level %d" l
    | None -> err "structure: root not registered"
  in
  (* Count inbound references to each table page while validating every
     present entry of every registered table. *)
  let inbound = Hashtbl.create 64 in
  let* () =
    List.fold_left
      (fun acc (table, level) ->
        let* () = acc in
        let rec entries i acc =
          let* () = acc in
          if i > 511 then Ok ()
          else
            let e = Phys_mem.read_u64 mem ~addr:(Mmu.entry_addr ~table ~index:i) in
            let next =
              if not (Pte.is_present e) then Ok ()
              else if Pte.is_huge e then
                if level = 3 || level = 2 then
                  let size =
                    if level = 3 then Phys_mem.page_size_1g else Phys_mem.page_size_2m
                  in
                  if Pte.addr_of e mod size <> 0 then
                    err "structure: huge leaf at L%d[%d] misaligned frame 0x%x" level i
                      (Pte.addr_of e)
                  else Ok ()
                else err "structure: huge bit at level %d" level
              else if level = 1 then Ok () (* L1 present entries are 4K leaves *)
              else begin
                let child = Pte.addr_of e in
                match level_of ~addr:child with
                | Some cl when cl = level - 1 ->
                  Hashtbl.replace inbound child
                    (1 + Option.value ~default:0 (Hashtbl.find_opt inbound child));
                  Ok ()
                | Some cl ->
                  err "structure: L%d[%d] points to table 0x%x of level %d" level i
                    child cl
                | None ->
                  err "structure: L%d[%d] points to unregistered page 0x%x" level i
                    child
              end
            in
            entries (i + 1) next
        in
        entries 0 (Ok ()))
      (Ok ()) registry
  in
  (* Exactly-one-parent: rules out sharing and cycles in one flat pass. *)
  List.fold_left
    (fun acc (table, _) ->
      let* () = acc in
      let refs = Option.value ~default:0 (Hashtbl.find_opt inbound table) in
      if table = Page_table.cr3 pt then
        if refs = 0 then Ok () else err "structure: root has %d inbound refs" refs
      else if refs = 1 then Ok ()
      else err "structure: table 0x%x has %d inbound refs" table refs)
    (Ok ()) registry

let ghost_wf pt =
  let check_map name m size =
    Imap.fold
      (fun va (e : Page_table.entry) acc ->
        let* () = acc in
        if not (Mmu.canonical va) then err "ghost_wf: %s maps non-canonical 0x%x" name va
        else if va land (Page_state.bytes_per size - 1) <> 0 then
          err "ghost_wf: %s base 0x%x misaligned" name va
        else if e.frame land (Page_state.bytes_per size - 1) <> 0 then
          err "ghost_wf: %s frame 0x%x misaligned" name e.frame
        else if not (Page_state.equal_size e.size size) then
          err "ghost_wf: %s entry at 0x%x has size %a" name va Page_state.pp_size e.size
        else Ok ())
      m (Ok ())
  in
  let* () = check_map "mapping_4k" (Page_table.mapping_4k pt) Page_state.S4k in
  let* () = check_map "mapping_2m" (Page_table.mapping_2m pt) Page_state.S2m in
  let* () = check_map "mapping_1g" (Page_table.mapping_1g pt) Page_state.S1g in
  (* The incrementally-maintained unified view must equal the union of
     the per-size ghost maps it caches. *)
  let* () =
    if
      Imap.equal Page_table.equal_entry
        (Page_table.address_space pt)
        (Page_table.address_space_recomputed pt)
    then Ok ()
    else err "ghost_wf: unified address-space cache diverged from the ghost maps"
  in
  (* Pairwise disjointness of virtual ranges across all sizes: sort by
     base and check adjacent ranges do not overlap. *)
  let ranges =
    Imap.fold
      (fun va (e : Page_table.entry) acc -> (va, va + Page_state.bytes_per e.size) :: acc)
      (Page_table.address_space pt) []
    |> List.sort compare
  in
  let rec adjacent = function
    | (b1, e1) :: ((b2, _) :: _ as rest) ->
      if e1 > b2 then err "ghost_wf: ranges [0x%x..) and [0x%x..) overlap" b1 b2
      else adjacent rest
    | _ -> Ok ()
  in
  adjacent ranges

let closure_disjoint pt =
  let closure = Page_table.page_closure pt in
  let mapped = Page_table.mapped_frames pt in
  if Iset.disjoint closure mapped then Ok ()
  else
    match Iset.choose_opt (Iset.inter closure mapped) with
    | Some f -> err "closure: table page 0x%x is also mapped" f
    | None -> Ok ()

let obligations =
  [
    ("pt/refinement", refinement);
    ("pt/structure", structure);
    ("pt/ghost_wf", ghost_wf);
    ("pt/closure_disjoint", closure_disjoint);
  ]

let all pt =
  List.fold_left
    (fun acc (_, check) ->
      let* () = acc in
      check pt)
    (Ok ()) obligations
