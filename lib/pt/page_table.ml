open Atmo_util
module Phys_mem = Atmo_hw.Phys_mem
module Mmu = Atmo_hw.Mmu
module Tlb = Atmo_hw.Tlb
module Pte = Atmo_hw.Pte_bits
module Page_state = Atmo_pmem.Page_state
module Page_alloc = Atmo_pmem.Page_alloc

type entry = {
  frame : int;
  size : Page_state.size;
  perm : Pte.perm;
}

let equal_entry a b =
  a.frame = b.frame
  && Page_state.equal_size a.size b.size
  && Pte.equal_perm a.perm b.perm

let pp_entry ppf e =
  Format.fprintf ppf "0x%x/%a:%a" e.frame Page_state.pp_size e.size Pte.pp_perm e.perm

type error =
  | Already_mapped
  | Not_mapped
  | Misaligned
  | Non_canonical
  | Conflict
  | Oom

let pp_error ppf e =
  Format.pp_print_string ppf
    (match e with
     | Already_mapped -> "already mapped"
     | Not_mapped -> "not mapped"
     | Misaligned -> "misaligned"
     | Non_canonical -> "non-canonical address"
     | Conflict -> "size conflict"
     | Oom -> "out of memory")

type t = {
  mem : Phys_mem.t;
  alloc : Page_alloc.t;
  cr3 : int;
  table_levels : (int, int) Hashtbl.t;  (* table page addr -> level *)
  mutable ghost4k : entry Imap.t;
  mutable ghost2m : entry Imap.t;
  mutable ghost1g : entry Imap.t;
  (* The unified view of the three ghost maps, maintained incrementally
     so [address_space] is O(1).  Sound because the per-size maps are
     disjoint by virtual base (a base can carry at most one mapping). *)
  mutable space : entry Imap.t;
  mutable step_hook : (leaf:bool -> unit) option;
}

(* Global structural-mutation observer for the incremental verifier's
   dirty tracker: unlike the per-instance [step_hook] (which counts
   concrete PTE stores for cost models), this fires once per successful
   structural change to ANY page table — map/unmap/update_perm/
   create/destroy/prune — with the always-on intrinsic counter the
   stale-proof lint audits against. *)
let hook_armed = ref false
let hooks : (string * (op:string -> unit)) list ref = ref []

let add_mutation_hook ~key f =
  hooks := (key, f) :: List.remove_assoc key !hooks;
  hook_armed := true

let remove_mutation_hook ~key =
  hooks := List.remove_assoc key !hooks;
  hook_armed := !hooks <> []

let muts = Atomic.make 0
let mutation_count () = Atomic.get muts

let note ~op =
  Atomic.incr muts;
  if !hook_armed then List.iter (fun (_, f) -> f ~op) !hooks

let cr3 t = t.cr3
let mem t = t.mem

let tables t = Hashtbl.fold (fun a l acc -> (a, l) :: acc) t.table_levels []
let table_level t ~addr = Hashtbl.find_opt t.table_levels addr

let set_step_hook t h = t.step_hook <- h

let write_entry t ~table ~index v ~leaf =
  Phys_mem.write_u64 t.mem ~addr:(Mmu.entry_addr ~table ~index) v;
  match t.step_hook with None -> () | Some f -> f ~leaf

let create mem alloc =
  match Page_alloc.alloc_4k alloc ~purpose:Page_alloc.Kernel with
  | None -> Error Oom
  | Some root ->
    (* The root frame may be a recycled cr3 of an address space that was
       dropped without [destroy]; make sure no cached translations tagged
       with this ASID survive into the new space. *)
    Tlb.flush_asid mem ~cr3:root;
    let table_levels = Hashtbl.create 64 in
    Hashtbl.replace table_levels root 4;
    note ~op:"create";
    Ok
      {
        mem;
        alloc;
        cr3 = root;
        table_levels;
        ghost4k = Imap.empty;
        ghost2m = Imap.empty;
        ghost1g = Imap.empty;
        space = Imap.empty;
        step_hook = None;
      }

(* Fetch (or allocate on demand) the next-level table under
   [table.(index)].  [Error Conflict] if a huge leaf already occupies the
   slot. *)
let next_table t ~table ~index ~level =
  let e = Phys_mem.read_u64 t.mem ~addr:(Mmu.entry_addr ~table ~index) in
  if Pte.is_present e then
    if Pte.is_huge e then Error Conflict else Ok (Pte.addr_of e)
  else
    match Page_alloc.alloc_4k t.alloc ~purpose:Page_alloc.Kernel with
    | None -> Error Oom
    | Some page ->
      Hashtbl.replace t.table_levels page (level - 1);
      write_entry t ~table ~index (Pte.make_table ~addr:page) ~leaf:false;
      Ok page

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let aligned vaddr frame size =
  let mask = Page_state.bytes_per size - 1 in
  vaddr land mask = 0 && frame land mask = 0

let check_addr vaddr frame size =
  if not (Mmu.canonical vaddr) then Error Non_canonical
  else if not (aligned vaddr frame size) then Error Misaligned
  else Ok ()

(* A leaf slot must be empty; a present table entry at leaf position for
   our size means finer-grained mappings exist underneath. *)
let leaf_slot_free t ~table ~index =
  let e = Phys_mem.read_u64 t.mem ~addr:(Mmu.entry_addr ~table ~index) in
  if not (Pte.is_present e) then Ok ()
  else if Pte.is_huge e then Error Already_mapped
  else Error Conflict

let map_4k t ~vaddr ~frame ~perm =
  let* () = check_addr vaddr frame Page_state.S4k in
  let* l3 = next_table t ~table:t.cr3 ~index:(Mmu.l4_index vaddr) ~level:4 in
  let* l2 = next_table t ~table:l3 ~index:(Mmu.l3_index vaddr) ~level:3 in
  let* l1 = next_table t ~table:l2 ~index:(Mmu.l2_index vaddr) ~level:2 in
  let index = Mmu.l1_index vaddr in
  let e = Phys_mem.read_u64 t.mem ~addr:(Mmu.entry_addr ~table:l1 ~index) in
  if Pte.is_present e then Error Already_mapped
  else begin
    write_entry t ~table:l1 ~index (Pte.make ~addr:frame ~perm ~huge:false) ~leaf:true;
    (* Defensive invlpg: the slot was non-present, but a negative result
       must never linger if caching policy ever changes. *)
    Tlb.invlpg t.mem ~cr3:t.cr3 ~vaddr;
    let e = { frame; size = Page_state.S4k; perm } in
    t.ghost4k <- Imap.add vaddr e t.ghost4k;
    t.space <- Imap.add vaddr e t.space;
    note ~op:"map";
    Ok ()
  end

let map_2m t ~vaddr ~frame ~perm =
  let* () = check_addr vaddr frame Page_state.S2m in
  let* l3 = next_table t ~table:t.cr3 ~index:(Mmu.l4_index vaddr) ~level:4 in
  let* l2 = next_table t ~table:l3 ~index:(Mmu.l3_index vaddr) ~level:3 in
  let index = Mmu.l2_index vaddr in
  let* () = leaf_slot_free t ~table:l2 ~index in
  write_entry t ~table:l2 ~index (Pte.make ~addr:frame ~perm ~huge:true) ~leaf:true;
  Tlb.shoot_range t.mem ~cr3:t.cr3 ~vaddr ~bytes:Phys_mem.page_size_2m;
  let e = { frame; size = Page_state.S2m; perm } in
  t.ghost2m <- Imap.add vaddr e t.ghost2m;
  t.space <- Imap.add vaddr e t.space;
  note ~op:"map";
  Ok ()

let map_1g t ~vaddr ~frame ~perm =
  let* () = check_addr vaddr frame Page_state.S1g in
  let* l3 = next_table t ~table:t.cr3 ~index:(Mmu.l4_index vaddr) ~level:4 in
  let index = Mmu.l3_index vaddr in
  let* () = leaf_slot_free t ~table:l3 ~index in
  write_entry t ~table:l3 ~index (Pte.make ~addr:frame ~perm ~huge:true) ~leaf:true;
  Tlb.shoot_range t.mem ~cr3:t.cr3 ~vaddr ~bytes:Phys_mem.page_size_1g;
  let e = { frame; size = Page_state.S1g; perm } in
  t.ghost1g <- Imap.add vaddr e t.ghost1g;
  t.space <- Imap.add vaddr e t.space;
  note ~op:"map";
  Ok ()

(* Locate the leaf slot of an existing mapping whose virtual base is
   [vaddr]; returns (table, index, entry record). *)
let find_leaf t ~vaddr =
  if not (Mmu.canonical vaddr) then Error Non_canonical
  else
    let read table index =
      Phys_mem.read_u64 t.mem ~addr:(Mmu.entry_addr ~table ~index)
    in
    let e4 = read t.cr3 (Mmu.l4_index vaddr) in
    if not (Pte.is_present e4) then Error Not_mapped
    else
      let l3 = Pte.addr_of e4 in
      let e3 = read l3 (Mmu.l3_index vaddr) in
      if not (Pte.is_present e3) then Error Not_mapped
      else if Pte.is_huge e3 then
        if vaddr land (Phys_mem.page_size_1g - 1) <> 0 then Error Misaligned
        else
          Ok
            ( l3,
              Mmu.l3_index vaddr,
              { frame = Pte.addr_of e3; size = Page_state.S1g; perm = Pte.perm_of e3 } )
      else
        let l2 = Pte.addr_of e3 in
        let e2 = read l2 (Mmu.l2_index vaddr) in
        if not (Pte.is_present e2) then Error Not_mapped
        else if Pte.is_huge e2 then
          if vaddr land (Phys_mem.page_size_2m - 1) <> 0 then Error Misaligned
          else
            Ok
              ( l2,
                Mmu.l2_index vaddr,
                { frame = Pte.addr_of e2; size = Page_state.S2m; perm = Pte.perm_of e2 } )
        else
          let l1 = Pte.addr_of e2 in
          let e1 = read l1 (Mmu.l1_index vaddr) in
          if not (Pte.is_present e1) then Error Not_mapped
          else
            Ok
              ( l1,
                Mmu.l1_index vaddr,
                { frame = Pte.addr_of e1; size = Page_state.S4k; perm = Pte.perm_of e1 } )

let unmap t ~vaddr =
  let* table, index, entry = find_leaf t ~vaddr in
  write_entry t ~table ~index Pte.not_present ~leaf:true;
  (* The shootdown point: every page the dying mapping covered must leave
     the TLB before the caller can reuse the frame. *)
  Tlb.shoot_range t.mem ~cr3:t.cr3 ~vaddr ~bytes:(Page_state.bytes_per entry.size);
  (match entry.size with
   | Page_state.S4k -> t.ghost4k <- Imap.remove vaddr t.ghost4k
   | Page_state.S2m -> t.ghost2m <- Imap.remove vaddr t.ghost2m
   | Page_state.S1g -> t.ghost1g <- Imap.remove vaddr t.ghost1g);
  t.space <- Imap.remove vaddr t.space;
  note ~op:"unmap";
  Ok entry

let update_perm t ~vaddr ~perm =
  let* table, index, entry = find_leaf t ~vaddr in
  let huge = entry.size <> Page_state.S4k in
  write_entry t ~table ~index (Pte.make ~addr:entry.frame ~perm ~huge) ~leaf:true;
  (* Permission changes are as dangerous as unmaps: a stale writable
     entry would outlive an mprotect to read-only. *)
  Tlb.shoot_range t.mem ~cr3:t.cr3 ~vaddr ~bytes:(Page_state.bytes_per entry.size);
  let entry' = { entry with perm } in
  (match entry.size with
   | Page_state.S4k -> t.ghost4k <- Imap.add vaddr entry' t.ghost4k
   | Page_state.S2m -> t.ghost2m <- Imap.add vaddr entry' t.ghost2m
   | Page_state.S1g -> t.ghost1g <- Imap.add vaddr entry' t.ghost1g);
  t.space <- Imap.add vaddr entry' t.space;
  note ~op:"update";
  Ok ()

let resolve t ~vaddr = Mmu.resolve t.mem ~cr3:t.cr3 ~vaddr
let resolve_cold t ~vaddr = Mmu.walk t.mem ~cr3:t.cr3 ~vaddr

let mapping_4k t = t.ghost4k
let mapping_2m t = t.ghost2m
let mapping_1g t = t.ghost1g

let address_space t = t.space

(* The recomputed union the incremental cache must always equal; kept
   for the refinement check ([Pt_refine.ghost_wf]) and tests. *)
let address_space_recomputed t =
  Imap.union (fun _ a _ -> Some a) t.ghost4k
    (Imap.union (fun _ a _ -> Some a) t.ghost2m t.ghost1g)

let mapped_frames t =
  Imap.fold (fun _ e acc -> Iset.add e.frame acc) (address_space t) Iset.empty

let page_closure t =
  Hashtbl.fold (fun addr _ acc -> Iset.add addr acc) t.table_levels Iset.empty

let destroy t =
  (* Address-space teardown: drop the whole ASID from the TLB registry
     before the table pages go back to the allocator. *)
  Tlb.flush_asid t.mem ~cr3:t.cr3;
  let still_mapped = mapped_frames t in
  Hashtbl.iter (fun addr _ -> Page_alloc.free_kernel_page t.alloc ~addr) t.table_levels;
  Hashtbl.reset t.table_levels;
  t.ghost4k <- Imap.empty;
  t.ghost2m <- Imap.empty;
  t.ghost1g <- Imap.empty;
  t.space <- Imap.empty;
  note ~op:"destroy";
  still_mapped

(* Which intermediate-table positions does a mapping of [size] at [va]
   need?  Positions are identified by the virtual prefix and target
   level, so that two mappings sharing a new table count it once. *)
let needed_positions va (size : Page_state.size) =
  let l4 = Mmu.l4_index va and l3 = Mmu.l3_index va and l2 = Mmu.l2_index va in
  match size with
  | Page_state.S1g -> [ (3, l4, 0, 0) ]
  | Page_state.S2m -> [ (3, l4, 0, 0); (2, l4, l3, 0) ]
  | Page_state.S4k -> [ (3, l4, 0, 0); (2, l4, l3, 0); (1, l4, l3, l2) ]

let missing_tables t ~vaddrs =
  let seen = Hashtbl.create 16 in
  let read table index =
    Phys_mem.read_u64 t.mem ~addr:(Mmu.entry_addr ~table ~index)
  in
  (* does a table already exist at this position in the concrete tree? *)
  let exists (target_level, l4, l3, l2) =
    let e4 = read t.cr3 l4 in
    if not (Pte.is_present e4) then false
    else if target_level = 3 then true
    else
      let e3 = read (Pte.addr_of e4) l3 in
      if not (Pte.is_present e3) || Pte.is_huge e3 then false
      else if target_level = 2 then true
      else
        let e2 = read (Pte.addr_of e3) l2 in
        Pte.is_present e2 && not (Pte.is_huge e2)
  in
  List.fold_left
    (fun acc (va, size) ->
      List.fold_left
        (fun acc pos ->
          if Hashtbl.mem seen pos || exists pos then acc
          else begin
            Hashtbl.replace seen pos ();
            acc + 1
          end)
        acc (needed_positions va size))
    0 vaddrs

let prune_empty_tables t ~keep =
  let read table index =
    Phys_mem.read_u64 t.mem ~addr:(Mmu.entry_addr ~table ~index)
  in
  let table_is_empty table =
    let rec go i = i > 511 || ((not (Pte.is_present (read table i))) && go (i + 1)) in
    go 0
  in
  let freed = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    (* find empty prunable tables *)
    let empties =
      Hashtbl.fold
        (fun addr _level acc ->
          if addr <> t.cr3 && (not (Iset.mem addr keep)) && table_is_empty addr then
            Iset.add addr acc
          else acc)
        t.table_levels Iset.empty
    in
    if not (Iset.is_empty empties) then begin
      progress := true;
      (* clear the parent slots pointing at them *)
      Hashtbl.iter
        (fun table level ->
          if level > 1 then
            for i = 0 to 511 do
              let e = read table i in
              if
                Pte.is_present e
                && (not (Pte.is_huge e))
                && Iset.mem (Pte.addr_of e) empties
              then write_entry t ~table ~index:i Pte.not_present ~leaf:false
            done)
        t.table_levels;
      Iset.iter
        (fun addr ->
          Hashtbl.remove t.table_levels addr;
          Page_alloc.free_kernel_page t.alloc ~addr;
          incr freed)
        empties
    end
  done;
  if !freed > 0 then note ~op:"prune";
  !freed

(* Walk the concrete tables through the flat registry.  Rather than
   recursing from cr3, we iterate every owned table page and emit the
   leaves it contains, reconstructing virtual bases from the positions
   recorded implicitly by the parent walk; this requires knowing each
   table's virtual prefix, so we do one breadth-first pass per level
   starting at the root — still bounded by the registry, never by
   recursion over unbounded structure. *)
let walk_concrete t =
  let acc = ref [] in
  let read table index =
    Phys_mem.read_u64 t.mem ~addr:(Mmu.entry_addr ~table ~index)
  in
  let emit vbase frame size perm = acc := (vbase, { frame; size; perm }) :: !acc in
  for i4 = 0 to 511 do
    let e4 = read t.cr3 i4 in
    if Pte.is_present e4 then begin
      let l3 = Pte.addr_of e4 in
      for i3 = 0 to 511 do
        let e3 = read l3 i3 in
        if Pte.is_present e3 then
          if Pte.is_huge e3 then
            emit
              (Mmu.va_of_indices ~l4:i4 ~l3:i3 ~l2:0 ~l1:0)
              (Pte.addr_of e3) Page_state.S1g (Pte.perm_of e3)
          else begin
            let l2 = Pte.addr_of e3 in
            for i2 = 0 to 511 do
              let e2 = read l2 i2 in
              if Pte.is_present e2 then
                if Pte.is_huge e2 then
                  emit
                    (Mmu.va_of_indices ~l4:i4 ~l3:i3 ~l2:i2 ~l1:0)
                    (Pte.addr_of e2) Page_state.S2m (Pte.perm_of e2)
                else begin
                  let l1 = Pte.addr_of e2 in
                  for i1 = 0 to 511 do
                    let e1 = read l1 i1 in
                    if Pte.is_present e1 then
                      emit
                        (Mmu.va_of_indices ~l4:i4 ~l3:i3 ~l2:i2 ~l1:i1)
                        (Pte.addr_of e1) Page_state.S4k (Pte.perm_of e1)
                  done
                end
            done
          end
      done
    end
  done;
  !acc
