(** 4-level page tables with 4 KiB / 2 MiB / 1 GiB mappings.

    The concrete state is real page-table pages in simulated physical
    memory; the abstract state is the paper's three ghost maps (one per
    page size) from virtual address to mapped frame + permission,
    maintained side by side with every update.  {!Pt_refine} checks the
    refinement between the two (ghost map vs MMU walk) and the structural
    invariants.

    Following the paper's flat permission storage, the permissions to all
    table pages of a page table are held at the top level, in the
    [tables] registry: each table page address is recorded with its level,
    giving the checkers a global, non-recursive view of the tree. *)

type entry = {
  frame : int;  (** physical base address of the mapped block *)
  size : Atmo_pmem.Page_state.size;
  perm : Atmo_hw.Pte_bits.perm;
}

val equal_entry : entry -> entry -> bool
val pp_entry : Format.formatter -> entry -> unit

type error =
  | Already_mapped
  | Not_mapped
  | Misaligned
  | Non_canonical
  | Conflict  (** a mapping of a different size covers this range *)
  | Oom

val pp_error : Format.formatter -> error -> unit

type t

val create : Atmo_hw.Phys_mem.t -> Atmo_pmem.Page_alloc.t -> (t, error) result
(** Allocates the root (L4) table page from the allocator. *)

val cr3 : t -> int
val mem : t -> Atmo_hw.Phys_mem.t

val tables : t -> (int * int) list
(** Flat registry of table pages as [(page address, level)] pairs,
    level 4 = root.  This is the executable form of storing the
    [PointsTo] permissions of every PML level at the top. *)

val table_level : t -> addr:int -> int option

val map_4k : t -> vaddr:int -> frame:int -> perm:Atmo_hw.Pte_bits.perm -> (unit, error) result
(** Install a 4 KiB mapping, allocating intermediate table pages on
    demand.  The frame's allocator state is the caller's concern (the
    kernel's mmap path allocates/refcounts around this call).  Issues an
    [invlpg]-style {!Atmo_hw.Tlb} invalidation for the covered page. *)

val map_2m : t -> vaddr:int -> frame:int -> perm:Atmo_hw.Pte_bits.perm -> (unit, error) result
val map_1g : t -> vaddr:int -> frame:int -> perm:Atmo_hw.Pte_bits.perm -> (unit, error) result

val unmap : t -> vaddr:int -> (entry, error) result
(** Remove the mapping whose range contains [vaddr] (given its exact
    virtual base), returning what was mapped.  Intermediate tables are
    not reclaimed until {!destroy}, as in the paper's kernel.  Shoots the
    covered virtual range out of the {!Atmo_hw.Tlb} (precise [invlpg]s
    for small ranges, full ASID flush for superpages). *)

val update_perm : t -> vaddr:int -> perm:Atmo_hw.Pte_bits.perm -> (unit, error) result
(** Change the permission bits of an existing leaf mapping in place.
    Shoots the covered range like {!unmap} — a cached writable
    translation must not outlive an mprotect. *)

val resolve : t -> vaddr:int -> Atmo_hw.Mmu.translation option
(** What the MMU sees — walks the concrete tables, served from the
    software {!Atmo_hw.Tlb} when warm. *)

val resolve_cold : t -> vaddr:int -> Atmo_hw.Mmu.translation option
(** {!Atmo_hw.Mmu.walk} through this table: always reads the concrete
    tables, never the TLB.  The oracle checkers compare against. *)

val destroy : t -> Atmo_util.Iset.t
(** Tear the table down, returning every table page to the allocator.
    Returns the set of frames that were still mapped (for the caller to
    unreference); the ghost maps become empty.  Flushes and retires the
    address space's TLB (its ASID disappears with its cr3). *)

(** {2 Abstract (ghost) state} *)

val mapping_4k : t -> entry Atmo_util.Imap.t
(** Ghost map of 4 KiB mappings, keyed by virtual base address. *)

val mapping_2m : t -> entry Atmo_util.Imap.t
val mapping_1g : t -> entry Atmo_util.Imap.t

val address_space : t -> entry Atmo_util.Imap.t
(** The process's abstract address space as used by the kernel
    specification: the union of the three ghost maps, maintained
    incrementally on map/unmap/update_perm so this accessor is O(1).
    It sits on the IPC grant-validation path, [sys_mmap]'s overlap
    check, and the invariant suites, all of which used to pay a
    per-call union. *)

val address_space_recomputed : t -> entry Atmo_util.Imap.t
(** The union of the three per-size ghost maps recomputed from scratch;
    [address_space] must always equal this (checked by
    [Pt_refine.ghost_wf]). *)

val mapped_frames : t -> Atmo_util.Iset.t
(** Physical base addresses of all mapped blocks. *)

val page_closure : t -> Atmo_util.Iset.t
(** Frames owned by the page table itself (its table pages) — the
    paper's [page_closure] for this data structure.  Mapped user frames
    are deliberately not included; they are owned by the address-space
    accounting of the process. *)

val missing_tables : t -> vaddrs:(int * Atmo_pmem.Page_state.size) list -> int
(** Dry run: how many intermediate table pages would have to be
    allocated to install mappings at the given virtual bases.  Shared
    new tables between the addresses are counted once.  The kernel uses
    this to charge container quota exactly, before any side effect. *)

val prune_empty_tables : t -> keep:Atmo_util.Iset.t -> int
(** Free table pages (never the root, never pages in [keep]) that
    currently contain no present entries, iterating to a fixpoint.
    Returns the number of pages freed.  Used to roll back a partially
    failed multi-page mmap so that failures are side-effect free. *)

(** {2 Step hook (update consistency, §4.2)} *)

val set_step_hook : t -> (leaf:bool -> unit) option -> unit
(** The paper proves that each individual page-table write is consistent:
    non-leaf writes leave the abstract mapping unchanged, a leaf write
    changes exactly one entry.  The hook fires after every concrete
    table-entry write with [leaf] telling which case applies, letting
    tests re-check the MMU-visible mapping at every intermediate step. *)

(** {2 Structural-mutation hook (incremental verification)} *)

val add_mutation_hook : key:string -> (op:string -> unit) -> unit
(** Process-global observer firing once per successful structural change
    to any page table — [op] is ["create"], ["map"], ["unmap"],
    ["update"], ["destroy"] or ["prune"].  Keyed registry like
    {!Atmo_pm.Perm_map.add_mutation_hook}; one bool load per change when
    nothing is installed.  Unlike {!set_step_hook} (per-instance, one
    firing per concrete PTE store) this reports abstract-map mutations,
    which is what the incremental verifier's dirty tracker needs. *)

val remove_mutation_hook : key:string -> unit

val mutation_count : unit -> int
(** Intrinsic count of structural changes across every page table ever;
    always on, independent of subscribers.  Audited by atmo_san's
    [stale-proof] lint against the dirty tracker's observed count. *)

val walk_concrete : t -> (int * entry) list
(** Enumerate the MMU-visible mappings by walking the concrete tables
    through the flat registry: [(virtual base, entry)] pairs.  Used by
    the refinement checker as the "hardware view". *)
