(** Intel 82599 (ixgbe) 10 GbE NIC model.

    The paper's network driver runs in user space and owns descriptor
    rings the NIC consumes by DMA.  This model keeps the rings and
    packet buffers as real bytes in simulated physical memory; all
    device-side accesses go through the {!Atmo_hw.Iommu}, so a buffer
    the owning process never mapped for the device faults exactly as
    the paper's isolation story requires.

    Descriptor layout (16 bytes, little-endian):
    [buffer iova : u64][length : u16][flags : u16][reserved : u32];
    flag bit 0 is DD (descriptor done, set by the device on receive /
    by the driver on transmit completion), bit 1 is OWN (owned by
    hardware).

    The wire is modelled by {!wire_deliver} / {!wire_collect}; a 64-byte
    line rate cap of 14.2 Mpps applies to the throughput model, not to
    the functional path.

    The device runs behind an {!Atmo_devmodel.Model} state machine; with
    a hostile engine attached ({!set_hostile}) the wire side injects
    malformed/short descriptors, spurious and storming IRQs, duplicated
    completions, and DMA escapes, all of which the driver absorbs as
    typed {!Atmo_devmodel.Fault.error}s. *)

type t

val descriptor_bytes : int
val line_rate_pps : float

val create :
  Atmo_hw.Phys_mem.t ->
  Atmo_hw.Iommu.t ->
  device:int ->
  clock:Atmo_hw.Clock.t ->
  cost:Atmo_sim.Cost.t ->
  t

val model : t -> Atmo_devmodel.Model.t
val set_hostile : t -> Atmo_devmodel.Hostile.t option -> unit

val errors : t -> Atmo_devmodel.Fault.error list
(** Typed errors the driver absorbed, oldest first (capped). *)

val error_count : t -> int

val setup_rx :
  t -> ring_iova:int -> buffers:(int * int) array -> (unit, Atmo_devmodel.Fault.error) result
(** Program the receive ring: descriptor ring at [ring_iova], one
    [(buffer iova, buffer length)] per slot, all slots handed to
    hardware.  Fails if the ring or a descriptor write faults in the
    IOMMU. *)

val setup_tx :
  t -> ring_iova:int -> buffers:(int * int) array -> (unit, Atmo_devmodel.Fault.error) result
(** Program the transmit ring with one DMA buffer per slot; frames are
    DMA-written into the slot buffer before they reach the wire. *)

(** {2 Wire side (the cable)} *)

val wire_deliver : t -> bytes -> bool
(** A frame arrives: the device claims the next hardware-owned RX
    descriptor, DMA-writes the frame into its buffer, records the
    length and sets DD.  [false] (and a drop counted) when no
    descriptor is available or the DMA faults. *)

val wire_collect : t -> bytes list
(** Drain frames the device has transmitted since the last call. *)

val rx_drops : t -> int

(** {2 Driver side} *)

val rx_burst : t -> max:int -> bytes list
(** Poll the RX ring: harvest up to [max] completed frames, recycle
    their descriptors back to hardware, and acknowledge any pending
    IRQs.  A completion that fails validation (zero length, length
    beyond the slot's capacity, buffer the IOMMU rejects) is consumed,
    recorded as a typed error, and its descriptor recycled — hostile
    devices cannot wedge the ring.  Charges [cost.driver_per_packet]
    per consumed descriptor to the clock. *)

val tx_burst : t -> bytes list -> int
(** Enqueue frames for transmission into free TX descriptors (the
    device "sends" them immediately; {!wire_collect} observes them).
    Returns the number accepted.  Charges per-packet driver cycles. *)

val stats : t -> int * int
(** (frames received by driver, frames transmitted). *)
