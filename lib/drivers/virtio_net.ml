module Phys_mem = Atmo_hw.Phys_mem
module Iommu = Atmo_hw.Iommu
module Clock = Atmo_hw.Clock
module Cost = Atmo_sim.Cost
module Obs = Atmo_obs.Sink
module Event = Atmo_obs.Event
module Span = Atmo_obs.Span
module Fault = Atmo_devmodel.Fault
module Model = Atmo_devmodel.Model
module Vring = Virtio_ring

let rx_queue = 0
let tx_queue = 1

(* hostile-mode DMA escapes aim here: far outside any mapped window *)
let escape_iova = 0x7f00_0000_0000

type queue = {
  vr : Vring.t;
  bufs : (int * int) array;  (* slot i -> (buffer iova, capacity) *)
  free : int Queue.t;  (* TX: slots not in flight *)
}

type t = {
  mem : Phys_mem.t;
  iommu : Iommu.t;
  device : int;
  clock : Clock.t;
  cost : Cost.t;
  model : Model.t;
  mutable rxq : queue option;
  mutable txq : queue option;
  mutable tx_wire : bytes list;  (* newest first *)
  mutable rx_drops : int;
  mutable rx_frames : int;
  mutable tx_frames : int;
  mutable errors : Fault.error list;  (* newest first, capped *)
  mutable error_count : int;
}

let error_cap = 32

let note_error t e =
  t.error_count <- t.error_count + 1;
  if List.length t.errors < error_cap then t.errors <- e :: t.errors

let create mem iommu ~device ~clock ~cost =
  {
    mem;
    iommu;
    device;
    clock;
    cost;
    model =
      Model.register ~name:(Printf.sprintf "virtio-net%d" device) ~device
        ~initial:Model.Reset;
    rxq = None;
    txq = None;
    tx_wire = [];
    rx_drops = 0;
    rx_frames = 0;
    tx_frames = 0;
    errors = [];
    error_count = 0;
  }

let model t = t.model
let set_hostile t h = Model.set_hostile t.model h
let errors t = List.rev t.errors
let error_count t = t.error_count

let dma t =
  {
    Vring.read = (fun ~iova ~len -> Iommu.dma_read t.iommu ~device:t.device ~iova ~len);
    Vring.write = (fun ~iova b -> Iommu.dma_write t.iommu ~device:t.device ~iova b);
  }

let setup_queue t ~ring_iova ~buffers ~desc_flags ~post =
  let qsz = Array.length buffers in
  if qsz = 0 then Error (Fault.Bad_setup "no buffers")
  else begin
    let desc, avail, used, _total = Vring.layout ~qsz ~base:ring_iova in
    let vr = Vring.create (dma t) ~qsz ~desc ~avail ~used in
    let fault = ref None in
    Array.iteri
      (fun i (addr, cap) ->
        if !fault = None then begin
          if not (Vring.write_desc vr ~slot:i ~addr ~len:cap ~flags:desc_flags ())
          then fault := Some (Fault.Dma_fault { iova = ring_iova; len = 16 })
          else if post && not (Vring.push_avail vr ~head:i) then
            fault := Some (Fault.Dma_fault { iova = avail; len = 2 })
        end)
      buffers;
    match !fault with
    | Some e ->
      note_error t e;
      Error e
    | None ->
      let free = Queue.create () in
      if not post then Array.iteri (fun i _ -> Queue.add i free) buffers;
      Ok { vr; bufs = Array.copy buffers; free }
  end

let setup_rx t ~ring_iova ~buffers =
  match setup_queue t ~ring_iova ~buffers ~desc_flags:Vring.flag_write ~post:true with
  | Error _ as e -> e
  | Ok q ->
    t.rxq <- Some q;
    Model.on_setup t.model;
    if Obs.tracing () then
      Obs.emit_drv_doorbell ~device:t.device ~queue:rx_queue ();
    Ok ()

let setup_tx t ~ring_iova ~buffers =
  match setup_queue t ~ring_iova ~buffers ~desc_flags:0 ~post:false with
  | Error _ as e -> e
  | Ok q ->
    t.txq <- Some q;
    Model.on_setup t.model;
    Ok ()

(* Device side: claim the next available RX descriptor, DMA the frame
   into its buffer, push a used entry.  Returns the head used. *)
let deliver_into t q frame =
  match Vring.device_pop_avail q.vr with
  | None ->
    t.rx_drops <- t.rx_drops + 1;
    None
  | Some head ->
    (match Vring.read_desc q.vr ~slot:head with
     | Some (addr, cap, flags, _next)
       when flags land Vring.flag_write <> 0 && Bytes.length frame <= cap ->
       if
         Iommu.dma_write t.iommu ~device:t.device ~iova:addr frame
         && Vring.device_push_used q.vr ~id:head ~len:(Bytes.length frame)
       then begin
         Model.note_deliver t.model 1;
         if Obs.tracing () then begin
           let sid = Span.pair Span.Drv_submit in
           Span.note_submit ~device:t.device ~tag:rx_queue ~span:sid
         end;
         Some head
       end
       else begin
         t.rx_drops <- t.rx_drops + 1;
         None
       end
     | _ ->
       t.rx_drops <- t.rx_drops + 1;
       None)

let deliver t q frame = deliver_into t q frame <> None

let wire_deliver t frame =
  match t.rxq with
  | None ->
    t.rx_drops <- t.rx_drops + 1;
    false
  | Some q ->
    (match
       Model.inject t.model ~site:"virtio.wire_deliver"
         [ Fault.Malformed_desc; Fault.Short_desc; Fault.Spurious_irq;
           Fault.Irq_storm; Fault.Duplicate_completion; Fault.Dma_escape ]
     with
     | None -> deliver t q frame
     | Some Fault.Malformed_desc ->
       (* spurious used entry naming a descriptor that does not exist;
          no buffer is consumed, the frame is lost *)
       ignore (Vring.device_push_used q.vr ~id:(Vring.qsz q.vr + 17) ~len:64);
       Model.note_deliver t.model 1;
       t.rx_drops <- t.rx_drops + 1;
       false
     | Some Fault.Short_desc ->
       (* a real buffer is consumed but completed with zero length *)
       (match Vring.device_pop_avail q.vr with
        | Some head ->
          ignore (Vring.device_push_used q.vr ~id:head ~len:0);
          Model.note_deliver t.model 1
        | None -> ());
       t.rx_drops <- t.rx_drops + 1;
       false
     | Some Fault.Spurious_irq ->
       Model.raise_irq t.model;
       Model.recovered t.model Fault.Spurious_irq;
       deliver t q frame
     | Some Fault.Irq_storm ->
       for _ = 0 to Model.storm_threshold + 7 do
         Model.raise_irq t.model
       done;
       Model.recovered t.model Fault.Irq_storm;
       deliver t q frame
     | Some Fault.Duplicate_completion ->
       (match deliver_into t q frame with
        | None -> false
        | Some head ->
          (* the same head pushed used twice; the driver reads the same
             buffer contents again, a duplicate frame at NIC level *)
          Model.note_dup t.model;
          Model.note_deliver t.model 1;
          ignore (Vring.device_push_used q.vr ~id:head ~len:(Bytes.length frame));
          true)
     | Some Fault.Dma_escape ->
       let blocked = not (Iommu.dma_write t.iommu ~device:t.device ~iova:escape_iova frame) in
       Model.note_escape t.model ~blocked;
       if blocked then Model.recovered t.model Fault.Dma_escape;
       t.rx_drops <- t.rx_drops + 1;
       false
     | Some (Fault.Reorder_completion as f) ->
       Model.recovered t.model f;
       deliver t q frame)

let wire_collect t =
  let frames = List.rev t.tx_wire in
  t.tx_wire <- [];
  frames

let rx_drops t = t.rx_drops

let rx_burst t ~max =
  match t.rxq with
  | None -> []
  | Some q ->
    if Model.pending_irqs t.model > 0 then Model.ack_irqs t.model;
    Model.on_op t.model;
    let qsz = Vring.qsz q.vr in
    let rec harvest acc n =
      if n >= max then acc
      else
        match Vring.poll_used q.vr with
        | None -> acc
        | Some (id, len) ->
          Clock.advance t.clock t.cost.Cost.driver_per_packet;
          let reject e f =
            note_error t e;
            Model.note_harvest t.model 1;
            Model.recovered t.model f;
            harvest acc (n + 1)
          in
          if id < 0 || id >= qsz then
            reject
              (Fault.Malformed { slot = id; detail = "used id out of range" })
              Fault.Malformed_desc
          else begin
            let addr, cap = q.bufs.(id) in
            if len = 0 then begin
              (* zero-length completion: drop and repost the buffer *)
              ignore (Vring.push_avail q.vr ~head:id);
              reject (Fault.Short_frame { len = 0; min = 1 }) Fault.Short_desc
            end
            else if len > cap then begin
              ignore (Vring.push_avail q.vr ~head:id);
              reject
                (Fault.Malformed
                   { slot = id; detail = Printf.sprintf "len %d > capacity %d" len cap })
                Fault.Malformed_desc
            end
            else
              match Iommu.dma_read_checked t.iommu ~device:t.device ~iova:addr ~len with
              | Error de ->
                ignore (Vring.push_avail q.vr ~head:id);
                reject
                  (Fault.Dma_fault { iova = de.Iommu.e_iova; len })
                  Fault.Malformed_desc
              | Ok frame ->
                ignore (Vring.push_avail q.vr ~head:id);
                Model.note_harvest t.model 1;
                t.rx_frames <- t.rx_frames + 1;
                harvest (frame :: acc) (n + 1)
          end
    in
    let frames = List.rev (harvest [] 0) in
    let n = List.length frames in
    if n > 0 && Obs.tracing () then begin
      Obs.emit_drv_completion ~device:t.device ~count:n ();
      Obs.emit_drv_doorbell ~device:t.device ~queue:rx_queue ();
      Atmo_obs.Metrics.bump ~by:n "drv/virtio_rx";
      let sid = Span.pair Span.Drv_complete in
      Span.edge Span.Drv ~src:(Span.take_submit ~device:t.device ~tag:rx_queue)
        ~dst:sid
    end;
    frames

let tx_burst t frames =
  match t.txq with
  | None -> 0
  | Some q ->
    Model.on_op t.model;
    let accepted =
      List.fold_left
        (fun accepted frame ->
          Clock.advance t.clock t.cost.Cost.driver_per_packet;
          match Queue.take_opt q.free with
          | None -> accepted
          | Some slot ->
            let addr, cap = q.bufs.(slot) in
            if
              Bytes.length frame <= cap
              && Iommu.dma_write t.iommu ~device:t.device ~iova:addr frame
              && Vring.write_desc q.vr ~slot ~addr ~len:(Bytes.length frame) ()
              && Vring.push_avail q.vr ~head:slot
            then begin
              (* device consumes the descriptor synchronously *)
              (match Vring.device_pop_avail q.vr with
               | Some head ->
                 (match Vring.read_desc q.vr ~slot:head with
                  | Some (a, l, _, _) ->
                    (match Iommu.dma_read t.iommu ~device:t.device ~iova:a ~len:l with
                     | Some sent -> t.tx_wire <- sent :: t.tx_wire
                     | None -> ())
                  | None -> ());
                 ignore (Vring.device_push_used q.vr ~id:head ~len:0)
               | None -> ());
              (* reclaim the used entry, freeing the slot *)
              (match Vring.poll_used q.vr with
               | Some (id, _) when id >= 0 && id < Vring.qsz q.vr -> Queue.add id q.free
               | Some _ | None -> Queue.add slot q.free);
              t.tx_frames <- t.tx_frames + 1;
              accepted + 1
            end
            else begin
              Queue.add slot q.free;
              accepted
            end)
        0 frames
    in
    if accepted > 0 then begin
      Model.note_submit t.model accepted;
      Model.note_deliver t.model accepted;
      Model.note_harvest t.model accepted;
      if Obs.tracing () then begin
        Obs.emit_drv_doorbell ~device:t.device ~queue:tx_queue ();
        Atmo_obs.Metrics.bump ~by:accepted "drv/virtio_tx"
      end
    end;
    accepted

let stats t = (t.rx_frames, t.tx_frames)
