(** Virtio 1.0 split virtqueue layout over device-visible memory.

    A split virtqueue is three structures in guest memory: a descriptor
    table ([qsz] × 16 bytes: buffer address u64, length u32, flags u16,
    next u16), an available ring the driver appends descriptor heads to,
    and a used ring the device appends completed heads to.  Both sides
    only ever exchange 16-bit free-running indices, so every access here
    is an explicit little-endian read/write through the supplied DMA
    closures — with the IOMMU behind them, a virtqueue the owning
    process never mapped for the device faults like any other DMA. *)

val flag_next : int  (* 0x1: descriptor continues at [next] *)
val flag_write : int  (* 0x2: device writes this buffer *)

type dma = {
  read : iova:int -> len:int -> bytes option;
  write : iova:int -> bytes -> bool;
}

type t

val layout : qsz:int -> base:int -> int * int * int * int
(** [layout ~qsz ~base] is [(desc, avail, used, total_bytes)]: the
    iovas of the three structures when packed from [base], and the
    total footprint. *)

val create : dma -> qsz:int -> desc:int -> avail:int -> used:int -> t
val qsz : t -> int

(** {2 Driver side} *)

val write_desc :
  t -> slot:int -> addr:int -> len:int -> ?flags:int -> ?next:int -> unit -> bool
val read_desc : t -> slot:int -> (int * int * int * int) option
(** [(addr, len, flags, next)]. *)

val push_avail : t -> head:int -> bool
(** Publish descriptor chain [head]: write the ring slot, then advance
    the available index. *)

val poll_used : t -> (int * int) option
(** Next unseen used-ring entry [(id, len)], if the device has pushed
    one.  Advances the driver's used index even if the entry later
    fails validation — a garbage entry must not wedge the ring. *)

(** {2 Device side} *)

val device_pop_avail : t -> int option
(** Next unseen available head, if the driver has pushed one. *)

val device_push_used : t -> id:int -> len:int -> bool
