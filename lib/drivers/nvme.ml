module Clock = Atmo_hw.Clock
module Cost = Atmo_sim.Cost
module Obs = Atmo_obs.Sink
module Event = Atmo_obs.Event
module Span = Atmo_obs.Span

let submission_queue = 0

type op = Read | Write

type completion = {
  tag : int;
  op : op;
  lba : int;
  ok : bool;
  data : bytes option;
}

type pending = {
  p_tag : int;
  p_op : op;
  p_lba : int;
  p_data : bytes option;  (* write payload *)
  submitted : int;  (* cycle count at submission, for latency accounting *)
  due : int;  (* cycle count at which the completion posts *)
}

type t = {
  clock : Clock.t;
  cost : Cost.t;
  mutable device : int;  (* id carried by tracepoints *)
  capacity_blocks : int;
  blocks : (int, bytes) Hashtbl.t;
  mutable queue : pending list;  (* oldest first *)
  mutable next_tag : int;
  mutable last_read_slot : int;  (* rate limiting: next free device slot *)
  mutable last_write_slot : int;
}

let block_bytes = 4096
let max_queue = 1024

let create ~clock ~cost ~capacity_blocks =
  if capacity_blocks <= 0 then invalid_arg "Nvme.create: capacity <= 0";
  {
    clock;
    cost;
    device = 0;
    capacity_blocks;
    blocks = Hashtbl.create 1024;
    queue = [];
    next_tag = 0;
    last_read_slot = 0;
    last_write_slot = 0;
  }

let capacity_blocks t = t.capacity_blocks
let queue_depth t = List.length t.queue
let set_device t device = t.device <- device
let device t = t.device

(* Service model: a request completes after the device latency, and the
   stream of same-kind requests is spaced by the rate cap (1/cap worth
   of cycles each), whichever is later. *)
let due_time t op =
  let now = Clock.now t.clock in
  let cap =
    match op with
    | Read -> t.cost.Cost.nvme_read_cap_iops
    | Write ->
      t.cost.Cost.nvme_write_cap_iops /. (1. +. t.cost.Cost.nvme_atmo_write_penalty)
  in
  let spacing = int_of_float (t.cost.Cost.frequency_hz /. cap) in
  let latency = int_of_float (t.cost.Cost.nvme_read_latency_s *. t.cost.Cost.frequency_hz) in
  let slot_ref = match op with Read -> t.last_read_slot | Write -> t.last_write_slot in
  let slot = max now slot_ref in
  (match op with
   | Read -> t.last_read_slot <- slot + spacing
   | Write -> t.last_write_slot <- slot + spacing);
  slot + latency

let submit t op ~lba ~data =
  if lba < 0 || lba >= t.capacity_blocks then Error "lba out of range"
  else if queue_depth t >= max_queue then Error "submission queue full"
  else begin
    let tag = t.next_tag in
    t.next_tag <- tag + 1;
    let submitted = Clock.now t.clock in
    t.queue <-
      t.queue
      @ [ { p_tag = tag; p_op = op; p_lba = lba; p_data = data; submitted;
            due = due_time t op } ];
    (* submission-queue tail write *)
    if Obs.tracing () then begin
      let sid = Span.begin_ Span.Drv_submit in
      Obs.emit (Event.Drv_doorbell { device = t.device; queue = submission_queue });
      Span.end_ sid;
      (* remembered per (device, tag) so the completion span can be
         causally linked back to this submission *)
      Span.note_submit ~device:t.device ~tag ~span:sid
    end;
    Ok tag
  end

let submit_read t ~lba = submit t Read ~lba ~data:None

let submit_write t ~lba ~data =
  if Bytes.length data <> block_bytes then Error "write must be one block"
  else submit t Write ~lba ~data:(Some (Bytes.copy data))

let complete t p =
  match p.p_op with
  | Write ->
    (match p.p_data with
     | Some d -> Hashtbl.replace t.blocks p.p_lba d
     | None -> ());
    { tag = p.p_tag; op = Write; lba = p.p_lba; ok = true; data = None }
  | Read ->
    let data =
      match Hashtbl.find_opt t.blocks p.p_lba with
      | Some d -> Bytes.copy d
      | None -> Bytes.make block_bytes '\000'
    in
    { tag = p.p_tag; op = Read; lba = p.p_lba; ok = true; data = Some data }

let poll t =
  let now = Clock.now t.clock in
  let due, still = List.partition (fun p -> p.due <= now) t.queue in
  t.queue <- still;
  if due <> [] && Obs.tracing () then begin
    Obs.emit (Event.Drv_completion { device = t.device; count = List.length due });
    (* modeled submit-to-completion latency, in cycles *)
    List.iter
      (fun p ->
        Atmo_obs.Metrics.observe "lat/nvme_io" (p.due - p.submitted);
        let sid = Span.begin_ Span.Drv_complete in
        Span.edge Span.Drv ~src:(Span.take_submit ~device:t.device ~tag:p.p_tag)
          ~dst:sid;
        Span.end_ sid)
      due
  end;
  List.map (complete t) due

let wait_all t =
  match t.queue with
  | [] -> []
  | q ->
    let latest = List.fold_left (fun acc p -> max acc p.due) 0 q in
    let now = Clock.now t.clock in
    if latest > now then Clock.advance t.clock (latest - now);
    poll t

let read_block_direct t ~lba =
  match Hashtbl.find_opt t.blocks lba with
  | Some d -> Bytes.copy d
  | None -> Bytes.make block_bytes '\000'
