module Clock = Atmo_hw.Clock
module Cost = Atmo_sim.Cost
module Obs = Atmo_obs.Sink
module Event = Atmo_obs.Event
module Span = Atmo_obs.Span
module Fault = Atmo_devmodel.Fault
module Model = Atmo_devmodel.Model

let submission_queue = 0

type op = Read | Write

type completion = {
  tag : int;
  op : op;
  lba : int;
  ok : bool;
  data : bytes option;
}

type pending = {
  p_tag : int;
  p_op : op;
  p_lba : int;
  p_data : bytes option;  (* write payload *)
  submitted : int;  (* cycle count at submission, for latency accounting *)
  due : int;  (* cycle count at which the completion posts *)
}

type t = {
  clock : Clock.t;
  cost : Cost.t;
  mutable device : int;  (* id carried by tracepoints *)
  capacity_blocks : int;
  blocks : (int, bytes) Hashtbl.t;
  model : Model.t;
  outstanding : (int, unit) Hashtbl.t;  (* tags submitted, not yet harvested *)
  harvested : (int, unit) Hashtbl.t;  (* tags already harvested (dedup) *)
  mutable queue : pending list;  (* oldest first *)
  mutable next_tag : int;
  mutable last_read_slot : int;  (* rate limiting: next free device slot *)
  mutable last_write_slot : int;
  mutable drop_completion_plant : bool;
  mutable errors : Fault.error list;  (* newest first, capped *)
  mutable error_count : int;
}

let block_bytes = 4096
let max_queue = 1024
let error_cap = 32

(* tags a glitching controller invents never collide with real ones *)
let bogus_tag_offset = 0x10000

let create ~clock ~cost ~capacity_blocks =
  if capacity_blocks <= 0 then invalid_arg "Nvme.create: capacity <= 0";
  {
    clock;
    cost;
    device = 0;
    capacity_blocks;
    blocks = Hashtbl.create 1024;
    model = Model.register ~name:"nvme0" ~device:0 ~initial:Model.Ready;
    outstanding = Hashtbl.create 64;
    harvested = Hashtbl.create 256;
    queue = [];
    next_tag = 0;
    last_read_slot = 0;
    last_write_slot = 0;
    drop_completion_plant = false;
    errors = [];
    error_count = 0;
  }

let capacity_blocks t = t.capacity_blocks
let queue_depth t = List.length t.queue

let set_device t device =
  t.device <- device;
  t.model.Model.device <- device

let device t = t.device
let model t = t.model
let set_hostile t h = Model.set_hostile t.model h
let errors t = List.rev t.errors
let error_count t = t.error_count
let set_drop_completion_plant t v = t.drop_completion_plant <- v

let note_error t e =
  t.error_count <- t.error_count + 1;
  if List.length t.errors < error_cap then t.errors <- e :: t.errors

(* Service model: a request completes after the device latency, and the
   stream of same-kind requests is spaced by the rate cap (1/cap worth
   of cycles each), whichever is later. *)
let due_time t op =
  let now = Clock.now t.clock in
  let cap =
    match op with
    | Read -> t.cost.Cost.nvme_read_cap_iops
    | Write ->
      t.cost.Cost.nvme_write_cap_iops /. (1. +. t.cost.Cost.nvme_atmo_write_penalty)
  in
  let spacing = int_of_float (t.cost.Cost.frequency_hz /. cap) in
  let latency = int_of_float (t.cost.Cost.nvme_read_latency_s *. t.cost.Cost.frequency_hz) in
  let slot_ref = match op with Read -> t.last_read_slot | Write -> t.last_write_slot in
  let slot = max now slot_ref in
  (match op with
   | Read -> t.last_read_slot <- slot + spacing
   | Write -> t.last_write_slot <- slot + spacing);
  slot + latency

let submit t op ~lba ~data =
  if lba < 0 || lba >= t.capacity_blocks then
    Error (Fault.Lba_out_of_range { lba; capacity = t.capacity_blocks })
  else if queue_depth t >= max_queue then Error Fault.Queue_full
  else begin
    let tag = t.next_tag in
    t.next_tag <- tag + 1;
    let submitted = Clock.now t.clock in
    t.queue <-
      t.queue
      @ [ { p_tag = tag; p_op = op; p_lba = lba; p_data = data; submitted;
            due = due_time t op } ];
    Hashtbl.replace t.outstanding tag ();
    Model.note_submit t.model 1;
    Model.on_op t.model;
    (* submission-queue tail write *)
    if Obs.tracing () then begin
      let sid = Span.pair Span.Drv_submit in
      Obs.emit_drv_doorbell ~device:t.device ~queue:submission_queue ();
      (* remembered per (device, tag) so the completion span can be
         causally linked back to this submission *)
      Span.note_submit ~device:t.device ~tag ~span:sid
    end;
    Ok tag
  end

let submit_read t ~lba = submit t Read ~lba ~data:None

let submit_write t ~lba ~data =
  if Bytes.length data <> block_bytes then
    Error (Fault.Bad_block_size { expected = block_bytes; got = Bytes.length data })
  else submit t Write ~lba ~data:(Some (Bytes.copy data))

let complete t p =
  match p.p_op with
  | Write ->
    (match p.p_data with
     | Some d -> Hashtbl.replace t.blocks p.p_lba d
     | None -> ());
    { tag = p.p_tag; op = Write; lba = p.p_lba; ok = true; data = None }
  | Read ->
    let data =
      match Hashtbl.find_opt t.blocks p.p_lba with
      | Some d -> Bytes.copy d
      | None -> Bytes.make block_bytes '\000'
    in
    { tag = p.p_tag; op = Read; lba = p.p_lba; ok = true; data = Some data }

let poll t =
  (* service the completion vector before touching the queue *)
  if Model.pending_irqs t.model > 0 then Model.ack_irqs t.model;
  let now = Clock.now t.clock in
  let due, still = List.partition (fun p -> p.due <= now) t.queue in
  t.queue <- still;
  (* Device side: post one CQE per due request.  A hostile controller
     additionally posts CQEs with invented tags, duplicates, storms the
     vector, or posts the batch out of order — the driver below must
     filter all of that by tag. *)
  let reorder = ref false in
  let cqes =
    List.concat_map
      (fun p ->
        let real = complete t p in
        Model.note_deliver t.model 1;
        match
          Model.inject t.model ~site:"nvme.cq"
            [ Fault.Malformed_desc; Fault.Duplicate_completion;
              Fault.Reorder_completion; Fault.Spurious_irq; Fault.Irq_storm ]
        with
        | None -> [ (p, real) ]
        | Some Fault.Malformed_desc ->
          (* an extra CQE with a tag that was never submitted *)
          [ (p, { real with tag = p.p_tag + bogus_tag_offset; ok = false; data = None });
            (p, real) ]
        | Some Fault.Duplicate_completion ->
          Model.note_dup t.model;
          [ (p, real); (p, { real with data = real.data }) ]
        | Some Fault.Reorder_completion ->
          reorder := true;
          [ (p, real) ]
        | Some Fault.Spurious_irq ->
          Model.raise_irq t.model;
          Model.recovered t.model Fault.Spurious_irq;
          [ (p, real) ]
        | Some Fault.Irq_storm ->
          for _ = 0 to Model.storm_threshold + 7 do
            Model.raise_irq t.model
          done;
          Model.recovered t.model Fault.Irq_storm;
          [ (p, real) ]
        | Some ((Fault.Short_desc | Fault.Dma_escape) as f) ->
          (* not expressible on this queue pair *)
          Model.recovered t.model f;
          [ (p, real) ])
      due
  in
  let cqes = if !reorder then List.rev cqes else cqes in
  if !reorder then Model.recovered t.model Fault.Reorder_completion;
  (* Driver side: accept only completions whose tag is outstanding. *)
  let accepted =
    List.filter_map
      (fun (p, c) ->
        if Hashtbl.mem t.outstanding c.tag then begin
          if t.drop_completion_plant then begin
            (* planted driver bug: the completion is silently skipped,
               its tag left dangling — drv-lost-completion must fire *)
            t.drop_completion_plant <- false;
            Hashtbl.remove t.outstanding c.tag;
            None
          end
          else begin
            Hashtbl.remove t.outstanding c.tag;
            Hashtbl.replace t.harvested c.tag ();
            Model.note_harvest t.model 1;
            Some (p, c)
          end
        end
        else begin
          let fault, err =
            if Hashtbl.mem t.harvested c.tag then
              (Fault.Duplicate_completion, Fault.Duplicate { tag = c.tag })
            else (Fault.Malformed_desc, Fault.Unknown_completion { tag = c.tag })
          in
          note_error t err;
          Model.recovered t.model fault;
          None
        end)
      cqes
  in
  if accepted <> [] && Obs.tracing () then begin
    Obs.emit_drv_completion ~device:t.device ~count:(List.length accepted) ();
    (* modeled submit-to-completion latency, in cycles *)
    List.iter
      (fun (p, _) ->
        Atmo_obs.Metrics.observe "lat/nvme_io" (p.due - p.submitted);
        let sid = Span.pair Span.Drv_complete in
        Span.edge Span.Drv ~src:(Span.take_submit ~device:t.device ~tag:p.p_tag)
          ~dst:sid)
      accepted
  end;
  List.map snd accepted

let wait_all t =
  match t.queue with
  | [] -> poll t
  | q ->
    let latest = List.fold_left (fun acc p -> max acc p.due) 0 q in
    let now = Clock.now t.clock in
    if latest > now then Clock.advance t.clock (latest - now);
    poll t

let read_block_direct t ~lba =
  match Hashtbl.find_opt t.blocks lba with
  | Some d -> Bytes.copy d
  | None -> Bytes.make block_bytes '\000'
