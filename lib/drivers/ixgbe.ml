module Phys_mem = Atmo_hw.Phys_mem
module Iommu = Atmo_hw.Iommu
module Clock = Atmo_hw.Clock
module Cost = Atmo_sim.Cost
module Obs = Atmo_obs.Sink
module Event = Atmo_obs.Event
module Span = Atmo_obs.Span

(* queue ids carried by doorbell/completion tracepoints *)
let rx_queue = 0
let tx_queue = 1

let descriptor_bytes = 16
let line_rate_pps = 14.2e6

let flag_dd = 0x1
let flag_own = 0x2

type ring = {
  iova : int;  (* base of the descriptor ring, device-visible *)
  slots : int;
  mutable hw_next : int;  (* next slot the device will use *)
  mutable drv_next : int;  (* next slot the driver will harvest/fill *)
}

type t = {
  mem : Phys_mem.t;
  iommu : Iommu.t;
  device : int;
  clock : Clock.t;
  cost : Cost.t;
  mutable rx : ring option;
  mutable tx : ring option;
  mutable tx_wire : bytes list;  (* newest first *)
  mutable rx_drops : int;
  mutable rx_frames : int;
  mutable tx_frames : int;
}

let create mem iommu ~device ~clock ~cost =
  {
    mem;
    iommu;
    device;
    clock;
    cost;
    rx = None;
    tx = None;
    tx_wire = [];
    rx_drops = 0;
    rx_frames = 0;
    tx_frames = 0;
  }

(* All descriptor accesses are device-side: they go through the IOMMU. *)
let desc_addr ring slot = ring.iova + (slot * descriptor_bytes)

let read_desc t ring slot =
  match Iommu.dma_read t.iommu ~device:t.device ~iova:(desc_addr ring slot) ~len:descriptor_bytes with
  | None -> None
  | Some b ->
    Some
      ( Int64.to_int (Bytes.get_int64_le b 0),
        Bytes.get_uint16_le b 8,
        Bytes.get_uint16_le b 10 )

let write_desc t ring slot ~buf_iova ~len ~flags =
  let b = Bytes.make descriptor_bytes '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int buf_iova);
  Bytes.set_uint16_le b 8 len;
  Bytes.set_uint16_le b 10 flags;
  Iommu.dma_write t.iommu ~device:t.device ~iova:(desc_addr ring slot) b

let setup_rx t ~ring_iova ~buffers =
  let slots = Array.length buffers in
  if slots = 0 then Error "setup_rx: no buffers"
  else begin
    let ring = { iova = ring_iova; slots; hw_next = 0; drv_next = 0 } in
    let ok = ref true in
    Array.iteri
      (fun i (buf_iova, len) ->
        if !ok then
          ok := write_desc t ring i ~buf_iova ~len ~flags:flag_own)
      buffers;
    if !ok then begin
      t.rx <- Some ring;
      (* arming the ring is the first tail-register write *)
      if Obs.tracing () then
        Obs.emit (Event.Drv_doorbell { device = t.device; queue = rx_queue });
      Ok ()
    end
    else Error "setup_rx: descriptor DMA faulted (ring not mapped for the device?)"
  end

let setup_tx t ~ring_iova ~slots =
  if slots <= 0 then Error "setup_tx: slots <= 0"
  else begin
    let ring = { iova = ring_iova; slots; hw_next = 0; drv_next = 0 } in
    let ok = ref true in
    for i = 0 to slots - 1 do
      if !ok then ok := write_desc t ring i ~buf_iova:0 ~len:0 ~flags:0
    done;
    if !ok then begin
      t.tx <- Some ring;
      Ok ()
    end
    else Error "setup_tx: descriptor DMA faulted"
  end

let wire_deliver t frame =
  match t.rx with
  | None ->
    t.rx_drops <- t.rx_drops + 1;
    false
  | Some ring ->
    (match read_desc t ring ring.hw_next with
     | Some (buf_iova, buf_len, flags)
       when flags land flag_own <> 0 && Bytes.length frame <= buf_len ->
       if
         Iommu.dma_write t.iommu ~device:t.device ~iova:buf_iova frame
         && write_desc t ring ring.hw_next ~buf_iova ~len:(Bytes.length frame)
              ~flags:flag_dd
       then begin
         ring.hw_next <- (ring.hw_next + 1) mod ring.slots;
         if Obs.tracing () then begin
           (* wire-side delivery: remembered per device so the next
              rx burst can link its completion back causally *)
           let sid = Span.begin_ Span.Drv_submit in
           Span.end_ sid;
           Span.note_submit ~device:t.device ~tag:rx_queue ~span:sid
         end;
         true
       end
       else begin
         t.rx_drops <- t.rx_drops + 1;
         false
       end
     | _ ->
       t.rx_drops <- t.rx_drops + 1;
       false)

let wire_collect t =
  let frames = List.rev t.tx_wire in
  t.tx_wire <- [];
  frames

let rx_drops t = t.rx_drops

let rx_burst t ~max =
  match t.rx with
  | None -> []
  | Some ring ->
    let rec harvest acc n =
      if n >= max then acc
      else
        match read_desc t ring ring.drv_next with
        | Some (buf_iova, len, flags) when flags land flag_dd <> 0 ->
          Clock.advance t.clock t.cost.Cost.driver_per_packet;
          (* the driver process owns the buffers; it reads them through
             its mapping, which shares the frames the IOMMU targets *)
          (match Iommu.dma_read t.iommu ~device:t.device ~iova:buf_iova ~len with
           | Some frame ->
             (* recycle the descriptor back to hardware with the standard
                2 KiB buffer capacity *)
             ignore (write_desc t ring ring.drv_next ~buf_iova ~len:2048 ~flags:flag_own);
             ring.drv_next <- (ring.drv_next + 1) mod ring.slots;
             t.rx_frames <- t.rx_frames + 1;
             harvest (frame :: acc) (n + 1)
           | None -> acc)
        | _ -> acc
    in
    let frames = List.rev (harvest [] 0) in
    let n = List.length frames in
    if n > 0 && Obs.tracing () then begin
      Obs.emit (Event.Drv_completion { device = t.device; count = n });
      (* recycled descriptors are published with a tail-register write *)
      Obs.emit (Event.Drv_doorbell { device = t.device; queue = rx_queue });
      Atmo_obs.Metrics.bump ~by:n "drv/ixgbe_rx";
      let sid = Span.begin_ Span.Drv_complete in
      Span.edge Span.Drv ~src:(Span.take_submit ~device:t.device ~tag:rx_queue)
        ~dst:sid;
      Span.end_ sid
    end;
    frames

let tx_burst t frames =
  match t.tx with
  | None -> 0
  | Some ring ->
    let accepted =
      List.fold_left
        (fun accepted frame ->
          Clock.advance t.clock t.cost.Cost.driver_per_packet;
          (* a slot is free when its OWN and DD bits are clear *)
          match read_desc t ring ring.drv_next with
          | Some (_, _, flags) when flags land (flag_own lor flag_dd) = 0 ->
            ring.drv_next <- (ring.drv_next + 1) mod ring.slots;
            t.tx_wire <- Bytes.copy frame :: t.tx_wire;
            t.tx_frames <- t.tx_frames + 1;
            accepted + 1
          | _ -> accepted)
        0 frames
    in
    if accepted > 0 && Obs.tracing () then begin
      Obs.emit (Event.Drv_doorbell { device = t.device; queue = tx_queue });
      Atmo_obs.Metrics.bump ~by:accepted "drv/ixgbe_tx"
    end;
    accepted

let stats t = (t.rx_frames, t.tx_frames)
