module Phys_mem = Atmo_hw.Phys_mem
module Iommu = Atmo_hw.Iommu
module Clock = Atmo_hw.Clock
module Cost = Atmo_sim.Cost
module Obs = Atmo_obs.Sink
module Event = Atmo_obs.Event
module Span = Atmo_obs.Span
module Fault = Atmo_devmodel.Fault
module Model = Atmo_devmodel.Model

(* queue ids carried by doorbell/completion tracepoints *)
let rx_queue = 0
let tx_queue = 1

let descriptor_bytes = 16
let line_rate_pps = 14.2e6

let flag_dd = 0x1
let flag_own = 0x2

(* hostile-mode DMA escapes aim here: far outside any mapped window *)
let escape_iova = 0x7f00_0000_0000

type ring = {
  iova : int;  (* base of the descriptor ring, device-visible *)
  slots : int;
  bufs : (int * int) array;  (* per-slot (buffer iova, capacity) *)
  mutable hw_next : int;  (* next slot the device will use *)
  mutable drv_next : int;  (* next slot the driver will harvest/fill *)
}

type t = {
  mem : Phys_mem.t;
  iommu : Iommu.t;
  device : int;
  clock : Clock.t;
  cost : Cost.t;
  model : Model.t;
  mutable rx : ring option;
  mutable tx : ring option;
  mutable tx_wire : bytes list;  (* newest first *)
  mutable rx_drops : int;
  mutable rx_frames : int;
  mutable tx_frames : int;
  mutable errors : Fault.error list;  (* newest first, capped *)
  mutable error_count : int;
}

let error_cap = 32

let note_error t e =
  t.error_count <- t.error_count + 1;
  if List.length t.errors < error_cap then t.errors <- e :: t.errors

let create mem iommu ~device ~clock ~cost =
  {
    mem;
    iommu;
    device;
    clock;
    cost;
    model =
      Model.register ~name:(Printf.sprintf "ixgbe%d" device) ~device
        ~initial:Model.Reset;
    rx = None;
    tx = None;
    tx_wire = [];
    rx_drops = 0;
    rx_frames = 0;
    tx_frames = 0;
    errors = [];
    error_count = 0;
  }

let model t = t.model
let set_hostile t h = Model.set_hostile t.model h
let errors t = List.rev t.errors
let error_count t = t.error_count

(* All descriptor accesses are device-side: they go through the IOMMU. *)
let desc_addr ring slot = ring.iova + (slot * descriptor_bytes)

let read_desc t ring slot =
  match Iommu.dma_read t.iommu ~device:t.device ~iova:(desc_addr ring slot) ~len:descriptor_bytes with
  | None -> None
  | Some b ->
    Some
      ( Int64.to_int (Bytes.get_int64_le b 0),
        Bytes.get_uint16_le b 8,
        Bytes.get_uint16_le b 10 )

let write_desc t ring slot ~buf_iova ~len ~flags =
  let b = Bytes.make descriptor_bytes '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int buf_iova);
  Bytes.set_uint16_le b 8 len;
  Bytes.set_uint16_le b 10 flags;
  Iommu.dma_write t.iommu ~device:t.device ~iova:(desc_addr ring slot) b

let setup_ring t ~ring_iova ~buffers ~flags =
  let slots = Array.length buffers in
  if slots = 0 then Error (Fault.Bad_setup "no buffers")
  else begin
    let ring =
      { iova = ring_iova; slots; bufs = Array.copy buffers; hw_next = 0; drv_next = 0 }
    in
    let fault = ref None in
    Array.iteri
      (fun i (buf_iova, len) ->
        if !fault = None && not (write_desc t ring i ~buf_iova ~len ~flags) then
          fault := Some (Fault.Dma_fault { iova = desc_addr ring i; len = descriptor_bytes }))
      buffers;
    match !fault with
    | Some e ->
      note_error t e;
      Error e
    | None -> Ok ring
  end

let setup_rx t ~ring_iova ~buffers =
  match setup_ring t ~ring_iova ~buffers ~flags:flag_own with
  | Error _ as e -> e
  | Ok ring ->
    t.rx <- Some ring;
    Model.on_setup t.model;
    (* arming the ring is the first tail-register write *)
    if Obs.tracing () then
      Obs.emit_drv_doorbell ~device:t.device ~queue:rx_queue ();
    Ok ()

let setup_tx t ~ring_iova ~buffers =
  match setup_ring t ~ring_iova ~buffers ~flags:0 with
  | Error _ as e -> e
  | Ok ring ->
    t.tx <- Some ring;
    Model.on_setup t.model;
    Ok ()

(* Device-side delivery of one frame into the next hardware-owned RX
   descriptor.  In hostile mode this is the injection point: the device
   may post a malformed or truncated descriptor, duplicate the
   completion, raise bogus interrupts, or aim its DMA outside the IOMMU
   window.  None of these may reach the driver as anything but a typed
   error. *)
let deliver_into t ring frame =
  match read_desc t ring ring.hw_next with
  | Some (buf_iova, buf_len, flags)
    when flags land flag_own <> 0 && Bytes.length frame <= buf_len ->
    if
      Iommu.dma_write t.iommu ~device:t.device ~iova:buf_iova frame
      && write_desc t ring ring.hw_next ~buf_iova ~len:(Bytes.length frame)
           ~flags:flag_dd
    then begin
      ring.hw_next <- (ring.hw_next + 1) mod ring.slots;
      Model.note_deliver t.model 1;
      if Obs.tracing () then begin
        (* wire-side delivery: remembered per device so the next
           rx burst can link its completion back causally *)
        let sid = Span.pair Span.Drv_submit in
        Span.note_submit ~device:t.device ~tag:rx_queue ~span:sid
      end;
      true
    end
    else begin
      t.rx_drops <- t.rx_drops + 1;
      false
    end
  | _ ->
    t.rx_drops <- t.rx_drops + 1;
    false

(* Post a descriptor the driver must reject: DD set with an impossible
   length.  The completion is "delivered" (the driver will consume and
   discard it); the frame itself is lost. *)
let deliver_poisoned t ring ~len =
  match read_desc t ring ring.hw_next with
  | Some (buf_iova, _, flags) when flags land flag_own <> 0 ->
    if write_desc t ring ring.hw_next ~buf_iova ~len ~flags:flag_dd then begin
      ring.hw_next <- (ring.hw_next + 1) mod ring.slots;
      Model.note_deliver t.model 1
    end;
    t.rx_drops <- t.rx_drops + 1;
    false
  | _ ->
    t.rx_drops <- t.rx_drops + 1;
    false

let wire_deliver t frame =
  match t.rx with
  | None ->
    t.rx_drops <- t.rx_drops + 1;
    false
  | Some ring ->
    (match
       Model.inject t.model ~site:"ixgbe.wire_deliver"
         [ Fault.Malformed_desc; Fault.Short_desc; Fault.Spurious_irq;
           Fault.Irq_storm; Fault.Duplicate_completion; Fault.Dma_escape ]
     with
     | None -> deliver_into t ring frame
     | Some Fault.Malformed_desc ->
       (* length beyond any buffer capacity *)
       deliver_poisoned t ring ~len:0xffff
     | Some Fault.Short_desc ->
       (* zero-length completion: truncated past the point of use *)
       deliver_poisoned t ring ~len:0
     | Some Fault.Spurious_irq ->
       Model.raise_irq t.model;
       Model.recovered t.model Fault.Spurious_irq;
       deliver_into t ring frame
     | Some Fault.Irq_storm ->
       for _ = 0 to Model.storm_threshold + 7 do
         Model.raise_irq t.model
       done;
       (* auto-mask bounds the storm; the vector unmasks at the next poll *)
       Model.recovered t.model Fault.Irq_storm;
       deliver_into t ring frame
     | Some Fault.Duplicate_completion ->
       let first = deliver_into t ring frame in
       if first then begin
         Model.note_dup t.model;
         ignore (deliver_into t ring frame)
       end;
       first
     | Some Fault.Dma_escape ->
       (* the device aims the frame outside its window; the IOMMU must
          reject it before a byte lands *)
       let blocked = not (Iommu.dma_write t.iommu ~device:t.device ~iova:escape_iova frame) in
       Model.note_escape t.model ~blocked;
       if blocked then Model.recovered t.model Fault.Dma_escape;
       t.rx_drops <- t.rx_drops + 1;
       false
     | Some (Fault.Reorder_completion as f) ->
       (* positional ring: reordering is not expressible; treat as a
          well-behaved delivery after noting the attempt *)
       Model.recovered t.model f;
       deliver_into t ring frame)

let wire_collect t =
  let frames = List.rev t.tx_wire in
  t.tx_wire <- [];
  frames

let rx_drops t = t.rx_drops

let rx_burst t ~max =
  match t.rx with
  | None -> []
  | Some ring ->
    (* level-triggered vector: polling services and unmasks it *)
    if Model.pending_irqs t.model > 0 then Model.ack_irqs t.model;
    Model.on_op t.model;
    let rec harvest acc n =
      if n >= max then acc
      else
        match read_desc t ring ring.drv_next with
        | Some (buf_iova, len, flags) when flags land flag_dd <> 0 ->
          Clock.advance t.clock t.cost.Cost.driver_per_packet;
          let _, cap = ring.bufs.(ring.drv_next mod Array.length ring.bufs) in
          let consume err frame =
            (* recycle the descriptor back to hardware at the slot's
               real buffer capacity *)
            ignore (write_desc t ring ring.drv_next ~buf_iova ~len:cap ~flags:flag_own);
            ring.drv_next <- (ring.drv_next + 1) mod ring.slots;
            Model.note_harvest t.model 1;
            match err, frame with
            | Some (e, f), _ ->
              note_error t e;
              Model.recovered t.model f;
              harvest acc (n + 1)
            | None, Some frame ->
              t.rx_frames <- t.rx_frames + 1;
              harvest (frame :: acc) (n + 1)
            | None, None -> harvest acc (n + 1)
          in
          if len = 0 then
            consume (Some (Fault.Short_frame { len = 0; min = 1 }, Fault.Short_desc)) None
          else if len > cap then
            consume
              (Some
                 ( Fault.Malformed
                     { slot = ring.drv_next; detail = Printf.sprintf "len %d > capacity %d" len cap },
                   Fault.Malformed_desc ))
              None
          else
            (match Iommu.dma_read_checked t.iommu ~device:t.device ~iova:buf_iova ~len with
             | Ok frame -> consume None (Some frame)
             | Error de ->
               consume
                 (Some
                    ( Fault.Dma_fault { iova = de.Iommu.e_iova; len },
                      Fault.Malformed_desc ))
                 None)
        | _ -> acc
    in
    let frames = List.rev (harvest [] 0) in
    let n = List.length frames in
    if n > 0 && Obs.tracing () then begin
      Obs.emit_drv_completion ~device:t.device ~count:n ();
      (* recycled descriptors are published with a tail-register write *)
      Obs.emit_drv_doorbell ~device:t.device ~queue:rx_queue ();
      Atmo_obs.Metrics.bump ~by:n "drv/ixgbe_rx";
      let sid = Span.pair Span.Drv_complete in
      Span.edge Span.Drv ~src:(Span.take_submit ~device:t.device ~tag:rx_queue)
        ~dst:sid
    end;
    frames

let tx_burst t frames =
  match t.tx with
  | None -> 0
  | Some ring ->
    Model.on_op t.model;
    let accepted =
      List.fold_left
        (fun accepted frame ->
          Clock.advance t.clock t.cost.Cost.driver_per_packet;
          (* a slot is free when its OWN and DD bits are clear *)
          match read_desc t ring ring.drv_next with
          | Some (_, _, flags) when flags land (flag_own lor flag_dd) = 0 ->
            let buf_iova, cap = ring.bufs.(ring.drv_next mod Array.length ring.bufs) in
            if
              Bytes.length frame <= cap
              && Iommu.dma_write t.iommu ~device:t.device ~iova:buf_iova frame
            then begin
              ring.drv_next <- (ring.drv_next + 1) mod ring.slots;
              t.tx_wire <- Bytes.copy frame :: t.tx_wire;
              t.tx_frames <- t.tx_frames + 1;
              accepted + 1
            end
            else accepted
          | _ -> accepted)
        0 frames
    in
    if accepted > 0 then begin
      (* transmissions complete synchronously in this model: the driver
         observes the send on the same doorbell *)
      Model.note_submit t.model accepted;
      Model.note_deliver t.model accepted;
      Model.note_harvest t.model accepted;
      if Obs.tracing () then begin
        Obs.emit_drv_doorbell ~device:t.device ~queue:tx_queue ();
        Atmo_obs.Metrics.bump ~by:accepted "drv/ixgbe_tx"
      end
    end;
    accepted

let stats t = (t.rx_frames, t.tx_frames)
