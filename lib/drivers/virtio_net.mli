(** Virtio-net device model over a split virtqueue.

    Same driver signature as {!Ixgbe} — create, program RX/TX with
    [(buffer iova, capacity)] arrays, deliver/collect on the wire side,
    [rx_burst]/[tx_burst] on the driver side — but the rings are real
    virtio 1.0 split virtqueues ({!Virtio_ring}) living in guest memory
    behind the IOMMU, so the kv/Maglev workload runs on either NIC
    backend unchanged.  The queue region passed as [ring_iova] must
    cover [Virtio_ring.layout ~qsz:(Array.length buffers)] bytes.

    Runs behind an {!Atmo_devmodel.Model}; hostile mode injects the
    same fault kinds as the ixgbe model (malformed/short used entries,
    spurious and storming IRQs, duplicated completions, DMA escapes). *)

type t

val create :
  Atmo_hw.Phys_mem.t ->
  Atmo_hw.Iommu.t ->
  device:int ->
  clock:Atmo_hw.Clock.t ->
  cost:Atmo_sim.Cost.t ->
  t

val model : t -> Atmo_devmodel.Model.t
val set_hostile : t -> Atmo_devmodel.Hostile.t option -> unit
val errors : t -> Atmo_devmodel.Fault.error list
val error_count : t -> int

val setup_rx :
  t -> ring_iova:int -> buffers:(int * int) array -> (unit, Atmo_devmodel.Fault.error) result
(** Build the RX virtqueue at [ring_iova] (descriptor table, avail and
    used rings) and post every buffer as a device-writable descriptor. *)

val setup_tx :
  t -> ring_iova:int -> buffers:(int * int) array -> (unit, Atmo_devmodel.Fault.error) result

val wire_deliver : t -> bytes -> bool
(** A frame arrives: the device pops the next available descriptor,
    DMA-writes the frame, and pushes a used-ring entry. *)

val wire_collect : t -> bytes list
val rx_drops : t -> int

val rx_burst : t -> max:int -> bytes list
(** Poll the used ring: harvest up to [max] frames, repost their
    buffers, acknowledge IRQs.  Garbage used entries (bad id, zero or
    oversized length, unmapped buffer) are consumed with a typed error
    and never wedge the queue.  Charges [cost.driver_per_packet] per
    consumed entry. *)

val tx_burst : t -> bytes list -> int
val stats : t -> int * int
