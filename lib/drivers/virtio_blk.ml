module Phys_mem = Atmo_hw.Phys_mem
module Iommu = Atmo_hw.Iommu
module Clock = Atmo_hw.Clock
module Cost = Atmo_sim.Cost
module Obs = Atmo_obs.Sink
module Event = Atmo_obs.Event
module Span = Atmo_obs.Span
module Fault = Atmo_devmodel.Fault
module Model = Atmo_devmodel.Model
module Vring = Virtio_ring

let submission_queue = 0
let block_bytes = 4096

(* request type codes, per virtio-blk: 0 = VIRTIO_BLK_T_IN (device
   writes, i.e. a read), 1 = VIRTIO_BLK_T_OUT (a write) *)
let t_in = 0
let t_out = 1

let header_bytes = 16
(* header (16) + one block + status byte padded to keep slots aligned *)
let slot_bytes = header_bytes + block_bytes + 16

let escape_iova = 0x7f00_0000_0000

type op = Read | Write

type completion = {
  tag : int;
  op : op;
  lba : int;
  ok : bool;
  data : bytes option;
}

(* device-side view of an accepted request *)
type pending = {
  d_slot : int;
  d_op : op;
  d_lba : int;
  d_due : int;
}

(* driver-side view of an in-flight slot *)
type inflight = {
  i_tag : int;
  i_op : op;
  i_lba : int;
  i_submitted : int;
}

type t = {
  mem : Phys_mem.t;
  iommu : Iommu.t;
  device : int;
  clock : Clock.t;
  cost : Cost.t;
  capacity_blocks : int;
  blocks : (int, bytes) Hashtbl.t;
  model : Model.t;
  mutable vr : Vring.t option;
  mutable arena : int;  (* iova of the request arena *)
  mutable depth : int;
  free : int Queue.t;  (* slots not in flight *)
  inflight : (int, inflight) Hashtbl.t;  (* slot -> driver record *)
  mutable pending : pending list;  (* device queue, oldest first *)
  mutable next_tag : int;
  mutable last_read_slot : int;  (* rate limiting, as in Nvme *)
  mutable last_write_slot : int;
  mutable errors : Fault.error list;
  mutable error_count : int;
}

let error_cap = 32

let note_error t e =
  t.error_count <- t.error_count + 1;
  if List.length t.errors < error_cap then t.errors <- e :: t.errors

let create mem iommu ~device ~clock ~cost ~capacity_blocks =
  if capacity_blocks <= 0 then invalid_arg "Virtio_blk.create: capacity <= 0";
  {
    mem;
    iommu;
    device;
    clock;
    cost;
    capacity_blocks;
    blocks = Hashtbl.create 1024;
    model =
      Model.register ~name:(Printf.sprintf "virtio-blk%d" device) ~device
        ~initial:Model.Reset;
    vr = None;
    arena = 0;
    depth = 0;
    free = Queue.create ();
    inflight = Hashtbl.create 64;
    pending = [];
    next_tag = 0;
    last_read_slot = 0;
    last_write_slot = 0;
    errors = [];
    error_count = 0;
  }

let model t = t.model
let set_hostile t h = Model.set_hostile t.model h
let errors t = List.rev t.errors
let error_count t = t.error_count
let capacity_blocks t = t.capacity_blocks
let queue_depth t = Hashtbl.length t.inflight

let dma t =
  {
    Vring.read = (fun ~iova ~len -> Iommu.dma_read t.iommu ~device:t.device ~iova ~len);
    Vring.write = (fun ~iova b -> Iommu.dma_write t.iommu ~device:t.device ~iova b);
  }

let hdr_iova t slot = t.arena + (slot * slot_bytes)
let data_iova t slot = hdr_iova t slot + header_bytes
let status_iova t slot = data_iova t slot + block_bytes

let setup t ~ring_iova ~arena_iova ~depth =
  if depth <= 0 then Error (Fault.Bad_setup "depth <= 0")
  else begin
    let qsz = 3 * depth in
    let desc, avail, used, _total = Vring.layout ~qsz ~base:ring_iova in
    let vr = Vring.create (dma t) ~qsz ~desc ~avail ~used in
    t.arena <- arena_iova;
    t.depth <- depth;
    (* probe the arena so a bad window fails at setup, not mid-request *)
    let probe = Bytes.make 1 '\000' in
    if not (Iommu.dma_write t.iommu ~device:t.device ~iova:arena_iova probe)
       || not
            (Iommu.dma_write t.iommu ~device:t.device
               ~iova:(arena_iova + (depth * slot_bytes) - 1)
               probe)
    then begin
      let e = Fault.Dma_fault { iova = arena_iova; len = depth * slot_bytes } in
      note_error t e;
      Error e
    end
    else begin
      t.vr <- Some vr;
      Queue.clear t.free;
      for i = 0 to depth - 1 do
        Queue.add i t.free
      done;
      Hashtbl.reset t.inflight;
      Model.on_setup t.model;
      Ok ()
    end
  end

(* Same service model as Nvme: device latency plus per-kind rate-cap
   spacing, so both block backends share one virtual-clock timeline. *)
let due_time t op =
  let now = Clock.now t.clock in
  let cap =
    match op with
    | Read -> t.cost.Cost.nvme_read_cap_iops
    | Write ->
      t.cost.Cost.nvme_write_cap_iops /. (1. +. t.cost.Cost.nvme_atmo_write_penalty)
  in
  let spacing = int_of_float (t.cost.Cost.frequency_hz /. cap) in
  let latency = int_of_float (t.cost.Cost.nvme_read_latency_s *. t.cost.Cost.frequency_hz) in
  let slot_ref = match op with Read -> t.last_read_slot | Write -> t.last_write_slot in
  let slot = max now slot_ref in
  (match op with
   | Read -> t.last_read_slot <- slot + spacing
   | Write -> t.last_write_slot <- slot + spacing);
  slot + latency

let submit t op ~lba ~data =
  match t.vr with
  | None -> Error (Fault.Bad_setup "queue not set up")
  | Some vr ->
    if lba < 0 || lba >= t.capacity_blocks then
      Error (Fault.Lba_out_of_range { lba; capacity = t.capacity_blocks })
    else begin
      match Queue.take_opt t.free with
      | None -> Error Fault.Queue_full
      | Some slot ->
        let fail e =
          Queue.add slot t.free;
          note_error t e;
          Error e
        in
        (* header: type u32, reserved u32, sector u64 *)
        let hdr = Bytes.make header_bytes '\000' in
        Bytes.set_int32_le hdr 0 (Int32.of_int (match op with Read -> t_in | Write -> t_out));
        Bytes.set_int64_le hdr 8 (Int64.of_int lba);
        if not (Iommu.dma_write t.iommu ~device:t.device ~iova:(hdr_iova t slot) hdr) then
          fail (Fault.Dma_fault { iova = hdr_iova t slot; len = header_bytes })
        else begin
          let data_ok =
            match op, data with
            | Write, Some d -> Iommu.dma_write t.iommu ~device:t.device ~iova:(data_iova t slot) d
            | _ -> true
          in
          if not data_ok then
            fail (Fault.Dma_fault { iova = data_iova t slot; len = block_bytes })
          else begin
            let d0 = 3 * slot in
            let data_flags =
              Vring.flag_next lor (match op with Read -> Vring.flag_write | Write -> 0)
            in
            if
              Vring.write_desc vr ~slot:d0 ~addr:(hdr_iova t slot) ~len:header_bytes
                ~flags:Vring.flag_next ~next:(d0 + 1) ()
              && Vring.write_desc vr ~slot:(d0 + 1) ~addr:(data_iova t slot)
                   ~len:block_bytes ~flags:data_flags ~next:(d0 + 2) ()
              && Vring.write_desc vr ~slot:(d0 + 2) ~addr:(status_iova t slot) ~len:1
                   ~flags:Vring.flag_write ()
              && Vring.push_avail vr ~head:d0
            then begin
              let tag = t.next_tag in
              t.next_tag <- tag + 1;
              Hashtbl.replace t.inflight slot
                { i_tag = tag; i_op = op; i_lba = lba; i_submitted = Clock.now t.clock };
              Model.note_submit t.model 1;
              Model.on_op t.model;
              (* device pops the chain at the doorbell and schedules it *)
              (match Vring.device_pop_avail vr with
               | Some head when head = d0 ->
                 t.pending <-
                   t.pending @ [ { d_slot = slot; d_op = op; d_lba = lba; d_due = due_time t op } ]
               | _ ->
                 (* chain the device cannot parse: fail the request *)
                 Model.fault t.model Fault.Malformed_desc);
              if Obs.tracing () then begin
                let sid = Span.pair Span.Drv_submit in
                Obs.emit_drv_doorbell ~device:t.device ~queue:submission_queue ();
                Span.note_submit ~device:t.device ~tag ~span:sid
              end;
              Ok tag
            end
            else fail (Fault.Dma_fault { iova = hdr_iova t slot; len = header_bytes })
          end
        end
    end

let submit_read t ~lba = submit t Read ~lba ~data:None

let submit_write t ~lba ~data =
  if Bytes.length data <> block_bytes then
    Error (Fault.Bad_block_size { expected = block_bytes; got = Bytes.length data })
  else submit t Write ~lba ~data:(Some data)

(* Device side: execute one due request against the block store and
   push its used entry. *)
let execute t vr p =
  (match p.d_op with
   | Write ->
     (match Iommu.dma_read t.iommu ~device:t.device ~iova:(data_iova t p.d_slot) ~len:block_bytes with
      | Some d -> Hashtbl.replace t.blocks p.d_lba d
      | None -> ())
   | Read ->
     let d =
       match Hashtbl.find_opt t.blocks p.d_lba with
       | Some d -> Bytes.copy d
       | None -> Bytes.make block_bytes '\000'
     in
     ignore (Iommu.dma_write t.iommu ~device:t.device ~iova:(data_iova t p.d_slot) d));
  ignore
    (Iommu.dma_write t.iommu ~device:t.device ~iova:(status_iova t p.d_slot)
       (Bytes.make 1 '\000'));
  ignore (Vring.device_push_used vr ~id:(3 * p.d_slot) ~len:block_bytes);
  Model.note_deliver t.model 1

let poll t =
  match t.vr with
  | None -> []
  | Some vr ->
    if Model.pending_irqs t.model > 0 then Model.ack_irqs t.model;
    let now = Clock.now t.clock in
    let due, still = List.partition (fun p -> p.d_due <= now) t.pending in
    t.pending <- still;
    (* device side: execute due requests, with hostile glitches;
       reorder defers a completion past the rest of the batch *)
    let deferred = ref [] in
    List.iter
      (fun p ->
        match
          Model.inject t.model ~site:"virtio-blk.cq"
            [ Fault.Malformed_desc; Fault.Duplicate_completion;
              Fault.Reorder_completion; Fault.Spurious_irq; Fault.Irq_storm;
              Fault.Dma_escape ]
        with
        | None -> execute t vr p
        | Some Fault.Malformed_desc ->
          (* an extra used entry naming a descriptor that was never
             submitted, then the real completion *)
          ignore (Vring.device_push_used vr ~id:((3 * t.depth) + 5) ~len:0);
          execute t vr p
        | Some Fault.Duplicate_completion ->
          execute t vr p;
          Model.note_dup t.model;
          ignore (Vring.device_push_used vr ~id:(3 * p.d_slot) ~len:block_bytes)
        | Some Fault.Reorder_completion -> deferred := p :: !deferred
        | Some Fault.Spurious_irq ->
          Model.raise_irq t.model;
          Model.recovered t.model Fault.Spurious_irq;
          execute t vr p
        | Some Fault.Irq_storm ->
          for _ = 0 to Model.storm_threshold + 7 do
            Model.raise_irq t.model
          done;
          Model.recovered t.model Fault.Irq_storm;
          execute t vr p
        | Some Fault.Dma_escape ->
          (* a stray copy aimed outside the window, then the real op *)
          let blocked =
            not
              (Iommu.dma_write t.iommu ~device:t.device ~iova:escape_iova
                 (Bytes.make 8 '\000'))
          in
          Model.note_escape t.model ~blocked;
          if blocked then Model.recovered t.model Fault.Dma_escape;
          execute t vr p
        | Some (Fault.Short_desc as f) ->
          Model.recovered t.model f;
          execute t vr p)
      due;
    if !deferred <> [] then begin
      List.iter (execute t vr) (List.rev !deferred);
      Model.recovered t.model Fault.Reorder_completion
    end;
    (* driver side: drain the used ring, accept only in-flight chains *)
    let rec drain acc =
      match Vring.poll_used vr with
      | None -> List.rev acc
      | Some (id, _len) ->
        if id < 0 || id >= 3 * t.depth || id mod 3 <> 0 then begin
          note_error t (Fault.Malformed { slot = id; detail = "used id out of range" });
          Model.recovered t.model Fault.Malformed_desc;
          drain acc
        end
        else begin
          let slot = id / 3 in
          match Hashtbl.find_opt t.inflight slot with
          | None ->
            note_error t (Fault.Duplicate { tag = slot });
            Model.recovered t.model Fault.Duplicate_completion;
            drain acc
          | Some i ->
            Hashtbl.remove t.inflight slot;
            Queue.add slot t.free;
            let status =
              match
                Iommu.dma_read t.iommu ~device:t.device ~iova:(status_iova t slot) ~len:1
              with
              | Some b -> Bytes.get_uint8 b 0
              | None -> 0xff
            in
            let data =
              match i.i_op with
              | Read ->
                (match
                   Iommu.dma_read t.iommu ~device:t.device ~iova:(data_iova t slot)
                     ~len:block_bytes
                 with
                 | Some d -> Some d
                 | None -> None)
              | Write -> None
            in
            Model.note_harvest t.model 1;
            if Obs.tracing () then begin
              Atmo_obs.Metrics.observe "lat/nvme_io" (now - i.i_submitted);
              let sid = Span.pair Span.Drv_complete in
              Span.edge Span.Drv ~src:(Span.take_submit ~device:t.device ~tag:i.i_tag)
                ~dst:sid
            end;
            drain
              ({ tag = i.i_tag; op = i.i_op; lba = i.i_lba; ok = status = 0; data } :: acc)
        end
    in
    let completions = drain [] in
    if completions <> [] && Obs.tracing () then
      Obs.emit_drv_completion ~device:t.device ~count:(List.length completions) ();
    completions

let wait_all t =
  match t.pending with
  | [] -> poll t
  | q ->
    let latest = List.fold_left (fun acc p -> max acc p.d_due) 0 q in
    let now = Clock.now t.clock in
    if latest > now then Clock.advance t.clock (latest - now);
    poll t

let read_block_direct t ~lba =
  match Hashtbl.find_opt t.blocks lba with
  | Some d -> Bytes.copy d
  | None -> Bytes.make block_bytes '\000'
