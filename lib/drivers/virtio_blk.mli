(** Virtio-blk device model over a split virtqueue.

    The second block backend behind the NVMe-shaped driver interface:
    submit reads/writes of 4 KiB blocks, poll completions.  Each request
    is a classic three-descriptor chain in guest memory — a 16-byte
    header (type, sector), the 4 KiB data buffer, and a one-byte status
    — all reached by IOTLB-mediated DMA, so the IOMMU window bounds
    every byte the device can touch.  The service-time model (latency +
    rate caps) is identical to {!Nvme}, so a workload sees the same
    virtual-clock timeline on either backend.

    [setup] must be called before the first submit: [ring_iova] names
    a region covering [Virtio_ring.layout ~qsz:(3 * queue_depth)]
    bytes, and [arena_iova] a region of [queue_depth * slot_bytes]
    bytes holding the per-request header/data/status blocks. *)

type op = Read | Write

type completion = {
  tag : int;
  op : op;
  lba : int;
  ok : bool;
  data : bytes option;  (** block contents for successful reads *)
}

type t

val block_bytes : int
val slot_bytes : int
(** Arena footprint of one in-flight request: header + block + status. *)

val create :
  Atmo_hw.Phys_mem.t ->
  Atmo_hw.Iommu.t ->
  device:int ->
  clock:Atmo_hw.Clock.t ->
  cost:Atmo_sim.Cost.t ->
  capacity_blocks:int ->
  t

val model : t -> Atmo_devmodel.Model.t
val set_hostile : t -> Atmo_devmodel.Hostile.t option -> unit
val errors : t -> Atmo_devmodel.Fault.error list
val error_count : t -> int

val capacity_blocks : t -> int
val queue_depth : t -> int
(** Outstanding (submitted, not yet harvested) requests. *)

val setup :
  t -> ring_iova:int -> arena_iova:int -> depth:int -> (unit, Atmo_devmodel.Fault.error) result

val submit_read : t -> lba:int -> (int, Atmo_devmodel.Fault.error) result
val submit_write : t -> lba:int -> data:bytes -> (int, Atmo_devmodel.Fault.error) result

val poll : t -> completion list
(** Harvest completions due at the current clock.  Used-ring entries
    with invented or duplicated ids are dropped with a typed error. *)

val wait_all : t -> completion list
val read_block_direct : t -> lba:int -> bytes
