(** NVMe SSD model (PCIe-attached, P3700-class).

    Submission/completion queue pairs over a block store of 4 KiB
    blocks.  The device serves requests with a fixed per-op latency and
    rate caps taken from the {!Atmo_sim.Cost} calibration (§6.5.2's
    device maxima); completions become visible when the virtual clock
    passes their due time, so polling drivers and the benchmark see the
    same timing model the figures are computed from. *)

type op = Read | Write

type completion = {
  tag : int;
  op : op;
  lba : int;
  ok : bool;
  data : bytes option;  (** block contents for successful reads *)
}

type t

val block_bytes : int
val create : clock:Atmo_hw.Clock.t -> cost:Atmo_sim.Cost.t -> capacity_blocks:int -> t

val capacity_blocks : t -> int
val queue_depth : t -> int
(** Outstanding (submitted, not yet completed) requests. *)

val set_device : t -> int -> unit
(** Device id carried by the [Atmo_obs] doorbell/completion tracepoints
    (default 0). *)

val device : t -> int

val model : t -> Atmo_devmodel.Model.t
val set_hostile : t -> Atmo_devmodel.Hostile.t option -> unit

val errors : t -> Atmo_devmodel.Fault.error list
(** Typed errors the driver absorbed (bogus/duplicate completion tags),
    oldest first, capped. *)

val error_count : t -> int

val set_drop_completion_plant : t -> bool -> unit
(** Plant a driver bug for the sanitizer: the next valid completion is
    silently skipped, which [Atmo_san.Driver_lint] must report as
    [drv-lost-completion]. *)

val submit_read : t -> lba:int -> (int, Atmo_devmodel.Fault.error) result
(** Returns the tag; fails on out-of-range LBA or full queue. *)

val submit_write : t -> lba:int -> data:bytes -> (int, Atmo_devmodel.Fault.error) result
(** [data] must be exactly one block. *)

val poll : t -> completion list
(** Harvest completions due at the current clock, oldest first.  Only
    completions whose tag is actually outstanding are surfaced: a
    hostile controller's invented or duplicated tags are dropped with a
    typed error, and its interrupt glitches are acknowledged (storms
    are bounded by the auto-mask in the device model). *)

val wait_all : t -> completion list
(** Advance the clock to drain every outstanding request (benchmark
    convenience). *)

val read_block_direct : t -> lba:int -> bytes
(** Backdoor for tests: current contents of a block. *)
