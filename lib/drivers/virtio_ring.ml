let flag_next = 0x1
let flag_write = 0x2

let descriptor_bytes = 16

type dma = {
  read : iova:int -> len:int -> bytes option;
  write : iova:int -> bytes -> bool;
}

type t = {
  dma : dma;
  qsz : int;
  desc : int;
  avail : int;
  used : int;
  mutable avail_shadow : int;  (* driver: free-running published avail index *)
  mutable used_seen : int;  (* driver: used entries consumed *)
  mutable avail_seen : int;  (* device: avail entries consumed *)
  mutable used_shadow : int;  (* device: free-running published used index *)
}

let align4 n = (n + 3) land lnot 3

let layout ~qsz ~base =
  let desc = base in
  let avail = desc + (qsz * descriptor_bytes) in
  (* avail: flags u16, idx u16, ring u16[qsz] *)
  let used = align4 (avail + 4 + (2 * qsz)) in
  (* used: flags u16, idx u16, elems (id u32, len u32)[qsz] *)
  let total = used + 4 + (8 * qsz) - base in
  (desc, avail, used, total)

let create dma ~qsz ~desc ~avail ~used =
  if qsz <= 0 then invalid_arg "Virtio_ring.create: qsz <= 0";
  { dma; qsz; desc; avail; used; avail_shadow = 0; used_seen = 0; avail_seen = 0;
    used_shadow = 0 }

let qsz t = t.qsz

let read_u16 t iova =
  match t.dma.read ~iova ~len:2 with
  | None -> None
  | Some b -> Some (Bytes.get_uint16_le b 0)

let write_u16 t iova v =
  let b = Bytes.create 2 in
  Bytes.set_uint16_le b 0 (v land 0xffff);
  t.dma.write ~iova b

let desc_iova t slot = t.desc + (slot * descriptor_bytes)

let write_desc t ~slot ~addr ~len ?(flags = 0) ?(next = 0) () =
  if slot < 0 || slot >= t.qsz then false
  else begin
    let b = Bytes.make descriptor_bytes '\000' in
    Bytes.set_int64_le b 0 (Int64.of_int addr);
    Bytes.set_int32_le b 8 (Int32.of_int len);
    Bytes.set_uint16_le b 12 flags;
    Bytes.set_uint16_le b 14 next;
    t.dma.write ~iova:(desc_iova t slot) b
  end

let read_desc t ~slot =
  if slot < 0 || slot >= t.qsz then None
  else
    match t.dma.read ~iova:(desc_iova t slot) ~len:descriptor_bytes with
    | None -> None
    | Some b ->
      Some
        ( Int64.to_int (Bytes.get_int64_le b 0),
          Int32.to_int (Bytes.get_int32_le b 8),
          Bytes.get_uint16_le b 12,
          Bytes.get_uint16_le b 14 )

let push_avail t ~head =
  let slot = t.avail_shadow mod t.qsz in
  if not (write_u16 t (t.avail + 4 + (2 * slot)) head) then false
  else begin
    t.avail_shadow <- t.avail_shadow + 1;
    write_u16 t (t.avail + 2) t.avail_shadow
  end

let device_pop_avail t =
  match read_u16 t (t.avail + 2) with
  | None -> None
  | Some idx ->
    if (idx - t.avail_seen) land 0xffff = 0 then None
    else begin
      let slot = t.avail_seen mod t.qsz in
      let head = read_u16 t (t.avail + 4 + (2 * slot)) in
      t.avail_seen <- t.avail_seen + 1;
      head
    end

let device_push_used t ~id ~len =
  let slot = t.used_shadow mod t.qsz in
  let b = Bytes.make 8 '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int id);
  Bytes.set_int32_le b 4 (Int32.of_int len);
  if not (t.dma.write ~iova:(t.used + 4 + (8 * slot)) b) then false
  else begin
    t.used_shadow <- t.used_shadow + 1;
    write_u16 t (t.used + 2) t.used_shadow
  end

let poll_used t =
  match read_u16 t (t.used + 2) with
  | None -> None
  | Some idx ->
    if (idx - t.used_seen) land 0xffff = 0 then None
    else begin
      let slot = t.used_seen mod t.qsz in
      t.used_seen <- t.used_seen + 1;
      match t.dma.read ~iova:(t.used + 4 + (8 * slot)) ~len:8 with
      | None -> None
      | Some b ->
        Some (Int32.to_int (Bytes.get_int32_le b 0), Int32.to_int (Bytes.get_int32_le b 4))
    end
