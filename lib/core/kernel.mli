(** The Atmosphere kernel: concrete state and system calls.

    Ties the substrates together — simulated physical memory, the page
    allocator, per-process page tables, the flat process manager, the
    IOMMU — and implements every system call of the paper's interface
    (§3): container/process/thread lifecycle with quota delegation,
    mmap/munmap at 4 KiB / 2 MiB / 1 GiB granularity, rendezvous IPC over
    endpoints with page and endpoint grants, yield, coarse-grained
    revocation by termination, and IOMMU device assignment.

    All system calls are atomic: a call that returns [Rerr _] leaves the
    abstract kernel state unchanged (partial multi-page operations roll
    back).  This is what makes the refinement specs of
    [Atmo_spec.Syscall_spec] checkable clause by clause.

    The kernel runs under a model of the paper's big lock: system calls
    execute to completion, one at a time. *)

type device_info = {
  owner_proc : int;
  owner_container : int;  (** container the IOMMU pages are charged to *)
  io_pt : Atmo_pt.Page_table.t;  (** the device's own IOMMU page table *)
  irq_endpoint : int option;  (** interrupt routing target *)
  irq_pending : int;  (** interrupts raised with no receiver waiting *)
}

type t = {
  mem : Atmo_hw.Phys_mem.t;
  alloc : Atmo_pmem.Page_alloc.t;
  pm : Atmo_pm.Proc_mgr.t;
  iommu : Atmo_hw.Iommu.t;
  mutable devices : device_info Atmo_util.Imap.t;
  mutable irq_backlog : int Atmo_util.Imap.t;
      (** cached endpoint -> pending-interrupt total across all routed
          devices; [recv] consults it instead of folding over every
          device ([Σ irq_pending] per routed endpoint, absent = 0) *)
}

type boot_params = {
  frames : int;  (** physical frames in the machine *)
  reserved_frames : int;  (** boot image / trusted boot environment outside the allocator *)
  root_quota : int;  (** frames the root container may consume *)
  cpus : Atmo_util.Iset.t;
}

val default_boot : boot_params
(** 16 MiB machine, 16 reserved frames, everything delegated to root. *)

val boot : boot_params -> (t * int, Atmo_util.Errno.t) result
(** Bring the system up: root container, init process, init thread
    (returned, already current). *)

(** {2 System calls}

    Every call takes the invoking thread.  The thread must be alive and
    not blocked; arbitrary values are accepted (and rejected with
    [Rerr]), as the noninterference theorem requires. *)

val step : t -> thread:int -> Atmo_spec.Syscall.t -> Atmo_spec.Syscall.ret
(** Uniform dispatcher over all system calls. *)

val set_step_observer : (t -> thread:int -> entering:bool -> unit) option -> unit
(** Process-global bracket around every {!step} (called with
    [~entering:true] before dispatch, [~entering:false] after, even on
    exceptions).  Used by atmo_san to attribute physical-memory accesses
    to the executing thread's container; one bool load per step when not
    installed. *)

val sys_mmap :
  t -> thread:int -> va:int -> count:int -> size:Atmo_pmem.Page_state.size ->
  perm:Atmo_hw.Pte_bits.perm -> Atmo_spec.Syscall.ret

val sys_munmap :
  t -> thread:int -> va:int -> count:int -> size:Atmo_pmem.Page_state.size ->
  Atmo_spec.Syscall.ret

val sys_mprotect : t -> thread:int -> va:int -> perm:Atmo_hw.Pte_bits.perm -> Atmo_spec.Syscall.ret
val sys_new_container : t -> thread:int -> quota:int -> cpus:Atmo_util.Iset.t -> Atmo_spec.Syscall.ret
val sys_new_process : t -> thread:int -> Atmo_spec.Syscall.ret
val sys_new_thread : t -> thread:int -> Atmo_spec.Syscall.ret
val sys_new_endpoint : t -> thread:int -> slot:int -> Atmo_spec.Syscall.ret
val sys_close_endpoint : t -> thread:int -> slot:int -> Atmo_spec.Syscall.ret
val sys_send : t -> thread:int -> slot:int -> msg:Atmo_pm.Message.t -> Atmo_spec.Syscall.ret
val sys_recv : t -> thread:int -> slot:int -> Atmo_spec.Syscall.ret
val sys_send_nb : t -> thread:int -> slot:int -> msg:Atmo_pm.Message.t -> Atmo_spec.Syscall.ret
val sys_recv_nb : t -> thread:int -> slot:int -> Atmo_spec.Syscall.ret
val sys_recv_reject : t -> thread:int -> slot:int -> Atmo_spec.Syscall.ret
val sys_yield : t -> thread:int -> Atmo_spec.Syscall.ret
val sys_terminate_container : t -> thread:int -> container:int -> Atmo_spec.Syscall.ret
val sys_terminate_process : t -> thread:int -> proc:int -> Atmo_spec.Syscall.ret
val sys_assign_device : t -> thread:int -> device:int -> Atmo_spec.Syscall.ret
(** Create a dedicated IOMMU page table for the device (charged to the
    caller's container) and attach the device to it.  The device starts
    with an empty DMA window. *)

val sys_io_map : t -> thread:int -> device:int -> iova:int -> va:int -> Atmo_spec.Syscall.ret
(** Expose the 4 KiB frame backing [va] in the caller's address space to
    the device at I/O virtual address [iova] (shares the frame:
    reference counted like an IPC page grant). *)

val sys_io_unmap : t -> thread:int -> device:int -> iova:int -> Atmo_spec.Syscall.ret

val sys_register_irq : t -> thread:int -> device:int -> slot:int -> Atmo_spec.Syscall.ret
(** Route the device's interrupt to the endpoint held in the caller's
    descriptor slot; only the device owner may register, once. *)

val irq_fire : t -> device:int -> Atmo_spec.Syscall.ret
(** Hardware entry: the device raised its interrupt.  Delivered as a
    one-scalar message to a receiver waiting on the routed endpoint, or
    counted pending (picked up by the next receive); spurious interrupts
    (unassigned or unrouted device) are dropped. *)

(** {2 IPC fastpath} *)

val set_fastpath : bool -> unit
(** Enable/disable the direct-switch IPC fastpath (process-global; on by
    default).  With the fastpath off every rendezvous goes through the
    generic scheduler machinery; the resulting kernel state is
    bit-identical either way — the oracle test in [test_fastpath]
    replays random workloads under both settings and compares. *)

val fastpath_enabled : unit -> bool

val set_fastpath_skip_plant : bool -> unit
(** Sanitizer plant ([atmo san --plant fastpath-skip]): make the
    fastpath forget to requeue the preempted caller, leaving a Runnable
    thread queued nowhere.  Only the scheduler-coherence lint should
    ever see this on. *)

val set_span_leak_plant : bool -> unit
(** Sanitizer plant ([atmo san --plant span-leak]): open the rendezvous
    span on the IPC slowpath and never close it.  Only the span-balance
    lint should ever see this on. *)

val add_device_hook : key:string -> (op:string -> unit) -> unit
(** Process-global observer of device-table / IRQ-backlog mutations
    (keyed registry; one bool load per change when nothing is
    installed).  Used by the incremental verifier's dirty tracker. *)

val remove_device_hook : key:string -> unit

val device_mutation_count : unit -> int
(** Intrinsic count of device-table mutations across every kernel
    instance; always on.  Audited by atmo_san's [stale-proof] lint. *)

val irq_backlog_of : t -> ep:int -> int
(** Pending interrupts routed to [ep] (the cached total; invariants
    recompute it from the device table). *)

(** {2 Helpers for harnesses and applications} *)

val take_delivered : t -> thread:int -> Atmo_pm.Message.t option
(** Message delivered to a thread woken from a blocked receive (read
    without clearing; it is replaced on the thread's next receive). *)

val thread_alive : t -> thread:int -> bool
val proc_of_thread : t -> thread:int -> int option
val container_of_thread : t -> thread:int -> int option

val resolve_user : t -> thread:int -> vaddr:int -> Atmo_hw.Mmu.translation option
(** Resolve a virtual address through the calling thread's address
    space — what the thread's loads/stores would do on hardware. *)
