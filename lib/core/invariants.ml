open Atmo_util
module Page_alloc = Atmo_pmem.Page_alloc
module Page_state = Atmo_pmem.Page_state
module Page_table = Atmo_pt.Page_table
module Pt_refine = Atmo_pt.Pt_refine
module Proc_mgr = Atmo_pm.Proc_mgr
module Perm_map = Atmo_pm.Perm_map
module Process = Atmo_pm.Process
module Pm_invariants = Atmo_pm.Pm_invariants
module Iommu = Atmo_hw.Iommu

let err fmt = Format.kasprintf (fun s -> Error s) fmt
let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let allocator_wf (k : Kernel.t) = Page_alloc.wf k.Kernel.alloc
let pm_wf (k : Kernel.t) = Pm_invariants.all k.Kernel.pm

let page_tables_wf (k : Kernel.t) =
  Perm_map.fold
    (fun ptr (p : Process.t) acc ->
      let* () = acc in
      match Pt_refine.all p.Process.pt with
      | Ok () -> Ok ()
      | Error msg -> err "page table of process 0x%x: %s" ptr msg)
    k.Kernel.pm.Proc_mgr.proc_perms (Ok ())

(* The page closures whose pairwise disjointness constitutes type
   safety: one singleton per kernel object page, one closure per page
   table. *)
let closures (k : Kernel.t) =
  let pm = k.Kernel.pm in
  let singles dom = Iset.fold (fun p acc -> Iset.singleton p :: acc) dom [] in
  let pt_closures =
    Perm_map.fold
      (fun _ (p : Process.t) acc -> Page_table.page_closure p.Process.pt :: acc)
      pm.Proc_mgr.proc_perms []
  in
  let io_closures =
    Imap.fold
      (fun _ (d : Kernel.device_info) acc ->
        Page_table.page_closure d.Kernel.io_pt :: acc)
      k.Kernel.devices []
  in
  singles (Perm_map.dom pm.Proc_mgr.cntr_perms)
  @ singles (Perm_map.dom pm.Proc_mgr.proc_perms)
  @ singles (Perm_map.dom pm.Proc_mgr.thrd_perms)
  @ singles (Perm_map.dom pm.Proc_mgr.edpt_perms)
  @ pt_closures @ io_closures

let closures_disjoint (k : Kernel.t) =
  if Iset.pairwise_disjoint (closures k) then Ok ()
  else err "two kernel objects share a page"

let leak_freedom (k : Kernel.t) =
  let owned = Iset.union_list (closures k) in
  let allocated = Page_alloc.allocated_pages k.Kernel.alloc in
  if Iset.equal owned allocated then Ok ()
  else
    let leaked = Iset.diff allocated owned in
    let phantom = Iset.diff owned allocated in
    (match (Iset.choose_opt leaked, Iset.choose_opt phantom) with
     | Some p, _ -> err "leak: page 0x%x allocated but owned by nothing" p
     | None, Some p -> err "phantom: page 0x%x owned but not allocated" p
     | None, None -> Ok ())

let mapped_consistent (k : Kernel.t) =
  let pm = k.Kernel.pm in
  (* count (space, va) references per frame across all process address
     spaces and all device DMA windows *)
  let refs = Hashtbl.create 64 in
  let count space =
    Imap.iter
      (fun _va (e : Page_table.entry) ->
        Hashtbl.replace refs e.Page_table.frame
          (1 + Option.value ~default:0 (Hashtbl.find_opt refs e.Page_table.frame)))
      space
  in
  Perm_map.iter
    (fun _ (p : Process.t) -> count (Page_table.address_space p.Process.pt))
    pm.Proc_mgr.proc_perms;
  Imap.iter
    (fun _ (d : Kernel.device_info) -> count (Page_table.address_space d.Kernel.io_pt))
    k.Kernel.devices;
  let union_mapped =
    Hashtbl.fold (fun f _ acc -> Iset.add f acc) refs Iset.empty
  in
  let alloc_mapped = Page_alloc.mapped_pages k.Kernel.alloc in
  let* () =
    if Iset.equal union_mapped alloc_mapped then Ok ()
    else
      (match Iset.choose_opt (Iset.diff alloc_mapped union_mapped) with
       | Some f -> err "frame 0x%x mapped in allocator but by no process" f
       | None ->
         (match Iset.choose_opt (Iset.diff union_mapped alloc_mapped) with
          | Some f -> err "frame 0x%x mapped by a process but not in allocator" f
          | None -> Ok ()))
  in
  Hashtbl.fold
    (fun frame n acc ->
      let* () = acc in
      match Page_alloc.ref_count k.Kernel.alloc ~addr:frame with
      | Some rc when rc = n -> Ok ()
      | Some rc -> err "frame 0x%x refcount %d but %d mappings" frame rc n
      | None -> err "frame 0x%x mapped but not in Mapped state" frame)
    refs (Ok ())

let devices_wf (k : Kernel.t) =
  let* () =
    Imap.fold
      (fun device (d : Kernel.device_info) acc ->
        let* () = acc in
        match
          Perm_map.borrow_opt k.Kernel.pm.Proc_mgr.proc_perms ~ptr:d.Kernel.owner_proc
        with
        | None ->
          err "device %d assigned to dead process 0x%x" device d.Kernel.owner_proc
        | Some p ->
          if p.Process.owner_container <> d.Kernel.owner_container then
            err "device %d charged to the wrong container" device
          else
            (match Iommu.domain_of k.Kernel.iommu ~device with
             | Some root when root = Page_table.cr3 d.Kernel.io_pt ->
               (* the IOMMU table itself satisfies all page-table
                  obligations, and DMA windows are 4 KiB-grained *)
               let* () =
                 match Pt_refine.all d.Kernel.io_pt with
                 | Ok () -> Ok ()
                 | Error m -> err "device %d IOMMU table: %s" device m
               in
               if
                 Imap.for_all
                   (fun _ (e : Page_table.entry) ->
                     e.Page_table.size = Atmo_pmem.Page_state.S4k)
                   (Page_table.address_space d.Kernel.io_pt)
               then Ok ()
               else err "device %d has a non-4K DMA mapping" device
             | Some root ->
               err "device %d IOMMU root 0x%x is not its table root" device root
             | None -> err "device %d assigned but not attached to the IOMMU" device))
      k.Kernel.devices (Ok ())
  in
  (* interrupt routing: the target endpoint is alive, pending counts are
     sane, and interrupts never pend while a receiver is waiting *)
  let* () =
    Imap.fold
      (fun device (d : Kernel.device_info) acc ->
        let* () = acc in
        if d.Kernel.irq_pending < 0 then err "device %d negative irq pending" device
        else
          match d.Kernel.irq_endpoint with
          | None ->
            if d.Kernel.irq_pending = 0 then Ok ()
            else err "device %d pends interrupts with no route" device
          | Some ep ->
            (match Perm_map.borrow_opt k.Kernel.pm.Proc_mgr.edpt_perms ~ptr:ep with
             | None -> err "device %d routed to dead endpoint 0x%x" device ep
             | Some e ->
               if
                 d.Kernel.irq_pending > 0
                 && not (Atmo_pm.Static_list.is_empty e.Atmo_pm.Endpoint.recv_queue)
               then err "device %d pends interrupts past a waiting receiver" device
               else Ok ()))
      k.Kernel.devices (Ok ())
  in
  (* external-charge ground truth: per container, the recorded external
     frames equal the IOMMU tables + DMA-window shares of its devices *)
  let expected = Hashtbl.create 8 in
  Imap.iter
    (fun _ (d : Kernel.device_info) ->
      let c = d.Kernel.owner_container in
      let n =
        Iset.cardinal (Page_table.page_closure d.Kernel.io_pt)
        + Imap.cardinal (Page_table.address_space d.Kernel.io_pt)
      in
      Hashtbl.replace expected c (n + Option.value ~default:0 (Hashtbl.find_opt expected c)))
    k.Kernel.devices;
  Perm_map.fold
    (fun c _ acc ->
      let* () = acc in
      let want = Option.value ~default:0 (Hashtbl.find_opt expected c) in
      let got = Proc_mgr.external_of k.Kernel.pm ~container:c in
      if want = got then Ok ()
      else err "container 0x%x external charge %d but devices account for %d" c got want)
    k.Kernel.pm.Proc_mgr.cntr_perms (Ok ())

(* The cached per-endpoint interrupt backlog must equal the ground
   truth recomputed from the device table (absent key = 0). *)
let irq_backlog_wf (k : Kernel.t) =
  let truth =
    Imap.fold
      (fun _ (d : Kernel.device_info) acc ->
        match d.Kernel.irq_endpoint with
        | Some ep when d.Kernel.irq_pending > 0 ->
          Imap.add ep
            (d.Kernel.irq_pending + Option.value ~default:0 (Imap.find_opt ep acc))
            acc
        | Some _ | None -> acc)
      k.Kernel.devices Imap.empty
  in
  if Imap.equal Int.equal truth k.Kernel.irq_backlog then Ok ()
  else err "irq backlog cache diverged from the device table"

let obligations =
  [
    ("kernel/allocator_wf", allocator_wf);
    ("kernel/pm_wf", pm_wf);
    ("kernel/page_tables_wf", page_tables_wf);
    ("kernel/closures_disjoint", closures_disjoint);
    ("kernel/leak_freedom", leak_freedom);
    ("kernel/mapped_consistent", mapped_consistent);
    ("kernel/devices_wf", devices_wf);
    ("kernel/irq_backlog_wf", irq_backlog_wf);
  ]

let total_wf k =
  List.fold_left
    (fun acc (_, check) ->
      let* () = acc in
      check k)
    (Ok ()) obligations
