(** [total_wf]: the kernel-wide well-formedness invariant (§4.2).

    Composes every subsystem's invariant with the cross-cutting memory
    obligations the paper proves bottom-up: pairwise disjointness of the
    page closures of all subsystems (safety: every allocated page is
    used by exactly one object of one type) and leak freedom (the union
    of all page closures equals the allocator's set of allocated pages;
    the union of all mapped frames equals the allocator's mapped set,
    with matching reference counts). *)

val allocator_wf : Kernel.t -> (unit, string) result
(** The page allocator's own invariant ({!Atmo_pmem.Page_alloc.wf}). *)

val pm_wf : Kernel.t -> (unit, string) result
(** Process-manager invariants ({!Atmo_pm.Pm_invariants.all}). *)

val page_tables_wf : Kernel.t -> (unit, string) result
(** Flat page-table obligations of every process
    ({!Atmo_pt.Pt_refine.all}). *)

val closures_disjoint : Kernel.t -> (unit, string) result
(** Type safety of memory: object pages of the four kinds and the page
    closures of every page table are pairwise disjoint. *)

val leak_freedom : Kernel.t -> (unit, string) result
(** Union of all page closures = the allocator's allocated set: no page
    is lost, none is used without being allocated. *)

val mapped_consistent : Kernel.t -> (unit, string) result
(** The allocator's mapped set equals the union of frames mapped by all
    address spaces, and each frame's reference count equals the number
    of (process, vaddr) mappings naming it. *)

val devices_wf : Kernel.t -> (unit, string) result
(** Every assigned device belongs to a live process and its IOMMU
    domain root is that process's page-table root. *)

val irq_backlog_wf : Kernel.t -> (unit, string) result
(** The cached per-endpoint interrupt backlog equals the ground truth
    recomputed from the device table. *)

val total_wf : Kernel.t -> (unit, string) result
val obligations : (string * (Kernel.t -> (unit, string) result)) list
