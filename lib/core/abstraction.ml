open Atmo_util
module A = Atmo_spec.Abstract_state
module Page_alloc = Atmo_pmem.Page_alloc
module Page_table = Atmo_pt.Page_table
module Proc_mgr = Atmo_pm.Proc_mgr
module Perm_map = Atmo_pm.Perm_map
module Container = Atmo_pm.Container
module Process = Atmo_pm.Process
module Thread = Atmo_pm.Thread
module Endpoint = Atmo_pm.Endpoint
module Static_list = Atmo_pm.Static_list

let abstract_container (c : Container.t) : A.acontainer =
  {
    A.ac_parent = c.Container.parent;
    ac_children = Static_list.to_list c.Container.children;
    ac_procs = Static_list.to_list c.Container.procs;
    ac_quota = c.Container.quota;
    ac_used = c.Container.used;
    ac_delegated = c.Container.delegated;
    ac_cpus = c.Container.cpus;
    ac_depth = c.Container.depth;
    ac_path = c.Container.path;
    ac_subtree = c.Container.subtree;
  }

let abstract_proc (p : Process.t) : A.aproc =
  {
    A.ap_owner_container = p.Process.owner_container;
    ap_parent = p.Process.parent;
    ap_children = Static_list.to_list p.Process.children;
    ap_threads = Static_list.to_list p.Process.threads;
    ap_space = Page_table.address_space p.Process.pt;
    ap_pt_pages = Page_table.page_closure p.Process.pt;
  }

let abstract_thread (th : Thread.t) : A.athread =
  {
    A.at_owner_proc = th.Thread.owner_proc;
    at_state = th.Thread.state;
    at_slots = Thread.slots th;
    at_msg = th.Thread.msg_buf;
  }

let abstract_endpoint (e : Endpoint.t) : A.aendpoint =
  {
    A.ae_owner_container = e.Endpoint.owner_container;
    ae_send_queue = Static_list.to_list e.Endpoint.send_queue;
    ae_recv_queue = Static_list.to_list e.Endpoint.recv_queue;
    ae_refcount = e.Endpoint.refcount;
  }

let of_perm_map f m = Perm_map.fold (fun ptr v acc -> Imap.add ptr (f v) acc) m Imap.empty

let abstract (k : Kernel.t) : A.t =
  let pm = k.Kernel.pm in
  {
    A.containers = of_perm_map abstract_container pm.Proc_mgr.cntr_perms;
    procs = of_perm_map abstract_proc pm.Proc_mgr.proc_perms;
    threads = of_perm_map abstract_thread pm.Proc_mgr.thrd_perms;
    endpoints = of_perm_map abstract_endpoint pm.Proc_mgr.edpt_perms;
    root = pm.Proc_mgr.root_container;
    run_queue = Proc_mgr.run_queue_list pm;
    current = Proc_mgr.current pm;
    free_4k = Page_alloc.free_pages_4k k.Kernel.alloc;
    free_2m = Page_alloc.free_pages_2m k.Kernel.alloc;
    free_1g = Page_alloc.free_pages_1g k.Kernel.alloc;
    allocated = Page_alloc.allocated_pages k.Kernel.alloc;
    mapped = Page_alloc.mapped_pages k.Kernel.alloc;
    merged = Page_alloc.merged_pages k.Kernel.alloc;
    devices =
      Imap.map
        (fun (d : Kernel.device_info) ->
          {
            A.ad_owner_proc = d.Kernel.owner_proc;
            ad_io_space = Page_table.address_space d.Kernel.io_pt;
            ad_pt_pages = Page_table.page_closure d.Kernel.io_pt;
            ad_irq_endpoint = d.Kernel.irq_endpoint;
            ad_irq_pending = d.Kernel.irq_pending;
          })
        k.Kernel.devices;
  }
