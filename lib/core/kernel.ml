open Atmo_util
module Phys_mem = Atmo_hw.Phys_mem
module Mmu = Atmo_hw.Mmu
module Iommu = Atmo_hw.Iommu
module Page_state = Atmo_pmem.Page_state
module Page_alloc = Atmo_pmem.Page_alloc
module Page_table = Atmo_pt.Page_table
module Proc_mgr = Atmo_pm.Proc_mgr
module Sched_queue = Atmo_pm.Sched_queue
module Perm_map = Atmo_pm.Perm_map
module Container = Atmo_pm.Container
module Process = Atmo_pm.Process
module Thread = Atmo_pm.Thread
module Endpoint = Atmo_pm.Endpoint
module Message = Atmo_pm.Message
module Static_list = Atmo_pm.Static_list
module Kconfig = Atmo_pm.Kconfig
module Syscall = Atmo_spec.Syscall
module Obs = Atmo_obs.Sink
module Event = Atmo_obs.Event
module Span = Atmo_obs.Span

type device_info = {
  owner_proc : int;
  owner_container : int;
  io_pt : Page_table.t;
  irq_endpoint : int option;
  irq_pending : int;
}

type t = {
  mem : Phys_mem.t;
  alloc : Page_alloc.t;
  pm : Proc_mgr.t;
  iommu : Iommu.t;
  mutable devices : device_info Imap.t;
  mutable irq_backlog : int Imap.t;
      (* endpoint -> total pending interrupts across all devices routed
         to it; lets recv skip the device-table walk when nothing pends *)
}

type boot_params = {
  frames : int;
  reserved_frames : int;
  root_quota : int;
  cpus : Iset.t;
}

let default_boot =
  {
    frames = 4096;
    reserved_frames = 16;
    root_quota = 4000;
    cpus = Iset.of_range ~lo:0 ~hi:4;
  }

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let boot params =
  let mem = Phys_mem.create ~page_count:params.frames in
  let alloc = Page_alloc.create mem ~reserved_frames:params.reserved_frames in
  let* pm = Proc_mgr.create mem alloc ~root_quota:params.root_quota ~cpus:params.cpus in
  let t =
    { mem; alloc; pm; iommu = Iommu.create mem; devices = Imap.empty;
      irq_backlog = Imap.empty }
  in
  let* init_proc =
    Proc_mgr.new_process pm ~container:pm.Proc_mgr.root_container ~parent:None
  in
  let* init_thread = Proc_mgr.new_thread pm ~proc:init_proc in
  ignore (Proc_mgr.dequeue_next pm);
  Ok (t, init_thread)

(* Device-table mutation observer for the incremental verifier: fires
   whenever [t.devices] or the per-endpoint IRQ backlog cache changes
   (the adjacent IOMMU attach/detach and io_pt teardown are covered by
   the page-table layer's own hook).  Keyed registry + always-on
   intrinsic counter, same discipline as Perm_map/Page_alloc. *)
let dev_hook_armed = ref false
let dev_hooks : (string * (op:string -> unit)) list ref = ref []

let add_device_hook ~key f =
  dev_hooks := (key, f) :: List.remove_assoc key !dev_hooks;
  dev_hook_armed := true

let remove_device_hook ~key =
  dev_hooks := List.remove_assoc key !dev_hooks;
  dev_hook_armed := !dev_hooks <> []

let dev_muts = Atomic.make 0
let device_mutation_count () = Atomic.get dev_muts

let note_dev ~op =
  Atomic.incr dev_muts;
  if !dev_hook_armed then List.iter (fun (_, f) -> f ~op) !dev_hooks

(* Endpoint-freeing paths must clear stale interrupt routes; the sweep
   itself is defined with the interrupt machinery below. *)
let sweep_irqs_ref : (t -> unit) ref = ref (fun _ -> ())
let sweep_irqs_hook t = !sweep_irqs_ref t

(* ------------------------------------------------------------------ *)
(* Per-endpoint interrupt backlog                                      *)

let irq_backlog_of t ~ep = Option.value ~default:0 (Imap.find_opt ep t.irq_backlog)

let irq_backlog_add t ~ep n =
  if n <> 0 then begin
    let v = irq_backlog_of t ~ep + n in
    t.irq_backlog <-
      (if v <= 0 then Imap.remove ep t.irq_backlog else Imap.add ep v t.irq_backlog);
    note_dev ~op:"irq-backlog"
  end

(* ------------------------------------------------------------------ *)
(* Common validation                                                   *)

let err e = Syscall.Rerr e

(* Every syscall starts here: the invoking thread must exist and must
   not be blocked inside the kernel (a blocked thread is not running
   user code, so it cannot trap). *)
let calling_thread t ~thread =
  match Perm_map.borrow_opt t.pm.Proc_mgr.thrd_perms ~ptr:thread with
  | None -> Error Errno.Esrch
  | Some th ->
    (match th.Thread.state with
     | Thread.Blocked_send _ | Thread.Blocked_recv _ -> Error Errno.Eperm
     | Thread.Running | Thread.Runnable -> Ok th)

let proc_of_thread t ~thread =
  Option.map
    (fun th -> th.Thread.owner_proc)
    (Perm_map.borrow_opt t.pm.Proc_mgr.thrd_perms ~ptr:thread)

let container_of_thread t ~thread =
  match proc_of_thread t ~thread with
  | None -> None
  | Some proc ->
    Option.map
      (fun p -> p.Process.owner_container)
      (Perm_map.borrow_opt t.pm.Proc_mgr.proc_perms ~ptr:proc)

let thread_alive t ~thread = Perm_map.mem t.pm.Proc_mgr.thrd_perms ~ptr:thread

let take_delivered t ~thread =
  match Perm_map.borrow_opt t.pm.Proc_mgr.thrd_perms ~ptr:thread with
  | None -> None
  | Some th -> th.Thread.msg_buf

let resolve_user t ~thread ~vaddr =
  match proc_of_thread t ~thread with
  | None -> None
  | Some proc ->
    let p = Perm_map.borrow t.pm.Proc_mgr.proc_perms ~ptr:proc in
    Page_table.resolve p.Process.pt ~vaddr

(* ------------------------------------------------------------------ *)
(* Memory system calls                                                 *)

let range_ok va count size =
  let bytes = Page_state.bytes_per size in
  count >= 1 && count <= 512
  && va land (bytes - 1) = 0
  && Mmu.canonical va
  && Mmu.canonical (va + (count * bytes) - 1)
  && (va >= 0) = (va + (count * bytes) - 1 >= 0)

let alloc_block t (size : Page_state.size) =
  match size with
  | Page_state.S4k -> Page_alloc.alloc_4k t.alloc ~purpose:Page_alloc.User
  | Page_state.S2m -> Page_alloc.alloc_2m t.alloc ~purpose:Page_alloc.User
  | Page_state.S1g -> Page_alloc.alloc_1g t.alloc ~purpose:Page_alloc.User

let map_block pt ~vaddr ~frame ~perm (size : Page_state.size) =
  match size with
  | Page_state.S4k -> Page_table.map_4k pt ~vaddr ~frame ~perm
  | Page_state.S2m -> Page_table.map_2m pt ~vaddr ~frame ~perm
  | Page_state.S1g -> Page_table.map_1g pt ~vaddr ~frame ~perm

let sys_mmap t ~thread ~va ~count ~size ~perm =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    if not (range_ok va count size) then err Errno.Einval
    else begin
      let proc = th.Thread.owner_proc in
      let p = Perm_map.borrow t.pm.Proc_mgr.proc_perms ~ptr:proc in
      let container = p.Process.owner_container in
      let pt = p.Process.pt in
      let bytes = Page_state.bytes_per size in
      let vaddrs = List.init count (fun i -> va + (i * bytes)) in
      (* Refuse overlapping requests up front so the loop cannot fail on
         Already_mapped after partial progress. *)
      let space = Page_table.address_space pt in
      let overlap =
        List.exists
          (fun v ->
            Imap.exists
              (fun base (e : Page_table.entry) ->
                let blen = Page_state.bytes_per e.Page_table.size in
                v < base + blen && base < v + bytes)
              space)
          vaddrs
      in
      if overlap then err Errno.Eexist
      else begin
        let n_tables =
          Page_table.missing_tables pt ~vaddrs:(List.map (fun v -> (v, size)) vaddrs)
        in
        let fp = Page_state.frames_per size in
        let need = (count * fp) + n_tables in
        match Proc_mgr.charge t.pm ~container ~frames:need with
        | Error e -> err e
        | Ok () ->
          let keep = Page_table.page_closure pt in
          let rec rollback mapped =
            List.iter
              (fun v ->
                match Page_table.unmap pt ~vaddr:v with
                | Ok e -> ignore (Page_alloc.dec_ref t.alloc ~addr:e.Page_table.frame)
                | Error _ -> assert false)
              mapped;
            ignore (Page_table.prune_empty_tables pt ~keep);
            Proc_mgr.uncharge t.pm ~container ~frames:need
          and go acc = function
            | [] -> Ok (List.rev acc)
            | v :: rest ->
              (match alloc_block t size with
               | None ->
                 rollback acc;
                 Error Errno.Enomem
               | Some frame ->
                 (match map_block pt ~vaddr:v ~frame ~perm size with
                  | Ok () -> go (v :: acc) rest
                  | Error Page_table.Oom ->
                    ignore (Page_alloc.dec_ref t.alloc ~addr:frame);
                    rollback acc;
                    Error Errno.Enomem
                  | Error _ ->
                    ignore (Page_alloc.dec_ref t.alloc ~addr:frame);
                    rollback acc;
                    Error Errno.Einval))
          in
          (match go [] vaddrs with
           | Error e -> err e
           | Ok mapped_vas ->
             (* The dry run must have predicted the table growth exactly;
                anything else is a kernel bug. *)
             assert (
               Iset.cardinal (Page_table.page_closure pt) - Iset.cardinal keep
               = n_tables);
             let frames =
               List.map
                 (fun v -> (Imap.find v (Page_table.address_space pt)).Page_table.frame)
                 mapped_vas
             in
             Syscall.Rmapped frames)
      end
    end

let sys_munmap t ~thread ~va ~count ~size =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    if not (range_ok va count size) then err Errno.Einval
    else begin
      let proc = th.Thread.owner_proc in
      let p = Perm_map.borrow t.pm.Proc_mgr.proc_perms ~ptr:proc in
      let container = p.Process.owner_container in
      let pt = p.Process.pt in
      let bytes = Page_state.bytes_per size in
      let vaddrs = List.init count (fun i -> va + (i * bytes)) in
      let space = Page_table.address_space pt in
      (* Validate the whole range first: each base must carry a mapping
         of exactly the requested size, so the unmapping loop below is
         infallible and the call stays atomic. *)
      let valid =
        List.for_all
          (fun v ->
            match Imap.find_opt v space with
            | Some e -> Page_state.equal_size e.Page_table.size size
            | None -> false)
          vaddrs
      in
      if not valid then err Errno.Einval
      else begin
        List.iter
          (fun v ->
            match Page_table.unmap pt ~vaddr:v with
            | Ok e -> ignore (Page_alloc.dec_ref t.alloc ~addr:e.Page_table.frame)
            | Error _ -> assert false)
          vaddrs;
        Proc_mgr.uncharge t.pm ~container ~frames:(count * Page_state.frames_per size);
        Syscall.Runit
      end
    end

let sys_mprotect t ~thread ~va ~perm =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    let proc = th.Thread.owner_proc in
    let p = Perm_map.borrow t.pm.Proc_mgr.proc_perms ~ptr:proc in
    (match Page_table.update_perm p.Process.pt ~vaddr:va ~perm with
     | Ok () -> Syscall.Runit
     | Error _ -> err Errno.Einval)

(* ------------------------------------------------------------------ *)
(* Lifecycle system calls                                              *)

let ret_of_ptr = function Ok p -> Syscall.Rptr p | Error e -> err e
let ret_of_unit = function Ok () -> Syscall.Runit | Error e -> err e

let sys_new_container t ~thread ~quota ~cpus =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok _ ->
    let parent = Option.get (container_of_thread t ~thread) in
    ret_of_ptr (Proc_mgr.new_container t.pm ~parent ~quota ~cpus)

let sys_new_process t ~thread =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    let proc = th.Thread.owner_proc in
    let container = Option.get (container_of_thread t ~thread) in
    ret_of_ptr (Proc_mgr.new_process t.pm ~container ~parent:(Some proc))

let sys_new_thread t ~thread =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th -> ret_of_ptr (Proc_mgr.new_thread t.pm ~proc:th.Thread.owner_proc)

let sys_new_endpoint t ~thread ~slot =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok _ -> ret_of_ptr (Proc_mgr.new_endpoint t.pm ~thread ~slot)

let sys_close_endpoint t ~thread ~slot =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok _ ->
    let r = ret_of_unit (Proc_mgr.close_endpoint_slot t.pm ~thread ~slot) in
    sweep_irqs_hook t;
    r

(* ------------------------------------------------------------------ *)
(* IPC                                                                 *)

(* A rendezvous (a parked partner exists on the endpoint) is a direct
   switch: the woken partner joins the run-queue tail and, when the
   caller holds the CPU, the caller is preempted and the next runnable
   thread — the partner, whenever the queue was empty — takes over.

   The transition is implemented twice.  The generic path delivers via
   [deliver] and goes through the scheduler (enqueue / preempt /
   dequeue: nine permission-map operations per send).  The fastpath
   recognises the common case up front — fastpath enabled, scalars-only
   message, caller on the CPU, empty run queue — and performs the whole
   rendezvous in one fused pass: [deliver]'s grant machinery is skipped
   (the guard proves it vacuous) and each thread record is written
   exactly once (message and scheduling state together), leaving three
   map operations past the capability decode where the generic path
   spends seven.  Both paths MUST leave the kernel bit-identical; the
   randomized oracle in [test_fastpath] and the sanitizer's
   scheduler-coherence lint enforce this. *)

let fastpath_on = ref true
let set_fastpath b = fastpath_on := b
let fastpath_enabled () = !fastpath_on

(* atmo-san plant: drop the preempted caller on the floor instead of
   requeueing it, so a Runnable thread is queued nowhere — the
   sched-incoherent lint must notice. *)
let fastpath_skip_plant = ref false
let set_fastpath_skip_plant b = fastpath_skip_plant := b

(* atmo-san plant: open the rendezvous span on the IPC slowpath and
   never close it — the span-balance lint must notice. *)
let span_leak_plant = ref false
let set_span_leak_plant b = span_leak_plant := b

let ipc_fastpath_ctr = Atmo_obs.Metrics.counter "ipc/fastpath"
let ipc_slowpath_ctr = Atmo_obs.Metrics.counter "ipc/slowpath"

(* May the fused fastpath take this rendezvous?  Scalars only (so the
   grant machinery is provably vacuous), well-formed (so [deliver]
   could not have failed), caller on the CPU with an empty run queue
   (so the direct switch is exactly what the scheduler would pick). *)
let fastpath_ok t ~caller ~(msg : Message.t) =
  !fastpath_on
  && msg.Message.page = None
  && msg.Message.endpoint = None
  && Message.wf msg
  && Proc_mgr.current t.pm = Some caller
  && Sched_queue.is_empty (Proc_mgr.cur_queue t.pm)

(* The generic rendezvous switch: the woken partner goes through the
   scheduler like any other wakeup. *)
let rendezvous_slow t ~partner ~caller =
  let sid = Span.begin_ Span.Ipc_rendezvous in
  let pm = t.pm in
  Proc_mgr.enqueue_runnable pm ~thread:partner;
  (match Proc_mgr.cpu_of_current pm ~thread:caller with
   | Some cpu ->
     Proc_mgr.preempt_on pm ~cpu;
     ignore (Proc_mgr.dequeue_next_on pm ~cpu)
   | None -> ());
  Atmo_obs.Metrics.Counter.incr ipc_slowpath_ctr;
  if sid <> 0 && not !span_leak_plant then Span.end_ sid

(* The fused fastpath tail: write both thread records once, hand the
   CPU to the partner and requeue the caller.  [partner_up]/[caller_up]
   carry the message-buffer effect of the specific rendezvous so the
   record copy happens exactly once per thread. *)
let rendezvous_fast t ~ep ~sender ~receiver ~caller ~partner ~partner_up ~caller_up =
  let sid = Span.begin_ Span.Ipc_rendezvous in
  let pm = t.pm in
  Perm_map.update pm.Proc_mgr.thrd_perms ~ptr:partner (fun th ->
      { (partner_up th) with Thread.state = Thread.Running });
  Perm_map.update pm.Proc_mgr.thrd_perms ~ptr:caller (fun th ->
      { (caller_up th) with Thread.state = Thread.Runnable });
  Proc_mgr.set_current pm (Some partner);
  if not !fastpath_skip_plant then Proc_mgr.push_ready pm ~thread:caller;
  Atmo_obs.Metrics.Counter.incr ipc_fastpath_ctr;
  Obs.emit_ep_fastpath ~ep ~sender ~receiver ();
  Span.end_ sid

(* Map an already-[Mapped] 4 KiB frame into [proc]'s address space at
   [va], charging the owning container for the frame share and any new
   table pages.  Atomic: failure leaves no trace. *)
let map_shared_page t ~proc ~frame ~va ~perm =
  let p = Perm_map.borrow t.pm.Proc_mgr.proc_perms ~ptr:proc in
  let pt = p.Process.pt in
  let container = p.Process.owner_container in
  if (not (Mmu.canonical va)) || va land (Phys_mem.page_size - 1) <> 0 then
    Error Errno.Einval
  else if Imap.mem va (Page_table.address_space pt) then Error Errno.Eexist
  else begin
    let n_tables = Page_table.missing_tables pt ~vaddrs:[ (va, Page_state.S4k) ] in
    let need = 1 + n_tables in
    let* () = Proc_mgr.charge t.pm ~container ~frames:need in
    let keep = Page_table.page_closure pt in
    match Page_table.map_4k pt ~vaddr:va ~frame ~perm with
    | Ok () ->
      Page_alloc.inc_ref t.alloc ~addr:frame;
      Ok ()
    | Error Page_table.Oom ->
      ignore (Page_table.prune_empty_tables pt ~keep);
      Proc_mgr.uncharge t.pm ~container ~frames:need;
      Error Errno.Enomem
    | Error _ ->
      ignore (Page_table.prune_empty_tables pt ~keep);
      Proc_mgr.uncharge t.pm ~container ~frames:need;
      Error Errno.Einval
  end

(* Transfer [msg] from [sender] to [receiver]: validate every grant
   first, then apply.  The only fallible step after validation is the
   page mapping (table-page OOM), which unwinds itself. *)
let deliver t ~sender ~receiver ~(msg : Message.t) =
  let sth = Perm_map.borrow t.pm.Proc_mgr.thrd_perms ~ptr:sender in
  let rth = Perm_map.borrow t.pm.Proc_mgr.thrd_perms ~ptr:receiver in
  if not (Message.wf msg) then Error Errno.Einval
  else begin
    (* page grant: source must be a 4 KiB mapping of the sender *)
    let* page_frame =
      match msg.Message.page with
      | None -> Ok None
      | Some g ->
        let sp = Perm_map.borrow t.pm.Proc_mgr.proc_perms ~ptr:sth.Thread.owner_proc in
        (match Imap.find_opt g.Message.src_vaddr (Page_table.address_space sp.Process.pt) with
         | Some e when Page_state.equal_size e.Page_table.size Page_state.S4k ->
           Ok (Some (g, e.Page_table.frame, e.Page_table.perm))
         | Some _ | None -> Error Errno.Einval)
    in
    (* endpoint grant: sender slot occupied, receiver slot free *)
    let* edpt_grant =
      match msg.Message.endpoint with
      | None -> Ok None
      | Some g ->
        (match Thread.slot sth g.Message.src_slot with
         | None -> Error Errno.Einval
         | Some ep ->
           (match Thread.slot rth g.Message.dst_slot with
            | Some _ -> Error Errno.Eexist
            | None ->
              if g.Message.dst_slot < 0 || g.Message.dst_slot >= Kconfig.max_endpoint_slots
              then Error Errno.Einval
              else Ok (Some (g, ep))))
    in
    let* () =
      match page_frame with
      | None -> Ok ()
      | Some (g, frame, perm) ->
        map_shared_page t ~proc:rth.Thread.owner_proc ~frame ~va:g.Message.dst_vaddr ~perm
    in
    (match edpt_grant with
     | None -> ()
     | Some (g, ep) ->
       Perm_map.update t.pm.Proc_mgr.thrd_perms ~ptr:receiver (fun th ->
           Thread.set_slot th g.Message.dst_slot (Some ep));
       Perm_map.update t.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
           { e with Endpoint.refcount = e.Endpoint.refcount + 1 }));
    Ok ()
  end

(* Take the calling thread off the CPU / run queue so it can block.
   [up] is the full record update (blocked state plus whatever message
   buffer the park leaves behind), applied in one map operation. *)
let detach_from_scheduler t ~thread up =
  match Proc_mgr.cpu_of_current t.pm ~thread with
  | Some cpu ->
    t.pm.Proc_mgr.currents.(cpu) <- None;
    Perm_map.update t.pm.Proc_mgr.thrd_perms ~ptr:thread up;
    ignore (Proc_mgr.dequeue_next_on t.pm ~cpu)
  | None ->
    Proc_mgr.remove_from_run_queue t.pm ~thread;
    Perm_map.update t.pm.Proc_mgr.thrd_perms ~ptr:thread up

let send_impl t ~thread ~slot ~msg ~blocking =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    (match Thread.slot th slot with
     | None -> err Errno.Einval
     | Some ep ->
       let e = Perm_map.borrow t.pm.Proc_mgr.edpt_perms ~ptr:ep in
       (match Static_list.peek_front e.Endpoint.recv_queue with
        | Some receiver when fastpath_ok t ~caller:thread ~msg ->
          (* fused fastpath: [deliver] is vacuous for a well-formed
             scalars-only message, and each thread record is written
             exactly once *)
          Perm_map.update t.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
              match Static_list.pop_front e.Endpoint.recv_queue with
              | Some (_, q) -> { e with Endpoint.recv_queue = q }
              | None -> assert false);
          rendezvous_fast t ~ep ~sender:thread ~receiver ~caller:thread
            ~partner:receiver
            ~partner_up:(fun rth -> { rth with Thread.msg_buf = Some msg })
            ~caller_up:Fun.id;
          if Obs.tracing () then begin
            Span.edge Span.Ipc ~src:(Span.current ())
              ~dst:(Span.take_blocked ~thread:receiver);
            Obs.emit_ep_send ~ep ~sender:thread ~receiver ()
          end;
          Syscall.Runit
        | Some receiver ->
          (match deliver t ~sender:thread ~receiver ~msg with
           | Error er -> err er
           | Ok () ->
             Perm_map.update t.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
                 match Static_list.pop_front e.Endpoint.recv_queue with
                 | Some (_, q) -> { e with Endpoint.recv_queue = q }
                 | None -> assert false);
             Perm_map.update t.pm.Proc_mgr.thrd_perms ~ptr:receiver (fun rth ->
                 { rth with Thread.msg_buf = Some msg });
             rendezvous_slow t ~partner:receiver ~caller:thread;
             if Obs.tracing () then begin
               Span.edge Span.Ipc ~src:(Span.current ())
                 ~dst:(Span.take_blocked ~thread:receiver);
               Obs.emit_ep_send ~ep ~sender:thread ~receiver ()
             end;
             Syscall.Runit)
        | None ->
          if not blocking then err Errno.Ewouldblock
          else if not (Message.wf msg) then err Errno.Einval
          else if Static_list.is_full e.Endpoint.send_queue then err Errno.Efull
          else begin
            (* Pre-validate grant sources so a blocked sender's message
               always names a real mapping / descriptor of its own. *)
            let src_ok =
              (match msg.Message.page with
               | None -> true
               | Some g ->
                 let sp =
                   Perm_map.borrow t.pm.Proc_mgr.proc_perms ~ptr:th.Thread.owner_proc
                 in
                 (match
                    Imap.find_opt g.Message.src_vaddr
                      (Page_table.address_space sp.Process.pt)
                  with
                  | Some entry ->
                    Page_state.equal_size entry.Page_table.size Page_state.S4k
                  | None -> false))
              && (match msg.Message.endpoint with
                  | None -> true
                  | Some g -> Thread.slot th g.Message.src_slot <> None)
            in
            if not src_ok then err Errno.Einval
            else begin
              Perm_map.update t.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
                  match Static_list.push e.Endpoint.send_queue thread with
                  | Ok q -> { e with Endpoint.send_queue = q }
                  | Error `Full -> assert false);
              detach_from_scheduler t ~thread (fun th ->
                  { th with Thread.msg_buf = Some msg;
                            state = Thread.Blocked_send ep });
              if Obs.tracing () then begin
                Span.note_blocked ~thread ~span:(Span.current ());
                Obs.emit_ep_block ~ep ~thread ~dir:Event.Dir_send ()
              end;
              Syscall.Rblocked
            end
          end))

let recv_impl t ~thread ~slot ~blocking =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    (match Thread.slot th slot with
     | None -> err Errno.Einval
     | Some ep ->
       let e = Perm_map.borrow t.pm.Proc_mgr.edpt_perms ~ptr:ep in
       (match Static_list.peek_front e.Endpoint.send_queue with
        | Some sender ->
          let sth = Perm_map.borrow t.pm.Proc_mgr.thrd_perms ~ptr:sender in
          let msg =
            match sth.Thread.msg_buf with Some m -> m | None -> assert false
          in
          if fastpath_ok t ~caller:thread ~msg then begin
            (* fused fastpath, receive side: wake the parked sender and
               direct-switch to it in one pass *)
            Perm_map.update t.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
                match Static_list.pop_front e.Endpoint.send_queue with
                | Some (_, q) -> { e with Endpoint.send_queue = q }
                | None -> assert false);
            rendezvous_fast t ~ep ~sender ~receiver:thread ~caller:thread
              ~partner:sender
              ~partner_up:(fun sth -> { sth with Thread.msg_buf = None })
              ~caller_up:(fun th -> { th with Thread.msg_buf = Some msg });
            if Obs.tracing () then begin
              Span.edge Span.Ipc ~src:(Span.take_blocked ~thread:sender)
                ~dst:(Span.current ());
              Obs.emit_ep_recv ~ep ~receiver:thread ~sender ()
            end;
            Syscall.Rmsg msg
          end
          else
            (match deliver t ~sender ~receiver:thread ~msg with
             | Error er -> err er
             | Ok () ->
               Perm_map.update t.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
                   match Static_list.pop_front e.Endpoint.send_queue with
                   | Some (_, q) -> { e with Endpoint.send_queue = q }
                   | None -> assert false);
               Perm_map.update t.pm.Proc_mgr.thrd_perms ~ptr:sender (fun sth ->
                   { sth with Thread.msg_buf = None });
               Perm_map.update t.pm.Proc_mgr.thrd_perms ~ptr:thread (fun th ->
                   { th with Thread.msg_buf = Some msg });
               rendezvous_slow t ~partner:sender ~caller:thread;
               if Obs.tracing () then begin
                 Span.edge Span.Ipc ~src:(Span.take_blocked ~thread:sender)
                   ~dst:(Span.current ());
                 Obs.emit_ep_recv ~ep ~receiver:thread ~sender ()
               end;
               Syscall.Rmsg msg)
        | None ->
          (* a pending interrupt routed to this endpoint is delivered
             before the receiver would block (lowest device id first);
             the backlog cache makes the no-interrupt case one lookup
             instead of a fold over every device *)
          let pending_irq =
            if irq_backlog_of t ~ep = 0 then None
            else
              Imap.fold
                (fun device (d : device_info) acc ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                    if d.irq_endpoint = Some ep && d.irq_pending > 0 then Some device
                    else None)
                t.devices None
          in
          (match pending_irq with
           | Some device ->
             let info = Imap.find device t.devices in
             t.devices <-
               Imap.add device { info with irq_pending = info.irq_pending - 1 } t.devices;
             note_dev ~op:"irq-consume";
             irq_backlog_add t ~ep (-1);
             let msg = Message.scalars_only [ device ] in
             Perm_map.update t.pm.Proc_mgr.thrd_perms ~ptr:thread (fun th ->
                 { th with Thread.msg_buf = Some msg });
             if Obs.tracing () then
               Span.edge Span.Irq_delivery ~src:(Span.take_irq_pending ~device)
                 ~dst:(Span.current ());
             Syscall.Rmsg msg
           | None ->
             if not blocking then err Errno.Ewouldblock
             else if Static_list.is_full e.Endpoint.recv_queue then err Errno.Efull
             else begin
               Perm_map.update t.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
                   match Static_list.push e.Endpoint.recv_queue thread with
                   | Ok q -> { e with Endpoint.recv_queue = q }
                   | Error `Full -> assert false);
               detach_from_scheduler t ~thread (fun th ->
                   { th with Thread.msg_buf = None;
                             state = Thread.Blocked_recv ep });
               if Obs.tracing () then begin
                 Span.note_blocked ~thread ~span:(Span.current ());
                 Obs.emit_ep_block ~ep ~thread ~dir:Event.Dir_recv ()
               end;
               Syscall.Rblocked
             end)))

let sys_send t ~thread ~slot ~msg = send_impl t ~thread ~slot ~msg ~blocking:true
let sys_send_nb t ~thread ~slot ~msg = send_impl t ~thread ~slot ~msg ~blocking:false
let sys_recv t ~thread ~slot = recv_impl t ~thread ~slot ~blocking:true
let sys_recv_nb t ~thread ~slot = recv_impl t ~thread ~slot ~blocking:false

(* Drain the head sender of the endpoint without transferring anything:
   the sender is woken, its message dropped.  This is how a server
   discards a request whose grants cannot be applied. *)
let sys_recv_reject t ~thread ~slot =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    (match Thread.slot th slot with
     | None -> err Errno.Einval
     | Some ep ->
       let e = Perm_map.borrow t.pm.Proc_mgr.edpt_perms ~ptr:ep in
       (match Static_list.peek_front e.Endpoint.send_queue with
        | None -> err Errno.Ewouldblock
        | Some sender ->
          Perm_map.update t.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
              match Static_list.pop_front e.Endpoint.send_queue with
              | Some (_, q) -> { e with Endpoint.send_queue = q }
              | None -> assert false);
          Perm_map.update t.pm.Proc_mgr.thrd_perms ~ptr:sender (fun sth ->
              { sth with Thread.msg_buf = None });
          Proc_mgr.enqueue_runnable t.pm ~thread:sender;
          Syscall.Runit))

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)

let sys_yield t ~thread =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    (match th.Thread.state with
     | Thread.Running ->
       (* yield on the CPU the thread actually occupies (under per-CPU
          queues a thread can be current on a CPU other than the one
          entering the kernel) *)
       (match Proc_mgr.cpu_of_current t.pm ~thread with
        | Some cpu ->
          Proc_mgr.preempt_on t.pm ~cpu;
          ignore (Proc_mgr.dequeue_next_on t.pm ~cpu)
        | None -> ());
       Syscall.Runit
     | Thread.Runnable -> Syscall.Runit
     | Thread.Blocked_send _ | Thread.Blocked_recv _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Termination and revocation                                          *)

(* Tear down devices whose owning process died: release every frame in
   the DMA window, free the IOMMU page table, return the quota charge to
   the owning container if it still exists. *)
let teardown_device t ~device (info : device_info) =
  (match info.irq_endpoint with
   | Some ep when info.irq_pending > 0 -> irq_backlog_add t ~ep (-info.irq_pending)
   | Some _ | None -> ());
  Iommu.detach t.iommu ~device;
  let io_space = Page_table.address_space info.io_pt in
  Imap.iter
    (fun _iova (e : Page_table.entry) ->
      ignore (Page_alloc.dec_ref t.alloc ~addr:e.Page_table.frame))
    io_space;
  let charged =
    Iset.cardinal (Page_table.page_closure info.io_pt) + Imap.cardinal io_space
  in
  ignore (Page_table.destroy info.io_pt);
  if Perm_map.mem t.pm.Proc_mgr.cntr_perms ~ptr:info.owner_container then
    Proc_mgr.uncharge_external t.pm ~container:info.owner_container ~frames:charged
  else Proc_mgr.drop_external t.pm ~container:info.owner_container

let sweep_devices t =
  t.devices <-
    Imap.filter
      (fun device info ->
        if Perm_map.mem t.pm.Proc_mgr.proc_perms ~ptr:info.owner_proc then true
        else begin
          teardown_device t ~device info;
          note_dev ~op:"sweep";
          false
        end)
      t.devices

let sys_terminate_container t ~thread ~container =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok _ ->
    let caller_cntr = Option.get (container_of_thread t ~thread) in
    (match Perm_map.borrow_opt t.pm.Proc_mgr.cntr_perms ~ptr:container with
     | None -> err Errno.Esrch
     | Some _ ->
       let subtree =
         (Perm_map.borrow t.pm.Proc_mgr.cntr_perms ~ptr:caller_cntr).Container.subtree
       in
       if not (Iset.mem container subtree) then err Errno.Eperm
       else begin
         let r = Proc_mgr.terminate_container t.pm ~container in
         sweep_devices t;
         sweep_irqs_hook t;
         ret_of_unit r
       end)

(* Is [proc] a strict descendant of [ancestor] in the process tree? *)
let proc_descends t ~proc ~ancestor =
  let rec up p fuel =
    if fuel < 0 then false
    else
      match
        (Perm_map.borrow t.pm.Proc_mgr.proc_perms ~ptr:p).Process.parent
      with
      | None -> false
      | Some parent -> parent = ancestor || up parent (fuel - 1)
  in
  up proc (Perm_map.cardinal t.pm.Proc_mgr.proc_perms)

let sys_terminate_process t ~thread ~proc =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    (match Perm_map.borrow_opt t.pm.Proc_mgr.proc_perms ~ptr:proc with
     | None -> err Errno.Esrch
     | Some _ ->
       if not (proc_descends t ~proc ~ancestor:th.Thread.owner_proc) then
         err Errno.Eperm
       else begin
         let r = Proc_mgr.terminate_process t.pm ~proc in
         sweep_devices t;
         sweep_irqs_hook t;
         ret_of_unit r
       end)

(* ------------------------------------------------------------------ *)
(* IOMMU                                                               *)

let sys_assign_device t ~thread ~device =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    if device < 0 then err Errno.Einval
    else if Imap.mem device t.devices then err Errno.Eexist
    else begin
      let proc = th.Thread.owner_proc in
      let p = Perm_map.borrow t.pm.Proc_mgr.proc_perms ~ptr:proc in
      let container = p.Process.owner_container in
      match Proc_mgr.charge_external t.pm ~container ~frames:1 with
      | Error e -> err e
      | Ok () ->
        (match Page_table.create t.mem t.alloc with
         | Error _ ->
           Proc_mgr.uncharge_external t.pm ~container ~frames:1;
           err Errno.Enomem
         | Ok io_pt ->
           Iommu.attach t.iommu ~device ~root:(Page_table.cr3 io_pt);
           t.devices <-
             Imap.add device
               {
                 owner_proc = proc;
                 owner_container = container;
                 io_pt;
                 irq_endpoint = None;
                 irq_pending = 0;
               }
               t.devices;
           note_dev ~op:"assign";
           Syscall.Runit)
    end

let sys_io_map t ~thread ~device ~iova ~va =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    (match Imap.find_opt device t.devices with
     | None -> err Errno.Esrch
     | Some info ->
       if info.owner_proc <> th.Thread.owner_proc then err Errno.Eperm
       else if
         (not (Mmu.canonical iova)) || iova land (Phys_mem.page_size - 1) <> 0
       then err Errno.Einval
       else begin
         let p = Perm_map.borrow t.pm.Proc_mgr.proc_perms ~ptr:info.owner_proc in
         match Imap.find_opt va (Page_table.address_space p.Process.pt) with
         | Some e when Page_state.equal_size e.Page_table.size Page_state.S4k ->
           if Imap.mem iova (Page_table.address_space info.io_pt) then err Errno.Eexist
           else begin
             let n_tables =
               Page_table.missing_tables info.io_pt ~vaddrs:[ (iova, Page_state.S4k) ]
             in
             match
               Proc_mgr.charge_external t.pm ~container:info.owner_container
                 ~frames:(1 + n_tables)
             with
             | Error e -> err e
             | Ok () ->
               let keep = Page_table.page_closure info.io_pt in
               (match
                  Page_table.map_4k info.io_pt ~vaddr:iova ~frame:e.Page_table.frame
                    ~perm:e.Page_table.perm
                with
                | Ok () ->
                  Page_alloc.inc_ref t.alloc ~addr:e.Page_table.frame;
                  Syscall.Runit
                | Error _ ->
                  ignore (Page_table.prune_empty_tables info.io_pt ~keep);
                  Proc_mgr.uncharge_external t.pm ~container:info.owner_container
                    ~frames:(1 + n_tables);
                  err Errno.Enomem)
           end
         | Some _ | None -> err Errno.Einval
       end)

let sys_io_unmap t ~thread ~device ~iova =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    (match Imap.find_opt device t.devices with
     | None -> err Errno.Esrch
     | Some info ->
       if info.owner_proc <> th.Thread.owner_proc then err Errno.Eperm
       else
         match Page_table.unmap info.io_pt ~vaddr:iova with
         | Ok e ->
           (* The page-table unmap only shoots the CPU-side TLB; the
              device's IOTLB needs its own invalidation command, and
              skipping it would leave the device a window onto the
              freed frame (exactly what the TLB-coherence lint flags). *)
           Iommu.iotlb_invlpg t.iommu ~device ~iova;
           ignore (Page_alloc.dec_ref t.alloc ~addr:e.Page_table.frame);
           Proc_mgr.uncharge_external t.pm ~container:info.owner_container ~frames:1;
           Syscall.Runit
         | Error _ -> err Errno.Einval)

(* ------------------------------------------------------------------ *)
(* Interrupt dispatch                                                  *)

(* Devices whose bound endpoint died lose their routing (with any
   pending interrupts); called after every endpoint-freeing path. *)
let sweep_irqs t =
  t.devices <-
    Imap.map
      (fun (d : device_info) ->
        match d.irq_endpoint with
        | Some ep when not (Perm_map.mem t.pm.Proc_mgr.edpt_perms ~ptr:ep) ->
          t.irq_backlog <- Imap.remove ep t.irq_backlog;
          note_dev ~op:"irq-sweep";
          { d with irq_endpoint = None; irq_pending = 0 }
        | Some _ | None -> d)
      t.devices;
  note_dev ~op:"irq-sweep"

let sys_register_irq t ~thread ~device ~slot =
  match calling_thread t ~thread with
  | Error e -> err e
  | Ok th ->
    (match Imap.find_opt device t.devices with
     | None -> err Errno.Esrch
     | Some info ->
       if info.owner_proc <> th.Thread.owner_proc then err Errno.Eperm
       else if info.irq_endpoint <> None then err Errno.Eexist
       else
         (match Thread.slot th slot with
          | None -> err Errno.Einval
          | Some ep ->
            t.devices <- Imap.add device { info with irq_endpoint = Some ep } t.devices;
            note_dev ~op:"register-irq";
            Syscall.Runit))

(* A hardware entry: no calling thread is involved.  Unassigned or
   unrouted devices raise spurious interrupts, which are dropped. *)
let irq_fire t ~device =
  match Imap.find_opt device t.devices with
  | None -> Syscall.Runit
  | Some info ->
    (match info.irq_endpoint with
     | None -> Syscall.Runit
     | Some ep ->
       let e = Perm_map.borrow t.pm.Proc_mgr.edpt_perms ~ptr:ep in
       let sid = Span.begin_ ~container:e.Endpoint.owner_container Span.Irq in
       (match Static_list.peek_front e.Endpoint.recv_queue with
        | Some receiver ->
          Perm_map.update t.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
              match Static_list.pop_front e.Endpoint.recv_queue with
              | Some (_, q) -> { e with Endpoint.recv_queue = q }
              | None -> assert false);
          Perm_map.update t.pm.Proc_mgr.thrd_perms ~ptr:receiver (fun rth ->
              { rth with Thread.msg_buf = Some (Message.scalars_only [ device ]) });
          Proc_mgr.enqueue_runnable t.pm ~thread:receiver;
          if sid <> 0 then begin
            Span.edge Span.Irq_delivery ~src:sid
              ~dst:(Span.take_blocked ~thread:receiver);
            Span.end_ sid
          end;
          Syscall.Runit
        | None ->
          t.devices <-
            Imap.add device { info with irq_pending = info.irq_pending + 1 } t.devices;
          note_dev ~op:"irq-pend";
          irq_backlog_add t ~ep 1;
          if sid <> 0 then begin
            Span.note_irq_pending ~device ~span:sid;
            Span.end_ sid
          end;
          Syscall.Runit))

let () = sweep_irqs_ref := sweep_irqs

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                          *)

let dispatch t ~thread (call : Syscall.t) =
  match call with
  | Syscall.Mmap { va; count; size; perm } -> sys_mmap t ~thread ~va ~count ~size ~perm
  | Syscall.Munmap { va; count; size } -> sys_munmap t ~thread ~va ~count ~size
  | Syscall.Mprotect { va; perm } -> sys_mprotect t ~thread ~va ~perm
  | Syscall.New_container { quota; cpus } -> sys_new_container t ~thread ~quota ~cpus
  | Syscall.New_process -> sys_new_process t ~thread
  | Syscall.New_thread -> sys_new_thread t ~thread
  | Syscall.New_endpoint { slot } -> sys_new_endpoint t ~thread ~slot
  | Syscall.Close_endpoint { slot } -> sys_close_endpoint t ~thread ~slot
  | Syscall.Send { slot; msg } -> sys_send t ~thread ~slot ~msg
  | Syscall.Recv { slot } -> sys_recv t ~thread ~slot
  | Syscall.Send_nb { slot; msg } -> sys_send_nb t ~thread ~slot ~msg
  | Syscall.Recv_nb { slot } -> sys_recv_nb t ~thread ~slot
  | Syscall.Recv_reject { slot } -> sys_recv_reject t ~thread ~slot
  | Syscall.Yield -> sys_yield t ~thread
  | Syscall.Terminate_container { container } ->
    sys_terminate_container t ~thread ~container
  | Syscall.Terminate_process { proc } -> sys_terminate_process t ~thread ~proc
  | Syscall.Assign_device { device } -> sys_assign_device t ~thread ~device
  | Syscall.Io_map { device; iova; va } -> sys_io_map t ~thread ~device ~iova ~va
  | Syscall.Io_unmap { device; iova } -> sys_io_unmap t ~thread ~device ~iova
  | Syscall.Register_irq { device; slot } -> sys_register_irq t ~thread ~device ~slot
  | Syscall.Irq_fire { device } -> irq_fire t ~device

let syscalls_ctr = Atmo_obs.Metrics.counter "kernel/syscalls"
let syscall_errors_ctr = Atmo_obs.Metrics.counter "kernel/syscall_errors"

let step_inner t ~thread (call : Syscall.t) =
  if not (Obs.tracing ()) then dispatch t ~thread call
  else begin
    let sysno = Syscall.number call in
    Obs.emit_syscall_enter ~thread ~sysno ();
    Atmo_obs.Metrics.Counter.incr syscalls_ctr;
    let ret = dispatch t ~thread call in
    let errno = match ret with Syscall.Rerr e -> Some e | _ -> None in
    (match errno with None -> () | Some _ -> Atmo_obs.Metrics.Counter.incr syscall_errors_ctr);
    Obs.emit_syscall_exit ~thread ~sysno ~errno ();
    ret
  end

(* Step observer for the sanitizer: brackets every syscall so an external
   checker can attribute memory accesses to the executing thread's
   container.  Same zero-cost-when-unarmed discipline as the Obs guards;
   the armed path uses [Fun.protect] so the exit bracket fires even when a
   harness-injected fault escapes the dispatcher. *)
let step_obs_armed = ref false

let step_obs : (t -> thread:int -> entering:bool -> unit) ref =
  ref (fun _ ~thread:_ ~entering:_ -> ())

let set_step_observer = function
  | None ->
    step_obs_armed := false;
    step_obs := (fun _ ~thread:_ ~entering:_ -> ())
  | Some f ->
    step_obs := f;
    step_obs_armed := true

let step t ~thread (call : Syscall.t) =
  if not !step_obs_armed then step_inner t ~thread call
  else begin
    !step_obs t ~thread ~entering:true;
    Fun.protect
      ~finally:(fun () -> !step_obs t ~thread ~entering:false)
      (fun () -> step_inner t ~thread call)
  end
