module Proc_mgr = Atmo_pm.Proc_mgr
module Sched_queue = Atmo_pm.Sched_queue
module Perm_map = Atmo_pm.Perm_map
module Thread = Atmo_pm.Thread
module Kernel = Atmo_core.Kernel

(* Scheduler coherence across the per-CPU run queues: every queue, the
   per-CPU current threads and every thread's scheduling state must
   tell one consistent story.  The IPC fastpath writes this state
   directly instead of going through the generic enqueue/preempt/
   dequeue machinery, so a fastpath bug shows up exactly here — most
   tellingly as a Runnable thread queued nowhere (the
   [--plant fastpath-skip] scenario).

   The fine-grained regime adds two cross-CPU failure classes:

   - Queue corruption ([Queue_corrupt]): each per-CPU deque must be
     well-formed AND the global census must hold — no thread may sit
     in more than one CPU's queue (a double enqueue keeps both deques
     individually well-formed, so only the census sees it).

   - Lost steals ([Lost_steal]): every steal-ledger entry must name a
     live thread.  A terminate racing an in-flight steal leaves the
     thief holding a reference to a dead thread — the
     [--plant lost-steal] scenario skips the ledger scrub on
     destruction to model exactly that. *)

let site = "sched_lint"

let check (k : Kernel.t) =
  let pm = k.Kernel.pm in
  let cpus = Proc_mgr.sched_cpus pm in
  (* the read-mostly protocol: the census only borrows thread
     permissions, so it runs as a seqlock read section over the map *)
  Perm_map.read_section pm.Proc_mgr.thrd_perms (fun () ->
      for c = 0 to cpus - 1 do
        match Sched_queue.wf (Proc_mgr.queue pm ~cpu:c) with
        | Ok () -> ()
        | Error msg ->
          Report.record Report.Queue_corrupt ~site ~page:(-1)
            ~detail:(Printf.sprintf "cpu %d run-queue deque not well-formed: %s" c msg)
      done;
      (* global thread census over all queues *)
      let seen : (int, int) Hashtbl.t = Hashtbl.create 16 in
      for c = 0 to cpus - 1 do
        Sched_queue.iter (Proc_mgr.queue pm ~cpu:c) (fun th ->
            (match Hashtbl.find_opt seen th with
             | Some first ->
               Report.record Report.Queue_corrupt ~site ~page:th
                 ~detail:
                   (Printf.sprintf
                      "thread queued on cpu %d and cpu %d at once (census: a \
                       thread owns exactly one queue slot)"
                      first c)
             | None -> Hashtbl.replace seen th c);
            match Perm_map.borrow_opt pm.Proc_mgr.thrd_perms ~ptr:th with
            | None ->
              Report.record Report.Sched_incoherent ~site ~page:th
                ~detail:"queued thread is not alive"
            | Some t ->
              if not (Thread.equal_sched_state t.Thread.state Thread.Runnable) then
                Report.record Report.Sched_incoherent ~site ~page:th
                  ~detail:"queued thread is not Runnable")
      done;
      for c = 0 to cpus - 1 do
        match Proc_mgr.current_of pm ~cpu:c with
        | None -> ()
        | Some cur ->
          (match Perm_map.borrow_opt pm.Proc_mgr.thrd_perms ~ptr:cur with
           | None ->
             Report.record Report.Sched_incoherent ~site ~page:cur
               ~detail:(Printf.sprintf "cpu %d current thread is not alive" c)
           | Some t ->
             if not (Thread.equal_sched_state t.Thread.state Thread.Running) then
               Report.record Report.Sched_incoherent ~site ~page:cur
                 ~detail:(Printf.sprintf "cpu %d current thread is not Running" c));
          if Proc_mgr.queued_anywhere pm ~thread:cur then
            Report.record Report.Sched_incoherent ~site ~page:cur
              ~detail:(Printf.sprintf "cpu %d current thread still sits in a run queue" c)
      done;
      Perm_map.iter
        (fun ptr (t : Thread.t) ->
          match t.Thread.state with
          | Thread.Runnable ->
            if not (Proc_mgr.queued_anywhere pm ~thread:ptr) then
              Report.record Report.Sched_incoherent ~site ~page:ptr
                ~detail:
                  "Runnable thread is queued nowhere (a fastpath that forgets to \
                   requeue the preempted caller strands it here)"
          | Thread.Running ->
            if Proc_mgr.cpu_of_current pm ~thread:ptr = None then
              Report.record Report.Sched_incoherent ~site ~page:ptr
                ~detail:"Running thread is current on no CPU"
          | Thread.Blocked_send _ | Thread.Blocked_recv _ ->
            if Proc_mgr.queued_anywhere pm ~thread:ptr then
              Report.record Report.Sched_incoherent ~site ~page:ptr
                ~detail:"blocked thread still sits in a run queue")
        pm.Proc_mgr.thrd_perms;
      (* steal-vs-terminate: the ledger must never outlive its threads *)
      List.iter
        (fun (thief, victim, th) ->
          if not (Perm_map.mem pm.Proc_mgr.thrd_perms ~ptr:th) then
            Report.record Report.Lost_steal ~site ~page:th
              ~detail:
                (Printf.sprintf
                   "steal ledger entry (cpu %d stole from cpu %d) names a dead \
                    thread: terminate raced the steal"
                   thief victim))
        (Proc_mgr.steal_ledger pm))

let lint k =
  let before = Report.count () in
  Memsan.suspend (fun () -> check k);
  Report.count () - before
