module Proc_mgr = Atmo_pm.Proc_mgr
module Sched_queue = Atmo_pm.Sched_queue
module Perm_map = Atmo_pm.Perm_map
module Thread = Atmo_pm.Thread
module Kernel = Atmo_core.Kernel

(* Scheduler coherence: the run queue, the current thread and every
   thread's scheduling state must tell one consistent story.  The IPC
   fastpath writes this state directly instead of going through the
   generic enqueue/preempt/dequeue machinery, so a fastpath bug shows up
   exactly here — most tellingly as a Runnable thread queued nowhere
   (the [--plant fastpath-skip] scenario). *)

let site = "sched_lint"

let check (k : Kernel.t) =
  let pm = k.Kernel.pm in
  let q = pm.Proc_mgr.run_queue in
  (match Sched_queue.wf q with
   | Ok () -> ()
   | Error msg ->
     Report.record Report.Sched_incoherent ~site ~page:(-1)
       ~detail:("run-queue deque not well-formed: " ^ msg));
  Sched_queue.iter q (fun th ->
      match Perm_map.borrow_opt pm.Proc_mgr.thrd_perms ~ptr:th with
      | None ->
        Report.record Report.Sched_incoherent ~site ~page:th
          ~detail:"queued thread is not alive"
      | Some t ->
        if not (Thread.equal_sched_state t.Thread.state Thread.Runnable) then
          Report.record Report.Sched_incoherent ~site ~page:th
            ~detail:"queued thread is not Runnable");
  (match pm.Proc_mgr.current with
   | None -> ()
   | Some cur ->
     (match Perm_map.borrow_opt pm.Proc_mgr.thrd_perms ~ptr:cur with
      | None ->
        Report.record Report.Sched_incoherent ~site ~page:cur
          ~detail:"current thread is not alive"
      | Some t ->
        if not (Thread.equal_sched_state t.Thread.state Thread.Running) then
          Report.record Report.Sched_incoherent ~site ~page:cur
            ~detail:"current thread is not Running");
     if Sched_queue.mem q cur then
       Report.record Report.Sched_incoherent ~site ~page:cur
         ~detail:"current thread still sits in the run queue");
  Perm_map.iter
    (fun ptr (t : Thread.t) ->
      match t.Thread.state with
      | Thread.Runnable ->
        if not (Sched_queue.mem q ptr) then
          Report.record Report.Sched_incoherent ~site ~page:ptr
            ~detail:
              "Runnable thread is queued nowhere (a fastpath that forgets to \
               requeue the preempted caller strands it here)"
      | Thread.Running ->
        if pm.Proc_mgr.current <> Some ptr then
          Report.record Report.Sched_incoherent ~site ~page:ptr
            ~detail:"Running thread is not the current thread"
      | Thread.Blocked_send _ | Thread.Blocked_recv _ ->
        if Sched_queue.mem q ptr then
          Report.record Report.Sched_incoherent ~site ~page:ptr
            ~detail:"blocked thread still sits in the run queue")
    pm.Proc_mgr.thrd_perms

let lint k =
  let before = Report.count () in
  Memsan.suspend (fun () -> check k);
  Report.count () - before
