module Phys_mem = Atmo_hw.Phys_mem
module Mmu = Atmo_hw.Mmu
module Tlb = Atmo_hw.Tlb
module Iommu = Atmo_hw.Iommu
module Pte_bits = Atmo_hw.Pte_bits
module Kernel = Atmo_core.Kernel

(* Coherence: every live cached translation must agree with a fresh cold
   walk of the tables it was filled from.  A disagreement means some
   table mutation skipped its shootdown — the executable shadow of the
   isolation proof, which only holds for what the MMU *currently* sees. *)
let check_space ~site tlb =
  let mem = Tlb.mem tlb in
  let cr3 = Tlb.asid tlb in
  List.iter
    (fun (vbase, frame, size, perm) ->
      match Mmu.walk mem ~cr3 ~vaddr:vbase with
      | None ->
        Report.record Report.Tlb_stale ~site ~page:frame
          ~detail:
            (Printf.sprintf
               "cached 0x%x -> 0x%x (%d bytes) but the tables no longer map it"
               vbase frame size)
      | Some tr ->
        if
          tr.Mmu.frame <> frame || tr.Mmu.size <> size
          || not (Pte_bits.equal_perm tr.Mmu.perm perm)
        then
          Report.record Report.Tlb_stale ~site ~page:frame
            ~detail:
              (Format.asprintf
                 "cached 0x%x -> 0x%x/%d:%a but a cold walk gives 0x%x/%d:%a"
                 vbase frame size Pte_bits.pp_perm perm tr.Mmu.frame tr.Mmu.size
                 Pte_bits.pp_perm tr.Mmu.perm))
    (Tlb.entries tlb)

let lint k =
  let before = Report.count () in
  Memsan.suspend (fun () ->
      let uid = Phys_mem.uid k.Kernel.mem in
      Tlb.iter_spaces (fun tlb ->
          if Phys_mem.uid (Tlb.mem tlb) = uid then
            check_space ~site:(Printf.sprintf "tlb_lint.asid0x%x" (Tlb.asid tlb)) tlb);
      Iommu.iter_iotlbs k.Kernel.iommu (fun ~device tlb ->
          check_space ~site:(Printf.sprintf "tlb_lint.dev%d" device) tlb));
  Report.count () - before
