(** TLB-coherence lint.

    Compares every live entry of every software TLB belonging to the
    kernel's physical memory — CPU address spaces and per-device
    IOTLBs alike — against a fresh cold walk ({!Atmo_hw.Mmu.walk}) of
    the page tables.  An entry whose frame, size or permissions
    disagree, or whose page the tables no longer map, files a
    [Tlb_stale] report: some table mutation skipped its shootdown.

    This is the executable shadow of the paper's isolation theorem:
    the proof speaks about what the MMU currently sees, so any cached
    view the kernel failed to invalidate is a hole in the theorem's
    premise.  The check walks the tables cold on purpose — probing
    through the TLB under test would let a stale entry vouch for
    itself. *)

val lint : Atmo_core.Kernel.t -> int
(** Run the check; returns the number of new reports filed. *)
