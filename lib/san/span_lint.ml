(* Span-balance lint: every span begun must have ended by the time the
   system is quiescent.

   Two violation sources, both recorded as [Span_leak]:
   - spans still sitting on an open-span stack at check time (nothing
     will ever close them — at quiescence no syscall is in flight);
   - spans the span layer had to unwind because an enclosing span
     closed over them (recorded by [Atmo_obs.Span] as it popped them).

   The kernel's [span-leak] plant opens the IPC-slowpath rendezvous
   span and never closes it; this lint is its oracle.  The leak list is
   consumed so repeated checks do not re-report the same unwind. *)

module Span = Atmo_obs.Span

let lint (_k : Atmo_core.Kernel.t) =
  let n = ref 0 in
  List.iter
    (fun (cpu, code, id) ->
      incr n;
      Report.record Report.Span_leak ~site:"span_lint.open" ~page:(-1)
        ~detail:
          (Printf.sprintf "span #%d (%s) still open on cpu%d at quiescence" id
             (Span.label_of_code code) cpu))
    (Span.open_spans ());
  List.iter
    (fun (cpu, code, id) ->
      incr n;
      Report.record Report.Span_leak ~site:"span_lint.unwound" ~page:(-1)
        ~detail:
          (Printf.sprintf "span #%d (%s) on cpu%d was left open when its parent ended" id
             (Span.label_of_code code) cpu))
    (Span.leaked ());
  Span.clear_leaked ();
  !n
