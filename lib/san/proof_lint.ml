(* Stale-proof lint: compare each hooked layer's always-on intrinsic
   mutation counter against what the incremental verifier's dirty
   tracker observed.  If a container was mutated more times than the
   tracker saw, some mutation bypassed the dirty set — every cached
   verdict that reads the container is a stale proof.  No-op when no
   tracker is armed (nothing claims cached verdicts then). *)

module Incremental = Atmo_verif.Incremental

let lint (_k : Atmo_core.Kernel.t) =
  let misses = Incremental.audit () in
  List.iter
    (fun (id, expected, observed) ->
      Report.record Report.Stale_proof ~site:"proof_lint" ~page:(-1)
        ~detail:
          (Printf.sprintf
             "map %s: %d mutation(s) since baseline but tracker observed %d — %d \
              unmarked; cached verdicts reading %s are stale"
             id expected observed (expected - observed) id))
    misses;
  List.length misses
