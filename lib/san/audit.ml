open Atmo_util
module Page_alloc = Atmo_pmem.Page_alloc
module Page_state = Atmo_pmem.Page_state
module Page_table = Atmo_pt.Page_table
module Perm_map = Atmo_pm.Perm_map
module Proc_mgr = Atmo_pm.Proc_mgr
module Kernel = Atmo_core.Kernel

let leaks k =
  let before = Report.count () in
  Memsan.suspend (fun () ->
      let alloc = k.Kernel.alloc in
      let pm = k.Kernel.pm in
      (* Ownership ground truth: the process manager's page closure plus
         the table pages of every device's IOMMU domain. *)
      let owned =
        Imap.fold
          (fun _ (info : Kernel.device_info) acc ->
            Iset.union acc (Page_table.page_closure info.Kernel.io_pt))
          k.Kernel.devices (Proc_mgr.page_closure pm)
      in
      let allocated = Page_alloc.allocated_pages alloc in
      Iset.iter
        (fun page ->
          if not (Iset.mem page owned) then
            Report.record Report.Leak ~site:"audit" ~page
              ~detail:"allocated frame reachable from no kernel data structure")
        allocated;
      Iset.iter
        (fun page ->
          if not (Iset.mem page allocated) then
            Report.record Report.Phantom_page ~site:"audit" ~page
              ~detail:"kernel structure owns a frame the allocator says is not allocated")
        owned;
      (* Every user-mapped block must be reachable from some address
         space or DMA window; a mapped frame nobody can name can never
         be unmapped again. *)
      let reachable =
        let from_procs =
          Perm_map.fold
            (fun _ p acc -> Iset.union acc (Page_table.mapped_frames p.Atmo_pm.Process.pt))
            pm.Proc_mgr.proc_perms Iset.empty
        in
        Imap.fold
          (fun _ (info : Kernel.device_info) acc ->
            Iset.union acc (Page_table.mapped_frames info.Kernel.io_pt))
          k.Kernel.devices from_procs
      in
      Iset.iter
        (fun page ->
          if not (Iset.mem page reachable) then
            Report.record Report.Mapped_leak ~site:"audit" ~page
              ~detail:"mapped frame reachable from no address space or DMA window")
        (Page_alloc.mapped_pages alloc);
      (* Endpoints re-home to the parent container on subtree
         termination; an endpoint charged to a dead container leaks its
         page and its quota accounting. *)
      Perm_map.iter
        (fun ep (e : Atmo_pm.Endpoint.t) ->
          if not (Perm_map.mem pm.Proc_mgr.cntr_perms ~ptr:e.Atmo_pm.Endpoint.owner_container)
          then
            Report.record Report.Leak ~site:"audit" ~page:ep
              ~detail:
                (Printf.sprintf "endpoint owned by dead container %d"
                   e.Atmo_pm.Endpoint.owner_container))
        pm.Proc_mgr.edpt_perms);
  Report.count () - before
