open Atmo_util
module Phys_mem = Atmo_hw.Phys_mem
module Pte_bits = Atmo_hw.Pte_bits
module Page_alloc = Atmo_pmem.Page_alloc
module Page_state = Atmo_pmem.Page_state
module Page_table = Atmo_pt.Page_table
module Perm_map = Atmo_pm.Perm_map
module Proc_mgr = Atmo_pm.Proc_mgr
module Process = Atmo_pm.Process
module Kernel = Atmo_core.Kernel

let is_armed = ref false
let attribution_on = ref false
let subject : Kernel.t option ref = ref None

(* Attribution snapshots are rebuilt lazily: any allocator event or
   permission-map mutation marks the mapping picture dirty, and the next
   step entry rebuilds.  Staleness is safe — unknown frames are skipped. *)
let attr_dirty = ref true

let dispatch_access mem op addr len =
  Memsan.on_access mem op addr len;
  (match op with
   | Phys_mem.Read -> ()
   | Phys_mem.Write | Phys_mem.Zero ->
     Lockcheck.on_mutation ~site:"phys.write" ~page:(Phys_mem.page_base addr) ~detail:"")

let dispatch_event ev =
  Memsan.on_event ev;
  attr_dirty := true;
  match ev with
  | Page_alloc.Created _ -> ()
  | Page_alloc.Claim { addr; _ } ->
    Lockcheck.on_mutation ~site:"pmem.claim" ~page:addr ~detail:""
  | Page_alloc.Free_request { addr; what; _ } ->
    Lockcheck.on_mutation ~site:("pmem." ^ what) ~page:addr ~detail:""
  | Page_alloc.Release { addr; _ } ->
    Lockcheck.on_mutation ~site:"pmem.release" ~page:addr ~detail:""

let dispatch_perm ~name ~op ~ptr =
  attr_dirty := true;
  Lockcheck.on_mutation ~site:(Printf.sprintf "pm.%s.%s" name op) ~page:ptr ~detail:""

let build_attribution (k : Kernel.t) =
  let tbl : (int, Memsan.attr) Hashtbl.t = Hashtbl.create 256 in
  let add ~owner ~write frame =
    match Hashtbl.find_opt tbl frame with
    | None ->
      Hashtbl.replace tbl frame
        { Memsan.owners = Iset.singleton owner; writable = write }
    | Some a ->
      Hashtbl.replace tbl frame
        { Memsan.owners = Iset.add owner a.Memsan.owners;
          writable = a.Memsan.writable || write }
  in
  let add_space ~owner pt =
    Imap.iter
      (fun _va (e : Page_table.entry) ->
        let write = e.Page_table.perm.Pte_bits.write in
        for j = 0 to Page_state.frames_per e.Page_table.size - 1 do
          add ~owner ~write (e.Page_table.frame + (j * Phys_mem.page_size))
        done)
      (Page_table.address_space pt)
  in
  Perm_map.iter
    (fun _proc (p : Process.t) -> add_space ~owner:p.Process.owner_container p.Process.pt)
    k.Kernel.pm.Proc_mgr.proc_perms;
  Imap.iter
    (fun _dev (info : Kernel.device_info) ->
      add_space ~owner:info.Kernel.owner_container info.Kernel.io_pt)
    k.Kernel.devices;
  tbl

let step_observer k ~thread ~entering =
  if entering then begin
    Lockcheck.enter_step ();
    if !attribution_on then begin
      (match !subject with
       | Some s when s == k ->
         if !attr_dirty then begin
           attr_dirty := false;
           Memsan.suspend (fun () -> Memsan.set_attribution (Some (build_attribution k)))
         end
       | _ -> ());
      Memsan.set_context (Kernel.container_of_thread k ~thread)
    end
  end
  else begin
    Lockcheck.exit_step ();
    if !attribution_on then Memsan.set_context None
  end

let arm ?(poison = false) ?(lockcheck = false) ?(attribution = false) () =
  Report.clear ();
  Memsan.reset ~poison;
  if lockcheck then Lockcheck.arm () else Lockcheck.disarm ();
  attribution_on := attribution;
  attr_dirty := true;
  subject := None;
  Phys_mem.set_access_hook (Some dispatch_access);
  Page_alloc.set_event_hook (Some dispatch_event);
  Perm_map.set_mutation_hook (Some dispatch_perm);
  Kernel.set_step_observer (Some step_observer);
  is_armed := true

let disarm () =
  Phys_mem.set_access_hook None;
  Page_alloc.set_event_hook None;
  Perm_map.set_mutation_hook None;
  Kernel.set_step_observer None;
  Lockcheck.disarm ();
  Memsan.reset ~poison:false;
  attribution_on := false;
  subject := None;
  is_armed := false

let armed () = !is_armed

let attach k =
  subject := Some k;
  attr_dirty := true;
  Memsan.track k.Kernel.alloc

let full_check k =
  Pt_lint.lint k + Audit.leaks k + Tlb_lint.lint k + Sched_lint.lint k + Span_lint.lint k
  + Driver_lint.lint k + Proof_lint.lint k

let arm_of_env () =
  match Sys.getenv_opt "SAN" with
  | Some ("1" | "on" | "yes") -> arm ()
  | _ -> ()

let exit_check () =
  if !is_armed && Report.count () > 0 then begin
    Format.eprintf "atmo-san: %a@." Report.pp_summary ();
    exit 1
  end
