(** Shadow permission map: dynamic flat-permission checking of every
    physical-memory access.

    The paper stores one linear permission per physical frame in a flat
    map at the top of each subsystem; Verus then proves every load and
    store presents a live permission.  Memsan is the runtime shadow of
    that discipline: it mirrors each tracked {!Atmo_hw.Phys_mem} with
    one state byte per 4 KiB frame (reserved / never-allocated / live
    kernel / live user / freed / poisoned-free), kept in sync by the
    allocator's event hook, and validates every access delivered by the
    physical-memory access hook against it.

    Memsan holds only handlers and state; {!Runtime} owns installing
    the process-global hooks that feed it. *)

type attr = {
  owners : Atmo_util.Iset.t;  (** containers with a mapping of the frame *)
  writable : bool;  (** at least one mapping is writable *)
}

val reset : poison:bool -> unit
(** Forget all shadows and configure free-page poisoning.  With
    [poison:true] every released frame is filled with the poison byte
    and re-validated at its next claim, catching stale-pointer writes
    that happened while no hook observed them. *)

val poisoning : unit -> bool

val track : Atmo_pmem.Page_alloc.t -> unit
(** (Re)build the shadow of an allocator's memory from its current
    public state — used for allocators created before arming.
    Allocators created after arming are tracked automatically through
    the [Created] event. *)

val tracking : unit -> bool
(** True iff at least one memory is shadowed. *)

val on_access : Atmo_hw.Phys_mem.t -> Atmo_hw.Phys_mem.access_op -> int -> int -> unit
(** Access-hook handler: validate one load/store/zero against the
    shadow.  Accesses to untracked memories are ignored. *)

val on_event : Atmo_pmem.Page_alloc.event -> unit
(** Allocator-hook handler: transition shadow frame states on
    claim/free/release, filing [Double_free] / [Claim_of_live] /
    [Poison_trample] reports as they are detected. *)

val suspend : (unit -> 'a) -> 'a
(** Run a thunk with checking inhibited (reentrancy guard: the
    sanitizer's own poison fills and harness bookkeeping must not
    sanitize themselves). *)

val checked : unit -> int
(** Number of accesses validated since the last {!reset}. *)

(** {2 Container attribution (optional)}

    When a snapshot is installed and an executing container is known
    (set by {!Runtime}'s step observer), accesses to live user frames
    are additionally checked for cross-container reaches
    ([Foreign_page]) and stores through read-only-everywhere frames
    ([Bad_write_ro]).  Frames absent from the snapshot are skipped —
    attribution is conservative and never reports on stale data. *)

val set_attribution : (int, attr) Hashtbl.t option -> unit
(** Install a frame-base -> attribution snapshot (or clear it). *)

val set_context : int option -> unit
(** Container on whose behalf the kernel is currently executing. *)
