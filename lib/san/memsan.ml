open Atmo_util
module Phys_mem = Atmo_hw.Phys_mem
module Page_alloc = Atmo_pmem.Page_alloc
module Page_state = Atmo_pmem.Page_state

(* One shadow byte per 4 KiB frame:
     'u'  untracked (no judgement)
     'R'  reserved (boot image / per-CPU data, outside the allocator)
     'F'  free, never handed out since tracking began
     'f'  free, previously live
     'P'  free and filled with the poison byte
     'K'  live, holds a kernel object or page-table node
     'U'  live, user-mapped (refcounted)                              *)

type shadow = { mem : Phys_mem.t; codes : Bytes.t }

type attr = { owners : Iset.t; writable : bool }

let poison_byte = '\xa5'
let shadows : (int, shadow) Hashtbl.t = Hashtbl.create 4
let inhibit = ref 0
let poison_on = ref false
let n_checked = ref 0
let attribution : (int, attr) Hashtbl.t option ref = ref None
let context : int option ref = ref None

let reset ~poison =
  Hashtbl.reset shadows;
  inhibit := 0;
  poison_on := poison;
  n_checked := 0;
  attribution := None;
  context := None

let poisoning () = !poison_on
let tracking () = Hashtbl.length shadows > 0
let checked () = !n_checked

let suspend f =
  incr inhibit;
  Fun.protect ~finally:(fun () -> decr inhibit) f

let set_attribution a = attribution := a
let set_context c = context := c

(* Rebuild a shadow from the allocator's public per-frame state.  Frames
   outside the managed range are reserved; the history of currently-free
   frames is unknown, so they all become 'F' (an access is then reported
   as out-of-reservation rather than use-after-free — still a
   violation, just with coarser provenance). *)
let track alloc =
  let mem = Page_alloc.mem alloc in
  let n = Phys_mem.page_count mem in
  let codes = Bytes.make n 'R' in
  for i = 0 to n - 1 do
    let addr = Phys_mem.addr_of_index i in
    match Page_alloc.state_of alloc ~addr with
    | None -> ()
    | Some st ->
      let st =
        match st with
        | Page_state.Merged head ->
          (match Page_alloc.state_of alloc ~addr:(Phys_mem.addr_of_index head) with
           | Some s -> s
           | None -> st)
        | s -> s
      in
      Bytes.set codes i
        (match st with
         | Page_state.Free -> 'F'
         | Page_state.Allocated -> 'K'
         | Page_state.Mapped _ -> 'U'
         | Page_state.Merged _ -> 'F')
  done;
  Hashtbl.replace shadows (Phys_mem.uid mem) { mem; codes }

let op_site : Phys_mem.access_op -> string = function
  | Phys_mem.Read -> "phys.read"
  | Phys_mem.Write -> "phys.write"
  | Phys_mem.Zero -> "phys.zero"

let check_attr ~writing ~frame_addr ~site =
  match (!context, !attribution) with
  | Some c, Some tbl -> (
    match Hashtbl.find_opt tbl frame_addr with
    | None -> ()  (* frame mapped mid-syscall; snapshot is conservative *)
    | Some a ->
      if not (Iset.mem c a.owners) then
        Report.record Report.Foreign_page ~site ~page:frame_addr
          ~detail:(Printf.sprintf "container %d reached a frame it has no mapping of" c)
      else if writing && not a.writable then
        Report.record Report.Bad_write_ro ~site ~page:frame_addr
          ~detail:(Printf.sprintf "container %d stored through a read-only mapping" c))
  | _ -> ()

let on_access mem op addr len =
  if !inhibit = 0 then
    match Hashtbl.find_opt shadows (Phys_mem.uid mem) with
    | None -> ()
    | Some sh ->
      incr n_checked;
      let site = op_site op in
      let writing = match op with Phys_mem.Read -> false | _ -> true in
      let first = Phys_mem.page_index addr in
      let last = Phys_mem.page_index (addr + len - 1) in
      for i = first to last do
        let page = Phys_mem.addr_of_index i in
        match Bytes.get sh.codes i with
        | 'u' | 'R' | 'K' -> ()
        | 'U' -> check_attr ~writing ~frame_addr:page ~site
        | 'F' ->
          Report.record Report.Out_of_reservation ~site ~page
            ~detail:"access to a managed frame the allocator never handed out"
        | 'f' | 'P' ->
          Report.record Report.Use_after_free ~site ~page
            ~detail:"access to a frame after it returned to a free list"
        | _ -> ()
      done

let poison_fill = Bytes.make Phys_mem.page_size poison_byte

let poison_intact sh i =
  let b =
    suspend (fun () ->
        Phys_mem.blit_from sh.mem ~addr:(Phys_mem.addr_of_index i) ~len:Phys_mem.page_size)
  in
  Bytes.for_all (fun c -> c = poison_byte) b

(* Shadow transitions always run — even under {!suspend} — so the map
   stays in sync with the allocator; only the reporting is inhibited. *)
let on_event = function
  | Page_alloc.Created alloc -> track alloc
  | Page_alloc.Claim { alloc; addr; frames; purpose } -> (
    match Hashtbl.find_opt shadows (Phys_mem.uid (Page_alloc.mem alloc)) with
    | None -> ()
    | Some sh ->
      let live = match purpose with Page_alloc.Kernel -> 'K' | Page_alloc.User -> 'U' in
      let first = Phys_mem.page_index addr in
      for i = first to first + frames - 1 do
        (if !inhibit = 0 then
           match Bytes.get sh.codes i with
           | 'K' | 'U' ->
             Report.record Report.Claim_of_live ~site:"pmem.claim"
               ~page:(Phys_mem.addr_of_index i)
               ~detail:"allocator handed out a frame that was still live"
           | 'P' ->
             if not (poison_intact sh i) then
               Report.record Report.Poison_trample ~site:"pmem.claim"
                 ~page:(Phys_mem.addr_of_index i)
                 ~detail:"free-page poison was damaged while the frame was free"
           | _ -> ());
        Bytes.set sh.codes i live
      done)
  | Page_alloc.Free_request { alloc; addr; what } -> (
    match Hashtbl.find_opt shadows (Phys_mem.uid (Page_alloc.mem alloc)) with
    | None -> ()
    | Some sh ->
      let i = Phys_mem.page_index addr in
      if !inhibit = 0 && i >= 0 && i < Bytes.length sh.codes then (
        match Bytes.get sh.codes i with
        | 'F' | 'f' | 'P' ->
          Report.record Report.Double_free ~site:("pmem." ^ what)
            ~page:(Phys_mem.page_base addr)
            ~detail:"free request for a frame that is already free"
        | _ -> ()))
  | Page_alloc.Release { alloc; addr; frames } -> (
    match Hashtbl.find_opt shadows (Phys_mem.uid (Page_alloc.mem alloc)) with
    | None -> ()
    | Some sh ->
      let first = Phys_mem.page_index addr in
      for i = first to first + frames - 1 do
        if !poison_on then begin
          suspend (fun () ->
              Phys_mem.blit_to sh.mem ~addr:(Phys_mem.addr_of_index i) poison_fill);
          Bytes.set sh.codes i 'P'
        end
        else Bytes.set sh.codes i 'f'
      done)
