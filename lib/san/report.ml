type rule =
  | Use_after_free
  | Double_free
  | Out_of_reservation
  | Poison_trample
  | Claim_of_live
  | Bad_write_ro
  | Foreign_page
  | Unlocked_mutation
  | Lock_misuse
  | Leak
  | Phantom_page
  | Mapped_leak
  | Malformed_pte
  | Pt_bad_level
  | Pt_misaligned_superpage
  | Pt_alias
  | Pt_bad_leaf_state
  | Tlb_stale
  | Sched_incoherent
  | Span_leak
  | Drv_undefined_state
  | Drv_dma_escape
  | Drv_irq_storm
  | Drv_lost_completion
  | Stale_proof
  | Lock_order
  | Queue_corrupt
  | Lost_steal

let rule_name = function
  | Use_after_free -> "use-after-free"
  | Double_free -> "double-free"
  | Out_of_reservation -> "out-of-reservation"
  | Poison_trample -> "poison-trample"
  | Claim_of_live -> "claim-of-live"
  | Bad_write_ro -> "bad-write-ro"
  | Foreign_page -> "foreign-page"
  | Unlocked_mutation -> "unlocked-mutation"
  | Lock_misuse -> "lock-misuse"
  | Leak -> "leak"
  | Phantom_page -> "phantom-page"
  | Mapped_leak -> "mapped-leak"
  | Malformed_pte -> "malformed-pte"
  | Pt_bad_level -> "pt-bad-level"
  | Pt_misaligned_superpage -> "pt-misaligned-superpage"
  | Pt_alias -> "pt-alias"
  | Pt_bad_leaf_state -> "pt-bad-leaf-state"
  | Tlb_stale -> "tlb-stale"
  | Sched_incoherent -> "sched-incoherent"
  | Span_leak -> "span-leak"
  | Drv_undefined_state -> "drv-undefined-state"
  | Drv_dma_escape -> "drv-dma-escape"
  | Drv_irq_storm -> "drv-irq-storm"
  | Drv_lost_completion -> "drv-lost-completion"
  | Stale_proof -> "stale-proof"
  | Lock_order -> "lock-order"
  | Queue_corrupt -> "queue-corrupt"
  | Lost_steal -> "lost-steal"

type t = {
  rule : rule;
  site : string;
  page : int;
  detail : string;
  trail : Atmo_obs.Event.record list;
}

(* Stored newest-first; [reports] reverses.  The cap keeps a runaway
   violation source (e.g. every access of a hot loop) from retaining
   unbounded reports; [total] still counts everything. *)
let cap = 256
let stored : t list ref = ref []
let n_stored = ref 0
let total = ref 0
let trail_length = ref 8

let trail_now () =
  if not (Atmo_obs.Sink.tracing ()) then []
  else begin
    let recs = Atmo_obs.Sink.records () in
    let n = List.length recs in
    let keep = !trail_length in
    if n <= keep then recs
    else
      List.filteri (fun i _ -> i >= n - keep) recs
  end

let record rule ~site ~page ~detail =
  incr total;
  if !n_stored < cap then begin
    incr n_stored;
    stored := { rule; site; page; detail; trail = trail_now () } :: !stored
  end

let count () = !total
let reports () = List.rev !stored

let clear () =
  stored := [];
  n_stored := 0;
  total := 0

let pp ppf r =
  Format.fprintf ppf "@[<v 2>%s at %s" (rule_name r.rule) r.site;
  if r.page >= 0 then Format.fprintf ppf ", page 0x%x" r.page;
  if r.detail <> "" then Format.fprintf ppf ": %s" r.detail;
  (match r.trail with
   | [] -> ()
   | trail ->
     Format.fprintf ppf "@,recent events:";
     List.iter
       (fun rec_ -> Format.fprintf ppf "@,  %a" Atmo_obs.Event.pp_record rec_)
       trail);
  Format.fprintf ppf "@]"

let pp_summary ppf () =
  let rs = reports () in
  let by_rule = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let k = rule_name r.rule in
      Hashtbl.replace by_rule k (1 + Option.value ~default:0 (Hashtbl.find_opt by_rule k)))
    rs;
  Format.fprintf ppf "@[<v>%d violation(s)" !total;
  Hashtbl.iter (fun k n -> Format.fprintf ppf "@,  %-24s %d" k n) by_rule;
  List.iter (fun r -> Format.fprintf ppf "@,%a" pp r) rs;
  Format.fprintf ppf "@]"
