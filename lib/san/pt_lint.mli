(** Page-table lint: well-formedness of the concrete translation trees.

    Walks the real 512-entry table pages of every process address space
    and every device IOMMU domain — through each table's flat registry,
    the executable form of the paper's top-level [PointsTo] storage for
    page-table pages — and checks the structural invariants the paper
    proves about them: present entries use only architecturally
    programmed bits, non-leaf entries point at registered tables of the
    next level down, superpage leaves are size-aligned, leaf frames are
    in the allocator's [Mapped] state with the matching block size, and
    no frame is mapped more times than its reference count (aliasing
    across address spaces and DMA windows). *)

val lint : Atmo_core.Kernel.t -> int
(** Run the lint over all page tables of [k]; files typed reports and
    returns the number of violations found by this run. *)
