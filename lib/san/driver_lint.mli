(** Driver/device lint: the executable shadow of the paper's driver
    theorems.

    Walks the {!Atmo_devmodel.Model} registry at quiescence (every
    driver drained, no requests in flight) and checks, per device:

    - [drv-undefined-state]: the state machine is in [Undefined] — the
      "device never reaches an undefined state" clause.
    - [drv-dma-escape]: a DMA the device aimed outside its IOMMU window
      reached memory (escape attempts exceed blocked escapes) — the
      IOMMU-isolation clause.
    - [drv-irq-storm]: pending unacknowledged IRQs exceed
      {!Atmo_devmodel.Model.storm_threshold} — the driver neither
      serviced nor masked a storming vector.
    - [drv-lost-completion]: the device posted more completions than
      the driver harvested — a completion was silently dropped. *)

val lint : Atmo_core.Kernel.t -> int
(** Check every registered device model; returns the number of new
    reports filed.  The kernel argument is unused (the registry is
    process-global) but keeps the [Runtime.full_check] shape. *)
