(** Scheduler-coherence lint over the per-CPU run queues.

    Cross-checks every CPU's queue, the per-CPU [currents] and every
    thread's scheduling state: queued threads are alive and Runnable,
    Runnable threads are queued somewhere, current threads are Running
    and not queued, and each intrusive deque is structurally
    well-formed ([Sched_incoherent]).  These are exactly the
    obligations the IPC fastpath discharges by hand when it bypasses
    the generic scheduler machinery ([atmo san --plant fastpath-skip]).

    The fine-grained regime adds a global census — no thread may sit in
    more than one CPU's queue, and every deque must be individually
    well-formed ([Queue_corrupt], [--plant queue-corrupt]) — and the
    steal ledger check: an entry naming a dead thread is a terminate
    that raced an in-flight steal ([Lost_steal], [--plant
    lost-steal]). *)

val lint : Atmo_core.Kernel.t -> int
(** Run all checks; returns the number of violations filed. *)
