(** Scheduler-coherence lint.

    Cross-checks the run queue, [current] and every thread's scheduling
    state: queued threads are alive and Runnable, Runnable threads are
    queued somewhere, the current thread is Running and not queued, and
    the underlying intrusive deque is structurally well-formed.  These
    are exactly the obligations the IPC fastpath discharges by hand when
    it bypasses the generic scheduler machinery, so this lint is the
    sanitizer's oracle for fastpath bugs ([atmo san --plant
    fastpath-skip] strands a Runnable thread outside the queue and must
    be caught here as [Sched_incoherent]). *)

val lint : Atmo_core.Kernel.t -> int
(** Run all checks; returns the number of violations filed. *)
