(** Span-balance lint.

    At quiescence (no syscall in flight) every span the tracing layer
    opened must have been closed: the per-CPU open-span stacks must be
    empty and the span layer must not have unwound any span because its
    parent ended first.  Violations file as [Span_leak] — this is the
    oracle for [atmo san --plant span-leak], which opens the IPC
    slowpath's rendezvous span and never closes it.  The unwound-leak
    list is consumed, so back-to-back checks do not double-report. *)

val lint : Atmo_core.Kernel.t -> int
(** Run the check; returns the number of violations filed. *)
