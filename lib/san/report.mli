(** Typed sanitizer violation reports.

    Every rule atmo-san checks shadows a theorem of the paper's verified
    kernel (see DESIGN.md §8 for the mapping).  A report names the rule,
    the detection site, the faulting page, and — when the flight
    recorder is tracing — the tail of the event stream leading up to the
    violation, so a report reads like a miniature kernel crash dump. *)

type rule =
  | Use_after_free  (** access to a frame after it returned to a free list *)
  | Double_free  (** free request for a frame that is already free *)
  | Out_of_reservation  (** access to managed memory never handed out *)
  | Poison_trample  (** free-page poison damaged while the page was free *)
  | Claim_of_live  (** allocator handed out a frame that was still live *)
  | Bad_write_ro  (** store to a frame every mapping of which is read-only *)
  | Foreign_page  (** access to a user frame of a different container *)
  | Unlocked_mutation  (** kernel state mutated in a syscall without the big lock *)
  | Lock_misuse  (** big-lock acquire/release protocol broken *)
  | Leak  (** allocated frame owned by no kernel data structure *)
  | Phantom_page  (** kernel claims a frame the allocator says is not allocated *)
  | Mapped_leak  (** mapped frame reachable from no address space *)
  | Malformed_pte  (** reserved/invalid bits set in a present entry *)
  | Pt_bad_level  (** non-leaf entry not pointing at a next-level table *)
  | Pt_misaligned_superpage  (** huge leaf whose frame is not size-aligned *)
  | Pt_alias  (** frame mapped more times than its reference count *)
  | Pt_bad_leaf_state  (** leaf frame not in the allocator's [Mapped] state *)
  | Tlb_stale  (** cached TLB/IOTLB translation disagrees with a cold walk *)
  | Sched_incoherent
      (** scheduler state broken: a Runnable thread queued nowhere, a
          queued thread not Runnable/alive, or current/Running disagree
          (the IPC fastpath's obligations) *)
  | Span_leak
      (** span begun but never ended: still open at quiescence, or left
          open when its enclosing span closed *)
  | Drv_undefined_state
      (** a device model is in the [Undefined] state the paper's driver
          theorems forbid *)
  | Drv_dma_escape
      (** device DMA outside its IOMMU window actually reached memory *)
  | Drv_irq_storm
      (** pending unacknowledged IRQs above the storm threshold — the
          driver neither serviced nor masked the vector *)
  | Drv_lost_completion
      (** a completion the device posted was never harvested by its
          driver (checked at quiescence) *)
  | Stale_proof
      (** a state container was mutated with no matching dirty mark in
          the incremental verifier's tracker — cached verdicts about it
          are stale proofs *)
  | Lock_order
      (** fine-grained lock acquired against the hierarchy
          (cpu-queue < endpoint < map-writer): a deadlock-shaped cycle *)
  | Queue_corrupt
      (** per-CPU run-queue census broken: a thread enqueued on more
          than one CPU, or a queue structurally damaged cross-CPU *)
  | Lost_steal
      (** steal ledger names a dead thread — a terminate raced an
          in-flight steal and the thief holds a dangling reference *)

val rule_name : rule -> string

type t = {
  rule : rule;
  site : string;  (** detection site, e.g. ["phys.write"] or ["pt_lint"] *)
  page : int;  (** faulting 4 KiB frame base; [-1] when not page-specific *)
  detail : string;
  trail : Atmo_obs.Event.record list;
      (** most recent flight-recorder events at detection time (empty
          when tracing is off) *)
}

val record : rule -> site:string -> page:int -> detail:string -> unit
(** File a violation.  Captures the flight-recorder tail if tracing.
    Reports beyond a fixed cap are counted but not stored. *)

val count : unit -> int
(** Total violations filed since the last {!clear} (including any
    beyond the storage cap). *)

val reports : unit -> t list
(** Stored reports in filing order. *)

val clear : unit -> unit

val trail_length : int ref
(** How many trailing events to capture per report (default 8). *)

val pp : Format.formatter -> t -> unit

val pp_summary : Format.formatter -> unit -> unit
(** Per-rule counts followed by each stored report. *)
