module Model = Atmo_devmodel.Model

let check (m : Model.t) =
  let site = Printf.sprintf "driver_lint.%s" m.Model.name in
  if m.Model.state = Model.Undefined then
    Report.record Report.Drv_undefined_state ~site ~page:(-1)
      ~detail:
        (Printf.sprintf "device %d (%s) is in the undefined state" m.Model.device
           m.Model.name);
  if m.Model.escape_attempts > m.Model.escape_blocked then
    Report.record Report.Drv_dma_escape ~site ~page:(-1)
      ~detail:
        (Printf.sprintf "%d of %d out-of-window DMA attempts reached memory"
           (m.Model.escape_attempts - m.Model.escape_blocked)
           m.Model.escape_attempts);
  let pending = Model.pending_irqs m in
  if pending > Model.storm_threshold then
    Report.record Report.Drv_irq_storm ~site ~page:(-1)
      ~detail:
        (Printf.sprintf "%d IRQs pending unacknowledged (threshold %d, vector %s)"
           pending Model.storm_threshold
           (if m.Model.irq_masked then "masked" else "unmasked"));
  if m.Model.harvested < m.Model.delivered then
    Report.record Report.Drv_lost_completion ~site ~page:(-1)
      ~detail:
        (Printf.sprintf "device posted %d completions, driver harvested %d"
           m.Model.delivered m.Model.harvested)

let lint _k =
  let before = Report.count () in
  Memsan.suspend (fun () -> List.iter check (Model.all ()));
  Report.count () - before
