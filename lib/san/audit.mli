(** Leak-freedom audit.

    The paper proves leak freedom bottom-up from page closures: every
    allocated frame is owned by exactly one kernel data structure, and
    termination returns complete closures to the allocator.  The audit
    checks the same equations on the live state — typically after a
    container or process teardown: allocated frames vs the process
    manager's page closure plus IOMMU table pages ([Leak] /
    [Phantom_page]), mapped frames vs the union of address spaces and
    DMA windows ([Mapped_leak]), and endpoint owner-container
    liveness. *)

val leaks : Atmo_core.Kernel.t -> int
(** File typed reports for every ownership mismatch; returns the number
    of violations found by this run. *)
