(** Stale-proof lint (rule [stale-proof], DESIGN §13).

    A cached obligation verdict is only as good as the dirty tracking
    that justified skipping the re-check.  This lint audits the
    incremental verifier: every hooked layer (permission maps, page
    allocator, page tables, device table) keeps an always-on intrinsic
    mutation counter, and {!Atmo_verif.Incremental.audit} reports any
    container whose intrinsic count advanced past the tracker's
    observed count — a mutation with no matching dirty mark.  Files one
    {!Report.Stale_proof} per diverged container; returns how many.
    No-op (0) when no tracker is armed. *)

val lint : Atmo_core.Kernel.t -> int
