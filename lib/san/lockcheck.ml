let is_armed = ref false
let holder : int option ref = ref None
let last_site = ref "<never held>"
let step_depth = ref 0
let sites : (string, int) Hashtbl.t = Hashtbl.create 8
let reported : (string, int) Hashtbl.t = Hashtbl.create 8

(* ------------------------------------------------------------------ *)
(* Fine-grained lock classes: the explicit hierarchy of the broken-up
   big lock.  Rank must strictly grow along any acquisition chain —
   cpu-queue (0) < endpoint shard (1) < map-writer (2) — which rules
   out the lock-order cycles that deadlock real fine-grained kernels.
   Each simulated CPU keeps its own held stack. *)

type klass = Cpu_queue of int | Endpoint_shard of int | Map_writer

let rank = function Cpu_queue _ -> 0 | Endpoint_shard _ -> 1 | Map_writer -> 2

let klass_name = function
  | Cpu_queue c -> Printf.sprintf "cpu-queue/%d" c
  | Endpoint_shard s -> Printf.sprintf "endpoint/%d" s
  | Map_writer -> "map-writer"

let class_stacks : (int, klass list) Hashtbl.t = Hashtbl.create 8
let class_held_total = ref 0

let stack_of cpu = Option.value ~default:[] (Hashtbl.find_opt class_stacks cpu)

let arm () =
  is_armed := true;
  holder := None;
  last_site := "<never held>";
  step_depth := 0;
  Hashtbl.reset sites;
  Hashtbl.reset reported;
  Hashtbl.reset class_stacks;
  class_held_total := 0

let disarm () = is_armed := false
let armed () = !is_armed
let held () = !holder <> None

let acquisitions () =
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) sites []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let provenance () =
  let acq =
    match acquisitions () with
    | [] -> "no acquisitions yet"
    | l ->
      String.concat ", " (List.map (fun (s, n) -> Printf.sprintf "%s x%d" s n) l)
  in
  Printf.sprintf "last acquisition via %s; acquisitions: %s" !last_site acq

let acquire ~site ~cpu =
  if !is_armed then begin
    (match !holder with
     | Some other ->
       Report.record Report.Lock_misuse ~site ~page:(-1)
         ~detail:
           (Printf.sprintf "cpu %d acquired the big lock while cpu %d holds it (%s)" cpu
              other (provenance ()))
     | None -> ());
    holder := Some cpu;
    last_site := site;
    Hashtbl.replace sites site (1 + Option.value ~default:0 (Hashtbl.find_opt sites site))
  end

let release ~cpu =
  if !is_armed then
    match !holder with
    | None ->
      Report.record Report.Lock_misuse ~site:"release" ~page:(-1)
        ~detail:(Printf.sprintf "cpu %d released the big lock while nobody holds it" cpu)
    | Some _ -> holder := None

let locked ~site ~cpu f =
  acquire ~site ~cpu;
  Fun.protect ~finally:(fun () -> release ~cpu) f

(* ------------------------------------------------------------------ *)
(* Fine-grained acquisition/release against the rank hierarchy *)

let acquire_class ~site ~cpu k =
  if !is_armed then begin
    (match stack_of cpu with
     | top :: _ when rank top >= rank k ->
       Report.record Report.Lock_order ~site ~page:(-1)
         ~detail:
           (Printf.sprintf
              "cpu %d acquired %s while holding %s: rank must strictly grow \
               (cpu-queue < endpoint < map-writer)"
              cpu (klass_name k) (klass_name top))
     | _ -> ());
    Hashtbl.replace class_stacks cpu (k :: stack_of cpu);
    incr class_held_total;
    last_site := site;
    Hashtbl.replace sites site (1 + Option.value ~default:0 (Hashtbl.find_opt sites site))
  end

let release_class ~cpu k =
  if !is_armed then
    match stack_of cpu with
    | top :: rest when top = k ->
      Hashtbl.replace class_stacks cpu rest;
      decr class_held_total
    | _ ->
      Report.record Report.Lock_misuse ~site:"release_class" ~page:(-1)
        ~detail:
          (Printf.sprintf "cpu %d released %s it does not hold innermost" cpu
             (klass_name k))

let with_classes ~site ~cpu klasses f =
  List.iter (fun k -> acquire_class ~site ~cpu k) klasses;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun k -> release_class ~cpu k) (List.rev klasses))
    f

let classes_held () = !class_held_total > 0

let enter_step () = incr step_depth
let exit_step () = if !step_depth > 0 then decr step_depth

let on_mutation ~site ~page ~detail =
  if !is_armed && !step_depth > 0 && !holder = None && !class_held_total = 0 then begin
    match Hashtbl.find_opt reported site with
    | Some n -> Hashtbl.replace reported site (n + 1)  (* dedup per site *)
    | None ->
      Hashtbl.replace reported site 1;
      Report.record Report.Unlocked_mutation ~site ~page
        ~detail:
          (if detail = "" then provenance () else detail ^ " (" ^ provenance () ^ ")")
  end
