let is_armed = ref false
let holder : int option ref = ref None
let last_site = ref "<never held>"
let step_depth = ref 0
let sites : (string, int) Hashtbl.t = Hashtbl.create 8
let reported : (string, int) Hashtbl.t = Hashtbl.create 8

let arm () =
  is_armed := true;
  holder := None;
  last_site := "<never held>";
  step_depth := 0;
  Hashtbl.reset sites;
  Hashtbl.reset reported

let disarm () = is_armed := false
let armed () = !is_armed
let held () = !holder <> None

let acquisitions () =
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) sites []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let provenance () =
  let acq =
    match acquisitions () with
    | [] -> "no acquisitions yet"
    | l ->
      String.concat ", " (List.map (fun (s, n) -> Printf.sprintf "%s x%d" s n) l)
  in
  Printf.sprintf "last acquisition via %s; acquisitions: %s" !last_site acq

let acquire ~site ~cpu =
  if !is_armed then begin
    (match !holder with
     | Some other ->
       Report.record Report.Lock_misuse ~site ~page:(-1)
         ~detail:
           (Printf.sprintf "cpu %d acquired the big lock while cpu %d holds it (%s)" cpu
              other (provenance ()))
     | None -> ());
    holder := Some cpu;
    last_site := site;
    Hashtbl.replace sites site (1 + Option.value ~default:0 (Hashtbl.find_opt sites site))
  end

let release ~cpu =
  if !is_armed then
    match !holder with
    | None ->
      Report.record Report.Lock_misuse ~site:"release" ~page:(-1)
        ~detail:(Printf.sprintf "cpu %d released the big lock while nobody holds it" cpu)
    | Some _ -> holder := None

let locked ~site ~cpu f =
  acquire ~site ~cpu;
  Fun.protect ~finally:(fun () -> release ~cpu) f

let enter_step () = incr step_depth
let exit_step () = if !step_depth > 0 then decr step_depth

let on_mutation ~site ~page ~detail =
  if !is_armed && !step_depth > 0 && !holder = None then begin
    match Hashtbl.find_opt reported site with
    | Some n -> Hashtbl.replace reported site (n + 1)  (* dedup per site *)
    | None ->
      Hashtbl.replace reported site 1;
      Report.record Report.Unlocked_mutation ~site ~page
        ~detail:
          (if detail = "" then provenance () else detail ^ " (" ^ provenance () ^ ")")
  end
