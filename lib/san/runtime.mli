(** atmo-san orchestration: owns the process-global hooks.

    {!arm} installs the physical-memory access hook, the allocator
    event hook, the permission-map mutation hook and the kernel step
    observer, routing them to {!Memsan} and {!Lockcheck}; {!disarm}
    restores the zero-cost paths everywhere.  Exactly one component
    installs those hooks, so layering stays acyclic: the substrates
    know nothing of the sanitizer, and the sanitizer reaches them only
    through their public registries. *)

val arm : ?poison:bool -> ?lockcheck:bool -> ?attribution:bool -> unit -> unit
(** Start sanitizing.  Defaults: [poison:false] (free-page poisoning
    materialises freed frames, perturbing sparsity-sensitive tests),
    [lockcheck:false] (test harnesses legitimately call [Kernel.step]
    without the SMP big lock), [attribution:false] (per-step
    container-ownership snapshots).  [atmo san] enables all three. *)

val disarm : unit -> unit
val armed : unit -> bool

val attach : Atmo_core.Kernel.t -> unit
(** Point the sanitizer at a kernel: shadows its allocator (needed when
    the kernel booted before {!arm}) and becomes the subject of
    attribution snapshots. *)

val full_check : Atmo_core.Kernel.t -> int
(** Run the on-demand whole-state checks — {!Pt_lint.lint},
    {!Audit.leaks}, {!Tlb_lint.lint}, {!Sched_lint.lint},
    {!Span_lint.lint} and {!Driver_lint.lint} — returning the number of
    new violations.  Call at quiescence: drivers drained, no requests
    in flight. *)

val arm_of_env : unit -> unit
(** Arm (memsan only) when the [SAN] environment variable is [1] — the
    [SAN=1 dune runtest] mode.  No-op otherwise. *)

val exit_check : unit -> unit
(** If armed and violations were recorded, print the report summary on
    stderr and exit with status 1.  For test-runner mains. *)
