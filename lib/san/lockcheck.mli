(** Lock-discipline checker for the big kernel lock.

    The paper's kernel runs every system call under one big lock; the
    verification assumes mutations of kernel state happen only inside
    it.  Lockcheck shadows that assumption at runtime, lockdep-style:
    the SMP simulator reports lock acquire/release (with an acquisition
    site), the kernel's step observer brackets syscall execution, and
    mutation hooks (permission maps, allocator events, physical stores)
    report every kernel-state mutation.  A mutation inside a syscall
    while the lock is not held files an [Unlocked_mutation] report with
    acquisition-site provenance; protocol breaks (double acquire,
    release without hold) file [Lock_misuse].

    Per-site deduplication keeps one hot unlocked path from flooding
    the report store; suppressed repeats are still counted. *)

val arm : unit -> unit
(** Reset state and start checking. *)

val disarm : unit -> unit
val armed : unit -> bool

val acquire : site:string -> cpu:int -> unit
(** The big lock was granted to [cpu]; [site] names the acquisition
    point (e.g. ["smp.big_lock"]).  Acquiring while held files
    [Lock_misuse]. *)

val release : cpu:int -> unit
(** Releasing while not held files [Lock_misuse]. *)

val locked : site:string -> cpu:int -> (unit -> 'a) -> 'a
(** Run a thunk under the lock (helper for harness code that mutates
    kernel state outside the SMP loop, e.g. boot and workload setup). *)

val held : unit -> bool

(** {2 Fine-grained lock classes}

    The broken-up big lock: per-CPU run-queue locks, sharded endpoint
    locks, and the exclusive permission-map writer lock, with the
    explicit hierarchy cpu-queue (rank 0) < endpoint shard (rank 1) <
    map-writer (rank 2).  Rank must strictly grow along any chain of
    acquisitions on one CPU; a violation files [Lock_order].  Holding
    any class licenses kernel-state mutations exactly as the big lock
    does. *)

type klass = Cpu_queue of int | Endpoint_shard of int | Map_writer

val rank : klass -> int
val klass_name : klass -> string

val acquire_class : site:string -> cpu:int -> klass -> unit
(** Push onto [cpu]'s held stack; files [Lock_order] when the rank
    does not strictly grow. *)

val release_class : cpu:int -> klass -> unit
(** Pop; releasing a class not held innermost files [Lock_misuse]. *)

val with_classes : site:string -> cpu:int -> klass list -> (unit -> 'a) -> 'a
(** Acquire the classes in list order, run the thunk, release in
    reverse. *)

val classes_held : unit -> bool

val enter_step : unit -> unit
(** Step-observer brackets: mutations are only judged between
    [enter_step] and [exit_step] (kernel code running on behalf of a
    syscall); harness mutations outside any step are not the kernel's
    concern. *)

val exit_step : unit -> unit

val on_mutation : site:string -> page:int -> detail:string -> unit
(** A kernel-state mutation happened at [site].  Files
    [Unlocked_mutation] if armed, inside a step, and the lock is not
    held. *)

val acquisitions : unit -> (string * int) list
(** Acquisition sites seen since {!arm}, with counts — the provenance
    attached to violations. *)
