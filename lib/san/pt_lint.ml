open Atmo_util
module Phys_mem = Atmo_hw.Phys_mem
module Mmu = Atmo_hw.Mmu
module Pte_bits = Atmo_hw.Pte_bits
module Page_alloc = Atmo_pmem.Page_alloc
module Page_state = Atmo_pmem.Page_state
module Page_table = Atmo_pt.Page_table
module Perm_map = Atmo_pm.Perm_map
module Kernel = Atmo_core.Kernel

(* Bits this kernel ever programs into a present entry: P, R/W, U/S, PS,
   NX and the frame address.  Anything else set in a present entry is a
   malformed PTE for the model (A/D/PWT/PCD are never written here). *)
let allowed_bits =
  List.fold_left Int64.logor 0L
    [ 0x1L; 0x2L; 0x4L; 0x80L; Int64.min_int; Pte_bits.addr_mask ]

let entries_per_table = 512

let lint_pt k ~who pt ~tally =
  let mem = k.Kernel.mem in
  let registered : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (addr, level) -> Hashtbl.replace registered addr level) (Page_table.tables pt);
  let site = "pt_lint." ^ who in
  List.iter
    (fun (taddr, level) ->
      (match Page_alloc.state_of k.Kernel.alloc ~addr:taddr with
       | Some Page_state.Allocated -> ()
       | st ->
         Report.record Report.Phantom_page ~site ~page:taddr
           ~detail:
             (Format.asprintf "table page (level %d) is %a in the allocator" level
                (Format.pp_print_option
                   ~none:(fun ppf () -> Format.pp_print_string ppf "unmanaged")
                   Page_state.pp_state)
                st));
      for index = 0 to entries_per_table - 1 do
        let e = Phys_mem.read_u64 mem ~addr:(Mmu.entry_addr ~table:taddr ~index) in
        if Pte_bits.is_present e then begin
          let page = Pte_bits.addr_of e in
          if Int64.logand e (Int64.lognot allowed_bits) <> 0L then
            Report.record Report.Malformed_pte ~site ~page
              ~detail:
                (Printf.sprintf "reserved bits set in entry %d of level-%d table 0x%x (0x%Lx)"
                   index level taddr e);
          let huge = Pte_bits.is_huge e in
          if huge && (level = 4 || level = 1) then
            Report.record Report.Malformed_pte ~site ~page
              ~detail:(Printf.sprintf "PS bit set at level %d (table 0x%x entry %d)" level taddr index)
          else if level > 1 && not huge then begin
            (* points at a next-level table *)
            match Hashtbl.find_opt registered page with
            | Some l when l = level - 1 -> ()
            | Some l ->
              Report.record Report.Pt_bad_level ~site ~page
                ~detail:
                  (Printf.sprintf "level-%d entry points at a level-%d table (expected %d)"
                     level l (level - 1))
            | None ->
              Report.record Report.Pt_bad_level ~site ~page
                ~detail:
                  (Printf.sprintf "level-%d entry points at 0x%x, not a registered table page"
                     level page)
          end
          else begin
            (* leaf: 1 GiB (level 3, huge), 2 MiB (level 2, huge), 4 KiB (level 1) *)
            let size =
              match level with 3 -> Page_state.S1g | 2 -> Page_state.S2m | _ -> Page_state.S4k
            in
            let bytes = Page_state.bytes_per size in
            if page land (bytes - 1) <> 0 then
              Report.record Report.Pt_misaligned_superpage ~site ~page
                ~detail:
                  (Format.asprintf "%a leaf frame not %a-aligned (table 0x%x entry %d)"
                     Page_state.pp_size size Page_state.pp_size size taddr index);
            (match Page_alloc.state_of k.Kernel.alloc ~addr:page with
             | Some (Page_state.Mapped _) ->
               (match Page_alloc.size_of k.Kernel.alloc ~addr:page with
                | Some s when Page_state.equal_size s size -> ()
                | s ->
                  Report.record Report.Pt_bad_leaf_state ~site ~page
                    ~detail:
                      (Format.asprintf "%a leaf over a block of size %a" Page_state.pp_size
                         size
                         (Format.pp_print_option
                            ~none:(fun ppf () -> Format.pp_print_string ppf "<none>")
                            Page_state.pp_size)
                         s))
             | st ->
               Report.record Report.Pt_bad_leaf_state ~site ~page
                 ~detail:
                   (Format.asprintf "leaf frame is %a in the allocator, not mapped"
                      (Format.pp_print_option
                         ~none:(fun ppf () -> Format.pp_print_string ppf "unmanaged")
                         Page_state.pp_state)
                      st));
            Hashtbl.replace tally page (1 + Option.value ~default:0 (Hashtbl.find_opt tally page))
          end
        end
      done)
    (Page_table.tables pt)

let lint k =
  let before = Report.count () in
  Memsan.suspend (fun () ->
      (* Every mapping of a frame — CPU page tables and IOMMU tables
         alike — consumes one reference; more mappings than references
         means an aliasing bug the refcount cannot see. *)
      let tally : (int, int) Hashtbl.t = Hashtbl.create 64 in
      Perm_map.iter
        (fun proc p ->
          lint_pt k ~who:(Printf.sprintf "proc%d" proc) p.Atmo_pm.Process.pt ~tally)
        k.Kernel.pm.Atmo_pm.Proc_mgr.proc_perms;
      Imap.iter
        (fun dev (info : Kernel.device_info) ->
          lint_pt k ~who:(Printf.sprintf "dev%d" dev) info.Kernel.io_pt ~tally)
        k.Kernel.devices;
      Hashtbl.iter
        (fun page mappings ->
          match Page_alloc.ref_count k.Kernel.alloc ~addr:page with
          | Some rc when mappings > rc ->
            Report.record Report.Pt_alias ~site:"pt_lint" ~page
              ~detail:
                (Printf.sprintf "frame mapped %d time(s) but reference count is %d" mappings rc)
          | _ -> ())
        tally);
  Report.count () - before
