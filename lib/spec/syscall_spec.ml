open Atmo_util
module A = Abstract_state
module Page_state = Atmo_pmem.Page_state
module Page_table = Atmo_pt.Page_table
module Thread = Atmo_pm.Thread
module Message = Atmo_pm.Message

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let free_frame_total (a : A.t) =
  Iset.cardinal a.A.free_4k
  + (512 * Iset.cardinal a.A.free_2m)
  + (512 * 512 * Iset.cardinal a.A.free_1g)

(* Every managed frame is a head or body of exactly one set, so the sum
   of cardinals is invariant under every call (including merge/split). *)
let accounted (a : A.t) =
  Iset.cardinal a.A.free_4k + Iset.cardinal a.A.free_2m + Iset.cardinal a.A.free_1g
  + Iset.cardinal a.A.allocated + Iset.cardinal a.A.mapped + Iset.cardinal a.A.merged

let space_frames space =
  Imap.fold (fun _ (e : Page_table.entry) acc -> Iset.add e.Page_table.frame acc) space Iset.empty

(* All frames mapped by any address space or device DMA window (block
   heads only). *)
let all_mapped_heads (a : A.t) =
  let procs =
    Imap.fold (fun _ (p : A.aproc) acc -> Iset.union acc (space_frames p.A.ap_space)) a.A.procs Iset.empty
  in
  Imap.fold
    (fun _ (d : A.adevice) acc -> Iset.union acc (space_frames d.A.ad_io_space))
    a.A.devices procs

let eq_slots (a : (int * int) list) b =
  List.sort compare a = List.sort compare b

(* Expected descriptor table after installing [ep] in [slot]. *)
let slots_with slots slot ep = List.sort compare ((slot, ep) :: slots)

let eq_msg (a : Message.t) (b : Message.t) =
  a.Message.scalars = b.Message.scalars
  && a.Message.page = b.Message.page
  && a.Message.endpoint = b.Message.endpoint

(* The caller leaves the CPU (blocking receive/send): the next runnable
   thread, if any, is popped and becomes Running.  Returns the expected
   (run_queue, current) and the thread whose state flipped to Running. *)
let sched_after_detach (pre : A.t) ~caller ~requeue_caller =
  if pre.A.current = Some caller then begin
    let base = if requeue_caller then pre.A.run_queue @ [ caller ] else pre.A.run_queue in
    match base with
    | [] -> ([], None, None)
    | next :: rest -> (rest, Some next, if next = caller then None else Some next)
  end
  else
    (* a non-current caller just leaves (or stays in) the queue *)
    let q = List.filter (fun x -> x <> caller) pre.A.run_queue in
    ((if requeue_caller then pre.A.run_queue else q), pre.A.current, None)

(* A rendezvous woke [partner]: it joins the run-queue tail and, when
   the caller held the CPU, the caller is preempted behind it and the
   head of the resulting queue takes the CPU — the partner whenever the
   queue was empty, which is the direct switch the IPC fastpath
   specialises.  Returns the expected (run_queue, current) and the
   thread that took the CPU. *)
let sched_after_rendezvous (pre : A.t) ~caller ~partner =
  if pre.A.current = Some caller then
    match pre.A.run_queue @ [ partner; caller ] with
    | next :: rest -> (rest, Some next, Some next)
    | [] -> assert false
  else (pre.A.run_queue @ [ partner ], pre.A.current, None)

(* ------------------------------------------------------------------ *)
(* Clause machinery                                                    *)

type ck = (string * bool) list

let c name b : ck = [ (name, b) ]
let ( @& ) (a : ck) (b : ck) = a @ b

(* Frame-condition bundle: everything except the exempted parts is
   unchanged. *)
let unchanged_bundle ?(cntrs = Iset.empty) ?(procs = Iset.empty) ?(threads = Iset.empty)
    ?(edpts = Iset.empty) ?(sched = false) ?(memory = false) ?(devices = false)
    (pre : A.t) (post : A.t) : ck =
  c "frame/containers" (A.containers_unchanged_except pre post cntrs)
  @& c "frame/procs" (A.procs_unchanged_except pre post procs)
  @& c "frame/threads" (A.threads_unchanged_except pre post threads)
  @& c "frame/endpoints" (A.endpoints_unchanged_except pre post edpts)
  @& (if sched then []
      else
        c "frame/run_queue" (pre.A.run_queue = post.A.run_queue)
        @& c "frame/current" (pre.A.current = post.A.current))
  @& (if memory then [] else c "frame/memory" (A.memory_unchanged pre post))
  @& if devices then [] else c "frame/devices" (A.devices_unchanged_except pre post Iset.empty)

(* Exact container evolution: [post] container equals [pre] container
   with the given field updates applied. *)
let container_is (post : A.t) ptr (expected : A.acontainer) : ck =
  match Imap.find_opt ptr post.A.containers with
  | None -> c "container/alive" false
  | Some got -> c (Printf.sprintf "container/0x%x" ptr) (A.equal_acontainer got expected)

(* ------------------------------------------------------------------ *)
(* Per-call success specifications                                     *)

let caller_context (pre : A.t) ~thread =
  match Imap.find_opt thread pre.A.threads with
  | None -> None
  | Some th ->
    (match Imap.find_opt th.A.at_owner_proc pre.A.procs with
     | None -> None
     | Some p -> Some (th, th.A.at_owner_proc, p, p.A.ap_owner_container))

let spec_mmap ~(pre : A.t) ~(post : A.t) ~thread ~va ~count ~size ~perm frames : ck =
  match caller_context pre ~thread with
  | None -> c "mmap/caller_alive" false
  | Some (_, proc, pre_p, cntr) ->
    let bytes = Page_state.bytes_per size in
    let fp = Page_state.frames_per size in
    let vas = List.init count (fun i -> va + (i * bytes)) in
    (match Imap.find_opt proc post.A.procs with
     | None -> c "mmap/proc_survives" false
     | Some post_p ->
       let new_tables = Iset.diff post_p.A.ap_pt_pages pre_p.A.ap_pt_pages in
       let n_tables = Iset.cardinal new_tables in
       let free_set =
         match size with
         | Page_state.S4k -> pre.A.free_4k
         | Page_state.S2m -> pre.A.free_2m
         | Page_state.S1g -> pre.A.free_1g
       in
       ignore free_set;
       c "mmap/count" (List.length frames = count)
       (* each virtual address in va_range gets its page, with the
          requested size and permission (Listing 1, lines 23-26) *)
       @& c "mmap/new_mappings"
            (List.for_all2
               (fun v f ->
                 match Imap.find_opt v post_p.A.ap_space with
                 | Some e ->
                   e.Page_table.frame = f
                   && Page_state.equal_size e.Page_table.size size
                   && Atmo_hw.Pte_bits.equal_perm e.Page_table.perm perm
                 | None -> false)
               vas frames)
       (* virtual addresses outside va_range are not changed *)
       @& c "mmap/space_frame"
            (A.space_unchanged_except pre post ~proc (Iset.of_list vas))
       (* newly allocated pages were free pages *)
       @& c "mmap/frames_were_free" (List.for_all (A.page_is_free pre) frames)
       (* each page is mapped uniquely *)
       @& c "mmap/frames_unique"
            (Iset.cardinal (Iset.of_list frames) = List.length frames)
       @& c "mmap/frames_now_mapped"
            (Iset.equal post.A.mapped (Iset.union pre.A.mapped (Iset.of_list frames)))
       @& c "mmap/tables_allocated"
            (Iset.equal post.A.allocated (Iset.union pre.A.allocated new_tables))
       @& c "mmap/pt_monotone" (Iset.subset pre_p.A.ap_pt_pages post_p.A.ap_pt_pages)
       @& c "mmap/free_drop"
            (free_frame_total pre - free_frame_total post = (count * fp) + n_tables)
       (* the caller's container is charged exactly *)
       @& (match Imap.find_opt cntr pre.A.containers with
           | None -> c "mmap/container_alive" false
           | Some cc ->
             container_is post cntr
               { cc with A.ac_used = cc.A.ac_used + (count * fp) + n_tables })
       (* the process object changed only in its address space / tables *)
       @& c "mmap/proc_only_space"
            (A.equal_aproc post_p
               { pre_p with A.ap_space = post_p.A.ap_space; ap_pt_pages = post_p.A.ap_pt_pages })
       @& unchanged_bundle ~cntrs:(Iset.singleton cntr) ~procs:(Iset.singleton proc)
            ~memory:true pre post)

let spec_munmap ~(pre : A.t) ~(post : A.t) ~thread ~va ~count ~size : ck =
  match caller_context pre ~thread with
  | None -> c "munmap/caller_alive" false
  | Some (_, proc, pre_p, cntr) ->
    let bytes = Page_state.bytes_per size in
    let fp = Page_state.frames_per size in
    let vas = List.init count (fun i -> va + (i * bytes)) in
    (match Imap.find_opt proc post.A.procs with
     | None -> c "munmap/proc_survives" false
     | Some post_p ->
       let unmapped_frames =
         List.filter_map
           (fun v ->
             Option.map (fun (e : Page_table.entry) -> e.Page_table.frame)
               (Imap.find_opt v pre_p.A.ap_space))
           vas
         |> Iset.of_list
       in
       c "munmap/were_mapped"
         (List.for_all
            (fun v ->
              match Imap.find_opt v pre_p.A.ap_space with
              | Some e -> Page_state.equal_size e.Page_table.size size
              | None -> false)
            vas)
       @& c "munmap/now_unmapped"
            (List.for_all (fun v -> not (Imap.mem v post_p.A.ap_space)) vas)
       @& c "munmap/space_frame"
            (A.space_unchanged_except pre post ~proc (Iset.of_list vas))
       (* a frame stays mapped iff some surviving mapping still names it *)
       @& c "munmap/mapped_evolution"
            (Iset.equal post.A.mapped (all_mapped_heads post))
       @& c "munmap/allocated_unchanged" (Iset.equal pre.A.allocated post.A.allocated)
       @& c "munmap/free_growth"
            (free_frame_total post - free_frame_total pre
             = Iset.cardinal (Iset.diff unmapped_frames post.A.mapped) * fp)
       @& (match Imap.find_opt cntr pre.A.containers with
           | None -> c "munmap/container_alive" false
           | Some cc ->
             container_is post cntr { cc with A.ac_used = cc.A.ac_used - (count * fp) })
       @& c "munmap/proc_only_space"
            (A.equal_aproc post_p { pre_p with A.ap_space = post_p.A.ap_space })
       @& unchanged_bundle ~cntrs:(Iset.singleton cntr) ~procs:(Iset.singleton proc)
            ~memory:true pre post)

let spec_mprotect ~(pre : A.t) ~(post : A.t) ~thread ~va ~perm : ck =
  match caller_context pre ~thread with
  | None -> c "mprotect/caller_alive" false
  | Some (_, proc, pre_p, _) ->
    (match (Imap.find_opt va pre_p.A.ap_space, Imap.find_opt proc post.A.procs) with
     | Some e, Some post_p ->
       c "mprotect/perm_updated"
         (match Imap.find_opt va post_p.A.ap_space with
          | Some e' -> Page_table.equal_entry e' { e with Page_table.perm }
          | None -> false)
       @& c "mprotect/space_frame"
            (A.space_unchanged_except pre post ~proc (Iset.singleton va))
       @& c "mprotect/proc_only_space"
            (A.equal_aproc post_p { pre_p with A.ap_space = post_p.A.ap_space })
       @& unchanged_bundle ~procs:(Iset.singleton proc) pre post
     | None, _ -> c "mprotect/was_mapped" false
     | _, None -> c "mprotect/proc_survives" false)

let spec_new_container ~(pre : A.t) ~(post : A.t) ~thread ~quota ~cpus child : ck =
  match caller_context pre ~thread with
  | None -> c "new_container/caller_alive" false
  | Some (_, _, _, parent) ->
    (match Imap.find_opt parent pre.A.containers with
     | None -> c "new_container/parent_alive" false
     | Some pc ->
       let expected_child =
         {
           A.ac_parent = Some parent;
           ac_children = [];
           ac_procs = [];
           ac_quota = quota;
           ac_used = 1;
           ac_delegated = 0;
           ac_cpus = cpus;
           ac_depth = pc.A.ac_depth + 1;
           ac_path = pc.A.ac_path @ [ parent ];
           ac_subtree = Iset.empty;
         }
       in
       c "new_container/fresh" (not (Imap.mem child pre.A.containers))
       @& c "new_container/page_was_free" (A.page_is_free pre child)
       @& (match Imap.find_opt child post.A.containers with
           | Some got -> c "new_container/child_state" (A.equal_acontainer got expected_child)
           | None -> c "new_container/child_exists" false)
       @& container_is post parent
            {
              pc with
              A.ac_children = pc.A.ac_children @ [ child ];
              ac_delegated = pc.A.ac_delegated + quota;
              ac_subtree = Iset.add child pc.A.ac_subtree;
            }
       (* every ancestor's ghost subtree gains the child and nothing else
          changes (the paper's new_container_ensures, Listing 3) *)
       @& List.concat_map
            (fun anc ->
              match (Imap.find_opt anc pre.A.containers, Imap.find_opt anc post.A.containers) with
              | Some a, Some a' ->
                c
                  (Printf.sprintf "new_container/ancestor_0x%x" anc)
                  (A.equal_acontainer a' { a with A.ac_subtree = Iset.add child a.A.ac_subtree })
              | _ -> c "new_container/ancestor_alive" false)
            pc.A.ac_path
       @& c "new_container/allocated"
            (Iset.equal post.A.allocated (Iset.add child pre.A.allocated))
       @& c "new_container/free_drop" (free_frame_total pre - free_frame_total post = 1)
       @& c "new_container/mapped_unchanged" (Iset.equal pre.A.mapped post.A.mapped)
       @& unchanged_bundle
            ~cntrs:(Iset.add child (Iset.add parent (Iset.of_list pc.A.ac_path)))
            ~memory:true pre post)

let spec_new_process ~(pre : A.t) ~(post : A.t) ~thread proc : ck =
  match caller_context pre ~thread with
  | None -> c "new_process/caller_alive" false
  | Some (_, caller_proc, pre_cp, cntr) ->
    let new_pages = Iset.diff post.A.allocated pre.A.allocated in
    let pt_pages = Iset.remove proc new_pages in
    c "new_process/fresh" (not (Imap.mem proc pre.A.procs))
    @& c "new_process/two_pages"
         (Iset.cardinal new_pages = 2 && Iset.mem proc new_pages)
    @& c "new_process/pages_were_free"
         (Iset.for_all (A.page_is_free pre) new_pages)
    @& (match Imap.find_opt proc post.A.procs with
        | Some got ->
          c "new_process/state"
            (A.equal_aproc got
               {
                 A.ap_owner_container = cntr;
                 ap_parent = Some caller_proc;
                 ap_children = [];
                 ap_threads = [];
                 ap_space = Imap.empty;
                 ap_pt_pages = pt_pages;
               })
        | None -> c "new_process/exists" false)
    @& (match Imap.find_opt caller_proc post.A.procs with
        | Some got ->
          c "new_process/parent_children"
            (A.equal_aproc got { pre_cp with A.ap_children = pre_cp.A.ap_children @ [ proc ] })
        | None -> c "new_process/parent_survives" false)
    @& (match Imap.find_opt cntr pre.A.containers with
        | None -> c "new_process/container_alive" false
        | Some cc ->
          container_is post cntr
            { cc with A.ac_used = cc.A.ac_used + 2; ac_procs = cc.A.ac_procs @ [ proc ] })
    @& c "new_process/free_drop" (free_frame_total pre - free_frame_total post = 2)
    @& c "new_process/mapped_unchanged" (Iset.equal pre.A.mapped post.A.mapped)
    @& unchanged_bundle ~cntrs:(Iset.singleton cntr)
         ~procs:(Iset.of_list [ proc; caller_proc ]) ~memory:true pre post

let spec_new_thread ~(pre : A.t) ~(post : A.t) ~thread th_new : ck =
  match caller_context pre ~thread with
  | None -> c "new_thread/caller_alive" false
  | Some (_, caller_proc, pre_cp, cntr) ->
    c "new_thread/fresh" (not (Imap.mem th_new pre.A.threads))
    @& c "new_thread/page_was_free" (A.page_is_free pre th_new)
    @& (match Imap.find_opt th_new post.A.threads with
        | Some got ->
          c "new_thread/state"
            (A.equal_athread got
               {
                 A.at_owner_proc = caller_proc;
                 at_state = Thread.Runnable;
                 at_slots = [];
                 at_msg = None;
               })
        | None -> c "new_thread/exists" false)
    @& (match Imap.find_opt caller_proc post.A.procs with
        | Some got ->
          c "new_thread/proc_threads"
            (A.equal_aproc got { pre_cp with A.ap_threads = pre_cp.A.ap_threads @ [ th_new ] })
        | None -> c "new_thread/proc_survives" false)
    @& c "new_thread/enqueued" (post.A.run_queue = pre.A.run_queue @ [ th_new ])
    @& c "new_thread/current_unchanged" (pre.A.current = post.A.current)
    @& (match Imap.find_opt cntr pre.A.containers with
        | None -> c "new_thread/container_alive" false
        | Some cc -> container_is post cntr { cc with A.ac_used = cc.A.ac_used + 1 })
    @& c "new_thread/allocated" (Iset.equal post.A.allocated (Iset.add th_new pre.A.allocated))
    @& c "new_thread/free_drop" (free_frame_total pre - free_frame_total post = 1)
    @& unchanged_bundle ~cntrs:(Iset.singleton cntr) ~procs:(Iset.singleton caller_proc)
         ~threads:(Iset.singleton th_new) ~sched:true ~memory:true pre post

let spec_new_endpoint ~(pre : A.t) ~(post : A.t) ~thread ~slot ep : ck =
  match caller_context pre ~thread with
  | None -> c "new_endpoint/caller_alive" false
  | Some (pre_th, _, _, cntr) ->
    c "new_endpoint/fresh" (not (Imap.mem ep pre.A.endpoints))
    @& c "new_endpoint/page_was_free" (A.page_is_free pre ep)
    @& c "new_endpoint/slot_was_empty" (not (List.mem_assoc slot pre_th.A.at_slots))
    @& (match Imap.find_opt ep post.A.endpoints with
        | Some got ->
          c "new_endpoint/state"
            (A.equal_aendpoint got
               {
                 A.ae_owner_container = cntr;
                 ae_send_queue = [];
                 ae_recv_queue = [];
                 ae_refcount = 1;
               })
        | None -> c "new_endpoint/exists" false)
    @& (match Imap.find_opt thread post.A.threads with
        | Some got ->
          c "new_endpoint/slot_installed"
            (A.equal_athread got
               { pre_th with A.at_slots = slots_with pre_th.A.at_slots slot ep })
        | None -> c "new_endpoint/thread_survives" false)
    @& (match Imap.find_opt cntr pre.A.containers with
        | None -> c "new_endpoint/container_alive" false
        | Some cc -> container_is post cntr { cc with A.ac_used = cc.A.ac_used + 1 })
    @& c "new_endpoint/allocated" (Iset.equal post.A.allocated (Iset.add ep pre.A.allocated))
    @& c "new_endpoint/free_drop" (free_frame_total pre - free_frame_total post = 1)
    @& unchanged_bundle ~cntrs:(Iset.singleton cntr) ~threads:(Iset.singleton thread)
         ~edpts:(Iset.singleton ep) ~memory:true pre post

let spec_close_endpoint ~(pre : A.t) ~(post : A.t) ~thread ~slot : ck =
  match caller_context pre ~thread with
  | None -> c "close_endpoint/caller_alive" false
  | Some (pre_th, _, _, _) ->
    (match List.assoc_opt slot pre_th.A.at_slots with
     | None -> c "close_endpoint/slot_held" false
     | Some ep ->
       let pre_e = Imap.find ep pre.A.endpoints in
       c "close_endpoint/slot_cleared"
         (match Imap.find_opt thread post.A.threads with
          | Some got ->
            A.equal_athread got
              { pre_th with A.at_slots = List.remove_assoc slot pre_th.A.at_slots }
          | None -> false)
       @&
       if pre_e.A.ae_refcount = 1 then
         c "close_endpoint/freed" (not (Imap.mem ep post.A.endpoints))
         @& c "close_endpoint/irq_routes_cleared"
              (Imap.equal A.equal_adevice post.A.devices
                 (Imap.map
                    (fun (d : A.adevice) ->
                      if d.A.ad_irq_endpoint = Some ep then
                        { d with A.ad_irq_endpoint = None; ad_irq_pending = 0 }
                      else d)
                    pre.A.devices))
         @& c "close_endpoint/page_released"
              (Iset.equal post.A.allocated (Iset.remove ep pre.A.allocated))
         @& c "close_endpoint/free_growth" (free_frame_total post - free_frame_total pre = 1)
         @& (match Imap.find_opt pre_e.A.ae_owner_container pre.A.containers with
             | None -> c "close_endpoint/owner_alive" false
             | Some cc ->
               container_is post pre_e.A.ae_owner_container
                 { cc with A.ac_used = cc.A.ac_used - 1 })
         @& unchanged_bundle
              ~cntrs:(Iset.singleton pre_e.A.ae_owner_container)
              ~threads:(Iset.singleton thread) ~edpts:(Iset.singleton ep) ~memory:true
              ~devices:true pre post
       else
         c "close_endpoint/refcount_drop"
           (match Imap.find_opt ep post.A.endpoints with
            | Some got ->
              A.equal_aendpoint got { pre_e with A.ae_refcount = pre_e.A.ae_refcount - 1 }
            | None -> false)
         @& unchanged_bundle ~threads:(Iset.singleton thread) ~edpts:(Iset.singleton ep)
              pre post)

(* grants as seen from the spec: what the receiver gains *)
let grant_clauses ~(pre : A.t) ~(post : A.t) ~sender ~receiver ~(msg : Message.t) : ck =
  let s_th = Imap.find sender pre.A.threads in
  let r_th = Imap.find receiver pre.A.threads in
  let r_proc = r_th.A.at_owner_proc in
  let page_ck =
    match msg.Message.page with
    | None ->
      c "ipc/no_page_grant"
        (A.procs_unchanged_except pre post Iset.empty && A.memory_unchanged pre post)
    | Some g ->
      let s_proc = s_th.A.at_owner_proc in
      let s_space = A.get_address_space pre ~proc:s_proc in
      (match Imap.find_opt g.Message.src_vaddr s_space with
       | None -> c "ipc/page_grant_src_mapped" false
       | Some e ->
         let pre_rp = Imap.find r_proc pre.A.procs in
         (match Imap.find_opt r_proc post.A.procs with
          | None -> c "ipc/receiver_proc_survives" false
          | Some post_rp ->
            let new_tables = Iset.diff post_rp.A.ap_pt_pages pre_rp.A.ap_pt_pages in
            let n_tables = Iset.cardinal new_tables in
            let r_cntr = pre_rp.A.ap_owner_container in
            c "ipc/page_mapped_in_receiver"
              (match Imap.find_opt g.Message.dst_vaddr post_rp.A.ap_space with
               | Some e' -> Page_table.equal_entry e' e
               | None -> false)
            @& c "ipc/receiver_space_frame"
                 (A.space_unchanged_except pre post ~proc:r_proc
                    (Iset.singleton g.Message.dst_vaddr))
            @& c "ipc/frame_stays_mapped" (Iset.equal post.A.mapped pre.A.mapped)
            @& c "ipc/tables_allocated"
                 (Iset.equal post.A.allocated (Iset.union pre.A.allocated new_tables))
            @& c "ipc/free_drop" (free_frame_total pre - free_frame_total post = n_tables)
            @& (match Imap.find_opt r_cntr pre.A.containers with
                | None -> c "ipc/receiver_container_alive" false
                | Some cc ->
                  container_is post r_cntr
                    { cc with A.ac_used = cc.A.ac_used + 1 + n_tables })
            @& c "ipc/procs_frame" (A.procs_unchanged_except pre post (Iset.singleton r_proc))
            @& c "ipc/containers_frame"
                 (A.containers_unchanged_except pre post (Iset.singleton r_cntr))))
  in
  let edpt_ck =
    match msg.Message.endpoint with
    | None -> c "ipc/no_endpoint_grant" true
    | Some g ->
      (match List.assoc_opt g.Message.src_slot s_th.A.at_slots with
       | None -> c "ipc/endpoint_grant_src_held" false
       | Some ep2 ->
         c "ipc/endpoint_installed"
           (match Imap.find_opt receiver post.A.threads with
            | Some got -> List.assoc_opt g.Message.dst_slot got.A.at_slots = Some ep2
            | None -> false)
         @& c "ipc/endpoint_refcount"
              (match (Imap.find_opt ep2 pre.A.endpoints, Imap.find_opt ep2 post.A.endpoints) with
               | Some e, Some e' ->
                 A.equal_aendpoint e' { e with A.ae_refcount = e.A.ae_refcount + 1 }
               | _ -> false))
  in
  page_ck @& edpt_ck

let spec_send ~(pre : A.t) ~(post : A.t) ~thread ~slot ~(msg : Message.t)
    (ret : Syscall.ret) : ck =
  match caller_context pre ~thread with
  | None -> c "send/caller_alive" false
  | Some (pre_th, _, _, _) ->
    (match List.assoc_opt slot pre_th.A.at_slots with
     | None -> c "send/slot_held" false
     | Some ep ->
       let pre_e = Imap.find ep pre.A.endpoints in
       (match ret with
        | Syscall.Runit ->
          (* immediate rendezvous with a waiting receiver *)
          (match pre_e.A.ae_recv_queue with
           | [] -> c "send/receiver_was_waiting" false
           | receiver :: rest ->
             let touched_edpts =
               match msg.Message.endpoint with
               | Some g ->
                 (match List.assoc_opt g.Message.src_slot pre_th.A.at_slots with
                  | Some ep2 -> Iset.of_list [ ep; ep2 ]
                  | None -> Iset.singleton ep)
               | None -> Iset.singleton ep
             in
             let q, cur, running =
               sched_after_rendezvous pre ~caller:thread ~partner:receiver
             in
             let touched_threads =
               Iset.of_list
                 (thread :: receiver
                  :: (match running with Some w -> [ w ] | None -> []))
             in
             c "send/receiver_dequeued"
               (match Imap.find_opt ep post.A.endpoints with
                | Some e' ->
                  e'.A.ae_recv_queue = rest
                  && e'.A.ae_send_queue = pre_e.A.ae_send_queue
                  && e'.A.ae_refcount >= pre_e.A.ae_refcount
                | None -> false)
             @& c "send/receiver_woken"
                  (match Imap.find_opt receiver post.A.threads with
                   | Some r ->
                     Thread.equal_sched_state r.A.at_state
                       (if cur = Some receiver then Thread.Running else Thread.Runnable)
                     && (match r.A.at_msg with Some m -> eq_msg m msg | None -> false)
                   | None -> false)
             @& c "send/sched_evolution" (post.A.run_queue = q && post.A.current = cur)
             @& c "send/next_running"
                  (match running with
                   | None -> true
                   | Some w when w = receiver -> true
                   | Some w ->
                     (match Imap.find_opt w post.A.threads with
                      | Some wt -> Thread.equal_sched_state wt.A.at_state Thread.Running
                      | None -> false))
             @& c "send/sender_evolution"
                  (match Imap.find_opt thread post.A.threads with
                   | Some s ->
                     A.equal_athread s
                       { pre_th with
                         A.at_state =
                           (if pre.A.current = Some thread then Thread.Runnable
                            else pre_th.A.at_state);
                       }
                   | None -> false)
             @& grant_clauses ~pre ~post ~sender:thread ~receiver ~msg
             @& c "send/threads_frame"
                  (A.threads_unchanged_except pre post touched_threads)
             @& c "send/endpoints_frame" (A.endpoints_unchanged_except pre post touched_edpts)
             @& c "send/devices_unchanged" (A.devices_unchanged_except pre post Iset.empty))
        | Syscall.Rblocked ->
          let q, cur, woken = sched_after_detach pre ~caller:thread ~requeue_caller:false in
          c "send/no_receiver" (pre_e.A.ae_recv_queue = [])
          @& c "send/sender_blocked"
               (match Imap.find_opt thread post.A.threads with
                | Some s ->
                  Thread.equal_sched_state s.A.at_state (Thread.Blocked_send ep)
                  && (match s.A.at_msg with Some m -> eq_msg m msg | None -> false)
                  && eq_slots s.A.at_slots pre_th.A.at_slots
                | None -> false)
          @& c "send/queued"
               (match Imap.find_opt ep post.A.endpoints with
                | Some e' ->
                  A.equal_aendpoint e'
                    { pre_e with A.ae_send_queue = pre_e.A.ae_send_queue @ [ thread ] }
                | None -> false)
          @& c "send/sched_evolution"
               (post.A.run_queue = q && post.A.current = cur
                &&
                match woken with
                | None -> true
                | Some w ->
                  (match Imap.find_opt w post.A.threads with
                   | Some wt -> Thread.equal_sched_state wt.A.at_state Thread.Running
                   | None -> false))
          @& unchanged_bundle
               ~threads:
                 (Iset.of_list (thread :: (match woken with Some w -> [ w ] | None -> [])))
               ~edpts:(Iset.singleton ep) ~sched:true pre post
        | _ -> c "send/ret_shape" false))

let spec_recv ~(pre : A.t) ~(post : A.t) ~thread ~slot (ret : Syscall.ret) : ck =
  match caller_context pre ~thread with
  | None -> c "recv/caller_alive" false
  | Some (pre_th, _, _, _) ->
    (match List.assoc_opt slot pre_th.A.at_slots with
     | None -> c "recv/slot_held" false
     | Some ep ->
       let pre_e = Imap.find ep pre.A.endpoints in
       (match ret with
        | Syscall.Rmsg msg when pre_e.A.ae_send_queue = [] ->
          (* interrupt delivery: a pending irq routed to this endpoint is
             consumed instead of blocking *)
          (match
             Imap.fold
               (fun device (d : A.adevice) acc ->
                 match acc with
                 | Some _ -> acc
                 | None ->
                   if d.A.ad_irq_endpoint = Some ep && d.A.ad_irq_pending > 0 then
                     Some (device, d)
                   else None)
               pre.A.devices None
           with
           | None -> c "recv/sender_or_irq_was_waiting" false
           | Some (device, d0) ->
             c "recv/irq_msg_shape"
               (msg.Message.scalars = [ device ] && msg.Message.page = None
                && msg.Message.endpoint = None)
             @& c "recv/irq_pending_consumed"
                  (match Imap.find_opt device post.A.devices with
                   | Some d1 ->
                     A.equal_adevice d1
                       { d0 with A.ad_irq_pending = d0.A.ad_irq_pending - 1 }
                   | None -> false)
             @& c "recv/irq_caller_carries_msg"
                  (match Imap.find_opt thread post.A.threads with
                   | Some r ->
                     Thread.equal_sched_state r.A.at_state pre_th.A.at_state
                     && (match r.A.at_msg with Some m -> eq_msg m msg | None -> false)
                   | None -> false)
             @& c "recv/irq_devices_frame"
                  (A.devices_unchanged_except pre post (Iset.singleton device))
             @& unchanged_bundle ~threads:(Iset.singleton thread) ~devices:true pre post)
        | Syscall.Rmsg msg ->
          (match pre_e.A.ae_send_queue with
           | [] -> c "recv/sender_was_waiting" false
           | sender :: rest ->
             let s_pre = Imap.find sender pre.A.threads in
             let touched_edpts =
               match msg.Message.endpoint with
               | Some g ->
                 (match List.assoc_opt g.Message.src_slot s_pre.A.at_slots with
                  | Some ep2 -> Iset.of_list [ ep; ep2 ]
                  | None -> Iset.singleton ep)
               | None -> Iset.singleton ep
             in
             let q, cur, running =
               sched_after_rendezvous pre ~caller:thread ~partner:sender
             in
             let touched_threads =
               Iset.of_list
                 (thread :: sender
                  :: (match running with Some w -> [ w ] | None -> []))
             in
             c "recv/msg_is_senders"
               (match s_pre.A.at_msg with Some m -> eq_msg m msg | None -> false)
             @& c "recv/sender_dequeued"
                  (match Imap.find_opt ep post.A.endpoints with
                   | Some e' ->
                     e'.A.ae_send_queue = rest
                     && e'.A.ae_recv_queue = pre_e.A.ae_recv_queue
                     && e'.A.ae_refcount >= pre_e.A.ae_refcount
                   | None -> false)
             @& c "recv/sender_woken"
                  (match Imap.find_opt sender post.A.threads with
                   | Some s ->
                     Thread.equal_sched_state s.A.at_state
                       (if cur = Some sender then Thread.Running else Thread.Runnable)
                     && s.A.at_msg = None
                   | None -> false)
             @& c "recv/sched_evolution" (post.A.run_queue = q && post.A.current = cur)
             @& c "recv/next_running"
                  (match running with
                   | None -> true
                   | Some w when w = sender -> true
                   | Some w ->
                     (match Imap.find_opt w post.A.threads with
                      | Some wt -> Thread.equal_sched_state wt.A.at_state Thread.Running
                      | None -> false))
             @& c "recv/caller_carries_msg"
                  (match Imap.find_opt thread post.A.threads with
                   | Some r ->
                     Thread.equal_sched_state r.A.at_state
                       (if pre.A.current = Some thread then Thread.Runnable
                        else pre_th.A.at_state)
                     && (match r.A.at_msg with Some m -> eq_msg m msg | None -> false)
                   | None -> false)
             @& grant_clauses ~pre ~post ~sender ~receiver:thread ~msg
             @& c "recv/threads_frame"
                  (A.threads_unchanged_except pre post touched_threads)
             @& c "recv/endpoints_frame" (A.endpoints_unchanged_except pre post touched_edpts)
             @& c "recv/devices_unchanged" (A.devices_unchanged_except pre post Iset.empty))
        | Syscall.Rblocked ->
          let q, cur, woken = sched_after_detach pre ~caller:thread ~requeue_caller:false in
          c "recv/no_sender" (pre_e.A.ae_send_queue = [])
          @& c "recv/caller_blocked"
               (match Imap.find_opt thread post.A.threads with
                | Some r ->
                  Thread.equal_sched_state r.A.at_state (Thread.Blocked_recv ep)
                  && r.A.at_msg = None
                  && eq_slots r.A.at_slots pre_th.A.at_slots
                | None -> false)
          @& c "recv/queued"
               (match Imap.find_opt ep post.A.endpoints with
                | Some e' ->
                  A.equal_aendpoint e'
                    { pre_e with A.ae_recv_queue = pre_e.A.ae_recv_queue @ [ thread ] }
                | None -> false)
          @& c "recv/sched_evolution"
               (post.A.run_queue = q && post.A.current = cur
                &&
                match woken with
                | None -> true
                | Some w ->
                  (match Imap.find_opt w post.A.threads with
                   | Some wt -> Thread.equal_sched_state wt.A.at_state Thread.Running
                   | None -> false))
          @& unchanged_bundle
               ~threads:
                 (Iset.of_list (thread :: (match woken with Some w -> [ w ] | None -> [])))
               ~edpts:(Iset.singleton ep) ~sched:true pre post
        | _ -> c "recv/ret_shape" false))

let spec_recv_reject ~(pre : A.t) ~(post : A.t) ~thread ~slot : ck =
  match caller_context pre ~thread with
  | None -> c "recv_reject/caller_alive" false
  | Some (pre_th, _, _, _) ->
    (match List.assoc_opt slot pre_th.A.at_slots with
     | None -> c "recv_reject/slot_held" false
     | Some ep ->
       let pre_e = Imap.find ep pre.A.endpoints in
       (match pre_e.A.ae_send_queue with
        | [] -> c "recv_reject/sender_was_waiting" false
        | sender :: rest ->
          let s_pre = Imap.find sender pre.A.threads in
          c "recv_reject/sender_dequeued"
            (match Imap.find_opt ep post.A.endpoints with
             | Some e' -> A.equal_aendpoint e' { pre_e with A.ae_send_queue = rest }
             | None -> false)
          @& c "recv_reject/sender_woken"
               (match Imap.find_opt sender post.A.threads with
                | Some s ->
                  A.equal_athread s
                    { s_pre with A.at_state = Thread.Runnable; at_msg = None }
                | None -> false)
          @& c "recv_reject/sender_enqueued" (post.A.run_queue = pre.A.run_queue @ [ sender ])
          @& c "recv_reject/current_unchanged" (pre.A.current = post.A.current)
          @& unchanged_bundle ~threads:(Iset.singleton sender) ~edpts:(Iset.singleton ep)
               ~sched:true pre post))

let spec_yield ~(pre : A.t) ~(post : A.t) ~thread : ck =
  match Imap.find_opt thread pre.A.threads with
  | None -> c "yield/caller_alive" false
  | Some pre_th ->
    (match pre_th.A.at_state with
     | Thread.Running ->
       let q, cur, _ = sched_after_detach pre ~caller:thread ~requeue_caller:true in
       let touched =
         Iset.of_list (thread :: (match cur with Some w -> [ w ] | None -> []))
       in
       c "yield/sched_evolution" (post.A.run_queue = q && post.A.current = cur)
       @& c "yield/next_running"
            (match cur with
             | None -> true
             | Some w ->
               (match Imap.find_opt w post.A.threads with
                | Some wt -> Thread.equal_sched_state wt.A.at_state Thread.Running
                | None -> false))
       @& c "yield/caller_state"
            (match Imap.find_opt thread post.A.threads with
             | Some t ->
               if cur = Some thread then
                 Thread.equal_sched_state t.A.at_state Thread.Running
               else Thread.equal_sched_state t.A.at_state Thread.Runnable
             | None -> false)
       @& unchanged_bundle ~threads:touched ~sched:true pre post
     | Thread.Runnable -> c "yield/noop" (A.equal pre post)
     | Thread.Blocked_send _ | Thread.Blocked_recv _ -> c "yield/caller_not_blocked" false)

(* shared machinery for the two termination calls *)
let termination_sets (pre : A.t) ~dead_cntrs ~root_procs =
  (* dead processes: those owned by dead containers plus the given
     process subtrees (children closure computed from the abstract
     state) *)
  let rec close_procs frontier acc =
    match frontier with
    | [] -> acc
    | p :: rest ->
      if Iset.mem p acc then close_procs rest acc
      else
        let acc = Iset.add p acc in
        (match Imap.find_opt p pre.A.procs with
         | Some pr -> close_procs (pr.A.ap_children @ rest) acc
         | None -> close_procs rest acc)
  in
  let owned_by_dead =
    Imap.fold
      (fun p (pr : A.aproc) acc ->
        if Iset.mem pr.A.ap_owner_container dead_cntrs then p :: acc else acc)
      pre.A.procs []
  in
  let dead_procs = close_procs (owned_by_dead @ root_procs) Iset.empty in
  let dead_threads =
    Imap.fold
      (fun th (t : A.athread) acc ->
        if Iset.mem t.A.at_owner_proc dead_procs then Iset.add th acc else acc)
      pre.A.threads Iset.empty
  in
  (* reference drops per endpoint from dying threads' descriptor tables *)
  let dropped = Hashtbl.create 16 in
  Iset.iter
    (fun th ->
      let t = Imap.find th pre.A.threads in
      List.iter
        (fun (_, ep) ->
          Hashtbl.replace dropped ep
            (1 + Option.value ~default:0 (Hashtbl.find_opt dropped ep)))
        t.A.at_slots)
    dead_threads;
  let dead_endpoints =
    Imap.fold
      (fun ep (e : A.aendpoint) acc ->
        let drops = Option.value ~default:0 (Hashtbl.find_opt dropped ep) in
        if e.A.ae_refcount - drops <= 0 then Iset.add ep acc else acc)
      pre.A.endpoints Iset.empty
  in
  (dead_procs, dead_threads, dead_endpoints, dropped)

let dead_pages (pre : A.t) ~dead_cntrs ~dead_procs ~dead_threads ~dead_endpoints =
  let pt_pages =
    Iset.fold
      (fun p acc ->
        match Imap.find_opt p pre.A.procs with
        | Some pr -> Iset.union acc pr.A.ap_pt_pages
        | None -> acc)
      dead_procs Iset.empty
  in
  (* IOMMU tables of devices whose owner dies are freed with them *)
  let io_pages =
    Imap.fold
      (fun _ (d : A.adevice) acc ->
        if Iset.mem d.A.ad_owner_proc dead_procs then Iset.union acc d.A.ad_pt_pages
        else acc)
      pre.A.devices Iset.empty
  in
  Iset.union_list [ dead_cntrs; dead_procs; dead_threads; dead_endpoints; pt_pages; io_pages ]

let termination_common_clauses ~(pre : A.t) ~(post : A.t) ~dead_cntrs ~dead_procs
    ~dead_threads ~dead_endpoints : ck =
  c "terminate/containers_gone"
    (Iset.equal (Imap.dom post.A.containers) (Iset.diff (Imap.dom pre.A.containers) dead_cntrs))
  @& c "terminate/procs_gone"
       (Iset.equal (Imap.dom post.A.procs) (Iset.diff (Imap.dom pre.A.procs) dead_procs))
  @& c "terminate/threads_gone"
       (Iset.equal (Imap.dom post.A.threads) (Iset.diff (Imap.dom pre.A.threads) dead_threads))
  @& c "terminate/endpoints_gone"
       (Iset.equal (Imap.dom post.A.endpoints)
          (Iset.diff (Imap.dom pre.A.endpoints) dead_endpoints))
  @& c "terminate/pages_released"
       (Iset.equal post.A.allocated
          (Iset.diff pre.A.allocated
             (dead_pages pre ~dead_cntrs ~dead_procs ~dead_threads ~dead_endpoints)))
  @& c "terminate/mapped_evolution" (Iset.equal post.A.mapped (all_mapped_heads post))
  @& c "terminate/run_queue"
       (post.A.run_queue = List.filter (fun th -> not (Iset.mem th dead_threads)) pre.A.run_queue)
  @& c "terminate/current"
       (post.A.current
        = (match pre.A.current with
           | Some cth when Iset.mem cth dead_threads -> None
           | other -> other))
  @& c "terminate/devices"
       (Imap.equal A.equal_adevice post.A.devices
          (Imap.filter
             (fun _ (d : A.adevice) -> not (Iset.mem d.A.ad_owner_proc dead_procs))
             pre.A.devices
           |> Imap.map (fun (d : A.adevice) ->
                  match d.A.ad_irq_endpoint with
                  | Some ep when Iset.mem ep dead_endpoints ->
                    { d with A.ad_irq_endpoint = None; ad_irq_pending = 0 }
                  | Some _ | None -> d)))
  (* surviving threads keep their state except queue removals never
     apply to them (their slots may still reference surviving
     endpoints, whose refcounts already account for the drops) *)
  @& c "terminate/surviving_threads_unchanged"
       (Imap.for_all
          (fun th (t : A.athread) ->
            match Imap.find_opt th pre.A.threads with
            | Some t0 -> A.equal_athread t t0
            | None -> false)
          post.A.threads)

let spec_terminate_container ~(pre : A.t) ~(post : A.t) ~thread ~container : ck =
  match caller_context pre ~thread with
  | None -> c "terminate_container/caller_alive" false
  | Some (_, _, _, caller_cntr) ->
    (match Imap.find_opt container pre.A.containers with
     | None -> c "terminate_container/target_alive" false
     | Some victim ->
       let caller_c = Imap.find caller_cntr pre.A.containers in
       let dead_cntrs = Iset.add container victim.A.ac_subtree in
       let dead_procs, dead_threads, dead_endpoints, _ =
         termination_sets pre ~dead_cntrs ~root_procs:[]
       in
       let parent = Option.value ~default:(-1) victim.A.ac_parent in
       (* endpoints owned inside the subtree that survive are harvested *)
       let harvested =
         Imap.fold
           (fun ep (e : A.aendpoint) acc ->
             if Iset.mem e.A.ae_owner_container dead_cntrs && not (Iset.mem ep dead_endpoints)
             then Iset.add ep acc
             else acc)
           pre.A.endpoints Iset.empty
       in
       c "terminate_container/capability" (Iset.mem container caller_c.A.ac_subtree)
       @& termination_common_clauses ~pre ~post ~dead_cntrs ~dead_procs ~dead_threads
            ~dead_endpoints
       @& c "terminate_container/harvested_reowned"
            (Iset.for_all
               (fun ep ->
                 match Imap.find_opt ep post.A.endpoints with
                 | Some e -> e.A.ae_owner_container = parent
                 | None -> false)
               harvested)
       @& (match Imap.find_opt parent post.A.containers with
           | None -> c "terminate_container/parent_survives" false
           | Some p ->
             let p0 = Imap.find parent pre.A.containers in
             c "terminate_container/parent_update"
               (p.A.ac_children = List.filter (fun x -> x <> container) p0.A.ac_children
                && p.A.ac_delegated = p0.A.ac_delegated - victim.A.ac_quota
                && Iset.equal p.A.ac_subtree (Iset.diff p0.A.ac_subtree dead_cntrs)
                && p.A.ac_quota = p0.A.ac_quota))
       @& c "terminate_container/ancestors_shrunk"
            (List.for_all
               (fun anc ->
                 match (Imap.find_opt anc pre.A.containers, Imap.find_opt anc post.A.containers) with
                 | Some a0, Some a1 ->
                   Iset.equal a1.A.ac_subtree (Iset.diff a0.A.ac_subtree dead_cntrs)
                 | _ -> false)
               victim.A.ac_path))

let spec_terminate_process ~(pre : A.t) ~(post : A.t) ~thread ~proc : ck =
  match caller_context pre ~thread with
  | None -> c "terminate_process/caller_alive" false
  | Some (_, caller_proc, _, _) ->
    (match Imap.find_opt proc pre.A.procs with
     | None -> c "terminate_process/target_alive" false
     | Some victim ->
       let dead_procs, dead_threads, dead_endpoints, _ =
         termination_sets pre ~dead_cntrs:Iset.empty ~root_procs:[ proc ]
       in
       (* capability: the victim descends from the caller's process *)
       let rec descends p fuel =
         fuel > 0
         &&
         match Imap.find_opt p pre.A.procs with
         | Some pr ->
           (match pr.A.ap_parent with
            | Some par -> par = caller_proc || descends par (fuel - 1)
            | None -> false)
         | None -> false
       in
       c "terminate_process/capability" (descends proc (Imap.cardinal pre.A.procs))
       @& c "terminate_process/containers_survive"
            (Iset.equal (Imap.dom pre.A.containers) (Imap.dom post.A.containers))
       @& termination_common_clauses ~pre ~post ~dead_cntrs:Iset.empty ~dead_procs
            ~dead_threads ~dead_endpoints
       @& c "terminate_process/parent_children"
            (match victim.A.ap_parent with
             | None -> true
             | Some par ->
               (match (Imap.find_opt par pre.A.procs, Imap.find_opt par post.A.procs) with
                | Some p0, Some p1 ->
                  p1.A.ap_children = List.filter (fun x -> x <> proc) p0.A.ap_children
                | _ -> false)))

let spec_assign_device ~(pre : A.t) ~(post : A.t) ~thread ~device : ck =
  match caller_context pre ~thread with
  | None -> c "assign_device/caller_alive" false
  | Some (_, proc, _, cntr) ->
    let new_pages = Iset.diff post.A.allocated pre.A.allocated in
    c "assign_device/was_unassigned" (not (Imap.mem device pre.A.devices))
    @& c "assign_device/one_table_page"
         (Iset.cardinal new_pages = 1 && Iset.for_all (A.page_is_free pre) new_pages)
    @& c "assign_device/installed"
         (match Imap.find_opt device post.A.devices with
          | Some d ->
            d.A.ad_owner_proc = proc
            && Imap.is_empty d.A.ad_io_space
            && Iset.equal d.A.ad_pt_pages new_pages
          | None -> false)
    @& c "assign_device/devices_frame"
         (A.devices_unchanged_except pre post (Iset.singleton device))
    @& c "assign_device/free_drop" (free_frame_total pre - free_frame_total post = 1)
    @& c "assign_device/mapped_unchanged" (Iset.equal pre.A.mapped post.A.mapped)
    @& (match Imap.find_opt cntr pre.A.containers with
        | None -> c "assign_device/container_alive" false
        | Some cc -> container_is post cntr { cc with A.ac_used = cc.A.ac_used + 1 })
    @& unchanged_bundle ~cntrs:(Iset.singleton cntr) ~devices:true ~memory:true pre post

let spec_io_map ~(pre : A.t) ~(post : A.t) ~thread ~device ~iova ~va : ck =
  match caller_context pre ~thread with
  | None -> c "io_map/caller_alive" false
  | Some (_, proc, pre_p, cntr) ->
    (match (Imap.find_opt device pre.A.devices, Imap.find_opt device post.A.devices) with
     | Some d0, Some d1 ->
       let new_tables = Iset.diff d1.A.ad_pt_pages d0.A.ad_pt_pages in
       let n_tables = Iset.cardinal new_tables in
       c "io_map/capability" (d0.A.ad_owner_proc = proc)
       @& c "io_map/source_mapped"
            (match Imap.find_opt va pre_p.A.ap_space with
             | Some e ->
               Page_state.equal_size e.Page_table.size Page_state.S4k
               && (match Imap.find_opt iova d1.A.ad_io_space with
                   | Some e' -> Page_table.equal_entry e' e
                   | None -> false)
             | None -> false)
       @& c "io_map/was_unmapped" (not (Imap.mem iova d0.A.ad_io_space))
       @& c "io_map/window_frame"
            (Imap.same_on_complement ~eq:Page_table.equal_entry d0.A.ad_io_space
               d1.A.ad_io_space (Iset.singleton iova))
       @& c "io_map/frame_stays_mapped" (Iset.equal pre.A.mapped post.A.mapped)
       @& c "io_map/tables_allocated"
            (Iset.equal post.A.allocated (Iset.union pre.A.allocated new_tables))
       @& c "io_map/free_drop" (free_frame_total pre - free_frame_total post = n_tables)
       @& (match Imap.find_opt cntr pre.A.containers with
           | None -> c "io_map/container_alive" false
           | Some cc ->
             container_is post cntr { cc with A.ac_used = cc.A.ac_used + 1 + n_tables })
       @& c "io_map/devices_frame"
            (A.devices_unchanged_except pre post (Iset.singleton device))
       @& unchanged_bundle ~cntrs:(Iset.singleton cntr) ~devices:true ~memory:true pre
            post
     | _ -> c "io_map/device_alive" false)

let spec_io_unmap ~(pre : A.t) ~(post : A.t) ~thread ~device ~iova : ck =
  match caller_context pre ~thread with
  | None -> c "io_unmap/caller_alive" false
  | Some (_, proc, _, cntr) ->
    (match (Imap.find_opt device pre.A.devices, Imap.find_opt device post.A.devices) with
     | Some d0, Some d1 ->
       (match Imap.find_opt iova d0.A.ad_io_space with
        | None -> c "io_unmap/was_mapped" false
        | Some e ->
          c "io_unmap/capability" (d0.A.ad_owner_proc = proc)
          @& c "io_unmap/now_unmapped" (not (Imap.mem iova d1.A.ad_io_space))
          @& c "io_unmap/window_frame"
               (Imap.same_on_complement ~eq:Page_table.equal_entry d0.A.ad_io_space
                  d1.A.ad_io_space (Iset.singleton iova))
          @& c "io_unmap/tables_kept" (Iset.equal d0.A.ad_pt_pages d1.A.ad_pt_pages)
          @& c "io_unmap/mapped_evolution" (Iset.equal post.A.mapped (all_mapped_heads post))
          @& c "io_unmap/allocated_unchanged" (Iset.equal pre.A.allocated post.A.allocated)
          @& c "io_unmap/free_growth"
               (free_frame_total post - free_frame_total pre
                = (if Iset.mem e.Page_table.frame post.A.mapped then 0 else 1))
          @& (match Imap.find_opt cntr pre.A.containers with
              | None -> c "io_unmap/container_alive" false
              | Some cc -> container_is post cntr { cc with A.ac_used = cc.A.ac_used - 1 })
          @& c "io_unmap/devices_frame"
               (A.devices_unchanged_except pre post (Iset.singleton device))
          @& unchanged_bundle ~cntrs:(Iset.singleton cntr) ~devices:true ~memory:true pre
               post)
     | _ -> c "io_unmap/device_alive" false)

let spec_register_irq ~(pre : A.t) ~(post : A.t) ~thread ~device ~slot : ck =
  match caller_context pre ~thread with
  | None -> c "register_irq/caller_alive" false
  | Some (pre_th, proc, _, _) ->
    (match (Imap.find_opt device pre.A.devices, Imap.find_opt device post.A.devices) with
     | Some d0, Some d1 ->
       c "register_irq/capability" (d0.A.ad_owner_proc = proc)
       @& c "register_irq/was_unrouted" (d0.A.ad_irq_endpoint = None)
       @& c "register_irq/slot_held"
            (match List.assoc_opt slot pre_th.A.at_slots with
             | Some ep -> d1.A.ad_irq_endpoint = Some ep
             | None -> false)
       @& c "register_irq/only_route_changed"
            (A.equal_adevice d1 { d0 with A.ad_irq_endpoint = d1.A.ad_irq_endpoint })
       @& c "register_irq/devices_frame"
            (A.devices_unchanged_except pre post (Iset.singleton device))
       @& unchanged_bundle ~devices:true pre post
     | _ -> c "register_irq/device_alive" false)

let spec_irq_fire ~(pre : A.t) ~(post : A.t) ~device : ck =
  match Imap.find_opt device pre.A.devices with
  | None -> c "irq_fire/spurious_dropped" (A.equal pre post)
  | Some d0 ->
    (match d0.A.ad_irq_endpoint with
     | None -> c "irq_fire/unrouted_dropped" (A.equal pre post)
     | Some ep ->
       let pre_e = Imap.find ep pre.A.endpoints in
       (match pre_e.A.ae_recv_queue with
        | receiver :: rest ->
          (* delivered like an immediate send of [device] *)
          c "irq_fire/receiver_dequeued"
            (match Imap.find_opt ep post.A.endpoints with
             | Some e' -> A.equal_aendpoint e' { pre_e with A.ae_recv_queue = rest }
             | None -> false)
          @& c "irq_fire/receiver_woken"
               (match Imap.find_opt receiver post.A.threads with
                | Some r ->
                  Thread.equal_sched_state r.A.at_state Thread.Runnable
                  && (match r.A.at_msg with
                      | Some m -> m.Message.scalars = [ device ] && m.Message.page = None
                                  && m.Message.endpoint = None
                      | None -> false)
                | None -> false)
          @& c "irq_fire/receiver_enqueued" (post.A.run_queue = pre.A.run_queue @ [ receiver ])
          @& c "irq_fire/current_unchanged" (pre.A.current = post.A.current)
          @& c "irq_fire/device_unchanged"
               (match Imap.find_opt device post.A.devices with
                | Some d1 -> A.equal_adevice d1 d0
                | None -> false)
          @& unchanged_bundle ~threads:(Iset.singleton receiver) ~edpts:(Iset.singleton ep)
               ~devices:true ~sched:true pre post
          @& c "irq_fire/devices_frame" (A.devices_unchanged_except pre post Iset.empty)
        | [] ->
          c "irq_fire/pended"
            (match Imap.find_opt device post.A.devices with
             | Some d1 ->
               A.equal_adevice d1 { d0 with A.ad_irq_pending = d0.A.ad_irq_pending + 1 }
             | None -> false)
          @& c "irq_fire/devices_frame"
               (A.devices_unchanged_except pre post (Iset.singleton device))
          @& unchanged_bundle ~devices:true pre post))

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                          *)

let success_clauses ~pre ~post ~thread (call : Syscall.t) (ret : Syscall.ret) : ck =
  match (call, ret) with
  | Syscall.Mmap { va; count; size; perm }, Syscall.Rmapped frames ->
    spec_mmap ~pre ~post ~thread ~va ~count ~size ~perm frames
  | Syscall.Munmap { va; count; size }, Syscall.Runit ->
    spec_munmap ~pre ~post ~thread ~va ~count ~size
  | Syscall.Mprotect { va; perm }, Syscall.Runit -> spec_mprotect ~pre ~post ~thread ~va ~perm
  | Syscall.New_container { quota; cpus }, Syscall.Rptr child ->
    spec_new_container ~pre ~post ~thread ~quota ~cpus child
  | Syscall.New_process, Syscall.Rptr p -> spec_new_process ~pre ~post ~thread p
  | Syscall.New_thread, Syscall.Rptr th -> spec_new_thread ~pre ~post ~thread th
  | Syscall.New_endpoint { slot }, Syscall.Rptr ep ->
    spec_new_endpoint ~pre ~post ~thread ~slot ep
  | Syscall.Close_endpoint { slot }, Syscall.Runit ->
    spec_close_endpoint ~pre ~post ~thread ~slot
  | Syscall.Send { slot; msg }, ((Syscall.Runit | Syscall.Rblocked) as r) ->
    spec_send ~pre ~post ~thread ~slot ~msg r
  | Syscall.Recv { slot }, ((Syscall.Rmsg _ | Syscall.Rblocked) as r) ->
    spec_recv ~pre ~post ~thread ~slot r
  | Syscall.Send_nb { slot; msg }, (Syscall.Runit as r) ->
    (* success of a non-blocking send is exactly the immediate-transfer
       case of send; the would-block case is an atomic error *)
    spec_send ~pre ~post ~thread ~slot ~msg r
  | Syscall.Recv_nb { slot }, (Syscall.Rmsg _ as r) -> spec_recv ~pre ~post ~thread ~slot r
  | Syscall.Recv_reject { slot }, Syscall.Runit -> spec_recv_reject ~pre ~post ~thread ~slot
  | Syscall.Yield, Syscall.Runit -> spec_yield ~pre ~post ~thread
  | Syscall.Terminate_container { container }, Syscall.Runit ->
    spec_terminate_container ~pre ~post ~thread ~container
  | Syscall.Terminate_process { proc }, Syscall.Runit ->
    spec_terminate_process ~pre ~post ~thread ~proc
  | Syscall.Assign_device { device }, Syscall.Runit ->
    spec_assign_device ~pre ~post ~thread ~device
  | Syscall.Io_map { device; iova; va }, Syscall.Runit ->
    spec_io_map ~pre ~post ~thread ~device ~iova ~va
  | Syscall.Io_unmap { device; iova }, Syscall.Runit ->
    spec_io_unmap ~pre ~post ~thread ~device ~iova
  | Syscall.Register_irq { device; slot }, Syscall.Runit ->
    spec_register_irq ~pre ~post ~thread ~device ~slot
  | Syscall.Irq_fire { device }, Syscall.Runit -> spec_irq_fire ~pre ~post ~device
  | _, _ -> c "ret_shape" false

let clauses ~pre ~post ~thread call ret : ck =
  let universal = c "conserved_frames" (accounted pre = accounted post) in
  match ret with
  | Syscall.Rerr _ -> universal @& c "error_atomic" (A.equal pre post)
  | _ -> universal @& success_clauses ~pre ~post ~thread call ret

let check ~pre ~post ~thread call ret =
  let cs = clauses ~pre ~post ~thread call ret in
  match List.find_opt (fun (_, ok) -> not ok) cs with
  | None -> Ok ()
  | Some (name, _) ->
    Error (Printf.sprintf "%s: clause '%s' violated" (Syscall.name call) name)
