(** System-call argument and return types.

    One uniform datatype for kernel invocations so that the refinement
    harness and the noninterference harness can drive the kernel with
    arbitrary (including random, malformed) calls — the paper's
    noninterference theorem quantifies over "an arbitrary system call
    with arbitrary arguments". *)

type t =
  | Mmap of {
      va : int;  (** first virtual base address *)
      count : int;  (** number of consecutive blocks to map *)
      size : Atmo_pmem.Page_state.size;
      perm : Atmo_hw.Pte_bits.perm;
    }
  | Munmap of { va : int; count : int; size : Atmo_pmem.Page_state.size }
  | Mprotect of { va : int; perm : Atmo_hw.Pte_bits.perm }
  | New_container of { quota : int; cpus : Atmo_util.Iset.t }
  | New_process
  | New_thread
  | New_endpoint of { slot : int }
  | Close_endpoint of { slot : int }
  | Send of { slot : int; msg : Atmo_pm.Message.t }
  | Recv of { slot : int }
  | Send_nb of { slot : int; msg : Atmo_pm.Message.t }
      (** non-blocking send: [Rerr Ewouldblock] when no receiver waits *)
  | Recv_nb of { slot : int }
      (** non-blocking receive: [Rerr Ewouldblock] when no sender waits *)
  | Recv_reject of { slot : int }
      (** discard the head sender's request without transferring: the
          sender is woken (its message dropped); how a server drains a
          request whose grants cannot be applied *)
  | Yield
  | Terminate_container of { container : int }
  | Terminate_process of { proc : int }
  | Assign_device of { device : int }
      (** create an IOMMU page table for the device, owned by the
          calling process *)
  | Io_map of { device : int; iova : int; va : int }
      (** expose the 4 KiB frame backing [va] to the device at [iova] *)
  | Io_unmap of { device : int; iova : int }
  | Register_irq of { device : int; slot : int }
      (** route the device's interrupt to the endpoint in the caller's
          descriptor slot (driver interrupt dispatch, §3) *)
  | Irq_fire of { device : int }
      (** hardware entry, not a user invocation: the device raised its
          interrupt; the kernel delivers it to the registered endpoint
          (waking a waiting receiver) or marks it pending *)

type ret =
  | Rptr of int  (** pointer to a freshly created object *)
  | Runit
  | Rblocked  (** the calling thread blocked inside the kernel *)
  | Rmsg of Atmo_pm.Message.t  (** a message delivered synchronously by recv *)
  | Rmapped of int list  (** physical blocks backing a new mapping, in va order *)
  | Rerr of Atmo_util.Errno.t

val pp : Format.formatter -> t -> unit
val pp_ret : Format.formatter -> ret -> unit
val equal_ret : ret -> ret -> bool
val name : t -> string
(** Constructor name, for reporting. *)

val number : t -> int
(** Stable syscall number (declaration order, 0-based), carried by the
    [Atmo_obs] tracepoints; [Atmo_obs.Event.syscall_name] inverts it. *)
