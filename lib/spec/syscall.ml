module Page_state = Atmo_pmem.Page_state
module Pte = Atmo_hw.Pte_bits
module Message = Atmo_pm.Message

type t =
  | Mmap of {
      va : int;
      count : int;
      size : Page_state.size;
      perm : Pte.perm;
    }
  | Munmap of { va : int; count : int; size : Page_state.size }
  | Mprotect of { va : int; perm : Pte.perm }
  | New_container of { quota : int; cpus : Atmo_util.Iset.t }
  | New_process
  | New_thread
  | New_endpoint of { slot : int }
  | Close_endpoint of { slot : int }
  | Send of { slot : int; msg : Message.t }
  | Recv of { slot : int }
  | Send_nb of { slot : int; msg : Message.t }
  | Recv_nb of { slot : int }
  | Recv_reject of { slot : int }
  | Yield
  | Terminate_container of { container : int }
  | Terminate_process of { proc : int }
  | Assign_device of { device : int }
  | Io_map of { device : int; iova : int; va : int }
  | Io_unmap of { device : int; iova : int }
  | Register_irq of { device : int; slot : int }
  | Irq_fire of { device : int }

type ret =
  | Rptr of int
  | Runit
  | Rblocked
  | Rmsg of Message.t
  | Rmapped of int list
  | Rerr of Atmo_util.Errno.t

(* Stable syscall numbers in declaration order; [Atmo_obs.Event] keeps a
   matching name table for decoding flight-recorder streams. *)
let number = function
  | Mmap _ -> 0
  | Munmap _ -> 1
  | Mprotect _ -> 2
  | New_container _ -> 3
  | New_process -> 4
  | New_thread -> 5
  | New_endpoint _ -> 6
  | Close_endpoint _ -> 7
  | Send _ -> 8
  | Recv _ -> 9
  | Send_nb _ -> 10
  | Recv_nb _ -> 11
  | Recv_reject _ -> 12
  | Yield -> 13
  | Terminate_container _ -> 14
  | Terminate_process _ -> 15
  | Assign_device _ -> 16
  | Io_map _ -> 17
  | Io_unmap _ -> 18
  | Register_irq _ -> 19
  | Irq_fire _ -> 20

let name = function
  | Mmap _ -> "mmap"
  | Munmap _ -> "munmap"
  | Mprotect _ -> "mprotect"
  | New_container _ -> "new_container"
  | New_process -> "new_process"
  | New_thread -> "new_thread"
  | New_endpoint _ -> "new_endpoint"
  | Close_endpoint _ -> "close_endpoint"
  | Send _ -> "send"
  | Recv _ -> "recv"
  | Send_nb _ -> "send_nb"
  | Recv_nb _ -> "recv_nb"
  | Recv_reject _ -> "recv_reject"
  | Yield -> "yield"
  | Terminate_container _ -> "terminate_container"
  | Terminate_process _ -> "terminate_process"
  | Assign_device _ -> "assign_device"
  | Io_map _ -> "io_map"
  | Io_unmap _ -> "io_unmap"
  | Register_irq _ -> "register_irq"
  | Irq_fire _ -> "irq_fire"

let pp ppf t =
  match t with
  | Mmap { va; count; size; perm } ->
    Format.fprintf ppf "mmap(va=0x%x, count=%d, size=%a, perm=%a)" va count
      Page_state.pp_size size Pte.pp_perm perm
  | Munmap { va; count; size } ->
    Format.fprintf ppf "munmap(va=0x%x, count=%d, size=%a)" va count
      Page_state.pp_size size
  | Mprotect { va; perm } -> Format.fprintf ppf "mprotect(va=0x%x, perm=%a)" va Pte.pp_perm perm
  | New_container { quota; cpus } ->
    Format.fprintf ppf "new_container(quota=%d, cpus=%d)" quota (Atmo_util.Iset.cardinal cpus)
  | New_process -> Format.pp_print_string ppf "new_process()"
  | New_thread -> Format.pp_print_string ppf "new_thread()"
  | New_endpoint { slot } -> Format.fprintf ppf "new_endpoint(slot=%d)" slot
  | Close_endpoint { slot } -> Format.fprintf ppf "close_endpoint(slot=%d)" slot
  | Send { slot; msg } -> Format.fprintf ppf "send(slot=%d, %a)" slot Message.pp msg
  | Recv { slot } -> Format.fprintf ppf "recv(slot=%d)" slot
  | Send_nb { slot; msg } -> Format.fprintf ppf "send_nb(slot=%d, %a)" slot Message.pp msg
  | Recv_nb { slot } -> Format.fprintf ppf "recv_nb(slot=%d)" slot
  | Recv_reject { slot } -> Format.fprintf ppf "recv_reject(slot=%d)" slot
  | Yield -> Format.pp_print_string ppf "yield()"
  | Terminate_container { container } ->
    Format.fprintf ppf "terminate_container(0x%x)" container
  | Terminate_process { proc } -> Format.fprintf ppf "terminate_process(0x%x)" proc
  | Assign_device { device } -> Format.fprintf ppf "assign_device(%d)" device
  | Io_map { device; iova; va } ->
    Format.fprintf ppf "io_map(dev=%d, iova=0x%x, va=0x%x)" device iova va
  | Io_unmap { device; iova } -> Format.fprintf ppf "io_unmap(dev=%d, iova=0x%x)" device iova
  | Register_irq { device; slot } ->
    Format.fprintf ppf "register_irq(dev=%d, slot=%d)" device slot
  | Irq_fire { device } -> Format.fprintf ppf "irq_fire(dev=%d)" device

let pp_ret ppf = function
  | Rptr p -> Format.fprintf ppf "Ok(ptr=0x%x)" p
  | Runit -> Format.pp_print_string ppf "Ok()"
  | Rblocked -> Format.pp_print_string ppf "Blocked"
  | Rmsg m -> Format.fprintf ppf "Ok(%a)" Message.pp m
  | Rmapped frames -> Format.fprintf ppf "Ok(%d frames)" (List.length frames)
  | Rerr e -> Format.fprintf ppf "Err(%a)" Atmo_util.Errno.pp e

let equal_ret (a : ret) b =
  match (a, b) with
  | Rptr x, Rptr y -> x = y
  | Runit, Runit | Rblocked, Rblocked -> true
  | Rmsg m, Rmsg m' ->
    m.Message.scalars = m'.Message.scalars
    && m.Message.page = m'.Message.page
    && m.Message.endpoint = m'.Message.endpoint
  | Rmapped x, Rmapped y -> x = y
  | Rerr x, Rerr y -> Atmo_util.Errno.equal x y
  | (Rptr _ | Runit | Rblocked | Rmsg _ | Rmapped _ | Rerr _), _ -> false
