(** Sink registry: where tracepoints go.

    Exactly one sink is installed at a time, process-global.  With
    {!Disabled} (the default) every tracepoint reduces to a single
    mutable-bool load — instrumentation sites guard with {!tracing}
    before constructing an event — and nothing observable happens: the
    cycle model of an instrumented run is bit-identical to an
    uninstrumented one.  Tracing is cycle-model-neutral even when a
    flight recorder is installed; recording costs host time only. *)

type t =
  | Disabled
  | Flight of Flight.t  (** record encoded events into per-CPU rings *)

val install : t -> unit
val installed : unit -> t

val tracing : unit -> bool
(** [false] iff the installed sink is {!Disabled}.  Tracepoint guard. *)

val set_clock : (unit -> int) -> unit
(** Inject the cycle-timestamp source (default: constant 0).  Owned by
    whoever drives the timeline — the SMP simulator or the trace CLI —
    so instrumented kernel code stays clock-free. *)

val now : unit -> int

val set_cpu : int -> unit
(** Current-CPU hint used when {!emit} is called without [?cpu]. *)

val current_cpu : unit -> int

val emit : ?ts:int -> ?cpu:int -> Event.t -> unit
(** Record an event (no-op when disabled).  Out-of-range CPUs fall back
    to ring 0.  [?ts] overrides the injected clock — span begin/end
    sites whose caller owns the timeline stamp explicit cycle times so a
    span's duration matches the cycle model exactly. *)

val records : unit -> Event.record list
(** Decode every live slot of the installed recorder, merged across
    CPUs and sorted by timestamp; [[]] when disabled. *)

val dropped : unit -> int
(** Total events overwritten across all rings of the installed sink. *)
