(** Sink registry: where tracepoints go.

    Exactly one sink is installed at a time, process-global.  With
    {!Disabled} (the default) every tracepoint reduces to a single
    load+mask of the per-tag enable word — the [emit_*] writers test it
    before constructing anything — and nothing observable happens: the
    cycle model of an instrumented run is bit-identical to an
    uninstrumented one.  Tracing is cycle-model-neutral even when a
    flight recorder is installed; recording costs host time only.

    The hot path allocates nothing: {!Flight.reserve} bumps the ring
    cursor and the writer stores the five slot words in place,
    bit-identical to what the boxed {!emit}/{!Event.encode} oracle
    produces (asserted in tests).  Admission is per event kind: a tag
    bitmask ({!set_filter}) and a power-of-two sample shift
    ({!set_sample}) are checked before any field is written, and exact
    per-tag tallies ([obs/emitted/<kind>], [obs/sampled_out/<kind>],
    [obs/bad_cpu]) survive even when ring slots are overwritten. *)

type t =
  | Disabled
  | Flight of Flight.t  (** record encoded events into per-CPU rings *)

val install : t -> unit
(** Install a sink.  Installing a {!Flight} recorder starts a fresh
    session: per-tag tallies and the sampling phase reset (so seeded
    runs are deterministic); pending tallies of the outgoing session
    are published first.  The filter mask and sample shifts persist
    across installs. *)

val installed : unit -> t

val tracing : unit -> bool
(** [false] iff the installed sink is {!Disabled}.  Tracepoint guard. *)

val tracing_tag : int -> bool
(** [tracing_tag tag] is one load+mask: true iff a recorder is
    installed {e and} [tag]'s filter bit is set.  What instrumentation
    sites (and the [emit_*] writers themselves) check before any event
    construction. *)

val set_filter : int -> unit
(** Set the per-tag enable bitmask (bit [t] enables tag [t]; out-of-
    range bits are ignored).  Default: {!Event.all_tags_mask}.  Takes
    effect immediately if a recorder is installed.  Note the span
    layer is governed by the [span_begin] bit alone — span ends and
    packed pairs follow their span's admission so begin/end stay
    balanced. *)

val get_filter : unit -> int

val set_sample : tag:int -> shift:int -> unit
(** Keep 1 in [2^shift] admitted events of [tag] ([shift = 0], the
    default, keeps every event).  Deterministic: a per-tag counter
    decides, so the same event sequence samples identically.  Rejected
    events are tallied in [obs/sampled_out/<kind>].  Raises
    [Invalid_argument] for a bad tag or [shift] outside [0..30]. *)

val set_sample_all : shift:int -> unit
(** {!set_sample} for every tag. *)

val admit : int -> bool
(** The full admission gate: {!tracing_tag} plus the sampling decision
    (tallying a rejection).  The [emit_*] writers call it internally;
    it is exposed for the span layer, which must learn the decision at
    [begin_] time so a sampled-out span can be skipped whole. *)

val set_clock : (unit -> int) -> unit
(** Inject the cycle-timestamp source (default: constant 0).  Owned by
    whoever drives the timeline — the SMP simulator or the trace CLI —
    so instrumented kernel code stays clock-free. *)

val now : unit -> int

val set_cpu : int -> unit
(** Current-CPU hint used when emitting without [?cpu]. *)

val current_cpu : unit -> int

(** {2 Zero-allocation per-tag writers}

    One writer per event kind, mirroring {!Event.t} field for field.
    Each checks {!admit} first (one load+mask when the tag is off),
    then writes the 40-byte slot directly into the recorder arena —
    no [Event.t], no intermediate buffer, no copy.  [?ts] overrides
    the injected clock, [?cpu] the CPU hint; an out-of-range CPU files
    the event on ring 0 and counts [obs/bad_cpu]. *)

val emit_syscall_enter : ?ts:int -> ?cpu:int -> thread:int -> sysno:int -> unit -> unit

val emit_syscall_exit :
  ?ts:int -> ?cpu:int -> thread:int -> sysno:int -> errno:Atmo_util.Errno.t option ->
  unit -> unit

val emit_page_alloc : ?ts:int -> ?cpu:int -> addr:int -> order:int -> unit -> unit
val emit_page_free : ?ts:int -> ?cpu:int -> addr:int -> order:int -> unit -> unit
val emit_superpage_merge : ?ts:int -> ?cpu:int -> head:int -> order:int -> unit -> unit
val emit_ep_create : ?ts:int -> ?cpu:int -> container:int -> unit -> unit

val emit_ep_send :
  ?ts:int -> ?cpu:int -> ep:int -> sender:int -> receiver:int -> unit -> unit

val emit_ep_recv :
  ?ts:int -> ?cpu:int -> ep:int -> receiver:int -> sender:int -> unit -> unit

val emit_ep_block :
  ?ts:int -> ?cpu:int -> ep:int -> thread:int -> dir:Event.dir -> unit -> unit

val emit_mmu_walk : ?ts:int -> ?cpu:int -> vaddr:int -> ok:bool -> unit -> unit
val emit_pte_touch : ?ts:int -> ?cpu:int -> table:int -> index:int -> unit -> unit
val emit_drv_doorbell : ?ts:int -> ?cpu:int -> device:int -> queue:int -> unit -> unit
val emit_drv_completion : ?ts:int -> ?cpu:int -> device:int -> count:int -> unit -> unit

val emit_lock_acquire :
  ?ts:int -> ?cpu:int -> cpu_id:int -> wait_cycles:int -> unit -> unit
(** [cpu_id] is the event payload (the CPU that won the lock); [?cpu]
    stays the recording-ring override. *)

val emit_tlb_hit : ?ts:int -> ?cpu:int -> vaddr:int -> unit -> unit
val emit_tlb_miss : ?ts:int -> ?cpu:int -> vaddr:int -> unit -> unit
val emit_tlb_flush : ?ts:int -> ?cpu:int -> asid:int -> entries:int -> unit -> unit

val emit_ep_fastpath :
  ?ts:int -> ?cpu:int -> ep:int -> sender:int -> receiver:int -> unit -> unit

val emit_causal : ?ts:int -> ?cpu:int -> edge:int -> src:int -> dst:int -> unit -> unit
val emit_dev_fault : ?ts:int -> ?cpu:int -> device:int -> fault:int -> unit -> unit
val emit_dev_recover : ?ts:int -> ?cpu:int -> device:int -> fault:int -> unit -> unit

(** The three span writers do {e not} consult {!admit}: the span layer
    makes one admission decision per span (under the [span_begin] tag)
    and these only write, so a span is recorded whole or not at all. *)

val emit_span_begin :
  ?ts:int -> ?cpu:int -> span:int -> parent:int -> kind:int -> owner:int -> unit -> unit

val emit_span_end :
  ?ts:int -> ?cpu:int -> span:int -> kind:int -> owner:int -> unit -> unit

val emit_span_pair :
  ?ts:int -> ?cpu:int -> span:int -> parent:int -> kind:int -> owner:int -> unit -> unit

val emit : ?ts:int -> ?cpu:int -> Event.t -> unit
(** The boxed oracle path: encode into a fresh buffer and copy it into
    the ring ({!Event.encode} → {!Flight.push}).  Subject to the same
    filter/sampling admission and [obs/bad_cpu] accounting as the fast
    writers, and byte-identical in the arena — tests diff the two.
    Not for hot paths. *)

val records : unit -> Event.record list
(** Decode every live slot of the installed recorder in place, merged
    across CPUs and sorted by timestamp (monotone int compare); [[]]
    when disabled.  Packed {!Event.Span_pair} records are expanded
    back into begin/end pairs, so consumers see the unbatched stream.
    Publishes pending tallies first. *)

val dropped : unit -> int
(** Total events overwritten across all rings of the installed sink
    (lossless lifetime count).  Publishes pending tallies first. *)

val publish_counters : unit -> unit
(** Flush the per-tag emitted/sampled-out tallies and the bad-CPU
    count into the metrics registry ([obs/emitted/<kind>],
    [obs/sampled_out/<kind>], [obs/bad_cpu]) by delta.  Idempotent;
    also runs on {!install}, {!records} and {!dropped}. *)

val emitted_count : tag:int -> int
(** Events of [tag] admitted this session (exact even when slots
    dropped); 0 for an out-of-range tag. *)

val sampled_out_count : tag:int -> int
(** Events of [tag] rejected by sampling this session. *)

val bad_cpu_count : unit -> int
(** Events filed to ring 0 because their CPU was out of range. *)
