(** Typed kernel tracepoints.

    One variant covers every instrumented hot path of the stack: system
    call entry/exit (with the {!Atmo_util.Errno.t} result), physical
    page allocation/free and superpage formation, endpoint send / recv /
    block transitions, MMU walks and the individual PTE loads they
    perform, driver queue doorbells/completions, and big-lock
    acquisitions.  Events carry no heap structure so that encoding them
    into a flight-recorder slot is a handful of stores. *)

type dir = Dir_send | Dir_recv

type t =
  | Syscall_enter of { thread : int; sysno : int }
  | Syscall_exit of { thread : int; sysno : int; errno : Atmo_util.Errno.t option }
      (** [errno = None] means the call succeeded (any non-[Rerr] return). *)
  | Page_alloc of { addr : int; order : int }
      (** [order]: 0 = 4 KiB, 1 = 2 MiB, 2 = 1 GiB. *)
  | Page_free of { addr : int; order : int }
  | Superpage_merge of { head : int; order : int }
      (** [order] is the size of the block formed. *)
  | Ep_create of { container : int }
  | Ep_send of { ep : int; sender : int; receiver : int }
      (** A message crossed the endpoint (observed on the send path). *)
  | Ep_recv of { ep : int; receiver : int; sender : int }
      (** A message crossed the endpoint (observed on the receive path). *)
  | Ep_block of { ep : int; thread : int; dir : dir }
  | Mmu_walk of { vaddr : int; ok : bool }
  | Pte_touch of { table : int; index : int }
      (** One page-table-entry load during a walk (TLB-fill traffic). *)
  | Drv_doorbell of { device : int; queue : int }
      (** Driver notified the device (tail-register write / submission). *)
  | Drv_completion of { device : int; count : int }
  | Lock_acquire of { cpu : int; wait_cycles : int }
      (** Big kernel lock granted after [wait_cycles] queued cycles. *)
  | Tlb_hit of { vaddr : int }
      (** A translation was served from the software TLB. *)
  | Tlb_miss of { vaddr : int }
      (** The TLB missed and a full walk refilled it. *)
  | Tlb_flush of { asid : int; entries : int }
      (** An address space's cache was flushed ([entries] dropped). *)
  | Ep_fastpath of { ep : int; sender : int; receiver : int }
      (** A rendezvous took the IPC fastpath: the message was delivered
          and the CPU switched directly to the partner, bypassing the
          generic scheduler machinery. *)
  | Span_begin of { span : int; parent : int; kind : int; owner : int }
      (** A typed span opened.  [span] is a run-unique id, [parent] the
          enclosing span on the same CPU (0 for a root), [kind] a span
          kind code (see {!span_kind_name}), [owner] the owning
          container pointer (-1 when unowned). *)
  | Span_end of { span : int; kind : int; owner : int }
  | Causal of { edge : int; src : int; dst : int }
      (** A cross-span causal edge ([src]/[dst] are span ids): IPC
          send→recv, IRQ→endpoint delivery, driver submit→completion,
          or a scheduler wakeup.  See {!causal_name}. *)
  | Dev_fault of { device : int; fault : int }
      (** A device misbehaved (hostile-mode injection or a real model
          fault); [fault] is a fault code, see {!fault_name}. *)
  | Dev_recover of { device : int; fault : int }
      (** The driver absorbed a device fault with a typed error and the
          device model returned to its operating state. *)
  | Span_pair of { span : int; parent : int; kind : int; owner : int }
      (** A zero-duration span batched into one packed record: the
          begin and end happened at the same cycle timestamp (driver
          submit/complete markers, context switches).  {!Sink.records}
          expands it back into a {!Span_begin}/{!Span_end} pair so the
          profiler and exporters see an unchanged stream at half the
          ring cost. *)

type record = { ts : int; cpu : int; ev : t }
(** A decoded flight-recorder slot: cycle timestamp, recording CPU, event. *)

val syscall_name : int -> string
(** Name of a syscall number, matching [Atmo_spec.Syscall.number]
    (declaration order of the syscall variant). *)

val syscall_count : int

val span_kind_name : int -> string
(** Decoder-side name of a span kind code: fixed structural kinds
    (1-15), ["app<n>"] for registered application kinds (16-63; the
    Span registry holds the real names), ["sys_<name>"] for 64+n. *)

val causal_name : int -> string
(** Name of a causal-edge code: ipc / irq / drv / wakeup. *)

val fault_name : int -> string
(** Name of a device-fault code carried by [Dev_fault]/[Dev_recover];
    matches [Atmo_devmodel.Fault.code] (cross-checked in tests). *)

val kind : t -> string
(** Constructor name, for grouping decoded streams. *)

(** {2 Tags}

    The 1-based tag byte of each constructor (0 marks an empty slot).
    The sink's per-tag filter bitmask, sampling shifts, and
    emitted/sampled-out counters are all indexed by these codes, and
    the zero-allocation [Sink.emit_*] writers store them directly. *)

val tag_syscall_enter : int
val tag_syscall_exit : int
val tag_page_alloc : int
val tag_page_free : int
val tag_superpage_merge : int
val tag_ep_create : int
val tag_ep_send : int
val tag_ep_recv : int
val tag_ep_block : int
val tag_mmu_walk : int
val tag_pte_touch : int
val tag_drv_doorbell : int
val tag_drv_completion : int
val tag_lock_acquire : int
val tag_tlb_hit : int
val tag_tlb_miss : int
val tag_tlb_flush : int
val tag_ep_fastpath : int
val tag_span_begin : int
val tag_span_end : int
val tag_causal : int
val tag_dev_fault : int
val tag_dev_recover : int
val tag_span_pair : int

val tag_count : int
(** Highest valid tag (tags are [1..tag_count]). *)

val tag_of : t -> int
(** Tag code of a boxed event (allocating path only; the fast writers
    never construct a [t]). *)

val tag_name : int -> string
(** Constructor name of a tag code, matching {!kind}. *)

val tag_of_name : string -> int option
(** Inverse of {!tag_name} — how [atmo trace --filter] resolves kind
    names to mask bits. *)

val all_tags_mask : int
(** Bitmask with every valid tag bit set (bit [t] for tag [t]). *)

val slot_bytes : int
(** Fixed size of one encoded event: 40 bytes. *)

val errno_code : Atmo_util.Errno.t -> int
(** Stable wire code of an errno as stored in [Syscall_exit] slots
    (0 means success); used by the sink's zero-allocation writer. *)

val encode : ts:int -> cpu:int -> t -> bytes
(** Encode into a fresh [slot_bytes] buffer (little-endian u64 fields,
    tag byte first; a zero tag byte denotes an empty slot). *)

val decode : bytes -> record option
(** Inverse of {!encode}; [None] on an empty or corrupt slot. *)

val decode_at : bytes -> int -> record option
(** [decode_at buf off] decodes the slot starting at byte [off] of a
    larger buffer (the flight-recorder arena) without copying it out;
    [None] on an empty or corrupt slot or an out-of-bounds offset. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_record : Format.formatter -> record -> unit
