(** Per-CPU flight-recorder rings in a flat byte arena.

    Layout per CPU (mirroring {!Atmo_sim.Ring}'s byte-accurate style):
    [[head:u64][tail:u64][dropped:u64][slot 0][slot 1]...] with
    free-running head/tail counters masked by [slots-1].  All state
    lives in the arena; pushing to a full ring overwrites the oldest
    slot and increments the drop counter (a flight recorder never
    refuses an event). *)

type t

val header_bytes : int

val create : cpus:int -> slots:int -> slot_size:int -> t
(** [slots] must be a positive power of two (per CPU). *)

val cpus : t -> int
val slots : t -> int
val slot_size : t -> int
val size_bytes : t -> int

val head : t -> cpu:int -> int
val tail : t -> cpu:int -> int
val length : t -> cpu:int -> int
(** Live slots ([head - tail], at most [slots]). *)

val dropped : t -> cpu:int -> int
(** Events overwritten before being read on this CPU's ring, as
    recorded in the arena's decoder-visible header word.  Wiped by
    {!clear} together with the rest of the ring state. *)

val lifetime_dropped : t -> cpu:int -> int
(** Lossless per-CPU drop count for the lifetime of the recorder.
    Kept outside the arena so it is never itself droppable: it
    survives {!clear}, which is what benchmark drop accounting must
    read (a cleared ring silently under-reported drops through
    {!dropped}). *)

val total_dropped : t -> int
(** Sum of {!lifetime_dropped} over all CPUs. *)

val push : t -> cpu:int -> bytes -> unit
(** Record a payload (truncated / zero-padded to [slot_size]). *)

val to_list : t -> cpu:int -> bytes list
(** Live slots, oldest first. *)

val clear : t -> unit
