(** Per-CPU flight-recorder rings in a flat byte arena.

    Layout per CPU (mirroring {!Atmo_sim.Ring}'s byte-accurate style):
    [[head:u64][tail:u64][dropped:u64][slot 0][slot 1]...] with
    free-running head/tail counters masked by [slots-1].  All state
    lives in the arena; pushing to a full ring overwrites the oldest
    slot and increments the drop counter (a flight recorder never
    refuses an event). *)

type t

val header_bytes : int

val create : cpus:int -> slots:int -> slot_size:int -> t
(** [slots] must be a positive power of two (per CPU). *)

val cpus : t -> int
val slots : t -> int
val slot_size : t -> int
val size_bytes : t -> int

val head : t -> cpu:int -> int
val tail : t -> cpu:int -> int
val length : t -> cpu:int -> int
(** Live slots ([head - tail], at most [slots]). *)

val dropped : t -> cpu:int -> int
(** Events overwritten before being read on this CPU's ring. *)

val total_dropped : t -> int

val push : t -> cpu:int -> bytes -> unit
(** Record a payload (truncated / zero-padded to [slot_size]). *)

val to_list : t -> cpu:int -> bytes list
(** Live slots, oldest first. *)

val clear : t -> unit
