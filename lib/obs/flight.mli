(** Per-CPU flight-recorder rings in a flat byte arena.

    Layout per CPU (mirroring {!Atmo_sim.Ring}'s byte-accurate style):
    [[head:u64][tail:u64][dropped:u64][slot 0][slot 1]...] with
    free-running head/tail counters masked by [slots-1].  All state
    lives in the arena; pushing to a full ring overwrites the oldest
    slot and increments the drop counter (a flight recorder never
    refuses an event). *)

type t

val header_bytes : int

val create : cpus:int -> slots:int -> slot_size:int -> t
(** [slots] must be a positive power of two (per CPU). *)

val cpus : t -> int
val slots : t -> int
val slot_size : t -> int
val size_bytes : t -> int

val head : t -> cpu:int -> int
val tail : t -> cpu:int -> int
val length : t -> cpu:int -> int
(** Live slots ([head - tail], at most [slots]). *)

val dropped : t -> cpu:int -> int
(** Events overwritten before being read on this CPU's ring, as
    recorded in the arena's decoder-visible header word.  Wiped by
    {!clear} together with the rest of the ring state. *)

val lifetime_dropped : t -> cpu:int -> int
(** Lossless per-CPU drop count for the lifetime of the recorder.
    Kept outside the arena so it is never itself droppable: it
    survives {!clear}, which is what benchmark drop accounting must
    read (a cleared ring silently under-reported drops through
    {!dropped}). *)

val total_dropped : t -> int
(** Sum of {!lifetime_dropped} over all CPUs. *)

val push : t -> cpu:int -> bytes -> unit
(** Record a payload (truncated / zero-padded to [slot_size]). *)

val reserve : t -> cpu:int -> int
(** Claim the next slot on [cpu]'s ring and return its byte offset in
    {!arena}: the zero-allocation emit path.  Advances the head with
    the same overwrite-oldest drop accounting as {!push}, but does not
    zero the slot — the caller must write all [slot_size] bytes.
    [cpu] must already be in range (the sink clamps before calling). *)

val arena : t -> bytes
(** The backing arena itself, for in-place encode ({!reserve}) and
    in-place decode ({!Event.decode_at} over {!slot_offset}). *)

val slot_offset : t -> cpu:int -> int -> int
(** Arena offset of the slot a free-running index maps to (the index
    is masked by [slots-1], as in ring addressing). *)

val store_u64 : bytes -> int -> int -> unit
(** [store_u64 buf off v] writes [v] at [off] exactly as
    [Bytes.set_int64_le buf off (Int64.of_int v)] would, spelled as
    byte stores so the non-flambda compiler emits no boxed [Int64] on
    the per-event path (the encode-oracle test pins the equivalence). *)

val load_u64 : bytes -> int -> int
(** Inverse of {!store_u64} (i.e. [Int64.to_int] of the LE word). *)

val to_list : t -> cpu:int -> bytes list
(** Live slots, oldest first. *)

val clear : t -> unit
