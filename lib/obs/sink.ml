(* The sink registry: where tracepoints go.

   Instrumentation sites are written as

     if Sink.tracing () then Sink.emit (Event....)

   so that with the [Disabled] sink the entire observability subsystem
   costs one mutable-bool load per tracepoint — no event is constructed,
   no clock is read, no metric is touched, and (crucially for the
   simulation) no cycle-model state is ever advanced.  Tracing is
   cycle-model-neutral by design even when enabled: recording happens in
   host time only, so enabling a sink never changes simulated results. *)

type t = Disabled | Flight of Flight.t

let current = ref Disabled
let enabled = ref false

(* Timestamp source and current-CPU hint are injected by whoever owns
   the timeline (the SMP simulator, the trace CLI); instrumented kernel
   code stays clock-free. *)
let now_fn : (unit -> int) ref = ref (fun () -> 0)
let cpu_hint = ref 0

let install s =
  current := s;
  enabled := (match s with Disabled -> false | Flight _ -> true)

let installed () = !current
let tracing () = !enabled

let set_clock f = now_fn := f
let now () = !now_fn ()
let set_cpu c = cpu_hint := c
let current_cpu () = !cpu_hint

let emit ?ts ?cpu ev =
  match !current with
  | Disabled -> ()
  | Flight fr ->
    let cpu =
      match cpu with
      | Some c -> if c >= 0 && c < Flight.cpus fr then c else 0
      | None ->
        let c = !cpu_hint in
        if c >= 0 && c < Flight.cpus fr then c else 0
    in
    let ts = match ts with Some t -> t | None -> !now_fn () in
    Flight.push fr ~cpu (Event.encode ~ts ~cpu ev)

let records () =
  match !current with
  | Disabled -> []
  | Flight fr ->
    let all = ref [] in
    for c = Flight.cpus fr - 1 downto 0 do
      all := List.filter_map Event.decode (Flight.to_list fr ~cpu:c) @ !all
    done;
    List.stable_sort (fun (a : Event.record) b -> compare a.Event.ts b.Event.ts) !all

let dropped () =
  match !current with Disabled -> 0 | Flight fr -> Flight.total_dropped fr
