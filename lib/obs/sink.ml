(* The sink registry: where tracepoints go.

   Instrumentation sites call the per-tag [emit_*] writers, whose first
   instruction is one load+mask of [enabled_mask]: with the [Disabled]
   sink the mask is 0, so the entire observability subsystem costs one
   test per tracepoint — no event is constructed, no clock is read, no
   metric is touched, and (crucially for the simulation) no cycle-model
   state is ever advanced.  Tracing is cycle-model-neutral by design
   even when enabled: recording happens in host time only, so enabling
   a sink never changes simulated results.

   The hot path is allocation-free end to end: [Flight.reserve] bumps
   the ring cursor and returns the slot's arena offset, and the writer
   stores the five slot words in place ([Flight.store_u64], bit-for-bit
   what [Event.encode] produces — the boxed [emit] below is kept as the
   oracle and the tests assert arena-byte identity).

   Filtering and sampling are per tag: a bitmask enables each event
   kind, and a power-of-two sample shift keeps 1-in-2^shift of the
   admitted events.  Both decisions happen before any field is written.
   Per-tag [emitted]/[sampled_out] tallies (and the out-of-range-CPU
   count) are plain int arrays bumped on the hot path and published
   into the metrics registry as [obs/emitted/<kind>],
   [obs/sampled_out/<kind>] and [obs/bad_cpu] at read time, so the
   accounting is exact even when ring slots are overwritten. *)

type t = Disabled | Flight of Flight.t

let current = ref Disabled
let enabled = ref false

(* Timestamp source and current-CPU hint are injected by whoever owns
   the timeline (the SMP simulator, the trace CLI); instrumented kernel
   code stays clock-free. *)
let now_fn : (unit -> int) ref = ref (fun () -> 0)
let cpu_hint = ref 0

(* ------------------------------------------------------------------ *)
(* Per-tag filter mask, sampling, and lossless tallies                  *)

(* [filter_mask] is the configured per-tag enable mask; [enabled_mask]
   is what the hot path tests: equal to [filter_mask] while a recorder
   is installed, 0 when disabled.  One word folds "is tracing on at
   all" and "is this kind enabled" into a single load+mask. *)
let filter_mask = ref Event.all_tags_mask
let enabled_mask = ref 0

let counters_len = Event.tag_count + 1
let sample_shift = Array.make counters_len 0
let sample_ctr = Array.make counters_len 0
let emitted = Array.make counters_len 0
let sampled_out = Array.make counters_len 0
let published_emitted = Array.make counters_len 0
let published_sampled = Array.make counters_len 0
let bad_cpu = ref 0
let published_bad_cpu = ref 0

(* Sync the hot-path tallies into the metrics registry by delta.  Kept
   off the emit path (a registry bump is a hashtable probe); called
   from [records]/[dropped] and explicitly by benches/CLI. *)
let publish_counters () =
  for tag = 1 to Event.tag_count do
    let d = emitted.(tag) - published_emitted.(tag) in
    if d > 0 then begin
      Metrics.bump ~by:d ("obs/emitted/" ^ Event.tag_name tag);
      published_emitted.(tag) <- emitted.(tag)
    end;
    let d = sampled_out.(tag) - published_sampled.(tag) in
    if d > 0 then begin
      Metrics.bump ~by:d ("obs/sampled_out/" ^ Event.tag_name tag);
      published_sampled.(tag) <- sampled_out.(tag)
    end
  done;
  let d = !bad_cpu - !published_bad_cpu in
  if d > 0 then begin
    Metrics.bump ~by:d "obs/bad_cpu";
    published_bad_cpu := !bad_cpu
  end

let install s =
  (* Don't lose the outgoing session's tallies. *)
  publish_counters ();
  current := s;
  match s with
  | Disabled ->
    enabled := false;
    enabled_mask := 0
  | Flight _ ->
    enabled := true;
    enabled_mask := !filter_mask;
    (* Fresh recorder session: per-tag tallies and the sampling phase
       restart so seeded runs are deterministic. *)
    Array.fill emitted 0 counters_len 0;
    Array.fill sampled_out 0 counters_len 0;
    Array.fill published_emitted 0 counters_len 0;
    Array.fill published_sampled 0 counters_len 0;
    Array.fill sample_ctr 0 counters_len 0;
    bad_cpu := 0;
    published_bad_cpu := 0

let installed () = !current
let tracing () = !enabled

let set_clock f = now_fn := f
let now () = !now_fn ()
let set_cpu c = cpu_hint := c
let current_cpu () = !cpu_hint

let set_filter mask =
  filter_mask := mask land Event.all_tags_mask;
  if !enabled then enabled_mask := !filter_mask

let get_filter () = !filter_mask

let set_sample ~tag ~shift =
  if tag < 1 || tag > Event.tag_count then invalid_arg "Sink.set_sample: bad tag";
  if shift < 0 || shift > 30 then invalid_arg "Sink.set_sample: bad shift";
  sample_shift.(tag) <- shift

let set_sample_all ~shift =
  for tag = 1 to Event.tag_count do
    set_sample ~tag ~shift
  done

let tracing_tag tag = !enabled_mask land (1 lsl tag) <> 0

(* The full admission gate: mask, then sampling.  A masked-off kind
   costs exactly the load+mask and leaves every counter untouched; a
   sampled-out event is tallied so the accounting stays lossless. *)
let admit tag =
  !enabled_mask land (1 lsl tag) <> 0
  && (let sh = sample_shift.(tag) in
      sh = 0
      ||
      let c = sample_ctr.(tag) in
      sample_ctr.(tag) <- c + 1;
      if c land ((1 lsl sh) - 1) = 0 then true
      else begin
        sampled_out.(tag) <- sampled_out.(tag) + 1;
        false
      end)

(* ------------------------------------------------------------------ *)
(* The zero-allocation writer                                          *)

(* Write one admitted event straight into the arena slot returned by
   [Flight.reserve]: five u64 stores, nothing allocated.  The first
   word packs tag/aux/cpu exactly as [Event.encode] lays out bytes 0-7
   (tag at byte 0, aux at byte 1, cpu at byte 2, reserved bytes zero),
   so the slot is bit-identical to the boxed oracle without a fill. *)
let write ?ts ?cpu ~tag ~aux a b c =
  match !current with
  | Disabled -> ()
  | Flight fr ->
    emitted.(tag) <- emitted.(tag) + 1;
    let cpu =
      match cpu with
      | Some c ->
        if c >= 0 && c < Flight.cpus fr then c
        else begin
          bad_cpu := !bad_cpu + 1;
          0
        end
      | None ->
        let c = !cpu_hint in
        if c >= 0 && c < Flight.cpus fr then c
        else begin
          bad_cpu := !bad_cpu + 1;
          0
        end
    in
    let ts = match ts with Some t -> t | None -> !now_fn () in
    let off = Flight.reserve fr ~cpu in
    let arena = Flight.arena fr in
    Flight.store_u64 arena off (tag lor ((aux land 0xff) lsl 8) lor ((cpu land 0xff) lsl 16));
    Flight.store_u64 arena (off + 8) ts;
    Flight.store_u64 arena (off + 16) a;
    Flight.store_u64 arena (off + 24) b;
    Flight.store_u64 arena (off + 32) c

(* Per-tag emitters.  Field-to-word layout mirrors [Event.fields]
   clause for clause; the randomized oracle test compares the arena
   bytes of every emitter against [Event.encode] of the boxed event. *)

let emit_syscall_enter ?ts ?cpu ~thread ~sysno () =
  if admit Event.tag_syscall_enter then
    write ?ts ?cpu ~tag:Event.tag_syscall_enter ~aux:sysno thread 0 0

let emit_syscall_exit ?ts ?cpu ~thread ~sysno ~errno () =
  if admit Event.tag_syscall_exit then
    write ?ts ?cpu ~tag:Event.tag_syscall_exit ~aux:sysno thread
      (match errno with None -> 0 | Some e -> Event.errno_code e)
      0

let emit_page_alloc ?ts ?cpu ~addr ~order () =
  if admit Event.tag_page_alloc then
    write ?ts ?cpu ~tag:Event.tag_page_alloc ~aux:order addr 0 0

let emit_page_free ?ts ?cpu ~addr ~order () =
  if admit Event.tag_page_free then
    write ?ts ?cpu ~tag:Event.tag_page_free ~aux:order addr 0 0

let emit_superpage_merge ?ts ?cpu ~head ~order () =
  if admit Event.tag_superpage_merge then
    write ?ts ?cpu ~tag:Event.tag_superpage_merge ~aux:order head 0 0

let emit_ep_create ?ts ?cpu ~container () =
  if admit Event.tag_ep_create then
    write ?ts ?cpu ~tag:Event.tag_ep_create ~aux:0 container 0 0

let emit_ep_send ?ts ?cpu ~ep ~sender ~receiver () =
  if admit Event.tag_ep_send then
    write ?ts ?cpu ~tag:Event.tag_ep_send ~aux:0 ep sender receiver

let emit_ep_recv ?ts ?cpu ~ep ~receiver ~sender () =
  if admit Event.tag_ep_recv then
    write ?ts ?cpu ~tag:Event.tag_ep_recv ~aux:0 ep receiver sender

let emit_ep_block ?ts ?cpu ~ep ~thread ~dir () =
  if admit Event.tag_ep_block then
    write ?ts ?cpu ~tag:Event.tag_ep_block
      ~aux:(match dir with Event.Dir_send -> 0 | Event.Dir_recv -> 1)
      ep thread 0

let emit_mmu_walk ?ts ?cpu ~vaddr ~ok () =
  if admit Event.tag_mmu_walk then
    write ?ts ?cpu ~tag:Event.tag_mmu_walk ~aux:(if ok then 1 else 0) vaddr 0 0

let emit_pte_touch ?ts ?cpu ~table ~index () =
  if admit Event.tag_pte_touch then
    write ?ts ?cpu ~tag:Event.tag_pte_touch ~aux:0 table index 0

let emit_drv_doorbell ?ts ?cpu ~device ~queue () =
  if admit Event.tag_drv_doorbell then
    write ?ts ?cpu ~tag:Event.tag_drv_doorbell ~aux:0 device queue 0

let emit_drv_completion ?ts ?cpu ~device ~count () =
  if admit Event.tag_drv_completion then
    write ?ts ?cpu ~tag:Event.tag_drv_completion ~aux:0 device count 0

let emit_lock_acquire ?ts ?cpu ~cpu_id ~wait_cycles () =
  if admit Event.tag_lock_acquire then
    write ?ts ?cpu ~tag:Event.tag_lock_acquire ~aux:0 cpu_id wait_cycles 0

let emit_tlb_hit ?ts ?cpu ~vaddr () =
  if admit Event.tag_tlb_hit then write ?ts ?cpu ~tag:Event.tag_tlb_hit ~aux:0 vaddr 0 0

let emit_tlb_miss ?ts ?cpu ~vaddr () =
  if admit Event.tag_tlb_miss then write ?ts ?cpu ~tag:Event.tag_tlb_miss ~aux:0 vaddr 0 0

let emit_tlb_flush ?ts ?cpu ~asid ~entries () =
  if admit Event.tag_tlb_flush then
    write ?ts ?cpu ~tag:Event.tag_tlb_flush ~aux:0 asid entries 0

let emit_ep_fastpath ?ts ?cpu ~ep ~sender ~receiver () =
  if admit Event.tag_ep_fastpath then
    write ?ts ?cpu ~tag:Event.tag_ep_fastpath ~aux:0 ep sender receiver

let emit_causal ?ts ?cpu ~edge ~src ~dst () =
  if admit Event.tag_causal then write ?ts ?cpu ~tag:Event.tag_causal ~aux:edge src dst 0

let emit_dev_fault ?ts ?cpu ~device ~fault () =
  if admit Event.tag_dev_fault then
    write ?ts ?cpu ~tag:Event.tag_dev_fault ~aux:fault device 0 0

let emit_dev_recover ?ts ?cpu ~device ~fault () =
  if admit Event.tag_dev_recover then
    write ?ts ?cpu ~tag:Event.tag_dev_recover ~aux:fault device 0 0

(* The span writers bypass [admit]: the span layer makes one admission
   decision per span at [Span.begin_]/[Span.pair] (under the span_begin
   tag), so begins and ends stay balanced — a sampled span is skipped
   whole, never half. *)

let emit_span_begin ?ts ?cpu ~span ~parent ~kind ~owner () =
  if tracing () then
    write ?ts ?cpu ~tag:Event.tag_span_begin ~aux:kind span parent owner

let emit_span_end ?ts ?cpu ~span ~kind ~owner () =
  if tracing () then write ?ts ?cpu ~tag:Event.tag_span_end ~aux:kind span owner 0

let emit_span_pair ?ts ?cpu ~span ~parent ~kind ~owner () =
  if tracing () then
    write ?ts ?cpu ~tag:Event.tag_span_pair ~aux:kind span parent owner

(* ------------------------------------------------------------------ *)
(* Boxed oracle path                                                   *)

let emit ?ts ?cpu ev =
  match !current with
  | Disabled -> ()
  | Flight fr ->
    let tag = Event.tag_of ev in
    if admit tag then begin
      emitted.(tag) <- emitted.(tag) + 1;
      let cpu =
        match cpu with
        | Some c ->
          if c >= 0 && c < Flight.cpus fr then c
          else begin
            bad_cpu := !bad_cpu + 1;
            0
          end
        | None ->
          let c = !cpu_hint in
          if c >= 0 && c < Flight.cpus fr then c
          else begin
            bad_cpu := !bad_cpu + 1;
            0
          end
      in
      let ts = match ts with Some t -> t | None -> !now_fn () in
      Flight.push fr ~cpu (Event.encode ~ts ~cpu ev)
    end

(* ------------------------------------------------------------------ *)
(* The merged, decoded stream                                          *)

let records () =
  publish_counters ();
  match !current with
  | Disabled -> []
  | Flight fr ->
    let arena = Flight.arena fr in
    (* One accumulated list: CPUs high to low, slots newest to oldest,
       prepending — so before the sort the stream reads cpu 0 oldest
       first, exactly the order the old per-CPU append built.  Decoding
       happens in place; nothing is copied out of the arena. *)
    let acc = ref [] in
    for c = Flight.cpus fr - 1 downto 0 do
      let tl = Flight.tail fr ~cpu:c and h = Flight.head fr ~cpu:c in
      for i = h - 1 downto tl do
        match Event.decode_at arena (Flight.slot_offset fr ~cpu:c i) with
        | None -> ()
        | Some r -> (
          match r.Event.ev with
          | Event.Span_pair { span; parent; kind; owner } ->
            (* Unpack the batched record so the profiler and exporters
               see the same begin/end stream the unbatched path wrote. *)
            acc :=
              { r with Event.ev = Event.Span_begin { span; parent; kind; owner } }
              :: { r with Event.ev = Event.Span_end { span; kind; owner } }
              :: !acc
          | _ -> acc := r :: !acc)
      done
    done;
    List.stable_sort
      (fun (a : Event.record) b -> Int.compare a.Event.ts b.Event.ts)
      !acc

let dropped () =
  publish_counters ();
  match !current with Disabled -> 0 | Flight fr -> Flight.total_dropped fr

let emitted_count ~tag =
  if tag < 1 || tag > Event.tag_count then 0 else emitted.(tag)

let sampled_out_count ~tag =
  if tag < 1 || tag > Event.tag_count then 0 else sampled_out.(tag)

let bad_cpu_count () = !bad_cpu
