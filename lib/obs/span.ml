(* The span layer: typed begin/end intervals with parent links, causal
   edges, and per-owner cycle accounting, built on top of the flat
   tracepoint stream.

   Spans nest per CPU: [begin_] pushes a frame onto the current CPU's
   stack (parent = previous top) and emits a [Span_begin] event;
   [end_] pops it, emits [Span_end], and charges the span's *self*
   cycles (duration minus the summed duration of its direct children)
   to the owning container / process / thread as `cycles/...` counter
   families.  Root spans additionally feed `cycles/total`, so the sum
   of all per-container counters equals `cycles/total` by construction
   — self times partition each tree's root duration exactly.

   Timestamps: whoever owns the timeline (the SMP simulator, a
   workload harness) passes explicit [~ts] so span durations match the
   cycle model; spans opened inside the kernel (rendezvous, TLB fills)
   default to [Sink.now ()] and are zero-duration structural children.

   Everything here is host-only bookkeeping: with the sink [Disabled],
   [begin_] returns 0 after one flag load and every other entry point
   is a no-op, preserving the bit-identical zero-overhead invariant. *)

type kind =
  | Request
  | Ipc_rendezvous
  | Ctx_switch
  | Mmu_fill
  | Drv_submit
  | Drv_complete
  | Irq
  | User
  | Lock_wait
  | App of int
  | Syscall of int

let code = function
  | Request -> 1
  | Ipc_rendezvous -> 2
  | Ctx_switch -> 3
  | Mmu_fill -> 4
  | Drv_submit -> 5
  | Drv_complete -> 6
  | Irq -> 7
  | User -> 8
  | Lock_wait -> 9
  | App c -> if c >= 16 && c < 64 then c else 16
  | Syscall n -> 64 + (n land 0xff)

(* Application kinds: codes 16-63, registered by name.  The raw event
   decoder prints "app<n>"; [label_of_code] resolves registered names
   for human-facing output (profiler, exporters). *)
let app_names : (int, string) Hashtbl.t = Hashtbl.create 8
let next_app = ref 16

(* Cached cycles/kind counter handles, indexed by span code; codes in
   the app range are invalidated when [register_app] renames them. *)
let kind_ctrs : Metrics.Counter.t option array = Array.make 512 None

let register_app name =
  let found =
    Hashtbl.fold (fun c n acc -> if n = name then Some c else acc) app_names None
  in
  match found with
  | Some c -> App c
  | None ->
    let c = if !next_app < 64 then !next_app else 63 in
    if !next_app < 64 then incr next_app;
    Hashtbl.replace app_names c name;
    kind_ctrs.(c) <- None;
    App c

let label_of_code c =
  match Hashtbl.find_opt app_names c with
  | Some n -> n
  | None -> Event.span_kind_name c

let label k = label_of_code (code k)

(* ------------------------------------------------------------------ *)
(* Per-CPU open-span stacks                                            *)

type frame = {
  id : int;
  fcode : int;
  container : int;
  fproc : int;
  fthread : int;
  t0 : int;
  mutable child : int;  (* summed duration of completed direct children *)
}

let next_id = ref 1
let stacks : (int, frame list ref) Hashtbl.t = Hashtbl.create 8
let leaks : (int * int * int) list ref = ref []  (* cpu, code, id *)

let stack_for cpu =
  match Hashtbl.find_opt stacks cpu with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace stacks cpu r;
    r

(* Causal-edge side tables: who to connect a later event back to. *)
let blocked : (int, int) Hashtbl.t = Hashtbl.create 32  (* thread -> span *)
let irq_pending : (int, int) Hashtbl.t = Hashtbl.create 8  (* device -> span *)
let submits : (int * int, int) Hashtbl.t = Hashtbl.create 32  (* device,tag -> span *)

let reset () =
  next_id := 1;
  Hashtbl.reset stacks;
  leaks := [];
  Hashtbl.reset blocked;
  Hashtbl.reset irq_pending;
  Hashtbl.reset submits

(* ------------------------------------------------------------------ *)
(* Begin / end                                                         *)

let total_name = "cycles/total"
let total_ctr = lazy (Metrics.counter total_name)

(* Every span close charges up to three owner families and one kind
   counter; resolved through cached handles because a registry probe
   (string concat + string hash) per close would dominate the
   zero-alloc emit path next to it.  Keys pack [owner * 4 + family];
   [Metrics.reset] zeroes counters in place, so handles stay valid. *)
let family_names = [| "cycles/container/"; "cycles/process/"; "cycles/thread/" |]
let owner_ctrs : (int, Metrics.Counter.t) Hashtbl.t = Hashtbl.create 64

let charge family owner by =
  if owner >= 0 && by > 0 then begin
    let key = (owner * 4) + family in
    let c =
      match Hashtbl.find_opt owner_ctrs key with
      | Some c -> c
      | None ->
        let c = Metrics.counter (family_names.(family) ^ string_of_int owner) in
        Hashtbl.replace owner_ctrs key c;
        c
    in
    Metrics.Counter.incr ~by c
  end

let kind_ctr fcode =
  match kind_ctrs.(fcode) with
  | Some c -> c
  | None ->
    let c = Metrics.counter ("cycles/kind/" ^ label_of_code fcode) in
    kind_ctrs.(fcode) <- Some c;
    c

(* The whole span layer is governed by the span_begin tag: one
   [Sink.admit] decision per span, made here, keeps begins and ends
   balanced — a masked or sampled-out span returns id 0, so [end_]
   (keyed off [id > 0]) skips it whole.  The [Sink.emit_span_*]
   writers below are post-admission and never drop half a span. *)
let begin_ ?ts ?(container = -1) ?(proc = -1) ?(thread = -1) kind =
  if not (Sink.admit Event.tag_span_begin) then 0
  else begin
    let cpu = Sink.current_cpu () in
    let st = stack_for cpu in
    let id = !next_id in
    incr next_id;
    let parent, container, proc, thread =
      match !st with
      | [] -> (0, container, proc, thread)
      | f :: _ ->
        (* Owner inherits down the stack unless overridden. *)
        ( f.id,
          (if container >= 0 then container else f.container),
          (if proc >= 0 then proc else f.fproc),
          if thread >= 0 then thread else f.fthread )
    in
    let c = code kind in
    let t0 = match ts with Some t -> t | None -> Sink.now () in
    st := { id; fcode = c; container; fproc = proc; fthread = thread; t0; child = 0 } :: !st;
    Sink.emit_span_begin ?ts ~span:id ~parent ~kind:c ~owner:container ();
    id
  end

(* A batched zero-duration span: begin and end at the same timestamp,
   packed into one [Span_pair] record (half the ring cost of the
   begin/end pair it replaces; [Sink.records] re-expands it).  For the
   driver submit/complete markers and context switches whose frames
   never enclose other work — zero duration means zero self cycles, so
   skipping the stack push/pop changes no accounting.  Returns the
   span id for causal linking, 0 when not admitted. *)
let pair ?ts ?(container = -1) kind =
  if not (Sink.admit Event.tag_span_begin) then 0
  else begin
    let cpu = Sink.current_cpu () in
    let st = stack_for cpu in
    let id = !next_id in
    incr next_id;
    let parent, container =
      match !st with
      | [] -> (0, container)
      | f :: _ -> (f.id, if container >= 0 then container else f.container)
    in
    Sink.emit_span_pair ?ts ~span:id ~parent ~kind:(code kind) ~owner:container ();
    id
  end

let close_frame ?ts st f rest =
  st := rest;
  let t1 = match ts with Some t -> t | None -> Sink.now () in
  let dur = max 0 (t1 - f.t0) in
  let self = max 0 (dur - f.child) in
  (match rest with
  | p :: _ -> p.child <- p.child + dur
  | [] -> Metrics.Counter.incr ~by:dur (Lazy.force total_ctr));
  charge 0 f.container self;
  charge 1 f.fproc self;
  charge 2 f.fthread self;
  if self > 0 then Metrics.Counter.incr ~by:self (kind_ctr f.fcode);
  Sink.emit_span_end ?ts ~span:f.id ~kind:f.fcode ~owner:f.container ()

let rec end_ ?ts id =
  if Sink.tracing () && id > 0 then begin
    let cpu = Sink.current_cpu () in
    let st = stack_for cpu in
    match !st with
    | [] -> Metrics.bump "span/stray_end"
    | f :: rest ->
      if f.id = id then close_frame ?ts st f rest
      else if List.exists (fun g -> g.id = id) rest then begin
        (* Children left open above the span being ended: a balance
           violation.  Record them for the sanitizer lint and unwind. *)
        leaks := (cpu, f.fcode, f.id) :: !leaks;
        Metrics.bump "span/leaked";
        st := rest;
        end_ ?ts id
      end
      else Metrics.bump "span/stray_end"
  end

let current () =
  if not (Sink.tracing ()) then 0
  else
    match Hashtbl.find_opt stacks (Sink.current_cpu ()) with
    | Some { contents = f :: _ } -> f.id
    | _ -> 0

(* ------------------------------------------------------------------ *)
(* Causal edges                                                        *)

type edge_kind = Ipc | Irq_delivery | Drv | Wakeup

let edge_code = function Ipc -> 1 | Irq_delivery -> 2 | Drv -> 3 | Wakeup -> 4

let edge kind ~src ~dst =
  if src > 0 && dst > 0 then Sink.emit_causal ~edge:(edge_code kind) ~src ~dst ()

let note_blocked ~thread ~span = if span > 0 then Hashtbl.replace blocked thread span

let take_blocked ~thread =
  match Hashtbl.find_opt blocked thread with
  | Some s ->
    Hashtbl.remove blocked thread;
    s
  | None -> 0

let note_irq_pending ~device ~span = if span > 0 then Hashtbl.replace irq_pending device span

let take_irq_pending ~device =
  match Hashtbl.find_opt irq_pending device with
  | Some s ->
    Hashtbl.remove irq_pending device;
    s
  | None -> 0

let note_submit ~device ~tag ~span = if span > 0 then Hashtbl.replace submits (device, tag) span

let take_submit ~device ~tag =
  match Hashtbl.find_opt submits (device, tag) with
  | Some s ->
    Hashtbl.remove submits (device, tag);
    s
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Introspection (the sanitizer's span-balance lint)                   *)

let open_spans () =
  Hashtbl.fold
    (fun cpu st acc -> List.fold_left (fun acc f -> (cpu, f.fcode, f.id) :: acc) acc !st)
    stacks []
  |> List.sort compare

let leaked () = List.sort compare !leaks
let clear_leaked () = leaks := []
