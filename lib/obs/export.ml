(* Exporters: Chrome trace_event JSON for a decoded event stream, and
   Prometheus text exposition for the metrics registry.  Both are
   deterministic — records are consumed in timestamp order and the
   registry is iterated via its sorted bindings — so snapshots diff
   cleanly across runs. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Chrome trace_event "JSON array format".  Spans become duration
   begin/end ("B"/"E") slices — pid is the owning container (0 when
   unowned) so chrome://tracing groups per container, tid is the CPU.
   Causal edges become flow-event pairs ("s" start / "f" finish) bound
   to the source and destination spans; other tracepoints become
   instant events.  Timestamps are cycle counts passed through as the
   microsecond field — absolute units don't matter to the viewer. *)
let chrome_trace records =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b line
  in
  let pid owner = if owner >= 0 then owner else 0 in
  let flow = ref 0 in
  (* Spans indexed up front so a flow event can land on the destination
     span's coordinates. *)
  let span_at : (int, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Event.record) ->
      match r.ev with
      | Event.Span_begin { span; owner; _ } ->
        Hashtbl.replace span_at span (r.ts, r.cpu, pid owner)
      | _ -> ())
    records;
  List.iter
    (fun (r : Event.record) ->
      match r.ev with
      | Event.Span_begin { span; kind; owner; parent } ->
        emit
          (Printf.sprintf
             {|{"name":"%s","ph":"B","ts":%d,"pid":%d,"tid":%d,"args":{"span":%d,"parent":%d}}|}
             (json_escape (Span.label_of_code kind))
             r.ts (pid owner) r.cpu span parent)
      | Event.Span_end { kind; owner; span } ->
        emit
          (Printf.sprintf {|{"name":"%s","ph":"E","ts":%d,"pid":%d,"tid":%d,"args":{"span":%d}}|}
             (json_escape (Span.label_of_code kind))
             r.ts (pid owner) r.cpu span)
      | Event.Causal { edge; src; dst } ->
        incr flow;
        let name = json_escape (Event.causal_name edge) in
        let sts, scpu, spid =
          match Hashtbl.find_opt span_at src with
          | Some c -> c
          | None -> (r.ts, r.cpu, 0)
        in
        let dts, dcpu, dpid =
          match Hashtbl.find_opt span_at dst with
          | Some c -> c
          | None -> (r.ts, r.cpu, 0)
        in
        emit
          (Printf.sprintf {|{"name":"%s","cat":"causal","ph":"s","id":%d,"ts":%d,"pid":%d,"tid":%d}|}
             name !flow (max sts r.ts) spid scpu);
        emit
          (Printf.sprintf
             {|{"name":"%s","cat":"causal","ph":"f","bp":"e","id":%d,"ts":%d,"pid":%d,"tid":%d}|}
             name !flow (max dts r.ts) dpid dcpu)
      | ev ->
        emit
          (Printf.sprintf {|{"name":"%s","ph":"i","ts":%d,"pid":0,"tid":%d,"s":"t"}|}
             (json_escape (Event.kind ev)) r.ts r.cpu))
    records;
  Buffer.add_string b "]\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)

let prom_sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let prometheus () =
  let b = Buffer.create 2048 in
  List.iter
    (fun (name, c) ->
      let n = "atmo_" ^ prom_sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n (Metrics.Counter.value c)))
    (Metrics.all_counters ());
  List.iter
    (fun (name, h) ->
      let n = "atmo_" ^ prom_sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let counts = Metrics.Histogram.buckets h in
      let cum = ref 0 in
      let last = ref (-1) in
      Array.iteri (fun i c -> if c > 0 then last := i) counts;
      for i = 0 to !last do
        cum := !cum + counts.(i);
        let le = (1 lsl (i + 1)) - 1 in
        Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n le !cum)
      done;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n" n
           (Metrics.Histogram.count h) n (Metrics.Histogram.sum h) n
           (Metrics.Histogram.count h)))
    (Metrics.all_histograms ());
  Buffer.contents b
