(* Per-CPU flight-recorder rings.

   The whole recorder lives in one flat byte arena, mirroring the
   byte-accurate layout of [Atmo_sim.Ring] over simulated physical
   memory: each CPU owns a contiguous region

     [head:u64][tail:u64][dropped:u64][slot 0][slot 1]...

   head/tail are free-running counters masked by (slots-1) for the slot
   index; all recorder state is stored in the arena (the OCaml record
   only caches the geometry), so a decoder handed the raw bytes can
   reconstruct the stream exactly. *)

type t = {
  arena : Bytes.t;
  cpus : int;
  slots : int;
  slot_size : int;
  (* Lossless per-CPU drop tally, outside the arena.  The in-arena
     [dropped] word is part of the decoder-visible ring state and is
     wiped by [clear] along with everything else; accounting that
     feeds benchmark output must never itself be droppable, so it
     lives here and survives clears for the lifetime of the
     recorder. *)
  lifetime_dropped : int array;
}

let header_bytes = 24

let ring_bytes t = header_bytes + (t.slots * t.slot_size)
let cpu_base t cpu = cpu * ring_bytes t

let create ~cpus ~slots ~slot_size =
  if cpus <= 0 then invalid_arg "Flight.create: cpus <= 0";
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Flight.create: slots must be a positive power of two";
  if slot_size <= 0 then invalid_arg "Flight.create: slot_size <= 0";
  let t =
    { arena = Bytes.empty; cpus; slots; slot_size;
      lifetime_dropped = Array.make cpus 0 }
  in
  let total = cpus * ring_bytes t in
  { t with arena = Bytes.make total '\000' }

let cpus t = t.cpus
let slots t = t.slots
let slot_size t = t.slot_size
let size_bytes t = Bytes.length t.arena

let check_cpu t cpu =
  if cpu < 0 || cpu >= t.cpus then invalid_arg "Flight: cpu out of range"

(* Hot-path u64 accessors.  Semantically [Bytes.get_int64_le] /
   [Bytes.set_int64_le (Int64.of_int v)], but spelled as byte loads and
   stores: without flambda the stdlib int64 accessors are out-of-line
   calls that box an [Int64.t] per access, and the reserve/emit path
   runs once per traced event.  Sign extension matches [Int64.of_int]
   bit for bit ([asr] carries the int's sign through byte 7); the
   encode-oracle test in test_obs pins the equivalence. *)
let get8 b i = Char.code (Bytes.unsafe_get b i)
let set8 b i v = Bytes.unsafe_set b i (Char.unsafe_chr (v land 0xff))

let load_u64 b addr =
  get8 b addr
  lor (get8 b (addr + 1) lsl 8)
  lor (get8 b (addr + 2) lsl 16)
  lor (get8 b (addr + 3) lsl 24)
  lor (get8 b (addr + 4) lsl 32)
  lor (get8 b (addr + 5) lsl 40)
  lor (get8 b (addr + 6) lsl 48)
  lor (get8 b (addr + 7) lsl 56)

let store_u64 b addr v =
  set8 b addr v;
  set8 b (addr + 1) (v asr 8);
  set8 b (addr + 2) (v asr 16);
  set8 b (addr + 3) (v asr 24);
  set8 b (addr + 4) (v asr 32);
  set8 b (addr + 5) (v asr 40);
  set8 b (addr + 6) (v asr 48);
  set8 b (addr + 7) (v asr 56)

let read_u64 t addr = load_u64 t.arena addr
let write_u64 t addr v = store_u64 t.arena addr v

let head t ~cpu = read_u64 t (cpu_base t cpu)
let tail t ~cpu = read_u64 t (cpu_base t cpu + 8)
let dropped t ~cpu = read_u64 t (cpu_base t cpu + 16)
let set_head t ~cpu v = write_u64 t (cpu_base t cpu) v
let set_tail t ~cpu v = write_u64 t (cpu_base t cpu + 8) v
let set_dropped t ~cpu v = write_u64 t (cpu_base t cpu + 16) v

let length t ~cpu =
  check_cpu t cpu;
  head t ~cpu - tail t ~cpu

let slot_addr t ~cpu idx =
  cpu_base t cpu + header_bytes + ((idx land (t.slots - 1)) * t.slot_size)

(* Overwrite-oldest: a full ring advances the tail over the victim slot
   and counts it dropped; a flight recorder never refuses an event. *)
let push t ~cpu payload =
  check_cpu t cpu;
  let h = head t ~cpu in
  if h - tail t ~cpu >= t.slots then begin
    set_tail t ~cpu (tail t ~cpu + 1);
    set_dropped t ~cpu (dropped t ~cpu + 1);
    t.lifetime_dropped.(cpu) <- t.lifetime_dropped.(cpu) + 1
  end;
  let addr = slot_addr t ~cpu h in
  let len = min (Bytes.length payload) t.slot_size in
  Bytes.fill t.arena addr t.slot_size '\000';
  Bytes.blit payload 0 t.arena addr len;
  set_head t ~cpu (h + 1)

(* The zero-allocation emit path: advance the cursor (with the same
   overwrite-oldest drop accounting as [push]) and hand back the arena
   offset of the claimed slot; the caller writes all [slot_size] bytes
   in place, so the victim slot is not zeroed first. *)
let reserve t ~cpu =
  let base = cpu_base t cpu in
  let h = load_u64 t.arena base in
  let tl = load_u64 t.arena (base + 8) in
  if h - tl >= t.slots then begin
    store_u64 t.arena (base + 8) (tl + 1);
    store_u64 t.arena (base + 16) (load_u64 t.arena (base + 16) + 1);
    t.lifetime_dropped.(cpu) <- t.lifetime_dropped.(cpu) + 1
  end;
  store_u64 t.arena base (h + 1);
  base + header_bytes + ((h land (t.slots - 1)) * t.slot_size)

let arena t = t.arena

let slot_offset t ~cpu idx =
  check_cpu t cpu;
  slot_addr t ~cpu idx

let to_list t ~cpu =
  check_cpu t cpu;
  let tl = tail t ~cpu and h = head t ~cpu in
  let rec go i acc =
    if i >= h then List.rev acc
    else
      go (i + 1) (Bytes.sub t.arena (slot_addr t ~cpu i) t.slot_size :: acc)
  in
  go tl []

let lifetime_dropped t ~cpu =
  check_cpu t cpu;
  t.lifetime_dropped.(cpu)

let total_dropped t = Array.fold_left ( + ) 0 t.lifetime_dropped

let clear t =
  Bytes.fill t.arena 0 (Bytes.length t.arena) '\000'
