(** Monotonic counters and log2-bucketed latency histograms.

    Histogram bucket [i] covers values in [[2^i, 2^(i+1))] (bucket 0
    absorbs 0 and 1), so 63 buckets span the whole non-negative [int]
    range; quantiles report the upper edge of the selected bucket,
    clamped to the observed extremes, and are monotone in [q] by
    construction.  A process-global registry hands out metrics by name
    so instrumentation sites need no plumbing. *)

module Counter : sig
  type t

  val make : string -> t
  val name : t -> string
  val incr : ?by:int -> t -> unit
  (** Monotonic: non-positive [by] is ignored. *)

  val value : t -> int
  val reset : t -> unit
end

module Histogram : sig
  type t

  val bucket_count : int
  val make : string -> t
  val name : t -> string
  val bucket_of : int -> int
  val observe : t -> int -> unit
  (** Record one sample (negative values clamp to 0). *)

  val count : t -> int
  val sum : t -> int
  val mean : t -> float
  val min_value : t -> int
  val max_value : t -> int

  val quantile : t -> float -> int
  (** [quantile t q] for [q] in [0,1]; 0 on an empty histogram. *)

  val p50 : t -> int
  val p90 : t -> int
  val p99 : t -> int
  val reset : t -> unit

  val buckets : t -> int array
  (** Copy of the raw bucket counts (length {!bucket_count}). *)

  val merge : into:t -> t -> unit
  (** [merge ~into src] accumulates [src] into [into] bucket-by-bucket.
      Shards sharing the bucket edges merge without precision loss:
      counts, sum, and extremes add exactly.  [src] is unchanged;
      merging a histogram into itself is a no-op. *)

  val pp_row : Format.formatter -> t -> unit
end

(** {2 Registry} *)

val counter : string -> Counter.t
(** Get-or-create by name. *)

val histogram : string -> Histogram.t
val bump : ?by:int -> string -> unit
val observe : string -> int -> unit
val all_counters : unit -> (string * Counter.t) list
val all_histograms : unit -> (string * Histogram.t) list
val reset : unit -> unit
(** Zero every registered metric in place (tests and fresh CLI runs).
    Registrations persist, so handles cached by instrumentation sites
    keep feeding the registry. *)

val dump : unit -> string
(** Deterministic full-registry snapshot: one line per metric, counters
    then histograms, each table sorted by name, zero values included.
    Stable across hash-table ordering — the anchor for exporters and
    golden-style test expectations. *)

val pp_table : Format.formatter -> unit -> unit
(** Histogram table (count / mean / p50 / p90 / p99 / max) followed by
    non-zero counters. *)
