(** Export formats for traces and metrics.

    Output is deterministic: records are consumed in the (sorted)
    order {!Sink.records} yields them and the metrics registry is
    iterated by name, so two identical runs export byte-identical
    snapshots. *)

val chrome_trace : Event.record list -> string
(** Chrome [trace_event] JSON array: spans as ["B"]/["E"] duration
    slices (pid = owning container, tid = CPU), causal edges as flow
    events (["s"]/["f"]) pinned to the source/destination spans, and
    every other tracepoint as an instant event.  Load in
    [chrome://tracing] or Perfetto.  Timestamps pass the cycle clock
    through the microsecond field. *)

val prometheus : unit -> string
(** Prometheus text exposition of the whole metrics registry: counters
    as [atmo_<name>] (non-metric characters become [_]), histograms as
    cumulative [_bucket{le="..."}] series (upper edges of the log2
    buckets) plus [_sum]/[_count]. *)
