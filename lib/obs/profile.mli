(** Post-mortem profiler over a decoded flight-recorder stream.

    {!build} rebuilds the span forest (parent links are read from the
    {!Event.Span_begin} events, so a wrapped ring degrades gracefully:
    ends without begins are counted in {!truncated}, begins without
    ends become zero-length truncated spans) plus the causal-edge
    list.  On top of the forest: collapsed stacks in the folded format
    flamegraph tooling consumes, a self/total cycle table per span
    kind, and reachability across parent links {e and} causal edges —
    the query that reconstructs one request's full path across CPUs,
    an IPC rendezvous, and a driver completion. *)

type span = {
  id : int;
  kind : int;  (** kind code; {!Span.label_of_code} names it *)
  owner : int;
  cpu : int;
  t0 : int;
  mutable t1 : int;
  parent : int;
  mutable children : int list;
  mutable ended : bool;
}

type edge = { ekind : int; src : int; dst : int; ets : int }

type t

val build : Event.record list -> t
val find : t -> int -> span option
val spans : t -> span list
val roots : t -> int list
val edges : t -> edge list

val truncated : t -> int
(** [Span_end] events whose begin was overwritten by ring wraparound. *)

val span_count : t -> int
val duration : span -> int

val self_cycles : t -> span -> int
(** Duration minus summed durations of direct children (clamped ≥ 0). *)

val collapsed : t -> (string * int) list
(** Folded stacks: [root;child;...;kind] paths with summed self
    cycles, sorted by path.  Feed to [flamegraph.pl] / speedscope. *)

type kind_stat = { klabel : string; count : int; self : int; total : int }

val kind_table : t -> kind_stat list
(** Per-kind aggregate sorted by descending self cycles. *)

val reachable : t -> from:int -> int list
(** Span ids connected to [from] through parent/child links and causal
    edges (undirected), sorted. *)

val edges_within : t -> int list -> edge list
(** Edges with both endpoints inside the given span-id set. *)

val pp_kind_table : Format.formatter -> t -> unit
val pp_tree : Format.formatter -> t -> unit
