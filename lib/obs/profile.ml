(* Post-mortem profiler: rebuild span trees and causal edges from a
   decoded flight-recorder stream, then fold them into collapsed
   stacks (flamegraph-compatible), a self/total table per span kind,
   and request-path reachability across causal edges.

   The ring may have wrapped: a [Span_end] whose begin was overwritten
   is dropped; a [Span_begin] with no end is kept as a truncated span
   (end = begin).  Parent links come from the events themselves, not
   from replaying stacks, so partial streams degrade gracefully. *)

type span = {
  id : int;
  kind : int;
  owner : int;
  cpu : int;
  t0 : int;
  mutable t1 : int;
  parent : int;
  mutable children : int list;  (* reverse begin order *)
  mutable ended : bool;
}

type edge = { ekind : int; src : int; dst : int; ets : int }

type t = {
  spans : (int, span) Hashtbl.t;
  mutable roots : int list;
  mutable edges : edge list;
  mutable truncated : int;  (* Span_end with no matching begin *)
}

let build records =
  let t = { spans = Hashtbl.create 256; roots = []; edges = []; truncated = 0 } in
  List.iter
    (fun (r : Event.record) ->
      match r.ev with
      | Event.Span_begin { span; parent; kind; owner } ->
        Hashtbl.replace t.spans span
          { id = span; kind; owner; cpu = r.cpu; t0 = r.ts; t1 = r.ts; parent;
            children = []; ended = false }
      | Event.Span_end { span; _ } -> begin
        match Hashtbl.find_opt t.spans span with
        | Some s ->
          s.t1 <- max s.t0 r.ts;
          s.ended <- true
        | None -> t.truncated <- t.truncated + 1
      end
      | Event.Causal { edge; src; dst } ->
        t.edges <- { ekind = edge; src; dst; ets = r.ts } :: t.edges
      | _ -> ())
    records;
  Hashtbl.iter
    (fun id s ->
      match Hashtbl.find_opt t.spans s.parent with
      | Some p when s.parent <> 0 -> p.children <- id :: p.children
      | _ -> t.roots <- id :: t.roots)
    t.spans;
  t.roots <- List.sort compare t.roots;
  Hashtbl.iter (fun _ s -> s.children <- List.sort compare s.children) t.spans;
  t.edges <- List.rev t.edges;
  t

let find t id = Hashtbl.find_opt t.spans id
let spans t = Hashtbl.fold (fun _ s acc -> s :: acc) t.spans [] |> List.sort compare
let roots t = t.roots
let edges t = t.edges
let truncated t = t.truncated
let span_count t = Hashtbl.length t.spans

let duration s = max 0 (s.t1 - s.t0)

let children_duration t s =
  List.fold_left
    (fun acc c -> match find t c with Some cs -> acc + duration cs | None -> acc)
    0 s.children

let self_cycles t s = max 0 (duration s - children_duration t s)

(* ------------------------------------------------------------------ *)
(* Collapsed stacks                                                    *)

(* One line per distinct root-to-span kind path, weighted by summed
   self cycles — the folded format flamegraph.pl and speedscope eat.
   Zero-weight paths are kept when the span exists so structure-only
   (zero-duration) kernel spans still show up in the tree. *)
let collapsed t =
  let acc : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rec walk path id =
    match find t id with
    | None -> ()
    | Some s ->
      let path = if path = "" then Span.label_of_code s.kind
                 else path ^ ";" ^ Span.label_of_code s.kind in
      let self = self_cycles t s in
      Hashtbl.replace acc path ((try Hashtbl.find acc path with Not_found -> 0) + self);
      List.iter (walk path) s.children
  in
  List.iter (walk "") t.roots;
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Per-kind self/total table                                           *)

type kind_stat = {
  klabel : string;
  count : int;
  self : int;
  total : int;  (* summed durations; nested same-kind spans count twice *)
}

let kind_table t =
  let acc : (int, int * int * int) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ s ->
      let c, sf, tt = try Hashtbl.find acc s.kind with Not_found -> (0, 0, 0) in
      Hashtbl.replace acc s.kind (c + 1, sf + self_cycles t s, tt + duration s))
    t.spans;
  Hashtbl.fold
    (fun kind (count, self, total) l ->
      { klabel = Span.label_of_code kind; count; self; total } :: l)
    acc []
  |> List.sort (fun a b ->
         match compare b.self a.self with 0 -> compare a.klabel b.klabel | c -> c)

(* ------------------------------------------------------------------ *)
(* Reachability across trees + causal edges                            *)

let reachable t ~from =
  let adj : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let add a b =
    if a <> 0 && b <> 0 then begin
      Hashtbl.replace adj a (b :: (try Hashtbl.find adj a with Not_found -> []));
      Hashtbl.replace adj b (a :: (try Hashtbl.find adj b with Not_found -> []))
    end
  in
  Hashtbl.iter
    (fun id s ->
      if s.parent <> 0 && Hashtbl.mem t.spans s.parent then add id s.parent)
    t.spans;
  List.iter (fun e -> add e.src e.dst) t.edges;
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec go id =
    if (not (Hashtbl.mem seen id)) && Hashtbl.mem t.spans id then begin
      Hashtbl.replace seen id ();
      List.iter go (try Hashtbl.find adj id with Not_found -> [])
    end
  in
  go from;
  Hashtbl.fold (fun id () acc -> id :: acc) seen [] |> List.sort compare

(* Edges whose both endpoints lie inside a span-id set. *)
let edges_within t ids =
  let mem = Hashtbl.create (List.length ids) in
  List.iter (fun id -> Hashtbl.replace mem id ()) ids;
  List.filter (fun e -> Hashtbl.mem mem e.src && Hashtbl.mem mem e.dst) t.edges

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)

let pp_kind_table ppf t =
  Format.fprintf ppf "%-18s %8s %12s %12s@." "span kind" "count" "self" "total";
  List.iter
    (fun k -> Format.fprintf ppf "%-18s %8d %12d %12d@." k.klabel k.count k.self k.total)
    (kind_table t)

let pp_tree ppf t =
  let rec walk indent id =
    match find t id with
    | None -> ()
    | Some s ->
      Format.fprintf ppf "%s%s #%d cpu%d [%d..%d] self=%d owner=0x%x%s@." indent
        (Span.label_of_code s.kind) s.id s.cpu s.t0 s.t1 (self_cycles t s) s.owner
        (if s.ended then "" else " (truncated)");
      List.iter (walk (indent ^ "  ")) s.children
  in
  List.iter (walk "") t.roots
